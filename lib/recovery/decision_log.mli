(** The 2PC coordinator's decision record.

    A sharded server commits a cross-shard transaction in two phases:
    every participating shard forces its own {!Oplog} up to the prepared
    transaction and votes, then the coordinator appends the decision
    here and forces it {e before} telling any shard to commit.  The
    decision record is therefore the commit point: after a crash, a
    shard log holding a BEGIN (and the prepared calls) but no COMMIT is
    resolved by this log — a logged commit decision means the shard's
    COMMIT is synthesised during boot ({!resolve}), anything else is a
    loser and is compensated by normal recovery (presumed abort). *)

type decision = {
  top : int;
  commit : bool;
  participants : int list;  (** shard indices *)
}

type t

val open_dir : dir:string -> t
(** Append to [dir/decisions.bin], created if missing. *)

val append : t -> decision -> unit
val force : t -> unit
val close : t -> unit
val appends : t -> int

val load : dir:string -> decision list
(** Stable decisions, oldest first; a torn final frame is dropped.
    [[]] when the file is absent. *)

val reset : dir:string -> unit
(** Delete the decision file — called after a quiescent checkpoint has
    folded every decided transaction into the shard snapshots. *)

val log_file : dir:string -> string

val resolve :
  decisions:decision list ->
  Oplog.record list ->
  Oplog.record list
(** Resolve in-doubt transactions in one shard's log: for every attempt
    with a [Begin] but neither [Commit] nor [Abort] whose top has a
    logged commit decision, append a synthetic [Oplog.Commit] so the
    replay treats it as a winner.  Tops without a commit decision are
    left alone (presumed abort). *)
