(* Recovery analysis: from a stable log prefix to a replay plan.

   Pure — no engine here (the executor that drives the plan through real
   method dispatch lives with the engine, which this library cannot
   depend on).  The plan realises the multi-level discipline:

     analysis — group records into attempts, classify each as Committed
                (stable COMMIT), Aborted (stable ABORT) or Incomplete
                (in flight at the crash: a loser);
     redo     — the schedule replays every logged root call of every
                attempt in original log order ("repeating history" at
                the method level: winners' reads may depend on the
                committed subtransactions of attempts that later
                aborted, so losers' calls are replayed too and then
                compensated);
     undo     — Aborted attempts are aborted at their original decision
                point in the schedule; Incomplete attempts carry no
                Decide step and are compensated after the schedule, in
                reverse begin order (reverse inheritance order across
                tops — within a top the engine's own abort path unwinds
                compensations newest-first, Defs. 10-13).

   Attempts found in [applied] (the snapshot's entries, or a previous
   recovery's retired set) are marked [skip]: their effects are already
   durable, making replay idempotent under (top, attempt) dedup. *)

type disposition = Committed | Aborted of string | Incomplete

type attempt = {
  top : int;
  attempt : int;
  name : string;
  mutable calls : (int * Oplog.invocation * Oplog.invocation option) list;
      (* (seq, invocation, compensation), original log order *)
  mutable subcommits : int;
  mutable disposition : disposition;
  mutable skip : bool;  (* already applied: dedup against the snapshot *)
}

type step =
  | Start of attempt
  | Replay of attempt * Oplog.invocation * Oplog.invocation option
  | Decide of attempt

type plan = {
  schedule : step list;  (* original log order *)
  attempts : attempt list;  (* begin order *)
  winners : (int * int) list;  (* commit order *)
  aborted : (int * int) list;
  losers : (int * int) list;  (* incomplete at the crash, begin order *)
  skipped : (int * int) list;
  next_top : int;
}

let key a = (a.top, a.attempt)

let analyze ?(applied = []) records =
  let attempts = ref [] in  (* newest first *)
  let schedule = ref [] in  (* newest first *)
  let winners = ref [] in
  let aborted = ref [] in
  let find top att =
    List.find_opt (fun a -> a.top = top && a.attempt = att) !attempts
  in
  List.iter
    (fun record ->
      match record with
      | Oplog.Begin { top; attempt; name } ->
          let a =
            {
              top;
              attempt;
              name;
              calls = [];
              subcommits = 0;
              disposition = Incomplete;
              skip = List.mem (top, attempt) applied;
            }
          in
          attempts := a :: !attempts;
          schedule := Start a :: !schedule
      | Oplog.Call { top; attempt; seq; inv; comp } -> (
          match find top attempt with
          | Some a ->
              a.calls <- a.calls @ [ (seq, inv, comp) ];
              schedule := Replay (a, inv, comp) :: !schedule
          | None -> () (* CALL without a stable BEGIN: torn prefix, drop *))
      | Oplog.Subcommit { top; attempt; _ } -> (
          match find top attempt with
          | Some a -> a.subcommits <- a.subcommits + 1
          | None -> ())
      | Oplog.Commit { top; attempt } -> (
          match find top attempt with
          | Some a ->
              a.disposition <- Committed;
              winners := key a :: !winners;
              schedule := Decide a :: !schedule
          | None -> ())
      | Oplog.Abort { top; attempt; reason } -> (
          match find top attempt with
          | Some a ->
              a.disposition <- Aborted reason;
              aborted := key a :: !aborted;
              schedule := Decide a :: !schedule
          | None -> ()))
    records;
  let attempts = List.rev !attempts in
  let losers =
    List.filter_map
      (fun a -> if a.disposition = Incomplete then Some (key a) else None)
      attempts
  in
  let next_top =
    List.fold_left (fun acc a -> max acc (a.top + 1)) 1 attempts
  in
  {
    schedule = List.rev !schedule;
    attempts;
    winners = List.rev !winners;
    aborted = List.rev !aborted;
    losers;
    skipped = List.filter_map (fun a -> if a.skip then Some (key a) else None) attempts;
    next_top;
  }

(* Compact a plan's winners into snapshot entries (commit order),
   appended to an existing snapshot's entries.  Attempts already covered
   by [base] (marked [skip]) are not duplicated. *)
let snapshot_of ?(base = Snapshot.empty) plan =
  let fresh =
    List.filter_map
      (fun k ->
        match
          List.find_opt (fun a -> key a = k && not a.skip) plan.attempts
        with
        | Some a ->
            Some
              {
                Snapshot.top = a.top;
                attempt = a.attempt;
                name = a.name;
                calls = List.map (fun (_, inv, _) -> inv) a.calls;
              }
        | None -> None)
      plan.winners
  in
  {
    Snapshot.next_top = max base.Snapshot.next_top plan.next_top;
    entries = base.Snapshot.entries @ fresh;
  }

let pp_disposition ppf = function
  | Committed -> Fmt.string ppf "committed"
  | Aborted r -> Fmt.pf ppf "aborted(%s)" r
  | Incomplete -> Fmt.string ppf "incomplete"
