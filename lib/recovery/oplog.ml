(* Logical, method-level operation log.

   Where [Ooser_storage.Wal] logs slot-level before/after images, this
   log records the *semantic* history of the engine: transaction BEGIN,
   root-level method CALL together with the compensation the method
   registered, subtransaction COMMIT markers, top COMMIT and ABORT.  The
   multi-level recovery discipline (Börger/Schewe/Wang) needs exactly
   this: a committed subtransaction released its locks and cannot be
   undone physically — redo must replay the call through the real engine
   dispatch and undo must invoke the registered compensation.

   The log is append-only.  Appends are buffered; [force] makes the
   prefix stable (and, with a file backend, flushes and fsyncs).  The
   crash model mirrors [Wal]: exactly the forced prefix survives.  The
   file backend frames each record as a u32-length-prefixed codec
   payload; [load] tolerates a torn final frame, which is precisely the
   unforced suffix a real crash leaves behind. *)

open Ooser_core
open Ooser_storage

type lsn = int

type invocation = { obj : Obj_id.t; meth : string; args : Value.t list }

type record =
  | Begin of { top : int; attempt : int; name : string }
  | Call of {
      top : int;
      attempt : int;
      seq : int;  (* child index under the transaction root *)
      inv : invocation;
      comp : invocation option;  (* registered compensation, if Inverse *)
    }
  | Subcommit of {
      top : int;
      attempt : int;
      path : int list;  (* hierarchical action number (Def. 2) *)
      comp : invocation option;
    }
  | Commit of { top : int; attempt : int }
  | Abort of { top : int; attempt : int; reason : string }

type t = {
  mutable entries : record array;  (* growable; entries.(0 .. len-1) *)
  mutable len : int;
  mutable stable_len : int;  (* entries.(0 .. stable_len-1) survive a crash *)
  mutable injector : Crash.t option;
  sink : out_channel option;  (* file backend; flushed+fsynced on force *)
  mutable appends : int;
  mutable forces : int;
}

let log_file ~dir = Filename.concat dir "oplog.bin"
let rec_file ~dir = Filename.concat dir "oplog.rec"

let ensure_dir dir =
  if not (Sys.file_exists dir) then
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

(* -- value / record serialization --------------------------------------------- *)

let rec write_value w (v : Value.t) =
  match v with
  | Value.Unit -> Codec.Writer.u8 w 0
  | Value.Bool b ->
      Codec.Writer.u8 w 1;
      Codec.Writer.u8 w (if b then 1 else 0)
  | Value.Int i ->
      Codec.Writer.u8 w 2;
      Codec.Writer.i64 w i
  | Value.Str s ->
      Codec.Writer.u8 w 3;
      Codec.Writer.lstring w s
  | Value.Pair (a, b) ->
      Codec.Writer.u8 w 4;
      write_value w a;
      write_value w b
  | Value.List vs ->
      Codec.Writer.u8 w 5;
      Codec.Writer.u32 w (List.length vs);
      List.iter (write_value w) vs

let rec read_value r : Value.t =
  match Codec.Reader.u8 r with
  | 0 -> Value.Unit
  | 1 -> Value.Bool (Codec.Reader.u8 r <> 0)
  | 2 -> Value.Int (Codec.Reader.i64 r)
  | 3 -> Value.Str (Codec.Reader.lstring r)
  | 4 ->
      let a = read_value r in
      let b = read_value r in
      Value.Pair (a, b)
  | 5 ->
      let n = Codec.Reader.u32 r in
      Value.List (List.init n (fun _ -> read_value r))
  | t -> failwith (Printf.sprintf "Oplog: unknown value tag %d" t)

let write_invocation w { obj; meth; args } =
  Codec.Writer.string w (Obj_id.name obj);
  Codec.Writer.string w meth;
  Codec.Writer.u16 w (List.length args);
  List.iter (write_value w) args

let read_invocation r =
  let obj = Obj_id.v (Codec.Reader.string r) in
  let meth = Codec.Reader.string r in
  let n = Codec.Reader.u16 r in
  let args = List.init n (fun _ -> read_value r) in
  { obj; meth; args }

let encode_invocation inv =
  let w = Codec.Writer.create () in
  write_invocation w inv;
  Codec.Writer.contents w

let decode_invocation s = read_invocation (Codec.Reader.create s)

let write_opt_invocation w = function
  | None -> Codec.Writer.u8 w 0
  | Some inv ->
      Codec.Writer.u8 w 1;
      write_invocation w inv

let read_opt_invocation r =
  match Codec.Reader.u8 r with 0 -> None | _ -> Some (read_invocation r)

let encode_record record =
  let w = Codec.Writer.create () in
  (match record with
  | Begin { top; attempt; name } ->
      Codec.Writer.u8 w 1;
      Codec.Writer.u32 w top;
      Codec.Writer.u16 w attempt;
      Codec.Writer.string w name
  | Call { top; attempt; seq; inv; comp } ->
      Codec.Writer.u8 w 2;
      Codec.Writer.u32 w top;
      Codec.Writer.u16 w attempt;
      Codec.Writer.u16 w seq;
      write_invocation w inv;
      write_opt_invocation w comp
  | Subcommit { top; attempt; path; comp } ->
      Codec.Writer.u8 w 3;
      Codec.Writer.u32 w top;
      Codec.Writer.u16 w attempt;
      Codec.Writer.u16 w (List.length path);
      List.iter (Codec.Writer.u16 w) path;
      write_opt_invocation w comp
  | Commit { top; attempt } ->
      Codec.Writer.u8 w 4;
      Codec.Writer.u32 w top;
      Codec.Writer.u16 w attempt
  | Abort { top; attempt; reason } ->
      Codec.Writer.u8 w 5;
      Codec.Writer.u32 w top;
      Codec.Writer.u16 w attempt;
      Codec.Writer.string w reason);
  Codec.Writer.contents w

let decode_record s =
  let r = Codec.Reader.create s in
  match Codec.Reader.u8 r with
  | 1 ->
      let top = Codec.Reader.u32 r in
      let attempt = Codec.Reader.u16 r in
      let name = Codec.Reader.string r in
      Begin { top; attempt; name }
  | 2 ->
      let top = Codec.Reader.u32 r in
      let attempt = Codec.Reader.u16 r in
      let seq = Codec.Reader.u16 r in
      let inv = read_invocation r in
      let comp = read_opt_invocation r in
      Call { top; attempt; seq; inv; comp }
  | 3 ->
      let top = Codec.Reader.u32 r in
      let attempt = Codec.Reader.u16 r in
      let n = Codec.Reader.u16 r in
      let path = List.init n (fun _ -> Codec.Reader.u16 r) in
      let comp = read_opt_invocation r in
      Subcommit { top; attempt; path; comp }
  | 4 ->
      let top = Codec.Reader.u32 r in
      let attempt = Codec.Reader.u16 r in
      Commit { top; attempt }
  | 5 ->
      let top = Codec.Reader.u32 r in
      let attempt = Codec.Reader.u16 r in
      let reason = Codec.Reader.string r in
      Abort { top; attempt; reason }
  | k -> failwith (Printf.sprintf "Oplog.decode_record: bad tag %d" k)

let pp_invocation ppf { obj; meth; args } =
  Fmt.pf ppf "%s.%s(%a)" (Obj_id.name obj) meth
    (Fmt.list ~sep:Fmt.comma Value.pp)
    args

let pp_record ppf = function
  | Begin { top; attempt; name } ->
      Fmt.pf ppf "BEGIN T%d.%d %s" top attempt name
  | Call { top; attempt; seq; inv; comp } ->
      Fmt.pf ppf "CALL T%d.%d #%d %a%a" top attempt seq pp_invocation inv
        (Fmt.option (fun ppf c -> Fmt.pf ppf " comp=%a" pp_invocation c))
        comp
  | Subcommit { top; attempt; path; _ } ->
      Fmt.pf ppf "SUBCOMMIT T%d.%d [%a]" top attempt
        (Fmt.list ~sep:(Fmt.any ".") Fmt.int)
        path
  | Commit { top; attempt } -> Fmt.pf ppf "COMMIT T%d.%d" top attempt
  | Abort { top; attempt; reason } ->
      Fmt.pf ppf "ABORT T%d.%d (%s)" top attempt reason

(* -- log object ---------------------------------------------------------------- *)

let create ?file () =
  let sink =
    match file with
    | None -> None
    | Some path ->
        ensure_dir (Filename.dirname path);
        Some
          (open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path)
  in
  {
    entries = Array.make 64 (Commit { top = 0; attempt = 0 });
    len = 0;
    stable_len = 0;
    injector = None;
    sink;
    appends = 0;
    forces = 0;
  }

let open_dir ~dir =
  ensure_dir dir;
  create ~file:(log_file ~dir) ()

let set_injector t inj = t.injector <- inj

let grow t =
  if t.len = Array.length t.entries then begin
    let bigger =
      Array.make (2 * Array.length t.entries) (Commit { top = 0; attempt = 0 })
    in
    Array.blit t.entries 0 bigger 0 t.len;
    t.entries <- bigger
  end

let append t record =
  Crash.point t.injector Crash.Before_append;
  grow t;
  t.entries.(t.len) <- record;
  let lsn = t.len in
  t.len <- t.len + 1;
  t.appends <- t.appends + 1;
  (match t.sink with
  | Some oc ->
      (* frame: u32 length prefix + payload (a torn tail decodes as a
         truncated frame and is dropped by [load]) *)
      let w = Codec.Writer.create () in
      Codec.Writer.lstring w (encode_record record);
      output_string oc (Codec.Writer.contents w)
  | None -> ());
  Crash.point t.injector Crash.After_append;
  lsn

let force t =
  (match t.sink with
  | Some oc -> (
      flush oc;
      try Unix.fsync (Unix.descr_of_out_channel oc) with _ -> ())
  | None -> ());
  t.stable_len <- t.len;
  t.forces <- t.forces + 1;
  Crash.point t.injector Crash.After_force

let close t =
  match t.sink with Some oc -> close_out_noerr oc | None -> ()

let size t = t.len
let stable_size t = t.stable_len
let appends t = t.appends
let forces t = t.forces

let all t = Array.to_list (Array.sub t.entries 0 t.len)
let stable t = Array.to_list (Array.sub t.entries 0 t.stable_len)

(* The log as it looks after a crash: only the forced prefix remains. *)
let crash t =
  {
    entries = Array.sub t.entries 0 (max t.stable_len 1);
    len = t.stable_len;
    stable_len = t.stable_len;
    injector = None;
    sink = None;
    appends = t.stable_len;
    forces = 0;
  }

(* An in-memory log holding the given records, all stable — what a
   server sees after [load]. *)
let of_records records =
  let t = create () in
  List.iter (fun r -> ignore (append t r)) records;
  force t;
  t

(* Stable records from a directory's log file.  A truncated final frame
   (the crash tore an unforced append) ends the scan silently. *)
let load ~dir =
  let path = log_file ~dir in
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let raw = really_input_string ic n in
    close_in_noerr ic;
    (* a crash mid-append leaves a torn final frame: keep the stable
       prefix, drop the tail ([Codec.fold_frames] stops at the first
       incomplete or undecodable frame) *)
    Codec.fold_frames raw ~init:[] ~f:(fun acc frame ->
        decode_record frame :: acc)
    |> List.rev
  end
