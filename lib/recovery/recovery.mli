(** Recovery analysis: from a stable log prefix to a replay plan.

    Pure — the executor that drives the plan through real engine
    dispatch is [Engine.recover].  Analysis groups records into
    attempts and classifies them; the schedule replays every logged
    root call in original log order (repeating history at the method
    level — winners' reads may depend on committed subtransactions of
    later-aborted attempts); Aborted attempts are compensated at their
    original decision point, Incomplete ones (losers) after the
    schedule in reverse begin order. *)

type disposition = Committed | Aborted of string | Incomplete

type attempt = {
  top : int;
  attempt : int;
  name : string;
  mutable calls : (int * Oplog.invocation * Oplog.invocation option) list;
      (** (seq, invocation, compensation), original log order *)
  mutable subcommits : int;
  mutable disposition : disposition;
  mutable skip : bool;
      (** already applied (snapshot dedup): do not replay *)
}

type step =
  | Start of attempt
  | Replay of attempt * Oplog.invocation * Oplog.invocation option
  | Decide of attempt

type plan = {
  schedule : step list;  (** original log order *)
  attempts : attempt list;  (** begin order *)
  winners : (int * int) list;  (** commit order *)
  aborted : (int * int) list;
  losers : (int * int) list;  (** incomplete at the crash, begin order *)
  skipped : (int * int) list;
  next_top : int;
}

val key : attempt -> int * int

val analyze : ?applied:(int * int) list -> Oplog.record list -> plan
(** [applied] marks attempts whose effects are already durable (snapshot
    entries); they are kept in the plan but flagged [skip]. *)

val snapshot_of : ?base:Snapshot.t -> plan -> Snapshot.t
(** Compact the plan's (non-skipped) winners into snapshot entries in
    commit order, appended to [base]'s. *)

val pp_disposition : Format.formatter -> disposition -> unit
