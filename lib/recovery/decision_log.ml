open Ooser_storage

type decision = { top : int; commit : bool; participants : int list }

type t = {
  mutable sink : out_channel option;
  mutable appends : int;
}

let log_file ~dir = Filename.concat dir "decisions.bin"

let encode (d : decision) : string =
  let w = Codec.Writer.create () in
  Codec.Writer.u32 w d.top;
  Codec.Writer.u8 w (if d.commit then 1 else 0);
  Codec.Writer.u16 w (List.length d.participants);
  List.iter (Codec.Writer.u16 w) d.participants;
  Codec.Writer.contents w

let decode (s : string) : decision =
  let r = Codec.Reader.create s in
  let top = Codec.Reader.u32 r in
  let commit = Codec.Reader.u8 r <> 0 in
  let n = Codec.Reader.u16 r in
  let participants = List.init n (fun _ -> Codec.Reader.u16 r) in
  { top; commit; participants }

let open_dir ~dir =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let oc =
    open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 (log_file ~dir)
  in
  { sink = Some oc; appends = 0 }

let append t d =
  match t.sink with
  | Some oc ->
      let w = Codec.Writer.create () in
      Codec.Writer.lstring w (encode d);
      output_string oc (Codec.Writer.contents w);
      t.appends <- t.appends + 1
  | None -> ()

let force t =
  match t.sink with
  | Some oc -> (
      flush oc;
      try Unix.fsync (Unix.descr_of_out_channel oc) with _ -> ())
  | None -> ()

let close t =
  (match t.sink with Some oc -> close_out_noerr oc | None -> ());
  t.sink <- None

let appends t = t.appends

let load ~dir =
  let path = log_file ~dir in
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let raw = really_input_string ic n in
    close_in_noerr ic;
    (* a coordinator crash mid-append leaves a torn final frame: keep
       the stable prefix, exactly like {!Oplog.load} — every decision
       before it was forced and stands *)
    Codec.fold_frames raw ~init:[] ~f:(fun acc frame -> decode frame :: acc)
    |> List.rev
  end

let reset ~dir =
  let path = log_file ~dir in
  if Sys.file_exists path then Sys.remove path

(* In-doubt resolution for one shard's log.  An attempt is in doubt when
   it has a [Begin] but neither [Commit] nor [Abort]; a logged commit
   decision for its top promotes it to a winner by appending a synthetic
   [Commit].  The prepare protocol forced the shard log before voting,
   so every call of a prepared attempt is stable whenever the decision
   is — the synthetic commit never commits a half-logged attempt. *)
let resolve ~decisions records =
  let committed_tops =
    List.filter_map (fun d -> if d.commit then Some d.top else None) decisions
  in
  if committed_tops = [] then records
  else begin
    let begun = Hashtbl.create 16 (* top -> latest attempt *) in
    let closed = Hashtbl.create 16 (* (top, attempt) decided in log *) in
    List.iter
      (fun (r : Oplog.record) ->
        match r with
        | Oplog.Begin { top; attempt; _ } ->
            let last =
              match Hashtbl.find_opt begun top with Some a -> a | None -> -1
            in
            if attempt > last then Hashtbl.replace begun top attempt
        | Oplog.Commit { top; attempt } | Oplog.Abort { top; attempt; _ } ->
            Hashtbl.replace closed (top, attempt) ()
        | Oplog.Call _ | Oplog.Subcommit _ -> ())
      records;
    let synthetic =
      List.filter_map
        (fun top ->
          match Hashtbl.find_opt begun top with
          | Some attempt when not (Hashtbl.mem closed (top, attempt)) ->
              Some (Oplog.Commit { top; attempt })
          | _ -> None)
        committed_tops
    in
    records @ synthetic
  end
