(* Fault injection for the durability stack.

   A crash point is a named site in the logging / recovery code path; an
   armed injector counts hits of its site and raises [Crashed] on the
   chosen one, modelling the process dying at exactly that instruction.
   The harness catches the exception, takes the stable log image
   ([Oplog.crash]) and recovers into a fresh engine — everything the real
   process would have in memory is deliberately abandoned. *)

type site =
  | Before_append  (* process dies before the record reaches the log *)
  | After_append  (* record appended but not yet forced: lost on crash *)
  | After_force  (* record stable: must survive recovery *)
  | Mid_undo  (* during recovery's own undo pass (double crash) *)

exception Crashed of site

type t = { site : site; mutable fuel : int; mutable fired : bool }

let arm site ~after = { site; fuel = after; fired = false }

let site_name = function
  | Before_append -> "before-append"
  | After_append -> "after-append"
  | After_force -> "after-force"
  | Mid_undo -> "mid-undo"

let all_sites = [ Before_append; After_append; After_force; Mid_undo ]

let fired t = t.fired

(* Called from the instrumented sites.  [None] (no injector armed) is
   the production configuration and costs one branch. *)
let point inj site =
  match inj with
  | Some c when c.site = site && not c.fired ->
      if c.fuel <= 0 then begin
        c.fired <- true;
        raise (Crashed site)
      end
      else c.fuel <- c.fuel - 1
  | Some _ | None -> ()

let pp_site ppf s = Fmt.string ppf (site_name s)
