(* Umbrella module for the durability / recovery subsystem. *)

module Crash = Crash
module Oplog = Oplog
module Snapshot = Snapshot
module Recovery = Recovery
module Decision_log = Decision_log
