(** Logical, method-level operation log.

    Records the semantic history of the engine — BEGIN, root-level
    method CALL with the registered compensation, subtransaction COMMIT
    markers, top COMMIT (forced) and ABORT.  Open nesting's recovery
    discipline needs the log at this level: a committed subtransaction
    released its locks, so redo replays the call through the real engine
    dispatch and undo invokes the compensation — physical images only
    cover uncommitted primitive actions (see {!Ooser_storage.Wal}).

    The crash model mirrors [Wal]: exactly the forced prefix survives
    {!crash}.  With a file backend, {!force} flushes and fsyncs; a torn
    final frame on disk is dropped by {!load}. *)

open Ooser_core

type lsn = int

type invocation = { obj : Obj_id.t; meth : string; args : Value.t list }

type record =
  | Begin of { top : int; attempt : int; name : string }
  | Call of {
      top : int;
      attempt : int;
      seq : int;  (** child index under the transaction root *)
      inv : invocation;
      comp : invocation option;
          (** the compensation the method registered (an [Inverse]) *)
    }
  | Subcommit of {
      top : int;
      attempt : int;
      path : int list;  (** hierarchical action number (Def. 2) *)
      comp : invocation option;
    }
  | Commit of { top : int; attempt : int }
  | Abort of { top : int; attempt : int; reason : string }

type t

val create : ?file:string -> unit -> t
(** In-memory log; [file] attaches an append-only file backend. *)

val open_dir : dir:string -> t
(** The standard per-directory log file, created if missing. *)

val of_records : record list -> t
(** An in-memory log holding the given records, all stable. *)

val append : t -> record -> lsn
val force : t -> unit
(** Everything appended so far becomes stable (file backend: flush +
    fsync). *)

val close : t -> unit

val size : t -> int
val stable_size : t -> int

val appends : t -> int
val forces : t -> int

val all : t -> record list
val stable : t -> record list
(** Oldest first. *)

val crash : t -> t
(** The log as seen after a crash: only the forced prefix remains. *)

val load : dir:string -> record list
(** Stable records from [dir]'s log file; a truncated final frame (torn
    unforced append) ends the scan silently.  [[]] when absent. *)

val log_file : dir:string -> string
val rec_file : dir:string -> string

val set_injector : t -> Crash.t option -> unit
(** Arm (or clear) a fault injector consulted at the append/force
    sites. *)

val encode_invocation : invocation -> string
val decode_invocation : string -> invocation

val encode_record : record -> string
val decode_record : string -> record
(** @raise Failure on corrupt input. *)

val pp_record : Format.formatter -> record -> unit
val pp_invocation : Format.formatter -> invocation -> unit
