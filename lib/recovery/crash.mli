(** Fault injection for the durability stack.

    An armed injector counts hits of one crash {!site} and raises
    {!Crashed} on the chosen hit, modelling the process dying at exactly
    that point.  The harness catches it, takes the stable log image and
    recovers into a fresh engine — nothing the live process held in
    memory survives. *)

type site =
  | Before_append  (** dies before the record reaches the log *)
  | After_append  (** record appended but unforced: lost on crash *)
  | After_force  (** record stable: must survive recovery *)
  | Mid_undo  (** during recovery's own undo pass (double crash) *)

exception Crashed of site

type t

val arm : site -> after:int -> t
(** [arm site ~after:k] crashes on the [k+1]-th hit of [site]. *)

val point : t option -> site -> unit
(** Instrumented-site hook.  [None] is the production configuration.
    @raise Crashed when the armed hit is reached. *)

val fired : t -> bool
val all_sites : site list
val site_name : site -> string
val pp_site : Format.formatter -> site -> unit
