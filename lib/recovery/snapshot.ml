(* Logical snapshot: the committed history compacted to one entry per
   winner.

   Taken only at quiescent points (a drained server, or right after a
   completed recovery), where every attempt in the log is decided.  The
   committed projection of the history is certified oo-serializable at
   that point, i.e. equivalent to the serial execution of the winners in
   commit order — which is exactly what restoring from a snapshot does:
   replay each entry's root calls serially, in commit order, through the
   engine.  Aborted attempts have zero net effect (their compensations
   ran) and are dropped.

   Stored as one codec blob, written to a temp file and renamed, so a
   crash during checkpointing leaves the previous snapshot intact. *)

open Ooser_storage

type entry = {
  top : int;
  attempt : int;  (* final attempt in the source log, for dedup keys *)
  name : string;
  calls : Oplog.invocation list;  (* root-level calls, execution order *)
}

type t = { next_top : int; entries : entry list (* commit order *) }

let empty = { next_top = 1; entries = [] }

let keys t = List.map (fun e -> (e.top, e.attempt)) t.entries

let file ~dir = Filename.concat dir "snapshot.bin"

let encode t =
  let w = Codec.Writer.create () in
  Codec.Writer.u32 w t.next_top;
  Codec.Writer.u32 w (List.length t.entries);
  List.iter
    (fun e ->
      Codec.Writer.u32 w e.top;
      Codec.Writer.u16 w e.attempt;
      Codec.Writer.string w e.name;
      Codec.Writer.u32 w (List.length e.calls);
      List.iter
        (fun inv -> Codec.Writer.lstring w (Oplog.encode_invocation inv))
        e.calls)
    t.entries;
  Codec.Writer.contents w

let decode s =
  let r = Codec.Reader.create s in
  let next_top = Codec.Reader.u32 r in
  let n = Codec.Reader.u32 r in
  let entries =
    List.init n (fun _ ->
        let top = Codec.Reader.u32 r in
        let attempt = Codec.Reader.u16 r in
        let name = Codec.Reader.string r in
        let k = Codec.Reader.u32 r in
        let calls =
          List.init k (fun _ ->
              Oplog.decode_invocation (Codec.Reader.lstring r))
        in
        { top; attempt; name; calls })
  in
  { next_top; entries }

let save ~dir t =
  if not (Sys.file_exists dir) then (
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let path = file ~dir in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc (encode t);
  flush oc;
  (try Unix.fsync (Unix.descr_of_out_channel oc) with _ -> ());
  close_out oc;
  Sys.rename tmp path

let load ~dir =
  let path = file ~dir in
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in_bin path in
    let raw = really_input_string ic (in_channel_length ic) in
    close_in_noerr ic;
    match decode raw with t -> Some t | exception Failure _ -> None
  end
