(** Logical snapshot: the committed history compacted to one entry per
    winner, in commit order.

    Valid only when taken at a quiescent point (drained server, or right
    after a completed recovery): the committed projection is then
    certified oo-serializable, i.e. equivalent to the serial execution
    of the winners in commit order — which is exactly how a snapshot is
    restored.  Saved atomically (temp file + rename). *)

type entry = {
  top : int;
  attempt : int;  (** final attempt in the source log (dedup key) *)
  name : string;
  calls : Oplog.invocation list;  (** root-level calls, execution order *)
}

type t = { next_top : int; entries : entry list (** commit order *) }

val empty : t

val keys : t -> (int * int) list
(** [(top, attempt)] of every entry — the already-applied set to skip
    during log replay. *)

val encode : t -> string
val decode : string -> t
(** @raise Failure on corrupt input. *)

val save : dir:string -> t -> unit
val load : dir:string -> t option
(** [None] when absent or unreadable. *)

val file : dir:string -> string
