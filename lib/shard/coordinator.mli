(** The cross-shard certification coordinator.

    Def. 15 records an added action dependency redundantly at {e both}
    participating objects, so every dependency between two transactions
    is visible inside some single shard's schedule — the global
    transaction-level dependency relation is exactly the union of the
    per-shard relations.  The coordinator maintains that union online: a
    preparing shard reports its full current transaction-dependency
    relation, and the coordinator inserts the {e stable} edges — both
    endpoints committed or pinned, so the order is a fact — into one
    Pearce–Kelly incremental graph over transaction tops.  Edges with a
    running unpinned endpoint arrive separately as {e tentative}: they
    refuse the current prepare like any other edge (a real dependency of
    a quiescent preparer is already visible, since all its conflicting
    actions have executed), but are withdrawn after the decision,
    because a wound-wait retry of the running neighbour may flip them.
    An insertion that would close a cycle aborts the preparing
    transaction instead; the surviving per-shard topological orders
    therefore stitch into one acyclic global order.

    Runs in the dispatcher's thread — no internal locking. *)

type t

val create : ?log_dir:string -> unit -> t
(** [log_dir] attaches a forced {!Ooser_recovery.Decision_log} making
    commit decisions durable before any shard acts on them. *)

val certify :
  t ->
  top:int ->
  edges:(int * int) list ->
  tentative:(int * int) list ->
  [ `Ok | `Abort of string ]
(** Insert the reported stable transaction-dependency edges, then check
    the tentative ones transiently.  [`Abort reason] when an insertion
    would close a cycle: [top]'s tracked edges are rolled back and the
    caller must abort the global transaction.  A refused cycle of
    {e stable} edges not passing through [top] is additionally counted
    as a cross-shard violation (it can only arise from an unsound
    reporting schedule) and latches {!clean} to [false]; tentative
    cycles never latch — they may be artefacts of a neighbour's retry. *)

val absorb : t -> edges:(int * int) list -> unit
(** Record stable edges from a vote whose transaction is no longer
    preparing (already decided, or unknown).  The edges are facts about
    the shard schedules independent of that prepare's fate, and the
    shards' vote windows rely on every stable edge reaching the graph;
    a cycle closed here latches {!clean} to [false] — there is no
    preparing transaction left to refuse. *)

val decide : t -> top:int -> participants:int list -> commit:bool -> unit
(** Record (and force, when durable) the decision — the commit point of
    the two-phase protocol. *)

val forget : t -> top:int -> unit
(** Remove every tracked edge incident to [top]. *)

val bury : t -> top:int -> unit
(** {!forget} [top] and remember it as dead — called when the global
    transaction aborts, since its actions leave the history.  Votes
    computed before the abort propagated to every shard may still
    report edges incident to a dead top; {!certify} skips those, they
    are no longer facts. *)

val clean : t -> bool
(** No cross-shard violation detected so far. *)

val nb_vertices : t -> int
val nb_edges : t -> int

val observe_roundtrip : t -> float -> unit
(** Record one prepare→decision round trip, in seconds. *)

val counters : t -> (string * int) list
(** ["2pc-prepares"], ["2pc-commits"], ["2pc-aborts"],
    ["cross-edges"], ["cross-violations"], ["graph-vertices"],
    ["graph-edges"], ["roundtrip-ns-avg"], ["decisions-logged"]. *)

val close : t -> unit
