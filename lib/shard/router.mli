(** Deterministic object → shard placement.

    The router is a pure function of the shard count and the call being
    routed — no table, no handshake, no state.  Every session (and the
    load generator, and a recovered server) therefore computes the same
    assignment, which is what makes shard-local execution sound: a key
    can never be observed on two shards.

    Placement keys: a call whose first argument is a string (the
    encyclopedia's record key, the inventory's product name) is routed
    by [object-name/key], so all calls touching one logical record land
    on one shard regardless of which method touches it; anything else —
    e.g. banking's [Account7] with integer arguments — is routed by the
    object name alone. *)

type t

val create : shards:int -> t
(** @raise Invalid_argument when [shards < 1]. *)

val shards : t -> int

val shard_of_key : t -> string -> int
(** FNV-1a over the key, reduced mod the shard count.  Stable across
    processes and sessions. *)

val placement_key : obj:string -> args:Ooser_core.Value.t list -> string
(** The string actually hashed for a call: ["obj/key"] when the first
    argument is a string, ["obj"] otherwise. *)

val shard_of_call : t -> obj:string -> args:Ooser_core.Value.t list -> int
