open Ooser_core
open Ooser_oodb
open Ooser_recovery

type config = {
  shards : int;
  db_kind : Shard.db_kind;
  protocol_kind : Shard.protocol_kind;
  preload : int;
  fanout : int;
  accounts : int;
  products : int;
  durable_dir : string option;
}

(* -- per-transaction state --------------------------------------------------- *)

type phase =
  | Open
  | Committing1 of int  (* the single participating shard *)
  | Preparing of {
      mutable pending : int list;
      mutable edges : (int * int) list;
      mutable tentative : (int * int) list;
      t0 : float;
    }
  | Deciding of { mutable pending : int list; commit : bool; mutable mixed : bool }
  | Finished of (Value.t, string) result

type gtxn = {
  top : int;
  name : string;
  mutable deadline : float option;
  mutable n_calls : int;
  mutable participants : int list;  (* shard indices, reverse first-touch *)
  next_bseq : (int, int) Hashtbl.t;  (* shard -> next branch-local seq *)
  results : (int, (Value.t, string) result) Hashtbl.t;  (* by global seq *)
  mutable phase : phase;
  mutable abort_reason : string option;  (* first branch failure *)
}

type t = {
  config : config;
  router : Router.t;
  shards : Shard.t array;
  in_process : bool;
      (* shards are cores on this thread (no domains): [await] steps
         them instead of sleeping on the wake pipe *)
  mutable reorder : (Shard.event list -> Shard.event list) option;
      (* delivery-order hook: [poll] hands each drained batch through it
         before running the 2PC state machines, so vote arrival order is
         a scheduling decision rather than wall-clock select order *)
  txns : (int, gtxn) Hashtbl.t;
  seqmap : (int * int * int, int) Hashtbl.t;
      (* (top, shard, branch seq) -> global seq; retained past retire so
         the merged history can renumber committed trees *)
  coord : Coordinator.t;
  events : Shard.event Queue.t;
  ev_mu : Mutex.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  counters : Ooser_sim.Stats.Counter.t;
  next_top_floor : int;
  (* gather slots for the synchronous collectors *)
  mutable token : int;
  mutable got_stats : (int * Shard.event) list;
  mutable got_snaps : (int * Shard.event) list;
  mutable got_ckpt : int list;
  mutable stopped : int list;
}

let router t = t.router
let shards t = Array.length t.shards
let next_top_floor t = t.next_top_floor
let wake_fd t = t.wake_r
let counters t =
  Ooser_sim.Stats.Counter.to_list t.counters @ Coordinator.counters t.coord

let create ?(in_process = false) (config : config) =
  let router = Router.create ~shards:config.shards in
  let stamp = Atomic.make 0 in
  let next_stamp () = Atomic.fetch_and_add stamp 1 in
  let ev_mu = Mutex.create () in
  let events = Queue.create () in
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let emit ev =
    Mutex.lock ev_mu;
    Queue.push ev events;
    Mutex.unlock ev_mu;
    try ignore (Unix.write wake_w (Bytes.make 1 '!') 0 1)
    with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  in
  let decisions =
    match config.durable_dir with
    | Some dir -> Decision_log.load ~dir
    | None -> []
  in
  let shard_dir i =
    Option.map
      (fun dir ->
        if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
        Filename.concat dir (Printf.sprintf "shard-%d" i))
      config.durable_dir
  in
  let shards =
    Array.init config.shards (fun i ->
        let keep key =
          Router.shard_of_call router ~obj:"Enc" ~args:[ Value.Str key ] = i
        in
        (if in_process then Shard.create_core else Shard.create)
          ~idx:i
          {
            Shard.db_kind = config.db_kind;
            protocol_kind = config.protocol_kind;
            preload = config.preload;
            fanout = config.fanout;
            accounts = config.accounts;
            products = config.products;
            keep;
            next_stamp;
            durable_dir = shard_dir i;
            decisions;
          }
          ~emit)
  in
  let next_top_floor =
    Array.fold_left
      (fun acc sh ->
        (* snapshot floor first: a clean-drain checkpoint folds winners
           into the snapshot, where [rec_winners] never sees them *)
        let acc = max acc (Shard.next_top_floor sh) in
        match Shard.recovery sh with
        | Some r ->
            List.fold_left
              (fun acc (top, _) -> max acc (top + 1))
              acc r.Engine.rec_winners
        | None -> acc)
      1 shards
  in
  (* the recovered stamp counter must stay above every replayed stamp;
     recovery replays reassign stamps via next_stamp already, so the
     atomic is naturally past them *)
  {
    config;
    router;
    shards;
    in_process;
    reorder = None;
    txns = Hashtbl.create 256;
    seqmap = Hashtbl.create 1024;
    coord = Coordinator.create ?log_dir:config.durable_dir ();
    events;
    ev_mu;
    wake_r;
    wake_w;
    counters = Ooser_sim.Stats.Counter.create ();
    next_top_floor;
    token = 0;
    got_stats = [];
    got_snaps = [];
    got_ckpt = [];
    stopped = [];
  }

(* -- the engine-like API ----------------------------------------------------- *)

let begin_txn t ~top ~name ~deadline =
  Hashtbl.replace t.txns top
    {
      top;
      name;
      deadline;
      n_calls = 0;
      participants = [];
      next_bseq = Hashtbl.create 4;
      results = Hashtbl.create 8;
      phase = Open;
      abort_reason = None;
    };
  Ooser_sim.Stats.Counter.incr t.counters "txns"

let call t ~top ~obj ~meth ~args =
  match Hashtbl.find_opt t.txns top with
  | None -> ()
  | Some g ->
      let s = Router.shard_of_call t.router ~obj ~args in
      if not (List.mem s g.participants) then begin
        g.participants <- s :: g.participants;
        Shard.send t.shards.(s)
          (Shard.Open_branch { top; name = g.name; deadline = g.deadline })
      end;
      let bseq =
        match Hashtbl.find_opt g.next_bseq s with Some n -> n | None -> 0
      in
      Hashtbl.replace g.next_bseq s (bseq + 1);
      Hashtbl.replace t.seqmap (top, s, bseq) g.n_calls;
      g.n_calls <- g.n_calls + 1;
      Ooser_sim.Stats.Counter.incr t.counters "calls-routed";
      Shard.send t.shards.(s) (Shard.Branch_call { top; seq = bseq; obj; meth; args })

(* the committed value mirrors the engine's body semantics: the last
   successful call's value, unit when there was none *)
let commit_value g =
  let v = ref Value.unit in
  for i = 0 to g.n_calls - 1 do
    match Hashtbl.find_opt g.results i with
    | Some (Ok x) -> v := x
    | Some (Error _) | None -> ()
  done;
  !v

let send_decide t g ~commit ~reason =
  List.iter
    (fun s -> Shard.send t.shards.(s) (Shard.Decide { top = g.top; commit; reason }))
    g.participants

let commit t ~top =
  match Hashtbl.find_opt t.txns top with
  | None -> ()
  | Some g -> (
      match (g.phase, g.participants) with
      | Open, [] ->
          (* a transaction that called nothing commits right here *)
          g.phase <- Finished (Ok Value.unit);
          Ooser_sim.Stats.Counter.incr t.counters "zero-call-commits"
      | Open, [ s ] ->
          g.phase <- Committing1 s;
          Shard.send t.shards.(s) (Shard.Branch_commit { top })
      | Open, ps ->
          g.phase <-
            Preparing
              {
                pending = ps;
                edges = [];
                tentative = [];
                t0 = Unix.gettimeofday ();
              };
          List.iter
            (fun s -> Shard.send t.shards.(s) (Shard.Prepare { top }))
            ps
      | _ -> ())

let abort t ~top ~reason =
  match Hashtbl.find_opt t.txns top with
  | None -> ()
  | Some g -> (
      match g.phase with
      | Finished _ | Deciding _ -> ()
      | Open | Committing1 _ | Preparing _ ->
          Coordinator.bury t.coord ~top;
          if g.participants = [] then g.phase <- Finished (Error reason)
          else begin
            g.phase <-
              Deciding { pending = g.participants; commit = false; mixed = false };
            g.abort_reason <- Some reason;
            send_decide t g ~commit:false ~reason
          end)

let set_deadline t ~top deadline =
  match Hashtbl.find_opt t.txns top with
  | None -> ()
  | Some g ->
      g.deadline <- deadline;
      List.iter
        (fun s -> Shard.send t.shards.(s) (Shard.Set_deadline { top; deadline }))
        g.participants

let txn_state t top =
  match Hashtbl.find_opt t.txns top with
  | None -> `Unknown
  | Some g -> (
      match g.phase with
      | Finished (Ok v) -> `Committed v
      | Finished (Error r) -> `Aborted r
      | _ -> `Running)

let result t ~top ~seq =
  match Hashtbl.find_opt t.txns top with
  | None -> None
  | Some g -> Hashtbl.find_opt g.results seq

let retire t ~top = Hashtbl.remove t.txns top

(* -- 2PC state machine ------------------------------------------------------- *)

let decide_abort t g ~reason =
  Coordinator.bury t.coord ~top:g.top;
  Coordinator.decide t.coord ~top:g.top ~participants:g.participants
    ~commit:false;
  g.abort_reason <- Some reason;
  g.phase <- Deciding { pending = g.participants; commit = false; mixed = false };
  send_decide t g ~commit:false ~reason

let all_votes_in t g pending edges tentative t0 =
  if pending = [] then begin
    match Coordinator.certify t.coord ~top:g.top ~edges ~tentative with
    | `Ok ->
        Coordinator.observe_roundtrip t.coord (Unix.gettimeofday () -. t0);
        Coordinator.decide t.coord ~top:g.top ~participants:g.participants
          ~commit:true;
        g.phase <-
          Deciding { pending = g.participants; commit = true; mixed = false };
        send_decide t g ~commit:true ~reason:""
    | `Abort reason ->
        Coordinator.observe_roundtrip t.coord (Unix.gettimeofday () -. t0);
        decide_abort t g ~reason
  end

let finish_deciding t g ~pending ~commit ~mixed =
  if pending = [] then begin
    (if commit then
       if mixed then begin
         Ooser_sim.Stats.Counter.incr t.counters "mixed-outcomes";
         g.phase <-
           Finished
             (Error
                (Option.value g.abort_reason
                   ~default:"cross-shard commit failed at a participant"))
       end
       else g.phase <- Finished (Ok (commit_value g))
     else
       g.phase <-
         Finished (Error (Option.value g.abort_reason ~default:"aborted")));
    match g.phase with
    | Finished (Ok _) ->
        Ooser_sim.Stats.Counter.incr t.counters "commits";
        Ooser_sim.Stats.Counter.incr t.counters "cross-shard-commits"
    | _ -> Ooser_sim.Stats.Counter.incr t.counters "aborts"
  end

let handle_event t (ev : Shard.event) =
  match ev with
  | Shard.Ev_result { shard; top; seq; r } -> (
      match Hashtbl.find_opt t.txns top with
      | None -> ()
      | Some g -> (
          match Hashtbl.find_opt t.seqmap (top, shard, seq) with
          | Some gseq -> Hashtbl.replace g.results gseq r
          | None -> ()))
  | Shard.Ev_vote { shard; top; edges; tentative; reason } -> (
      match Hashtbl.find_opt t.txns top with
      | None ->
          (* the transaction is gone (retired after a decision), but the
             stable edges are facts the vote windows count on recording *)
          Coordinator.absorb t.coord ~edges:(Option.value edges ~default:[])
      | Some g -> (
          match g.phase with
          | Preparing p -> (
              match edges with
              | Some es ->
                  p.edges <- es @ p.edges;
                  p.tentative <- tentative @ p.tentative;
                  p.pending <- List.filter (fun s -> s <> shard) p.pending;
                  all_votes_in t g p.pending p.edges p.tentative p.t0
              | None ->
                  decide_abort t g
                    ~reason:
                      (if reason = "" then "2PC participant voted no"
                       else reason))
          | _ ->
              Coordinator.absorb t.coord
                ~edges:(Option.value edges ~default:[])))
  | Shard.Ev_decided { shard; top; outcome } -> (
      match Hashtbl.find_opt t.txns top with
      | None -> ()
      | Some g -> (
          match g.phase with
          | Finished _ -> ()
          | Committing1 s when s = shard ->
              (match outcome with
              | Ok v ->
                  g.phase <- Finished (Ok v);
                  Ooser_sim.Stats.Counter.incr t.counters "commits";
                  Ooser_sim.Stats.Counter.incr t.counters "single-shard-commits"
              | Error r ->
                  g.phase <- Finished (Error r);
                  Ooser_sim.Stats.Counter.incr t.counters "aborts";
                  (* edges incident to the aborted transaction reported
                     by neighbours' prepares must go: its actions leave
                     the history *)
                  Coordinator.bury t.coord ~top)
          | Committing1 _ -> ()
          | Open | Preparing _ -> (
              (* a branch died on its own (deadline, hard failure, vote
                 race): the whole transaction aborts *)
              match outcome with
              | Error r ->
                  if g.abort_reason = None then g.abort_reason <- Some r;
                  let others =
                    List.filter (fun s -> s <> shard) g.participants
                  in
                  Coordinator.bury t.coord ~top;
                  if others = [] then begin
                    g.phase <- Finished (Error r);
                    Ooser_sim.Stats.Counter.incr t.counters "aborts"
                  end
                  else begin
                    g.phase <-
                      Deciding { pending = others; commit = false; mixed = false };
                    List.iter
                      (fun s ->
                        Shard.send t.shards.(s)
                          (Shard.Decide { top; commit = false; reason = r }))
                      others
                  end
              | Ok _ -> () (* cannot happen before a decision *))
          | Deciding d ->
              d.pending <- List.filter (fun s -> s <> shard) d.pending;
              (match (outcome, d.commit) with
              | Error r, true ->
                  d.mixed <- true;
                  if g.abort_reason = None then g.abort_reason <- Some r
              | _ -> ());
              finish_deciding t g ~pending:d.pending ~commit:d.commit
                ~mixed:d.mixed))
  | Shard.Ev_wound { shard = _; top } -> (
      Ooser_sim.Stats.Counter.incr t.counters "wound-escalations";
      match Hashtbl.find_opt t.txns top with
      | None -> ()
      | Some g -> (
          match g.phase with
          | Preparing _ ->
              decide_abort t g ~reason:"wounded during 2PC prepare"
          | _ -> () (* decision made or not yet preparing: let it ride *)))
  | Shard.Ev_stats _ as ev -> t.got_stats <- (t.token, ev) :: t.got_stats
  | Shard.Ev_snapshot _ as ev -> t.got_snaps <- (t.token, ev) :: t.got_snaps
  | Shard.Ev_checkpointed { shard; _ } -> t.got_ckpt <- shard :: t.got_ckpt
  | Shard.Ev_stopped { shard } -> t.stopped <- shard :: t.stopped

let drain_pipe fd =
  let buf = Bytes.create 64 in
  let rec go () =
    match Unix.read fd buf 0 64 with
    | 64 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  in
  go ()

let poll t =
  drain_pipe t.wake_r;
  let evs = ref [] in
  Mutex.lock t.ev_mu;
  while not (Queue.is_empty t.events) do
    evs := Queue.pop t.events :: !evs
  done;
  Mutex.unlock t.ev_mu;
  let evs = List.rev !evs in
  let evs = match t.reorder with Some f -> f evs | None -> evs in
  List.iter (handle_event t) evs

let set_delivery_order t f = t.reorder <- f

(* -- in-process driving (model checking) -------------------------------------- *)

let step_shard t i = Shard.step t.shards.(i)
let shard_has_work t i = Shard.has_work t.shards.(i)
let set_vote_full t b = Array.iter (fun sh -> Shard.set_vote_full sh b) t.shards

let pending_events t =
  Mutex.lock t.ev_mu;
  let l = List.of_seq (Queue.to_seq t.events) in
  Mutex.unlock t.ev_mu;
  l

(* Deliver exactly the [n]-th queued event, leaving the rest queued in
   order: the model checker's per-event delivery choice, which subsumes
   every vote-arrival permutation. *)
let deliver t n =
  drain_pipe t.wake_r;
  Mutex.lock t.ev_mu;
  let l = List.of_seq (Queue.to_seq t.events) in
  Queue.clear t.events;
  List.iteri (fun i e -> if i <> n then Queue.push e t.events) l;
  Mutex.unlock t.ev_mu;
  match List.nth_opt l n with
  | Some e ->
      handle_event t e;
      true
  | None -> false

let check_deadlines t =
  let now = Unix.gettimeofday () in
  Hashtbl.iter
    (fun _ g ->
      match (g.phase, g.deadline) with
      | Open, Some d when now > d && g.participants = [] ->
          g.phase <- Finished (Error "deadline exceeded");
          Ooser_sim.Stats.Counter.incr t.counters "aborts"
      | Preparing _, Some d when now > d ->
          (* prepared branches are pinned — their shards will not abort
             them, so the coordinator enforces the deadline *)
          decide_abort t g ~reason:"deadline exceeded"
      | _ -> ())
    t.txns

let nearest_deadline t =
  Hashtbl.fold
    (fun _ g acc ->
      match (g.phase, g.deadline) with
      | (Open | Committing1 _ | Preparing _ | Deciding _), Some d ->
          Some (match acc with Some a -> Float.min a d | None -> d)
      | _ -> acc)
    t.txns None

(* -- synchronous collectors -------------------------------------------------- *)

let await t ~timeout ~done_ =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if t.in_process then Array.iter Shard.step t.shards;
    poll t;
    if done_ () then true
    else begin
      let left = deadline -. Unix.gettimeofday () in
      if left <= 0.0 then false
      else begin
        (if not t.in_process then
           match Unix.select [ t.wake_r ] [] [] (Float.min left 0.05) with
           | _ -> ()
           | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
        go ()
      end
    end
  in
  go ()

type shard_stats = {
  shard : int;
  engine : (string * int) list;
  lock : (string * int) list;
  cert_depth : int;
}

let stats t ?(timeout = 5.0) () =
  t.token <- t.token + 1;
  let token = t.token in
  t.got_stats <- [];
  Array.iter (fun sh -> Shard.send sh (Shard.Stats_req { token })) t.shards;
  let mine () =
    List.filter_map
      (fun (tk, ev) ->
        match ev with
        | Shard.Ev_stats s when tk = token && s.token = token ->
            Some { shard = s.shard; engine = s.engine; lock = s.lock;
                   cert_depth = s.cert_depth }
        | _ -> None)
      t.got_stats
  in
  ignore
    (await t ~timeout ~done_:(fun () ->
         List.length (mine ()) = Array.length t.shards));
  List.sort (fun a b -> Int.compare a.shard b.shard) (mine ())

let snapshots t ~timeout =
  t.token <- t.token + 1;
  let token = t.token in
  t.got_snaps <- [];
  Array.iter (fun sh -> Shard.send sh (Shard.Snapshot_req { token })) t.shards;
  let mine () =
    List.filter_map
      (fun (tk, ev) ->
        match ev with
        | Shard.Ev_snapshot { shard; token = tok; serializable; trees; order }
          when tk = token && tok = token ->
            Some (shard, serializable, trees, order)
        | _ -> None)
      t.got_snaps
  in
  ignore
    (await t ~timeout ~done_:(fun () ->
         List.length (mine ()) = Array.length t.shards));
  mine ()

let certified t ?(timeout = 60.0) () =
  let snaps = snapshots t ~timeout in
  List.length snaps = Array.length t.shards
  && List.for_all (fun (_, serializable, _, _) -> serializable) snaps
  && Coordinator.clean t.coord

(* -- the merged global history ----------------------------------------------- *)

(* Objects are renamed with a per-shard prefix: the shards' databases
   allocate page/node names independently, so shard 0's "Page3" and
   shard 1's "Page3" are different physical objects that must not alias
   in the merged history.  The system object "S" is shared — its spec is
   all-commute everywhere. *)
let shard_obj_name i name = Printf.sprintf "s%d:%s" i name

let merged_registry t =
  Ooser_core.Commutativity.registry
    ~known:(fun o ->
      let n = Obj_id.name o in
      n = "S"
      ||
      match String.index_opt n ':' with
      | Some j -> (
          let i = int_of_string_opt (String.sub n 1 (j - 1)) in
          match i with
          | Some i when n.[0] = 's' && i >= 0 && i < Array.length t.shards ->
              Shard.spec t.shards.(i)
                (Obj_id.v (String.sub n (j + 1) (String.length n - j - 1)))
              <> None
          | _ -> false)
      | None -> false)
    (fun o ->
      let n = Obj_id.name o in
      if n = "S" then Ooser_core.Commutativity.all_commute
      else
        match String.index_opt n ':' with
        | Some j -> (
            let i = int_of_string_opt (String.sub n 1 (j - 1)) in
            match i with
            | Some i when n.[0] = 's' && i >= 0 && i < Array.length t.shards -> (
                match
                  Shard.spec t.shards.(i)
                    (Obj_id.v (String.sub n (j + 1) (String.length n - j - 1)))
                with
                | Some s -> s
                | None -> Ooser_core.Commutativity.all_conflict)
            | _ -> Ooser_core.Commutativity.all_conflict)
        | None -> Ooser_core.Commutativity.all_conflict)

(* Rewrite one shard's branch subtree of transaction [top]: rename its
   objects with the shard prefix and renumber the branch-local child
   position (the head of every action path) to the 1-based global call
   order, preserving virtual ranks. *)
let rewrite_subtree t ~shard ~top (sub : Call_tree.t) =
  let renumber id =
    (* committed call trees never contain virtual duplicates — those
       only appear in Def. 5 extensions computed from a history *)
    match Ids.Action_id.path id with
    | [] -> id
    | j :: rest -> (
        match Hashtbl.find_opt t.seqmap (top, shard, j - 1) with
        | Some gseq -> Ids.Action_id.v ~top ~path:((gseq + 1) :: rest)
        | None -> id)
  in
  let rec go (node : Call_tree.t) =
    let act = node.Call_tree.act in
    let obj = Action.obj act in
    let obj' =
      let renamed = Obj_id.v (shard_obj_name shard (Obj_id.name obj)) in
      if Obj_id.is_virtual obj then
        Obj_id.virtualize renamed ~rank:(Obj_id.rank obj)
      else renamed
    in
    let act' =
      Action.v ~id:(renumber (Action.id act)) ~obj:obj' ~meth:(Action.meth act)
        ~args:(Action.args act) ~process:(Action.process act) ()
    in
    Call_tree.v ~prec:(Call_tree.prec node) act' (List.map go node.Call_tree.children)
  in
  go sub

let merged_history t ?(timeout = 60.0) () =
  let snaps = snapshots t ~timeout in
  (* group per-shard branch trees by top *)
  let by_top : (int, (int * Call_tree.t) list ref) Hashtbl.t =
    Hashtbl.create 256
  in
  List.iter
    (fun (shard, _, trees, _) ->
      List.iter
        (fun (top, tree) ->
          let l =
            match Hashtbl.find_opt by_top top with
            | Some l -> l
            | None ->
                let l = ref [] in
                Hashtbl.replace by_top top l;
                l
          in
          l := (shard, tree) :: !l)
        trees)
    snaps;
  let tops = ref [] in
  let leaf_roots = ref Ids.Action_id.Set.empty in
  Hashtbl.iter
    (fun top branches ->
      let branches = !branches in
      (* global children across all branches, renumbered *)
      let children =
        List.concat_map
          (fun (shard, tree) ->
            List.map
              (fun sub -> rewrite_subtree t ~shard ~top sub)
              (Call_tree.children tree))
          branches
      in
      let children =
        List.sort
          (fun a b ->
            Ids.Action_id.compare
              (Action.id (Call_tree.act a))
              (Action.id (Call_tree.act b)))
          children
      in
      let name =
        match branches with
        | (_, tree) :: _ -> Action.meth (Call_tree.act tree)
        | [] -> "txn"
      in
      let root_act =
        Action.v
          ~id:(Ids.Action_id.root top)
          ~obj:(Obj_id.v "S") ~meth:name
          ~process:(Ids.Process_id.main top)
          ()
      in
      if children = [] then
        (* every branch was an empty leaf: the merged root is a leaf and
           keeps exactly one order entry *)
        leaf_roots := Ids.Action_id.Set.add (Ids.Action_id.root top) !leaf_roots;
      tops := Call_tree.seq root_act children :: !tops)
    by_top;
  let tops =
    List.sort
      (fun a b ->
        Int.compare
          (Ids.Action_id.top (Action.id (Call_tree.act a)))
          (Ids.Action_id.top (Action.id (Call_tree.act b))))
      !tops
  in
  (* interleave the stamped per-shard orders into the one global
     execution order, renumbering ids the same way; root-leaf entries of
     branches whose merged transaction gained children elsewhere are
     dropped (their root is no longer a leaf), and kept exactly once
     otherwise *)
  let entries =
    List.concat_map
      (fun (shard, _, _, order) ->
        List.map (fun (id, stamp) -> (shard, id, stamp)) order)
      snaps
    |> List.sort (fun (_, _, a) (_, _, b) -> Int.compare a b)
  in
  let seen_leaf = Hashtbl.create 16 in
  let order =
    List.filter_map
      (fun (shard, id, _) ->
        let top = Ids.Action_id.top id in
        match Ids.Action_id.path id with
        | [] ->
            if
              Ids.Action_id.Set.mem (Ids.Action_id.root top) !leaf_roots
              && not (Hashtbl.mem seen_leaf top)
            then begin
              Hashtbl.replace seen_leaf top ();
              Some (Ids.Action_id.root top)
            end
            else None
        | j :: rest -> (
            match Hashtbl.find_opt t.seqmap (top, shard, j - 1) with
            | Some gseq -> Some (Ids.Action_id.v ~top ~path:((gseq + 1) :: rest))
            | None -> None))
      entries
  in
  History.v ~tops ~order ~commut:(merged_registry t)

(* -- shutdown ----------------------------------------------------------------- *)

let shutdown t =
  (if t.config.durable_dir <> None then begin
     t.token <- t.token + 1;
     let token = t.token in
     t.got_ckpt <- [];
     Array.iter (fun sh -> Shard.send sh (Shard.Checkpoint_req { token })) t.shards;
     ignore
       (await t ~timeout:30.0 ~done_:(fun () ->
            List.length t.got_ckpt >= Array.length t.shards))
   end);
  t.stopped <- [];
  Array.iter (fun sh -> Shard.send sh Shard.Stop) t.shards;
  ignore
    (await t ~timeout:30.0 ~done_:(fun () ->
         List.length t.stopped >= Array.length t.shards));
  Array.iter Shard.join t.shards;
  Coordinator.close t.coord;
  (match t.config.durable_dir with
  | Some dir -> Decision_log.reset ~dir
  | None -> ());
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  try Unix.close t.wake_w with Unix.Unix_error _ -> ()
