(** The sharded engine's front door: an engine-like facade the server
    drives from its select loop.

    Calls are routed to shards by the {!Router}; a transaction touching
    one shard commits entirely inside it (the hot path — no coordinator
    involvement), while a multi-shard transaction goes through the 2PC
    {!Coordinator}: every participant forces its oplog, pins its branch
    and votes with its Def. 15 dependency edges; the coordinator inserts
    the union into one incremental topological order, logs the decision
    (durably, when configured) and only then lets any shard commit.

    All dispatcher state lives in the caller's thread; shards signal
    readiness through {!wake_fd}, which the server adds to its select
    set, and {!poll} drains their events. *)

open Ooser_core
open Ooser_oodb

type config = {
  shards : int;
  db_kind : Shard.db_kind;
  protocol_kind : Shard.protocol_kind;
  preload : int;
  fanout : int;
  accounts : int;
  products : int;
  durable_dir : string option;
      (** per-shard state lives in [DIR/shard-<i>]; the coordinator's
          decision log in [DIR] itself *)
}

type t

val create : ?in_process:bool -> config -> t
(** [in_process] (default false) builds every shard in core mode — no
    domains: the caller steps shards itself via {!step_shard} (and
    {!await}/the synchronous collectors step them automatically).  The
    whole sharded system then runs single-threaded, which is what makes
    a model-checked run a pure function of its scheduling choices. *)

val router : t -> Router.t
val shards : t -> int

val next_top_floor : t -> int
(** 1 + the highest transaction top recovered from any shard — the
    server must allocate tops above this after a durable boot. *)

val begin_txn : t -> top:int -> name:string -> deadline:float option -> unit
val call : t -> top:int -> obj:string -> meth:string -> args:Value.t list -> unit
val commit : t -> top:int -> unit
val abort : t -> top:int -> reason:string -> unit
val set_deadline : t -> top:int -> float option -> unit

val txn_state :
  t -> int -> [ `Running | `Committed of Value.t | `Aborted of string | `Unknown ]

val result : t -> top:int -> seq:int -> (Value.t, string) result option
(** The (possibly provisional) result of the transaction's [seq]-th
    call, in global call order. *)

val retire : t -> top:int -> unit

val wake_fd : t -> Unix.file_descr
val poll : t -> unit
(** Drain shard events and run the 2PC state machines.  Never blocks.
    When a delivery-order hook is installed the drained batch passes
    through it first. *)

val set_delivery_order : t -> (Shard.event list -> Shard.event list) option -> unit
(** Install (or clear) the delivery-order hook: each batch {!poll}
    drains is handed to the hook before the 2PC state machines run, so
    event arrival order — in particular the order votes reach the
    coordinator — becomes a scheduling decision instead of wall-clock
    select order.  The hook must return a permutation of its input. *)

(** {2 In-process driving (model checking)} *)

val step_shard : t -> int -> unit
(** One scheduling turn of shard [i] (see {!Shard.step}) — core-mode
    dispatchers only. *)

val shard_has_work : t -> int -> bool

val set_vote_full : t -> bool -> unit
(** Audit override on every shard: full-history votes instead of the
    §17 vote window (see {!Shard.set_vote_full}). *)

val pending_events : t -> Shard.event list
(** The queued, not yet handled shard events, in arrival order. *)

val deliver : t -> int -> bool
(** Handle exactly the [n]-th queued event, leaving the others queued —
    the model checker's per-event delivery choice, which subsumes every
    vote-arrival permutation.  False when no such event. *)

val check_deadlines : t -> unit
(** Coordinator-side deadline enforcement for transactions the shards
    cannot abort themselves: zero-call transactions and pinned
    (prepared) participants. *)

val nearest_deadline : t -> float option

type shard_stats = {
  shard : int;
  engine : (string * int) list;
  lock : (string * int) list;
  cert_depth : int;
}

val stats : t -> ?timeout:float -> unit -> shard_stats list
(** Synchronous per-shard counter snapshot (blocks up to [timeout],
    default 5s; missing shards are simply absent from the result). *)

val counters : t -> (string * int) list
(** Dispatcher + coordinator counters: routed calls, single-/cross-shard
    commit counts, 2PC statistics, wound escalations, mixed outcomes. *)

val certified : t -> ?timeout:float -> unit -> bool
(** Every shard's final history passes [Serializability.oo_serializable]
    and the coordinator saw no cross-shard violation.  Sound because
    Def. 15 records every dependency at both objects: the global
    transaction-dependency relation is the union of the per-shard
    relations, all of which the coordinator keeps acyclic. *)

val merged_history : t -> ?timeout:float -> unit -> History.t
(** The stitched global history: per-shard committed call trees of each
    transaction merged under one root, renumbered to global call order,
    objects renamed with a per-shard prefix (two shards' ["Page0"] are
    different physical pages), orders interleaved by shared execution
    stamp.  Only meaningful at quiescence; used by tests and as the
    from-scratch oracle. *)

val shutdown : t -> unit
(** Checkpoint (durable), stop and join every shard, close the
    coordinator. *)
