(** One shard: a complete engine stack (database, lock table,
    incremental certifier, oplog) running its own event loop on a
    dedicated OCaml 5 domain.

    The dispatcher talks to a shard through a mutex-protected command
    mailbox (woken by a self-pipe) and receives {!event}s on a shared
    reply queue.  Single-shard transactions are opened, called and
    committed entirely inside one shard — no cross-domain
    synchronisation beyond the mailbox hand-off.  Cross-shard
    transactions go through {!cmd.Prepare}/{!cmd.Decide}: prepare
    forces the shard's oplog, pins the branch (wound-wait and deadline
    expiry may no longer abort it) and votes with the shard's full
    current transaction-dependency relation for the coordinator's
    Def. 15 edge-exchange certification. *)

open Ooser_core
open Ooser_oodb

type db_kind = [ `Encyclopedia | `Banking | `Inventory ]
type protocol_kind = [ `Open | `Flat | `Closed | `Certify ]

type profile = {
  db_kind : db_kind;
  protocol_kind : protocol_kind;
  preload : int;
  fanout : int;
  accounts : int;
  products : int;
  keep : string -> bool;
      (** placement filter: which preload keys this shard owns *)
  next_stamp : unit -> int;
      (** shared execution-stamp counter (see [Engine.config.next_stamp]) *)
  durable_dir : string option;
      (** this shard's own oplog/snapshot directory *)
  decisions : Ooser_recovery.Decision_log.decision list;
      (** coordinator decisions from the previous incarnation, used to
          resolve in-doubt prepared transactions during boot *)
}

type cmd =
  | Open_branch of { top : int; name : string; deadline : float option }
  | Branch_call of {
      top : int;
      seq : int;
      obj : string;
      meth : string;
      args : Value.t list;
    }
  | Branch_commit of { top : int }  (** single-shard fast path *)
  | Prepare of { top : int }
  | Decide of { top : int; commit : bool; reason : string }
  | Set_deadline of { top : int; deadline : float option }
  | Stats_req of { token : int }
  | Snapshot_req of { token : int }
  | Checkpoint_req of { token : int }
  | Stop

type event =
  | Ev_result of {
      shard : int;
      top : int;
      seq : int;
      r : (Value.t, string) result;
    }
  | Ev_vote of {
      shard : int;
      top : int;
      edges : (int * int) list option;
          (** [Some edges]: yes-vote carrying the stable part of the
              shard's current transaction-dependency relation — edges
              whose endpoints are committed or pinned, i.e. facts the
              coordinator may keep; [None]: no *)
      tentative : (int * int) list;
          (** edges with a running unpinned endpoint: a wound-wait
              retry may still flip them, so the coordinator uses them
              only to refuse this one prepare and then withdraws them *)
      reason : string;
    }
  | Ev_decided of {
      shard : int;
      top : int;
      outcome : (Value.t, string) result;
          (** [Ok v] committed with value [v]; [Error r] aborted *)
    }
  | Ev_wound of { shard : int; top : int }
      (** an older requester tried to wound this pinned (prepared)
          branch — the coordinator must abort the global transaction to
          break a possible cross-shard deadlock *)
  | Ev_stats of {
      shard : int;
      token : int;
      engine : (string * int) list;
      lock : (string * int) list;
      cert_depth : int;  (** committed transactions in this shard *)
    }
  | Ev_snapshot of {
      shard : int;
      token : int;
      serializable : bool;  (** this shard's final history, checked *)
      trees : (int * Call_tree.t) list;
      order : (Ids.Action_id.t * int) list;  (** stamped *)
    }
  | Ev_checkpointed of { shard : int; token : int }
  | Ev_stopped of { shard : int }

type t

val create : idx:int -> profile -> emit:(event -> unit) -> t
(** Build the shard's database/protocol/engine (recovering
    [durable_dir] if set) and start its domain. *)

val create_core : idx:int -> profile -> emit:(event -> unit) -> t
(** Like {!create} but without spawning a domain: the caller drives the
    shard itself through {!step}.  With every shard of a dispatcher in
    core mode, the whole sharded system runs single-threaded on the
    caller's thread — the deterministic configuration the model checker
    explores.  {!join} on a core shard only closes its pipe. *)

val send : t -> cmd -> unit
(** Enqueue and wake — callable from any domain. *)

val step : t -> unit
(** One scheduling turn (core mode): drain and apply queued commands,
    pump the engine to quiescence, emit results/votes/decisions.  The
    domain loop performs exactly this between selects. *)

val has_work : t -> bool
(** Commands queued (or a stop pending): a {!step} would make
    progress. *)

val set_vote_full : t -> bool -> unit
(** Audit override: make every vote carry the dependency edges of the
    full observed history instead of the DESIGN §17 vote window — under
    the lock protocols the pending-retirement window, under [`Certify]
    the validation-frontier watermark window.  The engine counters
    ["vote-windowed"] and ["vote-full-history"] record which mode each
    vote ran in. *)

val idx : t -> int
val recovery : t -> Engine.recovery_report option

(** Smallest safe top for new transactions: the boot snapshot's
    [next_top], covering winners a previous clean-drain checkpoint
    folded away (they never appear in the recovery report). *)
val next_top_floor : t -> int
val spec : t -> Obj_id.t -> Commutativity.spec option
(** The shard database's registered spec — only sound to call while the
    shard is quiescent (merged-history construction at drain). *)

val join : t -> unit
(** Wait for the domain to exit (after {!cmd.Stop}). *)
