open Ooser_core
open Ooser_recovery

module Itop = struct
  type t = int

  let compare = Int.compare
  let pp = Fmt.int
end

module G = Digraph.Make (Itop)

type t = {
  g : G.Incremental.g;
  touched : (int, (int * int) list ref) Hashtbl.t;
      (* top -> edges inserted that are incident to it, for rollback *)
  dead : (int, unit) Hashtbl.t;
      (* aborted tops: their actions left the history, so late votes
         computed before the abort propagated may still carry edges
         incident to them — those are no longer facts and are skipped *)
  log : Decision_log.t option;
  mutable prepares : int;
  mutable commits : int;
  mutable aborts : int;
  mutable edges_inserted : int;
  mutable violations : int;
  mutable decisions_logged : int;
  mutable roundtrips : int;
  mutable roundtrip_s : float;
}

let create ?log_dir () =
  {
    g = G.Incremental.create ();
    touched = Hashtbl.create 64;
    dead = Hashtbl.create 64;
    log = Option.map (fun dir -> Decision_log.open_dir ~dir) log_dir;
    prepares = 0;
    commits = 0;
    aborts = 0;
    edges_inserted = 0;
    violations = 0;
    decisions_logged = 0;
    roundtrips = 0;
    roundtrip_s = 0.0;
  }

let track t top edge =
  let l =
    match Hashtbl.find_opt t.touched top with
    | Some l -> l
    | None ->
        let l = ref [] in
        Hashtbl.replace t.touched top l;
        l
  in
  l := edge :: !l

let forget t ~top =
  (match Hashtbl.find_opt t.touched top with
  | Some l ->
      List.iter
        (fun (a, b) ->
          if G.Incremental.mem_edge t.g a b then G.Incremental.remove_edge t.g a b)
        !l
  | None -> ());
  Hashtbl.remove t.touched top

let bury t ~top =
  forget t ~top;
  Hashtbl.replace t.dead top ()

(* Stable edges are facts about the shard schedules whether or not the
   prepare that computed them is still alive: a vote arriving after its
   transaction finished (decided by deadline, aborted elsewhere) still
   carries permanent knowledge, and the shards' vote windows rely on
   every stable edge reaching the graph exactly once.  A cycle closed
   here has no preparing transaction to refuse — it can only mean a
   dependency was reported too late, so it latches the violation. *)
let absorb t ~edges =
  let dead tid = Hashtbl.mem t.dead tid in
  List.iter
    (fun (a, b) ->
      if not (a = b || dead a || dead b || G.Incremental.mem_edge t.g a b)
      then begin
        G.Incremental.add_vertex t.g a;
        G.Incremental.add_vertex t.g b;
        match G.Incremental.add_edge t.g a b with
        | `Ok ->
            t.edges_inserted <- t.edges_inserted + 1;
            track t a (a, b);
            track t b (a, b)
        | `Cycle _ -> t.violations <- t.violations + 1
      end)
    edges

let certify t ~top ~edges ~tentative =
  t.prepares <- t.prepares + 1;
  let dead tid = Hashtbl.mem t.dead tid in
  let withdraw added =
    List.iter
      (fun (a, b) ->
        if G.Incremental.mem_edge t.g a b then G.Incremental.remove_edge t.g a b)
      added
  in
  (* tentative edges (a running unpinned endpoint, per the shards): good
     for refusing this one prepare — if the dependency is real it is
     already visible, since every conflicting action of a quiescent
     preparer has executed — but withdrawn afterwards, because a
     wound-wait retry may flip them and a stale edge must not poison the
     permanent graph or the violation latch *)
  let rec probe pending added =
    match pending with
    | [] ->
        withdraw added;
        `Ok
    | (a, b) :: rest when a = b || dead a || dead b || G.Incremental.mem_edge t.g a b
      ->
        probe rest added
    | (a, b) :: rest -> (
        G.Incremental.add_vertex t.g a;
        G.Incremental.add_vertex t.g b;
        match G.Incremental.add_edge t.g a b with
        | `Ok -> probe rest ((a, b) :: added)
        | `Cycle ws ->
            withdraw added;
            forget t ~top;
            `Abort
              (Printf.sprintf "cross-shard certification: tentative cycle %s"
                 (String.concat "->" (List.map string_of_int ws))))
  in
  let rec insert = function
    | [] -> probe tentative []
    | (a, b) :: rest when a = b || dead a || dead b -> insert rest
    | (a, b) :: rest ->
        if G.Incremental.mem_edge t.g a b then insert rest
        else begin
          G.Incremental.add_vertex t.g a;
          G.Incremental.add_vertex t.g b;
          match G.Incremental.add_edge t.g a b with
          | `Ok ->
              t.edges_inserted <- t.edges_inserted + 1;
              if a = top || b = top then track t top (a, b);
              (* edges between two other transactions survive [top]'s
                 rollback: they are real dependencies of the shard
                 schedules regardless of this prepare's fate *)
              if a <> top && b <> top then begin
                track t a (a, b);
                track t b (a, b)
              end;
              insert rest
          | `Cycle ws ->
              if not (List.mem top ws) then begin
                (* a refused cycle of committed and in-doubt
                   transactions avoiding the preparing one means some
                   dependency was reported too late to refuse its
                   transaction — latch the violation, the history is no
                   longer certified *)
                t.violations <- t.violations + 1
              end;
              forget t ~top;
              (* the rest of the report is still facts the vote windows
                 count on recording; edges incident to [top] get rolled
                 back when the caller buries it *)
              absorb t ~edges:rest;
              `Abort
                (Printf.sprintf "cross-shard certification: cycle %s"
                   (String.concat "->" (List.map string_of_int ws)))
        end
  in
  insert edges

let decide t ~top ~participants ~commit =
  if commit then t.commits <- t.commits + 1 else t.aborts <- t.aborts + 1;
  match t.log with
  | Some log ->
      Decision_log.append log { Decision_log.top; commit; participants };
      Decision_log.force log;
      t.decisions_logged <- t.decisions_logged + 1
  | None -> ()

let clean t = t.violations = 0
let nb_vertices t = G.Incremental.nb_vertices t.g
let nb_edges t = G.Incremental.nb_edges t.g

let observe_roundtrip t s =
  t.roundtrips <- t.roundtrips + 1;
  t.roundtrip_s <- t.roundtrip_s +. s

let counters t =
  [
    ("2pc-prepares", t.prepares);
    ("2pc-commits", t.commits);
    ("2pc-aborts", t.aborts);
    ("cross-edges", t.edges_inserted);
    ("cross-violations", t.violations);
    ("graph-vertices", nb_vertices t);
    ("graph-edges", nb_edges t);
    ( "roundtrip-ns-avg",
      if t.roundtrips = 0 then 0
      else int_of_float (t.roundtrip_s /. float_of_int t.roundtrips *. 1e9) );
    ("decisions-logged", t.decisions_logged);
  ]

let close t = match t.log with Some log -> Decision_log.close log | None -> ()
