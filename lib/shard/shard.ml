open Ooser_core
open Ooser_oodb
open Ooser_cc
open Ooser_recovery

type db_kind = [ `Encyclopedia | `Banking | `Inventory ]
type protocol_kind = [ `Open | `Flat | `Closed | `Certify ]

type profile = {
  db_kind : db_kind;
  protocol_kind : protocol_kind;
  preload : int;
  fanout : int;
  accounts : int;
  products : int;
  keep : string -> bool;
  next_stamp : unit -> int;
  durable_dir : string option;
  decisions : Decision_log.decision list;
}

type cmd =
  | Open_branch of { top : int; name : string; deadline : float option }
  | Branch_call of {
      top : int;
      seq : int;
      obj : string;
      meth : string;
      args : Value.t list;
    }
  | Branch_commit of { top : int }
  | Prepare of { top : int }
  | Decide of { top : int; commit : bool; reason : string }
  | Set_deadline of { top : int; deadline : float option }
  | Stats_req of { token : int }
  | Snapshot_req of { token : int }
  | Checkpoint_req of { token : int }
  | Stop

type event =
  | Ev_result of {
      shard : int;
      top : int;
      seq : int;
      r : (Value.t, string) result;
    }
  | Ev_vote of {
      shard : int;
      top : int;
      edges : (int * int) list option;
      tentative : (int * int) list;
      reason : string;
    }
  | Ev_decided of { shard : int; top : int; outcome : (Value.t, string) result }
  | Ev_wound of { shard : int; top : int }
  | Ev_stats of {
      shard : int;
      token : int;
      engine : (string * int) list;
      lock : (string * int) list;
      cert_depth : int;
    }
  | Ev_snapshot of {
      shard : int;
      token : int;
      serializable : bool;
      trees : (int * Call_tree.t) list;
      order : (Ids.Action_id.t * int) list;
    }
  | Ev_checkpointed of { shard : int; token : int }
  | Ev_stopped of { shard : int }

(* -- branches: the shard-local half of a transaction -------------------------

   The same command-log bridge as the server's [Session]: calls are
   appended to a log, the engine body is a replay loop parking on
   [Runtime.await] past the end, so engine-internal retries (wound-wait
   restarts, certification failures) re-execute the logged prefix
   invisibly. *)

type bcmd = B_call of { obj : Obj_id.t; meth : string; args : Value.t list }

type branch = {
  top : int;
  mutable cmds : bcmd array;
  mutable n_cmds : int;
  mutable committing : bool;  (* C_commit appended (decide or fast path) *)
  mutable emitted : int;  (* call results already sent to the dispatcher *)
  results : (int, (Value.t, string) result) Hashtbl.t;
  mutable prepare_requested : bool;
  mutable voted : bool;
}

let new_branch ~top =
  {
    top;
    cmds = Array.make 8 (B_call { obj = Obj_id.v "?"; meth = ""; args = [] });
    n_cmds = 0;
    committing = false;
    emitted = 0;
    results = Hashtbl.create 8;
    prepare_requested = false;
    voted = false;
  }

let push_call br c =
  if br.n_cmds = Array.length br.cmds then begin
    let bigger = Array.make (2 * Array.length br.cmds) c in
    Array.blit br.cmds 0 bigger 0 br.n_cmds;
    br.cmds <- bigger
  end;
  br.cmds.(br.n_cmds) <- c;
  br.n_cmds <- br.n_cmds + 1

let body (br : branch) (ctx : Runtime.ctx) : Value.t =
  let cursor = ref 0 in
  let rec loop last =
    if !cursor < br.n_cmds then begin
      let (B_call { obj; meth; args }) = br.cmds.(!cursor) in
      let callno = !cursor in
      incr cursor;
      let r = Runtime.try_call ctx obj meth args in
      Hashtbl.replace br.results callno r;
      loop (match r with Ok v -> v | Error _ -> last)
    end
    else if br.committing then last
    else begin
      Runtime.await ctx;
      loop last
    end
  in
  loop Value.unit

(* -- the shard ------------------------------------------------------------- *)

type t = {
  idx : int;
  profile : profile;
  db : Database.t;
  engine : Engine.t;
  protocol : Protocol.t;
  journal : Oplog.t option;
  mutable base_snap : Snapshot.t;
  recovery : Engine.recovery_report option;
  inbox : cmd Queue.t;
  inbox_mu : Mutex.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  emit : event -> unit;
  branches : (int, branch) Hashtbl.t;
  pending : (int, int list) Hashtbl.t;
      (* committed tops that can still have unreported edges to a
         concurrent neighbour: top -> the unpinned running tops at its
         commit.  The top stays in the vote window until every waiter
         has decided; transactions starting later can only acquire
         forward (retained-lock-ordered) edges to it, which cannot
         close a cycle under the lock protocols *)
  dep_probes : (string * string * Value.t list * string * Value.t list, bool) Hashtbl.t;
  mutable dep_commut : Commutativity.registry option;
  mutable vote_full : bool;
      (* audit override: vote with the full observed history even where
         the window argument applies — the model checker compares the
         outcomes of both modes schedule by schedule *)
  mutable cert_watermark : int;
      (* [`Certify] vote window: the validation frontier observed at the
         previous vote.  Committed tops all of whose stamps lie below it
         are settled — out of the window — because no new edge can point
         into them; monotone, one vote behind the frontier *)
  mutable stopping : bool;
  mutable stop_emitted : bool;
  mutable domain : unit Domain.t option;
}

let idx t = t.idx
let recovery t = t.recovery

let next_top_floor t =
  (* the boot snapshot's floor covers winners folded by a previous
     clean-drain checkpoint, which leave no trace in [rec_winners] *)
  t.base_snap.Snapshot.next_top
let spec t o = Database.spec t.db o

let build_db (p : profile) =
  let db = Database.create () in
  (match p.db_kind with
  | `Encyclopedia ->
      let enc = Encyclopedia.create ~fanout:p.fanout db in
      Ooser_workload.Enc_workload.preload ~keep:p.keep db enc ~keys:p.preload
  | `Banking ->
      for i = 0 to p.accounts - 1 do
        ignore
          (Ooser_workload.Banking.register_account db ~semantics:`Escrow i
             ~balance:100 ~low:0 ~high:1_000_000)
      done
  | `Inventory ->
      ignore (Ooser_workload.Inventory.create ~products:p.products db));
  db

let build_protocol (p : profile) db =
  let reg = Database.spec_registry db in
  match p.protocol_kind with
  | `Open -> Protocol.open_nested ~reg ()
  | `Flat -> Protocol.flat_2pl ~reg ()
  | `Closed -> Protocol.closed_nested ~reg ()
  | `Certify -> Protocol.unlocked ()

(* Per-shard durable boot, mirroring the server's: snapshot + stable log
   replayed through a fresh engine — with the coordinator's decision
   log resolving in-doubt prepared transactions first — then a
   checkpoint and a fresh journal. *)
let durable_boot ~dir ~decisions ~engine_config db protocol =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let snapshot = Snapshot.load ~dir in
  let records = Decision_log.resolve ~decisions (Oplog.load ~dir) in
  let eng, report =
    Engine.recover ~config:engine_config ?snapshot db ~protocol
      (Oplog.of_records records)
  in
  let base = Option.value snapshot ~default:Snapshot.empty in
  let snap = Recovery.snapshot_of ~base report.Engine.plan in
  Snapshot.save ~dir snap;
  (try Sys.remove (Oplog.log_file ~dir) with Sys_error _ -> ());
  let journal = Oplog.open_dir ~dir in
  Engine.set_journal eng (Some journal);
  (eng, journal, snap, report)

(* -- event emission after a pump ------------------------------------------- *)

let emit_results sh br =
  let n = br.n_cmds in
  let continue = ref true in
  while !continue && br.emitted < n do
    match Hashtbl.find_opt br.results br.emitted with
    | Some r ->
        sh.emit (Ev_result { shard = sh.idx; top = br.top; seq = br.emitted; r });
        br.emitted <- br.emitted + 1
    | None -> continue := false
  done

(* A transaction's reported order is a *fact* only once it can no longer
   be re-executed or rolled back: committed tops and pinned (voted,
   in-doubt) branches.  A running unpinned branch can still be wound and
   retried, and the retry may re-execute it on the other side of a
   neighbour — flipping the edge; an aborted branch's actions are in the
   middle of leaving the history altogether.  Stable edges go into the
   coordinator's permanent graph; unstable ones are reported separately
   as tentative, good for refusing the current prepare but withdrawn
   afterwards (a stale edge in the permanent graph would refuse — and
   latch violations on — cycles that never happened). *)
let stable_top sh tid =
  match Hashtbl.find_opt sh.branches tid with
  | Some br -> (
      match Engine.txn_state sh.engine tid with
      | `Committed _ -> true
      | `Aborted _ -> false
      | `Running | `Unknown -> br.voted)
  | None -> true (* retired: part of the committed history *)

(* The shard's current top-level transaction dependency relation, over
   committed, in-doubt and running neighbours (Def. 15 says every
   dependency is recorded at both objects, so this per-shard relation is
   this shard's complete contribution to the global one), split into
   (stable, tentative).  Only dependencies that escalate all the way to
   root endpoints count: a lower-level dependency stopped by commuting
   callers does not constrain the top-level order (same rule as the
   oracle's serial witness), and page-level edges between tops whose
   methods commute would otherwise report opposite directions at
   different objects for perfectly serializable histories. *)
(* [Schedule.compute] probes the raw specs on every conflict test; a
   vote recomputes the schedule of the whole observed history, so
   without memoisation each prepare costs hundreds of milliseconds of
   repeated spec probes — all of it inside the shard's domain loop,
   stalling every other transaction on the shard.  Stable specs answer
   purely from (method, args) pairs, so their probes memoize across
   votes (same keying as [Commutativity.cached]); unstable specs pass
   through untouched. *)
let memo_registry sh (reg : Commutativity.registry) =
  Commutativity.registry ~known:(Commutativity.known reg) (fun o ->
      let s = Commutativity.spec_for reg o in
      if not (Commutativity.stable s) then s
      else
        Commutativity.make ~stable:true ~name:(Commutativity.name s)
          (fun a a' ->
            let key =
              ( Obj_id.name (Obj_id.original (Action.obj a)),
                Action.meth a,
                Action.args a,
                Action.meth a',
                Action.args a' )
            in
            match Hashtbl.find_opt sh.dep_probes key with
            | Some b -> b
            | None ->
                let b = Commutativity.test s a a' in
                Hashtbl.add sh.dep_probes key b;
                b))

(* Under the lock protocols, computing a vote's edges over the whole
   observed history is wasted work: retained locks order conflicting
   root-level work across commit boundaries, so a committed transaction
   none of whose edges touch a still-running neighbour can gain no new
   inbound dependency — every future edge leaves it towards a younger
   transaction, and such forward edges cannot close a cycle.  The vote
   window is therefore the live branches plus the committed [pending]
   tops, and a pending top retires from the window as soon as a vote
   finds no tentative edge touching it (its stable edges are then
   permanently recorded by the coordinator — see [Coordinator.absorb]
   for votes that arrive after their transaction is gone).

   The unlocked [`Certify] protocol has no retained locks, so the
   pending-retirement argument does not apply; its window anchors on
   the engine's validation frontier instead (DESIGN §17): dependency
   edges point from the earlier execution stamp to the later one, so a
   committed transaction all of whose stamps lie below the smallest
   stamp of any still-running transaction can never again become the
   TARGET of a new edge — it cannot join a new cycle, and every edge
   between two such settled transactions was already reported stable at
   the later one's own (pinned) vote.  Settled transactions can still
   be the SOURCE of an edge to a live neighbour, which is why the shard
   advances a monotone watermark one vote behind the instantaneous
   frontier rather than using the frontier directly: a transaction
   stays in the window through the vote that observes it settled.  The
   model checker's vote-window audit re-runs every explored schedule
   with [vote_full] and requires identical per-transaction outcomes. *)
let vote_window sh h =
  if sh.vote_full then begin
    (* audit override: pay the full-history certification the window is
       claimed to be equivalent to, and make the cost visible *)
    Ooser_sim.Stats.Counter.incr (Engine.counters sh.engine)
      "vote-full-history";
    h
  end
  else begin
    Ooser_sim.Stats.Counter.incr (Engine.counters sh.engine) "vote-windowed";
    let keep = Hashtbl.create 64 in
    Hashtbl.iter (fun top _ -> Hashtbl.replace keep top ()) sh.pending;
    Hashtbl.iter (fun top _ -> Hashtbl.replace keep top ()) sh.branches;
    (match sh.profile.protocol_kind with
    | `Certify ->
        List.iter
          (fun (id, stamp) ->
            if stamp >= sh.cert_watermark then
              Hashtbl.replace keep (Ids.Action_id.top id) ())
          (Engine.stamped_order sh.engine);
        let f = Engine.validation_frontier sh.engine in
        if f < max_int && f > sh.cert_watermark then sh.cert_watermark <- f
    | `Open | `Flat | `Closed -> ());
    let tops =
      List.filter
        (fun tree ->
          Hashtbl.mem keep (Ids.Action_id.top (Action.id (Call_tree.act tree))))
        (History.tops h)
    in
    let order =
      List.filter
        (fun a -> Hashtbl.mem keep (Ids.Action_id.top a))
        (History.order h)
    in
    History.v ~tops ~order ~commut:(History.commut h)
  end

let dependency_edges sh =
  let t0 = Unix.gettimeofday () in
  let full = Engine.observed_history sh.engine in
  let commut =
    match sh.dep_commut with
    | Some r -> r
    | None ->
        let r = memo_registry sh (History.commut full) in
        sh.dep_commut <- Some r;
        r
  in
  let w = vote_window sh full in
  let h = History.v ~tops:(History.tops w) ~order:(History.order w) ~commut in
  let sched = Schedule.compute h in
  (* vote cost is the sharded server's critical path: SHARD_DEBUG=1
     prints window-size/full-size and elapsed per computation *)
  (if Sys.getenv_opt "SHARD_DEBUG" <> None then
     Printf.eprintf "[shard%d] dep_edges %d/%d tops %.1fms\n%!" sh.idx
       (List.length (History.top_ids h))
       (List.length (History.top_ids full))
       (1000. *. (Unix.gettimeofday () -. t0)));
  let edges =
    List.fold_left
      (fun acc (os : Schedule.object_schedule) ->
        Action.Rel.fold_edges
          (fun a b acc ->
            if Ids.Action_id.is_root a && Ids.Action_id.is_root b then
              let ta = Ids.Action_id.top a and tb = Ids.Action_id.top b in
              if ta = tb then acc else (ta, tb) :: acc
            else acc)
          os.Schedule.txn_dep acc)
      [] (Schedule.objects sched)
  in
  List.partition
    (fun (a, b) -> stable_top sh a && stable_top sh b)
    (List.sort_uniq compare edges)

let try_vote sh br =
  if
    br.prepare_requested && (not br.voted) && (not br.committing)
    && Hashtbl.length br.results >= br.n_cmds
    && Engine.txn_quiescent sh.engine ~top:br.top
  then begin
    (* the vote promise: everything this branch did is stable before the
       coordinator may log a commit decision *)
    (match sh.journal with Some j -> Oplog.force j | None -> ());
    Engine.pin sh.engine ~top:br.top;
    br.voted <- true;
    let stable, tentative = dependency_edges sh in
    sh.emit
      (Ev_vote
         {
           shard = sh.idx;
           top = br.top;
           edges = Some stable;
           tentative;
           reason = "";
         })
  end

let emit_progress sh =
  List.iter
    (fun top -> sh.emit (Ev_wound { shard = sh.idx; top }))
    (Engine.take_wounded_pinned sh.engine);
  let decided = ref [] in
  Hashtbl.iter
    (fun _ br ->
      emit_results sh br;
      match Engine.txn_state sh.engine br.top with
      | `Committed v ->
          let waiters =
            Hashtbl.fold
              (fun top other acc ->
                if
                  top <> br.top && (not other.voted)
                  && Engine.txn_state sh.engine top = `Running
                then top :: acc
                else acc)
              sh.branches []
          in
          Hashtbl.replace sh.pending br.top waiters;
          sh.emit
            (Ev_decided { shard = sh.idx; top = br.top; outcome = Ok v });
          ignore (Engine.retire sh.engine ~top:br.top);
          decided := br.top :: !decided
      | `Aborted reason ->
          sh.emit
            (Ev_decided
               { shard = sh.idx; top = br.top; outcome = Error reason });
          ignore (Engine.retire sh.engine ~top:br.top);
          decided := br.top :: !decided
      | `Running -> try_vote sh br
      | `Unknown -> ())
    sh.branches;
  List.iter (Hashtbl.remove sh.branches) !decided;
  (* committed tops leave the vote window once every transaction that
     ran unpinned beside them has decided *)
  let updates =
    Hashtbl.fold
      (fun top waiters acc ->
        let live = List.filter (Hashtbl.mem sh.branches) waiters in
        if List.compare_lengths live waiters <> 0 then (top, live) :: acc
        else acc)
      sh.pending []
  in
  List.iter
    (fun (top, live) ->
      if live = [] then Hashtbl.remove sh.pending top
      else Hashtbl.replace sh.pending top live)
    updates

(* -- command application ---------------------------------------------------- *)

let apply sh = function
  | Open_branch { top; name; deadline } ->
      if not (Hashtbl.mem sh.branches top) then begin
        let br = new_branch ~top in
        Hashtbl.replace sh.branches top br;
        Engine.submit sh.engine ~top ~name ?deadline (body br)
      end
  | Branch_call { top; seq = _; obj; meth; args } -> (
      match Hashtbl.find_opt sh.branches top with
      | Some br ->
          push_call br (B_call { obj = Obj_id.v obj; meth; args });
          ignore (Engine.poke sh.engine top)
      | None -> ())
  | Branch_commit { top } -> (
      match Hashtbl.find_opt sh.branches top with
      | Some br ->
          br.committing <- true;
          ignore (Engine.poke sh.engine top)
      | None -> ())
  | Prepare { top } -> (
      match Hashtbl.find_opt sh.branches top with
      | Some br -> br.prepare_requested <- true
      | None ->
          sh.emit
            (Ev_vote
               {
                 shard = sh.idx;
                 top;
                 edges = None;
                 tentative = [];
                 reason = "unknown branch";
               }))
  | Decide { top; commit; reason } -> (
      match Hashtbl.find_opt sh.branches top with
      | Some br ->
          if commit then begin
            br.committing <- true;
            ignore (Engine.poke sh.engine top)
          end
          else begin
            Engine.unpin sh.engine ~top;
            ignore (Engine.abort_top sh.engine ~top reason)
          end
      | None -> ())
  | Set_deadline { top; deadline } -> Engine.set_deadline sh.engine ~top deadline
  | Stats_req { token } ->
      let engine = Ooser_sim.Stats.Counter.to_list (Engine.counters sh.engine) in
      let lock = Ooser_sim.Stats.Counter.to_list (Protocol.counters sh.protocol) in
      let cert_depth = List.length (Engine.committed_trees sh.engine) in
      sh.emit (Ev_stats { shard = sh.idx; token; engine; lock; cert_depth })
  | Snapshot_req { token } ->
      let serializable =
        Serializability.oo_serializable (Engine.final_history sh.engine)
      in
      sh.emit
        (Ev_snapshot
           {
             shard = sh.idx;
             token;
             serializable;
             trees = Engine.committed_trees sh.engine;
             order = Engine.stamped_order sh.engine;
           })
  | Checkpoint_req { token } ->
      (match (sh.journal, sh.profile.durable_dir) with
      | Some j, Some dir ->
          Oplog.force j;
          let plan = Recovery.analyze (Oplog.all j) in
          let snap = Recovery.snapshot_of ~base:sh.base_snap plan in
          Snapshot.save ~dir snap;
          Engine.set_journal sh.engine None;
          Oplog.close j;
          (try Sys.remove (Oplog.log_file ~dir) with Sys_error _ -> ());
          sh.base_snap <- snap
      | _ -> ());
      sh.emit (Ev_checkpointed { shard = sh.idx; token })
  | Stop -> sh.stopping <- true

(* -- the domain loop -------------------------------------------------------- *)

let nearest_deadline sh =
  Hashtbl.fold
    (fun top _ acc ->
      match Engine.deadline_of sh.engine ~top with
      | Some d -> Some (match acc with Some a -> Float.min a d | None -> d)
      | None -> acc)
    sh.branches None

let drain_inbox sh =
  Mutex.lock sh.inbox_mu;
  let cmds = ref [] in
  while not (Queue.is_empty sh.inbox) do
    cmds := Queue.pop sh.inbox :: !cmds
  done;
  Mutex.unlock sh.inbox_mu;
  List.rev !cmds

let drain_pipe fd =
  let buf = Bytes.create 64 in
  let rec go () =
    match Unix.read fd buf 0 64 with
    | 64 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  in
  go ()

(* One scheduling turn, shared by the domain loop and the in-process
   (model-checking) driver: drain and apply queued commands, advance the
   engine to quiescence, report progress.  Everything in here runs on
   whichever thread calls it — in core mode that is the dispatcher's own
   thread, which is what makes a model-checked run single-threaded and
   therefore a pure function of the scheduler's choices. *)
let step sh =
  drain_pipe sh.wake_r;
  let cmds = drain_inbox sh in
  List.iter (apply sh) cmds;
  Engine.check_deadlines sh.engine;
  ignore (Engine.pump sh.engine);
  emit_progress sh;
  if sh.stopping && (not sh.stop_emitted) && Hashtbl.length sh.branches = 0
  then begin
    (match sh.journal with Some j -> Oplog.force j | None -> ());
    sh.stop_emitted <- true;
    sh.emit (Ev_stopped { shard = sh.idx })
  end

let has_work sh =
  Mutex.lock sh.inbox_mu;
  let n = Queue.length sh.inbox in
  Mutex.unlock sh.inbox_mu;
  n > 0 || (sh.stopping && not sh.stop_emitted)

let set_vote_full sh b = sh.vote_full <- b

let loop sh =
  let rec go () =
    let timeout =
      let cap = 0.25 in
      match nearest_deadline sh with
      | Some d -> Float.max 0.0 (Float.min cap (d -. Unix.gettimeofday ()))
      | None -> cap
    in
    (match Unix.select [ sh.wake_r ] [] [] timeout with
    | [ _ ], _, _ -> drain_pipe sh.wake_r
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    step sh;
    if not sh.stop_emitted then go ()
  in
  go ()

let create_core ~idx (profile : profile) ~emit =
  let db = build_db profile in
  let protocol = build_protocol profile db in
  let engine_config =
    {
      (Engine.default_config protocol) with
      Engine.deadlock = Engine.Wound_wait;
      certify = profile.protocol_kind = `Certify;
      now = Unix.gettimeofday;
      next_stamp = Some profile.next_stamp;
    }
  in
  let engine, journal, base_snap, recovery =
    match profile.durable_dir with
    | None ->
        (Engine.create ~config:engine_config db ~protocol [], None,
         Snapshot.empty, None)
    | Some dir ->
        let eng, journal, snap, report =
          durable_boot ~dir ~decisions:profile.decisions ~engine_config db
            protocol
        in
        (eng, Some journal, snap, Some report)
  in
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let sh =
    {
      idx;
      profile;
      db;
      engine;
      protocol;
      journal;
      base_snap;
      recovery;
      inbox = Queue.create ();
      inbox_mu = Mutex.create ();
      wake_r;
      wake_w;
      emit;
      branches = Hashtbl.create 64;
      pending = Hashtbl.create 64;
      dep_probes = Hashtbl.create 4096;
      dep_commut = None;
      vote_full = false;
      cert_watermark = 0;
      stopping = false;
      stop_emitted = false;
      domain = None;
    }
  in
  sh

let create ~idx (profile : profile) ~emit =
  let sh = create_core ~idx profile ~emit in
  sh.domain <- Some (Domain.spawn (fun () -> loop sh));
  sh

let send t cmd =
  Mutex.lock t.inbox_mu;
  Queue.push cmd t.inbox;
  Mutex.unlock t.inbox_mu;
  try ignore (Unix.write t.wake_w (Bytes.make 1 '!') 0 1)
  with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EPIPE), _, _) ->
    ()

let join t =
  (match t.domain with Some d -> Domain.join d | None -> ());
  t.domain <- None;
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  try Unix.close t.wake_w with Unix.Unix_error _ -> ()
