open Ooser_core

type t = { shards : int }

let create ~shards =
  if shards < 1 then invalid_arg "Router.create: shards must be >= 1";
  { shards }

let shards t = t.shards

(* FNV-1a, 64-bit.  OCaml's native ints are 63-bit, so the offset basis
   is truncated to 62 bits; the lost entropy is irrelevant for a mod-N
   bucket. *)
let fnv1a (s : string) : int =
  let offset_basis = 0xbf29ce484222325 in
  let prime = 0x100000001b3 in
  let h = ref offset_basis in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * prime)
    s;
  !h land max_int

let shard_of_key t key = fnv1a key mod t.shards

let placement_key ~obj ~args =
  match args with
  | Value.Str k :: _ -> obj ^ "/" ^ k
  | _ -> obj

let shard_of_call t ~obj ~args = shard_of_key t (placement_key ~obj ~args)
