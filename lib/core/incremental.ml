(* Incremental oo-serializability certification.

   [Schedule.compute]/[Serializability.check] re-derive the whole system
   extension (Def. 5) and every per-object dependency relation (Defs. 10,
   11, 15) from scratch on each history prefix — O(n²) commutativity
   probes per certification.  This module maintains the same relations
   *online*, one committed transaction at a time, so a commit certifies
   in time proportional to the new dependency edges it introduces, not to
   the length of the history.

   The construction is a semi-naive (worklist) evaluation of the same
   fixpoint the oracle computes.  It is exact — byte-for-byte the same
   edge sets — because the base is already at its fixpoint (every
   previously committed prefix was certified) and every edge-producing
   decision is time-invariant once made:

   - an action's leaf status, span start and virtual rank depend only on
     its own call tree, which is immutable after commit;
   - span starts are global execution stamps, assigned monotonically as
     primitives execute, so order comparisons never change;
   - commutativity decisions are required to be {e stable}
     ({!Commutativity.stable}): pure in the (method, args) pairs.  State-
     reading specs (escrow, fifo) would let an old non-edge become an
     edge later, which no incremental scheme can absorb — callers must
     fall back to the from-scratch oracle for those (the engine does).

   Cycle detection is online too: each per-object relation (action,
   transaction, combined = action ∪ added, Defs. 11/10/15-16) lives in a
   Pearce–Kelly dynamic topological order ({!Digraph.S.Incremental}), so
   inserting an edge either preserves acyclicity in time bounded by the
   affected region or returns a witness cycle.  A rejected commit is
   rolled back: edge insertions are journaled and removed (removal never
   invalidates a topological order), the persistent core snapshot is
   restored in O(1).

   Conflict scanning is sub-quadratic: each object's actions are
   bucketed by their (method, args) class.  For a stable spec one
   memoized probe ({!Commutativity.cached_test}) decides a whole
   commuting class — the probe is the raw spec query, deliberately not
   {!Commutativity.commutes}, whose same-process short-circuit on the
   representative would wrongly skip members from other processes.
   Same-process and call-path exclusions only ever {e remove} conflicts,
   so skipping a spec-commuting class is sound. *)

open Ids
module PK = Action.Rel.Incremental
module AMap = Action_id.Map
module ASet = Action_id.Set
module OMap = Obj_id.Map

type relation = [ `Act | `Txn | `Combined ]

type rejection = {
  cyclic_obj : Obj_id.t;
  relation : relation;
  cycle : Action_id.t list;
}

type outcome = {
  accepted : bool;
  rejection : rejection option;
  new_act_edges : int;
  new_txn_edges : int;
}

type stats = {
  commits : int;
  actions : int;  (* including virtual duplicates *)
  act_edges : int;
  txn_edges : int;
  probes : int;  (* member-level conflict tests *)
  class_skips : int;  (* whole classes skipped via one memoized probe *)
  cache_hits : int;
  cache_misses : int;
}

(* The committed-history core, mirroring [Extension.t] incrementally.
   Persistent maps so a pre-commit snapshot is O(1). *)
type core = {
  actions : Action.t AMap.t;  (* moved reals + virtual duplicates *)
  caller : Action_id.t AMap.t;  (* a duplicate's caller is its original *)
  start : int AMap.t;  (* span start: stamp of first primitive below *)
  leaves : ASet.t;  (* primitives + all duplicates (as in Extension) *)
  reals : (Action_id.t * int) list OMap.t;
      (* real action ids (with rank) per ORIGINAL object — the
         duplication frontier when the object's max rank rises *)
  max_rank : int OMap.t;  (* per original object *)
  trees : Call_tree.t list;  (* committed, newest first *)
  order_chunks : (Action_id.t * int) list list;
      (* committed primitives with stamps, one chunk per commit *)
  n_commits : int;
}

let empty_core =
  {
    actions = AMap.empty;
    caller = AMap.empty;
    start = AMap.empty;
    leaves = ASet.empty;
    reals = OMap.empty;
    max_rank = OMap.empty;
    trees = [];
    order_chunks = [];
    n_commits = 0;
  }

(* Per-object mutable state: the three dependency graphs under online
   cycle detection, plus the class-bucketed action index driving the
   conflict scan. *)
type obj_state = {
  o_id : Obj_id.t;
  o_act : PK.g;
  o_txn : PK.g;
  o_comb : PK.g;  (* act ∪ added (Def. 15 / 16) *)
  mutable o_acts : ASet.t;
  o_buckets : (string * Value.t list, Action_id.t list) Hashtbl.t;
}

type undo =
  | U_edge of PK.g * Action_id.t * Action_id.t
  | U_acts of obj_state * ASet.t
  | U_bucket of obj_state * (string * Value.t list) * Action_id.t list
  | U_new_obj of Obj_id.t
  | U_all_txn of (Action_id.t * Action_id.t)

type t = {
  reg : Commutativity.registry;
  cache : Commutativity.cache;
  mutable core : core;
  objs : (Obj_id.t, obj_state) Hashtbl.t;
  all_txn : (Action_id.t * Action_id.t, unit) Hashtbl.t;
      (* union of every object's transaction dependencies (Def. 15) *)
  stable_memo : (Obj_id.t, bool) Hashtbl.t;  (* keyed by original object *)
  mutable journal : undo list;
  mutable probes : int;
  mutable class_skips : int;
}

let create reg =
  {
    reg;
    cache = Commutativity.cached reg;
    core = empty_core;
    objs = Hashtbl.create 64;
    all_txn = Hashtbl.create 256;
    stable_memo = Hashtbl.create 16;
    journal = [];
    probes = 0;
    class_skips = 0;
  }

let registry t = t.reg
let cache t = t.cache
let n_commits t = t.core.n_commits

let history t =
  let order =
    List.concat t.core.order_chunks
    |> List.sort (fun (_, s) (_, s') -> Int.compare s s')
    |> List.map fst
  in
  History.v ~tops:(List.rev t.core.trees) ~order ~commut:t.reg

let objects t = Hashtbl.fold (fun o _ acc -> o :: acc) t.objs []

(* The Def. 15 union projected to root endpoints — the same edge
   currency the shard coordinator exchanges: only dependencies that
   escalate all the way to root endpoints constrain the top-level
   serialization order (a lower-level dependency stopped by commuting
   callers does not).  Offline stitching feeds these, per segment, into
   one global topological order. *)
let root_txn_edges t =
  let seen = Hashtbl.create 256 in
  Hashtbl.fold
    (fun (u, v) () acc ->
      if Action_id.is_root u && Action_id.is_root v then begin
        let e = (Action_id.top u, Action_id.top v) in
        if Hashtbl.mem seen e then acc
        else begin
          Hashtbl.add seen e ();
          e :: acc
        end
      end
      else acc)
    t.all_txn []

let graph_of t o pick =
  match Hashtbl.find_opt t.objs o with
  | None -> Action.Rel.empty
  | Some st -> PK.to_graph (pick st)

let act_dep t o = graph_of t o (fun st -> st.o_act)
let txn_dep t o = graph_of t o (fun st -> st.o_txn)
let combined_dep t o = graph_of t o (fun st -> st.o_comb)

let stats t =
  let act_edges, txn_edges =
    Hashtbl.fold
      (fun _ st (a, x) -> (a + PK.nb_edges st.o_act, x + PK.nb_edges st.o_txn))
      t.objs (0, 0)
  in
  let hits, misses = Commutativity.cache_stats t.cache in
  {
    commits = t.core.n_commits;
    actions = AMap.cardinal t.core.actions;
    act_edges;
    txn_edges;
    probes = t.probes;
    class_skips = t.class_skips;
    cache_hits = hits;
    cache_misses = misses;
  }

(* ---------- internals ---------- *)

exception Reject of rejection

let action_of t id =
  match AMap.find_opt id t.core.actions with
  | Some a -> a
  | None ->
      invalid_arg (Fmt.str "Incremental: unknown action %a" Action_id.pp id)

let start_of t id =
  match AMap.find_opt id t.core.start with Some s -> s | None -> max_int

let is_leaf t id = ASet.mem id t.core.leaves
let caller_of t id = AMap.find_opt id t.core.caller
let obj_of t id = Action.obj (action_of t id)

(* Same conflict test as [Schedule.conflicts], with memoized spec
   queries. *)
let conflicts t a_id b_id =
  (not (Extension.same_call_path a_id b_id))
  && Commutativity.cached_conflicts t.cache (action_of t a_id)
       (action_of t b_id)

let spec_stable t o =
  let orig = Obj_id.original o in
  match Hashtbl.find_opt t.stable_memo orig with
  | Some b -> b
  | None ->
      let b = Commutativity.stable (Commutativity.spec_for t.reg orig) in
      Hashtbl.add t.stable_memo orig b;
      b

let obj_state t o =
  match Hashtbl.find_opt t.objs o with
  | Some s -> s
  | None ->
      let s =
        {
          o_id = o;
          o_act = PK.create ();
          o_txn = PK.create ();
          o_comb = PK.create ();
          o_acts = ASet.empty;
          o_buckets = Hashtbl.create 8;
        }
      in
      Hashtbl.add t.objs o s;
      t.journal <- U_new_obj o :: t.journal;
      s

(* Insert an edge into one PK graph; journal it; reject on cycle.
   Returns whether the edge is new. *)
let insert_edge t st relation g u v =
  if PK.mem_edge g u v then false
  else
    match PK.add_edge g u v with
    | `Ok ->
        t.journal <- U_edge (g, u, v) :: t.journal;
        true
    | `Cycle cycle -> raise (Reject { cyclic_obj = st.o_id; relation; cycle })

let rollback t snapshot =
  List.iter
    (function
      | U_edge (g, u, v) -> PK.remove_edge g u v
      | U_acts (st, old) -> st.o_acts <- old
      | U_bucket (st, key, old) -> (
          match old with
          | [] -> Hashtbl.remove st.o_buckets key
          | _ -> Hashtbl.replace st.o_buckets key old)
      | U_new_obj o -> Hashtbl.remove t.objs o
      | U_all_txn p -> Hashtbl.remove t.all_txn p)
    t.journal;
  (* journal is newest-first: later entries for the same cell are undone
     first, so the oldest (pre-commit) value wins — absolute restores
     make the order immaterial anyway *)
  t.journal <- [];
  t.core <- snapshot

let add_commit t ~tree ~prims =
  let snapshot = t.core in
  t.journal <- [];
  let new_act = ref 0 and new_txn = ref 0 in
  (* worklist of act edges awaiting Def. 10 transaction derivation *)
  let act_q : (obj_state * Action_id.t * Action_id.t) Queue.t =
    Queue.create ()
  in
  let rec add_act st u v =
    if insert_edge t st `Act st.o_act u v then begin
      incr new_act;
      (* every action dependency is also in the combined relation *)
      ignore (insert_edge t st `Combined st.o_comb u v);
      Queue.add (st, u, v) act_q
    end
  (* A new transaction dependency at [st]: record it, attach it to the
     objects of both endpoints (Def. 15), and — when both endpoints live
     on the same object — inherit it as an action dependency there
     (Def. 11), which may recursively derive further dependencies. *)
  and add_txn st u v =
    if insert_edge t st `Txn st.o_txn u v then begin
      incr new_txn;
      if not (Hashtbl.mem t.all_txn (u, v)) then begin
        Hashtbl.add t.all_txn (u, v) ();
        t.journal <- U_all_txn (u, v) :: t.journal;
        let ou = obj_of t u and ov = obj_of t v in
        let stu = obj_state t ou in
        ignore (insert_edge t stu `Combined stu.o_comb u v);
        if Obj_id.equal ou ov then add_act stu u v
        else
          let stv = obj_state t ov in
          ignore (insert_edge t stv `Combined stv.o_comb u v)
      end
    end
  in
  let drain () =
    while not (Queue.is_empty act_q) do
      let st, u, v = Queue.pop act_q in
      (* Def. 10: conflicting dependent actions with distinct callers *)
      if conflicts t u v then
        match (caller_of t u, caller_of t v) with
        | Some p, Some q when not (Action_id.equal p q) -> add_txn st p q
        | _ -> ()
    done
  in
  (* Bootstrap one new action against the actions already present on its
     object (Axiom 1 / completion rule, as in [Schedule.bootstrap]).
     Processing new actions sequentially covers old-new and new-new pairs
     exactly once. *)
  let bootstrap_new st a_id =
    let a = action_of t a_id in
    let a_leaf = is_leaf t a_id in
    let sa = start_of t a_id in
    let consider b_id =
      if a_leaf || is_leaf t b_id then begin
        t.probes <- t.probes + 1;
        if conflicts t a_id b_id then begin
          let sb = start_of t b_id in
          if sa < sb then add_act st a_id b_id
          else if sb < sa then add_act st b_id a_id
        end
      end
    in
    if spec_stable t st.o_id then
      Hashtbl.iter
        (fun _cls members ->
          match members with
          | [] -> ()
          | rep :: _ ->
              if Commutativity.cached_test t.cache a (action_of t rep) then
                t.class_skips <- t.class_skips + 1
              else List.iter consider members)
        st.o_buckets
    else ASet.iter consider st.o_acts;
    t.journal <- U_acts (st, st.o_acts) :: t.journal;
    st.o_acts <- ASet.add a_id st.o_acts;
    let key = (Action.meth a, Action.args a) in
    let old =
      match Hashtbl.find_opt st.o_buckets key with Some l -> l | None -> []
    in
    t.journal <- U_bucket (st, key, old) :: t.journal;
    Hashtbl.replace st.o_buckets key (a_id :: old)
  in
  try
    (* -- 1. integrate the tree into the core (mirrors Extension.extend,
       restricted to what the new tree adds) -- *)
    let t_actions =
      List.fold_left
        (fun m a -> AMap.add (Action.id a) a m)
        AMap.empty (Call_tree.all_actions tree)
    in
    let t_caller = Call_tree.caller_map tree in
    let stamp_of =
      List.fold_left
        (fun m (id, s) -> AMap.add id s m)
        AMap.empty prims
    in
    (* span starts from execution stamps: order-isomorphic to positions
       in the committed order, so every comparison the oracle makes on
       positions gives the same answer on stamps *)
    let rec starts acc node =
      let id = Action.id (Call_tree.act node) in
      if Call_tree.is_primitive node then
        match AMap.find_opt id stamp_of with
        | Some s -> AMap.add id s acc
        | None -> acc
      else
        let acc = List.fold_left starts acc (Call_tree.children node) in
        let mn =
          List.fold_left
            (fun mn c ->
              match AMap.find_opt (Action.id (Call_tree.act c)) acc with
              | Some s -> min mn s
              | None -> mn)
            max_int (Call_tree.children node)
        in
        if mn = max_int then acc else AMap.add id mn acc
    in
    let t_start = starts AMap.empty tree in
    let rank_of id act =
      let obj = Obj_id.original (Action.obj act) in
      let rec count cur n =
        match AMap.find_opt cur t_caller with
        | None -> n
        | Some p ->
            let n =
              match AMap.find_opt p t_actions with
              | Some pa
                when Obj_id.equal (Obj_id.original (Action.obj pa)) obj ->
                  n + 1
              | _ -> n
            in
            count p n
      in
      count id 0
    in
    let t_rank = AMap.mapi rank_of t_actions in
    let tree_prims =
      ASet.of_list (List.map Action.id (Call_tree.primitives tree))
    in
    (* new per-object max ranks *)
    let old_max o =
      match OMap.find_opt o t.core.max_rank with Some k -> k | None -> 0
    in
    let new_max_rank =
      AMap.fold
        (fun id act m ->
          let o = Obj_id.original (Action.obj act) in
          let k = AMap.find id t_rank in
          let cur =
            match OMap.find_opt o m with Some v -> v | None -> old_max o
          in
          if k > cur then OMap.add o k m else m)
        t_actions t.core.max_rank
    in
    let max_of o =
      match OMap.find_opt o new_max_rank with Some k -> k | None -> 0
    in
    (* moved new actions *)
    let core = ref t.core in
    let new_ids = ref [] in
    AMap.iter
      (fun id act ->
        let k = AMap.find id t_rank in
        let moved =
          if k = 0 then act
          else
            { act with Action.obj = Obj_id.virtualize (Action.obj act) ~rank:k }
        in
        let o = Obj_id.original (Action.obj act) in
        core :=
          {
            !core with
            actions = AMap.add id moved !core.actions;
            reals =
              OMap.add o
                ((id, k)
                :: (match OMap.find_opt o !core.reals with
                   | Some l -> l
                   | None -> []))
                !core.reals;
          };
        new_ids := id :: !new_ids)
      t_actions;
    core :=
      {
        !core with
        caller = AMap.union (fun _ a _ -> Some a) t_caller !core.caller;
        start = AMap.union (fun _ a _ -> Some a) t_start !core.start;
        leaves = ASet.union tree_prims !core.leaves;
      };
    (* duplicates: a rank-j real action is duplicated onto O^k for every
       j < k ≤ max_rank(O).  New actions get the full ladder; when a new
       tree raises an object's max rank, the existing reals are
       retroactively duplicated onto the new levels only. *)
    let add_dup orig_id k =
      let o = Obj_id.original (Action.obj (AMap.find orig_id !core.actions)) in
      let dup =
        Action.with_virtual
          (AMap.find orig_id !core.actions)
          ~rank:k
          ~obj:(Obj_id.virtualize o ~rank:k)
      in
      let did = Action.id dup in
      core :=
        {
          !core with
          actions = AMap.add did dup !core.actions;
          caller = AMap.add did orig_id !core.caller;
          start =
            (match AMap.find_opt orig_id !core.start with
            | Some s -> AMap.add did s !core.start
            | None -> !core.start);
          (* as in Extension: every duplicate counts as a leaf *)
          leaves = ASet.add did !core.leaves;
        };
      new_ids := did :: !new_ids
    in
    AMap.iter
      (fun id act ->
        let o = Obj_id.original (Action.obj act) in
        let j = AMap.find id t_rank in
        for k = j + 1 to max_of o do
          add_dup id k
        done)
      t_actions;
    OMap.iter
      (fun o new_k ->
        let old_k = old_max o in
        if new_k > old_k then
          match OMap.find_opt o t.core.reals with
          | None -> ()
          | Some olds ->
              List.iter
                (fun (id, j) ->
                  for k = max (j + 1) (old_k + 1) to new_k do
                    add_dup id k
                  done)
                olds)
      new_max_rank;
    core :=
      {
        !core with
        max_rank = new_max_rank;
        trees = tree :: !core.trees;
        order_chunks = prims :: !core.order_chunks;
        n_commits = !core.n_commits + 1;
      };
    t.core <- !core;
    (* -- 2. bootstrap each new action on its object -- *)
    List.iter
      (fun id ->
        let st = obj_state t (obj_of t id) in
        bootstrap_new st id)
      (List.rev !new_ids);
    (* -- 3. program-order pairs of the new tree, restricted per object
       (Def. 7 / conformance edges) -- *)
    List.iter
      (fun (u, v) ->
        match
          (AMap.find_opt u t.core.actions, AMap.find_opt v t.core.actions)
        with
        | Some au, Some av when Obj_id.equal (Action.obj au) (Action.obj av)
          ->
            add_act (obj_state t (Action.obj au)) u v
        | _ -> ())
      (Call_tree.program_order_pairs tree);
    (* -- 4. fixpoint -- *)
    drain ();
    t.journal <- [];
    {
      accepted = true;
      rejection = None;
      new_act_edges = !new_act;
      new_txn_edges = !new_txn;
    }
  with Reject r ->
    rollback t snapshot;
    {
      accepted = false;
      rejection = Some r;
      new_act_edges = !new_act;
      new_txn_edges = !new_txn;
    }

let pp_relation ppf = function
  | `Act -> Fmt.string ppf "action dependency"
  | `Txn -> Fmt.string ppf "transaction dependency"
  | `Combined -> Fmt.string ppf "combined dependency"

let pp_rejection ppf r =
  Fmt.pf ppf "%a cycle at %a: [%a]" pp_relation r.relation Obj_id.pp
    r.cyclic_obj
    (Fmt.list ~sep:(Fmt.any " -> ") Action_id.pp)
    r.cycle
