(* Umbrella module re-exporting the public API of the core library. *)

module Ids = Ids
module Obj_id = Ids.Obj_id
module Action_id = Ids.Action_id
module Process_id = Ids.Process_id
module Value = Value
module Digraph = Digraph
module Action = Action
module Call_tree = Call_tree
module Commutativity = Commutativity
module History = History
module Extension = Extension
module Schedule = Schedule
module Serializability = Serializability
module Incremental = Incremental
module Baselines = Baselines
module Report = Report
