(** Incremental oo-serializability certification.

    Maintains the per-object dependency relations of the paper (action
    dependency, Def. 11; transaction dependency, Def. 10; combined =
    action ∪ added, Defs. 15/16) online, one committed transaction at a
    time, under Pearce–Kelly online cycle detection — so certifying a
    commit costs time proportional to the dependency edges the commit
    introduces, not to the length of the history.

    The evaluation is exact: on any committed prefix the maintained edge
    sets equal those of {!Schedule.compute}, hence the accept/reject
    verdict equals {!Serializability.check}.  Exactness requires every
    registered commutativity specification to be {!Commutativity.stable}
    (pure in method names and arguments); with state-reading specs
    (escrow, fifo) incremental maintenance is unsound and callers must
    use the from-scratch oracle instead — {!Engine} checks this at
    creation and falls back automatically. *)

open Ids

type t

type relation = [ `Act | `Txn | `Combined ]

type rejection = {
  cyclic_obj : Obj_id.t;  (** object whose relation became cyclic *)
  relation : relation;
  cycle : Action_id.t list;  (** witness cycle *)
}

type outcome = {
  accepted : bool;
  rejection : rejection option;
  new_act_edges : int;  (** action-dependency edges this commit added *)
  new_txn_edges : int;  (** transaction-dependency edges this commit added *)
}

type stats = {
  commits : int;
  actions : int;  (** actions tracked, including virtual duplicates *)
  act_edges : int;
  txn_edges : int;
  probes : int;  (** member-level conflict tests performed *)
  class_skips : int;
      (** whole (method, args) classes skipped via one memoized probe *)
  cache_hits : int;
  cache_misses : int;
}

val create : Commutativity.registry -> t

val add_commit :
  t -> tree:Call_tree.t -> prims:(Action_id.t * int) list -> outcome
(** Certify one committing transaction. [prims] are the tree's executed
    primitives with their global execution stamps — stamps must be
    monotone across the whole run (order-isomorphic to positions in the
    committed execution order), which is what makes span comparisons
    agree with the oracle's.  On acceptance the certifier state advances
    to include the transaction; on rejection every tentative edge is
    rolled back and the state is exactly as before the call. *)

val n_commits : t -> int
val registry : t -> Commutativity.registry
val cache : t -> Commutativity.cache

val history : t -> History.t
(** The committed history as the oracle would see it: committed trees
    with their primitives sorted by stamp. Intended for tests comparing
    against {!Serializability.check}. *)

val objects : t -> Obj_id.t list
(** Objects (real and virtual) with certifier state. *)

val root_txn_edges : t -> (int * int) list
(** The Def. 15 transaction-dependency union projected to root
    endpoints, as [(top, top)] pairs without duplicates — the edge
    currency the shard coordinator exchanges and the offline stitcher
    ({!Ooser_certify}) feeds into its global topological order. *)

val act_dep : t -> Obj_id.t -> Action.Rel.t
val txn_dep : t -> Obj_id.t -> Action.Rel.t
val combined_dep : t -> Obj_id.t -> Action.Rel.t

val stats : t -> stats
val pp_rejection : Format.formatter -> rejection -> unit
