(** Object-oriented serializability (Defs. 7, 8, 12–14, 16).

    An object schedule is oo-serializable iff an equivalent serial object
    schedule exists and its action dependency relation is acyclic
    (Def. 13); equivalence is equality of transaction dependency relations
    (Def. 12), so a serial equivalent exists exactly when the transaction
    dependency relation is acyclic.  A system schedule is oo-serializable
    iff every object schedule is and every object's combined action +
    added dependency relation is acyclic (Def. 16). *)

open Ids

type object_verdict = {
  obj : Obj_id.t;
  conform : bool;  (** Def. 7 *)
  serial : bool;  (** Def. 8 *)
  txn_dep_acyclic : bool;  (** Def. 13 (i): equivalent serial schedule exists *)
  act_dep_acyclic : bool;  (** Def. 13 (ii) *)
  combined_acyclic : bool;  (** Def. 16 (ii): with added dependencies *)
  cycle : Action_id.t list option;  (** a witness cycle when any test fails *)
}

val object_oo_serializable : object_verdict -> bool
(** Def. 13: both relations acyclic. *)

type verdict = {
  oo_serializable : bool;  (** Def. 16 *)
  objects : object_verdict list;
  witness : Action_id.t list option;
      (** an equivalent serial order of the top-level transactions, when
          the schedule is oo-serializable *)
}

val object_verdict : Extension.t -> Schedule.object_schedule -> object_verdict
val check_schedule : Schedule.t -> verdict

val check : ?ext:Extension.t -> History.t -> verdict
(** [check h = check_schedule (Schedule.compute ?ext h)].  [?ext]
    reuses an already-computed [Extension.extend h]. *)

val oo_serializable : History.t -> bool

val pp_object_verdict : Format.formatter -> object_verdict -> unit
val pp_verdict : Format.formatter -> verdict -> unit
