(* Commutativity of actions (Def. 9).

   Every object has a commutativity specification deciding, for any pair of
   actions on it, whether they commute or conflict.  Two actions of the
   same process never conflict (Def. 9). *)

open Ids

type spec = {
  name : string;
  commutes : Action.t -> Action.t -> bool;
  vocab : string list option;
      (* declared method vocabulary, when the constructor knows it;
         queried by the static analyzer (SPEC* diagnostics) *)
  stable : bool;
      (* the decision depends only on (method, args) pairs — never on
         object state or call timing — so it may be memoized.  Matrix,
         rw and all-* specs are stable by construction; opaque
         predicates must opt in. *)
}

let name s = s.name
let make ?vocab ?(stable = false) ~name commutes =
  { name; commutes; vocab; stable }
let test s a a' = s.commutes a a'
let vocabulary s = s.vocab
let stable s = s.stable

let all_commute =
  {
    name = "all-commute";
    commutes = (fun _ _ -> true);
    vocab = None;
    stable = true;
  }

let all_conflict =
  {
    name = "all-conflict";
    commutes = (fun _ _ -> false);
    vocab = None;
    stable = true;
  }

let sym_mem pairs m m' =
  List.exists (fun (a, b) -> (a = m && b = m') || (a = m' && b = m)) pairs

let vocab_of_pairs pairs =
  List.sort_uniq String.compare
    (List.concat_map (fun (a, b) -> [ a; b ]) pairs)

(* Construction-time validation: a pair listed twice (in either order) is
   at best redundant and usually a typo for a different pair — reject it
   rather than silently accepting the duplicate. *)
let check_pairs ~ctor pairs =
  let rec go = function
    | [] -> ()
    | p :: rest ->
        let a, b = p in
        if sym_mem rest a b then
          invalid_arg
            (Printf.sprintf "Commutativity.%s: duplicate pair (%s, %s)" ctor a
               b);
        go rest
  in
  go pairs

let of_conflict_matrix ~name pairs =
  check_pairs ~ctor:"of_conflict_matrix" pairs;
  {
    name;
    commutes =
      (fun a a' -> not (sym_mem pairs (Action.meth a) (Action.meth a')));
    vocab = Some (vocab_of_pairs pairs);
    stable = true;
  }

let of_commute_matrix ~name pairs =
  check_pairs ~ctor:"of_commute_matrix" pairs;
  {
    name;
    commutes = (fun a a' -> sym_mem pairs (Action.meth a) (Action.meth a'));
    vocab = Some (vocab_of_pairs pairs);
    stable = true;
  }

let rw ~reads ~writes =
  (* a method classified both ways is self-contradictory: the reads list
     would win silently, turning an intended write into a read *)
  List.iter
    (fun m ->
      if List.mem m writes then
        invalid_arg
          (Printf.sprintf "Commutativity.rw: %s is both a read and a write" m))
    reads;
  let dup l =
    List.exists (fun m -> List.length (List.filter (String.equal m) l) > 1) l
  in
  if dup reads || dup writes then
    invalid_arg "Commutativity.rw: duplicate method";
  let kind m =
    if List.mem m reads then `Read
    else if List.mem m writes then `Write
    else `Unknown
  in
  {
    name = "read-write";
    commutes =
      (fun a a' ->
        match (kind (Action.meth a), kind (Action.meth a')) with
        | `Read, `Read -> true
        | `Read, `Write | `Write, `Read | `Write, `Write -> false
        | `Unknown, _ | _, `Unknown -> false);
    vocab = Some (List.sort_uniq String.compare (reads @ writes));
    stable = true;
  }

(* Refine [inner]: actions addressing different keys always commute;
   actions on the same key (or with no key) defer to [inner].  This is the
   leaf/node-level semantics of Example 1: inserts of different keys
   commute even when they collide on the same page. *)
let by_key ~key_of inner =
  {
    name = Printf.sprintf "keyed(%s)" inner.name;
    commutes =
      (fun a a' ->
        match (key_of a, key_of a') with
        | Some k, Some k' when not (Value.equal k k') -> true
        | _ -> inner.commutes a a');
    vocab = inner.vocab;
    (* [key_of] may only look at the action's method and arguments, so the
       refinement preserves the inner spec's stability *)
    stable = inner.stable;
  }

let predicate ?vocab ?(stable = false) ~name f =
  { name; commutes = f; vocab; stable }

let first_arg a = match Action.args a with [] -> None | v :: _ -> Some v

(* Registries map objects to their specification.  Virtual objects
   (Def. 5) behave exactly like their originals.  [known] tells the static
   analyzer whether a lookup resolves to a registered spec or falls back
   to the registry's default. *)
type registry = { spec_for : Obj_id.t -> spec; known : Obj_id.t -> bool }

let registry ?(known = fun _ -> true) spec_for =
  {
    spec_for = (fun o -> spec_for (Obj_id.original o));
    known = (fun o -> known (Obj_id.original o));
  }

let fixed ?(default = all_conflict) table =
  registry
    ~known:(fun o -> List.mem_assoc (Obj_id.name o) table)
    (fun o ->
      match List.assoc_opt (Obj_id.name o) table with
      | Some s -> s
      | None -> default)

let uniform spec = registry (fun _ -> spec)

let spec_for r o = r.spec_for o
let known r o = r.known o

let commutes r a a' =
  (* actions on different objects never interact, hence commute *)
  (not (Obj_id.equal (Action.obj a) (Action.obj a')))
  || Process_id.equal (Action.process a) (Action.process a')
  || (r.spec_for (Action.obj a)).commutes a a'

let conflicts r a a' =
  (not (Action_id.equal (Action.id a) (Action.id a'))) && not (commutes r a a')

(* Memoized commutativity.

   A stable spec's answer is a pure function of the two (method, args)
   pairs and the (de-virtualised) object, so the raw spec query can be
   cached under that key — turning the repeated probes of the incremental
   certifier's conflict scan into hash lookups.  Unstable specs (escrow,
   fifo: their predicates read the object's current state) bypass the
   table entirely; the cache is then merely a pass-through, never a source
   of stale answers. *)

type class_key = {
  k_obj : string; (* original object name — ranks share the spec *)
  k_meth : string;
  k_args : Value.t list;
  k_meth' : string;
  k_args' : Value.t list;
}

type cache = {
  reg : registry;
  table : (class_key, bool) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let cached ?(size = 1024) reg = { reg; table = Hashtbl.create size; hits = 0; misses = 0 }
let cache_registry c = c.reg
let cache_stats c = (c.hits, c.misses)

let class_key a a' =
  {
    k_obj = Obj_id.name (Obj_id.original (Action.obj a));
    k_meth = Action.meth a;
    k_args = Action.args a;
    k_meth' = Action.meth a';
    k_args' = Action.args a';
  }

(* Raw spec query (no same-process rule), memoized for stable specs. *)
let cached_test c a a' =
  let s = c.reg.spec_for (Action.obj a) in
  if not s.stable then s.commutes a a'
  else
    let key = class_key a a' in
    match Hashtbl.find_opt c.table key with
    | Some b ->
        c.hits <- c.hits + 1;
        b
    | None ->
        c.misses <- c.misses + 1;
        let b = s.commutes a a' in
        Hashtbl.add c.table key b;
        b

let cached_commutes c a a' =
  (not (Obj_id.equal (Action.obj a) (Action.obj a')))
  || Process_id.equal (Action.process a) (Action.process a')
  || cached_test c a a'

let cached_conflicts c a a' =
  (not (Action_id.equal (Action.id a) (Action.id a')))
  && not (cached_commutes c a a')
