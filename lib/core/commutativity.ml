(* Commutativity of actions (Def. 9).

   Every object has a commutativity specification deciding, for any pair of
   actions on it, whether they commute or conflict.  Two actions of the
   same process never conflict (Def. 9). *)

open Ids

(* How a spec was constructed — kept alongside the opaque predicate so
   the spec-inference analyzer can diff a hand-written matrix against a
   derived one cell by cell instead of probing blindly. *)
type structure =
  | Opaque
  | Total of bool  (* all_commute / all_conflict *)
  | Conflict_pairs of (string * string) list
  | Commute_pairs of (string * string) list
  | Read_write of { reads : string list; writes : string list }
  | Keyed of structure

type spec = {
  name : string;
  commutes : Action.t -> Action.t -> bool;
  vocab : string list option;
      (* declared method vocabulary, when the constructor knows it;
         queried by the static analyzer (SPEC* diagnostics) *)
  structure : structure;
  stable : bool;
      (* the decision depends only on (method, args) pairs — never on
         object state or call timing — so it may be memoized.  Matrix,
         rw and all-* specs are stable by construction; opaque
         predicates must opt in. *)
  meth_only : bool;
      (* stronger than [stable]: the decision depends only on the two
         METHOD NAMES (arguments ignored), so it can be compiled into a
         dense method x method table.  Matrix, rw and all-* specs
         qualify; [by_key] refinements and argument-reading predicates
         do not. *)
}

let name s = s.name
let make ?vocab ?(stable = false) ?(meth_only = false) ~name commutes =
  { name; commutes; vocab; structure = Opaque; stable; meth_only }
let test s a a' = s.commutes a a'
let vocabulary s = s.vocab
let stable s = s.stable
let meth_only s = s.meth_only
let structure s = s.structure

let all_commute =
  {
    name = "all-commute";
    commutes = (fun _ _ -> true);
    vocab = None;
    structure = Total true;
    stable = true;
    meth_only = true;
  }

let all_conflict =
  {
    name = "all-conflict";
    commutes = (fun _ _ -> false);
    vocab = None;
    structure = Total false;
    stable = true;
    meth_only = true;
  }

let sym_mem pairs m m' =
  List.exists (fun (a, b) -> (a = m && b = m') || (a = m' && b = m)) pairs

let vocab_of_pairs pairs =
  List.sort_uniq String.compare
    (List.concat_map (fun (a, b) -> [ a; b ]) pairs)

(* Construction-time validation: a pair listed twice (in either order) is
   at best redundant and usually a typo for a different pair — reject it,
   naming the spec and the offending pair (inference-generated specs pass
   through here too, and a bare "duplicate pair" is undebuggable). *)
let check_pairs ~ctor ~name pairs =
  let rec go = function
    | [] -> ()
    | p :: rest ->
        let a, b = p in
        if sym_mem rest a b then
          invalid_arg
            (Printf.sprintf
               "Commutativity.%s: spec %S: duplicate pair (%s, %s)" ctor name
               a b);
        go rest
  in
  go pairs

let of_conflict_matrix ~name pairs =
  check_pairs ~ctor:"of_conflict_matrix" ~name pairs;
  {
    name;
    commutes =
      (fun a a' -> not (sym_mem pairs (Action.meth a) (Action.meth a')));
    vocab = Some (vocab_of_pairs pairs);
    structure = Conflict_pairs pairs;
    stable = true;
    meth_only = true;
  }

let of_commute_matrix ~name pairs =
  check_pairs ~ctor:"of_commute_matrix" ~name pairs;
  {
    name;
    commutes = (fun a a' -> sym_mem pairs (Action.meth a) (Action.meth a'));
    vocab = Some (vocab_of_pairs pairs);
    structure = Commute_pairs pairs;
    stable = true;
    meth_only = true;
  }

(* a method classified both ways is self-contradictory: the reads list
   would win silently, turning an intended write into a read *)
let rw_named ~name ~reads ~writes =
  List.iter
    (fun m ->
      if List.mem m writes then
        invalid_arg
          (Printf.sprintf
             "Commutativity.rw: spec %S: method %S is both a read and a write"
             name m))
    reads;
  let dup l =
    List.find_opt
      (fun m -> List.length (List.filter (String.equal m) l) > 1)
      l
  in
  (match (dup reads, dup writes) with
  | Some m, _ | _, Some m ->
      invalid_arg
        (Printf.sprintf "Commutativity.rw: spec %S: method %S listed twice"
           name m)
  | None, None -> ());
  let kind m =
    if List.mem m reads then `Read
    else if List.mem m writes then `Write
    else `Unknown
  in
  {
    name;
    commutes =
      (fun a a' ->
        match (kind (Action.meth a), kind (Action.meth a')) with
        | `Read, `Read -> true
        | `Read, `Write | `Write, `Read | `Write, `Write -> false
        | `Unknown, _ | _, `Unknown -> false);
    vocab = Some (List.sort_uniq String.compare (reads @ writes));
    structure = Read_write { reads; writes };
    stable = true;
    meth_only = true;
  }

let rw ~reads ~writes = rw_named ~name:"read-write" ~reads ~writes

(* Refine [inner]: actions addressing different keys always commute;
   actions on the same key (or with no key) defer to [inner].  This is the
   leaf/node-level semantics of Example 1: inserts of different keys
   commute even when they collide on the same page. *)
let by_key ~key_of inner =
  {
    name = Printf.sprintf "keyed(%s)" inner.name;
    commutes =
      (fun a a' ->
        match (key_of a, key_of a') with
        | Some k, Some k' when not (Value.equal k k') -> true
        | _ -> inner.commutes a a');
    vocab = inner.vocab;
    structure = Keyed inner.structure;
    (* [key_of] may only look at the action's method and arguments, so the
       refinement preserves the inner spec's stability — but the decision
       now reads arguments, so it is never method-only *)
    stable = inner.stable;
    meth_only = false;
  }

let predicate ?vocab ?(stable = false) ?(meth_only = false) ~name f =
  { name; commutes = f; vocab; structure = Opaque; stable; meth_only }

let first_arg a = match Action.args a with [] -> None | v :: _ -> Some v

(* Registries map objects to their specification.  Virtual objects
   (Def. 5) behave exactly like their originals.  [known] tells the static
   analyzer whether a lookup resolves to a registered spec or falls back
   to the registry's default. *)
type registry = { spec_for : Obj_id.t -> spec; known : Obj_id.t -> bool }

let registry ?(known = fun _ -> true) spec_for =
  {
    spec_for = (fun o -> spec_for (Obj_id.original o));
    known = (fun o -> known (Obj_id.original o));
  }

let fixed ?(default = all_conflict) table =
  registry
    ~known:(fun o -> List.mem_assoc (Obj_id.name o) table)
    (fun o ->
      match List.assoc_opt (Obj_id.name o) table with
      | Some s -> s
      | None -> default)

let uniform spec = registry (fun _ -> spec)

let spec_for r o = r.spec_for o
let known r o = r.known o

let commutes r a a' =
  (* actions on different objects never interact, hence commute *)
  (not (Obj_id.equal (Action.obj a) (Action.obj a')))
  || Process_id.equal (Action.process a) (Action.process a')
  || (r.spec_for (Action.obj a)).commutes a a'

let conflicts r a a' =
  (not (Action_id.equal (Action.id a) (Action.id a'))) && not (commutes r a a')

(* Memoized commutativity.

   A stable spec's answer is a pure function of the two (method, args)
   pairs and the (de-virtualised) object, so the raw spec query can be
   cached under that key — turning the repeated probes of the incremental
   certifier's conflict scan into hash lookups.  Unstable specs (escrow,
   fifo: their predicates read the object's current state) bypass the
   table entirely; the cache is then merely a pass-through, never a source
   of stale answers. *)

(* Precomputed conflict tables.

   The static analyzer (the conflict atlas) knows, ahead of any run,
   every (object, method, method') class a workload can produce.  For
   specs whose decision is a pure function of the method-name pair
   ([meth_only]), those answers compile into a dense per-object boolean
   matrix; at runtime the memoizing cache consults the matrix before its
   own hash table, turning the certifier's and lock table's per-call
   spec probes into two array reads.  Cells the atlas did not cover (and
   every arg-sensitive or unstable spec) fall through to the normal
   probe path, so preloading can never change an answer — only where it
   comes from. *)

type table_entry = {
  e_obj : string;  (* original object name *)
  e_meth : string;
  e_meth' : string;
  e_commutes : bool;
}

type obj_table = {
  idx : (string, int) Hashtbl.t;  (* method name -> matrix index *)
  width : int;
  cells : int array;  (* 0 = not covered, 1 = commute, 2 = conflict *)
}

type table = (string, obj_table) Hashtbl.t

let table_of_entries entries =
  let meths_of = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let prev =
        match Hashtbl.find_opt meths_of e.e_obj with Some l -> l | None -> []
      in
      Hashtbl.replace meths_of e.e_obj (e.e_meth :: e.e_meth' :: prev))
    entries;
  let tbl : table = Hashtbl.create 16 in
  Hashtbl.iter
    (fun obj meths ->
      let meths = List.sort_uniq String.compare meths in
      let width = List.length meths in
      let idx = Hashtbl.create width in
      List.iteri (fun i m -> Hashtbl.add idx m i) meths;
      Hashtbl.add tbl obj { idx; width; cells = Array.make (width * width) 0 })
    meths_of;
  List.iter
    (fun e ->
      let ot = Hashtbl.find tbl e.e_obj in
      let i = Hashtbl.find ot.idx e.e_meth
      and j = Hashtbl.find ot.idx e.e_meth' in
      let v = if e.e_commutes then 1 else 2 in
      let set k =
        if ot.cells.(k) <> 0 && ot.cells.(k) <> v then
          invalid_arg
            (Printf.sprintf
               "Commutativity.table_of_entries: contradictory entries for \
                (%s, %s, %s)"
               e.e_obj e.e_meth e.e_meth');
        ot.cells.(k) <- v
      in
      (* Def. 9 is symmetric: fill both orientations *)
      set ((i * ot.width) + j);
      set ((j * ot.width) + i))
    entries;
  tbl

let table_entries tbl =
  let out = ref [] in
  Hashtbl.iter
    (fun obj ot ->
      let meths = Array.make ot.width "" in
      Hashtbl.iter (fun m i -> meths.(i) <- m) ot.idx;
      for i = 0 to ot.width - 1 do
        for j = i to ot.width - 1 do
          match ot.cells.((i * ot.width) + j) with
          | 0 -> ()
          | c ->
              out :=
                {
                  e_obj = obj;
                  e_meth = meths.(i);
                  e_meth' = meths.(j);
                  e_commutes = c = 1;
                }
                :: !out
        done
      done)
    tbl;
  List.sort compare !out

let table_stats tbl =
  let objs = Hashtbl.length tbl in
  let cells =
    Hashtbl.fold
      (fun _ ot acc ->
        acc + Array.fold_left (fun n c -> if c <> 0 then n + 1 else n) 0 ot.cells)
      tbl 0
  in
  (objs, cells)

let table_lookup tbl a a' =
  match
    Hashtbl.find_opt tbl (Obj_id.name (Obj_id.original (Action.obj a)))
  with
  | None -> None
  | Some ot -> (
      match
        ( Hashtbl.find_opt ot.idx (Action.meth a),
          Hashtbl.find_opt ot.idx (Action.meth a') )
      with
      | Some i, Some j -> (
          match ot.cells.((i * ot.width) + j) with
          | 1 -> Some true
          | 2 -> Some false
          | _ -> None)
      | _ -> None)

type class_key = {
  k_obj : string; (* original object name — ranks share the spec *)
  k_meth : string;
  k_args : Value.t list;
  k_meth' : string;
  k_args' : Value.t list;
}

type cache = {
  reg : registry;
  table : (class_key, bool) Hashtbl.t;
  mutable atlas : table option;
  mutable hits : int;
  mutable misses : int;
  mutable atlas_hits : int;
}

let cached ?(size = 1024) reg =
  { reg; table = Hashtbl.create size; atlas = None; hits = 0; misses = 0;
    atlas_hits = 0 }

let cache_registry c = c.reg
let cache_stats c = (c.hits, c.misses)
let preload c tbl = c.atlas <- Some tbl
let preloaded c = c.atlas
let atlas_hits c = c.atlas_hits

let class_key a a' =
  {
    k_obj = Obj_id.name (Obj_id.original (Action.obj a));
    k_meth = Action.meth a;
    k_args = Action.args a;
    k_meth' = Action.meth a';
    k_args' = Action.args a';
  }

(* Raw spec query (no same-process rule), memoized for stable specs.
   A preloaded atlas table answers first — for any STABLE spec, because
   every table builder only inserts cells whose answer is provably
   argument-independent: the static atlas compiles meth_only specs
   (trivially so), and the spec-inference pipeline compiles a cell only
   after the answer was uniform across every probed argument class and
   agreed with the hand spec on every probe.  Unstable specs always
   bypass the table — their answers depend on live object state. *)
let cached_test c a a' =
  let s = c.reg.spec_for (Action.obj a) in
  if not s.stable then s.commutes a a'
  else
    let from_atlas =
      match c.atlas with
      | Some tbl -> table_lookup tbl a a'
      | None -> None
    in
    match from_atlas with
    | Some b ->
        c.atlas_hits <- c.atlas_hits + 1;
        b
    | None -> (
        let key = class_key a a' in
        match Hashtbl.find_opt c.table key with
        | Some b ->
            c.hits <- c.hits + 1;
            b
        | None ->
            c.misses <- c.misses + 1;
            let b = s.commutes a a' in
            Hashtbl.add c.table key b;
            b)

let cached_commutes c a a' =
  (not (Obj_id.equal (Action.obj a) (Action.obj a')))
  || Process_id.equal (Action.process a) (Action.process a')
  || cached_test c a a'

let cached_conflicts c a a' =
  (not (Action_id.equal (Action.id a) (Action.id a')))
  && not (cached_commutes c a a')
