(** Object schedules and the dependency-inheritance engine
    (Defs. 6, 10, 11, 15).

    [compute] turns a history into the system schedule: one object
    schedule per object (virtual ones included), each carrying

    - the action dependency relation [≺] (Def. 11) — bootstrapped at the
      leaves from the execution order (Axiom 1), including program-order
      pairs (Def. 7), and closed under inheritance;
    - the transaction dependency relation [⇒] (Def. 10) — dependencies of
      *conflicting* actions inherited to their callers; commuting callers
      stop the inheritance;
    - the added action dependency relation (Def. 15) — transaction
      dependencies recorded at other objects, attached redundantly to the
      objects of both endpoints. *)

open Ids

(** Why an action dependency edge exists (for diagnostics). *)
type dep_source =
  | Axiom1  (** conflicting leaves ordered by execution (Axiom 1) *)
  | Completion  (** leaf/non-leaf pair ordered by span (DESIGN.md) *)
  | Program_order  (** the n₃ precedence of Def. 7 *)
  | Inherited of Obj_id.t
      (** from the transaction dependency at that object (Def. 11) *)

type object_schedule = {
  obj : Obj_id.t;
  acts : Action_id.Set.t;  (** [ACT_O] *)
  act_dep : Action.Rel.t;  (** [≺] over [ACT_O] *)
  txn_dep : Action.Rel.t;  (** [⇒] over [TRA_O] *)
  added_dep : Action.Rel.t;
      (** transaction dependencies touching [ACT_O] recorded anywhere *)
  act_src : dep_source Action.Pair_map.t;
      (** provenance of every action dependency edge *)
  txn_src : (Action_id.t * Action_id.t) Action.Pair_map.t;
      (** for each transaction dependency, the conflicting action pair at
          this object that induced it (Def. 10's witness) *)
}

type t

val compute : ?ext:Extension.t -> History.t -> t
(** [compute h] builds the dependency relations of [h]'s extension.
    Pass [?ext] to reuse an [Extension.extend h] already at hand (it
    must be the extension of [h]); the engine uses this to avoid
    extending the same committed prefix twice. *)

val extension : t -> Extension.t
val objects : t -> object_schedule list
val find : t -> Obj_id.t -> object_schedule option

val find_exn : t -> Obj_id.t -> object_schedule
(** @raise Invalid_argument when the object has no actions. *)

val conflicts : Extension.t -> Action_id.t -> Action_id.t -> bool
(** Conflict test honouring Def. 9 (same-process actions commute) and the
    virtual-extension exclusion of call-path pairs. *)

val equivalent_object : object_schedule -> object_schedule -> bool
(** Def. 12: equality of transaction dependency relations. *)

val equivalent : t -> t -> bool
(** Def. 12 lifted to system schedules: every object's transaction
    dependency relation coincides. *)

val pp_source : Format.formatter -> dep_source -> unit
val pp_object : Format.formatter -> object_schedule -> unit
val pp : Format.formatter -> t -> unit
