(** Finite directed graphs / binary relations over an ordered vertex type.

    The dependency relations of the paper (Defs. 10, 11, 15) are arbitrary
    binary relations — possibly cyclic, which is exactly what the
    serializability tests must detect — so the central operations here are
    acyclicity checking, cycle extraction and topological sorting.

    All operations are purely functional. *)

module type ORDERED = sig
  type t

  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit
end

module type S = sig
  type vertex
  type t

  val empty : t
  val is_empty : t -> bool

  val add_vertex : vertex -> t -> t
  (** Add an isolated vertex (idempotent). *)

  val add : vertex -> vertex -> t -> t
  (** [add u v g] adds the edge [u -> v] (and both vertices). *)

  val remove_vertex : vertex -> t -> t
  (** Remove a vertex and all incident edges. *)

  val mem : vertex -> vertex -> t -> bool
  val mem_vertex : vertex -> t -> bool

  val vertices : t -> vertex list
  (** Sorted. *)

  val succ : vertex -> t -> vertex list
  val pred : vertex -> t -> vertex list

  val edges : t -> (vertex * vertex) list
  val of_edges : (vertex * vertex) list -> t

  val cardinal : t -> int
  (** Number of edges. *)

  val nb_vertices : t -> int

  val union : t -> t -> t
  val filter_edges : (vertex -> vertex -> bool) -> t -> t

  val restrict : (vertex -> bool) -> t -> t
  (** Keep only edges whose both endpoints satisfy the predicate.
      Vertices not incident to a kept edge are dropped. *)

  val map_vertices : (vertex -> vertex) -> t -> t
  val fold_edges : (vertex -> vertex -> 'a -> 'a) -> t -> 'a -> 'a
  val iter_edges : (vertex -> vertex -> unit) -> t -> unit

  val equal : t -> t -> bool
  (** Same edge sets (isolated vertices are ignored). *)

  val subset : t -> t -> bool
  (** Edge-set inclusion. *)

  val transitive_closure : t -> t

  val is_acyclic : t -> bool

  val find_cycle : t -> vertex list option
  (** [Some [v1; ...; vk]] such that [v1 -> v2 -> ... -> vk -> v1], or
      [None] if the graph is acyclic. *)

  val topo_sort : t -> vertex list option
  (** Deterministic (lexicographically smallest) topological order, or
      [None] when cyclic.  This is the witness for "an equivalent serial
      schedule exists" (Def. 13 (i)). *)

  val reachable : vertex -> t -> vertex list
  (** Vertices reachable by a non-empty path. *)

  val pp : Format.formatter -> t -> unit

  (** Mutable graph with online cycle detection (Pearce–Kelly dynamic
      topological order).  [add_edge] costs time proportional to the
      affected region of the order rather than the whole graph, which is
      what makes incremental certification sub-linear per commit. *)
  module Incremental : sig
    type g

    val create : unit -> g
    val add_vertex : g -> vertex -> unit
    val mem_vertex : g -> vertex -> bool
    val mem_edge : g -> vertex -> vertex -> bool
    val succ : g -> vertex -> vertex list
    val pred : g -> vertex -> vertex list
    val nb_edges : g -> int
    val nb_vertices : g -> int

    val add_edge : g -> vertex -> vertex -> [ `Ok | `Cycle of vertex list ]
    (** Insert [x -> y], restoring a valid topological order.  On
        [`Cycle ws] the graph is unchanged and [ws] is a witness cycle
        [x -> y -> ... -> x] (as [x :: path]); a self-loop reports
        [`Cycle [x]]. *)

    val remove_edge : g -> vertex -> vertex -> unit
    (** Deleting an edge never invalidates the order, so this is O(log n)
        — the basis for cheap rollback of tentative insertions. *)

    val order : g -> vertex list
    (** Current topological order (a permutation of the vertices). *)

    val valid : g -> bool
    (** Debug invariant: every edge points forward in [order]. *)

    val to_graph : g -> t
    (** Snapshot as a persistent graph. *)
  end
end

module Make (V : ORDERED) : S with type vertex = V.t
