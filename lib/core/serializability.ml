(* Object-oriented serializability (Defs. 7, 8, 12, 13, 14, 16).

   An object schedule is oo-serializable iff an equivalent serial object
   schedule exists and its action dependency relation is acyclic
   (Def. 13).  Equivalence means equal transaction dependency relations
   (Def. 12); for a finite schedule an equivalent serial one exists
   exactly when the transaction dependency relation is acyclic, the
   witness being any topological order.  A system schedule is
   oo-serializable iff all its object schedules are and every object's
   combined (action + added) dependency relation is acyclic (Def. 16). *)

open Ids

type object_verdict = {
  obj : Obj_id.t;
  conform : bool;
  serial : bool;
  txn_dep_acyclic : bool;
  act_dep_acyclic : bool;
  combined_acyclic : bool;
  cycle : Action_id.t list option;
}

let object_oo_serializable v = v.txn_dep_acyclic && v.act_dep_acyclic

type verdict = {
  oo_serializable : bool;
  objects : object_verdict list;
  witness : Action_id.t list option;
      (* serial order of top-level transactions, when one exists *)
}

(* Def. 7: conform — every program-order pair restricted to the object is
   realised by the execution (all primitives of the first action precede
   all primitives of the second). *)
let conform_at ext (s : Schedule.object_schedule) =
  let ok = ref true in
  Action.Rel.iter_edges
    (fun a a' ->
      if Action_id.Set.mem a s.acts && Action_id.Set.mem a' s.acts then
        match (Extension.span_of ext a, Extension.span_of ext a') with
        | Some (_, hi), Some (lo', _) -> if hi >= lo' then ok := false
        | _ -> ())
    (Extension.prog_rel ext);
  !ok

(* Def. 8: serial — the top-level transactions touching the object are not
   interleaved: the spans (over the object's actions) of distinct
   top-level transactions are disjoint intervals. *)
let serial_at ext (s : Schedule.object_schedule) =
  let by_top = Hashtbl.create 8 in
  Action_id.Set.iter
    (fun a ->
      match Extension.span_of ext a with
      | None -> ()
      | Some (lo, hi) ->
          let top = Action_id.top a in
          let cur =
            match Hashtbl.find_opt by_top top with
            | Some (l, h) -> (min l lo, max h hi)
            | None -> (lo, hi)
          in
          Hashtbl.replace by_top top cur)
    s.acts;
  let spans = Hashtbl.fold (fun _ s acc -> s :: acc) by_top [] in
  let sorted = List.sort compare spans in
  let rec disjoint = function
    | (_, hi) :: ((lo', _) :: _ as rest) -> hi < lo' && disjoint rest
    | _ -> true
  in
  disjoint sorted

let object_verdict ext (s : Schedule.object_schedule) =
  let combined = Action.Rel.union s.act_dep s.added_dep in
  let act_cycle = Action.Rel.find_cycle s.act_dep in
  let txn_cycle = Action.Rel.find_cycle s.txn_dep in
  let comb_cycle = Action.Rel.find_cycle combined in
  {
    obj = s.obj;
    conform = conform_at ext s;
    serial = serial_at ext s;
    txn_dep_acyclic = txn_cycle = None;
    act_dep_acyclic = act_cycle = None;
    combined_acyclic = comb_cycle = None;
    cycle =
      (match (txn_cycle, act_cycle, comb_cycle) with
      | Some c, _, _ | None, Some c, _ | None, None, Some c -> Some c
      | None, None, None -> None);
  }

(* Global serial witness: topological order of the top-level transactions
   under the dependencies that actually reach the top level — transaction
   dependencies whose endpoints are top-level transactions (actions on the
   system object).  Dependencies stopped lower down by commuting callers
   deliberately do not constrain the top-level order. *)
let top_witness sched =
  let h = Extension.history (Schedule.extension sched) in
  let tops = History.top_ids h in
  let g =
    List.fold_left
      (fun g s ->
        Action.Rel.fold_edges
          (fun t t' g ->
            if Action_id.is_root t && Action_id.is_root t' then
              Action.Rel.add t t' g
            else g)
          s.Schedule.txn_dep g)
      (List.fold_left (fun g t -> Action.Rel.add_vertex t g) Action.Rel.empty tops)
      (Schedule.objects sched)
  in
  Action.Rel.topo_sort g

let check_schedule sched =
  let ext = Schedule.extension sched in
  let objects = List.map (object_verdict ext) (Schedule.objects sched) in
  let ok =
    List.for_all
      (fun v -> object_oo_serializable v && v.combined_acyclic)
      objects
  in
  { oo_serializable = ok; objects; witness = (if ok then top_witness sched else None) }

let check ?ext h = check_schedule (Schedule.compute ?ext h)

let oo_serializable h = (check h).oo_serializable

let pp_object_verdict ppf v =
  Fmt.pf ppf "%a: conform=%b serial=%b txn-acyclic=%b act-acyclic=%b combined-acyclic=%b%a"
    Obj_id.pp v.obj v.conform v.serial v.txn_dep_acyclic v.act_dep_acyclic
    v.combined_acyclic
    (Fmt.option (fun ppf c ->
         Fmt.pf ppf " cycle=[%a]" (Fmt.list ~sep:(Fmt.any " -> ") Action_id.pp) c))
    v.cycle

let pp_verdict ppf v =
  Fmt.pf ppf "@[<v>oo-serializable: %b@,%a%a@]" v.oo_serializable
    (Fmt.list ~sep:Fmt.cut pp_object_verdict)
    v.objects
    (Fmt.option (fun ppf w ->
         Fmt.pf ppf "@,serial witness: %a"
           (Fmt.list ~sep:(Fmt.any " ") Action_id.pp)
           w))
    v.witness
