(** Commutativity of actions (Def. 9, §2).

    Every object carries a commutativity specification — "a commutativity
    matrix for every object for all their actions" — deciding for any pair
    of actions on it whether they commute or are in conflict.  The
    specification may inspect method names and parameters (escrow-style
    semantics, [9,14,17] in the paper) because two actions commute exactly
    when the effect of each is independent of their execution order.

    Two actions of the same process never conflict (Def. 9). *)

open Ids

(** Specification for one object (or one object type). *)
type spec

(** Construction shape of a specification, exposed for introspection:
    the spec-inference analyzer diffs an inferred matrix against the
    hand-written one cell by cell, and needs to know which declared
    pairs a cell corresponds to.  [Opaque] is every {!make}/{!predicate}
    spec — only probing can interrogate those. *)
type structure =
  | Opaque
  | Total of bool  (** {!all_commute} ([true]) / {!all_conflict} *)
  | Conflict_pairs of (string * string) list
  | Commute_pairs of (string * string) list
  | Read_write of { reads : string list; writes : string list }
  | Keyed of structure  (** {!by_key} refinement over the inner shape *)

val name : spec -> string

val structure : spec -> structure
(** How the spec was built; [Opaque] when only the predicate is known. *)

val make :
  ?vocab:string list ->
  ?stable:bool ->
  ?meth_only:bool ->
  name:string ->
  (Action.t -> Action.t -> bool) ->
  spec
(** [vocab] declares the method names the specification was written for;
    the static analyzer probes it and reports methods outside it.
    [stable] (default [false]) asserts the decision depends only on the
    two (method, args) pairs — see {!stable}.  [meth_only] (default
    [false]) additionally asserts arguments are ignored — see
    {!meth_only}. *)

val test : spec -> Action.t -> Action.t -> bool
(** Raw query of the specification ([true] = commute), without the
    same-process rule of {!commutes}.  Useful to compose specs. *)

val vocabulary : spec -> string list option
(** Declared method vocabulary: present for {!of_conflict_matrix},
    {!of_commute_matrix} and {!rw} specs (and any constructor given
    [?vocab]); [None] for opaque predicates.  Methods outside the
    vocabulary fall into each constructor's conservative default. *)

val stable : spec -> bool
(** A stable specification's answer depends only on the two
    (method, args) pairs — never on object state or call timing — so its
    decisions may be memoized and, crucially, never change as the history
    grows.  Matrix, read/write and all-* specs are stable by
    construction; {!make}/{!predicate} specs must opt in via [?stable]
    (escrow- and queue-style predicates that read the current object
    state must not).  The incremental certifier requires every registered
    spec to be stable and falls back to the from-scratch oracle
    otherwise. *)

val meth_only : spec -> bool
(** Stronger than {!stable}: the answer is a pure function of the two
    METHOD NAMES, arguments ignored, so the whole specification compiles
    into a dense method x method boolean matrix (see {!table}).  Matrix,
    read/write and all-* specs qualify by construction; {!by_key}
    refinements read arguments and never do; {!make}/{!predicate} specs
    opt in via [?meth_only]. *)

val all_commute : spec
(** Every pair commutes — maximal concurrency, no dependencies. *)

val all_conflict : spec
(** Every pair conflicts — degenerates to conventional serializability. *)

val of_conflict_matrix : name:string -> (string * string) list -> spec
(** Method pairs listed (symmetrically) conflict; all others commute.
    @raise Invalid_argument on a pair listed twice (in either order);
    the message names the spec and the offending pair. *)

val of_commute_matrix : name:string -> (string * string) list -> spec
(** Method pairs listed (symmetrically) commute; all others conflict.
    @raise Invalid_argument on a pair listed twice (in either order);
    the message names the spec and the offending pair. *)

val rw : reads:string list -> writes:string list -> spec
(** [rw_named ~name:"read-write"]. *)

val rw_named :
  name:string -> reads:string list -> writes:string list -> spec
(** Classic read/write semantics: two actions conflict unless both are
    reads.  Unknown methods conservatively conflict with everything.
    @raise Invalid_argument when a method is listed twice or classified
    both as a read and as a write; the message names the spec and the
    offending method. *)

val by_key : key_of:(Action.t -> Value.t option) -> spec -> spec
(** Refine a spec: actions addressing different keys always commute;
    same-key (or keyless) pairs defer to the inner spec.  This captures the
    node-level semantics of Example 1 — inserts of different keys commute
    even when their data collide on the same page. *)

val predicate :
  ?vocab:string list ->
  ?stable:bool ->
  ?meth_only:bool ->
  name:string ->
  (Action.t -> Action.t -> bool) ->
  spec
(** Arbitrary commutativity test ([true] = commute).  Pass [~stable:true]
    only when the predicate inspects nothing beyond method names and
    arguments, and [~meth_only:true] only when it ignores even the
    arguments. *)

val first_arg : Action.t -> Value.t option
(** Convenience [key_of] for methods whose first argument is the key. *)

(** Registries map objects to their specification.  Virtual objects
    (Def. 5) behave exactly like their originals. *)
type registry

val registry : ?known:(Obj_id.t -> bool) -> (Obj_id.t -> spec) -> registry
(** The functions receive de-virtualised identifiers.  [known] (default:
    everything) tells {!known} whether a lookup resolves to a registered
    specification rather than a fallback default. *)

val fixed : ?default:spec -> (string * spec) list -> registry
(** Lookup by object name; [default] (all-conflict) otherwise. *)

val uniform : spec -> registry
val spec_for : registry -> Obj_id.t -> spec

val known : registry -> Obj_id.t -> bool
(** Whether the object resolves to a registered specification.  [false]
    means {!spec_for} falls back to the registry default — the static
    analyzer flags such lookups (the object would silently get
    all-conflict semantics, or worse, a wrong uniform spec). *)

val commutes : registry -> Action.t -> Action.t -> bool
(** Def. 9 in full: actions on different objects commute; same-process
    actions commute; otherwise the object's specification decides. *)

val conflicts : registry -> Action.t -> Action.t -> bool
(** [conflicts r a a'] — distinct actions that do not commute.  An action
    never conflicts with itself. *)

(** {2 Precomputed conflict tables}

    The static conflict atlas compiles, for every workload-reachable
    object whose spec is {!stable} and {!meth_only}, the full
    method x method commutativity matrix into a dense table; the
    spec-inference pipeline additionally compiles stable arg-sensitive
    specs, but only the cells it proved argument-independent (uniform
    across every probed argument class) and hand-agreeing.  A table
    {!preload}ed into a {!cache} answers probes with two array reads for
    any {!stable} spec; uncovered cells (and every unstable spec) fall
    through to the normal memoized probe, so preloading never changes an
    answer — only where it comes from.  The table invariant every
    builder must uphold: a covered cell's answer is independent of the
    actions' arguments. *)

type table_entry = {
  e_obj : string;  (** original object name (ranks share the spec) *)
  e_meth : string;
  e_meth' : string;
  e_commutes : bool;
}

type table

val table_of_entries : table_entry list -> table
(** Build a dense table.  Entries are symmetrized (Def. 9).
    @raise Invalid_argument on two entries contradicting each other. *)

val table_entries : table -> table_entry list
(** The covered cells, one entry per unordered method pair, sorted. *)

val table_stats : table -> int * int
(** [(objects, covered cells)] — cells counted per orientation. *)

val table_lookup : table -> Action.t -> Action.t -> bool option
(** Raw table answer for two same-object actions; [None] when the
    object or either method is not covered.  The caller must ensure the
    object's runtime spec is {!stable} — the table is keyed by method
    names alone, which is safe because covered cells are
    argument-independent by construction. *)

(** {2 Memoized queries}

    A registry wrapper that caches raw spec answers under
    (object, method, args, method', args') keys.  Only {!stable} specs
    are memoized; unstable specs are passed through uncached, so the
    cached queries always agree with the plain ones. *)

type cache

val cached : ?size:int -> registry -> cache
(** Wrap a registry with a memo table ([size] is the initial capacity). *)

val cache_registry : cache -> registry

val preload : cache -> table -> unit
(** Install a precomputed conflict table: subsequent {!cached_test}
    probes on {!stable} specs consult it before the memo table. *)

val preloaded : cache -> table option

val atlas_hits : cache -> int
(** Probes answered by the preloaded table (i.e. spec probes eliminated). *)

val cached_test : cache -> Action.t -> Action.t -> bool
(** Memoized {!test} of the owning object's spec (no same-process rule):
    the class-level probe used to skip whole buckets of commuting
    actions. *)

val cached_commutes : cache -> Action.t -> Action.t -> bool
(** Memoized {!commutes} (Def. 9 in full). *)

val cached_conflicts : cache -> Action.t -> Action.t -> bool
(** Memoized {!conflicts}. *)

val cache_stats : cache -> int * int
(** [(hits, misses)] of the memo table so far. *)
