(* Finite directed graphs / binary relations over an ordered vertex type.

   The dependency relations of the paper (Defs. 10, 11, 15) are arbitrary
   binary relations -- possibly cyclic, which is exactly what the
   serializability tests must detect -- so the central operations here are
   acyclicity checking, cycle extraction and topological sorting. *)

module type ORDERED = sig
  type t

  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit
end

module type S = sig
  type vertex
  type t

  val empty : t
  val is_empty : t -> bool
  val add_vertex : vertex -> t -> t
  val add : vertex -> vertex -> t -> t
  val remove_vertex : vertex -> t -> t
  val mem : vertex -> vertex -> t -> bool
  val mem_vertex : vertex -> t -> bool
  val vertices : t -> vertex list
  val succ : vertex -> t -> vertex list
  val pred : vertex -> t -> vertex list
  val edges : t -> (vertex * vertex) list
  val of_edges : (vertex * vertex) list -> t
  val cardinal : t -> int
  val nb_vertices : t -> int
  val union : t -> t -> t
  val filter_edges : (vertex -> vertex -> bool) -> t -> t
  val restrict : (vertex -> bool) -> t -> t
  val map_vertices : (vertex -> vertex) -> t -> t
  val fold_edges : (vertex -> vertex -> 'a -> 'a) -> t -> 'a -> 'a
  val iter_edges : (vertex -> vertex -> unit) -> t -> unit
  val equal : t -> t -> bool
  val subset : t -> t -> bool
  val transitive_closure : t -> t
  val is_acyclic : t -> bool
  val find_cycle : t -> vertex list option
  val topo_sort : t -> vertex list option
  val reachable : vertex -> t -> vertex list
  val pp : Format.formatter -> t -> unit

  module Incremental : sig
    type g

    val create : unit -> g
    val add_vertex : g -> vertex -> unit
    val mem_vertex : g -> vertex -> bool
    val mem_edge : g -> vertex -> vertex -> bool
    val succ : g -> vertex -> vertex list
    val pred : g -> vertex -> vertex list
    val nb_edges : g -> int
    val nb_vertices : g -> int
    val add_edge : g -> vertex -> vertex -> [ `Ok | `Cycle of vertex list ]
    val remove_edge : g -> vertex -> vertex -> unit
    val order : g -> vertex list
    val valid : g -> bool
    val to_graph : g -> t
  end
end

module Make (V : ORDERED) : S with type vertex = V.t = struct
  type vertex = V.t

  module VSet = Set.Make (V)
  module VMap = Map.Make (V)

  (* Adjacency in both directions; every vertex mentioned is present as a
     key in [fwd] (possibly with an empty successor set). *)
  type t = { fwd : VSet.t VMap.t; bwd : VSet.t VMap.t }

  let empty = { fwd = VMap.empty; bwd = VMap.empty }
  let is_empty g = VMap.is_empty g.fwd

  let adj v m = match VMap.find_opt v m with None -> VSet.empty | Some s -> s

  let ensure v m = if VMap.mem v m then m else VMap.add v VSet.empty m

  let add_vertex v g = { fwd = ensure v g.fwd; bwd = ensure v g.bwd }

  let add u v g =
    let g = add_vertex u (add_vertex v g) in
    {
      fwd = VMap.add u (VSet.add v (adj u g.fwd)) g.fwd;
      bwd = VMap.add v (VSet.add u (adj v g.bwd)) g.bwd;
    }

  let remove_vertex v g =
    let strip m = VMap.map (fun s -> VSet.remove v s) (VMap.remove v m) in
    { fwd = strip g.fwd; bwd = strip g.bwd }

  let mem u v g = VSet.mem v (adj u g.fwd)
  let mem_vertex v g = VMap.mem v g.fwd
  let vertices g = List.map fst (VMap.bindings g.fwd)
  let succ v g = VSet.elements (adj v g.fwd)
  let pred v g = VSet.elements (adj v g.bwd)

  let fold_edges f g acc =
    VMap.fold (fun u s acc -> VSet.fold (fun v acc -> f u v acc) s acc) g.fwd acc

  let iter_edges f g = fold_edges (fun u v () -> f u v) g ()

  let edges g = List.rev (fold_edges (fun u v acc -> (u, v) :: acc) g [])

  let of_edges es = List.fold_left (fun g (u, v) -> add u v g) empty es

  let cardinal g = fold_edges (fun _ _ n -> n + 1) g 0
  let nb_vertices g = VMap.cardinal g.fwd

  let union a b = fold_edges (fun u v g -> add u v g) b a

  let filter_edges keep g =
    let base =
      List.fold_left (fun acc v -> add_vertex v acc) empty (vertices g)
    in
    fold_edges (fun u v acc -> if keep u v then add u v acc else acc) g base

  let restrict keep g =
    fold_edges
      (fun u v acc -> if keep u && keep v then add u v acc else acc)
      g empty

  let map_vertices f g = fold_edges (fun u v acc -> add (f u) (f v) acc) g empty

  let equal a b =
    VMap.equal VSet.equal
      (VMap.filter (fun _ s -> not (VSet.is_empty s)) a.fwd)
      (VMap.filter (fun _ s -> not (VSet.is_empty s)) b.fwd)

  let subset a b = fold_edges (fun u v ok -> ok && mem u v b) a true

  let transitive_closure g =
    (* Per-source DFS; fine at the scale of our schedules. *)
    let close u =
      let rec go seen stack =
        match stack with
        | [] -> seen
        | v :: rest ->
            let next =
              VSet.filter (fun w -> not (VSet.mem w seen)) (adj v g.fwd)
            in
            go (VSet.union seen next) (VSet.elements next @ rest)
      in
      go VSet.empty [ u ]
    in
    List.fold_left
      (fun acc u -> VSet.fold (fun v acc -> add u v acc) (close u) acc)
      (List.fold_left (fun acc v -> add_vertex v acc) empty (vertices g))
      (vertices g)

  (* Colored DFS returning the first cycle found, as a vertex list
     [v1; ...; vk] such that v1 -> v2 -> ... -> vk -> v1. *)
  exception Cycle of vertex list

  let find_cycle g =
    let white = ref (VSet.of_list (vertices g)) in
    let grey = ref VSet.empty in
    let path = ref [] in
    let rec visit v =
      white := VSet.remove v !white;
      grey := VSet.add v !grey;
      path := v :: !path;
      VSet.iter
        (fun w ->
          if VSet.mem w !grey then begin
            (* cycle: suffix of path from w back to v *)
            let rec take acc = function
              | [] -> acc
              | x :: _ when V.compare x w = 0 -> x :: acc
              | x :: rest -> take (x :: acc) rest
            in
            raise (Cycle (take [] !path))
          end
          else if VSet.mem w !white then visit w)
        (adj v g.fwd);
      grey := VSet.remove v !grey;
      path := List.tl !path
    in
    try
      while not (VSet.is_empty !white) do
        visit (VSet.min_elt !white)
      done;
      None
    with Cycle c -> Some c

  (* Early-exit acyclicity: the same colored DFS as [find_cycle] but
     without maintaining or reconstructing the witness path — the first
     back edge aborts the whole traversal. *)
  exception Cyclic

  let is_acyclic g =
    let white = ref (VSet.of_list (vertices g)) in
    let grey = ref VSet.empty in
    let rec visit v =
      white := VSet.remove v !white;
      grey := VSet.add v !grey;
      VSet.iter
        (fun w ->
          if VSet.mem w !grey then raise Cyclic
          else if VSet.mem w !white then visit w)
        (adj v g.fwd);
      grey := VSet.remove v !grey
    in
    try
      while not (VSet.is_empty !white) do
        visit (VSet.min_elt !white)
      done;
      true
    with Cyclic -> false

  let topo_sort g =
    let verts = vertices g in
    let indeg =
      ref
        (List.fold_left
           (fun m v -> VMap.add v (VSet.cardinal (adj v g.bwd)) m)
           VMap.empty verts)
    in
    (* Kahn's algorithm with a deterministic (sorted) frontier. *)
    let frontier =
      ref
        (VSet.of_list (List.filter (fun v -> VMap.find v !indeg = 0) verts))
    in
    let out = ref [] in
    let count = ref 0 in
    while not (VSet.is_empty !frontier) do
      let v = VSet.min_elt !frontier in
      frontier := VSet.remove v !frontier;
      out := v :: !out;
      incr count;
      VSet.iter
        (fun w ->
          let d = VMap.find w !indeg - 1 in
          indeg := VMap.add w d !indeg;
          if d = 0 then frontier := VSet.add w !frontier)
        (adj v g.fwd)
    done;
    if !count = List.length verts then Some (List.rev !out) else None

  let reachable v g =
    let rec go seen stack =
      match stack with
      | [] -> seen
      | u :: rest ->
          let next = VSet.filter (fun w -> not (VSet.mem w seen)) (adj u g.fwd) in
          go (VSet.union seen next) (VSet.elements next @ rest)
    in
    VSet.elements (go VSet.empty [ v ])

  let pp ppf g =
    let pp_edge ppf (u, v) = Fmt.pf ppf "%a -> %a" V.pp u V.pp v in
    Fmt.pf ppf "{%a}" (Fmt.list ~sep:(Fmt.any ", ") pp_edge) (edges g)

  (* Online cycle detection: a mutable graph maintaining a valid
     topological order across single-edge insertions (Pearce & Kelly,
     "A dynamic topological sort algorithm for directed acyclic graphs",
     ACM JEA 2006).  Inserting [x -> y] when [ord y < ord x] explores only
     the affected region [ord y .. ord x]: a forward search from [y]
     bounded above by [ord x] either reaches [x] (a cycle — the structure
     is left unchanged) or yields the vertices that must shift after a
     backward search from [x]; the two deltas are re-sorted into the
     union of their old positions.  Cost is proportional to the affected
     region, not the graph — the property the incremental certifier
     relies on for sub-linear per-commit certification.

     [remove_edge] never invalidates the order (any topological order of
     a graph is one of its subgraphs), which is what makes the
     certifier's journal-based rollback of a failed certification
     sound. *)
  module Incremental = struct
    module IMap = Map.Make (Int)

    (* shadowed below by this module's own [add_vertex] *)
    let persistent_add_vertex = add_vertex

    type g = {
      mutable ord : int VMap.t;  (* vertex -> position in the topo order *)
      mutable rev : vertex IMap.t;  (* position -> vertex *)
      mutable ifwd : VSet.t VMap.t;
      mutable ibwd : VSet.t VMap.t;
      mutable next : int;  (* next fresh position *)
      mutable n_edges : int;
    }

    let create () =
      {
        ord = VMap.empty;
        rev = IMap.empty;
        ifwd = VMap.empty;
        ibwd = VMap.empty;
        next = 0;
        n_edges = 0;
      }

    let nb_edges g = g.n_edges
    let nb_vertices g = VMap.cardinal g.ord
    let mem_vertex g v = VMap.mem v g.ord

    let add_vertex g v =
      if not (VMap.mem v g.ord) then begin
        g.ord <- VMap.add v g.next g.ord;
        g.rev <- IMap.add g.next v g.rev;
        g.ifwd <- VMap.add v VSet.empty g.ifwd;
        g.ibwd <- VMap.add v VSet.empty g.ibwd;
        g.next <- g.next + 1
      end

    let iadj v m =
      match VMap.find_opt v m with None -> VSet.empty | Some s -> s

    let mem_edge g u v = VSet.mem v (iadj u g.ifwd)
    let succ g v = VSet.elements (iadj v g.ifwd)
    let pred g v = VSet.elements (iadj v g.ibwd)

    let order g = List.map snd (IMap.bindings g.rev)

    let valid g =
      VMap.for_all
        (fun u s ->
          let ou = VMap.find u g.ord in
          VSet.for_all (fun v -> ou < VMap.find v g.ord) s)
        g.ifwd

    let insert_adj g u v =
      g.ifwd <- VMap.add u (VSet.add v (iadj u g.ifwd)) g.ifwd;
      g.ibwd <- VMap.add v (VSet.add u (iadj v g.ibwd)) g.ibwd;
      g.n_edges <- g.n_edges + 1

    (* Forward DFS from [y] bounded above by [ub]: every path out of [y]
       is ord-increasing (order validity), so a would-be cycle through the
       new edge [x -> y] must stay inside the window and hit [x] at
       position [ub].  Returns the affected vertices or the cycle
       witness. *)
    let forward g y ~x ~ub =
      let parent = ref VMap.empty in
      let seen = ref VSet.empty in
      let rec go stack =
        match stack with
        | [] -> Ok !seen
        | v :: rest ->
            let nexts =
              VSet.filter
                (fun w ->
                  (not (VSet.mem w !seen)) && VMap.find w g.ord <= ub)
                (iadj v g.ifwd)
            in
            if VSet.exists (fun w -> V.compare w x = 0) nexts then begin
              (* reconstruct y ⇝ v, then the cycle x -> y ⇝ v -> x *)
              let rec path acc u =
                if V.compare u y = 0 then u :: acc
                else
                  match VMap.find_opt u !parent with
                  | Some p -> path (u :: acc) p
                  | None -> u :: acc
              in
              Error (x :: path [] v)
            end
            else begin
              VSet.iter
                (fun w ->
                  parent := VMap.add w v !parent;
                  seen := VSet.add w !seen)
                nexts;
              go (VSet.elements nexts @ rest)
            end
      in
      seen := VSet.add y !seen;
      go [ y ]

    let backward g x ~lb =
      let seen = ref (VSet.singleton x) in
      let rec go stack =
        match stack with
        | [] -> !seen
        | v :: rest ->
            let nexts =
              VSet.filter
                (fun w ->
                  (not (VSet.mem w !seen)) && VMap.find w g.ord >= lb)
                (iadj v g.ibwd)
            in
            seen := VSet.union !seen nexts;
            go (VSet.elements nexts @ rest)
      in
      go [ x ]

    let add_edge g x y =
      if V.compare x y = 0 then `Cycle [ x ]
      else begin
        add_vertex g x;
        add_vertex g y;
        if mem_edge g x y then `Ok
        else
          let ox = VMap.find x g.ord and oy = VMap.find y g.ord in
          if ox < oy then begin
            insert_adj g x y;
            `Ok
          end
          else
            match forward g y ~x ~ub:ox with
            | Error cycle -> `Cycle cycle
            | Ok delta_f ->
                let delta_b = backward g x ~lb:oy in
                (* merge: the union of the old positions, re-filled with
                   the backward delta first (keeping each delta's internal
                   order), so every edge points forward again *)
                let by_ord s =
                  VSet.elements s
                  |> List.map (fun v -> (VMap.find v g.ord, v))
                  |> List.sort compare
                in
                let bs = by_ord delta_b and fs = by_ord delta_f in
                let slots =
                  List.sort Int.compare (List.map fst (bs @ fs))
                in
                List.iter2
                  (fun slot (_, v) ->
                    g.ord <- VMap.add v slot g.ord;
                    g.rev <- IMap.add slot v g.rev)
                  slots (bs @ fs);
                insert_adj g x y;
                `Ok
      end

    let remove_edge g u v =
      if mem_edge g u v then begin
        g.ifwd <- VMap.add u (VSet.remove v (iadj u g.ifwd)) g.ifwd;
        g.ibwd <- VMap.add v (VSet.remove u (iadj v g.ibwd)) g.ibwd;
        g.n_edges <- g.n_edges - 1
      end

    let to_graph g =
      VMap.fold
        (fun u s acc -> VSet.fold (fun v acc -> add u v acc) s acc)
        g.ifwd
        (VMap.fold (fun v _ acc -> persistent_add_vertex v acc) g.ord empty)
  end
end
