(* Object schedules and the dependency-inheritance engine
   (Defs. 6, 10, 11, 15).

   For every object [O] we compute:
   - the action dependency relation [≺ ⊆ ACT_O × ACT_O] (Def. 11):
     bootstrapped at the leaves from the execution order (Axiom 1),
     augmented with program-order pairs (conformance, Def. 7), and closed
     under inheritance of transaction dependencies from the objects the
     actions of [O] call into;
   - the transaction dependency relation [⇒ ⊆ TRA_O × TRA_O] (Def. 10):
     the callers of *conflicting* dependent actions inherit the
     dependency — commuting pairs stop the inheritance, which is where
     open nesting gains concurrency;
   - the added action dependency relation (Def. 15): transaction
     dependencies recorded at other objects whose endpoints do not both
     live on [O], recorded redundantly at the objects of both endpoints.

   The two relations are mutually recursive across objects (an action on
   [O] is a transaction on the objects it calls into), so we iterate to a
   fixpoint; both relations only grow, the universe is finite, hence
   termination. *)

open Ids

(* Why an action dependency edge exists (diagnostics / the explain
   feature). *)
type dep_source =
  | Axiom1  (* conflicting leaves ordered by execution (Axiom 1) *)
  | Completion  (* leaf/non-leaf pair ordered by span (see DESIGN.md) *)
  | Program_order  (* the n3 precedence of Def. 7 *)
  | Inherited of Obj_id.t  (* from the transaction dependency at that object *)

type object_schedule = {
  obj : Obj_id.t;
  acts : Action_id.Set.t;
  act_dep : Action.Rel.t;
  txn_dep : Action.Rel.t;
  added_dep : Action.Rel.t;
  act_src : dep_source Action.Pair_map.t;
  txn_src : (Action_id.t * Action_id.t) Action.Pair_map.t;
      (* the conflicting action pair at this object that induced the
         transaction dependency (Def. 10's witness) *)
}

type t = {
  ext : Extension.t;
  objects : object_schedule Obj_id.Map.t;
}

let extension t = t.ext
let objects t = List.map snd (Obj_id.Map.bindings t.objects)

let find t o = Obj_id.Map.find_opt o t.objects

let find_exn t o =
  match find t o with
  | Some s -> s
  | None -> invalid_arg (Fmt.str "Schedule.find_exn: no schedule for %a" Obj_id.pp o)

(* Conflict test honouring Def. 9 (same-process actions commute) and the
   virtual-extension exclusion of call-path pairs. *)
let conflicts ext a_id a'_id =
  (not (Extension.same_call_path a_id a'_id))
  &&
  let reg = History.commut (Extension.history ext) in
  Commutativity.conflicts reg (Extension.action ext a_id)
    (Extension.action ext a'_id)

let span_start ext id =
  match Extension.span_of ext id with Some (lo, _) -> lo | None -> max_int

(* Bootstrap: conflicting pairs with at least one leaf are ordered by the
   execution order (Axiom 1 for leaf/leaf pairs; span order completes the
   leaf/non-leaf case, see DESIGN.md). *)
let bootstrap ext o =
  let acts = Action_id.Set.elements (Extension.acts_of ext o) in
  let rel = ref Action.Rel.empty in
  let src = ref Action.Pair_map.empty in
  let rec pairs = function
    | [] -> ()
    | a :: rest ->
        List.iter
          (fun a' ->
            if
              (Extension.is_leaf ext a || Extension.is_leaf ext a')
              && conflicts ext a a'
            then begin
              let why =
                if Extension.is_leaf ext a && Extension.is_leaf ext a' then
                  Axiom1
                else Completion
              in
              let sa = span_start ext a and sa' = span_start ext a' in
              if sa < sa' then begin
                rel := Action.Rel.add a a' !rel;
                src := Action.Pair_map.add (a, a') why !src
              end
              else if sa' < sa then begin
                rel := Action.Rel.add a' a !rel;
                src := Action.Pair_map.add (a', a) why !src
              end
              else ()
            end)
          rest;
        pairs rest
  in
  pairs acts;
  (!rel, !src)

(* Program-order pairs restricted to one object (conformance, Def. 7). *)
let prog_pairs ext o =
  let acts = Extension.acts_of ext o in
  Action.Rel.restrict (fun v -> Action_id.Set.mem v acts)
    (Extension.prog_rel ext)

(* Def. 10: transaction dependencies of one object from its current action
   dependencies, each edge carrying its witness pair. *)
let derive_txn_dep ext act_dep =
  Action.Rel.fold_edges
    (fun a a' ((rel, src) as acc) ->
      if not (conflicts ext a a') then acc
      else
        match (Extension.caller_of ext a, Extension.caller_of ext a') with
        | Some t, Some t' when not (Action_id.equal t t') ->
            ( Action.Rel.add t t' rel,
              if Action.Pair_map.mem (t, t') src then src
              else Action.Pair_map.add (t, t') (a, a') src )
        | _ -> acc)
    act_dep
    (Action.Rel.empty, Action.Pair_map.empty)

let compute ?ext h =
  let ext = match ext with Some e -> e | None -> Extension.extend h in
  let objs = Extension.objects ext in
  (* act state per object: relation + provenance *)
  let act0 =
    List.fold_left
      (fun m o ->
        let brel, bsrc = bootstrap ext o in
        let prel = prog_pairs ext o in
        let src =
          Action.Rel.fold_edges
            (fun a a' src ->
              if Action.Pair_map.mem (a, a') src then src
              else Action.Pair_map.add (a, a') Program_order src)
            prel bsrc
        in
        Obj_id.Map.add o (Action.Rel.union brel prel, src) m)
      Obj_id.Map.empty objs
  in
  let txn0 =
    List.fold_left
      (fun m o -> Obj_id.Map.add o (Action.Rel.empty, Action.Pair_map.empty) m)
      Obj_id.Map.empty objs
  in
  (* Fixpoint: Def. 10 (txn deps from act deps) and Def. 11 (act deps from
     txn deps of other objects). *)
  let rec fix act txn =
    let txn' =
      Obj_id.Map.mapi
        (fun o _ -> derive_txn_dep ext (fst (Obj_id.Map.find o act)))
        txn
    in
    let act' =
      Obj_id.Map.mapi
        (fun o (rel, src) ->
          let acts = Extension.acts_of ext o in
          Obj_id.Map.fold
            (fun p (prel, _) (rel, src) ->
              Action.Rel.fold_edges
                (fun t t' (rel, src) ->
                  if
                    Action_id.Set.mem t acts
                    && Action_id.Set.mem t' acts
                    && not (Action.Rel.mem t t' rel)
                  then
                    ( Action.Rel.add t t' rel,
                      Action.Pair_map.add (t, t') (Inherited p) src )
                  else (rel, src))
                prel (rel, src))
            txn' (rel, src))
        act
    in
    let same =
      Obj_id.Map.for_all
        (fun o (r, _) -> Action.Rel.equal r (fst (Obj_id.Map.find o act')))
        act
      && Obj_id.Map.for_all
           (fun o (r, _) -> Action.Rel.equal r (fst (Obj_id.Map.find o txn')))
           txn
    in
    if same then (act', txn') else fix act' txn'
  in
  let act, txn = fix act0 txn0 in
  let act_dep = Obj_id.Map.map fst act in
  let txn_dep = Obj_id.Map.map fst txn in
  (* Added action dependencies (Def. 15): every transaction dependency
     recorded anywhere is attached to the objects of both endpoints. *)
  let all_txn =
    Obj_id.Map.fold (fun _ r acc -> Action.Rel.union acc r) txn_dep
      Action.Rel.empty
  in
  let added =
    List.fold_left
      (fun m o ->
        let acts = Extension.acts_of ext o in
        let touches v = Action_id.Set.mem v acts in
        let rel =
          Action.Rel.filter_edges (fun t u -> touches t || touches u) all_txn
        in
        Obj_id.Map.add o rel m)
      Obj_id.Map.empty objs
  in
  let objects =
    List.fold_left
      (fun m o ->
        Obj_id.Map.add o
          {
            obj = o;
            acts = Extension.acts_of ext o;
            act_dep = Obj_id.Map.find o act_dep;
            txn_dep = Obj_id.Map.find o txn_dep;
            added_dep = Obj_id.Map.find o added;
            act_src = snd (Obj_id.Map.find o act);
            txn_src = snd (Obj_id.Map.find o txn);
          }
          m)
      Obj_id.Map.empty objs
  in
  { ext; objects }

(* Def. 12: two object schedules are equivalent iff they have the same
   transaction dependency relation; two system schedules are equivalent
   iff all their object schedules are (the union over absent objects being
   empty). *)
let equivalent_object (a : object_schedule) (b : object_schedule) =
  Action.Rel.equal a.txn_dep b.txn_dep

let equivalent a b =
  let objs =
    List.sort_uniq Obj_id.compare
      (List.map (fun s -> s.obj) (objects a) @ List.map (fun s -> s.obj) (objects b))
  in
  List.for_all
    (fun o ->
      let dep t = match find t o with
        | Some s -> s.txn_dep
        | None -> Action.Rel.empty
      in
      Action.Rel.equal (dep a) (dep b))
    objs

let pp_source ppf = function
  | Axiom1 -> Fmt.string ppf "execution order (Axiom 1)"
  | Completion -> Fmt.string ppf "span order (completion rule)"
  | Program_order -> Fmt.string ppf "program order (Def. 7)"
  | Inherited o -> Fmt.pf ppf "inherited from %a" Obj_id.pp o

let pp_object ppf s =
  Fmt.pf ppf "@[<v 2>%a:@,acts: %a@,act_dep: %a@,txn_dep: %a@]" Obj_id.pp s.obj
    (Fmt.list ~sep:(Fmt.any " ") Action_id.pp)
    (Action_id.Set.elements s.acts)
    Action.Rel.pp s.act_dep Action.Rel.pp s.txn_dep

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut pp_object) (objects t)
