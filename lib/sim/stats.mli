(** Streaming statistics and event counters for the experiment harness. *)

type t

val create : unit -> t
val add : t -> float -> unit
val add_int : t -> int -> unit
val count : t -> int
val total : t -> float
val mean : t -> float
val variance : t -> float
val stddev : t -> float
val min_value : t -> float
val max_value : t -> float
val merge : t -> t -> t
val pp : Format.formatter -> t -> unit

(** Latency histogram with geometric buckets (eight per octave, fixed
    512-slot footprint): quantiles are bucket-midpoint estimates within
    ~9% relative error, clamped to the observed min/max.  Values are in
    seconds. *)
module Histogram : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val min_value : t -> float
  val max_value : t -> float

  val quantile : t -> float -> float
  (** [quantile t q] for [q] in [0,1]; 0.0 on an empty histogram. *)

  val merge : t -> t -> t
  val pp : Format.formatter -> t -> unit
end

(** Counters keyed by string, for event tallies. *)
module Counter : sig
  type t

  val create : unit -> t
  val incr : ?by:int -> t -> string -> unit
  val get : t -> string -> int
  val to_list : t -> (string * int) list
  val pp : Format.formatter -> t -> unit
end
