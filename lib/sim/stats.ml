(* Streaming statistics and simple histograms for the experiment
   harness. *)

type t = {
  mutable n : int;
  mutable sum : float;
  mutable sumsq : float;
  mutable min : float;
  mutable max : float;
}

let create () =
  { n = 0; sum = 0.0; sumsq = 0.0; min = infinity; max = neg_infinity }

let add t x =
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  t.sumsq <- t.sumsq +. (x *. x);
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x

let add_int t x = add t (float_of_int x)

let count t = t.n
let total t = t.sum
let mean t = if t.n = 0 then 0.0 else t.sum /. float_of_int t.n

let variance t =
  if t.n < 2 then 0.0
  else
    let m = mean t in
    Float.max 0.0 ((t.sumsq /. float_of_int t.n) -. (m *. m))

let stddev t = sqrt (variance t)
let min_value t = if t.n = 0 then 0.0 else t.min
let max_value t = if t.n = 0 then 0.0 else t.max

let merge a b =
  {
    n = a.n + b.n;
    sum = a.sum +. b.sum;
    sumsq = a.sumsq +. b.sumsq;
    min = Float.min a.min b.min;
    max = Float.max a.max b.max;
  }

let pp ppf t =
  Fmt.pf ppf "n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f" t.n (mean t) (stddev t)
    (min_value t) (max_value t)

(* Latency histogram with geometric buckets: bucket [i] covers
   [base * g^i, base * g^(i+1)) seconds with g = 2^(1/8) — eight buckets
   per octave gives quantiles within ~9% relative error, plenty for
   p50/p95/p99 reporting, at a fixed 512-slot footprint (sub-microsecond
   to ~19 hours).  Values below [base] land in bucket 0; values above
   the range in the last bucket; exact min/max are kept alongside. *)
module Histogram = struct
  let n_buckets = 512
  let base = 1e-7  (* 100 ns *)
  let log_g = log 2.0 /. 8.0

  type t = {
    counts : int array;
    mutable n : int;
    mutable sum : float;
    mutable minv : float;
    mutable maxv : float;
  }

  let create () =
    {
      counts = Array.make n_buckets 0;
      n = 0;
      sum = 0.0;
      minv = infinity;
      maxv = neg_infinity;
    }

  let bucket_of v =
    if v <= base then 0
    else
      let i = int_of_float (log (v /. base) /. log_g) in
      if i < 0 then 0 else if i >= n_buckets then n_buckets - 1 else i

  (* geometric midpoint of the bucket, the value quantiles report *)
  let bucket_value i = base *. exp ((float_of_int i +. 0.5) *. log_g)

  let add t v =
    t.counts.(bucket_of v) <- t.counts.(bucket_of v) + 1;
    t.n <- t.n + 1;
    t.sum <- t.sum +. v;
    if v < t.minv then t.minv <- v;
    if v > t.maxv then t.maxv <- v

  let count t = t.n
  let mean t = if t.n = 0 then 0.0 else t.sum /. float_of_int t.n
  let min_value t = if t.n = 0 then 0.0 else t.minv
  let max_value t = if t.n = 0 then 0.0 else t.maxv

  let quantile t q =
    if t.n = 0 then 0.0
    else begin
      let q = Float.max 0.0 (Float.min 1.0 q) in
      let rank = int_of_float (ceil (q *. float_of_int t.n)) in
      let rank = if rank < 1 then 1 else rank in
      let acc = ref 0 and result = ref (bucket_value (n_buckets - 1)) in
      (try
         for i = 0 to n_buckets - 1 do
           acc := !acc + t.counts.(i);
           if !acc >= rank then begin
             result := bucket_value i;
             raise Exit
           end
         done
       with Exit -> ());
      (* clamp the midpoint estimate to the observed range *)
      Float.max t.minv (Float.min t.maxv !result)
    end

  let merge a b =
    let t = create () in
    Array.blit a.counts 0 t.counts 0 n_buckets;
    Array.iteri (fun i c -> t.counts.(i) <- t.counts.(i) + c) b.counts;
    t.n <- a.n + b.n;
    t.sum <- a.sum +. b.sum;
    t.minv <- Float.min a.minv b.minv;
    t.maxv <- Float.max a.maxv b.maxv;
    t

  let pp ppf t =
    Fmt.pf ppf "n=%d mean=%.6f p50=%.6f p95=%.6f p99=%.6f max=%.6f" t.n
      (mean t) (quantile t 0.50) (quantile t 0.95) (quantile t 0.99)
      (max_value t)
end

(* Counters keyed by string, for event tallies. *)
module Counter = struct
  type t = (string, int) Hashtbl.t

  let create () : t = Hashtbl.create 16

  let incr ?(by = 1) t key =
    let cur = match Hashtbl.find_opt t key with Some v -> v | None -> 0 in
    Hashtbl.replace t key (cur + by)

  let get t key =
    match Hashtbl.find_opt t key with Some v -> v | None -> 0

  let to_list t =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) t []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let pp ppf t =
    Fmt.pf ppf "%a"
      (Fmt.list ~sep:(Fmt.any ", ") (Fmt.pair ~sep:(Fmt.any "=") Fmt.string Fmt.int))
      (to_list t)
end
