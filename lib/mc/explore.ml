(* The stateless exploration core: depth-first enumeration of choice
   sequences with sleep-set partial-order reduction.

   A run of the system under test is a pure function of the answers its
   chooser gives at each nondeterministic point, so the explorer never
   snapshots state — to visit a different branch it simply re-runs the
   whole scenario with a different choice sequence (Godefroid's
   stateless search).  The DFS keeps one frame per branching point of
   the current run; backtracking flips the deepest frame with an
   untried candidate and replays the prefix.

   Sleep sets: after exploring candidate [c] at a frame, [c] joins the
   frame's taken set; sibling subtrees inherit [sleep ∪ taken] filtered
   by independence with the choice actually made, and a run that is
   about to take a slept choice is redundant (some equivalent
   interleaving was already explored) and gets pruned.  Soundness rests
   on the independence relation being step-uniform: [indep a b] must
   mean every occurrence of [a] commutes with every occurrence of [b],
   which {!Mc}'s footprint-based relation guarantees by construction
   (and which an unsound commutativity spec breaks — the mutant
   scenario demonstrates exactly that failure mode). *)

type choice =
  | C_txn of int  (** schedule this transaction's next boundary step *)
  | C_deliver of int  (** deliver the n-th queued dispatcher event *)
  | C_crash of int  (** arm the n-th crash plan (0 = no crash) *)

let choice_to_string = function
  | C_txn t -> Printf.sprintf "t%d" t
  | C_deliver n -> Printf.sprintf "d%d" n
  | C_crash n -> Printf.sprintf "c%d" n

let choice_of_string s =
  if String.length s < 2 then None
  else
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | None -> None
    | Some n -> (
        match s.[0] with
        | 't' -> Some (C_txn n)
        | 'd' -> Some (C_deliver n)
        | 'c' -> Some (C_crash n)
        | _ -> None)

let trace_to_string cs = String.concat "," (List.map choice_to_string cs)

let trace_of_string s =
  if String.trim s = "" then Some []
  else
    let parts = String.split_on_char ',' s in
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | p :: rest -> (
          match choice_of_string (String.trim p) with
          | Some c -> go (c :: acc) rest
          | None -> None)
    in
    go [] parts

exception Pruned
(** Raised from inside a run when the pending choice is covered by the
    sleep set: an equivalent interleaving has already been explored, so
    the rest of this run is redundant. *)

exception Divergence of string
(** Replay saw a candidate set incompatible with its script — the
    system under test is not a pure function of its choices. *)

(** What a runner consults at every nondeterministic point.  [choose]
    is a genuine branching point (two or more candidates); [advance] a
    forced choice (exactly one candidate) that still participates in
    sleep-set bookkeeping and in the recorded trace. *)
type chooser = { choose : choice list -> choice; advance : choice -> unit }

type frame = {
  cands : choice list;
  sleep : choice list;  (** sleep set when this state was first reached *)
  mutable cur : choice;
  mutable taken : choice list;  (** earlier siblings, already explored *)
}

type t = {
  indep : choice -> choice -> bool;
  dpor : bool;
  seed : int;
  mutable stack : frame list;  (** root first *)
  mutable depth : int;  (** frames consumed by the current run *)
  mutable run_sleep : choice list;  (** sleep set of the current state *)
  mutable trace : choice list;  (** current run's choices, reversed *)
  mutable schedules : int;  (** completed runs *)
  mutable pruned : int;  (** runs cut short by sleep sets *)
  mutable max_depth : int;
}

let create ?(dpor = true) ?(seed = 0) ~indep () =
  {
    indep;
    dpor;
    seed;
    stack = [];
    depth = 0;
    run_sleep = [];
    trace = [];
    schedules = 0;
    pruned = 0;
    max_depth = 0;
  }

let begin_run d =
  d.depth <- 0;
  d.run_sleep <- [];
  d.trace <- []

let current_trace d = List.rev d.trace

(* Deterministic candidate-order rotation: different seeds explore the
   same tree in a different sibling order, which shuffles which
   interleaving becomes the canonical representative of each trace. *)
let rotate d depth cands =
  let n = List.length cands in
  if d.seed = 0 || n < 2 then cands
  else
    let k = (d.seed + depth) mod n in
    let rec split i acc = function
      | rest when i = k -> rest @ List.rev acc
      | x :: rest -> split (i + 1) (x :: acc) rest
      | [] -> List.rev acc
    in
    split 0 [] cands

(* Stepping [c] from the current state with [slept] covered (the
   state's sleep set plus its already-explored siblings): the successor
   state keeps only the covered choices that commute with [c] — a
   dependent choice must be re-explored after [c]. *)
let took d c ~slept =
  d.run_sleep <- List.filter (fun s -> s <> c && d.indep s c) slept;
  d.trace <- c :: d.trace

let advance d c =
  if d.dpor && List.mem c d.run_sleep then begin
    d.pruned <- d.pruned + 1;
    raise Pruned
  end;
  took d c ~slept:d.run_sleep

let choose d cands =
  if cands = [] then invalid_arg "Explore.choose: no candidates";
  if d.depth < List.length d.stack then begin
    (* replaying the committed prefix of the previous run *)
    let f = List.nth d.stack d.depth in
    if not (List.mem f.cur cands) then
      raise
        (Divergence
           (Printf.sprintf "replay: %s not offered at depth %d"
              (choice_to_string f.cur) d.depth));
    d.depth <- d.depth + 1;
    took d f.cur ~slept:(f.sleep @ f.taken);
    f.cur
  end
  else begin
    let cands = rotate d d.depth cands in
    let sleep =
      if d.dpor then List.filter (fun s -> List.mem s cands) d.run_sleep
      else []
    in
    match List.find_opt (fun c -> not (List.mem c sleep)) cands with
    | None ->
        (* every enabled choice is covered: the whole subtree is
           redundant *)
        d.pruned <- d.pruned + 1;
        raise Pruned
    | Some c ->
        let f = { cands; sleep; cur = c; taken = [] } in
        d.stack <- d.stack @ [ f ];
        d.depth <- d.depth + 1;
        if d.depth > d.max_depth then d.max_depth <- d.depth;
        took d c ~slept:sleep;
        c
  end

let chooser d = { choose = choose d; advance = advance d }

(* Flip the deepest frame that still has an unexplored, unslept
   candidate; false when the tree is exhausted. *)
let next d =
  let rec go () =
    match d.stack with
    | [] -> false
    | stack -> (
        let last = List.length stack - 1 in
        let f = List.nth stack last in
        f.taken <- f.cur :: f.taken;
        let covered = f.sleep @ f.taken in
        match List.find_opt (fun c -> not (List.mem c covered)) f.cands with
        | Some c ->
            f.cur <- c;
            true
        | None ->
            d.stack <- List.filteri (fun i _ -> i < last) d.stack;
            go ())
  in
  go ()

(* -- replay ------------------------------------------------------------------- *)

(* A chooser that follows a recorded script, defaulting to the first
   candidate once the script runs out (used by witness minimisation and
   by the vote-window audit, where a config change may shift the tail
   of the tree). *)
let replay_chooser ?(strict = false) script =
  let rest = ref script in
  let take () =
    match !rest with
    | c :: tl ->
        rest := tl;
        Some c
    | [] -> None
  in
  let choose cands =
    match take () with
    | Some c when List.mem c cands -> c
    | Some c ->
        if strict then
          raise
            (Divergence
               (Printf.sprintf "scripted %s not offered" (choice_to_string c)))
        else List.hd cands
    | None -> List.hd cands
  in
  let advance c =
    match take () with
    | Some c' when c' = c || not strict -> ()
    | Some c' ->
        raise
          (Divergence
             (Printf.sprintf "scripted %s but forced %s"
                (choice_to_string c') (choice_to_string c)))
    | None -> ()
  in
  { choose; advance }

(* -- exploration driver ------------------------------------------------------- *)

type failure = { witness : choice list; violations : string list }

type stats = {
  schedules : int;  (** completed runs (terminal states reached) *)
  pruned_runs : int;
  deepest : int;
  exhausted : bool;  (** the whole tree was enumerated *)
}

(* [run chooser] must drive one complete execution and return the list
   of invariant violations observed at its terminal state ([[]] = all
   oracles green) paired with a short verdict fingerprint used to
   compare naive and DPOR explorations.  The driver stops at the first
   failing run and reports its choice trace as the witness. *)
let explore ?(max_schedules = 20_000) ~on_verdict d run =
  let failure = ref None in
  let continue = ref true in
  let exhausted = ref false in
  while !continue do
    begin_run d;
    (match run (chooser d) with
    | exception Pruned -> ()
    | verdict, violations ->
        d.schedules <- d.schedules + 1;
        on_verdict verdict;
        if violations <> [] && !failure = None then begin
          failure := Some { witness = current_trace d; violations };
          continue := false
        end);
    if !continue then
      if d.schedules >= max_schedules then continue := false
      else if not (next d) then begin
        continue := false;
        exhausted := true
      end
  done;
  ( {
      schedules = d.schedules;
      pruned_runs = d.pruned;
      deepest = d.max_depth;
      exhausted = !exhausted;
    },
    !failure )

(* Witness minimisation: the shortest prefix of the failing script that
   still fails when every later choice defaults to the first candidate.
   Linear in the witness length; each probe is one full re-run. *)
let minimise ~run witness =
  let fails script =
    match run (replay_chooser script) with
    | _, violations -> violations <> []
    | exception Pruned -> false
    | exception Divergence _ -> false
  in
  let rec firstn n = function
    | x :: tl when n > 0 -> x :: firstn (n - 1) tl
    | _ -> []
  in
  let rec go n =
    if n >= List.length witness then witness
    else
      let prefix = firstn n witness in
      if fails prefix then prefix else go (n + 1)
  in
  go 0
