(* The model checker proper: runners that drive the real engine (or the
   in-process sharded dispatcher) as a pure function of an
   {!Explore.chooser}'s answers, the invariant oracles evaluated at
   every terminal state, the footprint-based independence relation that
   feeds sleep-set DPOR, and the per-scenario exploration driver with
   its vote-window audit and witness minimisation. *)

open Ooser_core
open Ooser_oodb
module Protocol = Ooser_cc.Protocol
module Oplog = Ooser_recovery.Oplog
module Crash = Ooser_recovery.Crash
module Shard = Ooser_shard.Shard
module Dispatcher = Ooser_shard.Dispatcher
module Counter = Ooser_sim.Stats.Counter

let ( let* ) = Option.bind

(* -- small helpers ------------------------------------------------------------ *)

let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> y <> x) l in
          List.map (fun p -> x :: p) (permutations rest))
        l

let find_index p l =
  let rec go i = function
    | [] -> None
    | x :: tl -> if p x then Some i else go (i + 1) tl
  in
  go 0 l

let protocol_of db = function
  | `Open -> Protocol.open_nested ~reg:(Database.spec_registry db) ()
  | `Flat -> Protocol.flat_2pl ~reg:(Database.spec_registry db) ()
  | `Closed -> Protocol.closed_nested ~reg:(Database.spec_registry db) ()
  | `Certify -> Protocol.unlocked ()

(* One backend instantiation: the fresh database, its protocol, and how
   to read the certifiable committed history back out.  Lock scenarios
   certify the engine's execution order; occ scenarios certify the
   store's restamped multiversion order — the engine's raw interleaving
   can place a snapshot read after a concurrent commit it did not
   observe, which is not a violation under snapshot semantics. *)
type inst = {
  i_db : Database.t;
  i_protocol : Protocol.t;
  i_history : Engine.t -> History.t;
  i_certify : bool;
}

let fresh_inst (sc : Scenario.t) () =
  match sc.mode with
  | Scenario.Single { setup; protocol; _ } ->
      let db = setup () in
      {
        i_db = db;
        i_protocol = protocol_of db protocol;
        i_history = Engine.final_history;
        i_certify = protocol = `Certify;
      }
  | Scenario.Occ { setup } ->
      let db, store = setup () in
      {
        i_db = db;
        i_protocol = Ooser_occ.Store.protocol store;
        i_history = (fun _ -> Ooser_occ.Store.history store);
        i_certify = false;
      }
  | Scenario.Sharded _ -> invalid_arg "fresh_inst: sharded scenario"

let body_of_calls calls ctx =
  Value.list
    (List.map
       (fun (c : Scenario.call) ->
         Runtime.call ctx (Obj_id.v c.Scenario.c_obj) c.c_meth c.c_args)
       calls)

(* -- independence ------------------------------------------------------------- *)

(* Transaction-pair independence from the declared footprints: two
   transactions are independent when every cross pair of their calls
   either touches disjoint objects (Def. 9's base-set argument) or
   commutes in both orders under a STABLE registered spec.  Unstable
   specs read object state, so a commute answer at probe time proves
   nothing about other states — conservatively dependent.  This makes
   [indep] step-uniform (every step of one transaction commutes with
   every step of the other), which is what sleep-set propagation
   needs.  Sharded scenarios get the always-dependent relation: their
   choices also cover message delivery, which the footprints do not
   describe. *)
let independence (sc : Scenario.t) =
  match sc.mode with
  | Scenario.Sharded _ -> fun _ _ -> false
  | Scenario.Single _ | Scenario.Occ _ ->
      let db = (fresh_inst sc ()).i_db in
      let action top (c : Scenario.call) =
        Action.v
          ~id:(Ids.Action_id.v ~top ~path:[ 1 ])
          ~obj:(Obj_id.v c.c_obj) ~meth:c.c_meth ~args:c.c_args
          ~process:(Ids.Process_id.main top) ()
      in
      let calls_indep (c1 : Scenario.call) (c2 : Scenario.call) =
        if c1.c_obj <> c2.c_obj then true
        else
          match Database.spec db (Obj_id.v c1.c_obj) with
          | None -> false
          | Some spec ->
              Commutativity.stable spec
              &&
              let a1 = action 1 c1 and a2 = action 2 c2 in
              Commutativity.test spec a1 a2 && Commutativity.test spec a2 a1
      in
      let n = List.length sc.txns in
      let footprint i = (List.nth sc.txns (i - 1)).Scenario.calls in
      let matrix = Array.make_matrix (n + 1) (n + 1) false in
      for i = 1 to n do
        for j = 1 to n do
          matrix.(i).(j) <-
            i <> j
            && List.for_all
                 (fun c1 ->
                   List.for_all (fun c2 -> calls_indep c1 c2) (footprint j))
                 (footprint i)
        done
      done;
      fun a b ->
        match (a, b) with
        | Explore.C_txn i, Explore.C_txn j
          when i >= 1 && i <= n && j >= 1 && j <= n ->
            matrix.(i).(j)
        | _ -> false

(* -- the single-engine runner ------------------------------------------------- *)

(* Serial-state oracle support: the probe fingerprint each serial order
   of a committed set produces, memoised per scenario exploration (the
   same permutation is asked about by many terminal states). *)
type serial_memo = (int list, string) Hashtbl.t

let probe_top = 1_000

let fingerprint_of_state eng probes =
  let got = ref None in
  Engine.submit eng ~top:probe_top ~name:"mc-probe" (fun ctx ->
      let v = body_of_calls probes ctx in
      got := Some v;
      v);
  ignore (Engine.pump eng);
  match Engine.txn_state eng probe_top with
  | `Committed v -> Value.to_string v
  | _ -> (
      (* a blocked probe means the lock table was not quiescent — the
         quiescence oracle reports that separately *)
      match !got with Some v -> "partial:" ^ Value.to_string v | None -> "stuck")

let serial_fingerprint (sc : Scenario.t) ~fresh memo perm =
  match Hashtbl.find_opt memo perm with
  | Some fp -> fp
  | None ->
      let inst = fresh () in
      let protocol = inst.i_protocol in
      let config =
        { (Engine.default_config protocol) with max_restarts = 0 }
      in
      let eng = Engine.create ~config inst.i_db ~protocol [] in
      let fp =
        try
          List.iter
            (fun top ->
              let t = List.nth sc.txns (top - 1) in
              Engine.submit eng ~top ~name:t.t_name
                (body_of_calls t.Scenario.calls);
              ignore (Engine.pump eng);
              match Engine.txn_state eng top with
              | `Committed _ -> ()
              | _ -> raise Exit)
            perm;
          fingerprint_of_state eng sc.probes
        with Exit -> "serial-abort"
      in
      Hashtbl.add memo perm fp;
      fp

let matches_some_serial_order sc ~fresh memo ~committed fp =
  List.exists
    (fun perm -> serial_fingerprint sc ~fresh memo perm = fp)
    (permutations committed)

(* The controlled pick function: forced units (mid-body continuations,
   child starts, compensation steps) are auto-advanced — preferring the
   focused transaction — so a choice point opens exactly at invocation
   boundaries, where the set of candidate transactions is offered to
   the chooser.  [live] turns the hook off for the probe phase. *)
let make_pick (chooser : Explore.chooser) ~live =
  let focus = ref (-1) in
  fun (labels : Engine.unit_label list) ->
    if not !live then -1
    else
      let forced (l : Engine.unit_label) =
        (not l.u_boundary) || (l.u_task >= 0 && l.u_obj = "")
      in
      match
        find_index (fun l -> l.Engine.u_top = !focus && forced l) labels
      with
      | Some i -> i
      | None -> (
          match find_index forced labels with
          | Some i ->
              focus := (List.nth labels i).u_top;
              i
          | None -> (
              let tops =
                List.sort_uniq compare
                  (List.map (fun (l : Engine.unit_label) -> l.u_top) labels)
              in
              let pick_top t =
                focus := t;
                match
                  find_index (fun (l : Engine.unit_label) -> l.u_top = t) labels
                with
                | Some i -> i
                | None -> -1
              in
              match tops with
              | [] -> -1
              | [ t ] ->
                  chooser.Explore.advance (Explore.C_txn t);
                  pick_top t
              | ts -> (
                  match
                    chooser.Explore.choose
                      (List.map (fun t -> Explore.C_txn t) ts)
                  with
                  | Explore.C_txn t -> pick_top t
                  | _ -> -1)))

(* One complete single-engine execution under [chooser]; returns the
   verdict fingerprint and the invariant violations at its terminal
   state. *)
let run_single (sc : Scenario.t) ~fresh ~crash memo chooser =
  let crash_plan =
    match crash with
    | [] -> None
    | plans -> (
        let cands =
          List.mapi (fun i _ -> Explore.C_crash i) (() :: List.map ignore plans)
        in
        match chooser.Explore.choose cands with
        | Explore.C_crash 0 -> None
        | Explore.C_crash i -> List.nth_opt plans (i - 1)
        | _ -> None)
  in
  let inst = fresh () in
  let protocol = inst.i_protocol in
  let live = ref true in
  let config =
    {
      (Engine.default_config protocol) with
      strategy = Engine.Controlled (make_pick chooser ~live);
      max_restarts = 2;
      certify = inst.i_certify;
    }
  in
  let eng = Engine.create ~config inst.i_db ~protocol [] in
  let journal =
    match crash with
    | [] -> None
    | _ ->
        let j = Oplog.create () in
        Engine.set_journal eng (Some j);
        (match crash_plan with
        | Some (site, after) -> Oplog.set_injector j (Some (Crash.arm site ~after))
        | None -> ());
        Some j
  in
  List.iteri
    (fun i (t : Scenario.txn) ->
      Engine.submit eng ~top:(i + 1) ~name:t.t_name (body_of_calls t.calls))
    sc.txns;
  match Engine.pump eng with
  | exception Crash.Crashed _ ->
      (* the armed oplog site fired mid-run: recover from the forced
         prefix on a pristine database and re-check everything there *)
      live := false;
      let stable = Oplog.crash (Option.get journal) in
      let inst2 = fresh () in
      let protocol2 = inst2.i_protocol in
      let eng2, report =
        Engine.recover
          ~config:(Engine.default_config protocol2)
          inst2.i_db ~protocol:protocol2 stable
      in
      let violations = ref [] in
      let check name ok = if not ok then violations := name :: !violations in
      check "recovery: replayed call failed" (report.replay_failures = 0);
      check "recovery: recovered history fails certification"
        report.recertified;
      check "recovery: lock table not quiescent" (Protocol.quiescent protocol2);
      let winners = List.map fst report.rec_winners in
      let fp = fingerprint_of_state eng2 sc.probes in
      check "recovery: state matches no serial order of the winners"
        (matches_some_serial_order sc ~fresh memo ~committed:winners fp);
      let verdict =
        Printf.sprintf "crash winners=[%s] fp=%s"
          (String.concat "," (List.map string_of_int winners))
          fp
      in
      (verdict, List.rev !violations)
  | _steps ->
      live := false;
      let tops = Scenario.tops sc in
      let violations = ref [] in
      let check name ok = if not ok then violations := name :: !violations in
      let committed =
        List.filter
          (fun top ->
            match Engine.txn_state eng top with `Committed _ -> true | _ -> false)
          tops
      in
      let undecided =
        List.filter
          (fun top ->
            match Engine.txn_state eng top with
            | `Running | `Unknown -> true
            | _ -> false)
          tops
      in
      check "terminal: some transaction never decided" (undecided = []);
      check "terminal: lock table not quiescent" (Protocol.quiescent protocol);
      let verdict_h = Serializability.check (inst.i_history eng) in
      check "history: final history fails Serializability.check"
        verdict_h.Serializability.oo_serializable;
      let fp = fingerprint_of_state eng sc.probes in
      check "state: matches no serial order of the committed set"
        (undecided <> []
        || matches_some_serial_order sc ~fresh memo ~committed fp);
      let verdict =
        Printf.sprintf "committed=[%s] fp=%s"
          (String.concat "," (List.map string_of_int committed))
          fp
      in
      (verdict, List.rev !violations)

(* -- the sharded runner ------------------------------------------------------- *)

(* Scheduling model: shard event loops are deterministic given their
   command stream, so every shard with queued work is stepped to
   quiescence between choices (a "settled" system), and the remaining
   nondeterminism — which session sends its next command, and in which
   order queued shard events (results, votes, decisions) reach the
   dispatcher — is what the chooser controls.  Per-event delivery
   subsumes every 2PC vote-arrival permutation. *)

let settle_shards d ~shards =
  let moved = ref true in
  let guard = ref 0 in
  while !moved && !guard < 100_000 do
    moved := false;
    incr guard;
    for i = 0 to shards - 1 do
      if Dispatcher.shard_has_work d i then begin
        moved := true;
        Dispatcher.step_shard d i
      end
    done
  done

(* Synchronous helpers for the serial replays and the probe phase,
   where delivery order no longer matters: step everything and drain
   all events until the condition holds. *)
let sync_until d ~shards cond =
  let guard = ref 0 in
  while (not (cond ())) && !guard < 100_000 do
    incr guard;
    settle_shards d ~shards;
    Dispatcher.poll d
  done;
  cond ()

type sharded_outcome = {
  sh_committed : int list;
  sh_fp : string;
  sh_decided : (int * bool) list;  (** (top, committed) in top order *)
  sh_vote_full : int;  (** "vote-full-history" counter across shards *)
}

(* Session command streams: step 0 sends BEGIN together with the first
   call (a begin conflicts with nothing, so splitting it off would only
   square the interleaving count), step [k] for 1 <= k < ncalls sends
   call [k] once call [k-1]'s result is back — the lock-step protocol a
   real client session follows — and step [ncalls] sends COMMIT.
   Scenario transactions must declare at least one call. *)
let steps_of (t : Scenario.txn) = 1 + List.length t.calls

let send_command d (sc : Scenario.t) sent top =
  let t = List.nth sc.txns (top - 1) in
  let k = sent.(top) in
  (if k = 0 then begin
     Dispatcher.begin_txn d ~top ~name:t.t_name ~deadline:None;
     let c = List.hd t.calls in
     Dispatcher.call d ~top ~obj:c.c_obj ~meth:c.c_meth ~args:c.c_args
   end
   else if k < List.length t.calls then begin
     let c = List.nth t.calls k in
     Dispatcher.call d ~top ~obj:c.c_obj ~meth:c.c_meth ~args:c.c_args
   end
   else Dispatcher.commit d ~top);
  sent.(top) <- k + 1

let session_enabled d (sc : Scenario.t) sent top =
  let t = List.nth sc.txns (top - 1) in
  let k = sent.(top) in
  if k = 0 then true
  else if k >= steps_of t then false
  else Dispatcher.result d ~top ~seq:(k - 1) <> None

let probe_sharded d ~shards (sc : Scenario.t) =
  let n = List.length sc.probes in
  Dispatcher.begin_txn d ~top:probe_top ~name:"mc-probe" ~deadline:None;
  List.iter
    (fun (c : Scenario.call) ->
      Dispatcher.call d ~top:probe_top ~obj:c.c_obj ~meth:c.c_meth
        ~args:c.c_args)
    sc.probes;
  let all_results () =
    List.for_all
      (fun seq -> Dispatcher.result d ~top:probe_top ~seq <> None)
      (List.init n Fun.id)
  in
  if not (sync_until d ~shards all_results) then "probe-stuck"
  else begin
    let vs =
      List.map
        (fun seq ->
          match Dispatcher.result d ~top:probe_top ~seq with
          | Some (Ok v) -> Value.to_string v
          | Some (Error e) -> "err:" ^ e
          | None -> "none")
        (List.init n Fun.id)
    in
    Dispatcher.commit d ~top:probe_top;
    ignore
      (sync_until d ~shards (fun () ->
           match Dispatcher.txn_state d probe_top with
           | `Running | `Unknown -> false
           | _ -> true));
    String.concat ";" vs
  end

let with_dispatcher config f =
  let d = Dispatcher.create ~in_process:true config in
  Fun.protect ~finally:(fun () -> Dispatcher.shutdown d) (fun () -> f d)

let sharded_config ~shards ~db_kind ~protocol =
  {
    Dispatcher.shards;
    db_kind;
    protocol_kind = protocol;
    preload = 40;
    fanout = 4;
    accounts = 10;
    products = 4;
    durable_dir = None;
  }

let serial_fingerprint_sharded (sc : Scenario.t) ~shards ~db_kind ~protocol
    memo perm =
  match Hashtbl.find_opt memo perm with
  | Some fp -> fp
  | None ->
      let fp =
        with_dispatcher (sharded_config ~shards ~db_kind ~protocol) (fun d ->
            try
              List.iter
                (fun top ->
                  let t = List.nth sc.txns (top - 1) in
                  let sent = Array.make (probe_top + 1) 0 in
                  let total = steps_of t in
                  while sent.(top) < total do
                    if not (session_enabled d sc sent top) then raise Exit;
                    send_command d sc sent top;
                    ignore
                      (sync_until d ~shards (fun () ->
                           session_enabled d sc sent top
                           || sent.(top) >= total))
                  done;
                  if
                    not
                      (sync_until d ~shards (fun () ->
                           match Dispatcher.txn_state d top with
                           | `Committed _ -> true
                           | _ -> false))
                  then raise Exit)
                perm;
              probe_sharded d ~shards sc
            with Exit -> "serial-abort")
      in
      Hashtbl.add memo perm fp;
      fp

let run_sharded (sc : Scenario.t) ~shards ~db_kind ~protocol ~vote_full memo
    ?(outcome_sink = fun (_ : sharded_outcome) -> ()) chooser =
  with_dispatcher (sharded_config ~shards ~db_kind ~protocol) @@ fun d ->
  if vote_full then Dispatcher.set_vote_full d true;
  let tops = Scenario.tops sc in
  let sent = Array.make (probe_top + 1) 0 in
  let decided_events : (int, bool list) Hashtbl.t = Hashtbl.create 8 in
  let deliver_event pending i =
    (match List.nth_opt pending i with
    | Some (Shard.Ev_decided { top; outcome; _ }) ->
        let prev =
          Option.value ~default:[] (Hashtbl.find_opt decided_events top)
        in
        Hashtbl.replace decided_events top (Result.is_ok outcome :: prev)
    | _ -> ());
    ignore (Dispatcher.deliver d i)
  in
  (* Only vote and wound arrival order feeds coordinator decisions;
     every other event (results, decisions, stats) sends no commands
     back to the shards, so its delivery commutes with everything and
     is performed eagerly in FIFO order — a sound reduction that keeps
     the delivery choice focused on the 2PC race. *)
  let interesting = function
    | Shard.Ev_vote _ | Shard.Ev_wound _ -> true
    | _ -> false
  in
  let rec quiesce guard =
    if guard > 100_000 then failwith "mc: sharded quiesce diverged"
    else begin
      settle_shards d ~shards;
      let pending = Dispatcher.pending_events d in
      match find_index (fun e -> not (interesting e)) pending with
      | Some i ->
          deliver_event pending i;
          quiesce (guard + 1)
      | None -> pending
    end
  in
  let rec drive guard =
    if guard > 100_000 then failwith "mc: sharded drive did not quiesce"
    else begin
      let pending = quiesce 0 in
      let sessions =
        List.filter_map
          (fun top ->
            if session_enabled d sc sent top then Some (Explore.C_txn top)
            else None)
          tops
      in
      let deliveries = List.mapi (fun i _ -> Explore.C_deliver i) pending in
      match sessions @ deliveries with
      | [] -> ()
      | cands ->
          let c =
            match cands with
            | [ c ] ->
                chooser.Explore.advance c;
                c
            | _ -> chooser.Explore.choose cands
          in
          (match c with
          | Explore.C_txn top -> send_command d sc sent top
          | Explore.C_deliver i -> deliver_event pending i
          | Explore.C_crash _ -> ());
          drive (guard + 1)
    end
  in
  drive 0;
  let violations = ref [] in
  let check name ok = if not ok then violations := name :: !violations in
  let state top = Dispatcher.txn_state d top in
  let undecided =
    List.filter
      (fun top -> match state top with `Running | `Unknown -> true | _ -> false)
      tops
  in
  check "terminal: some transaction never decided" (undecided = []);
  check "terminal: some session never drained"
    (List.for_all
       (fun top -> sent.(top) = steps_of (List.nth sc.txns (top - 1)))
       tops);
  (* 2PC atomicity: the per-shard decisions delivered for one
     transaction must agree — a top committed on one participant and
     aborted on another is exactly the violation 2PC exists to rule
     out. *)
  Hashtbl.iter
    (fun top outs ->
      check
        (Printf.sprintf "2pc: mixed per-shard outcomes for txn %d" top)
        (List.for_all Fun.id outs || List.for_all not outs))
    decided_events;
  check "history: a shard or the coordinator decertified"
    (Dispatcher.certified d ());
  let merged = Dispatcher.merged_history d () in
  check "history: merged history malformed" (History.validate merged = Ok ());
  check "history: merged history not oo-serializable"
    (Serializability.oo_serializable merged);
  let committed =
    List.filter
      (fun top -> match state top with `Committed _ -> true | _ -> false)
      tops
  in
  let fp = probe_sharded d ~shards sc in
  check "state: matches no serial order of the committed set"
    (undecided <> []
    || List.exists
         (fun perm ->
           serial_fingerprint_sharded sc ~shards ~db_kind ~protocol memo perm
           = fp)
         (permutations committed));
  let vote_full_count =
    List.fold_left
      (fun acc (s : Dispatcher.shard_stats) ->
        acc
        + Option.value ~default:0 (List.assoc_opt "vote-full-history" s.engine))
      0
      (Dispatcher.stats d ())
  in
  let decided =
    List.map
      (fun top ->
        (top, match state top with `Committed _ -> true | _ -> false))
      tops
  in
  outcome_sink
    {
      sh_committed = committed;
      sh_fp = fp;
      sh_decided = decided;
      sh_vote_full = vote_full_count;
    };
  let verdict =
    Printf.sprintf "committed=[%s] fp=%s"
      (String.concat "," (List.map string_of_int committed))
      fp
  in
  (verdict, List.rev !violations)

(* -- scenario drivers --------------------------------------------------------- *)

type runner = Explore.chooser -> string * string list

(* [make_runner] builds the run function once per scenario; the memo
   table for serial fingerprints is shared across every schedule of the
   exploration. *)
let make_runner ?(vote_full = false) ?outcome_sink (sc : Scenario.t) : runner =
  match sc.mode with
  | Scenario.Single { crash; _ } ->
      let memo : serial_memo = Hashtbl.create 16 in
      let fresh = fresh_inst sc in
      fun chooser -> run_single sc ~fresh ~crash memo chooser
  | Scenario.Occ _ ->
      let memo : serial_memo = Hashtbl.create 16 in
      let fresh = fresh_inst sc in
      fun chooser -> run_single sc ~fresh ~crash:[] memo chooser
  | Scenario.Sharded { shards; db_kind; protocol } ->
      let memo : serial_memo = Hashtbl.create 16 in
      fun chooser ->
        run_sharded sc ~shards ~db_kind ~protocol ~vote_full memo
          ?outcome_sink chooser

(* -- vote-window audit -------------------------------------------------------- *)

(* DESIGN §17 claims the per-vote dependency window is equivalent to
   full-history votes: the pending-retirement window under the lock
   protocols, the validation-frontier watermark window under
   [`Certify].  The audit re-runs each explored sharded schedule with
   {!Dispatcher.set_vote_full} and compares the per-transaction
   verdicts; the shards' ["vote-full-history"] counter must stay zero
   during the windowed exploration itself — a fallback vote there would
   mean the window never engaged. *)
type audit = {
  audited : int;
  recorded : int;  (** schedules whose traces were captured *)
  mismatches : int;
  vote_full_votes : int;
      (** full-history votes observed during the WINDOWED exploration —
          nonzero means the window never engaged *)
}

let audit_cap = 64

let audit_sharded (sc : Scenario.t) ~traces ~vote_full_seen =
  match sc.mode with
  | Scenario.Single _ | Scenario.Occ _ -> None
  | Scenario.Sharded { shards; db_kind; protocol } ->
      let memo : serial_memo = Hashtbl.create 16 in
      let mismatches = ref 0 in
      let audited = ref 0 in
      List.iter
        (fun (trace, (decided : (int * bool) list)) ->
          if !audited < audit_cap then begin
            incr audited;
            let full = ref None in
            let sink (o : sharded_outcome) = full := Some o.sh_decided in
            (match
               run_sharded sc ~shards ~db_kind ~protocol ~vote_full:true memo
                 ~outcome_sink:sink
                 (Explore.replay_chooser trace)
             with
            | _ -> ()
            | exception _ -> ());
            match !full with
            | Some decided' when decided' = decided -> ()
            | _ -> incr mismatches
          end)
        traces;
      Some
        {
          audited = !audited;
          recorded = List.length traces;
          mismatches = !mismatches;
          vote_full_votes = vote_full_seen;
        }

(* -- exploration of one scenario ---------------------------------------------- *)

type exploration = {
  stats : Explore.stats;
  verdicts : string list;  (** distinct, sorted *)
  failure : Explore.failure option;
}

let explore_once (sc : Scenario.t) ~dpor ~seed ~max_schedules
    ~(record : (Explore.choice list * (int * bool) list) list ref option)
    ~vote_full_seen =
  let verdicts = Hashtbl.create 16 in
  let last_outcome = ref [] in
  let sink (o : sharded_outcome) =
    last_outcome := o.sh_decided;
    match vote_full_seen with
    | Some r -> r := max !r o.sh_vote_full
    | None -> ()
  in
  let runner = make_runner ~outcome_sink:sink sc in
  let d = Explore.create ~dpor ~seed ~indep:(independence sc) () in
  let run chooser =
    (* capture the choice trace of each completed schedule for the
       vote-window audit *)
    let log = ref [] in
    let logging =
      {
        Explore.choose =
          (fun cands ->
            let c = chooser.Explore.choose cands in
            log := c :: !log;
            c);
        advance =
          (fun c ->
            chooser.Explore.advance c;
            log := c :: !log);
      }
    in
    let r = runner logging in
    (match record with
    | Some traces when List.length !traces < audit_cap ->
        traces := (List.rev !log, !last_outcome) :: !traces
    | _ -> ());
    r
  in
  let stats, failure =
    Explore.explore ~max_schedules
      ~on_verdict:(fun v -> Hashtbl.replace verdicts v ())
      d run
  in
  {
    stats;
    verdicts =
      List.sort compare (Hashtbl.fold (fun v () acc -> v :: acc) verdicts []);
    failure;
  }

type report = {
  r_scenario : string;
  r_descr : string;
  r_mode : string;
  r_expect_failure : bool;
  r_naive : exploration option;
  r_dpor : exploration option;
  r_verdicts_agree : bool;
  r_reduction : float option;  (** naive schedules / dpor schedules *)
  r_witness : Explore.choice list option;  (** minimised failing trace *)
  r_violations : string list;  (** of the witness run *)
  r_audit : audit option;
  r_ok : bool;
  r_seconds : float;
  r_problems : string list;  (** why [r_ok] is false *)
}

let mode_name (sc : Scenario.t) =
  match sc.mode with
  | Scenario.Single { crash = []; _ } -> "single"
  | Scenario.Single _ -> "crash"
  | Scenario.Occ _ -> "occ"
  | Scenario.Sharded _ -> "sharded"

(* Run one scenario to exhaustion.  [mode] selects naive enumeration,
   DPOR, or both (the default: both, so the reduction factor and the
   verdict-set agreement are measured).  Expect-failure scenarios are
   explored naively: DPOR trusts the very spec the mutant breaks, so
   reduction would prune the interleavings that expose it. *)
let run_scenario ?(mode = `Both) ?(seed = 0) ?(max_schedules = 20_000)
    (sc : Scenario.t) =
  let t0 = Unix.gettimeofday () in
  let is_sharded =
    match sc.mode with Scenario.Sharded _ -> true | _ -> false
  in
  let record = if is_sharded then Some (ref []) else None in
  let vote_full_seen = if is_sharded then Some (ref 0) else None in
  let want_naive = mode <> `Dpor || sc.expect_failure in
  let want_dpor = mode <> `Naive && not sc.expect_failure in
  let naive =
    if want_naive then
      Some
        (explore_once sc ~dpor:false ~seed ~max_schedules ~record
           ~vote_full_seen)
    else None
  in
  let dpor =
    if want_dpor then
      Some
        (explore_once sc ~dpor:true ~seed ~max_schedules
           ~record:None ~vote_full_seen)
    else None
  in
  let problems = ref [] in
  let problem fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let failure =
    match (naive, dpor) with
    | Some { failure = Some f; _ }, _ -> Some f
    | _, Some { failure = Some f; _ } -> Some f
    | _ -> None
  in
  (* acceptance per scenario *)
  (match failure with
  | Some f when not sc.expect_failure ->
      problem "invariant violated: %s" (String.concat "; " f.violations)
  | None when sc.expect_failure ->
      problem "planted violation not found"
  | _ -> ());
  List.iter
    (fun (name, e) ->
      match e with
      | Some e when (not e.stats.Explore.exhausted) && e.failure = None ->
          problem "%s exploration hit the %d-schedule cap" name max_schedules
      | _ -> ())
    [ ("naive", naive); ("dpor", dpor) ];
  let verdicts_agree =
    match (naive, dpor) with
    | Some n, Some p -> n.verdicts = p.verdicts
    | _ -> true
  in
  if not verdicts_agree then
    problem "DPOR and naive explorations disagree on terminal verdicts";
  (match (naive, dpor) with
  | Some n, Some p
    when p.stats.Explore.schedules > n.stats.Explore.schedules ->
      problem "DPOR explored more schedules than naive"
  | _ -> ());
  let reduction =
    match (naive, dpor) with
    | Some n, Some p when p.stats.Explore.schedules > 0 ->
        Some
          (float_of_int n.stats.Explore.schedules
          /. float_of_int p.stats.Explore.schedules)
    | _ -> None
  in
  (* minimise the witness of an expected failure so the replay flag has
     a short deterministic script to reproduce *)
  let witness, violations =
    match failure with
    | None -> (None, [])
    | Some f ->
        let runner = make_runner sc in
        let w = Explore.minimise ~run:runner f.witness in
        (Some w, f.violations)
  in
  let audit =
    match record with
    | None -> None
    | Some traces ->
        audit_sharded sc ~traces:(List.rev !traces)
          ~vote_full_seen:
            (match vote_full_seen with Some r -> !r | None -> 0)
  in
  (match audit with
  | Some a when a.mismatches > 0 ->
      problem "vote-window audit: %d schedule(s) changed verdicts" a.mismatches
  | Some a when a.vote_full_votes > 0 ->
      problem
        "vote-window audit: windowed exploration paid %d full-history vote(s)"
        a.vote_full_votes
  | _ -> ());
  {
    r_scenario = sc.name;
    r_descr = sc.descr;
    r_mode = mode_name sc;
    r_expect_failure = sc.expect_failure;
    r_naive = naive;
    r_dpor = dpor;
    r_verdicts_agree = verdicts_agree;
    r_reduction = reduction;
    r_witness = witness;
    r_violations = violations;
    r_audit = audit;
    r_ok = !problems = [];
    r_seconds = Unix.gettimeofday () -. t0;
    r_problems = List.rev !problems;
  }

(* Replay a recorded witness: one deterministic run, no exploration. *)
let replay (sc : Scenario.t) trace =
  let runner = make_runner sc in
  runner (Explore.replay_chooser trace)

(* -- JSON report -------------------------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_of_exploration e =
  Printf.sprintf
    "{\"schedules\":%d,\"pruned\":%d,\"deepest\":%d,\"exhausted\":%b,\"verdicts\":%d}"
    e.stats.Explore.schedules e.stats.Explore.pruned_runs
    e.stats.Explore.deepest e.stats.Explore.exhausted
    (List.length e.verdicts)

let json_of_report r =
  let opt name = function
    | None -> Printf.sprintf "\"%s\":null" name
    | Some s -> Printf.sprintf "\"%s\":%s" name s
  in
  String.concat ","
    [
      Printf.sprintf "\"scenario\":\"%s\"" (json_escape r.r_scenario);
      Printf.sprintf "\"mode\":\"%s\"" r.r_mode;
      Printf.sprintf "\"ok\":%b" r.r_ok;
      Printf.sprintf "\"expect_failure\":%b" r.r_expect_failure;
      opt "naive" (Option.map json_of_exploration r.r_naive);
      opt "dpor" (Option.map json_of_exploration r.r_dpor);
      Printf.sprintf "\"verdicts_agree\":%b" r.r_verdicts_agree;
      opt "reduction"
        (Option.map (fun f -> Printf.sprintf "%.2f" f) r.r_reduction);
      opt "witness"
        (Option.map
           (fun w ->
             Printf.sprintf "\"%s\"" (json_escape (Explore.trace_to_string w)))
           r.r_witness);
      Printf.sprintf "\"violations\":[%s]"
        (String.concat ","
           (List.map
              (fun v -> Printf.sprintf "\"%s\"" (json_escape v))
              r.r_violations));
      opt "audit"
        (Option.map
           (fun a ->
             Printf.sprintf
               "{\"audited\":%d,\"recorded\":%d,\"mismatches\":%d,\"vote_full_votes\":%d}"
               a.audited a.recorded a.mismatches a.vote_full_votes)
           r.r_audit);
      Printf.sprintf "\"problems\":[%s]"
        (String.concat ","
           (List.map
              (fun p -> Printf.sprintf "\"%s\"" (json_escape p))
              r.r_problems));
      Printf.sprintf "\"seconds\":%.3f" r.r_seconds;
    ]
  |> Printf.sprintf "{%s}"

let json_of_reports rs =
  Printf.sprintf "{\"reports\":[%s],\"ok\":%b}\n"
    (String.concat "," (List.map json_of_report rs))
    (List.for_all (fun r -> r.r_ok) rs)
