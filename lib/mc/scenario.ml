(* The model checker's scenario DSL and its built-in suites.

   A scenario is declarative data: N top-level transactions (top = 1 +
   position), each a straight-line sequence of method calls on objects
   of a freshly built database, plus read-only probe calls whose
   results fingerprint the terminal state for the serial-state oracle.
   Everything the checker needs — the independence relation, the serial
   replays, the sharded placement — is derived from this declaration,
   so a scenario file is a complete, replayable description of a
   model-checking problem. *)

open Ooser_core
open Ooser_oodb
module Crash = Ooser_recovery.Crash
module Router = Ooser_shard.Router

type call = { c_obj : string; c_meth : string; c_args : Value.t list }

let call ?(args = []) obj meth = { c_obj = obj; c_meth = meth; c_args = args }

type txn = { t_name : string; calls : call list }

let txn name calls = { t_name = name; calls }

(** Where the scenario runs: a single engine over a custom database
    (optionally under crash injection), or the in-process sharded
    dispatcher over one of the canned shard databases. *)
type mode =
  | Single of {
      setup : unit -> Database.t;
          (** fresh, identical database per run — stateless exploration
              re-executes the scenario from scratch for every schedule,
              and the serial-state oracle needs its own pristine copy *)
      protocol : [ `Open | `Flat | `Closed | `Certify ];
      crash : (Crash.site * int) list;
          (** crash plans [(site, after)]; when non-empty the run's
              first choice point picks one of them or no crash at all *)
    }
  | Occ of {
      setup : unit -> Database.t * Ooser_occ.Store.t;
          (** fresh database AND multiversion store per run — the
              version chains are the store's state, so stateless
              exploration must rebuild both from scratch; the store
              provides the protocol and the certifiable (restamped
              multiversion) history *)
    }
  | Sharded of {
      shards : int;
      db_kind : [ `Encyclopedia | `Banking | `Inventory ];
      protocol : [ `Open | `Flat | `Closed | `Certify ];
    }

type t = {
  name : string;
  descr : string;
  txns : txn list;
  probes : call list;
  mode : mode;
  expect_failure : bool;
      (** a planted-bug scenario: exploration must find a violation *)
}

let tops sc = List.mapi (fun i _ -> i + 1) sc.txns

(* -- building blocks ---------------------------------------------------------- *)

(* An integer cell with delta undo — the minimal recoverable object. *)
let register_cell db name ~spec v0 =
  let cell = ref v0 in
  let amount = function
    | [ Value.Int n ] -> n
    | _ -> invalid_arg "cell: int amount expected"
  in
  let add ctx args =
    let n = amount args in
    cell := !cell + n;
    Runtime.on_undo ctx (fun () -> cell := !cell - n);
    Value.unit
  in
  let read _ctx _args = Value.int !cell in
  Database.register db (Obj_id.v name) ~spec
    [ ("add", Database.primitive add); ("read", Database.primitive read) ]

let rw_cell = Commutativity.rw ~reads:[ "read" ] ~writes:[ "add" ]

(* -- single-engine suite ------------------------------------------------------ *)

(* Three transactions on three private counters: every pair is
   independent (disjoint base sets, Def. 9), so DPOR must collapse the
   3!-order blow-up to a handful of schedules — the headline reduction
   datapoint. *)
let disjoint =
  let setup () =
    let db = Database.create () in
    List.iter (fun n -> register_cell db n ~spec:rw_cell 0) [ "X"; "Y"; "Z" ];
    db
  in
  {
    name = "disjoint";
    descr = "3 txns on 3 private counters: pairwise independent";
    txns =
      [
        txn "tx" [ call "X" "add" ~args:[ Value.int 1 ]; call "X" "add" ~args:[ Value.int 2 ] ];
        txn "ty" [ call "Y" "add" ~args:[ Value.int 3 ]; call "Y" "add" ~args:[ Value.int 4 ] ];
        txn "tz" [ call "Z" "add" ~args:[ Value.int 5 ]; call "Z" "add" ~args:[ Value.int 6 ] ];
      ];
    probes = [ call "X" "read"; call "Y" "read"; call "Z" "read" ];
    mode = Single { setup; protocol = `Open; crash = [] };
    expect_failure = false;
  }

(* One register under the conventional all-conflict view: strict 2PL
   blocking, fully dependent — DPOR gets no traction and must not lose
   any terminal state either. *)
let shared_register =
  let setup () =
    let db = Database.create () in
    register_cell db "R" ~spec:Commutativity.all_conflict 0;
    db
  in
  {
    name = "shared-register";
    descr = "2 txns on one all-conflict register";
    txns =
      [
        txn "ta" [ call "R" "add" ~args:[ Value.int 1 ]; call "R" "add" ~args:[ Value.int 2 ] ];
        txn "tb" [ call "R" "add" ~args:[ Value.int 10 ]; call "R" "add" ~args:[ Value.int 20 ] ];
      ];
    probes = [ call "R" "read" ];
    mode = Single { setup; protocol = `Open; crash = [] };
    expect_failure = false;
  }

(* Opposite-order acquisition on two all-conflict cells: some
   interleavings deadlock, exercising victim selection, compensation
   and retry under the controlled scheduler. *)
let deadlock_pair =
  let setup () =
    let db = Database.create () in
    register_cell db "X" ~spec:Commutativity.all_conflict 0;
    register_cell db "Y" ~spec:Commutativity.all_conflict 0;
    db
  in
  {
    name = "deadlock-pair";
    descr = "opposite-order lock acquisition: deadlock + retry paths";
    txns =
      [
        txn "xy" [ call "X" "add" ~args:[ Value.int 1 ]; call "Y" "add" ~args:[ Value.int 1 ] ];
        txn "yx" [ call "Y" "add" ~args:[ Value.int 2 ]; call "X" "add" ~args:[ Value.int 2 ] ];
      ];
    probes = [ call "X" "read"; call "Y" "read" ];
    mode = Single { setup; protocol = `Open; crash = [] };
    expect_failure = false;
  }

(* One directory object, three transactions: same base object, but the
   keyed spec makes the different-key pair commute — independence via
   the commutativity probe rather than object disjointness. *)
let directory =
  let setup () =
    let db = Database.create () in
    let dir = Ooser_adts.Directory.create () in
    let kv = function
      | [ k; v ] -> (k, v)
      | _ -> invalid_arg "bind: key value expected"
    in
    let bind ctx args =
      let k, v = kv args in
      let prev = Ooser_adts.Directory.lookup dir k in
      Ooser_adts.Directory.bind dir k v;
      Runtime.on_undo ctx (fun () ->
          match prev with
          | Some v0 -> Ooser_adts.Directory.bind dir k v0
          | None -> Ooser_adts.Directory.unbind dir k);
      Value.unit
    in
    let lookup _ctx args =
      match args with
      | [ k ] -> (
          match Ooser_adts.Directory.lookup dir k with
          | Some v -> Value.pair (Value.str "some") v
          | None -> Value.str "none")
      | _ -> invalid_arg "lookup: key expected"
    in
    Database.register db (Obj_id.v "Dir") ~spec:Ooser_adts.Directory.spec
      [
        ("bind", Database.primitive bind);
        ("lookup", Database.primitive lookup);
      ];
    db
  in
  let k = Value.str in
  {
    name = "directory";
    descr = "keyed spec: different-key txns commute on one object";
    txns =
      [
        txn "bind-a" [ call "Dir" "bind" ~args:[ k "a"; Value.int 1 ] ];
        txn "bind-b" [ call "Dir" "bind" ~args:[ k "b"; Value.int 2 ] ];
        txn "read-bind-a"
          [
            call "Dir" "lookup" ~args:[ k "a" ];
            call "Dir" "bind" ~args:[ k "a"; Value.int 3 ];
          ];
      ];
    probes = [ call "Dir" "lookup" ~args:[ k "a" ]; call "Dir" "lookup" ~args:[ k "b" ] ];
    mode = Single { setup; protocol = `Open; crash = [] };
    expect_failure = false;
  }

(* Escrow bounds force data-dependent aborts: T1 needs 80 out of a
   balance of 50, so it can never commit, and whether T2 commits
   depends on the interleaving — the serial-state oracle must accept
   every committed subset it finds. *)
let escrow =
  let setup () =
    let db = Database.create () in
    ignore
      (Ooser_workload.Banking.register_account db ~semantics:`Escrow 0
         ~balance:50 ~low:0 ~high:100);
    db
  in
  let acct = "Account0" in
  {
    name = "escrow";
    descr = "escrow bounds: state-dependent commutativity and aborts";
    txns =
      [
        txn "greedy"
          [
            call acct "withdraw" ~args:[ Value.int 40 ];
            call acct "withdraw" ~args:[ Value.int 40 ];
          ];
        txn "modest" [ call acct "withdraw" ~args:[ Value.int 40 ] ];
      ];
    probes = [ call acct "balance" ];
    mode = Single { setup; protocol = `Open; crash = [] };
    expect_failure = false;
  }

(* The planted bug: add and mul do NOT commute, but the registered spec
   claims everything does.  Locking grants every interleaving, the
   history checker (which trusts the same spec) stays green, and only
   the serial-state oracle can notice that ((1+3)*2+5)*3 matches no
   serial order.  Note DPOR trusts the same broken spec and would prune
   the offending interleavings — expect-failure scenarios are explored
   naively, which is itself the demonstration that spec soundness is a
   DPOR precondition. *)
let mutant =
  let setup () =
    let db = Database.create () in
    let cell = ref 1 in
    let amount = function
      | [ Value.Int n ] -> n
      | _ -> invalid_arg "amount expected"
    in
    let add ctx args =
      let n = amount args in
      cell := !cell + n;
      Runtime.on_undo ctx (fun () -> cell := !cell - n);
      Value.unit
    in
    let mul ctx args =
      let n = amount args in
      let old = !cell in
      cell := old * n;
      Runtime.on_undo ctx (fun () -> cell := old);
      Value.unit
    in
    let read _ctx _args = Value.int !cell in
    Database.register db (Obj_id.v "M") ~spec:Commutativity.all_commute
      [
        ("add", Database.primitive add);
        ("mul", Database.primitive mul);
        ("read", Database.primitive read);
      ];
    db
  in
  {
    name = "mutant";
    descr = "unsound all-commute spec over add/mul: planted violation";
    txns =
      [
        txn "adds" [ call "M" "add" ~args:[ Value.int 3 ]; call "M" "add" ~args:[ Value.int 5 ] ];
        txn "muls" [ call "M" "mul" ~args:[ Value.int 2 ]; call "M" "mul" ~args:[ Value.int 3 ] ];
      ];
    probes = [ call "M" "read" ];
    mode = Single { setup; protocol = `Open; crash = [] };
    expect_failure = true;
  }

(* -- occ suite ----------------------------------------------------------------- *)

(* The doctors-on-duty write-skew shape on the multiversion store: two
   transactions sign off the two doctors, each sign-off reading the
   OTHER doctor's status from its BEGIN snapshot.  Under validated occ
   (commute probes or the rw projection) a concurrent pair conflicts,
   so one transaction validation-aborts and retries against the other's
   commit — every terminal state matches a serial order.  The
   unvalidated variant is naive snapshot isolation: both sign-offs see
   the other still on duty, the committed history (where the snapshot
   read is folded into the update's commit stamp) stays green, and only
   the serial-state oracle can tell that "(off(saw on), off(saw on))"
   matches no serial order. *)
let occ_roster name ~mode ~expect_failure descr =
  {
    name;
    descr;
    txns =
      [
        txn "sign-x" [ call "Roster" "sign_off_x" ];
        txn "sign-y" [ call "Roster" "sign_off_y" ];
      ];
    probes = [ call "Roster" "read_x"; call "Roster" "read_y" ];
    mode = Occ { setup = (fun () -> Ooser_occ.Workloads.setup_roster ~mode ()) };
    expect_failure;
  }

let occ_write_skew =
  occ_roster "occ-write-skew" ~mode:Ooser_occ.Store.Commute
    ~expect_failure:false
    "doctors-on-duty write skew under commute-mode occ validation"

let occ_write_skew_rw =
  occ_roster "occ-write-skew-rw" ~mode:Ooser_occ.Store.Rw
    ~expect_failure:false
    "doctors-on-duty write skew under rw-projection (SSI) validation"

let occ_si_mutant =
  occ_roster "occ-si-mutant" ~mode:Ooser_occ.Store.Unvalidated
    ~expect_failure:true
    "unvalidated snapshot isolation: planted write-skew anomaly"

(* -- crash suite -------------------------------------------------------------- *)

(* Two counters, a journal, and a crash plan per oplog injection site:
   recovery must replay the stable prefix, compensate the losers once
   (no lost or duplicated compensation — the probe fingerprint exposes
   both), and recertify. *)
let crash_pair =
  let setup () =
    let db = Database.create () in
    register_cell db "X" ~spec:rw_cell 0;
    register_cell db "Y" ~spec:rw_cell 0;
    db
  in
  {
    name = "crash-pair";
    descr = "crash injection at every oplog site + recovery oracles";
    txns =
      [
        txn "two-step"
          [
            call "X" "add" ~args:[ Value.int 1 ];
            call "Y" "add" ~args:[ Value.int 2 ];
          ];
        txn "one-step" [ call "X" "add" ~args:[ Value.int 5 ] ];
      ];
    probes = [ call "X" "read"; call "Y" "read" ];
    mode =
      Single
        {
          setup;
          protocol = `Open;
          crash =
            [
              (Crash.Before_append, 0);
              (Crash.After_append, 0);
              (Crash.After_append, 1);
              (Crash.After_force, 0);
            ];
        };
    expect_failure = false;
  }

(* -- sharded suite ------------------------------------------------------------ *)

(* Placement is a pure function of the shard count, so scenarios can
   precompute which canned object lands on which shard. *)
let account_on ~shards wanted =
  let r = Router.create ~shards in
  let rec go i =
    if i >= 64 then failwith "no account on shard"
    else
      let obj = Printf.sprintf "Account%d" i in
      if Router.shard_of_call r ~obj ~args:[] = wanted then obj else go (i + 1)
  in
  go 0

let enc_key_on ~shards wanted =
  let r = Router.create ~shards in
  let rec go i =
    if i >= 40 then failwith "no preloaded key on shard"
    else
      let key = Printf.sprintf "k%05d" i in
      if Router.shard_of_call r ~obj:"Enc" ~args:[ Value.str key ] = wanted
      then key
      else go (i + 1)
  in
  go 0

(* Opposite-direction cross-shard transfers: both transactions prepare
   on both shards, so every 2PC vote-arrival order is explored; escrow
   semantics let both commit. *)
let shard_transfer_base name protocol expect_failure =
  let a0 = account_on ~shards:2 0 and a1 = account_on ~shards:2 1 in
  {
    name;
    descr = "opposite cross-shard transfers through 2PC";
    txns =
      [
        txn "t0to1"
          [
            call a0 "withdraw" ~args:[ Value.int 5 ];
            call a1 "deposit" ~args:[ Value.int 5 ];
          ];
        txn "t1to0"
          [
            call a1 "withdraw" ~args:[ Value.int 3 ];
            call a0 "deposit" ~args:[ Value.int 3 ];
          ];
      ];
    probes = [ call a0 "balance"; call a1 "balance" ];
    mode = Sharded { shards = 2; db_kind = `Banking; protocol };
    expect_failure;
  }

let shard_transfer = shard_transfer_base "shard-transfer" `Open false

(* Same shape under [`Certify]: votes window on the validation-frontier
   watermark instead of the lock protocols' pending-retirement window,
   and the vote-window audit re-runs every explored schedule with
   full-history votes to check the watermark window decides
   identically. *)
let shard_certify = shard_transfer_base "shard-certify" `Certify false

(* The planted Def. 15 cross-shard cycle of the shard tests, explored
   over every command/vote interleaving instead of one: each shard's
   local schedule stays fine, only edge exchange at prepare time can
   see the cycle, and some interleaving must abort one transaction. *)
let shard_cycle =
  let ka = enc_key_on ~shards:2 0 and kb = enc_key_on ~shards:2 1 in
  {
    name = "shard-cycle";
    descr = "opposite-order cross-shard updates: Def. 15 edge exchange";
    txns =
      [
        txn "ab"
          [
            call "Enc" "update" ~args:[ Value.str ka; Value.str "a1" ];
            call "Enc" "update" ~args:[ Value.str kb; Value.str "b1" ];
          ];
        txn "ba"
          [
            call "Enc" "update" ~args:[ Value.str kb; Value.str "b2" ];
            call "Enc" "update" ~args:[ Value.str ka; Value.str "a2" ];
          ];
      ];
    probes =
      [
        call "Enc" "search" ~args:[ Value.str ka ];
        call "Enc" "search" ~args:[ Value.str kb ];
      ];
    mode = Sharded { shards = 2; db_kind = `Encyclopedia; protocol = `Open };
    expect_failure = false;
  }

(* -- registry ----------------------------------------------------------------- *)

let all =
  [
    disjoint;
    shared_register;
    deadlock_pair;
    directory;
    escrow;
    mutant;
    occ_write_skew;
    occ_write_skew_rw;
    occ_si_mutant;
    crash_pair;
    shard_transfer;
    shard_cycle;
    shard_certify;
  ]

let suites =
  [
    ( "single",
      [ "disjoint"; "shared-register"; "deadlock-pair"; "directory"; "escrow" ]
    );
    ("mutant", [ "mutant" ]);
    ("occ", [ "occ-write-skew"; "occ-write-skew-rw"; "occ-si-mutant" ]);
    ("crash", [ "crash-pair" ]);
    ("sharded", [ "shard-transfer"; "shard-cycle"; "shard-certify" ]);
  ]

let find name = List.find_opt (fun sc -> sc.name = name) all

let suite name =
  if name = "all" then Some all
  else
    match List.assoc_opt name suites with
    | Some names -> Some (List.filter_map find names)
    | None -> None

let suite_names = "all" :: List.map fst suites
