(* AST of the history description language, convertible to and from the
   core History representation.

   Example document:

     # the two-insert scenario of Example 1
     object Page4712 rw reads = read writes = readx, write
     object Leaf11 keyed conflicts = insert:insert, insert:search
     object BpTree keyed conflicts = insert:insert, insert:search

     txn 1 {
       BpTree.insert("DBMS") {
         Leaf11.insert("DBMS") { Page4712.readx; Page4712.write }
       }
     }
     txn 2 {
       BpTree.insert("DBS") {
         Leaf11.insert("DBS") { Page4712.readx; Page4712.write }
       }
     }

     order 1.1.1.1 1.1.1.2 2.1.1.1 2.1.1.2
*)

open Ooser_core

type spec_decl =
  | Rw of { reads : string list; writes : string list }
  | All_conflict
  | All_commute
  | Conflicts of (string * string) list
  | Commutes of (string * string) list
  | Keyed of spec_decl

(* A child group: sequential children run one after another; the members
   of a [par { ... }] block carry no mutual precedence and run as
   parallel branches (Def. 9). *)
type group = Seq_call of call | Par_calls of call list

and call = {
  c_obj : string;
  c_meth : string;
  c_args : Value.t list;
  c_children : group list;
}

type txn = { t_id : int; t_calls : group list }

type t = {
  objects : (string * spec_decl) list;
  txns : txn list;
  order : (int * int list) list option;  (* top, path; None = serial *)
}

(* The text format is lenient: listing a pair in both orders (or a
   method twice) is harmless in a description file, so canonicalise
   before the constructors, which reject duplicates (they are almost
   always typos in handwritten OCaml specs). *)
let dedup_pairs pairs =
  let canon (a, b) = if String.compare a b <= 0 then (a, b) else (b, a) in
  List.sort_uniq compare (List.map canon pairs)

let dedup = List.sort_uniq String.compare

let rec spec_of_decl = function
  | Rw { reads; writes } ->
      let reads = dedup reads in
      Commutativity.rw ~reads
        ~writes:(List.filter (fun w -> not (List.mem w reads)) (dedup writes))
  | All_conflict -> Commutativity.all_conflict
  | All_commute -> Commutativity.all_commute
  | Conflicts pairs ->
      Commutativity.of_conflict_matrix ~name:"conflicts" (dedup_pairs pairs)
  | Commutes pairs ->
      Commutativity.of_commute_matrix ~name:"commutes" (dedup_pairs pairs)
  | Keyed inner ->
      Commutativity.by_key ~key_of:Commutativity.first_arg (spec_of_decl inner)

let registry t =
  Commutativity.fixed
    ~default:Commutativity.all_conflict
    (List.map (fun (name, decl) -> (name, spec_of_decl decl)) t.objects)

(* Flatten groups to a child list plus the explicit precedence pairs:
   every member of a group precedes every member of the next group;
   members of one par block stay unordered (Def. 9). *)
let prec_of_lengths lengths =
  let rec pairs start acc = function
    | [] | [ _ ] -> acc
    | glen :: (nlen :: _ as rest) ->
        let acc =
          List.concat_map
            (fun i ->
              List.map (fun j -> (start + i, start + glen + j))
                (List.init nlen Fun.id))
            (List.init glen Fun.id)
          @ acc
        in
        pairs (start + glen) acc rest
  in
  List.rev (pairs 0 [] lengths)

(* Members of a par block run as distinct processes of the transaction
   (Def. 9); [branches] numbers them uniquely within the transaction. *)
let rec layout ~branches groups =
  let expanded =
    List.map
      (function
        | Seq_call x -> [ tree_of_call ~branches ?branch:None x ]
        | Par_calls xs ->
            List.map
              (fun x ->
                incr branches;
                tree_of_call ~branches ~branch:!branches x)
              xs)
      groups
  in
  (List.concat expanded, prec_of_lengths (List.map List.length expanded))

and tree_of_call ~branches ?branch c =
  let children, prec = layout ~branches c.c_children in
  Call_tree.Build.call ~args:c.c_args ?branch ~prec (Obj_id.v c.c_obj)
    c.c_meth children

let to_history t =
  let tops =
    List.map
      (fun txn ->
        let branches = ref 0 in
        let children, prec = layout ~branches txn.t_calls in
        Call_tree.Build.top ~prec ~n:txn.t_id children)
      t.txns
  in
  let commut = registry t in
  match t.order with
  | None -> History.of_serial ~tops ~commut
  | Some refs ->
      let order =
        List.map (fun (top, path) -> Ids.Action_id.v ~top ~path) refs
      in
      History.v ~tops ~order ~commut

(* Rebuild a document from call trees (specs cannot be recovered from the
   opaque registry and must be supplied). *)
let of_history ?(objects = []) h =
  (* rebuild groups from the precedence relation: children with no mutual
     precedence that sit between the same neighbours collapse into par
     blocks; for the common builder output (chains) everything is Seq *)
  let rec call_of_tree node =
    let children = Call_tree.children node in
    let prec = Call_tree.prec node in
    let n = List.length children in
    let before i j = List.mem (i, j) prec in
    (* greedy grouping: consecutive indices with no ordering between them
       form one parallel group *)
    let rec group i acc cur =
      if i >= n then List.rev (if cur = [] then acc else List.rev cur :: acc)
      else if cur = [] then group (i + 1) acc [ i ]
      else if List.for_all (fun j -> (not (before j i)) && not (before i j)) cur
      then group (i + 1) acc (i :: cur)
      else group (i + 1) (List.rev cur :: acc) [ i ]
    in
    let idx_groups = group 0 [] [] in
    let arr = Array.of_list children in
    {
      c_obj = Obj_id.to_string (Action.obj (Call_tree.act node));
      c_meth = Action.meth (Call_tree.act node);
      c_args = Action.args (Call_tree.act node);
      c_children =
        List.map
          (fun g ->
            match g with
            | [ i ] -> Seq_call (call_of_tree arr.(i))
            | is -> Par_calls (List.map (fun i -> call_of_tree arr.(i)) is))
          idx_groups;
    }
  in
  let txns =
    List.map
      (fun tree ->
        {
          t_id = Ids.Action_id.top (Action.id (Call_tree.act tree));
          t_calls = (call_of_tree tree).c_children;
        })
      (History.tops h)
  in
  let order =
    Some
      (List.map
         (fun id -> (Ids.Action_id.top id, Ids.Action_id.path id))
         (History.order h))
  in
  { objects; txns; order }

(* -- printing ----------------------------------------------------------------- *)

let rec pp_spec ppf = function
  | Rw { reads; writes } ->
      Fmt.pf ppf "rw reads = %a writes = %a"
        (Fmt.list ~sep:(Fmt.any ", ") Fmt.string) reads
        (Fmt.list ~sep:(Fmt.any ", ") Fmt.string) writes
  | All_conflict -> Fmt.string ppf "allconflict"
  | All_commute -> Fmt.string ppf "allcommute"
  | Conflicts pairs ->
      Fmt.pf ppf "conflicts = %a"
        (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (a, b) -> Fmt.pf ppf "%s:%s" a b))
        pairs
  | Commutes pairs ->
      Fmt.pf ppf "commutes = %a"
        (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (a, b) -> Fmt.pf ppf "%s:%s" a b))
        pairs
  | Keyed inner -> Fmt.pf ppf "keyed %a" pp_spec inner

let pp_value ppf = function
  | Value.Str s -> Fmt.pf ppf "%S" s
  | Value.Int i -> Fmt.int ppf i
  | v -> Fmt.pf ppf "%S" (Value.to_string v)

let rec pp_group ppf = function
  | Seq_call c -> pp_call ppf c
  | Par_calls cs ->
      Fmt.pf ppf "par {@;<1 2>@[<v>%a@]@ }" (Fmt.list ~sep:Fmt.cut pp_call) cs

and pp_call ppf c =
  Fmt.pf ppf "%s.%s" c.c_obj c.c_meth;
  if c.c_args <> [] then
    Fmt.pf ppf "(%a)" (Fmt.list ~sep:(Fmt.any ", ") pp_value) c.c_args;
  match c.c_children with
  | [] -> ()
  | children ->
      Fmt.pf ppf " {@;<1 2>@[<v>%a@]@ }" (Fmt.list ~sep:Fmt.cut pp_group) children

let pp ppf t =
  List.iter
    (fun (name, decl) -> Fmt.pf ppf "object %s %a@." name pp_spec decl)
    t.objects;
  List.iter
    (fun txn ->
      Fmt.pf ppf "@.txn %d {@;<1 2>@[<v>%a@]@ }@." txn.t_id
        (Fmt.list ~sep:Fmt.cut pp_group) txn.t_calls)
    t.txns;
  match t.order with
  | None -> ()
  | Some refs ->
      Fmt.pf ppf "@.order %a@."
        (Fmt.list ~sep:Fmt.sp (fun ppf (top, path) ->
             Fmt.pf ppf "%s"
               (String.concat "." (List.map string_of_int (top :: path)))))
        refs

let to_string t = Fmt.str "%a" pp t
