(* Canned occ databases for the CLI, benchmarks, model checker and
   tests — the occ counterparts of lib/workload's lock-protocol setups,
   sharing object naming with them (Account%d, X/Y cells) so the
   existing loadgen call mixes run unchanged. *)

open Ooser_core
module Database = Ooser_oodb.Database

let account_obj i = Obj_id.v (Printf.sprintf "Account%d" i)

(* Escrow-heavy banking: the workload the occ(commute) < occ(rw)
   abort-rate gate runs on. *)
let setup_banking ~mode ?(accounts = 10) ?(balance = 100) ?(low = 0)
    ?(high = 1_000_000) () =
  let db = Database.create () in
  let store = Store.create ~mode () in
  for i = 0 to accounts - 1 do
    Store.register store db (account_obj i) (Model.escrow ~low ~high balance)
  done;
  (db, store)

let total_balance store ~accounts =
  let sum = ref 0 in
  for i = 0 to accounts - 1 do
    sum := !sum + Value.to_int_exn (Store.committed_state store (account_obj i))
  done;
  !sum

(* Read/write cells (stable specs — exercises the incremental-certifier
   validation path). *)
let setup_registers ~mode ?(cells = [ "X"; "Y" ]) ?init () =
  let db = Database.create () in
  let store = Store.create ~mode () in
  List.iter
    (fun name -> Store.register store db (Obj_id.v name) (Model.register ?init ()))
    cells;
  (db, store)

let roster_obj = Obj_id.v "Roster"

(* The doctors-on-duty write-skew scenario object. *)
let setup_roster ~mode () =
  let db = Database.create () in
  let store = Store.create ~mode () in
  Store.register store db roster_obj (Model.roster ());
  (db, store)
