(* Functional ADT models for the multiversion store.

   A lock-protocol object is a closure over hidden mutable state; a
   version chain needs the state reified as a value and the methods as
   pure state transitions, so that

   - reads run against any snapshot version,
   - updates buffer as redo intentions and replay at commit point
     against the then-current committed state (the serial-equivalent
     apply order), and
   - the registered commutativity spec can keep probing "the current
     state" through an accessor instead of a captured reference.

   Soundness constraint on models: an update method's RESULT must be a
   pure function of its arguments (state-dependence of its
   applicability — e.g. escrow bounds — must be expressed both as a
   raise in [apply] and in the commutativity spec).  A method whose
   result reads state must be classified [`Read] or declared in the
   spec to conflict with updates, otherwise commit-time replay could
   silently change what the client already observed. *)

open Ooser_core
module Runtime = Ooser_oodb.Runtime

type outcome = {
  new_state : Value.t option;  (** [None] = pure read *)
  result : Value.t;
}

type t = {
  name : string;
  init : Value.t;
  methods : string list;
  is_update : string -> bool;
  apply : Value.t -> string -> Value.t list -> outcome;
      (** May raise {!Ooser_oodb.Runtime.Abort} on semantic failure
          (escrow bounds); deterministic in (state, method, args). *)
  stale_apply :
    committed:Value.t -> snap:Value.t -> string -> Value.t list -> Value.t;
      (** The unvalidated-SI mutant's apply: the new state an update
          computes from its BEGIN snapshot, merged into the committed
          state — the bug naive snapshot isolation exhibits.  Only the
          model-checker mutant mode calls this. *)
  spec_of : current:(unit -> Value.t) -> Commutativity.spec;
      (** Commutativity spec; [current] yields the newest committed
          state for state-reading (escrow-style) predicates. *)
}

(* The read/write projection of a model: what plain SSI sees.  Stable by
   construction, so rw-mode validation always runs the incremental
   certifier. *)
let rw_spec m =
  let reads, writes = List.partition (fun x -> not (m.is_update x)) m.methods in
  Commutativity.rw_named ~name:(m.name ^ "-rw") ~reads ~writes

let default_stale apply ~committed ~snap meth args =
  match (apply snap meth args).new_state with
  | Some st -> st
  | None -> committed

(* -- escrow account ------------------------------------------------------------

   State: the balance as [Value.Int].  deposit/withdraw raise at
   execution when the SNAPSHOT state violates bounds, and again at
   commit-time replay when the combined concurrent deltas do; the spec
   mirrors lib/adts/escrow_counter.ml against the current committed
   balance. *)

let escrow ?(low = 0) ?(high = max_int) initial =
  if initial < low || initial > high then
    invalid_arg "Occ.Model.escrow: initial value out of bounds";
  let amount = function
    | Value.Int n :: _ when n >= 0 -> n
    | _ -> invalid_arg "amount expected"
  in
  let in_bounds v = v >= low && v <= high in
  let delta_of act =
    let n () =
      match Action.args act with
      | v :: _ -> Value.to_int v
      | [] -> None
    in
    match Action.meth act with
    | "deposit" | "incr" -> n ()
    | "withdraw" | "decr" -> Option.map (fun n -> -n) (n ())
    | _ -> None
  in
  let is_read act =
    match Action.meth act with "balance" | "read" -> true | _ -> false
  in
  let apply st meth args =
    let v = Value.to_int_exn st in
    match meth with
    | "deposit" ->
        let v' = v + amount args in
        if in_bounds v' then { new_state = Some (Value.int v'); result = Value.unit }
        else Runtime.abort (Printf.sprintf "escrow: %d outside [%d, %d]" v' low high)
    | "withdraw" ->
        let v' = v - amount args in
        if in_bounds v' then { new_state = Some (Value.int v'); result = Value.unit }
        else Runtime.abort (Printf.sprintf "escrow: %d outside [%d, %d]" v' low high)
    | "balance" -> { new_state = None; result = Value.int v }
    | m -> invalid_arg ("Occ escrow: unknown method " ^ m)
  in
  let rec model =
    {
      name = "escrow-occ";
      init = Value.int initial;
      methods = [ "deposit"; "withdraw"; "balance" ];
      is_update = (fun m -> m = "deposit" || m = "withdraw");
      apply;
      stale_apply = (fun ~committed ~snap m a -> default_stale apply ~committed ~snap m a);
      spec_of =
        (fun ~current ->
          Commutativity.predicate ~name:"escrow-occ"
            ~vocab:[ "deposit"; "withdraw"; "balance" ]
            (fun a b ->
              let v = Value.to_int_exn (current ()) in
              match (delta_of a, delta_of b) with
              | Some da, Some db ->
                  in_bounds (v + da) && in_bounds (v + db)
                  && in_bounds (v + da + db)
              | None, None -> is_read a && is_read b
              | Some _, None | None, Some _ -> false));
    }
  in
  model

(* -- read/write register -------------------------------------------------------

   [write v] overwrites, [read] returns the state.  The spec is the
   classic stable read/write matrix, so commute-mode validation behaves
   like rw-mode here and both run the incremental certifier. *)

let register ?(init = Value.int 0) () =
  let apply st meth args =
    match (meth, args) with
    | "write", v :: _ -> { new_state = Some v; result = Value.unit }
    | "read", _ -> { new_state = None; result = st }
    | m, _ -> invalid_arg ("Occ register: unknown method " ^ m)
  in
  {
    name = "register-occ";
    init;
    methods = [ "read"; "write" ];
    is_update = (fun m -> m = "write");
    apply;
    stale_apply = (fun ~committed ~snap m a -> default_stale apply ~committed ~snap m a);
    spec_of =
      (fun ~current:_ ->
        Commutativity.rw_named ~name:"register-occ" ~reads:[ "read" ]
          ~writes:[ "write" ]);
  }

(* -- doctors-on-duty roster ----------------------------------------------------

   The write-skew scenario object.  State: [Pair (Str x, Str y)], the
   duty status of two doctors, both initially "on".  [sign_off_x] reads
   the OTHER doctor's status and records the observed value while going
   off duty — the classic two-snapshot-readers-with-disjoint-writes
   shape folded into one object (the scenario DSL is straight-line, so
   the cross read must live inside the method).  Under correct
   validation at most one sign-off per interleaved pair survives
   unretried; the unvalidated mutant's [stale_apply] merges the
   snapshot-computed field into the committed state, producing the
   both-signed-off-having-seen-each-other-on state no serial order can
   produce. *)

let roster ?(x = "on") ?(y = "on") () =
  let fields st =
    match st with
    | Value.Pair (Value.Str a, Value.Str b) -> (a, b)
    | _ -> invalid_arg "Occ roster: malformed state"
  in
  let off saw = "off(saw " ^ saw ^ ")" in
  let apply st meth _args =
    let sx, sy = fields st in
    match meth with
    | "read_x" -> { new_state = None; result = Value.str sx }
    | "read_y" -> { new_state = None; result = Value.str sy }
    | "sign_off_x" ->
        { new_state = Some (Value.pair (Value.str (off sy)) (Value.str sy));
          result = Value.unit }
    | "sign_off_y" ->
        { new_state = Some (Value.pair (Value.str sx) (Value.str (off sx)));
          result = Value.unit }
    | m -> invalid_arg ("Occ roster: unknown method " ^ m)
  in
  let stale_apply ~committed ~snap meth _args =
    (* the write-skew bug: the written field is computed from the BEGIN
       snapshot, the untouched field keeps its committed value *)
    let _, sy_snap = fields snap in
    let sx_snap, _ = fields snap in
    let cx, cy = fields committed in
    match meth with
    | "sign_off_x" -> Value.pair (Value.str (off sy_snap)) (Value.str cy)
    | "sign_off_y" -> Value.pair (Value.str cx) (Value.str (off sx_snap))
    | m -> invalid_arg ("Occ roster: unknown update " ^ m)
  in
  {
    name = "roster-occ";
    init = Value.pair (Value.str x) (Value.str y);
    methods = [ "read_x"; "read_y"; "sign_off_x"; "sign_off_y" ];
    is_update = (fun m -> m = "sign_off_x" || m = "sign_off_y");
    apply;
    stale_apply;
    spec_of =
      (fun ~current:_ ->
        (* sign_off_x reads y and writes x: it conflicts with itself,
           with the other sign-off (mutual field crossing), and with the
           read of its own field; the two pure reads commute. *)
        Commutativity.of_conflict_matrix ~name:"roster-occ"
          [
            ("sign_off_x", "sign_off_x");
            ("sign_off_y", "sign_off_y");
            ("sign_off_x", "sign_off_y");
            ("sign_off_x", "read_x");
            ("sign_off_y", "read_y");
          ]);
  }
