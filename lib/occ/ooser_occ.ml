(* Umbrella module for the multiversion optimistic protocol library. *)

module Model = Model
module Store = Store
module Workloads = Workloads
