(** The multiversion optimistic store: per-object version chains
    snapshotted at BEGIN, buffered redo intentions, commit-time
    validation through commutativity-aware conflict probes and the
    Pearce–Kelly incremental certifier.  See DESIGN §20. *)

open Ooser_core
module Protocol = Ooser_cc.Protocol
module Stats = Ooser_sim.Stats
module Database = Ooser_oodb.Database

(** Validation mode: [Commute] probes the registered commutativity
    specs (escrow deposits never abort each other); [Rw] validates
    against the models' read/write projection — the plain-SSI baseline;
    [Unvalidated] is the naive snapshot-isolation mutant for the model
    checker: no validation, stale snapshot-computed writes applied. *)
type mode = Commute | Rw | Unvalidated

type t

val create : mode:mode -> unit -> t
val mode : t -> mode

val counters : t -> Stats.Counter.t
(** ["validations"], ["aborts"], ["commute-saves"] (plus the protocol's
    ["requests"]/["grants"]) — surfaced by the engine under the ["occ."]
    metrics prefix. *)

val commit_ts : t -> int
(** The newest committed version timestamp. *)

val register : t -> Database.t -> Obj_id.t -> Model.t -> unit
(** Register the object in both the store (version chain at ts 0) and
    the database: store-backed methods, and the model's commutativity
    spec ([Rw] mode registers the read/write projection instead, so the
    database's spec registry IS what rw validation and certification
    see). *)

val protocol : t -> Protocol.t
(** The optimistic protocol over this store: requests always granted,
    snapshot at every attempt start, validation at commit point,
    buffers dropped on top-level commit/abort. *)

val snapshot_ts : t -> int -> int option
(** The snapshot timestamp of the transaction's current attempt. *)

val committed_state : t -> Obj_id.t -> Value.t
(** Newest committed state of the object. *)

val versions : t -> Obj_id.t -> (int * Value.t) list
(** The object's version chain, newest first, as [(commit_ts, state)]. *)

val validate :
  t ->
  top:int ->
  tree:Call_tree.t ->
  prims:(Ids.Action_id.t * int) list ->
  (unit, string) result
(** The commit-time validator (exposed for tests; the engine calls it
    through {!protocol}).  [Ok] installs the transaction's versions and
    advances the commit timestamp. *)

val history : t -> History.t
(** The committed history in its multiversion serialization: reads
    ordered in their snapshot band, updates in their commit band.  This
    is the history occ admission certifies — [Serializability.check]
    accepts it for every occ-committed run — unlike the engine's raw
    interleaved execution order, which can place a snapshot read after
    a concurrent commit it did not observe. *)
