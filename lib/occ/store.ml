(* The multiversion optimistic store and its commit-time validator.

   Execution is lock-free: each top-level transaction attempt snapshots
   the store's commit timestamp at BEGIN ([Protocol.on_begin] — retries
   re-snapshot), method bodies read the newest version at or below the
   snapshot overlaid with the transaction's own buffered intentions,
   and updates buffer as redo intentions (method + args) instead of
   mutating shared state.  Nothing needs undoing on abort beyond
   dropping the buffer — the intention-removal closures registered with
   the engine's undo machinery exist for PARTIAL rollback (a nested
   subtransaction aborting alone must take its buffered intentions with
   it).

   Commit runs validation ([Protocol.validate], called by the engine at
   the top-level commit point with the attempt's call tree and stamped
   primitives):

   1. Concurrency check — every action of the committing transaction T
      is probed against every update of every transaction that
      committed inside T's snapshot window (snap, now].  A
      non-commuting pair (per the registered spec in commute mode, per
      the read/write projection in rw mode) aborts T: T's client
      already observed snapshot-derived results, and a non-commuting
      concurrent update means those results differ from the
      commit-point serialization.  If every pair commutes, T is
      equivalent to a serial execution after all concurrent committers
      — commit order is the serialization order (the Kung–Robinson
      argument, generalized from read/write intersection to Def. 9
      commutativity).

   2. Replay — T's intentions re-apply, in buffer order, to the newest
      committed state (scratch first; a raise — e.g. combined
      concurrent escrow deltas exhausting a bound that every PAIR
      respected — aborts T instead of committing a violation).

   3. Certification — the transaction replays through an occ-owned
      Pearce–Kelly incremental certifier (lib/core/incremental.ml)
      whenever every registered spec is stable (always, in rw mode):
      pure reads re-stamp into the snapshot band (just after the
      snapshot's creating commit), updates into the commit band, so the
      certifier sees the multiversion serialization rather than the
      raw interleaved execution order.  Acyclicity of the Def. 10–13
      dependency relation is required for admission.  With
      state-reading specs (escrow) incremental maintenance is unsound
      and stage 1 alone decides — the from-scratch
      Serializability.check oracle remains the acceptance check over
      {!history} in the tests and benchmarks.

   Stamp encoding: band * 2^20 + seq, with band = 2*commit_ts for
   updates and 2*snap_ts + 1 for reads (reads of a snapshot sit
   strictly between the commit that created it and the next), and seq a
   per-band counter so stamps stay unique — the certifier compares span
   ends with [<] only and draws no edge between equal stamps. *)

open Ooser_core
module Protocol = Ooser_cc.Protocol
module Stats = Ooser_sim.Stats
module Database = Ooser_oodb.Database
module Runtime = Ooser_oodb.Runtime

type mode = Commute | Rw | Unvalidated

type version = { v_ts : int; v_state : Value.t }
type entry = { e_model : Model.t; mutable e_versions : version list (* newest first *) }

type intention = {
  i_id : int;
  i_obj : Obj_id.t;
  i_meth : string;
  i_args : Value.t list;
}

type buf = {
  mutable b_snap : int;
  mutable b_next : int;
  mutable b_intents : intention list;  (* newest first *)
}

type committed_txn = {
  c_ts : int;
  c_updates : Action.t list;  (* the update primitives, original stamps *)
}

type t = {
  mode : mode;
  objs : (Obj_id.t, entry) Hashtbl.t;
  bufs : (int, buf) Hashtbl.t;
  mutable commit_ts : int;
  mutable committed : committed_txn list;  (* newest first *)
  mutable trail : (Call_tree.t * (Ids.Action_id.t * int) list) list;
      (* committed (tree, re-stamped prims), newest first — the
         multiversion history for {!history} *)
  counters : Stats.Counter.t;
  band_seq : (int, int ref) Hashtbl.t;
  mutable cert : [ `Uninit | `On of Incremental.t | `Off ];
  mutable db : Database.t option;
}

let band_width = 1 lsl 20

let create ~mode () =
  {
    mode;
    objs = Hashtbl.create 64;
    bufs = Hashtbl.create 16;
    commit_ts = 0;
    committed = [];
    trail = [];
    counters = Stats.Counter.create ();
    band_seq = Hashtbl.create 16;
    cert = `Uninit;
    db = None;
  }

let mode t = t.mode
let counters t = t.counters
let commit_ts t = t.commit_ts

let entry store obj =
  match Hashtbl.find_opt store.objs obj with
  | Some e -> e
  | None -> invalid_arg ("Occ.Store: unregistered object " ^ Obj_id.to_string obj)

let committed_state store obj = (List.hd (entry store obj).e_versions).v_state

let state_at e ts =
  let rec find = function
    | [] -> invalid_arg "Occ.Store: no version at or below snapshot"
    | v :: rest -> if v.v_ts <= ts then v.v_state else find rest
  in
  find e.e_versions

let versions store obj =
  List.map (fun v -> (v.v_ts, v.v_state)) (entry store obj).e_versions

let registry store =
  match store.db with
  | Some db -> Database.spec_registry db
  | None -> Commutativity.uniform Commutativity.all_conflict

(* -- transaction-side surface -------------------------------------------------- *)

let begin_txn store top =
  Hashtbl.replace store.bufs top
    { b_snap = store.commit_ts; b_next = 0; b_intents = [] }

let buf_of store top =
  match Hashtbl.find_opt store.bufs top with
  | Some b -> b
  | None ->
      let b = { b_snap = store.commit_ts; b_next = 0; b_intents = [] } in
      Hashtbl.replace store.bufs top b;
      b

let snapshot_ts store top =
  match Hashtbl.find_opt store.bufs top with
  | Some b -> Some b.b_snap
  | None -> None

(* Snapshot state overlaid with the transaction's own buffered
   intentions on this object, in buffer order. *)
let local_state store buf obj =
  let e = entry store obj in
  let base = state_at e buf.b_snap in
  List.fold_left
    (fun st it ->
      if Obj_id.equal it.i_obj obj then
        match (e.e_model.Model.apply st it.i_meth it.i_args).Model.new_state with
        | Some st' -> st'
        | None -> st
      else st)
    base
    (List.rev buf.b_intents)

let exec store obj meth ctx args =
  let buf = buf_of store ctx.Runtime.top in
  let e = entry store obj in
  let out = e.e_model.Model.apply (local_state store buf obj) meth args in
  (match out.Model.new_state with
  | Some _ ->
      let it = { i_id = buf.b_next; i_obj = obj; i_meth = meth; i_args = args } in
      buf.b_next <- buf.b_next + 1;
      buf.b_intents <- it :: buf.b_intents;
      (* partial rollback: a nested subtransaction aborting alone takes
         its buffered intentions with it *)
      Runtime.on_undo ctx (fun () ->
          buf.b_intents <-
            List.filter (fun j -> j.i_id <> it.i_id) buf.b_intents)
  | None -> ());
  out.Model.result

(* -- registration -------------------------------------------------------------- *)

let register store db obj (model : Model.t) =
  store.db <- Some db;
  Hashtbl.replace store.objs obj
    { e_model = model; e_versions = [ { v_ts = 0; v_state = model.Model.init } ] };
  let spec =
    match store.mode with
    | Rw -> Model.rw_spec model
    | Commute | Unvalidated ->
        model.Model.spec_of ~current:(fun () -> committed_state store obj)
  in
  Database.register_or_replace db obj ~spec
    (List.map
       (fun m -> (m, Database.primitive (fun ctx args -> exec store obj m ctx args)))
       model.Model.methods)

(* -- validation ---------------------------------------------------------------- *)

let band_stamp store band =
  let r =
    match Hashtbl.find_opt store.band_seq band with
    | Some r -> r
    | None ->
        let r = ref 0 in
        Hashtbl.replace store.band_seq band r;
        r
  in
  let s = !r in
  incr r;
  if s >= band_width then invalid_arg "Occ.Store: stamp band overflow";
  (band * band_width) + s

let ensure_cert store =
  match store.cert with
  | `On c -> Some c
  | `Off -> None
  | `Uninit ->
      let stable =
        match store.db with
        | None -> false
        | Some db ->
            List.for_all
              (fun o ->
                match Database.spec db o with
                | Some s -> Commutativity.stable s
                | None -> true)
              (Database.objects db)
      in
      if stable then begin
        let c = Incremental.create (registry store) in
        store.cert <- `On c;
        Some c
      end
      else begin
        store.cert <- `Off;
        None
      end

let is_store_update store a =
  match Hashtbl.find_opt store.objs (Action.obj a) with
  | Some e -> e.e_model.Model.is_update (Action.meth a)
  | None -> false

(* Re-stamp the committing attempt's primitives into the multiversion
   order: reads into the snapshot band, updates into the commit band.
   Actions outside the store (the root leaf of a call-less transaction)
   count as reads. *)
let restamp store buf ~commit ~tree ~prims =
  let acts = List.map (fun a -> (Action.id a, a)) (Call_tree.primitives tree) in
  List.sort (fun (_, s1) (_, s2) -> Int.compare s1 s2) prims
  |> List.map (fun (id, _) ->
         let upd =
           match List.assoc_opt id acts with
           | Some a -> is_store_update store a
           | None -> false
         in
         let band = if upd then 2 * commit else (2 * buf.b_snap) + 1 in
         (id, band_stamp store band))

let install store buf ~ts ~updates ~states ~tree ~restamped =
  Hashtbl.iter
    (fun obj st ->
      let e = entry store obj in
      e.e_versions <- { v_ts = ts; v_state = st } :: e.e_versions)
    states;
  store.commit_ts <- ts;
  store.committed <- { c_ts = ts; c_updates = updates } :: store.committed;
  store.trail <- (tree, restamped) :: store.trail;
  ignore buf

(* Replay the buffered intentions against the newest committed state,
   scratch-first: the per-object end states, or the raise that proves
   the combined concurrent deltas violate a bound no pairwise probe
   saw. *)
let replay store buf =
  let states : (Obj_id.t, Value.t) Hashtbl.t = Hashtbl.create 8 in
  try
    List.iter
      (fun it ->
        let e = entry store it.i_obj in
        let cur =
          match Hashtbl.find_opt states it.i_obj with
          | Some s -> s
          | None -> (List.hd e.e_versions).v_state
        in
        match (e.e_model.Model.apply cur it.i_meth it.i_args).Model.new_state with
        | Some st' -> Hashtbl.replace states it.i_obj st'
        | None -> ())
      (List.rev buf.b_intents);
    Ok states
  with
  | Runtime.Abort msg -> Error msg
  | exn -> Error (Printexc.to_string exn)

let apply_stale store buf ~tree ~restamped =
  let ts = store.commit_ts + 1 in
  List.iter
    (fun it ->
      let e = entry store it.i_obj in
      let committed = (List.hd e.e_versions).v_state in
      let snap = state_at e buf.b_snap in
      let st' = e.e_model.Model.stale_apply ~committed ~snap it.i_meth it.i_args in
      e.e_versions <- { v_ts = ts; v_state = st' } :: e.e_versions)
    (List.rev buf.b_intents);
  store.commit_ts <- ts;
  store.trail <- (tree, restamped) :: store.trail

let validate store ~top ~tree ~prims =
  Stats.Counter.incr store.counters "validations";
  let buf = buf_of store top in
  let commit_candidate = store.commit_ts + 1 in
  let restamped () = restamp store buf ~commit:commit_candidate ~tree ~prims in
  match store.mode with
  | Unvalidated ->
      (* the mutant: naive snapshot isolation, no validation at all *)
      apply_stale store buf ~tree ~restamped:(restamped ());
      Ok ()
  | Commute | Rw -> (
      let reg = registry store in
      let acts =
        List.filter
          (fun a ->
            (not (Action.is_virtual a)) && Hashtbl.mem store.objs (Action.obj a))
          (Call_tree.primitives tree)
      in
      (* 1. concurrency check against the snapshot window (snap, now] *)
      let concurrent =
        List.filter (fun c -> c.c_ts > buf.b_snap) store.committed
      in
      let conflict = ref None in
      let saves = ref 0 in
      List.iter
        (fun c ->
          List.iter
            (fun b ->
              List.iter
                (fun a ->
                  if Obj_id.equal (Action.obj a) (Action.obj b) then
                    if Commutativity.commutes reg a b then begin
                      (* rw validation refuses every same-object pair
                         with an update outright — this pair is an
                         admission only semantics buys *)
                      if store.mode = Commute && not (Action.equal a b) then
                        incr saves
                    end
                    else if !conflict = None then conflict := Some (a, b))
                acts)
            c.c_updates)
        concurrent;
      match !conflict with
      | Some (a, b) ->
          Stats.Counter.incr store.counters "aborts";
          Error
            (Fmt.str
               "validation failure: %s.%s does not commute with committed %s.%s"
               (Obj_id.to_string (Action.obj a))
               (Action.meth a)
               (Obj_id.to_string (Action.obj b))
               (Action.meth b))
      | None -> (
          Stats.Counter.incr ~by:!saves store.counters "commute-saves";
          (* 2. commit-point replay, scratch first *)
          match replay store buf with
          | Error msg ->
              Stats.Counter.incr store.counters "aborts";
              Error ("validation failure: replay: " ^ msg)
          | Ok states -> (
              (* 3. certifier stage (stable specs only) *)
              let restamped = restamped () in
              let updates = List.filter (is_store_update store) acts in
              let admit () =
                install store buf ~ts:commit_candidate ~updates ~states ~tree
                  ~restamped
              in
              match ensure_cert store with
              | None ->
                  admit ();
                  Ok ()
              | Some cert ->
                  let o = Incremental.add_commit cert ~tree ~prims:restamped in
                  if o.Incremental.accepted then begin
                    admit ();
                    Ok ()
                  end
                  else begin
                    Stats.Counter.incr store.counters "aborts";
                    Error
                      (match o.Incremental.rejection with
                      | Some r ->
                          Fmt.str "validation failure: %a"
                            Incremental.pp_rejection r
                      | None -> "validation failure: dependency cycle")
                  end)))

(* -- the protocol -------------------------------------------------------------- *)

let protocol_name store =
  match store.mode with
  | Commute -> "occ"
  | Rw -> "occ-rw"
  | Unvalidated -> "occ-unvalidated"

let protocol store =
  Protocol.optimistic ~name:(protocol_name store) ~counters:store.counters
    ~on_begin:(fun top -> begin_txn store top)
    ~validate:(fun ~top ~tree ~prims -> validate store ~top ~tree ~prims)
    ~on_top_commit:(fun top -> Hashtbl.remove store.bufs top)
    ~on_top_abort:(fun top -> Hashtbl.remove store.bufs top)
    ()

(* -- the multiversion history -------------------------------------------------- *)

(* The committed history in its multiversion serialization: trees in
   commit order, primitives ordered by their re-stamped positions
   (reads in their snapshot band, updates in their commit band).  This
   — not the raw interleaved execution order the engine records — is
   the history occ admission certifies, and the one
   [Serializability.check] must accept for every occ-committed run. *)
let history store =
  let trail = List.rev store.trail in
  let tops = List.map fst trail in
  let order =
    List.concat_map snd trail
    |> List.sort (fun (_, s1) (_, s2) -> Int.compare s1 s2)
    |> List.map fst
  in
  History.v ~tops ~order ~commut:(registry store)
