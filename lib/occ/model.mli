(** Functional ADT models for the multiversion store: state reified as
    {!Ooser_core.Value.t}, methods as pure state transitions, so reads
    can run against snapshot versions and updates can replay at commit
    point.

    Soundness constraint: an update method's result must be a pure
    function of its arguments — state-dependence of its applicability
    (escrow bounds) must show up both as a raise in [apply] and in the
    commutativity spec. *)

open Ooser_core

type outcome = {
  new_state : Value.t option;  (** [None] = pure read *)
  result : Value.t;
}

type t = {
  name : string;
  init : Value.t;
  methods : string list;
  is_update : string -> bool;
  apply : Value.t -> string -> Value.t list -> outcome;
      (** May raise {!Ooser_oodb.Runtime.Abort}; deterministic in
          (state, method, args). *)
  stale_apply :
    committed:Value.t -> snap:Value.t -> string -> Value.t list -> Value.t;
      (** What naive (unvalidated) snapshot isolation would install: the
          update's new state computed from the BEGIN snapshot, merged
          into the committed state.  Only the model-checker mutant mode
          calls this. *)
  spec_of : current:(unit -> Value.t) -> Commutativity.spec;
      (** [current] yields the newest committed state for state-reading
          (escrow-style) predicates. *)
}

val rw_spec : t -> Commutativity.spec
(** The read/write projection of the model — what plain SSI validates
    with.  Stable by construction. *)

val escrow : ?low:int -> ?high:int -> int -> t
(** Escrow account: [deposit]/[withdraw]/[balance] over an [Int]
    balance, bounds-checked on apply, with the state-reading escrow
    commutativity spec of {!Ooser_adts.Escrow_counter}. *)

val register : ?init:Value.t -> unit -> t
(** Read/write cell: [read]/[write], classic stable rw spec. *)

val roster : ?x:string -> ?y:string -> unit -> t
(** Doctors-on-duty write-skew object: [sign_off_x]/[sign_off_y] each
    read the other doctor's field and overwrite their own with the
    observed value; [read_x]/[read_y] are pure reads. *)
