(* A deliberately simple blocking client: one request, one response.
   [recv] spins on a non-blocking socket and calls [on_wait] between
   attempts — a sleep for a remote server, or [Server.step] when the
   server lives in the same process (how the tests drive a full
   client/server exchange single-threaded). *)

type t = {
  fd : Unix.file_descr;
  framer : Wire.Framer.t;
  on_wait : unit -> unit;
  recv_timeout : float;  (* seconds before [recv] gives up *)
}

let connect ?(on_wait = fun () -> Unix.sleepf 0.001) ?(recv_timeout = 30.0)
    sockaddr =
  (* a server closing mid-write must surface as EPIPE, not kill us *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let domain = Unix.domain_of_sockaddr sockaddr in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (try Unix.connect fd sockaddr
   with e ->
     Unix.close fd;
     raise e);
  Unix.set_nonblock fd;
  (match sockaddr with
  | Unix.ADDR_INET _ -> Unix.setsockopt fd Unix.TCP_NODELAY true
  | _ -> ());
  { fd; framer = Wire.Framer.create (); on_wait; recv_timeout }

let send t req =
  let bytes = Wire.frame (Wire.encode_request req) in
  let len = String.length bytes in
  let off = ref 0 in
  while !off < len do
    match Unix.write_substring t.fd bytes !off (len - !off) with
    | n -> off := !off + n
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        t.on_wait ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let recv t =
  let deadline = Unix.gettimeofday () +. t.recv_timeout in
  let buf = Bytes.create 65536 in
  let rec loop () =
    match Wire.Framer.pop t.framer with
    | Ok (Some payload) -> Wire.decode_response payload
    | Error msg -> failwith ("Client: " ^ msg)
    | Ok None -> (
        if Unix.gettimeofday () > deadline then
          failwith "Client: receive timeout";
        match Unix.read t.fd buf 0 (Bytes.length buf) with
        | 0 -> failwith "Client: connection closed"
        | n ->
            Wire.Framer.feed t.framer (Bytes.sub_string buf 0 n);
            loop ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
            t.on_wait ();
            loop ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ())
  in
  loop ()

let request t req =
  send t req;
  recv t

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
