(* The wire protocol of the transaction server.

   Frames are length-prefixed: a little-endian u32 payload length
   followed by the payload; payloads above [max_frame] are rejected
   before allocation, so a corrupt or hostile peer cannot make the
   server buffer unbounded input.  Payloads are built from the binary
   primitives of [Ooser_storage.Codec] — the same writer/reader pair the
   page store uses — with a tag byte selecting the message constructor.

   The protocol is a strict request/response alternation per session:
   every request gets exactly one response, and the server never pushes
   unsolicited frames.  When a transaction dies while its client owes no
   response (a deadline firing between commands), the abort is parked
   and delivered as the answer to the client's next request — pushing it
   eagerly could cross a request already in flight and desynchronise the
   pairing.  Clients must treat [Aborted] answering any in-transaction
   request as the end of that transaction. *)

open Ooser_core
module Codec = Ooser_storage.Codec

let max_frame = 16 * 1024 * 1024

(* -- Value.t ----------------------------------------------------------------- *)

let rec write_value w (v : Value.t) =
  match v with
  | Value.Unit -> Codec.Writer.u8 w 0
  | Value.Bool b ->
      Codec.Writer.u8 w 1;
      Codec.Writer.u8 w (if b then 1 else 0)
  | Value.Int i ->
      Codec.Writer.u8 w 2;
      Codec.Writer.i64 w i
  | Value.Str s ->
      Codec.Writer.u8 w 3;
      Codec.Writer.lstring w s
  | Value.Pair (a, b) ->
      Codec.Writer.u8 w 4;
      write_value w a;
      write_value w b
  | Value.List vs ->
      Codec.Writer.u8 w 5;
      Codec.Writer.u32 w (List.length vs);
      List.iter (write_value w) vs

let rec read_value r : Value.t =
  match Codec.Reader.u8 r with
  | 0 -> Value.Unit
  | 1 -> Value.Bool (Codec.Reader.u8 r <> 0)
  | 2 -> Value.Int (Codec.Reader.i64 r)
  | 3 -> Value.Str (Codec.Reader.lstring r)
  | 4 ->
      let a = read_value r in
      let b = read_value r in
      Value.Pair (a, b)
  | 5 ->
      let n = Codec.Reader.u32 r in
      Value.List (List.init n (fun _ -> read_value r))
  | t -> failwith (Printf.sprintf "Wire: unknown value tag %d" t)

let write_values w vs =
  Codec.Writer.u32 w (List.length vs);
  List.iter (write_value w) vs

let read_values r =
  let n = Codec.Reader.u32 r in
  List.init n (fun _ -> read_value r)

(* -- messages ----------------------------------------------------------------- *)

type request =
  | Hello of string  (* client identification *)
  | Begin of { name : string; timeout_ms : int }  (* 0 = server default *)
  | Call of { obj : string; meth : string; args : Value.t list }
  | Commit
  | Abort of string
  | Stats
  | Shutdown  (* begin graceful shutdown: drain in-flight, then exit *)
  | Bye

type response =
  | Welcome of { server : string; db : string; protocol : string }
  | Begun of { top : int }
  | Result of Value.t  (* the call committed at its level *)
  | Failed of string  (* the call failed softly; the transaction lives *)
  | Committed of Value.t
  | Aborted of string
  | Stats_json of string
  | Error of { code : string; msg : string }
  | Closing

let encode_request (q : request) =
  let w = Codec.Writer.create () in
  (match q with
  | Hello client ->
      Codec.Writer.u8 w 0;
      Codec.Writer.string w client
  | Begin { name; timeout_ms } ->
      Codec.Writer.u8 w 1;
      Codec.Writer.string w name;
      Codec.Writer.i64 w timeout_ms
  | Call { obj; meth; args } ->
      Codec.Writer.u8 w 2;
      Codec.Writer.string w obj;
      Codec.Writer.string w meth;
      write_values w args
  | Commit -> Codec.Writer.u8 w 3
  | Abort reason ->
      Codec.Writer.u8 w 4;
      Codec.Writer.string w reason
  | Stats -> Codec.Writer.u8 w 5
  | Shutdown -> Codec.Writer.u8 w 6
  | Bye -> Codec.Writer.u8 w 7);
  Codec.Writer.contents w

let decode_request s : request =
  let r = Codec.Reader.create s in
  let q =
    match Codec.Reader.u8 r with
    | 0 -> Hello (Codec.Reader.string r)
    | 1 ->
        let name = Codec.Reader.string r in
        let timeout_ms = Codec.Reader.i64 r in
        Begin { name; timeout_ms }
    | 2 ->
        let obj = Codec.Reader.string r in
        let meth = Codec.Reader.string r in
        let args = read_values r in
        Call { obj; meth; args }
    | 3 -> Commit
    | 4 -> Abort (Codec.Reader.string r)
    | 5 -> Stats
    | 6 -> Shutdown
    | 7 -> Bye
    | t -> failwith (Printf.sprintf "Wire: unknown request tag %d" t)
  in
  if not (Codec.Reader.at_end r) then failwith "Wire: trailing request bytes";
  q

let encode_response (p : response) =
  let w = Codec.Writer.create () in
  (match p with
  | Welcome { server; db; protocol } ->
      Codec.Writer.u8 w 0;
      Codec.Writer.string w server;
      Codec.Writer.string w db;
      Codec.Writer.string w protocol
  | Begun { top } ->
      Codec.Writer.u8 w 1;
      Codec.Writer.i64 w top
  | Result v ->
      Codec.Writer.u8 w 2;
      write_value w v
  | Failed msg ->
      Codec.Writer.u8 w 3;
      Codec.Writer.lstring w msg
  | Committed v ->
      Codec.Writer.u8 w 4;
      write_value w v
  | Aborted reason ->
      Codec.Writer.u8 w 5;
      Codec.Writer.lstring w reason
  | Stats_json s ->
      Codec.Writer.u8 w 6;
      Codec.Writer.lstring w s
  | Error { code; msg } ->
      Codec.Writer.u8 w 7;
      Codec.Writer.string w code;
      Codec.Writer.lstring w msg
  | Closing -> Codec.Writer.u8 w 8);
  Codec.Writer.contents w

let decode_response s : response =
  let r = Codec.Reader.create s in
  let p =
    match Codec.Reader.u8 r with
    | 0 ->
        let server = Codec.Reader.string r in
        let db = Codec.Reader.string r in
        let protocol = Codec.Reader.string r in
        Welcome { server; db; protocol }
    | 1 -> Begun { top = Codec.Reader.i64 r }
    | 2 -> Result (read_value r)
    | 3 -> Failed (Codec.Reader.lstring r)
    | 4 -> Committed (read_value r)
    | 5 -> Aborted (Codec.Reader.lstring r)
    | 6 -> Stats_json (Codec.Reader.lstring r)
    | 7 ->
        let code = Codec.Reader.string r in
        let msg = Codec.Reader.lstring r in
        Error { code; msg }
    | 8 -> Closing
    | t -> failwith (Printf.sprintf "Wire: unknown response tag %d" t)
  in
  if not (Codec.Reader.at_end r) then failwith "Wire: trailing response bytes";
  p

(* -- framing ----------------------------------------------------------------- *)

let frame payload =
  let n = String.length payload in
  if n > max_frame then invalid_arg "Wire.frame: payload too large";
  let w = Codec.Writer.create () in
  Codec.Writer.u32 w n;
  Codec.Writer.contents w ^ payload

(* Incremental frame extraction from a byte stream: [feed] appends
   whatever the socket produced, [pop] yields the next complete payload.
   The buffer is compacted on pop, so a slow trickle of large frames does
   not retain the whole stream. *)
module Framer = struct
  type t = { mutable buf : string; mutable err : string option }

  let create () = { buf = ""; err = None }

  let feed t s = if s <> "" then t.buf <- t.buf ^ s

  (* [Stdlib.Error]: the bare constructor would resolve to the wire
     [Error] response above *)
  let pop t : (string option, string) Stdlib.result =
    match t.err with
    | Some e -> Stdlib.Error e
    | None ->
        if String.length t.buf < 4 then Ok None
        else
          let r = Codec.Reader.create t.buf in
          let n = Codec.Reader.u32 r in
          if n > max_frame then begin
            t.err <- Some (Printf.sprintf "frame of %d bytes exceeds limit" n);
            Stdlib.Error (Option.get t.err)
          end
          else if String.length t.buf < 4 + n then Ok None
          else begin
            let payload = String.sub t.buf 4 n in
            t.buf <-
              String.sub t.buf (4 + n) (String.length t.buf - 4 - n);
            Ok (Some payload)
          end
end

let pp_request ppf (q : request) =
  match q with
  | Hello c -> Fmt.pf ppf "HELLO %s" c
  | Begin { name; timeout_ms } -> Fmt.pf ppf "BEGIN %s timeout=%dms" name timeout_ms
  | Call { obj; meth; args } ->
      Fmt.pf ppf "CALL %s.%s(%a)" obj meth
        (Fmt.list ~sep:(Fmt.any ", ") Value.pp)
        args
  | Commit -> Fmt.string ppf "COMMIT"
  | Abort r -> Fmt.pf ppf "ABORT %s" r
  | Stats -> Fmt.string ppf "STATS"
  | Shutdown -> Fmt.string ppf "SHUTDOWN"
  | Bye -> Fmt.string ppf "BYE"

let pp_response ppf (p : response) =
  match p with
  | Welcome { server; db; protocol } ->
      Fmt.pf ppf "WELCOME %s db=%s protocol=%s" server db protocol
  | Begun { top } -> Fmt.pf ppf "BEGUN T%d" top
  | Result v -> Fmt.pf ppf "RESULT %a" Value.pp v
  | Failed m -> Fmt.pf ppf "FAILED %s" m
  | Committed v -> Fmt.pf ppf "COMMITTED %a" Value.pp v
  | Aborted r -> Fmt.pf ppf "ABORTED %s" r
  | Stats_json s -> Fmt.pf ppf "STATS %s" s
  | Error { code; msg } -> Fmt.pf ppf "ERROR %s: %s" code msg
  | Closing -> Fmt.string ppf "CLOSING"
