(* A session's transaction, bridged onto the effects engine.

   The wire protocol is interactive — the client decides the next method
   call after seeing earlier results — but the engine retries
   transactions internally (wound-wait restarts, certification
   failures).  The bridge is a command log: every CALL the client sends
   is appended to the log, and the transaction body is a replay loop
   over it.  A fresh attempt re-executes the logged prefix from the
   start and parks on [Runtime.await] when it runs past the end; the
   server pokes the task whenever a new command lands.  Engine-internal
   retries are thereby invisible to the client, except that results
   delivered before COMMITTED are provisional (the replay may observe a
   different database state).

   One response is owed per request; call results are released strictly
   in call order.  [results] keeps the latest attempt's result per call
   number — a replay overwrites earlier attempts' entries, and the
   server only flushes result [n] once every result below [n] has been
   flushed. *)

open Ooser_core
open Ooser_oodb

type cmd =
  | C_call of Obj_id.t * string * Value.t list
  | C_commit

type txn = {
  top : int;
  began : float;  (* admission time; BEGIN-to-decision latency base *)
  mutable cmds : cmd array;
  mutable n_cmds : int;
  mutable calls_sent : int;  (* C_call commands appended so far *)
  mutable calls_flushed : int;  (* results already sent to the client *)
  results : (int, (Value.t, string) result) Hashtbl.t;
  call_at : (int, float) Hashtbl.t;  (* call number -> arrival time *)
  mutable commit_requested : bool;
  mutable abort_requested : bool;  (* an ABORT frame awaits its reply *)
}

type phase =
  | Fresh  (* nothing received; HELLO must come first *)
  | Idle  (* greeted, between transactions *)
  | Begun_wait of { name : string; timeout_ms : int }
      (* BEGIN received, queued behind the admission limit *)
  | In_txn of txn
  | Dead_txn of string
      (* the transaction aborted while the client owed us nothing (a
         deadline firing between commands); the reason is delivered as
         the answer to the client's next request, keeping the protocol
         strictly one-response-per-request *)

type t = {
  sid : int;
  mutable client : string;  (* from HELLO *)
  mutable phase : phase;
}

let create ~sid = { sid; client = ""; phase = Fresh }

let new_txn ~top ~began =
  {
    top;
    began;
    cmds = Array.make 8 C_commit;
    n_cmds = 0;
    calls_sent = 0;
    calls_flushed = 0;
    results = Hashtbl.create 16;
    call_at = Hashtbl.create 16;
    commit_requested = false;
    abort_requested = false;
  }

let push tr cmd =
  if tr.n_cmds = Array.length tr.cmds then begin
    let bigger = Array.make (2 * Array.length tr.cmds) C_commit in
    Array.blit tr.cmds 0 bigger 0 tr.n_cmds;
    tr.cmds <- bigger
  end;
  tr.cmds.(tr.n_cmds) <- cmd;
  tr.n_cmds <- tr.n_cmds + 1

let push_call tr ~now obj meth args =
  Hashtbl.replace tr.call_at tr.calls_sent now;
  tr.calls_sent <- tr.calls_sent + 1;
  push tr (C_call (obj, meth, args))

let push_commit tr =
  tr.commit_requested <- true;
  push tr C_commit

(* The transaction body: replay the command log, awaiting past its end.
   Each attempt starts from command 0 with a fresh cursor — the closure
   is re-entered by the engine on retry, so all attempt-local state
   lives inside. *)
let body (tr : txn) (ctx : Runtime.ctx) : Value.t =
  let cursor = ref 0 in
  let rec next () =
    if !cursor < tr.n_cmds then begin
      let c = tr.cmds.(!cursor) in
      incr cursor;
      c
    end
    else begin
      Runtime.await ctx;
      next ()
    end
  in
  let rec loop callno last =
    match next () with
    | C_call (obj, meth, args) ->
        let r = Runtime.try_call ctx obj meth args in
        Hashtbl.replace tr.results callno r;
        loop (callno + 1) (match r with Ok v -> v | Error _ -> last)
    | C_commit -> last
  in
  loop 0 Value.unit
