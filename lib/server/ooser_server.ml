(** The network transaction server: wire protocol, sessions, the select
    event loop, a blocking client and a closed-loop load generator. *)

module Wire = Wire
module Session = Session
module Metrics = Metrics
module Server = Server
module Client = Client
module Loadgen = Loadgen
