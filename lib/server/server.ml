(* The network transaction server: a single-threaded [Unix.select] event
   loop multiplexing many client sessions onto one effects engine.

   Each connection owns a {!Session.t}; its transaction body is the
   command-log replay of {!Session.body}, submitted to the engine on
   admission and poked whenever a frame arrives.  After every batch of
   socket events the loop {!Engine.pump}s the engine to quiescence and
   then flushes responses: call results strictly in call order, then the
   transaction's commit/abort decision once [Engine.txn_state] resolves.

   Admission control: at most [max_inflight] transactions run at once;
   further BEGINs queue FIFO and their [Begun] reply is delayed — the
   delayed response IS the backpressure, since a session cannot proceed
   without its transaction id.

   Graceful shutdown (SHUTDOWN frame or {!initiate_shutdown}): new
   BEGINs are refused, queued admissions are cancelled, in-flight
   transactions get a drain-grace deadline, and the loop exits once the
   last one decides. *)

open Ooser_core
open Ooser_oodb
module Protocol = Ooser_cc.Protocol
module Stats = Ooser_sim.Stats
module Oplog = Ooser_recovery.Oplog
module Snapshot = Ooser_recovery.Snapshot
module Recovery = Ooser_recovery.Recovery
module Dispatcher = Ooser_shard.Dispatcher
module Trace = Ooser_certify.Trace
module Occ = Ooser_occ

type addr = Unix_sock of string | Tcp of int  (* loopback only *)

let sockaddr_of = function
  | Unix_sock path -> Unix.ADDR_UNIX path
  | Tcp port -> Unix.ADDR_INET (Unix.inet_addr_loopback, port)

let pp_addr ppf = function
  | Unix_sock path -> Fmt.pf ppf "unix:%s" path
  | Tcp port -> Fmt.pf ppf "tcp:127.0.0.1:%d" port

type db_kind = [ `Encyclopedia | `Banking | `Inventory ]

type protocol_kind =
  [ `Open | `Flat | `Closed | `Certify | `Occ | `Occ_rw ]

let db_kind_name = function
  | `Encyclopedia -> "encyclopedia"
  | `Banking -> "banking"
  | `Inventory -> "inventory"

let protocol_kind_name = function
  | `Open -> "open"
  | `Flat -> "flat"
  | `Closed -> "closed"
  | `Certify -> "certify"
  | `Occ -> "occ"
  | `Occ_rw -> "occ-rw"

let is_occ = function `Occ | `Occ_rw -> true | _ -> false

(* Sharded backends speak the lock-protocol subset only; occ configs are
   rejected before a dispatcher is ever built. *)
let shard_protocol_kind = function
  | (`Open | `Flat | `Closed | `Certify) as pk -> pk
  | `Occ | `Occ_rw -> invalid_arg "occ protocols are single-engine only"

type config = {
  addr : addr;
  db_kind : db_kind;
  protocol_kind : protocol_kind;
  shards : int;
      (* 0 = classic single-engine path; N >= 1 partitions objects
         across N shard engines, each on its own domain, behind the
         {!Ooser_shard.Dispatcher} *)
  max_inflight : int;  (* admission limit; BEGINs queue beyond it *)
  default_timeout_ms : int;  (* for BEGIN with timeout_ms = 0; 0 = none *)
  drain_grace : float;  (* seconds granted to in-flight txns on shutdown *)
  preload : int;  (* encyclopedia seed keys *)
  fanout : int;
  accounts : int;  (* banking *)
  products : int;  (* inventory *)
  name : string;  (* announced in WELCOME *)
  durable_dir : string option;
      (* journal commits to DIR/oplog.bin; boot recovers DIR and
         checkpoints it into DIR/snapshot.bin *)
  trace_path : string option;
      (* record the committed history to FILE as an offline-certifiable
         trace ({!Ooser_certify.Trace}): single-shard servers stream
         each commit; sharded servers export the merged history at
         drain *)
}

let default_config addr =
  {
    addr;
    db_kind = `Encyclopedia;
    protocol_kind = `Open;
    shards = 0;
    max_inflight = 32;
    default_timeout_ms = 0;
    drain_grace = 5.0;
    preload = 200;
    fanout = 4;
    accounts = 10;
    products = 4;
    name = "oosdb";
    durable_dir = None;
    trace_path = None;
  }

type conn = {
  fd : Unix.file_descr;
  framer : Wire.Framer.t;
  session : Session.t;
  mutable out : string;  (* bytes queued for the socket *)
  mutable closing : bool;  (* close once [out] drains *)
  mutable dead : bool;
}

type t = {
  config : config;
  db : Database.t;
  engine : Engine.t;
  protocol : Protocol.t;
  dispatcher : Dispatcher.t option;
      (* sharded backend; when [Some], [db]/[engine]/[protocol] are an
         inert placeholder stack and every transaction path goes through
         the dispatcher instead *)
  occ_store : Occ.Store.t option;
      (* the multiversion store behind [protocol] when [protocol_kind]
         is an occ mode; its restamped history — not the engine's
         execution order — is what [certified] checks *)
  metrics : Metrics.t;
  listen_fd : Unix.file_descr;
  mutable conns : conn list;
  mutable next_sid : int;
  mutable next_top : int;
  admit_queue : conn Queue.t;
  mutable inflight : int;
  mutable draining : bool;
  mutable stopped : bool;
  mutable final_verdict : bool option;
      (* certification computed at drain, while the shard domains are
         still joinable — [certified] after [stopped] returns this *)
  mutable final_shard_stats : Dispatcher.shard_stats list option;
      (* last per-shard counter round, captured for the same reason *)
  journal : Oplog.t option;
  mutable base_snap : Snapshot.t;  (* covers everything not in the journal *)
  recovery : Engine.recovery_report option;  (* boot-time recovery, if any *)
  mutable trace_writer : Trace.writer option;
      (* single-shard streaming trace recorder (config.trace_path);
         sharded servers export at drain instead *)
}

(* -- database setup ----------------------------------------------------------- *)

let build_db config =
  let db = Database.create () in
  (match config.db_kind with
  | `Encyclopedia ->
      let enc = Encyclopedia.create ~fanout:config.fanout db in
      Ooser_workload.Enc_workload.preload db enc ~keys:config.preload
  | `Banking ->
      for i = 0 to config.accounts - 1 do
        ignore
          (Ooser_workload.Banking.register_account db ~semantics:`Escrow i
             ~balance:100 ~low:0 ~high:1_000_000)
      done
  | `Inventory ->
      ignore
        (Ooser_workload.Inventory.create ~products:config.products db));
  db

(* The occ backend: the store registers the database's objects itself
   (store-backed methods, model-derived specs), so the whole (db,
   protocol) pair comes from here rather than build_db/build_protocol.
   Only the banking kind has occ models so far — it is the escrow
   workload the commute-vs-rw abort gap shows up on. *)
let build_occ config =
  (match config.db_kind with
  | `Banking -> ()
  | k ->
      invalid_arg
        (Printf.sprintf "-p occ supports the banking database only (got %s)"
           (db_kind_name k)));
  if config.shards > 0 then invalid_arg "-p occ does not support --shards";
  if config.durable_dir <> None then
    invalid_arg "-p occ is in-memory only (no --durable)";
  if config.trace_path <> None then
    invalid_arg
      "-p occ does not record execution-order traces (its certifiable \
       history is the store's multiversion order; see STATS certified)";
  let mode =
    match config.protocol_kind with
    | `Occ_rw -> Occ.Store.Rw
    | _ -> Occ.Store.Commute
  in
  Occ.Workloads.setup_banking ~mode ~accounts:config.accounts ~balance:100
    ~low:0 ~high:1_000_000 ()

let build_protocol config db =
  let reg = Database.spec_registry db in
  match config.protocol_kind with
  | `Open -> Protocol.open_nested ~reg ()
  | `Flat -> Protocol.flat_2pl ~reg ()
  | `Closed -> Protocol.closed_nested ~reg ()
  | `Certify -> Protocol.unlocked ()
  | `Occ | `Occ_rw ->
      invalid_arg
        "Server.build_protocol: occ protocols are built with their store \
         by Server.create"

(* a peer closing mid-write must surface as EPIPE, not kill the process *)
let ignore_sigpipe () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ -> ()

(* Durable boot: replay DIR's snapshot + stable log through a fresh
   engine, fold the result into a new snapshot (checkpoint), start a
   fresh journal, and attach it.  Recovery itself writes nothing — a
   crash before the snapshot rename leaves the old pair intact, and a
   crash between the rename and the log reset is benign because replay
   dedups against the snapshot's (top, attempt) keys. *)
let durable_boot ~dir ~engine_config db protocol =
  let snapshot = Snapshot.load ~dir in
  let records = Oplog.load ~dir in
  let eng, report =
    Engine.recover ~config:engine_config ?snapshot db ~protocol
      (Oplog.of_records records)
  in
  let base = Option.value snapshot ~default:Snapshot.empty in
  let snap = Recovery.snapshot_of ~base report.Engine.plan in
  Snapshot.save ~dir snap;
  (try Sys.remove (Oplog.log_file ~dir) with Sys_error _ -> ());
  let journal = Oplog.open_dir ~dir in
  Engine.set_journal eng (Some journal);
  (eng, journal, snap, report)

let create config =
  ignore_sigpipe ();
  let sharded = config.shards > 0 in
  let occ = is_occ config.protocol_kind in
  let db, occ_store =
    if occ then
      let db, store = build_occ config in
      (db, Some store)
    else if sharded then
      (Database.create () (* placeholder; shards own the data *), None)
    else (build_db config, None)
  in
  let protocol =
    match occ_store with
    | Some store -> Occ.Store.protocol store
    | None -> build_protocol config db
  in
  let engine_config =
    {
      (Engine.default_config protocol) with
      Engine.deadlock = Engine.Wound_wait;
      certify = config.protocol_kind = `Certify;
      now = Unix.gettimeofday;
    }
  in
  let engine, journal, base_snap, recovery =
    match (sharded, config.durable_dir) with
    | true, _ | false, None ->
        ( Engine.create ~config:engine_config db ~protocol [],
          None, Snapshot.empty, None )
    | false, Some dir ->
        let eng, journal, snap, report =
          durable_boot ~dir ~engine_config db protocol
        in
        (eng, Some journal, snap, Some report)
  in
  let dispatcher =
    if not sharded then None
    else
      Some
        (Dispatcher.create
           {
             Dispatcher.shards = config.shards;
             db_kind = config.db_kind;
             protocol_kind = shard_protocol_kind config.protocol_kind;
             preload = config.preload;
             fanout = config.fanout;
             accounts = config.accounts;
             products = config.products;
             durable_dir = config.durable_dir;
           })
  in
  let listen_fd =
    match config.addr with
    | Unix_sock path ->
        (try Unix.unlink path with Unix.Unix_error _ -> ());
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind fd (Unix.ADDR_UNIX path);
        fd
    | Tcp port ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        fd
  in
  Unix.listen listen_fd 64;
  Unix.set_nonblock listen_fd;
  let trace_writer =
    match (config.trace_path, sharded) with
    | Some path, false ->
        let w =
          Trace.create_writer ~registry:(db_kind_name config.db_kind) path
        in
        Engine.set_trace_sink engine
          (Some
             (fun ~top ~tree ~prims -> Trace.append w { Trace.top; tree; prims }));
        Some w
    | _ -> None
  in
  let metrics = Metrics.create ~now:(Unix.gettimeofday ()) () in
  (match recovery with
  | Some r ->
      Metrics.incr metrics "recoveries";
      if not r.Engine.recertified then
        Fmt.epr
          "oosdb: WARNING: recovered history failed re-certification@."
  | None -> ());
  (match dispatcher with
  | Some d when Dispatcher.next_top_floor d > 1 ->
      Metrics.incr metrics "recoveries"
  | _ -> ());
  {
    config;
    db;
    engine;
    protocol;
    dispatcher;
    occ_store;
    metrics;
    listen_fd;
    conns = [];
    next_sid = 0;
    next_top =
      (match dispatcher with
      | Some d -> max 1 (Dispatcher.next_top_floor d)
      | None -> max 1 base_snap.Snapshot.next_top);
    admit_queue = Queue.create ();
    inflight = 0;
    draining = false;
    stopped = false;
    final_verdict = None;
    final_shard_stats = None;
    journal;
    base_snap;
    recovery;
    trace_writer;
  }

let port t =
  match Unix.getsockname t.listen_fd with
  | Unix.ADDR_INET (_, p) -> p
  | _ -> invalid_arg "Server.port: not a TCP listener"

(* -- responses ---------------------------------------------------------------- *)

let send conn resp =
  if not conn.dead then
    conn.out <- conn.out ^ Wire.frame (Wire.encode_response resp)

(* The phase is left alone: a dead connection's In_txn session still
   owns an admission slot, released by [flush_session] once the abort
   started here resolves. *)
let abort_txn t ~top reason =
  match t.dispatcher with
  | Some d -> Dispatcher.abort d ~top ~reason
  | None -> ignore (Engine.abort_top t.engine ~top reason)

let kill t conn =
  if not conn.dead then begin
    conn.dead <- true;
    match conn.session.Session.phase with
    | Session.In_txn tr -> abort_txn t ~top:tr.Session.top "client gone"
    | _ -> ()
  end

(* -- observability ------------------------------------------------------------ *)

let certified t =
  match t.final_verdict with
  | Some v -> v
  | None -> (
      match (t.occ_store, t.dispatcher) with
      | Some store, _ ->
          (* the store's multiversion order, not the engine's raw
             execution order: a snapshot read executes after concurrent
             commits it legitimately did not observe *)
          Serializability.oo_serializable (Occ.Store.history store)
      | None, Some d -> Dispatcher.certified d ()
      | None, None ->
          Serializability.oo_serializable (Engine.final_history t.engine))

(* Sum per-shard counters key-wise into one merged engine view; the
   per-shard breakdown rides along so imbalance stays visible. *)
let merge_counters per_shard =
  let tbl = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (List.iter (fun (k, v) ->
         match Hashtbl.find_opt tbl k with
         | Some r -> r := !r + v
         | None ->
             Hashtbl.add tbl k (ref v);
             order := k :: !order))
    per_shard;
  List.rev_map (fun k -> (k, !(Hashtbl.find tbl k))) !order

(* [certified] lets a caller that already ran the (expensive,
   from-scratch) history check pass its verdict in instead of paying for
   a second sweep. *)
let stats_json ?certified:(verdict = None) t =
  let admission =
    [ ("inflight", t.inflight); ("queued", Queue.length t.admit_queue) ]
  in
  let engine_counters, shards =
    match t.dispatcher with
    | None ->
        let prefix = if t.occ_store <> None then "occ." else "lock." in
        ( Stats.Counter.to_list (Engine.counters t.engine)
          @ List.map
              (fun (k, v) -> (prefix ^ k, v))
              (Stats.Counter.to_list (Protocol.counters t.protocol))
          @ admission,
          [] )
    | Some d ->
        let per_shard =
          match t.final_shard_stats with
          | Some s -> s
          | None -> Dispatcher.stats d ()
        in
        let flat =
          List.map
            (fun s ->
              s.Dispatcher.engine
              @ List.map (fun (k, v) -> ("lock." ^ k, v)) s.Dispatcher.lock
              @ [ ("cert-depth", s.Dispatcher.cert_depth) ])
            per_shard
        in
        ( merge_counters flat
          @ List.map (fun (k, v) -> ("dispatch." ^ k, v)) (Dispatcher.counters d)
          @ admission,
          List.map2
            (fun s flat -> (s.Dispatcher.shard, flat))
            per_shard flat )
  in
  let verdict = match verdict with Some _ -> verdict | None -> Some (certified t) in
  Metrics.to_json ~shards t.metrics ~now:(Unix.gettimeofday ())
    ~engine:engine_counters ~certified:verdict

(* -- shutdown ----------------------------------------------------------------- *)

let initiate_shutdown t =
  if not t.draining then begin
    t.draining <- true;
    Metrics.incr t.metrics "shutdowns";
    let now = Unix.gettimeofday () in
    let grace = now +. t.config.drain_grace in
    List.iter
      (fun conn ->
        match conn.session.Session.phase with
        | Session.In_txn tr -> (
            match t.dispatcher with
            | Some d -> Dispatcher.set_deadline d ~top:tr.Session.top (Some grace)
            | None -> Engine.set_deadline t.engine ~top:tr.Session.top (Some grace))
        | Session.Begun_wait _ ->
            (* cancelled: the admission queue is not drained *)
            conn.session.Session.phase <- Session.Idle;
            send conn
              (Wire.Error { code = "shutting-down"; msg = "server draining" })
        | _ -> ())
      t.conns;
    Queue.clear t.admit_queue
  end

(* -- request handling --------------------------------------------------------- *)

let proto_error conn msg = send conn (Wire.Error { code = "protocol"; msg })

let handle_request t conn (req : Wire.request) =
  let session = conn.session in
  match (req, session.Session.phase) with
  | Wire.Hello client, Session.Fresh ->
      session.Session.client <- client;
      session.Session.phase <- Session.Idle;
      send conn
        (Wire.Welcome
           {
             server = t.config.name;
             db = db_kind_name t.config.db_kind;
             protocol = protocol_kind_name t.config.protocol_kind;
           })
  | Wire.Hello _, _ -> proto_error conn "HELLO already received"
  | _, Session.Fresh -> proto_error conn "HELLO must come first"
  | (Wire.Call _ | Wire.Commit | Wire.Abort _), Session.Dead_txn reason ->
      (* the parked abort of a transaction that died between commands
         answers whatever the client asked of it *)
      session.Session.phase <- Session.Idle;
      send conn (Wire.Aborted reason)
  | Wire.Begin _, _ when t.draining ->
      send conn (Wire.Error { code = "shutting-down"; msg = "server draining" })
  | Wire.Begin { name; timeout_ms }, (Session.Idle | Session.Dead_txn _) ->
      session.Session.phase <- Session.Begun_wait { name; timeout_ms };
      Queue.add conn t.admit_queue;
      Metrics.incr t.metrics "begins"
  | Wire.Begin _, _ -> proto_error conn "transaction already in progress"
  | Wire.Call { obj; meth; args }, Session.In_txn tr ->
      Metrics.incr t.metrics "calls";
      Session.push_call tr ~now:(Unix.gettimeofday ()) (Obj_id.v obj) meth args;
      (match t.dispatcher with
      | Some d -> Dispatcher.call d ~top:tr.Session.top ~obj ~meth ~args
      | None -> ignore (Engine.poke t.engine tr.Session.top))
  | Wire.Commit, Session.In_txn tr ->
      if tr.Session.commit_requested then proto_error conn "COMMIT already sent"
      else begin
        Session.push_commit tr;
        match t.dispatcher with
        | Some d -> Dispatcher.commit d ~top:tr.Session.top
        | None -> ignore (Engine.poke t.engine tr.Session.top)
      end
  | Wire.Abort reason, Session.In_txn tr ->
      tr.Session.abort_requested <- true;
      abort_txn t ~top:tr.Session.top reason
  | (Wire.Call _ | Wire.Commit | Wire.Abort _), _ ->
      proto_error conn "no transaction in progress"
  | Wire.Stats, _ -> send conn (Wire.Stats_json (stats_json t))
  | Wire.Shutdown, _ ->
      initiate_shutdown t;
      send conn Wire.Closing
  | Wire.Bye, _ ->
      (match session.Session.phase with
      | Session.In_txn tr -> abort_txn t ~top:tr.Session.top "client left"
      | _ -> ());
      send conn Wire.Closing;
      conn.closing <- true

(* -- admission ---------------------------------------------------------------- *)

let admit t =
  let admitted = ref 0 in
  while
    t.inflight < t.config.max_inflight && not (Queue.is_empty t.admit_queue)
  do
    let conn = Queue.pop t.admit_queue in
    match conn.session.Session.phase with
    | Session.Begun_wait { name; timeout_ms } when not conn.dead ->
        let now = Unix.gettimeofday () in
        let top = t.next_top in
        t.next_top <- top + 1;
        let ms =
          if timeout_ms > 0 then timeout_ms else t.config.default_timeout_ms
        in
        let deadline =
          if ms > 0 then Some (now +. (float_of_int ms /. 1000.)) else None
        in
        let tr = Session.new_txn ~top ~began:now in
        (match t.dispatcher with
        | Some d -> Dispatcher.begin_txn d ~top ~name ~deadline
        | None -> Engine.submit t.engine ~top ~name ?deadline (Session.body tr));
        conn.session.Session.phase <- Session.In_txn tr;
        t.inflight <- t.inflight + 1;
        incr admitted;
        send conn (Wire.Begun { top })
    | _ -> ()  (* died or was cancelled while queued *)
  done;
  !admitted

(* -- response flushing -------------------------------------------------------- *)

(* Release call results strictly in call order, then the transaction's
   decision once the engine has one.  A decision frees the admission
   slot; unflushed provisional results are dropped on abort — the single
   [Aborted] frame answers whatever the client still had outstanding. *)
let flush_session t conn =
  match conn.session.Session.phase with
  | Session.In_txn tr ->
      let open Session in
      let result_of seq =
        match t.dispatcher with
        | Some d -> Dispatcher.result d ~top:tr.top ~seq
        | None -> Hashtbl.find_opt tr.results seq
      in
      let state_of top =
        match t.dispatcher with
        | Some d -> Dispatcher.txn_state d top
        | None -> Engine.txn_state t.engine top
      in
      let retire_top top =
        match t.dispatcher with
        | Some d -> Dispatcher.retire d ~top
        | None -> ignore (Engine.retire t.engine ~top)
      in
      let continue = ref true in
      while !continue && tr.calls_flushed < tr.calls_sent do
        match result_of tr.calls_flushed with
        | Some r ->
            (match Hashtbl.find_opt tr.call_at tr.calls_flushed with
            | Some t0 ->
                Metrics.observe_call t.metrics (Unix.gettimeofday () -. t0)
            | None -> ());
            send conn
              (match r with
              | Ok v -> Wire.Result v
              | Error msg -> Wire.Failed msg);
            tr.calls_flushed <- tr.calls_flushed + 1
        | None -> continue := false
      done;
      (match state_of tr.top with
      | `Committed v ->
          Metrics.incr t.metrics "commits";
          Metrics.observe_commit t.metrics (Unix.gettimeofday () -. tr.began);
          send conn (Wire.Committed v);
          retire_top tr.top;
          t.inflight <- t.inflight - 1;
          conn.session.Session.phase <- Session.Idle
      | `Aborted reason ->
          Metrics.incr t.metrics "aborts";
          Metrics.observe_commit t.metrics (Unix.gettimeofday () -. tr.began);
          retire_top tr.top;
          t.inflight <- t.inflight - 1;
          (* answer the outstanding request if there is one; otherwise
             park the reason — pushing it unsolicited would cross a
             request already in flight and desynchronise the pairing *)
          let outstanding =
            tr.calls_flushed < tr.calls_sent || tr.commit_requested
            || tr.abort_requested
          in
          if outstanding then begin
            send conn (Wire.Aborted reason);
            conn.session.Session.phase <- Session.Idle
          end
          else conn.session.Session.phase <- Session.Dead_txn reason
      | `Running | `Unknown -> ())
  | _ -> ()

(* -- socket events ------------------------------------------------------------ *)

let accept_loop t =
  let again = ref true in
  while !again do
    match Unix.accept t.listen_fd with
    | fd, _ ->
        Unix.set_nonblock fd;
        (match t.config.addr with
        | Tcp _ -> Unix.setsockopt fd Unix.TCP_NODELAY true
        | Unix_sock _ -> ());
        let sid = t.next_sid in
        t.next_sid <- sid + 1;
        Metrics.incr t.metrics "connections";
        t.conns <-
          t.conns
          @ [
              {
                fd;
                framer = Wire.Framer.create ();
                session = Session.create ~sid;
                out = "";
                closing = false;
                dead = false;
              };
            ]
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        again := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let handle_read t conn =
  let buf = Bytes.create 65536 in
  let closed = ref false in
  let again = ref true in
  while !again && not !closed do
    match Unix.read conn.fd buf 0 (Bytes.length buf) with
    | 0 ->
        closed := true;
        again := false
    | n -> Wire.Framer.feed conn.framer (Bytes.sub_string buf 0 n)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        again := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ ->
        closed := true;
        again := false
  done;
  let popping = ref true in
  while !popping do
    match Wire.Framer.pop conn.framer with
    | Ok (Some payload) -> (
        match Wire.decode_request payload with
        | req -> handle_request t conn req
        | exception Failure msg ->
            send conn (Wire.Error { code = "bad-frame"; msg });
            conn.closing <- true;
            popping := false)
    | Ok None -> popping := false
    | Error msg ->
        send conn (Wire.Error { code = "bad-frame"; msg });
        conn.closing <- true;
        popping := false
  done;
  if !closed then kill t conn

let handle_write t conn =
  if conn.out <> "" then begin
    match
      Unix.write_substring conn.fd conn.out 0 (String.length conn.out)
    with
    | n -> conn.out <- String.sub conn.out n (String.length conn.out - n)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ -> kill t conn
  end

(* -- the loop ----------------------------------------------------------------- *)

let nearest_deadline t =
  match t.dispatcher with
  | Some d -> Dispatcher.nearest_deadline d
  | None ->
      List.fold_left
        (fun acc conn ->
          match conn.session.Session.phase with
          | Session.In_txn tr -> (
              match Engine.deadline_of t.engine ~top:tr.Session.top with
              | Some d -> Some (match acc with None -> d | Some a -> Float.min a d)
              | None -> acc)
          | _ -> acc)
        None t.conns

let reap t =
  List.iter
    (fun conn ->
      let idle =
        match conn.session.Session.phase with
        | Session.In_txn _ -> false
        | _ -> true
      in
      if (conn.dead || (conn.closing && conn.out = "")) && idle then begin
        (try Unix.close conn.fd with Unix.Unix_error _ -> ());
        conn.dead <- true;
        t.conns <- List.filter (fun c -> c != conn) t.conns
      end)
    t.conns

(* Quiescent checkpoint: every submitted transaction has decided, so the
   journal's winners fold into the snapshot (commit order = serialization
   order under the locking protocols) and the journal restarts empty.
   Same crash discipline as the boot checkpoint: snapshot rename first,
   log reset second, replay-dedup covering the window between them. *)
let checkpoint_durable t =
  match (t.journal, t.config.durable_dir) with
  | Some j, Some dir ->
      Oplog.force j;
      let plan = Recovery.analyze (Oplog.all j) in
      let snap = Recovery.snapshot_of ~base:t.base_snap plan in
      Snapshot.save ~dir snap;
      Engine.set_journal t.engine None;
      Oplog.close j;
      (try Sys.remove (Oplog.log_file ~dir) with Sys_error _ -> ());
      t.base_snap <- snap;
      Metrics.incr t.metrics "checkpoints"
  | _ -> ()

let finish_drain t =
  (* everything decided: tell the remaining clients, flush what the
     kernel will take in one pass, and stop *)
  List.iter
    (fun conn ->
      if not conn.dead then begin
        send conn Wire.Closing;
        handle_write t conn;
        try Unix.close conn.fd with Unix.Unix_error _ -> ()
      end)
    t.conns;
  t.conns <- [];
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (match t.config.addr with
  | Unix_sock path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ());
  (match t.dispatcher with
  | Some d ->
      (* certify and collect counters before shutdown:
         [Dispatcher.shutdown] joins the shard domains and closes their
         wake pipes, after which no stats/snapshot round can reach them *)
      t.final_shard_stats <- Some (Dispatcher.stats d ());
      t.final_verdict <- Some (Dispatcher.certified d ());
      (match t.config.trace_path with
      | Some path ->
          (* the merged history's objects carry "s%d:" shard prefixes;
             [oosdb certify] resolves the "sharded:" header by wrapping
             the rebuilt database registry with the same renaming *)
          Trace.write_history
            ~registry:("sharded:" ^ db_kind_name t.config.db_kind)
            path
            (Dispatcher.merged_history d ())
      | None -> ());
      Dispatcher.shutdown d (* checkpoints each shard when durable *)
  | None ->
      (match t.trace_writer with
      | Some w ->
          Engine.set_trace_sink t.engine None;
          Trace.close w;
          t.trace_writer <- None
      | None -> ());
      checkpoint_durable t);
  t.stopped <- true

let step t ~timeout =
  if t.stopped then ()
  else begin
    let now = Unix.gettimeofday () in
    let timeout =
      match nearest_deadline t with
      | Some d -> Float.max 0.0 (Float.min timeout (d -. now +. 0.001))
      | None -> timeout
    in
    let live = List.filter (fun c -> not c.dead) t.conns in
    let rfds = t.listen_fd :: List.map (fun c -> c.fd) live in
    let rfds =
      match t.dispatcher with
      | Some d -> Dispatcher.wake_fd d :: rfds
      | None -> rfds
    in
    let wfds =
      List.filter_map (fun c -> if c.out <> "" then Some c.fd else None) live
    in
    (match Unix.select rfds wfds [] timeout with
    | r, w, _ ->
        if List.mem t.listen_fd r then accept_loop t;
        List.iter (fun c -> if List.mem c.fd r then handle_read t c) live;
        ignore w
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    (* deadlines fire even when no socket event woke us *)
    let pump_backend () =
      match t.dispatcher with
      | Some d ->
          Dispatcher.poll d;
          Dispatcher.check_deadlines d;
          Dispatcher.poll d
      | None ->
          Engine.check_deadlines t.engine;
          ignore (Engine.pump t.engine)
    in
    pump_backend ();
    List.iter (fun c -> flush_session t c) t.conns;
    (* freed slots admit queued BEGINs; their first attempt runs to its
       first await immediately *)
    while admit t > 0 do
      pump_backend ();
      List.iter (fun c -> flush_session t c) t.conns
    done;
    List.iter (fun c -> if not c.dead then handle_write t c) t.conns;
    reap t;
    if t.draining && t.inflight = 0 && Queue.is_empty t.admit_queue then
      finish_drain t
  end

let running t = not t.stopped

let serve t =
  while running t do
    step t ~timeout:0.1
  done

let close t = if not t.stopped then finish_drain t
let engine t = t.engine
let protocol t = t.protocol
let dispatcher t = t.dispatcher
let occ_store t = t.occ_store
let metrics t = t.metrics
let inflight t = t.inflight
let last_recovery t = t.recovery
