(** The network transaction server: a single-threaded [Unix.select]
    event loop multiplexing many client sessions onto one effects
    engine, with admission control, per-session deadlines and graceful
    shutdown.  See {!Wire} for the protocol and {!Session} for the
    command-log bridge that makes engine-internal retries invisible to
    clients. *)

type addr = Unix_sock of string | Tcp of int
(** [Tcp] binds the loopback interface only. *)

val sockaddr_of : addr -> Unix.sockaddr
val pp_addr : Format.formatter -> addr -> unit

type db_kind = [ `Encyclopedia | `Banking | `Inventory ]

type protocol_kind =
  [ `Open | `Flat | `Closed | `Certify | `Occ | `Occ_rw ]
(** [`Occ] is the multiversion optimistic protocol with
    commutativity-aware commit validation, [`Occ_rw] the same protocol
    validating on the read/write projection (plain-SSI baseline).  Both
    are single-engine, in-memory, banking-database only: the occ store
    registers the database itself, {!certified} checks the store's
    multiversion history, and STATS counters appear under the ["occ."]
    prefix ([occ.validations], [occ.aborts], [occ.commute-saves]). *)

val db_kind_name : db_kind -> string
val protocol_kind_name : protocol_kind -> string

type config = {
  addr : addr;
  db_kind : db_kind;
  protocol_kind : protocol_kind;
  shards : int;
      (** 0 = classic single-engine path.  [N >= 1] partitions objects
          across [N] shard engines, each on its own OCaml 5 domain, and
          routes every transaction through the
          {!Ooser_shard.Dispatcher}: single-shard transactions commit
          entirely inside their shard, multi-shard ones 2PC through the
          Def. 15 cross-shard certifier. *)
  max_inflight : int;
      (** admission limit: transactions beyond it queue FIFO, their
          [Begun] reply delayed as backpressure *)
  default_timeout_ms : int;  (** for BEGIN with [timeout_ms = 0]; 0 = none *)
  drain_grace : float;
      (** seconds in-flight transactions get to finish on shutdown
          before their deadline aborts them *)
  preload : int;  (** encyclopedia seed keys, named [k%05d] *)
  fanout : int;
  accounts : int;  (** banking accounts, objects [Account%d] *)
  products : int;  (** inventory products on object [Store] *)
  name : string;
  durable_dir : string option;
      (** journal commits to [DIR/oplog.bin]; boot recovers the
          directory's snapshot + stable log through the engine, then
          checkpoints (folds the winners into [DIR/snapshot.bin] and
          restarts the log); a graceful drain checkpoints again *)
  trace_path : string option;
      (** record the committed history to [FILE] as an
          offline-certifiable trace ({!Ooser_certify.Trace}) for
          [oosdb certify]: a single-shard server streams every commit
          as it happens (the current incarnation only — recovered
          commits are not re-recorded); a sharded server exports the
          merged cross-shard history once, at drain *)
}

val default_config : addr -> config
(** Encyclopedia over open nested locking, 32 in-flight, no default
    timeout, 5s drain grace, 200 preloaded keys, not durable. *)

val build_db : config -> Ooser_oodb.Database.t
(** The configured database, freshly built and preloaded — exactly the
    state recovery replays a log against ([oosdb recover] shares it). *)

val build_protocol : config -> Ooser_oodb.Database.t -> Ooser_cc.Protocol.t
(** Lock kinds only.
    @raise Invalid_argument for occ kinds — their protocol is built
    together with the multiversion store inside {!create}. *)

type t

val create : config -> t
(** Build the database and engine and bind the listening socket.
    @raise Unix.Unix_error when the address is unavailable. *)

val port : t -> int
(** The bound TCP port (useful with [Tcp 0]); raises for unix sockets. *)

val step : t -> timeout:float -> unit
(** One event-loop round: wait up to [timeout] seconds for socket
    events (shortened to the nearest transaction deadline), ingest
    frames, pump the engine, flush responses.  Exposed so tests can
    drive the server in-process without threads. *)

val serve : t -> unit
(** [step] until shutdown completes. *)

val running : t -> bool
val initiate_shutdown : t -> unit
val close : t -> unit
(** Immediate shutdown: close every socket without draining. *)

val stats_json : ?certified:bool option -> t -> string
(** Pass [~certified:(Some v)] to reuse an already-computed
    {!certified} verdict instead of re-running the full check. *)

val certified : t -> bool
(** Full oo-serializability check of the committed history so far —
    from-scratch, so minutes not milliseconds on long histories. *)

val engine : t -> Ooser_oodb.Engine.t
(** The single-engine backend.  In sharded mode ([config.shards > 0])
    this is an inert placeholder — use {!dispatcher}. *)

val protocol : t -> Ooser_cc.Protocol.t
val dispatcher : t -> Ooser_shard.Dispatcher.t option
(** The sharded backend, when [config.shards > 0]. *)

val occ_store : t -> Ooser_occ.Store.t option
(** The multiversion store backing an occ-mode server; [None] for lock
    kinds. *)

val metrics : t -> Metrics.t
val inflight : t -> int

val last_recovery : t -> Ooser_oodb.Engine.recovery_report option
(** The boot-time recovery report when the server was created with
    [durable_dir] set; [None] for an in-memory server. *)
