(** Closed-loop load generator: N concurrent sessions over one select
    loop, each running BEGIN → k CALLs → COMMIT in lock step, with
    deterministic (seeded) op mixes per database kind.  Emits the
    numbers behind [BENCH_server.json]. *)

module Stats = Ooser_sim.Stats

type cfg = {
  sockaddr : Unix.sockaddr;
  sessions : int;
  txns_per_session : int;
  calls_per_txn : int;
  db_kind : Server.db_kind;
  seed : int;
  timeout_ms : int;
  key_universe : int;
      (** encyclopedia: must match the server's preload count *)
  theta : float;
  accounts : int;
  products : int;
  shutdown : bool;  (** send SHUTDOWN once done *)
  rate : float;
      (** > 0 switches to open-loop mode: transactions arrive on a
          global schedule of [rate] per second, idle sessions claim the
          next due arrival, and latency is measured from the scheduled
          arrival (so it includes backlog queueing rather than being
          capped by the closed loop's self-throttling).  0 = closed
          loop. *)
  route_shards : int;
      (** > 0: shard-affine encyclopedia mix against a [--shards N]
          server — each session homes on shard [sid mod route_shards]
          (computed with the server's own {!Ooser_shard.Router}) and
          keeps its keys there, except for deliberate cross-shard
          excursions *)
  cross : float;
      (** probability a routed call targets a foreign shard, making the
          enclosing transaction a 2PC cross-shard commit *)
  trace_path : string option;
      (** record the client-observed committed history to [FILE] as an
          offline-certifiable trace ({!Ooser_certify.Trace}): each
          committed transaction becomes one flat record of its
          successful calls, stamped in result-observation order.  This
          is a black-box audit of the order the client actually saw —
          the server's own [trace_path] records the authoritative
          execution order. *)
}

val default_cfg : Unix.sockaddr -> cfg
(** 16 sessions, 8 txns each, 4 calls per txn, encyclopedia mix,
    closed loop, no shard routing (cross = 0.05 once enabled). *)

type result = {
  db : string;
  protocol : string;
  n_sessions : int;
  committed : int;
  aborted : int;
  calls : int;
  failed_calls : int;
  elapsed : float;
  throughput : float;
  latency : Stats.Histogram.t;
      (** BEGIN-on-the-wire → decision (closed loop) or scheduled
          arrival → decision (open loop), seconds *)
  offered_rate : float;  (** 0 = closed loop *)
  certified : bool option;
      (** the server's full oo-serializability verdict over everything
          this run committed, from the post-run STATS round *)
  stats_json : string option;
}

val run : ?tick:(unit -> unit) -> cfg -> result
(** Drive all sessions to completion.  [tick] runs every loop iteration
    — pass [fun () -> Server.step srv ~timeout:0.0] to load an
    in-process server single-threaded.
    @raise Failure if the run exceeds 300s or a stream is poisoned. *)

val to_json : result -> string
