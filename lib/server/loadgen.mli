(** Closed-loop load generator: N concurrent sessions over one select
    loop, each running BEGIN → k CALLs → COMMIT in lock step, with
    deterministic (seeded) op mixes per database kind.  Emits the
    numbers behind [BENCH_server.json]. *)

module Stats = Ooser_sim.Stats

type cfg = {
  sockaddr : Unix.sockaddr;
  sessions : int;
  txns_per_session : int;
  calls_per_txn : int;
  db_kind : Server.db_kind;
  seed : int;
  timeout_ms : int;
  key_universe : int;
      (** encyclopedia: must match the server's preload count *)
  theta : float;
  accounts : int;
  products : int;
  shutdown : bool;  (** send SHUTDOWN once done *)
}

val default_cfg : Unix.sockaddr -> cfg
(** 16 sessions, 8 txns each, 4 calls per txn, encyclopedia mix. *)

type result = {
  db : string;
  protocol : string;
  n_sessions : int;
  committed : int;
  aborted : int;
  calls : int;
  failed_calls : int;
  elapsed : float;
  throughput : float;
  latency : Stats.Histogram.t;
  certified : bool option;
      (** the server's full oo-serializability verdict over everything
          this run committed, from the post-run STATS round *)
  stats_json : string option;
}

val run : ?tick:(unit -> unit) -> cfg -> result
(** Drive all sessions to completion.  [tick] runs every loop iteration
    — pass [fun () -> Server.step srv ~timeout:0.0] to load an
    in-process server single-threaded.
    @raise Failure if the run exceeds 300s or a stream is poisoned. *)

val to_json : result -> string
