(** Per-connection session state: the HELLO/BEGIN/CALL/COMMIT state
    machine and the command-log bridge between the interactive wire
    protocol and the engine's retryable transaction bodies.

    The body ({!body}) replays the command log from the start on every
    engine-internal retry (wound-wait restart, certification failure)
    and parks on {!Ooser_oodb.Runtime.await} past its end, so retries
    are invisible to the client. *)

open Ooser_core
open Ooser_oodb

type cmd =
  | C_call of Obj_id.t * string * Value.t list
  | C_commit

type txn = {
  top : int;
  began : float;
  mutable cmds : cmd array;
  mutable n_cmds : int;
  mutable calls_sent : int;
  mutable calls_flushed : int;
  results : (int, (Value.t, string) result) Hashtbl.t;
  call_at : (int, float) Hashtbl.t;
  mutable commit_requested : bool;
  mutable abort_requested : bool;
}

type phase =
  | Fresh
  | Idle
  | Begun_wait of { name : string; timeout_ms : int }
  | In_txn of txn
  | Dead_txn of string
      (** aborted while no response was owed; the reason answers the
          client's next request *)

type t = {
  sid : int;
  mutable client : string;
  mutable phase : phase;
}

val create : sid:int -> t
val new_txn : top:int -> began:float -> txn

val push_call : txn -> now:float -> Obj_id.t -> string -> Value.t list -> unit
(** Append a CALL to the log, stamping its arrival time for latency
    accounting; the engine must be poked afterwards. *)

val push_commit : txn -> unit

val body : txn -> Runtime.ctx -> Value.t
(** The transaction body to {!Ooser_oodb.Engine.submit}: replays the
    command log, awaits past its end, returns the last successful call's
    value on COMMIT. *)
