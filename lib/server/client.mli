(** Blocking request/response client over the {!Wire} protocol.

    The socket is non-blocking underneath; {!recv} calls [on_wait]
    between read attempts, so an in-process test can pass
    [fun () -> Server.step server ~timeout:0.01] and run a full
    client/server exchange on one thread. *)

type t

val connect :
  ?on_wait:(unit -> unit) -> ?recv_timeout:float -> Unix.sockaddr -> t
(** Defaults: [on_wait] sleeps 1ms; [recv_timeout] 30s. *)

val send : t -> Wire.request -> unit
val recv : t -> Wire.response
(** @raise Failure on timeout, poisoned stream, or closed connection. *)

val request : t -> Wire.request -> Wire.response
val close : t -> unit
