(* Server-side observability: event counters and wall-clock latency
   histograms, exported as JSON over the wire (STATS) and at shutdown.

   Commit latency is measured from the BEGIN frame to the commit (or
   abort) decision; call latency from a CALL frame to its response being
   queued — both therefore include engine queueing, lock waits and any
   certification retries, which is what a client experiences. *)

module Stats = Ooser_sim.Stats

type t = {
  counters : Stats.Counter.t;
  commit_latency : Stats.Histogram.t;
  call_latency : Stats.Histogram.t;
  started : float;  (* server start, for uptime *)
}

let create ~now () =
  {
    counters = Stats.Counter.create ();
    commit_latency = Stats.Histogram.create ();
    call_latency = Stats.Histogram.create ();
    started = now;
  }

let incr t key = Stats.Counter.incr t.counters key
let observe_commit t seconds = Stats.Histogram.add t.commit_latency seconds
let observe_call t seconds = Stats.Histogram.add t.call_latency seconds

(* -- JSON -------------------------------------------------------------------- *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_counters kvs =
  String.concat ", "
    (List.map (fun (k, v) -> Printf.sprintf "%S: %d" (escape k) v) kvs)

let json_histogram h =
  let q p = Stats.Histogram.quantile h p in
  Printf.sprintf
    "{\"count\": %d, \"mean\": %.9f, \"p50\": %.9f, \"p95\": %.9f, \"p99\": \
     %.9f, \"max\": %.9f}"
    (Stats.Histogram.count h) (Stats.Histogram.mean h) (q 0.50) (q 0.95)
    (q 0.99)
    (Stats.Histogram.max_value h)

(* [engine] carries the engine + lock-protocol counters; [certified] is
   the verdict of a full oo-serializability check of the committed
   history when one was run (None while the server is live — the check
   is a shutdown/STATS-time sweep, not per-commit).  [shards], when
   non-empty, adds a per-shard counter breakdown next to the merged
   [engine] view so load imbalance between shards is visible in STATS. *)
let to_json ?(shards = []) t ~now ~engine ~certified =
  let shard_section =
    match shards with
    | [] -> []
    | kvs ->
        [
          Printf.sprintf "  \"shards\": {%s},"
            (String.concat ", "
               (List.map
                  (fun (i, counters) ->
                    Printf.sprintf "\"shard%d\": {%s}" i
                      (json_counters counters))
                  kvs));
        ]
  in
  String.concat "\n"
    ([
       "{";
       Printf.sprintf "  \"uptime_seconds\": %.3f," (now -. t.started);
       Printf.sprintf "  \"server\": {%s},"
         (json_counters (Stats.Counter.to_list t.counters));
       Printf.sprintf "  \"engine\": {%s}," (json_counters engine);
     ]
    @ shard_section
    @ [
        Printf.sprintf "  \"commit_latency_seconds\": %s,"
          (json_histogram t.commit_latency);
        Printf.sprintf "  \"call_latency_seconds\": %s,"
          (json_histogram t.call_latency);
        Printf.sprintf "  \"certified\": %s"
          (match certified with
          | None -> "null"
          | Some b -> if b then "true" else "false");
        "}";
      ])
