(* Closed-loop load generator: N concurrent sessions over one
   [Unix.select] loop, each running BEGIN → k CALLs → COMMIT in lock
   step (a session issues its next request only after the previous
   response arrives — the classic closed-loop client model, so offered
   load adapts to server latency).

   The op mix is driven by the deterministic [Ooser_sim] machinery:
   a seeded splitmix64 stream per session and a Zipf distribution over
   the server's preloaded key range, so runs are reproducible.

   After every session finishes, a control connection fetches STATS
   (whose [certified] field is the server's full oo-serializability
   check over everything this run committed) and optionally sends
   SHUTDOWN. *)

module Rng = Ooser_sim.Rng
module Dist = Ooser_sim.Dist
module Stats = Ooser_sim.Stats
module Router = Ooser_shard.Router
open Ooser_core

type cfg = {
  sockaddr : Unix.sockaddr;
  sessions : int;
  txns_per_session : int;
  calls_per_txn : int;
  db_kind : Server.db_kind;  (* shapes the op mix *)
  seed : int;
  timeout_ms : int;  (* BEGIN timeout; 0 = server default *)
  key_universe : int;  (* encyclopedia: the server's preload count *)
  theta : float;  (* Zipf skew over existing keys *)
  accounts : int;
  products : int;
  shutdown : bool;  (* send SHUTDOWN after the run *)
  rate : float;
      (* > 0: open-loop mode — transactions arrive on a global schedule
         of [rate] per second and idle sessions pull the next arrival;
         latency is then measured from the scheduled arrival, so it
         includes any backlog queueing.  0 = classic closed loop. *)
  route_shards : int;
      (* > 0: shard-affine encyclopedia mix — each session homes on
         shard [sid mod route_shards] (same router as the server) and
         picks keys placed there, so its transactions stay single-shard
         except for deliberate excursions *)
  cross : float;  (* probability a routed call targets a foreign shard *)
  trace_path : string option;
      (* record the client-observed committed history to FILE as an
         offline-certifiable trace: each committed transaction becomes
         a flat record of its successful calls, stamped in the order
         their results were observed.  A black-box audit — the server's
         own --trace is the authoritative execution order *)
}

let default_cfg sockaddr =
  {
    sockaddr;
    sessions = 16;
    txns_per_session = 8;
    calls_per_txn = 4;
    db_kind = `Encyclopedia;
    seed = 42;
    timeout_ms = 0;
    key_universe = 200;
    theta = 0.8;
    accounts = 10;
    products = 4;
    shutdown = false;
    rate = 0.0;
    route_shards = 0;
    cross = 0.05;
    trace_path = None;
  }

type result = {
  db : string;
  protocol : string;
  n_sessions : int;
  committed : int;
  aborted : int;
  calls : int;
  failed_calls : int;
  elapsed : float;
  throughput : float;  (* committed transactions per second *)
  latency : Stats.Histogram.t;
      (* seconds to decision, from the BEGIN actually hitting the
         socket (closed loop) or from the scheduled arrival (open
         loop) *)
  offered_rate : float;  (* 0 = closed loop *)
  certified : bool option;  (* None when no STATS round ran *)
  stats_json : string option;
}

(* -- per-session state machine ------------------------------------------------ *)

type sess_state =
  | Awaiting_welcome
  | Idle_wait  (* open loop: between transactions, waiting for an arrival *)
  | Awaiting_begun
  | Awaiting_result of int  (* calls still to issue after this response *)
  | Awaiting_commit
  | Awaiting_closing
  | Done

type sess = {
  sid : int;
  fd : Unix.file_descr;
  framer : Wire.Framer.t;
  rng : Rng.t;
  existing : Dist.t;  (* skewed choice among preloaded keys *)
  home : int;  (* home shard when routing; 0 otherwise *)
  mutable out : string;
  mutable state : sess_state;
  mutable txns_left : int;
  mutable began : float;
  mutable begin_unsent : bool;
      (* closed loop: the BEGIN is still queued; [began] is stamped
         when it actually reaches the socket, so latency measures the
         server, not our own buffering *)
  mutable fresh : int;  (* fresh-key counter for inserts *)
  mutable last_call : (string * string * Value.t list) option;
      (* the in-flight call, stashed for the tracer *)
  mutable observed : (string * string * Value.t list * int) list;
      (* this transaction's successful calls with observation stamps,
         newest first *)
}

type tracer = {
  tw : Ooser_certify.Trace.writer;
  mutable t_stamp : int;  (* global observation counter *)
  mutable t_top : int;  (* client-side transaction numbering *)
}

type acc = {
  mutable committed : int;
  mutable aborted : int;
  mutable calls : int;
  mutable failed_calls : int;
  mutable db : string;
  mutable protocol : string;
  latency : Stats.Histogram.t;
  tracer : tracer option;
}

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
  nn = 0 || at 0

let queue_req sess req = sess.out <- sess.out ^ Wire.frame (Wire.encode_request req)

let key_of i = Printf.sprintf "k%05d" i

(* the router the server uses, when shard-affine routing is on *)
let router_of cfg =
  if cfg.route_shards > 0 then Some (Router.create ~shards:cfg.route_shards)
  else None

let on_shard router shard key =
  Router.shard_of_call router ~obj:"Enc" ~args:[ Value.str key ] = shard

(* Zipf-sample a preloaded key; under routing, probe forward from the
   sample until one placed on [shard] comes up (placement is dense
   enough that this terminates quickly). *)
let existing_key cfg router sess ~shard =
  let i0 = Dist.sample sess.rng sess.existing in
  match router with
  | None -> key_of i0
  | Some r ->
      let n = max 1 cfg.key_universe in
      let rec probe d =
        if d >= n then key_of i0
        else
          let k = key_of ((i0 + d) mod n) in
          if on_shard r shard k then k else probe (d + 1)
      in
      probe 0

(* a fresh key the router places on [shard] *)
let fresh_key router sess ~shard =
  let rec go () =
    sess.fresh <- sess.fresh + 1;
    let k = Printf.sprintf "s%02dn%04d" sess.sid sess.fresh in
    match router with
    | None -> k
    | Some r -> if on_shard r shard k then k else go ()
  in
  go ()

let gen_call cfg router sess : Wire.request =
  match cfg.db_kind with
  | `Encyclopedia ->
      (* stay on the home shard, with an occasional deliberate
         cross-shard excursion *)
      let shard =
        match router with
        | None -> 0
        | Some _ ->
            if
              cfg.route_shards > 1
              && Rng.int sess.rng 10_000 < int_of_float (cfg.cross *. 10_000.)
            then
              (sess.home + 1 + Rng.int sess.rng (cfg.route_shards - 1))
              mod cfg.route_shards
            else sess.home
      in
      let pick = Rng.int sess.rng 100 in
      if pick < 30 then
        Wire.Call
          {
            obj = "Enc";
            meth = "insert";
            args = [ Value.str (fresh_key router sess ~shard); Value.str "fresh" ];
          }
      else if pick < 70 then
        Wire.Call
          {
            obj = "Enc";
            meth = "search";
            args = [ Value.str (existing_key cfg router sess ~shard) ];
          }
      else
        Wire.Call
          {
            obj = "Enc";
            meth = "update";
            args =
              [
                Value.str (existing_key cfg router sess ~shard);
                Value.str "updated";
              ];
          }
  | `Banking ->
      let acct () = Rng.int sess.rng cfg.accounts in
      let meth = if Rng.bool sess.rng then "deposit" else "withdraw" in
      Wire.Call
        {
          obj = Printf.sprintf "Account%d" (acct ());
          meth;
          args = [ Value.int (1 + Rng.int sess.rng 5) ];
        }
  | `Inventory ->
      Wire.Call
        {
          obj = "Store";
          meth = "place";
          args =
            [
              Value.str (Printf.sprintf "p%d" (Rng.int sess.rng cfg.products));
              Value.int (1 + Rng.int sess.rng 3);
            ];
        }

let issue_call cfg router acc sess remaining =
  acc.calls <- acc.calls + 1;
  let req = gen_call cfg router sess in
  (match (acc.tracer, req) with
  | Some _, Wire.Call { obj; meth; args } ->
      sess.last_call <- Some (obj, meth, args)
  | _ -> ());
  queue_req sess req;
  sess.state <- Awaiting_result remaining

(* One committed transaction as a flat trace record: root on S, one
   primitive child per successful call, stamped by observation order. *)
let trace_commit tr sess =
  let ops = List.rev sess.observed in
  sess.observed <- [];
  if ops <> [] then begin
    tr.t_top <- tr.t_top + 1;
    let top = tr.t_top in
    let module Trace = Ooser_certify.Trace in
    let root = Ids.Action_id.root top in
    let root_act =
      Action.v ~id:root ~obj:(Ids.Obj_id.v "S") ~meth:"txn"
        ~process:(Ids.Process_id.main top) ()
    in
    let children =
      List.mapi
        (fun k (obj, meth, args, _) ->
          Call_tree.v
            (Action.v
               ~id:(Ids.Action_id.child root (k + 1))
               ~obj:(Ids.Obj_id.v obj) ~meth ~args
               ~process:(Ids.Process_id.main top) ())
            [])
        ops
    in
    let prims =
      List.mapi (fun k (_, _, _, s) -> (Ids.Action_id.child root (k + 1), s)) ops
    in
    Trace.append tr.tw
      { Trace.top; tree = Call_tree.seq root_act children; prims }
  end

(* [began = 0.0] means "stamp when the BEGIN reaches the socket"
   (closed loop); an open-loop caller passes the scheduled arrival. *)
let begin_txn cfg sess ~began =
  sess.txns_left <- sess.txns_left - 1;
  sess.began <- began;
  sess.begin_unsent <- began = 0.0;
  queue_req sess
    (Wire.Begin
       {
         name = Printf.sprintf "lg%d.%d" sess.sid (sess.txns_left + 1);
         timeout_ms = cfg.timeout_ms;
       });
  sess.state <- Awaiting_begun

let next_txn cfg sess =
  if sess.txns_left > 0 then begin
    if cfg.rate > 0.0 then sess.state <- Idle_wait
    else begin_txn cfg sess ~began:0.0
  end
  else begin
    queue_req sess Wire.Bye;
    sess.state <- Awaiting_closing
  end

let decide acc sess ~ok =
  Stats.Histogram.add acc.latency (Unix.gettimeofday () -. sess.began);
  if ok then acc.committed <- acc.committed + 1
  else acc.aborted <- acc.aborted + 1

let on_response cfg router acc sess (resp : Wire.response) =
  match (resp, sess.state) with
  | Wire.Welcome { db; protocol; _ }, Awaiting_welcome ->
      acc.db <- db;
      acc.protocol <- protocol;
      next_txn cfg sess
  | Wire.Begun _, Awaiting_begun ->
      issue_call cfg router acc sess (cfg.calls_per_txn - 1)
  | (Wire.Result _ | Wire.Failed _), Awaiting_result remaining ->
      (match resp with
      | Wire.Failed _ ->
          acc.failed_calls <- acc.failed_calls + 1;
          (* a failed call's subtransaction rolled back: not part of
             the committed history *)
          sess.last_call <- None
      | _ -> (
          match (acc.tracer, sess.last_call) with
          | Some tr, Some (obj, meth, args) ->
              tr.t_stamp <- tr.t_stamp + 1;
              sess.observed <- (obj, meth, args, tr.t_stamp) :: sess.observed;
              sess.last_call <- None
          | _ -> ()));
      if remaining > 0 then issue_call cfg router acc sess (remaining - 1)
      else begin
        queue_req sess Wire.Commit;
        sess.state <- Awaiting_commit
      end
  | Wire.Committed _, Awaiting_commit ->
      (match acc.tracer with
      | Some tr -> trace_commit tr sess
      | None -> ());
      decide acc sess ~ok:true;
      next_txn cfg sess
  | Wire.Aborted _, (Awaiting_result _ | Awaiting_commit | Awaiting_begun) ->
      (* the engine's decision ends the transaction wherever we were *)
      sess.observed <- [];
      sess.last_call <- None;
      decide acc sess ~ok:false;
      next_txn cfg sess
  | Wire.Error { code = "shutting-down"; _ }, _ ->
      queue_req sess Wire.Bye;
      sess.state <- Awaiting_closing
  | Wire.Closing, _ -> sess.state <- Done
  | resp, _ ->
      failwith
        (Fmt.str "loadgen session %d: unexpected %a" sess.sid Wire.pp_response
           resp)

(* -- the loop ----------------------------------------------------------------- *)

let run ?(tick = fun () -> ()) cfg =
  if cfg.sessions <= 0 then invalid_arg "Loadgen.run: sessions";
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let connect sid =
    let fd = Unix.socket (Unix.domain_of_sockaddr cfg.sockaddr) Unix.SOCK_STREAM 0 in
    (try Unix.connect fd cfg.sockaddr
     with e ->
       Unix.close fd;
       raise e);
    Unix.set_nonblock fd;
    (match cfg.sockaddr with
    | Unix.ADDR_INET _ -> Unix.setsockopt fd Unix.TCP_NODELAY true
    | _ -> ());
    let rng = Rng.create ~seed:(cfg.seed + (1000 * sid)) in
    let sess =
      {
        sid;
        fd;
        framer = Wire.Framer.create ();
        rng;
        existing = Dist.zipf ~theta:cfg.theta (max 1 cfg.key_universe);
        home = (if cfg.route_shards > 0 then sid mod cfg.route_shards else 0);
        out = "";
        state = Awaiting_welcome;
        txns_left = cfg.txns_per_session;
        began = 0.0;
        begin_unsent = false;
        fresh = 0;
        last_call = None;
        observed = [];
      }
    in
    queue_req sess (Wire.Hello (Printf.sprintf "loadgen-%d" sid));
    sess
  in
  let router = router_of cfg in
  let sessions = List.init cfg.sessions connect in
  let acc =
    {
      committed = 0;
      aborted = 0;
      calls = 0;
      failed_calls = 0;
      db = "?";
      protocol = "?";
      latency = Stats.Histogram.create ();
      tracer =
        (match cfg.trace_path with
        | Some path ->
            Some
              {
                tw =
                  Ooser_certify.Trace.create_writer
                    ~registry:("client:" ^ Server.db_kind_name cfg.db_kind)
                    path;
                t_stamp = 0;
                t_top = 0;
              }
        | None -> None);
    }
  in
  let started = Unix.gettimeofday () in
  let give_up = started +. 300.0 in
  let live () = List.filter (fun s -> s.state <> Done) sessions in
  let flush_out s =
    if s.out <> "" then begin
      match Unix.write_substring s.fd s.out 0 (String.length s.out) with
      | n ->
          s.out <- String.sub s.out n (String.length s.out - n);
          (* the BEGIN is on the wire: latency starts now *)
          if s.begin_unsent && s.out = "" then begin
            s.begin_unsent <- false;
            s.began <- Unix.gettimeofday ()
          end
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error _ -> s.state <- Done  (* peer gone *)
    end
  in
  let drain_frames s =
    let popping = ref true in
    while !popping && s.state <> Done do
      match Wire.Framer.pop s.framer with
      | Ok (Some payload) ->
          on_response cfg router acc s (Wire.decode_response payload)
      | Ok None -> popping := false
      | Error msg -> failwith ("loadgen: " ^ msg)
    done
  in
  let read_sock s =
    let buf = Bytes.create 65536 in
    match Unix.read s.fd buf 0 (Bytes.length buf) with
    | 0 -> s.state <- Done  (* server went away *)
    | n ->
        Wire.Framer.feed s.framer (Bytes.sub_string buf 0 n);
        drain_frames s
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  in
  (* open loop: one global Poisson-free (deterministic) arrival
     schedule; each idle session claims the next due arrival *)
  let next_arrival = ref 0 in
  let sched i = started +. (float_of_int i /. cfg.rate) in
  let dispatch_arrivals () =
    if cfg.rate > 0.0 then begin
      let now = Unix.gettimeofday () in
      List.iter
        (fun s ->
          if s.state = Idle_wait && now >= sched !next_arrival then begin
            let began = sched !next_arrival in
            incr next_arrival;
            begin_txn cfg s ~began
          end)
        sessions
    end
  in
  while live () <> [] do
    if Unix.gettimeofday () > give_up then
      failwith "loadgen: run timed out after 300s";
    tick ();
    dispatch_arrivals ();
    let ss = live () in
    let rfds = List.map (fun s -> s.fd) ss in
    let wfds = List.filter_map (fun s -> if s.out <> "" then Some s.fd else None) ss in
    let sel_timeout =
      if cfg.rate > 0.0 && List.exists (fun s -> s.state = Idle_wait) ss then
        Float.max 0.001
          (Float.min 0.05 (sched !next_arrival -. Unix.gettimeofday ()))
      else 0.05
    in
    (match Unix.select rfds wfds [] sel_timeout with
    | r, w, _ ->
        List.iter (fun s -> if List.mem s.fd w then flush_out s) ss;
        List.iter (fun s -> if List.mem s.fd r then read_sock s) ss
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
  done;
  let elapsed = Unix.gettimeofday () -. started in
  List.iter (fun s -> try Unix.close s.fd with Unix.Unix_error _ -> ()) sessions;
  (match acc.tracer with
  | Some tr -> Ooser_certify.Trace.close tr.tw
  | None -> ());
  (* control round: STATS (with the server-side certification verdict),
     then SHUTDOWN when asked *)
  let certified, stats_json =
    let on_wait () =
      tick ();
      Unix.sleepf 0.0005
    in
    match Client.connect ~on_wait cfg.sockaddr with
    | exception Unix.Unix_error _ -> (None, None)
    | c ->
        let fin =
          match Client.request c (Wire.Hello "loadgen-control") with
          | Wire.Welcome _ -> (
              match Client.request c Wire.Stats with
              | Wire.Stats_json j ->
                  (* the JSON is ours; a substring probe beats a parser *)
                  let certified =
                    if contains j "\"certified\": true" then Some true
                    else if contains j "\"certified\": false" then Some false
                    else None
                  in
                  (certified, Some j)
              | _ -> (None, None))
          | _ -> (None, None)
        in
        if cfg.shutdown then ignore (Client.request c Wire.Shutdown);
        Client.close c;
        fin
  in
  {
    db = acc.db;
    protocol = acc.protocol;
    n_sessions = cfg.sessions;
    committed = acc.committed;
    aborted = acc.aborted;
    calls = acc.calls;
    failed_calls = acc.failed_calls;
    elapsed;
    throughput = (if elapsed > 0.0 then float_of_int acc.committed /. elapsed else 0.0);
    latency = acc.latency;
    offered_rate = cfg.rate;
    certified;
    stats_json;
  }

let to_json (r : result) =
  let q p = Stats.Histogram.quantile r.latency p in
  String.concat "\n"
    [
      "{";
      Printf.sprintf "  \"db\": %S," r.db;
      Printf.sprintf "  \"protocol\": %S," r.protocol;
      Printf.sprintf "  \"sessions\": %d," r.n_sessions;
      Printf.sprintf "  \"txns_committed\": %d," r.committed;
      Printf.sprintf "  \"txns_aborted\": %d," r.aborted;
      Printf.sprintf "  \"calls\": %d," r.calls;
      Printf.sprintf "  \"failed_calls\": %d," r.failed_calls;
      Printf.sprintf "  \"elapsed_seconds\": %.3f," r.elapsed;
      Printf.sprintf "  \"throughput_txn_per_s\": %.1f," r.throughput;
      Printf.sprintf "  \"mode\": %S,"
        (if r.offered_rate > 0.0 then "open" else "closed");
      Printf.sprintf "  \"offered_rate_txn_per_s\": %.1f," r.offered_rate;
      Printf.sprintf
        "  \"latency_seconds\": {\"mean\": %.6f, \"p50\": %.6f, \"p95\": \
         %.6f, \"p99\": %.6f, \"max\": %.6f},"
        (Stats.Histogram.mean r.latency)
        (q 0.50) (q 0.95) (q 0.99)
        (Stats.Histogram.max_value r.latency);
      Printf.sprintf "  \"certified\": %s"
        (match r.certified with
        | None -> "null"
        | Some b -> if b then "true" else "false");
      "}";
    ]
