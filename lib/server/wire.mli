(** Wire protocol of the transaction server: length-prefixed binary
    frames (little-endian u32 length + payload) whose payloads are built
    from the {!Ooser_storage.Codec} primitives.

    The session protocol is a strict request/response alternation:
    every request gets exactly one response and the server never pushes
    unsolicited frames.  A transaction that dies while no response is
    owed (a deadline firing between commands) has its abort parked and
    delivered as the answer to the next request.  Clients must treat
    [Aborted] answering any in-transaction request as the end of that
    transaction. *)

open Ooser_core

val max_frame : int
(** Largest accepted payload, in bytes; larger frames poison the
    connection before any allocation takes place. *)

type request =
  | Hello of string  (** client identification; must open every session *)
  | Begin of { name : string; timeout_ms : int }
      (** start a transaction; [timeout_ms = 0] means the server default.
          Queued (no response) while the server is at its in-flight
          admission limit — backpressure is a delayed [Begun]. *)
  | Call of { obj : string; meth : string; args : Value.t list }
      (** invoke a method as a subtransaction of the session's
          transaction; runs under {!Ooser_oodb.Runtime.try_call}, so a
          failure rolls back the call alone and answers [Failed] *)
  | Commit
  | Abort of string
  | Stats  (** observability snapshot as JSON *)
  | Shutdown  (** begin graceful shutdown: drain in-flight, then exit *)
  | Bye

type response =
  | Welcome of { server : string; db : string; protocol : string }
  | Begun of { top : int }
  | Result of Value.t
      (** the call committed at its level.  Results delivered before
          [Committed] are provisional: if the transaction is wounded and
          replayed, the commit reflects the replay. *)
  | Failed of string
  | Committed of Value.t  (** value returned by the last successful call *)
  | Aborted of string
  | Stats_json of string
  | Error of { code : string; msg : string }
  | Closing

val encode_request : request -> string
val decode_request : string -> request
(** @raise Failure on malformed or trailing bytes (both decoders). *)

val encode_response : response -> string
val decode_response : string -> response

val frame : string -> string
(** Wrap a payload in its length prefix. *)

(** Incremental frame extraction from a byte stream. *)
module Framer : sig
  type t

  val create : unit -> t

  val feed : t -> string -> unit
  (** Append bytes read from the socket. *)

  val pop : t -> (string option, string) result
  (** Next complete payload; [Ok None] when more bytes are needed;
      [Error _] once the stream is poisoned (oversized frame) — the
      connection must be dropped. *)
end

val pp_request : Format.formatter -> request -> unit
val pp_response : Format.formatter -> response -> unit
