(** Object registry: the "homogeneous set of objects" of Def. 4.

    Every object is registered with its commutativity specification and
    its method table.  Methods are closures over the object's state —
    encapsulation is enforced by the engine, the only caller of method
    implementations. *)

open Ooser_core

(** What happens to this action's effects when the surrounding
    transaction aborts {e after} the action committed at its level (open
    nesting):
    - [Keep_undo] — replay the low-level undo closures of its subtree;
      only sound while the subtree's locks are still held;
    - [Forget] — the effects persist (structure modifications such as
      B-tree splits, which real systems never roll back);
    - [Inverse inv] — run a compensating invocation (the logical
      inverse), sound because the action's own semantic lock is still
      held by its caller. *)
type compensation =
  | Keep_undo
  | Forget
  | Inverse of Runtime.invocation

type meth = {
  kind : [ `Primitive | `Composite ];
      (** primitive methods call no other methods (Def. 3) and should
          register undo closures for the state they change *)
  run : Runtime.ctx -> Value.t list -> Value.t;
  compensate : (Value.t list -> Value.t -> compensation) option;
      (** [compensate args result] decides the abort policy once this
          action has committed at its level; [None] = [Keep_undo] *)
}

val primitive :
  ?compensate:(Value.t list -> Value.t -> compensation) ->
  (Runtime.ctx -> Value.t list -> Value.t) ->
  meth

val composite :
  ?compensate:(Value.t list -> Value.t -> compensation) ->
  (Runtime.ctx -> Value.t list -> Value.t) ->
  meth

type t

val create : unit -> t

val register :
  t -> Obj_id.t -> spec:Commutativity.spec -> (string * meth) list -> unit
(** @raise Invalid_argument when the object already exists. *)

val register_or_replace :
  t -> Obj_id.t -> spec:Commutativity.spec -> (string * meth) list -> unit

val mem : t -> Obj_id.t -> bool
val objects : t -> Obj_id.t list

val methods : t -> Obj_id.t -> string list
(** Names of the registered methods; [[]] for unknown objects.  The
    static analyzer uses this as the probing vocabulary for specs that
    declare none. *)

val spec : t -> Obj_id.t -> Commutativity.spec option

val compensated_methods : t -> Obj_id.t -> string list
(** Names of registered methods that carry a compensation; the COMP001
    lint compares these against the methods reachable from open-nested
    abort paths. *)

val find_meth : t -> Obj_id.t -> string -> (meth, string) result

val spec_registry : ?default:Commutativity.spec -> t -> Commutativity.registry
(** Commutativity registry over the registered objects, for the protocols
    and the checker. *)
