(* Effects connecting method bodies to the execution engine.

   Method implementations are plain OCaml functions; every access to
   another encapsulated object goes through [call], which performs an
   [Invoke] effect.  The engine handles the effect: it numbers the action,
   asks the concurrency control protocol for access, runs the target
   method (possibly after blocking the calling fiber), and resumes the
   caller with the result.  This gives the engine an interleaving point at
   exactly the paper's action granularity. *)

open Ooser_core

type invocation = { target : Obj_id.t; meth_name : string; args : Value.t list }

(* The capability to issue calls; created by the engine only. *)
type ctx = { top : int }

type _ Effect.t +=
  | Invoke : invocation -> Value.t Effect.t
  | Invoke_par : invocation list -> Value.t list Effect.t
  | Invoke_try : invocation -> (Value.t, string) result Effect.t
  | Register_undo : (unit -> unit) -> unit Effect.t
  | Await : unit Effect.t

exception Abort of string
(* A transaction-level abort requested by user code or the system. *)

exception Abandoned
(* Used to discard the fibers of an aborted transaction. *)

let call (_ : ctx) target meth_name args =
  Effect.perform (Invoke { target; meth_name; args })

(* Intra-transaction parallelism (Def. 9): issue several calls whose
   executions may interleave; each runs in a fresh process of the same
   transaction, so they CAN conflict with one another. *)
let call_par (_ : ctx) invocations =
  Effect.perform (Invoke_par invocations)

let invocation target meth_name args = { target; meth_name; args }

(* Partial rollback (the heart of nested transactions): run a call as a
   subtransaction that may fail alone.  On failure its effects are undone
   and [Error reason] is returned; the surrounding transaction
   continues. *)
let try_call (_ : ctx) target meth_name args =
  Effect.perform (Invoke_try { target; meth_name; args })

let on_undo (_ : ctx) f = Effect.perform (Register_undo f)

(* Park the transaction until the engine is poked from outside
   ([Engine.poke]) — the interactive counterpart of [call]: a session
   body awaits the client's next command here.  The effect carries no
   payload; the awakened body re-reads whatever mailbox it shares with
   the driver, so a spurious wake-up is harmless. *)
let await (_ : ctx) = Effect.perform Await

let abort msg = raise (Abort msg)

let pp_invocation ppf i =
  Fmt.pf ppf "%a.%s(%a)" Obj_id.pp i.target i.meth_name
    (Fmt.list ~sep:(Fmt.any ", ") Value.pp)
    i.args
