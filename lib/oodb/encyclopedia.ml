(* The encyclopedia of §2 (Fig. 2), as an object database.

   Enc ──▶ BpTree ──▶ Node/Leaf objects ──▶ Page objects
     └───▶ LinkedList ──▶ Item objects ──▶ Page objects

   Every B+ tree node is one object backed by one page object; item texts
   are co-located in the free slots of leaf pages, so a leaf and an item
   can collide on one page exactly as Leaf11 and Item8 collide on Page4712
   in Fig. 7.  Method-level commutativity follows Example 1: inserts of
   different keys commute at the node level even when their page accesses
   conflict; readSeq conflicts with inserts and updates (the phantom);
   route/rearrange commute thanks to the B-link discipline (§2, [15]).

   Mutating node methods read their page in update mode ([readx], a
   write-classified read) to avoid the classic r-r/w-w lock upgrade
   deadlock. *)

open Ooser_core
open Ooser_storage
module Node = Ooser_btree.Node

type t = {
  db : Database.t;
  pool : Buffer_pool.t;
  fanout : int;
  enc : Obj_id.t;
  bptree : Obj_id.t;
  linkedlist : Obj_id.t;
  mutable root : Disk.page_id;
  mutable item_counter : int;
  item_objs : (string, Obj_id.t) Hashtbl.t;  (* schema: item name -> object *)
  mutable items : string list;  (* linked list content, newest first *)
}

let page_obj pid = Obj_id.v (Printf.sprintf "Page%d" pid)

let node_obj node pid =
  match Node.kind node with
  | Node.Leaf -> Obj_id.v (Printf.sprintf "Leaf%d" pid)
  | Node.Internal -> Obj_id.v (Printf.sprintf "Node%d" pid)

let item_obj name = Obj_id.v ("Item" ^ name)

(* -- page objects ------------------------------------------------------------ *)

let page_spec =
  Commutativity.rw ~reads:[ "read" ] ~writes:[ "readx"; "write"; "insert"; "delete" ]

let str_arg = function
  | Value.Str s :: _ -> s
  | _ -> invalid_arg "expected string argument"

let register_page t pid =
  let read _ctx args =
    let slot = match args with [ Value.Int s ] -> s | _ -> 0 in
    Buffer_pool.with_page t.pool pid ~f:(fun page ->
        (Value.str (Page.get_exn page slot), false))
  in
  let write ctx args =
    match args with
    | [ Value.Int slot; Value.Str data ] ->
        Buffer_pool.with_page t.pool pid ~f:(fun page ->
            if Page.is_live page slot then begin
              let old = Page.get_exn page slot in
              Runtime.on_undo ctx (fun () ->
                  Buffer_pool.with_page t.pool pid ~f:(fun page ->
                      (ignore (Page.update page slot old), true)));
              if not (Page.update page slot data) then
                failwith "page write: does not fit";
              (Value.unit, true)
            end
            else begin
              (match Page.insert page data with
              | Some s when s = slot -> ()
              | Some s ->
                  Fmt.failwith "page write: expected slot %d, got %d" slot s
              | None -> failwith "page write: full");
              Runtime.on_undo ctx (fun () ->
                  Buffer_pool.with_page t.pool pid ~f:(fun page ->
                      (ignore (Page.delete page slot), true)));
              (Value.unit, true)
            end)
    | _ -> invalid_arg "page write: bad arguments"
  in
  let insert ctx args =
    let data = str_arg args in
    Buffer_pool.with_page t.pool pid ~f:(fun page ->
        match Page.insert page data with
        | Some slot ->
            Runtime.on_undo ctx (fun () ->
                Buffer_pool.with_page t.pool pid ~f:(fun page ->
                    (ignore (Page.delete page slot), true)));
            (Value.int slot, true)
        | None -> failwith "page insert: full")
  in
  let delete ctx args =
    match args with
    | [ Value.Int slot ] ->
        Buffer_pool.with_page t.pool pid ~f:(fun page ->
            (match Page.get page slot with
            | Some old ->
                Runtime.on_undo ctx (fun () ->
                    Buffer_pool.with_page t.pool pid ~f:(fun page ->
                        (ignore (Page.write_at page slot old), true)))
            | None -> ());
            (Value.bool (Page.delete page slot), true))
    | _ -> invalid_arg "page delete: bad arguments"
  in
  Database.register_or_replace t.db (page_obj pid) ~spec:page_spec
    [
      ("read", Database.primitive read);
      ("readx", Database.primitive read);
      ("write", Database.primitive write);
      ("insert", Database.primitive insert);
      ("delete", Database.primitive delete);
    ]

(* -- node objects ------------------------------------------------------------- *)

(* Keyed commutativity at node level (Example 1): entry operations on
   different keys commute; route is a structure read that commutes with
   everything except nothing—B-links make descents tolerant of concurrent
   splits; rearrange conflicts with rearrange. *)
let node_spec =
  let keyed =
    Commutativity.by_key ~key_of:Commutativity.first_arg
      (Commutativity.predicate ~stable:true ~name:"node-keyed" (fun a b ->
           match (Action.meth a, Action.meth b) with
           | "search", "search" -> true
           | ("search" | "insert" | "delete"), ("search" | "insert" | "delete")
             -> false
           | _ -> false))
  in
  Commutativity.predicate ~stable:true ~name:"btree-node"
    ~vocab:[ "route"; "search"; "insert"; "delete"; "entriesFrom"; "rearrange" ]
    (fun a b ->
      match (Action.meth a, Action.meth b) with
      | "route", _ | _, "route" -> true
      | "entriesFrom", ("entriesFrom" | "search")
      | "search", "entriesFrom" -> true
      | "entriesFrom", _ | _, "entriesFrom" -> false  (* node-level phantom *)
      | "rearrange", "rearrange" -> false
      | "rearrange", _ | _, "rearrange" -> false
      | _ -> Commutativity.test keyed a b)

let encode_value node = Value.str (Node.encode node)

let rec register_node t pid node =
  let self = node_obj node pid in
  let page = page_obj pid in
  let read_node ctx ~update =
    let meth = if update then "readx" else "read" in
    Node.decode (Value.to_str_exn (Runtime.call ctx page meth [ Value.int 0 ]))
  in
  let write_node ctx n =
    ignore (Runtime.call ctx page "write" [ Value.int 0; encode_value n ])
  in
  (* allocate a page + object for a fresh node produced by a split *)
  let materialise ctx n =
    let npid = Buffer_pool.alloc t.pool in
    register_page t npid;
    register_node t npid n;
    (* initial image written through the engine so the write is an action *)
    ignore
      (Runtime.call ctx (page_obj npid) "write" [ Value.int 0; encode_value n ]);
    npid
  in
  let split_result sep npid =
    Value.list [ Value.str sep; Value.int npid ]
  in
  let route ctx args =
    let key = str_arg args in
    let n = read_node ctx ~update:false in
    match Node.kind n with
    | Node.Leaf ->
        if Node.covers n key then Value.pair (Value.str "leaf") (Value.int pid)
        else (
          match Node.right_link n with
          | Some r -> Value.pair (Value.str "right") (Value.int r)
          | None -> Value.pair (Value.str "leaf") (Value.int pid))
    | Node.Internal -> (
        match Node.route n key with
        | Node.Child c -> Value.pair (Value.str "child") (Value.int c)
        | Node.Follow_right r -> Value.pair (Value.str "right") (Value.int r))
  in
  (* B-link discipline: a key at or beyond the node's high key has moved
     to the right sibling (a concurrent split); forward the operation. *)
  let forward ctx n meth args =
    match Node.right_link n with
    | Some rpid ->
        Some (Runtime.call ctx (node_obj n rpid) meth args)
    | None -> None
  in
  let search ctx args =
    let key = str_arg args in
    let n = read_node ctx ~update:false in
    if not (Node.covers n key) then
      match forward ctx n "search" args with
      | Some v -> v
      | None -> Value.pair (Value.str "missing") Value.unit
    else
      match Node.find n key with
      | Some v -> Value.pair (Value.str "found") (Value.str v)
      | None -> Value.pair (Value.str "missing") Value.unit
  in
  let insert ctx args =
    match args with
    | [ Value.Str key; Value.Str v ] -> (
        let n0 = read_node ctx ~update:true in
        if not (Node.covers n0 key) then
          match forward ctx n0 "insert" args with
          | Some r -> r
          | None -> failwith "leaf insert: key beyond rightmost leaf"
        else
          let n = Node.insert n0 key v in
          if Node.size n <= t.fanout then begin
            write_node ctx n;
            Value.unit
          end
          else begin
            let make_left, sep, right = Node.split_leaf n in
            let npid = materialise ctx right in
            write_node ctx (make_left npid);
            split_result sep npid
          end)
    | _ -> invalid_arg "leaf insert: bad arguments"
  in
  let delete ctx args =
    let key = str_arg args in
    let n = read_node ctx ~update:true in
    if not (Node.covers n key) then
      match forward ctx n "delete" args with
      | Some v -> v
      | None -> Value.bool false
    else
      match Node.delete n key with
      | Some n ->
          write_node ctx n;
          Value.bool true
      | None -> Value.bool false
  in
  (* first entry with key strictly greater than the argument; directs the
     caller to the right sibling when this node is exhausted *)
  let entries_from ctx args =
    let key = str_arg args in
    let n = read_node ctx ~update:false in
    match
      List.find_opt (fun (k, _) -> k > key) (Node.entries n)
    with
    | Some (k, v) ->
        Value.pair (Value.str "entry")
          (Value.pair (Value.str k) (Value.str v))
    | None -> (
        match Node.right_link n with
        | Some r -> Value.pair (Value.str "right") (Value.int r)
        | None -> Value.pair (Value.str "end") Value.unit)
  in
  let rearrange ctx args =
    match args with
    | [ Value.Str sep; Value.Int child ] ->
        let n =
          Node.add_separator (read_node ctx ~update:true) ~key:sep ~child
        in
        if Node.size n <= t.fanout then begin
          write_node ctx n;
          Value.unit
        end
        else begin
          let make_left, sep', right = Node.split_internal n in
          let npid = materialise ctx right in
          write_node ctx (make_left npid);
          split_result sep' npid
        end
    | _ -> invalid_arg "rearrange: bad arguments"
  in
  (* open nesting: once a leaf insert committed at its level, its page
     locks are gone and before-images are unsound; compensate logically
     with a delete of the same key.  Structure modifications (rearrange)
     persist, as in real index managers. *)
  let compensate_insert args _result =
    match args with
    | Value.Str key :: _ ->
        Database.Inverse
          { Runtime.target = self; meth_name = "delete"; args = [ Value.str key ] }
    | _ -> Database.Keep_undo
  in
  let forget _ _ = Database.Forget in
  Database.register_or_replace t.db self ~spec:node_spec
    [
      ("route", Database.composite route);
      ("search", Database.composite search);
      ("insert", Database.composite ~compensate:compensate_insert insert);
      ("delete", Database.composite delete);
      ("entriesFrom", Database.composite entries_from);
      ("rearrange", Database.composite ~compensate:forget rearrange);
    ]

(* A leaf may split and change from Leaf<pid> to ... it keeps its page and
   kind, so the object identity is stable; only fresh pages get fresh
   objects. *)

(* -- the BpTree object ---------------------------------------------------------- *)

let bptree_spec =
  let keyed =
    Commutativity.by_key ~key_of:Commutativity.first_arg
      (Commutativity.predicate ~stable:true ~name:"bptree-keyed" (fun a b ->
           match (Action.meth a, Action.meth b) with
           | "search", "search" -> true
           | _ -> false))
  in
  Commutativity.predicate ~stable:true ~name:"bptree"
    ~vocab:[ "search"; "insert"; "delete"; "next"; "grow" ]
    (fun a b ->
      match (Action.meth a, Action.meth b) with
      | "grow", "grow" -> false
      | "grow", _ | _, "grow" -> true  (* B-link root growth tolerance *)
      | "next", ("next" | "search") | "search", "next" -> true
      | "next", _ | _, "next" -> false  (* index-level phantom *)
      | _ -> Commutativity.test keyed a b)

let register_bptree t =
  let node_of pid =
    (* object name depends on the node kind stored on the page *)
    Buffer_pool.with_page t.pool pid ~f:(fun page ->
        (node_obj (Node.decode (Page.get_exn page 0)) pid, false))
  in
  let rec descend ctx key pid path =
    match Runtime.call ctx (node_of pid) "route" [ Value.str key ] with
    | Value.Pair (Value.Str "leaf", _) -> (pid, path)
    | Value.Pair (Value.Str "child", Value.Int c) -> descend ctx key c (pid :: path)
    | Value.Pair (Value.Str "right", Value.Int r) -> descend ctx key r path
    | v -> Fmt.failwith "bad route result %a" Value.pp v
  in
  let search ctx args =
    let key = str_arg args in
    let leaf, _ = descend ctx key t.root [] in
    Runtime.call ctx (node_of leaf) "search" [ Value.str key ]
  in
  let insert ctx args =
    match args with
    | [ Value.Str key; Value.Str v ] ->
        let leaf, path = descend ctx key t.root [] in
        let rec propagate path result =
          match result with
          | Value.Unit -> ()
          | Value.List [ Value.Str sep; Value.Int child ] -> (
              match path with
              | parent :: rest ->
                  propagate rest
                    (Runtime.call ctx (node_of parent) "rearrange"
                       [ Value.str sep; Value.int child ])
              | [] ->
                  (* the root split: a re-entrant call on BpTree itself,
                     broken into a virtual object by the extension (Def. 5) *)
                  ignore
                    (Runtime.call ctx t.bptree "grow"
                       [ Value.str sep; Value.int child ]))
          | v -> Fmt.failwith "bad insert result %a" Value.pp v
        in
        propagate path
          (Runtime.call ctx (node_of leaf) "insert" [ Value.str key; Value.str v ]);
        Value.int leaf
    | _ -> invalid_arg "bptree insert: bad arguments"
  in
  let delete ctx args =
    let key = str_arg args in
    let leaf, _ = descend ctx key t.root [] in
    Runtime.call ctx (node_of leaf) "delete" [ Value.str key ]
  in
  (* the smallest entry with key strictly greater than the argument (or
     >= for the empty-string start): leaf-level successor via B-links *)
  let next ctx args =
    let key = str_arg args in
    let leaf, _ = descend ctx key t.root [] in
    let rec scan pid =
      match Runtime.call ctx (node_of pid) "entriesFrom" [ Value.str key ] with
      | Value.Pair (Value.Str "entry", Value.Pair (Value.Str k, Value.Str v)) ->
          Value.pair (Value.str k) (Value.str v)
      | Value.Pair (Value.Str "right", Value.Int r) -> scan r
      | _ -> Value.pair (Value.str "") Value.unit
    in
    scan leaf
  in
  let grow ctx args =
    match args with
    | [ Value.Str sep; Value.Int child ] ->
        let old_root = t.root in
        let n = Node.internal ~leftmost:old_root [ (sep, string_of_int child) ] in
        let npid = Buffer_pool.alloc t.pool in
        register_page t npid;
        register_node t npid n;
        ignore
          (Runtime.call ctx (page_obj npid) "write" [ Value.int 0; encode_value n ]);
        (* the root pointer change persists on abort (Forget policy):
           the grown root still reaches every key *)
        ignore old_root;
        t.root <- npid;
        Value.unit
    | _ -> invalid_arg "grow: bad arguments"
  in
  (* once BpTree.insert has committed at its level, compensate with a
     full-descent delete (the key may have moved to a split sibling);
     root growth persists (Forget) — the grown root keeps all data *)
  let compensate_insert args _result =
    match args with
    | Value.Str key :: _ ->
        Database.Inverse
          {
            Runtime.target = t.bptree;
            meth_name = "delete";
            args = [ Value.str key ];
          }
    | _ -> Database.Keep_undo
  in
  let forget _ _ = Database.Forget in
  Database.register_or_replace t.db t.bptree ~spec:bptree_spec
    [
      ("search", Database.composite search);
      ("insert", Database.composite ~compensate:compensate_insert insert);
      ("delete", Database.composite delete);
      ("next", Database.composite next);
      ("grow", Database.composite ~compensate:forget grow);
    ]

(* -- items ------------------------------------------------------------------------ *)

let item_spec =
  Commutativity.rw ~reads:[ "read" ] ~writes:[ "create"; "update"; "destroy" ]

let register_item t name ~pid =
  let oid = item_obj name in
  let slot = ref (-1) in
  let create ctx args =
    let text = str_arg args in
    let s =
      Value.to_int_exn (Runtime.call ctx (page_obj pid) "insert" [ Value.str text ])
    in
    let old = !slot in
    Runtime.on_undo ctx (fun () -> slot := old);
    slot := s;
    Value.unit
  in
  let read ctx _args =
    Runtime.call ctx (page_obj pid) "read" [ Value.int !slot ]
  in
  let update ctx args =
    let text = str_arg args in
    let old = Runtime.call ctx (page_obj pid) "read" [ Value.int !slot ] in
    ignore
      (Runtime.call ctx (page_obj pid) "write" [ Value.int !slot; Value.str text ]);
    old
  in
  let destroy ctx _args =
    Runtime.call ctx (page_obj pid) "delete" [ Value.int !slot ]
  in
  let compensate_create _args _result =
    Database.Inverse { Runtime.target = oid; meth_name = "destroy"; args = [] }
  in
  let compensate_update _args old =
    match old with
    | Value.Str _ ->
        Database.Inverse { Runtime.target = oid; meth_name = "update"; args = [ old ] }
    | _ -> Database.Keep_undo
  in
  Database.register_or_replace t.db oid ~spec:item_spec
    [
      ("create", Database.composite ~compensate:compensate_create create);
      ("read", Database.composite read);
      ("update", Database.composite ~compensate:compensate_update update);
      ("destroy", Database.composite destroy);
    ];
  Hashtbl.replace t.item_objs name oid;
  oid

(* -- the linked list of items ------------------------------------------------------ *)

let linkedlist_spec =
  Commutativity.predicate ~stable:true ~name:"linked-list"
    ~vocab:[ "append"; "remove"; "readSeq" ]
    (fun a b ->
      match (Action.meth a, Action.meth b) with
      | "append", "append" -> true  (* Fig. 8: no dependency between inserts *)
      | "readSeq", "readSeq" -> true
      | ("append" | "remove"), "readSeq" | "readSeq", ("append" | "remove") ->
          false
      | "remove", _ | _, "remove" -> false
      | _ -> false)

let register_linkedlist t =
  let append ctx args =
    let name = str_arg args in
    if not (Hashtbl.mem t.item_objs name) then
      invalid_arg "append: unknown item";
    let old = t.items in
    Runtime.on_undo ctx (fun () -> t.items <- old);
    t.items <- name :: t.items;
    Value.unit
  in
  let read_seq ctx _args =
    let items = List.rev t.items in
    Value.list
      (List.map
         (fun name -> Runtime.call ctx (Hashtbl.find t.item_objs name) "read" [])
         items)
  in
  let remove ctx args =
    let name = str_arg args in
    let old = t.items in
    Runtime.on_undo ctx (fun () -> t.items <- old);
    t.items <- List.filter (fun n -> n <> name) t.items;
    Value.unit
  in
  let compensate_append args _result =
    Database.Inverse
      { Runtime.target = t.linkedlist; meth_name = "remove"; args }
  in
  Database.register_or_replace t.db t.linkedlist ~spec:linkedlist_spec
    [
      ("append", Database.primitive ~compensate:compensate_append append);
      ("remove", Database.primitive remove);
      ("readSeq", Database.composite read_seq);
    ]

(* -- the encyclopedia object --------------------------------------------------------- *)

let enc_spec =
  let keyed =
    Commutativity.by_key ~key_of:Commutativity.first_arg
      (Commutativity.predicate ~stable:true ~name:"enc-keyed" (fun a b ->
           match (Action.meth a, Action.meth b) with
           | "search", "search" -> true
           | _ -> false))
  in
  Commutativity.predicate ~stable:true ~name:"encyclopedia"
    ~vocab:[ "insert"; "search"; "update"; "delete"; "range"; "readSeq" ]
    (fun a b ->
      match (Action.meth a, Action.meth b) with
      | ("readSeq" | "range"), ("readSeq" | "range") -> true
      | ("readSeq" | "range"), "search" | "search", ("readSeq" | "range") ->
          true
      | ("readSeq" | "range"), _ | _, ("readSeq" | "range") ->
          false  (* the phantom problem *)
      | _ -> Commutativity.test keyed a b)

let register_enc t =
  let insert ctx args =
    match args with
    | [ Value.Str key; Value.Str text ] ->
        t.item_counter <- t.item_counter + 1;
        let n = t.item_counter in
        let item_name = Printf.sprintf "%d" n in
        let leaf_pid =
          Value.to_int_exn
            (Runtime.call ctx t.bptree "insert"
               [ Value.str key; Value.str item_name ])
        in
        let oid = register_item t item_name ~pid:leaf_pid in
        ignore (Runtime.call ctx oid "create" [ Value.str text ]);
        ignore (Runtime.call ctx t.linkedlist "append" [ Value.str item_name ]);
        Value.unit
    | _ -> invalid_arg "Enc.insert: bad arguments"
  in
  let find_item ctx key =
    match Runtime.call ctx t.bptree "search" [ Value.str key ] with
    | Value.Pair (Value.Str "found", Value.Str item_name) ->
        Hashtbl.find_opt t.item_objs item_name
    | _ -> None
  in
  let search ctx args =
    let key = str_arg args in
    match find_item ctx key with
    | Some oid -> Value.pair (Value.str "found") (Runtime.call ctx oid "read" [])
    | None -> Value.pair (Value.str "missing") Value.unit
  in
  let update ctx args =
    match args with
    | [ Value.Str key; Value.Str text ] -> (
        match find_item ctx key with
        | Some oid ->
            ignore (Runtime.call ctx oid "update" [ Value.str text ]);
            Value.bool true
        | None -> Value.bool false)
    | _ -> invalid_arg "Enc.update: bad arguments"
  in
  let read_seq ctx _args = Runtime.call ctx t.linkedlist "readSeq" [] in
  let delete ctx args =
    let key = match args with Value.Str k :: _ -> k | _ -> invalid_arg "key" in
    match Runtime.call ctx t.bptree "search" [ Value.str key ] with
    | Value.Pair (Value.Str "found", Value.Str item_name) ->
        ignore (Runtime.call ctx t.bptree "delete" [ Value.str key ]);
        (match Hashtbl.find_opt t.item_objs item_name with
        | Some oid -> ignore (Runtime.call ctx oid "destroy" [])
        | None -> ());
        ignore (Runtime.call ctx t.linkedlist "remove" [ Value.str item_name ]);
        Value.bool true
    | _ -> Value.bool false
  in
  (* range scan: walk the leaf level through the index, then read the
     items — a predicate read, conflicting with writers at the Enc level *)
  let range ctx args =
    match args with
    | [ Value.Str lo; Value.Str hi ] ->
        let entry_of k item_name =
          let text =
            match Hashtbl.find_opt t.item_objs item_name with
            | Some oid -> Runtime.call ctx oid "read" []
            | None -> Value.unit
          in
          Value.pair (Value.str k) text
        in
        let rec collect key acc =
          match Runtime.call ctx t.bptree "next" [ Value.str key ] with
          | Value.Pair (Value.Str k, Value.Str item_name)
            when k <> "" && k < hi ->
              collect k (entry_of k item_name :: acc)
          | _ -> List.rev acc
        in
        (* the lower bound is inclusive: check it exactly first *)
        let first =
          if lo < hi then
            match Runtime.call ctx t.bptree "search" [ Value.str lo ] with
            | Value.Pair (Value.Str "found", Value.Str item_name) ->
                [ entry_of lo item_name ]
            | _ -> []
          else []
        in
        Value.list (first @ collect lo [])
    | _ -> invalid_arg "Enc.range: bad arguments"
  in
  Database.register_or_replace t.db t.enc ~spec:enc_spec
    [
      ("insert", Database.composite insert);
      ("search", Database.composite search);
      ("update", Database.composite update);
      ("delete", Database.composite delete);
      ("range", Database.composite range);
      ("readSeq", Database.composite read_seq);
    ]

(* -- construction --------------------------------------------------------------------- *)

let create ?(name = "Enc") ?(fanout = 4) ?(page_size = 4096)
    ?(pool_capacity = 256) db =
  let disk = Disk.create ~page_size () in
  let pool = Buffer_pool.create ~capacity:pool_capacity disk in
  let t =
    {
      db;
      pool;
      fanout;
      enc = Obj_id.v name;
      bptree = Obj_id.v (name ^ ".BpTree");
      linkedlist = Obj_id.v (name ^ ".LinkedList");
      root = 0;
      item_counter = 0;
      item_objs = Hashtbl.create 64;
      items = [];
    }
  in
  (* the initial empty root leaf, written directly (setup, no txn) *)
  let root_pid = Buffer_pool.alloc pool in
  Buffer_pool.with_page pool root_pid ~f:(fun page ->
      (ignore (Page.insert page (Node.encode (Node.leaf []))), true));
  t.root <- root_pid;
  register_page t root_pid;
  register_node t root_pid (Node.leaf []);
  register_bptree t;
  register_linkedlist t;
  register_enc t;
  t

let enc_object t = t.enc
let bptree_object t = t.bptree
let linkedlist_object t = t.linkedlist
let pool t = t.pool
let root_page t = t.root
let item_count t = t.item_counter

(* -- transaction body helpers ------------------------------------------------------------ *)

let insert t ctx ~key ~text =
  ignore (Runtime.call ctx t.enc "insert" [ Value.str key; Value.str text ])

let search t ctx ~key =
  match Runtime.call ctx t.enc "search" [ Value.str key ] with
  | Value.Pair (Value.Str "found", Value.Str text) -> Some text
  | _ -> None

let update t ctx ~key ~text =
  Value.to_bool_exn
    (Runtime.call ctx t.enc "update" [ Value.str key; Value.str text ])

let read_seq t ctx =
  match Runtime.call ctx t.enc "readSeq" [] with
  | Value.List items -> List.filter_map Value.to_str items
  | _ -> []

let delete t ctx ~key =
  Value.to_bool_exn (Runtime.call ctx t.enc "delete" [ Value.str key ])

let range t ctx ~lo ~hi =
  match Runtime.call ctx t.enc "range" [ Value.str lo; Value.str hi ] with
  | Value.List pairs ->
      List.filter_map
        (fun p ->
          match p with
          | Value.Pair (Value.Str k, Value.Str v) -> Some (k, v)
          | _ -> None)
        pairs
  | _ -> []

(* -- structure statistics (Fig. 2) ----------------------------------------------------------- *)

type structure = {
  height : int;
  internal_nodes : int;
  leaf_nodes : int;
  keys : int;
  items : int;
  pages : int;
}

let structure t =
  let rec read_node pid =
    Buffer_pool.with_page t.pool pid ~f:(fun page ->
        (Node.decode (Page.get_exn page 0), false))
  and walk pid (h, internals, leaves, keys) =
    let n = read_node pid in
    match Node.kind n with
    | Node.Leaf -> (max h 1, internals, leaves + 1, keys + Node.size n)
    | Node.Internal ->
        let children =
          (match Node.leftmost n with Some c -> [ c ] | None -> [])
          @ List.map (fun (_, c) -> int_of_string c) (Node.entries n)
        in
        List.fold_left
          (fun (h', i, l, k) c ->
            let hc, i', l', k' = walk c (0, i, l, k) in
            (max h' (hc + 1), i', l', k'))
          (h, internals + 1, leaves, keys)
          children
  in
  let height, internal_nodes, leaf_nodes, keys = walk t.root (0, 0, 0, 0) in
  {
    height;
    internal_nodes;
    leaf_nodes;
    keys;
    items = t.item_counter;
    pages = Disk.page_count (Buffer_pool.disk t.pool);
  }

let pp_structure ppf s =
  Fmt.pf ppf
    "height=%d internal=%d leaves=%d keys=%d items=%d pages=%d" s.height
    s.internal_nodes s.leaf_nodes s.keys s.items s.pages

(* Pages, nodes and items are registered as they are allocated, so a
   database rebuilt offline (for certifying a recorded trace) does not
   know the ones a live run created.  Their specs depend only on the
   name family, never on the instance, so resolve by name. *)
let offline_spec oid =
  let name = Obj_id.name (Obj_id.original oid) in
  let has p = String.starts_with ~prefix:p name in
  if has "Page" then Some page_spec
  else if has "Leaf" || has "Node" then Some node_spec
  else if has "Item" then Some item_spec
  else None
