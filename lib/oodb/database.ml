(* Object registry: the "homogeneous set of objects" of Def. 4.

   Every object is registered with its commutativity specification and its
   method table.  Methods are closures over the object's state —
   encapsulation is enforced by the engine, which is the only caller of
   method implementations. *)

open Ooser_core

(* What happens to this action's effects when the surrounding transaction
   aborts AFTER the action committed at its level (open nesting):
   - [Keep_undo]: replay the low-level undo closures of its subtree —
     only sound while the subtree's locks are still held;
   - [Forget]: the effects persist (structure modifications such as
     B-tree splits, which are never rolled back);
   - [Inverse inv]: run a compensating invocation (the logical inverse),
     sound because the action's own semantic lock is still held by its
     caller. *)
type compensation =
  | Keep_undo
  | Forget
  | Inverse of Runtime.invocation

type meth = {
  kind : [ `Primitive | `Composite ];
  run : Runtime.ctx -> Value.t list -> Value.t;
  compensate : (Value.t list -> Value.t -> compensation) option;
}

let primitive ?compensate run = { kind = `Primitive; run; compensate }
let composite ?compensate run = { kind = `Composite; run; compensate }

type obj = {
  spec : Commutativity.spec;
  methods : (string * meth) list;
}

type t = { mutable objects : obj Obj_id.Map.t }

let create () = { objects = Obj_id.Map.empty }

let register t oid ~spec methods =
  if Obj_id.Map.mem oid t.objects then
    invalid_arg (Fmt.str "Database.register: %a already registered" Obj_id.pp oid);
  t.objects <- Obj_id.Map.add oid { spec; methods } t.objects

let register_or_replace t oid ~spec methods =
  t.objects <- Obj_id.Map.add oid { spec; methods } t.objects

let mem t oid = Obj_id.Map.mem oid t.objects

let objects t = List.map fst (Obj_id.Map.bindings t.objects)

let methods t oid =
  match Obj_id.Map.find_opt oid t.objects with
  | None -> []
  | Some o -> List.map fst o.methods

let spec t oid =
  Option.map (fun o -> o.spec) (Obj_id.Map.find_opt oid t.objects)

let compensated_methods t oid =
  match Obj_id.Map.find_opt oid t.objects with
  | None -> []
  | Some o ->
      List.filter_map
        (fun (name, m) -> if Option.is_some m.compensate then Some name else None)
        o.methods

let find_meth t oid name =
  match Obj_id.Map.find_opt oid t.objects with
  | None -> Error (Fmt.str "unknown object %a" Obj_id.pp oid)
  | Some o -> (
      match List.assoc_opt name o.methods with
      | Some m -> Ok m
      | None -> Error (Fmt.str "object %a has no method %s" Obj_id.pp oid name))

let spec_registry ?(default = Commutativity.all_conflict) t =
  Commutativity.registry
    ~known:(fun oid -> Obj_id.Map.mem oid t.objects)
    (fun oid ->
      match Obj_id.Map.find_opt oid t.objects with
      | Some o -> o.spec
      | None -> default)
