(** Effects connecting method bodies to the execution engine.

    Method implementations are plain OCaml functions; every access to
    another encapsulated object goes through {!call}, which performs an
    [Invoke] effect handled by the engine — the engine numbers the action,
    asks the concurrency control protocol for access, runs the target
    method (possibly after blocking the calling fiber) and resumes the
    caller with the result. *)

open Ooser_core

type invocation = {
  target : Obj_id.t;
  meth_name : string;
  args : Value.t list;
}

type ctx = { top : int }
(** Capability to issue calls, provided by the engine to method bodies
    and transaction bodies. *)

type _ Effect.t +=
  | Invoke : invocation -> Value.t Effect.t
  | Invoke_par : invocation list -> Value.t list Effect.t
  | Invoke_try : invocation -> (Value.t, string) result Effect.t
  | Register_undo : (unit -> unit) -> unit Effect.t
  | Await : unit Effect.t

exception Abort of string
(** Transaction-level abort requested by user code or the system. *)

exception Abandoned
(** Used internally to discard the fibers of an aborted transaction;
    method bodies must not catch it. *)

val call : ctx -> Obj_id.t -> string -> Value.t list -> Value.t
(** Send a message (Def. 1).  Only valid under the engine's handler. *)

val call_par : ctx -> invocation list -> Value.t list
(** Send several messages that may execute in parallel — the paper's
    intra-transaction parallelism (Def. 9).  Each call runs in a fresh
    process of the same transaction, so the calls can genuinely conflict
    with one another; the results arrive in invocation order. *)

val invocation : Obj_id.t -> string -> Value.t list -> invocation

val try_call :
  ctx -> Obj_id.t -> string -> Value.t list -> (Value.t, string) result
(** Partial rollback (the heart of nested transactions): run the call as
    a subtransaction that may fail alone — on abort or any failure inside
    it, its effects are undone and [Error reason] is returned while the
    surrounding transaction continues. *)

val on_undo : ctx -> (unit -> unit) -> unit
(** Primitive methods register a closure restoring the state they are
    about to change; the engine runs it if the transaction aborts. *)

val abort : string -> 'a
(** Abort the current transaction. *)

val await : ctx -> unit
(** Park the transaction until the engine is poked from outside
    ({!Engine.poke}) — the interactive counterpart of {!call}: a network
    session body awaits the client's next command here.  Wake-ups carry
    no payload; the body re-reads the mailbox it shares with its driver,
    so spurious wake-ups are harmless.  Only valid under {!Engine.pump}
    driving; inside a batch {!Engine.run} nothing ever pokes, and an
    awaiting transaction simply never commits. *)

val pp_invocation : Format.formatter -> invocation -> unit
