(** The encyclopedia of §2 (Fig. 2) as an object database.

    {v
    Enc ──▶ BpTree ──▶ Node/Leaf objects ──▶ Page objects
      └───▶ LinkedList ──▶ Item objects ──▶ Page objects
    v}

    Every B+ tree node is one object backed by one page object; item texts
    are co-located in the free slots of leaf pages, so a leaf and an item
    can collide on one page exactly as Leaf11 and Item8 collide on
    Page4712 in Fig. 7.  Method-level commutativity follows Example 1:
    inserts of different keys commute at the node level even when their
    page accesses conflict; readSeq conflicts with inserts and updates
    (the phantom); route/rearrange commute thanks to the B-link
    discipline; a root split re-enters the BpTree object, exercising the
    virtual extension (Def. 5). *)

open Ooser_core
open Ooser_storage

type t

val create :
  ?name:string ->
  ?fanout:int ->
  ?page_size:int ->
  ?pool_capacity:int ->
  Database.t ->
  t
(** Register the encyclopedia schema (Enc, BpTree, LinkedList, initial
    root leaf and its page) into the database.  [fanout] is the maximal
    number of keys per node — the "keys per page" knob of experiments E1
    and E4 (default 4). *)

val enc_object : t -> Obj_id.t
val bptree_object : t -> Obj_id.t
val linkedlist_object : t -> Obj_id.t
val pool : t -> Buffer_pool.t
val root_page : t -> Disk.page_id
val item_count : t -> int

val page_obj : int -> Obj_id.t
(** ["Page<pid>"]. *)

val item_obj : string -> Obj_id.t
(** ["Item<name>"]. *)

(** {2 Transaction body helpers}

    Thin wrappers around {!Runtime.call} on the Enc object, to be used
    inside transaction bodies run by {!Engine.run}. *)

val insert : t -> Runtime.ctx -> key:string -> text:string -> unit
val search : t -> Runtime.ctx -> key:string -> string option
val update : t -> Runtime.ctx -> key:string -> text:string -> bool

val delete : t -> Runtime.ctx -> key:string -> bool
(** Remove the key from the index, destroy the item, unlink it from the
    list; [false] when absent. *)

val range : t -> Runtime.ctx -> lo:string -> hi:string -> (string * string) list
(** Entries with [lo <= key < hi] with their texts, in key order — a
    predicate read that conflicts with every writer at the Enc level. *)

val read_seq : t -> Runtime.ctx -> string list

(** {2 Structure statistics (Fig. 2)} *)

type structure = {
  height : int;
  internal_nodes : int;
  leaf_nodes : int;
  keys : int;
  items : int;
  pages : int;
}

val structure : t -> structure
val pp_structure : Format.formatter -> structure -> unit

val offline_spec : Ooser_core.Ids.Obj_id.t -> Ooser_core.Commutativity.spec option
(** Resolve dynamically-registered object families (pages, B+ tree
    nodes/leaves, items) by name, for certifying recorded traces
    against a rebuilt database that never allocated them.  [None] for
    names outside the encyclopedia's dynamic families. *)
