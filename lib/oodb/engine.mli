(** The execution engine: runs top-level transactions against the object
    database under a concurrency control protocol and records the
    resulting history for the serializability checkers.

    Each transaction runs as a tree of fibers (OCaml 5 effects).  A method
    body performing {!Runtime.call} yields control to the engine, which
    numbers the new action (the hierarchical numbering of Def. 2 falls out
    of the frame stack), asks the protocol for access, and either starts
    the target method or parks the transaction.  Interleaving decisions
    are taken exactly at invocation boundaries — the paper's action
    granularity.

    Aborts unwind the frame stack, run the undo log (primitive undo
    closures, or compensating invocations once a subtransaction has
    committed at its level — the open nesting rule), and optionally
    restart the transaction. *)

open Ooser_core
module Protocol = Ooser_cc.Protocol
module Rng = Ooser_sim.Rng

(** What a scheduler hook sees of one runnable unit.  [u_boundary] is
    true exactly when picking the unit starts a transaction body or
    submits a fresh invocation to the protocol — the invocation
    boundaries where interleaving decisions are observable (the paper's
    action granularity); [u_obj]/[u_meth] name the pending invocation at
    such a boundary ([""] otherwise).  [u_task] is the engine-internal
    task id ([-1] for a not-yet-started body) — it distinguishes the
    parallel branches of one transaction. *)
type unit_label = {
  u_top : int;
  u_task : int;
  u_boundary : bool;
  u_obj : string;
  u_meth : string;
}

(** How the scheduler picks the next transaction to advance.
    [Scripted] steps the named transaction when it is runnable (falling
    back to round-robin otherwise), consuming one entry per step — for
    reproducing a specific interleaving in tests.  [Controlled]
    delegates {e every} pick to the hook, which returns an index into
    the given labels (out-of-range falls back to round-robin): a run
    under [Controlled] is a pure function of the hook's answers, which
    is what makes model-checking runs replayable choice sequences. *)
type strategy =
  | Round_robin
  | Random_pick of Rng.t
  | Scripted of int list ref
  | Controlled of (unit_label list -> int)

(** Deadlock handling: [Detect] aborts the youngest member of a
    waits-for cycle; [Wound_wait] prevents cycles — older requesters
    abort younger lock holders, younger requesters wait; [Wait_die] is
    the symmetric prevention — older requesters wait, younger ones abort
    themselves and retry. *)
type deadlock_policy = Detect | Wound_wait | Wait_die

type config = {
  protocol : Protocol.t;
  strategy : strategy;
  max_steps : int;  (** engine-wide step budget *)
  max_restarts : int;  (** per-transaction restart budget after aborts *)
  sys : Obj_id.t;  (** the system object (Def. 4) *)
  deadlock : deadlock_policy;
  certify : bool;
      (** optimistic commit-time validation: a transaction commits only
          if the history of committed transactions plus itself is
          oo-serializable, else it is rolled back and retried.  The
          paper's §6 direction — pair it with {!Protocol.unlocked}.

          Because execution is lock-free, a transaction may read state
          written by a concurrent uncommitted transaction; rollbacks must
          therefore use LOGICAL undo (inverse deltas, compensations) —
          before-image restores can clobber a neighbour's update.  The
          escrow/counted ADTs of {!Adt_objects} satisfy this.

          Certification normally runs the {!Ooser_core.Incremental}
          certifier, which appends only the committing transaction's
          dependency edges under online cycle detection; the engine falls
          back to the from-scratch {!Serializability.check} oracle —
          permanently, for the rest of the run — as soon as any
          registered commutativity spec is unstable (state-reading
          decisions, e.g. escrow), since cached conflict decisions would
          then be unsound.  Counters ["cert-incremental"],
          ["cert-oracle"] and ["cert-fallbacks"] record which path each
          commit took. *)
  certify_oracle : bool;
      (** force the from-scratch checker even where the incremental
          certifier applies — the debugging / cross-checking mode *)
  now : unit -> float;
      (** clock for transaction deadlines; the default never advances,
          so deadlines are inert unless a real clock (e.g.
          [Unix.gettimeofday]) is injected — the library itself stays
          clock-free for deterministic batch runs *)
  ext_memo_max : int;
      (** longest committed-prefix order (in primitive actions) the
          oracle-certification extension memo may retain; longer
          prefixes are certified without memoisation, so a long-lived
          engine cannot pin an arbitrarily large extension in memory *)
  next_stamp : (unit -> int) option;
      (** source of execution stamps for recorded primitives; [None]
          (the default) uses the engine's own monotone counter.  Shard
          engines share one atomic counter so their committed orders
          merge into a single global execution order by stamp. *)
}

val default_config : Protocol.t -> config
(** Round-robin, 1M steps, 20 restarts, system object ["S"], no
    certification. *)

val trace : bool ref
(** Debug switch: print waits-for graphs and deadlock victims to
    stderr. *)

type outcome = {
  history : History.t;
      (** the committed execution: call trees + primitive order *)
  committed : int list;
  aborted : (int * string) list;  (** permanently failed, with reason *)
  results : (int * Value.t) list;
  steps : int;
  metrics : (string * int) list;
      (** engine counters plus protocol counters under ["lock."] *)
  latencies : (int * int) list;
      (** per committed transaction: scheduler steps from the final
          attempt's start to commit (response time) *)
}

val run :
  ?config:config ->
  ?atlas:Commutativity.table ->
  ?journal:Ooser_recovery.Oplog.t ->
  Database.t ->
  protocol:Protocol.t ->
  (int * string * (Runtime.ctx -> Value.t)) list ->
  outcome
(** [run db ~protocol txns] executes the given top-level transactions
    [(id, name, body)] to completion (commit, permanent abort, or step
    budget), resolving deadlocks by aborting the youngest transaction in
    the waits-for cycle.  [atlas] preloads a precomputed conflict table
    (see {!preload_atlas}) before the first step; [journal] attaches a
    durable operation log (see {!set_journal}). *)

(** {1 Dynamic driving}

    The network server grows the transaction set while the engine runs:
    sessions {!submit} interactive transactions whose bodies park on
    {!Runtime.await} between client commands; the server {!poke}s them
    when a command arrives and {!pump}s the engine to quiescence after
    every external event. *)

type t
(** A live engine, created by {!create} and driven by {!pump}. *)

val create :
  ?config:config ->
  Database.t ->
  protocol:Protocol.t ->
  (int * string * (Runtime.ctx -> Value.t)) list ->
  t
(** An engine over the given initial transactions (usually [[]] for a
    server) that has not taken any steps yet. *)

val submit :
  t -> top:int -> name:string -> ?deadline:float -> (Runtime.ctx -> Value.t) -> unit
(** Add a top-level transaction to a live engine.  [top] must be fresh
    (unique per engine, and increasing submission order is what the
    wound-wait/wait-die age comparisons go by).  [deadline] is an
    absolute [config.now] time; see {!set_deadline}. *)

val pump : t -> int
(** Step until quiescent: nothing runnable, no deadlock cycle to break —
    every live task either parked on {!Runtime.await} or blocked on a
    lock whose release needs external input.  Unlike the batch loop,
    blocked-without-cycle tasks are NOT treated as stalled while some
    task awaits a client.  Bounded by [config.max_steps] steps per call
    as a safety valve.  Returns the number of steps taken. *)

val poke : t -> int -> bool
(** Wake the transaction's task parked on {!Runtime.await}, if any;
    false when nothing was awaiting (the transaction may be replaying an
    earlier attempt — the caller's mailbox must make the command visible
    to the body regardless). *)

val abort_top : t -> top:int -> string -> bool
(** Abort a running transaction from outside (client ABORT frame,
    session drop, deadline): runs the normal compensation phase,
    releases its locks, no retry.  False if it was not running. *)

val set_deadline : t -> top:int -> float option -> unit
(** Set or clear the transaction's deadline, an absolute time on the
    [config.now] clock; {!check_deadlines} (called on every {!pump}
    iteration) aborts expired transactions. *)

val deadline_of : t -> top:int -> float option
(** The transaction's current deadline while it is running — lets a
    driver size its poll timeout so expiry fires on time. *)

val check_deadlines : t -> unit
(** Abort every running transaction whose deadline lies in the past.
    {!pump} calls this on each iteration; exposed for drivers that want
    deadline enforcement while the engine is otherwise idle. *)

val txn_state :
  t -> int -> [ `Running | `Committed of Value.t | `Aborted of string | `Unknown ]

val retire : t -> top:int -> bool
(** Forget a finished (committed or aborted) transaction so the live set
    stays small in a long-running server.  Its committed work remains
    part of the history and of certification.  False while the
    transaction is still running (or unknown). *)

val outcome_of : t -> outcome
(** Snapshot of the committed/aborted sets, counters and history so
    far — includes only transactions not yet {!retire}d. *)

val preload_atlas : t -> Commutativity.table -> unit
(** Install a statically precomputed conflict table (the atlas of
    {!Ooser_analysis.Atlas}) into the engine's commutativity caches —
    both the incremental certifier's and the lock table's — before any
    step runs.  Covered (stable, method-only) class pairs are then
    answered by a dense table lookup instead of a runtime spec probe;
    uncovered pairs fall back to the memoised probe path unchanged, so
    preloading never alters an engine's decisions, only how they are
    computed.  The ["atlas-cells"] counter records the table size. *)

val atlas_hits : t -> int
(** Number of conflict decisions answered from the preloaded atlas
    (certifier + lock table), for parity/benchmark reporting. *)

val final_history : t -> History.t
(** The history of every committed transaction, including retired
    ones. *)

val observed_history : t -> History.t
(** {!final_history} extended with the partial (completed-subtree) call
    trees of still-running transactions.  A shard's 2PC prepare feeds
    this to [Schedule.compute] so that dependency edges involving
    uncommitted neighbours are reported to the coordinator too.
    Running transactions with no completed root-level call yet are
    omitted. *)

val stamped_order : t -> (Ids.Action_id.t * int) list
(** The committed execution order with stamps, final attempts only, in
    log order.  With a shared {!type-config}[.next_stamp] counter,
    sorting several shards' stamped orders merges them into one global
    execution order. *)

val committed_trees : t -> (int * Call_tree.t) list
(** Committed call trees keyed by top (final attempts), sorted by top —
    raw material for a dispatcher-side merged history. *)

val validation_frontier : t -> int
(** The certifier-side validation frontier: the smallest execution stamp
    recorded by any still-running transaction's current attempt
    ([max_int] when none has recorded one).  A committed transaction
    whose stamps all lie below the frontier can no longer become the
    target of a new dependency edge — edges always point from the
    earlier-stamped action of a conflicting pair to the later one — so a
    sharded certify-mode vote may window its history to transactions at
    or above the watermark of past frontiers instead of shipping the
    full history. *)

val set_trace_sink :
  t ->
  (top:int -> tree:Call_tree.t -> prims:(Ids.Action_id.t * int) list -> unit)
  option ->
  unit
(** Install (or clear) a history-trace recorder: called at every
    top-level commit with exactly the inputs the incremental certifier
    consumes — the committing attempt's call tree and its executed
    primitives with global execution stamps.  The sink must not raise;
    it runs on the engine's thread inside the commit path. *)

val pin : t -> top:int -> unit
(** Mark a running transaction as a prepared 2PC participant: it keeps
    its locks but wound-wait and deadline expiry no longer abort it;
    attempted wounds are parked for {!take_wounded_pinned}. *)

val unpin : t -> top:int -> unit

val take_wounded_pinned : t -> int list
(** Drain the tops of pinned transactions that an older requester tried
    to wound since the last call; the shard loop escalates these to the
    coordinator, which may abort the global transaction to break a
    cross-shard deadlock. *)

val txn_quiescent : t -> top:int -> bool
(** After a {!pump}: the transaction is running, not compensating, and
    every task is parked on [Runtime.await] — its command log is fully
    replayed, so a 2PC vote taken now covers all of its calls. *)

val counters : t -> Ooser_sim.Stats.Counter.t
val steps : t -> int

(** {1 Durability}

    With a journal attached the engine writes a logical, method-level
    operation log: BEGIN at each attempt start, CALL (with the
    registered compensation) when a root-level call completes — the
    moment it commits at its level — SUBCOMMIT markers for deeper
    composite subtransactions, and COMMIT (forced) / ABORT at the top
    decisions.  {!recover} replays such a log through real engine
    dispatch: redo repeats history (every logged call, in log order),
    then the transactions in flight at the crash are aborted through the
    normal compensation phase — multi-level undo in reverse inheritance
    order, using the compensations re-registered during replay.
    Counters: ["log-appends"], ["log-forces"], ["recoveries"],
    ["recovered-winners"], ["recovered-aborts"], ["recovered-losers"],
    ["recovered-snapshot"], ["recovery-replay-failures"]. *)

val set_journal : t -> Ooser_recovery.Oplog.t option -> unit
(** Attach (or detach) the operation journal.  Attach before the first
    submission; the compensation phase is never journaled. *)

val journal : t -> Ooser_recovery.Oplog.t option

type recovery_report = {
  plan : Ooser_recovery.Recovery.plan;
  replayed_calls : int;
  skipped_attempts : int;  (** deduped against the snapshot *)
  replay_failures : int;
      (** replayed calls that failed where the original succeeded —
          0 on any log the engine itself wrote *)
  rec_winners : (int * int) list;  (** (top, attempt), commit order *)
  undone : (int * int) list;  (** losers compensated away *)
  recertified : bool;
      (** the recovered committed history passes
          {!Ooser_core.Serializability.check} (true when [recertify]
          was disabled) *)
}

val recover :
  ?config:config ->
  ?snapshot:Ooser_recovery.Snapshot.t ->
  ?crash:Ooser_recovery.Crash.t ->
  ?recertify:bool ->
  Database.t ->
  protocol:Protocol.t ->
  Ooser_recovery.Oplog.t ->
  t * recovery_report
(** [recover db ~protocol log] rebuilds a live engine from the stable
    prefix of [log] (restoring [snapshot] first, and skipping logged
    attempts the snapshot already covers — idempotence by
    (top, attempt) dedup).  [db] must be the same freshly-built database
    the original engine started from.  The returned engine has no
    journal attached and holds no locks for any undone loser; attach a
    fresh journal with {!set_journal} to resume journaling.  [crash]
    arms the [Mid_undo] fault-injection site.
    @raise Ooser_recovery.Crash.Crashed when the armed site fires. *)
