(** The execution engine: runs top-level transactions against the object
    database under a concurrency control protocol and records the
    resulting history for the serializability checkers.

    Each transaction runs as a tree of fibers (OCaml 5 effects).  A method
    body performing {!Runtime.call} yields control to the engine, which
    numbers the new action (the hierarchical numbering of Def. 2 falls out
    of the frame stack), asks the protocol for access, and either starts
    the target method or parks the transaction.  Interleaving decisions
    are taken exactly at invocation boundaries — the paper's action
    granularity.

    Aborts unwind the frame stack, run the undo log (primitive undo
    closures, or compensating invocations once a subtransaction has
    committed at its level — the open nesting rule), and optionally
    restart the transaction. *)

open Ooser_core
module Protocol = Ooser_cc.Protocol
module Rng = Ooser_sim.Rng

(** How the scheduler picks the next transaction to advance.
    [Scripted] steps the named transaction when it is runnable (falling
    back to round-robin otherwise), consuming one entry per step — for
    reproducing a specific interleaving in tests. *)
type strategy =
  | Round_robin
  | Random_pick of Rng.t
  | Scripted of int list ref

(** Deadlock handling: [Detect] aborts the youngest member of a
    waits-for cycle; [Wound_wait] prevents cycles — older requesters
    abort younger lock holders, younger requesters wait; [Wait_die] is
    the symmetric prevention — older requesters wait, younger ones abort
    themselves and retry. *)
type deadlock_policy = Detect | Wound_wait | Wait_die

type config = {
  protocol : Protocol.t;
  strategy : strategy;
  max_steps : int;  (** engine-wide step budget *)
  max_restarts : int;  (** per-transaction restart budget after aborts *)
  sys : Obj_id.t;  (** the system object (Def. 4) *)
  deadlock : deadlock_policy;
  certify : bool;
      (** optimistic commit-time validation: a transaction commits only
          if the history of committed transactions plus itself is
          oo-serializable, else it is rolled back and retried.  The
          paper's §6 direction — pair it with {!Protocol.unlocked}.

          Because execution is lock-free, a transaction may read state
          written by a concurrent uncommitted transaction; rollbacks must
          therefore use LOGICAL undo (inverse deltas, compensations) —
          before-image restores can clobber a neighbour's update.  The
          escrow/counted ADTs of {!Adt_objects} satisfy this.

          Certification normally runs the {!Ooser_core.Incremental}
          certifier, which appends only the committing transaction's
          dependency edges under online cycle detection; the engine falls
          back to the from-scratch {!Serializability.check} oracle —
          permanently, for the rest of the run — as soon as any
          registered commutativity spec is unstable (state-reading
          decisions, e.g. escrow), since cached conflict decisions would
          then be unsound.  Counters ["cert-incremental"],
          ["cert-oracle"] and ["cert-fallbacks"] record which path each
          commit took. *)
  certify_oracle : bool;
      (** force the from-scratch checker even where the incremental
          certifier applies — the debugging / cross-checking mode *)
}

val default_config : Protocol.t -> config
(** Round-robin, 1M steps, 20 restarts, system object ["S"], no
    certification. *)

val trace : bool ref
(** Debug switch: print waits-for graphs and deadlock victims to
    stderr. *)

type outcome = {
  history : History.t;
      (** the committed execution: call trees + primitive order *)
  committed : int list;
  aborted : (int * string) list;  (** permanently failed, with reason *)
  results : (int * Value.t) list;
  steps : int;
  metrics : (string * int) list;
      (** engine counters plus protocol counters under ["lock."] *)
  latencies : (int * int) list;
      (** per committed transaction: scheduler steps from the final
          attempt's start to commit (response time) *)
}

val run :
  ?config:config ->
  Database.t ->
  protocol:Protocol.t ->
  (int * string * (Runtime.ctx -> Value.t)) list ->
  outcome
(** [run db ~protocol txns] executes the given top-level transactions
    [(id, name, body)] to completion (commit, permanent abort, or step
    budget), resolving deadlocks by aborting the youngest transaction in
    the waits-for cycle. *)
