(* The execution engine: runs top-level transactions against the object
   database under a concurrency control protocol, and records the
   resulting history for the serializability checkers.

   Each transaction runs as a set of TASKS.  A task is a linear stack of
   frames executing fibers (OCaml 5 effects); [Runtime.call] yields an
   [Invoke] effect handled here: the engine numbers the new action
   (Def. 2's hierarchical numbering falls out of the frame stack), asks
   the protocol for access, and either pushes a frame running the target
   method or parks the task on the lock.  [Runtime.call_par] forks one
   task per invocation — the paper's intra-transaction parallelism: each
   branch gets a fresh process identifier (Def. 9), the forked children
   carry no mutual precedence (their action set's precedence relation is
   not total), and the parent joins when all branches complete.

   Interleaving decisions are taken exactly at invocation boundaries —
   the paper's action granularity.

   Aborts unwind every task of the transaction, run the undo log
   (primitive undo closures, or compensating invocations once a
   subtransaction has committed at its level — the open nesting rule),
   discard the fibers and optionally restart the transaction. *)

open Ooser_core
module Protocol = Ooser_cc.Protocol
module Deadlock = Ooser_cc.Deadlock
module Rng = Ooser_sim.Rng
module Stats = Ooser_sim.Stats
module Oplog = Ooser_recovery.Oplog
module Snapshot = Ooser_recovery.Snapshot
module Recovery = Ooser_recovery.Recovery
module Crash = Ooser_recovery.Crash

type step_result =
  | Yield of Runtime.invocation * (Value.t, step_result) Effect.Deep.continuation
  | Yield_par of
      Runtime.invocation list
      * (Value.t list, step_result) Effect.Deep.continuation
  | Yield_try of
      Runtime.invocation
      * ((Value.t, string) result, step_result) Effect.Deep.continuation
  | Undo_reg of (unit -> unit) * (unit, step_result) Effect.Deep.continuation
  | Yield_await of (unit, step_result) Effect.Deep.continuation
  | Done of Value.t
  | Raised of exn

let run_fiber (f : unit -> Value.t) : step_result =
  let open Effect.Deep in
  match_with f ()
    {
      retc = (fun v -> Done v);
      exnc = (fun e -> Raised e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Runtime.Invoke inv ->
              Some (fun (k : (a, step_result) continuation) -> Yield (inv, k))
          | Runtime.Invoke_par invs ->
              Some (fun (k : (a, step_result) continuation) -> Yield_par (invs, k))
          | Runtime.Invoke_try inv ->
              Some (fun (k : (a, step_result) continuation) -> Yield_try (inv, k))
          | Runtime.Register_undo g ->
              Some (fun (k : (a, step_result) continuation) -> Undo_reg (g, k))
          | Runtime.Await ->
              Some (fun (k : (a, step_result) continuation) -> Yield_await k)
          | _ -> None);
    }

(* Child slots of a frame, for call-tree reconstruction: sequential calls
   are ordered after everything before them; the members of one parallel
   group are mutually unordered.  Indices are 0-based child positions. *)
type child_group = Seq of int | Par of int list

(* An undo item is either a state-restoring closure (registered by a
   primitive whose locks are still held) or a compensating invocation (the
   logical inverse of a subtransaction that already committed at its
   level).  Compensations are executed through the engine like normal
   actions, acquiring locks — running them lock-free would clobber pages
   that in-flight transactions hold locks on. *)
type undo_item = Restore of (unit -> unit) | Compensate of Runtime.invocation

(* How a frame reports back: to the task's parent (task roots), to the
   caller's continuation directly, or to a caller that catches failures
   (Runtime.try_call — partial rollback). *)
type reply =
  | To_parent
  | Direct of (Value.t, step_result) Effect.Deep.continuation
  | Caught of ((Value.t, string) result, step_result) Effect.Deep.continuation

type frame = {
  action : Action.t;
  kind : [ `Primitive | `Composite ];
  caller_k : reply;
  compensate : (Value.t list -> Value.t -> Database.compensation) option;
  mutable next_child : int;
  mutable groups : child_group list;  (* reversed *)
  mutable child_trees : (int * Call_tree.t) list;  (* 1-based index -> tree *)
  mutable undo : undo_item list;  (* newest first *)
}

type pending =
  | Not_started
  | Step of (unit -> step_result)
  | Request of Runtime.invocation * Action.t * reply
  | Await_input of (unit, step_result) Effect.Deep.continuation
      (* parked on [Runtime.await], resumed by [poke] *)
  | Joining
  | Idle

(* [Awaiting] is a task parked on external input (a session waiting for
   its client's next command): unlike [Blocked] it holds no lock request,
   takes no part in deadlock detection, and is never a "stalled"
   victim — only [poke] (or an abort) wakes it. *)
type task_status = Runnable | Blocked | Awaiting | Finished

(* A join point: the task forked [j_remaining] branches and resumes with
   all their results once they delivered. *)
type join = {
  mutable j_remaining : int;
  j_results : Value.t array;
  j_k : (Value.t list, step_result) Effect.Deep.continuation;
}

type task = {
  t_id : int;  (* engine-wide, for deadlock detection *)
  txn_top : int;
  process : Ids.Process_id.t;
  mutable stack : frame list;  (* innermost first *)
  mutable pending : pending;
  mutable tstatus : task_status;
  mutable waiting_for : Action.t list;
  mutable blocked_since : int;
  mutable join : join option;
  t_parent : (task * int) option;  (* parent task and result slot *)
}

type txn_status = Running | Committed | Aborted of string

type txn = {
  top : int;
  tname : string;
  body : Runtime.ctx -> Value.t;
  mutable tasks : task list;  (* live tasks *)
  mutable status : txn_status;
  mutable attempt : int;
  mutable resume_after : int;
  mutable result : Value.t option;
  mutable branch_counter : int;
  mutable aborting : (bool * string) option;
      (* Some (retry, reason) while the compensation phase runs *)
  mutable first_step : int;  (* of the current attempt *)
  mutable commit_step : int;
  mutable deadline : float option;
      (* absolute time (config.now clock) past which the transaction is
         aborted instead of being run further — the per-session deadline
         of the network server; [check_deadlines] enforces it *)
  mutable pinned : bool;
      (* a 2PC participant that has voted: it holds its locks but may no
         longer be aborted unilaterally by this engine — wound-wait and
         deadline expiry skip it and leave the decision to the
         coordinator (see [wounded_pinned]) *)
}

(* What a scheduler hook sees of one runnable unit: enough to tell
   invocation boundaries (where interleaving choices matter — the
   paper's action granularity) from the internal steps in between, and
   which call is about to be issued.  The model checker's controlled
   scheduler keys its choice points on [u_boundary]. *)
type unit_label = {
  u_top : int;
  u_task : int;  (* engine task id; -1 when the body has not started *)
  u_boundary : bool;
      (* true exactly when picking this unit starts the transaction body
         or submits a fresh invocation to the protocol — the only points
         where the interleaving decision is observable *)
  u_obj : string;  (* target of the pending invocation, "" otherwise *)
  u_meth : string;
}

type strategy =
  | Round_robin
  | Random_pick of Rng.t
  | Scripted of int list ref
      (* step the named transaction when it is runnable, else fall back to
         round-robin; each consumed entry advances the script *)
  | Controlled of (unit_label list -> int)
      (* every pick is delegated to the hook, which returns an index into
         the label list (same order as the runnable units); out-of-range
         answers fall back to round-robin.  The hook sees every
         scheduling decision, so a run under [Controlled] is a pure
         function of the hook's answers — the model checker's replayable
         choice sequences build on this *)

(* How deadlocks are handled: [Detect] builds the waits-for graph and
   aborts the youngest transaction of a cycle; [Wound_wait] prevents
   cycles — an older requester wounds (aborts) younger lock holders, a
   younger requester waits; [Wait_die] is the symmetric prevention — an
   older requester waits, a younger one dies (aborts itself and retries).
   Intra-transaction conflicts always wait (the detector stays armed as a
   fallback for them). *)
type deadlock_policy = Detect | Wound_wait | Wait_die

type config = {
  protocol : Protocol.t;
  strategy : strategy;
  max_steps : int;
  max_restarts : int;
  sys : Obj_id.t;
  deadlock : deadlock_policy;
  certify : bool;
      (* optimistic validation: at commit, check that the history of the
         committed transactions plus this one is oo-serializable; abort
         and retry otherwise.  The paper's §6 direction: a protocol that
         guarantees oo-serializability without locks (pair it with the
         unlocked protocol). *)
  certify_oracle : bool;
      (* force the from-scratch checker even when the incremental
         certifier is applicable — the debugging / cross-checking mode *)
  now : unit -> float;
      (* clock for transaction deadlines; the default never advances, so
         deadlines are inert unless a real clock (e.g. Unix.gettimeofday)
         is injected — keeps this library clock-free for batch runs *)
  ext_memo_max : int;
      (* longest committed-prefix order (in primitive actions) the
         [ext_memo] below may retain; longer prefixes are certified
         without memoisation so a long-lived engine cannot pin an
         arbitrarily large extension in memory *)
  next_stamp : (unit -> int) option;
      (* source of execution stamps for recorded primitives; [None] uses
         the engine's own monotone counter.  Shard engines share one
         atomic counter so that merging their committed orders by stamp
         yields a single global execution order. *)
}

let default_config protocol =
  {
    protocol;
    strategy = Round_robin;
    max_steps = 1_000_000;
    max_restarts = 20;
    sys = Obj_id.v "S";
    deadlock = Detect;
    certify = false;
    certify_oracle = false;
    now = (fun () -> 0.0);
    ext_memo_max = 4096;
    next_stamp = None;
  }

type t = {
  db : Database.t;
  config : config;
  mutable txns : txn list;
  mutable retired : (int * int) list;
      (* (top, final attempt) of committed transactions dropped from
         [txns] by {!retire}; their entries in [order]/[trees] still
         belong to the committed history, so certification and
         [final_history] must keep counting them *)
  mutable order : (int * int * Ids.Action_id.t * int) list;
      (* reversed; (top, attempt, id, stamp).  The stamp is a monotone
         global execution counter assigned when the primitive is
         recorded: unlike a position in [order] it survives the removal
         of aborted attempts' entries, so the incremental certifier can
         use it as a stable span coordinate. *)
  mutable trees : (int * Call_tree.t) list;
  mutable steps : int;
  mutable clock : int;
  mutable stamp : int;  (* next execution stamp *)
  mutable task_counter : int;
  mutable cert : Incremental.t option;
      (* the online certifier, tracking exactly the committed set; [None]
         when certify is off, the oracle is forced, or an unstable spec
         made incremental maintenance unsound *)
  mutable last_reject : string option;
      (* detailed reason of the last failed certification, computed from
         the verdict that failed — the abort path reuses it instead of
         re-deriving the extension for the report *)
  mutable ext_memo : (Ids.Action_id.t list * Extension.t) option;
      (* [Extension.extend] result of the last oracle-certified
         committed-prefix order, keyed by that order; certifying the
         same prefix again (the retry after a failed certification
         replays it minus the aborted attempt's entries, and repeated
         failures of independent transactions over an unchanged
         committed set hit it exactly) reuses the extension instead of
         recomputing it *)
  counters : Stats.Counter.t;
  mutable journal : Oplog.t option;
      (* the durable operation log: BEGIN / root-level CALL (with its
         registered compensation) / SUBCOMMIT / COMMIT / ABORT, forced
         at top commit.  [None] (the default) costs one branch per
         site. *)
  mutable wounded_pinned : int list;
      (* pinned transactions an older requester tried to wound; the
         shard loop drains this ([take_wounded_pinned]) and escalates to
         the 2PC coordinator, which may abort the global transaction *)
  mutable trace_sink :
    (top:int -> tree:Call_tree.t -> prims:(Ids.Action_id.t * int) list -> unit)
    option;
      (* called at each top-level commit with exactly the certifier's
         inputs (final attempt's tree and stamped primitives) — the
         history-trace recorder; must not raise *)
}

type outcome = {
  history : History.t;
  committed : int list;
  aborted : (int * string) list;
  results : (int * Value.t) list;
  steps : int;
  metrics : (string * int) list;
  latencies : (int * int) list;
      (* per committed transaction: steps from the final attempt's start
         to its commit (response time in scheduler steps) *)
}

let trace = ref false

(* -- operation journaling -----------------------------------------------------

   Log sites: BEGIN at each attempt start, CALL when a root-level
   (depth-1) frame completes — that is the moment the subtransaction
   commits at its level and its locks may be released, so it is also the
   last moment physical undo would be sound — COMMIT (forced) and ABORT
   at the top-level decisions.  The compensation phase is never
   journaled: its effects are the logical inverse of records already in
   the log, and recovery re-derives them from the replayed calls. *)

let journal_append (eng : t) record =
  match eng.journal with
  | Some j ->
      ignore (Oplog.append j record);
      Stats.Counter.incr eng.counters "log-appends"
  | None -> ()

let journal_force (eng : t) =
  match eng.journal with
  | Some j ->
      Oplog.force j;
      Stats.Counter.incr eng.counters "log-forces"
  | None -> ()

(* -- helpers ----------------------------------------------------------------- *)

let current_frame task =
  match task.stack with
  | f :: _ -> f
  | [] -> invalid_arg "Engine: no active frame"

(* Direct synchronous execution, used for compensating invocations during
   abort: sub-calls run immediately, no locking, no recording.  The
   surrounding transaction still holds its higher-level semantic locks, so
   this is safe under the open nesting rule. *)
let rec execute_direct (eng : t) ctx (inv : Runtime.invocation) =
  match Database.find_meth eng.db inv.Runtime.target inv.Runtime.meth_name with
  | Error msg -> failwith ("compensation failed: " ^ msg)
  | Ok m ->
      let rec drive = function
        | Done v -> v
        | Raised e -> raise e
        | Undo_reg (_, k) -> drive (Effect.Deep.continue k ())
        | Yield (inv', k) ->
            let v = execute_direct eng ctx inv' in
            drive (Effect.Deep.continue k v)
        | Yield_par (invs, k) ->
            let vs = List.map (execute_direct eng ctx) invs in
            drive (Effect.Deep.continue k vs)
        | Yield_try (inv', k) -> (
            match execute_direct eng ctx inv' with
            | v -> drive (Effect.Deep.continue k (Ok v))
            | exception Runtime.Abort m ->
                drive (Effect.Deep.continue k (Error m)))
        | Yield_await _ -> failwith "compensation awaited external input"
      in
      drive (run_fiber (fun () -> m.Database.run ctx inv.Runtime.args))

let discontinue_quietly k =
  match Effect.Deep.discontinue k Runtime.Abandoned with
  | _ -> ()
  | exception _ -> ()

(* -- call-tree reconstruction ------------------------------------------------- *)

(* Precedence pairs from the recorded child groups: every member of a
   group precedes every member of the next group (transitivity covers the
   rest); members of one parallel group stay unordered. *)
let prec_of_groups groups =
  let ordered = List.rev_map (function Seq i -> [ i ] | Par is -> is) groups in
  let rec pairs acc = function
    | [] | [ _ ] -> acc
    | g :: (next :: _ as rest) ->
        let acc =
          List.fold_left
            (fun acc a -> List.fold_left (fun acc b -> (a, b) :: acc) acc next)
            acc g
        in
        pairs acc rest
  in
  List.rev (pairs [] ordered)

let tree_of_frame f =
  let sorted = List.sort (fun (i, _) (j, _) -> Int.compare i j) f.child_trees in
  (* a child that failed under try_call leaves a numbering gap: remap the
     0-based child numbers used by the groups to positions in the actual
     children list, dropping pairs that mention the missing child *)
  let positions = List.mapi (fun pos (idx, _) -> (idx - 1, pos)) sorted in
  let remap i = List.assoc_opt i positions in
  let prec =
    List.filter_map
      (fun (a, b) ->
        match (remap a, remap b) with
        | Some x, Some y -> Some (x, y)
        | _ -> None)
      (prec_of_groups f.groups)
  in
  Call_tree.v ~prec f.action (List.map snd sorted)

(* -- abort / commit ------------------------------------------------------------ *)

(* Finish an abort: release the transaction's locks, drop the attempt's
   records, and either schedule a restart with backoff or fail for
   good. *)
let finish_abort (eng : t) txn ~retry reason =
  journal_append eng
    (Oplog.Abort { top = txn.top; attempt = txn.attempt; reason });
  txn.aborting <- None;
  txn.tasks <- [];
  Protocol.on_top_abort eng.config.protocol txn.top;
  (* drop this attempt's recorded primitives *)
  eng.order <-
    List.filter
      (fun (top, att, _, _) -> not (top = txn.top && att = txn.attempt))
      eng.order;
  if retry && txn.attempt < eng.config.max_restarts then begin
    Stats.Counter.incr eng.counters "restarts";
    txn.attempt <- txn.attempt + 1;
    (* deterministic backoff: let the surviving transactions finish before
       re-entering the conflict, otherwise upgrade deadlocks livelock *)
    txn.resume_after <- eng.steps + (30 * txn.attempt);
    txn.status <- Running
  end
  else txn.status <- Aborted reason

(* Discard every fiber of the transaction without touching state; return
   the collected undo items (innermost frames first). *)
let unwind_tasks txn =
  let items = ref [] in
  List.iter
    (fun task ->
      (match task.pending with
      | Request (_, _, Direct k) -> discontinue_quietly k
      | Request (_, _, Caught k) -> discontinue_quietly k
      | Await_input k -> discontinue_quietly k
      | Request (_, _, To_parent) | Step _ | Not_started | Idle | Joining -> ());
      (match task.join with
      | Some j -> discontinue_quietly j.j_k
      | None -> ());
      List.iter
        (fun f ->
          items := !items @ f.undo;
          match f.caller_k with
          | Direct k -> discontinue_quietly k
          | Caught k -> discontinue_quietly k
          | To_parent -> ())
        task.stack;
      task.stack <- [];
      task.pending <- Idle;
      task.tstatus <- Finished;
      task.join <- None;
      task.waiting_for <- [])
    txn.tasks;
  txn.tasks <- [];
  !items

(* forward declaration: starting the compensation task needs fresh_task,
   defined below *)
let start_compensation_hook :
    (t -> txn -> undo_item list -> unit) ref =
  ref (fun _ _ _ -> ())

let abort_txn (eng : t) txn ~retry ?items reason =
  match txn.aborting with
  | Some (retry0, reason0) ->
      (* failure during the compensation phase itself: give up on further
         compensation — state may be inconsistent, count it *)
      Stats.Counter.incr eng.counters "compensation-failures";
      ignore (unwind_tasks txn);
      finish_abort eng txn ~retry:false
        (Printf.sprintf "%s; compensation failed (%s)" reason0 reason);
      ignore retry0
  | None ->
      Stats.Counter.incr eng.counters "aborts";
      if !trace then Fmt.epr "[%d] abort T%d (%s)@." eng.steps txn.top reason;
      let collected = unwind_tasks txn in
      let items = match items with Some i -> i | None -> collected in
      if items = [] then finish_abort eng txn ~retry reason
      else begin
        txn.aborting <- Some (retry, reason);
        !start_compensation_hook eng txn items
      end

let commit_txn (eng : t) txn v =
  txn.commit_step <- eng.steps;
  journal_append eng (Oplog.Commit { top = txn.top; attempt = txn.attempt });
  journal_force eng;
  Stats.Counter.incr eng.counters "commits";
  (match eng.trace_sink with
  | Some sink -> (
      match List.assoc_opt txn.top eng.trees with
      | Some tree ->
          let prims =
            List.rev eng.order
            |> List.filter_map (fun (top, att, id, stamp) ->
                   if top = txn.top && att = txn.attempt then Some (id, stamp)
                   else None)
          in
          if prims <> [] then sink ~top:txn.top ~tree ~prims
      | None -> ())
  | None -> ());
  Protocol.on_top_commit eng.config.protocol txn.top;
  txn.status <- Committed;
  txn.result <- Some v;
  txn.tasks <- []

(* Optimistic certification (config.certify): would committing this
   transaction keep the history of committed transactions
   oo-serializable?

   Two paths.  The incremental certifier ([eng.cert]) appends only the
   committing transaction's dependency edges under online cycle
   detection — per-commit cost proportional to the new edges.  It is
   exact only when every registered commutativity spec is stable
   (state-reading specs like escrow can change old decisions), so the
   engine re-checks stability at each commit and falls back to the
   from-scratch oracle permanently once it no longer holds — the
   certifier state would otherwise drift from the committed set. *)

let all_specs_stable (eng : t) =
  List.for_all
    (fun o ->
      match Database.spec eng.db o with
      | Some s -> Commutativity.stable s
      | None -> true)
    (Database.objects eng.db)

let certification_oracle (eng : t) txn =
  let committed_tops =
    (txn.top, txn.attempt)
    :: List.filter_map
         (fun x -> if x.status = Committed then Some (x.top, x.attempt) else None)
         eng.txns
    @ eng.retired
  in
  let trees =
    List.filter (fun (top, _) -> List.mem_assoc top committed_tops) eng.trees
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
    |> List.map snd
  in
  let order =
    List.rev eng.order
    |> List.filter_map (fun (top, att, id, _) ->
           match List.assoc_opt top committed_tops with
           | Some final when final = att -> Some id
           | _ -> None)
  in
  let h = History.v ~tops:trees ~order ~commut:(Database.spec_registry eng.db) in
  (* extend once per certified prefix — memoised on the prefix order, so
     re-certifying an unchanged committed set (the retry after a failed
     certification) skips the recomputation — and keep the reason from
     the verdict so the rollback path can build its abort report without
     re-deriving the extension either *)
  let ext =
    match eng.ext_memo with
    | Some (key, e) when key = order -> e
    | _ ->
        let e = Extension.extend h in
        (* bounded retention: beyond the cap the memo is dropped rather
           than grown — a long-running server would otherwise pin an
           extension proportional to its whole committed history *)
        if List.length order <= eng.config.ext_memo_max then
          eng.ext_memo <- Some (order, e)
        else eng.ext_memo <- None;
        e
  in
  let verdict = Serializability.check ~ext h in
  if verdict.Serializability.oo_serializable then true
  else begin
    (let reason =
       match
         List.find_opt
           (fun (v : Serializability.object_verdict) ->
             v.Serializability.cycle <> None)
           verdict.Serializability.objects
       with
       | Some v ->
           Fmt.str "certification failure: dependency cycle at %a" Obj_id.pp
             v.Serializability.obj
       | None -> "certification failure"
     in
     eng.last_reject <- Some reason);
    false
  end

let certification_passes (eng : t) txn =
  let incremental_path cert tree =
    let prims =
      List.rev eng.order
      |> List.filter_map (fun (top, att, id, stamp) ->
             if top = txn.top && att = txn.attempt then Some (id, stamp)
             else None)
    in
    Stats.Counter.incr eng.counters "cert-incremental";
    let o = Incremental.add_commit cert ~tree ~prims in
    (match o.Incremental.rejection with
    | Some r ->
        eng.last_reject <-
          Some (Fmt.str "certification failure: %a" Incremental.pp_rejection r)
    | None -> ());
    o.Incremental.accepted
  in
  match eng.cert with
  | Some cert
    when (not eng.config.certify_oracle)
         && all_specs_stable eng
         && List.mem_assoc txn.top eng.trees ->
      incremental_path cert (List.assoc txn.top eng.trees)
  | Some _ ->
      (* no longer applicable: drop the certifier for good — after one
         oracle-certified commit its state would miss that commit *)
      eng.cert <- None;
      Stats.Counter.incr eng.counters "cert-fallbacks";
      Stats.Counter.incr eng.counters "cert-oracle";
      certification_oracle eng txn
  | None ->
      Stats.Counter.incr eng.counters "cert-oracle";
      certification_oracle eng txn

(* -- frame completion ------------------------------------------------------------ *)

let deliver_to_parent eng txn task ~undo v =
  match task.t_parent with
  | None -> (
      match txn.aborting with
      | Some (retry, reason) ->
          (* the compensation task completed: the abort is done *)
          task.tstatus <- Finished;
          finish_abort eng txn ~retry reason
      | None -> (
          (* optimistic protocols validate at the commit point: the hook
             sees exactly what the incremental certifier would — the
             committing attempt's call tree and its stamped primitives *)
          let validation =
            if Protocol.has_validate eng.config.protocol then
              match List.assoc_opt txn.top eng.trees with
              | Some tree ->
                  let prims =
                    List.rev eng.order
                    |> List.filter_map (fun (top, att, id, stamp) ->
                           if top = txn.top && att = txn.attempt then
                             Some (id, stamp)
                           else None)
                  in
                  Protocol.validate eng.config.protocol ~top:txn.top ~tree
                    ~prims
              | None -> Ok ()
            else Ok ()
          in
          match validation with
          | Error reason ->
              (* validation failed: take the tree back, roll back through
                 a proper compensation phase, retry — the same internal-
                 retry path as a failed certification *)
              Stats.Counter.incr eng.counters "validation-failures";
              eng.trees <-
                List.filter (fun (top, _) -> top <> txn.top) eng.trees;
              abort_txn eng txn ~retry:true ~items:undo reason
          | Ok () ->
              if (not eng.config.certify) || certification_passes eng txn
              then commit_txn eng txn v
              else begin
                (* certification failed: take the tree back, roll back
                   through a proper compensation phase, retry *)
                Stats.Counter.incr eng.counters "certification-failures";
                eng.trees <-
                  List.filter (fun (top, _) -> top <> txn.top) eng.trees;
                let reason =
                  match eng.last_reject with
                  | Some r -> r
                  | None -> "certification failure"
                in
                abort_txn eng txn ~retry:true ~items:undo reason
              end))
  | Some (parent, slot) -> (
      task.tstatus <- Finished;
      task.pending <- Idle;
      txn.tasks <- List.filter (fun t -> t.t_id <> task.t_id) txn.tasks;
      match parent.join with
      | None -> invalid_arg "Engine: branch completion without a join"
      | Some j ->
          j.j_results.(slot) <- v;
          j.j_remaining <- j.j_remaining - 1;
          if j.j_remaining = 0 then begin
            parent.join <- None;
            parent.tstatus <- Runnable;
            parent.pending <-
              Step
                (fun () -> Effect.Deep.continue j.j_k (Array.to_list j.j_results))
          end)

let complete_frame eng txn task v =
  match task.stack with
  | [] -> invalid_arg "Engine.complete_frame: empty stack"
  | f :: rest ->
      task.stack <- rest;
      let tree = tree_of_frame f in
      (* runtime-primitive: a leaf of the call tree, entered into the
         execution order (Axiom 1); a transaction that called nothing is
         itself a leaf and is recorded too *)
      if f.child_trees = [] then begin
        let stamp =
          match eng.config.next_stamp with
          | Some next -> next ()
          | None ->
              let s = eng.stamp in
              eng.stamp <- eng.stamp + 1;
              s
        in
        eng.order <- (txn.top, txn.attempt, Action.id f.action, stamp) :: eng.order
      end;
      let is_txn_root = rest = [] && task.t_parent = None in
      if not is_txn_root then Protocol.on_end eng.config.protocol f.action;
      let undo_contribution =
        match f.compensate with
        | Some comp -> (
            match comp (Action.args f.action) v with
            | Database.Inverse inv -> [ Compensate inv ]
            | Database.Forget -> []
            | Database.Keep_undo -> f.undo)
        | None -> f.undo
      in
      (* journal the subtransaction commit.  A root-level (depth-1) call
         completion is the unit recovery replays — CALL carries the
         registered compensation; deeper composite frames leave
         SUBCOMMIT markers.  Frames of the compensation phase are not
         journaled. *)
      (if eng.journal <> None && txn.aborting = None then
         let id = Action.id f.action in
         let depth = Ids.Action_id.depth id in
         if depth >= 1 then begin
           let comp_inv =
             match undo_contribution with
             | [ Compensate inv ] ->
                 Some
                   {
                     Oplog.obj = inv.Runtime.target;
                     meth = inv.Runtime.meth_name;
                     args = inv.Runtime.args;
                   }
             | _ -> None
           in
           if depth = 1 then
             let seq =
               match List.rev (Ids.Action_id.path id) with
               | i :: _ -> i
               | [] -> 0
             in
             journal_append eng
               (Oplog.Call
                  {
                    top = txn.top;
                    attempt = txn.attempt;
                    seq;
                    inv =
                      {
                        Oplog.obj = Action.obj f.action;
                        meth = Action.meth f.action;
                        args = Action.args f.action;
                      };
                    comp = comp_inv;
                  })
           else if f.child_trees <> [] then
             journal_append eng
               (Oplog.Subcommit
                  {
                    top = txn.top;
                    attempt = txn.attempt;
                    path = Ids.Action_id.path id;
                    comp = comp_inv;
                  })
         end);
      let parent_frame =
        match rest with
        | pf :: _ -> Some pf
        | [] -> (
            match task.t_parent with
            | Some (pt, _) -> (
                match pt.stack with pf :: _ -> Some pf | [] -> None)
            | None -> None)
      in
      (match parent_frame with
      | Some pf ->
          let idx =
            match List.rev (Ids.Action_id.path (Action.id f.action)) with
            | i :: _ -> i
            | [] -> 1
          in
          pf.child_trees <- (idx, tree) :: pf.child_trees;
          pf.undo <- undo_contribution @ pf.undo
      | None ->
          (* the compensation phase leaves no trace in the history *)
          if txn.aborting = None then eng.trees <- (txn.top, tree) :: eng.trees);
      (match rest with
      | _ :: _ -> (
          match f.caller_k with
          | Direct k -> task.pending <- Step (fun () -> Effect.Deep.continue k v)
          | Caught k ->
              task.pending <- Step (fun () -> Effect.Deep.continue k (Ok v))
          | To_parent -> invalid_arg "Engine: nested frame without caller")
      | [] -> deliver_to_parent eng txn task ~undo:undo_contribution v)

(* -- invocation start --------------------------------------------------------------- *)

let discontinue_reply = function
  | Direct k -> discontinue_quietly k
  | Caught k -> discontinue_quietly k
  | To_parent -> ()

let start_invocation eng txn task (inv : Runtime.invocation) action k =
  match Database.find_meth eng.db inv.Runtime.target inv.Runtime.meth_name with
  | Error msg -> (
      match k with
      | Caught kk ->
          (* a caught call to a missing method fails softly *)
          task.pending <- Step (fun () -> Effect.Deep.continue kk (Error msg))
      | Direct _ | To_parent ->
          task.pending <- Idle;
          abort_txn eng txn ~retry:false msg)
  | Ok m -> (
      let leaf = m.Database.kind = `Primitive in
      match Protocol.request eng.config.protocol action ~leaf with
      | Protocol.Granted ->
          let frame =
            {
              action;
              kind = m.Database.kind;
              caller_k = k;
              compensate = m.Database.compensate;
              next_child = 0;
              groups = [];
              child_trees = [];
              undo = [];
            }
          in
          task.stack <- frame :: task.stack;
          task.waiting_for <- [];
          task.tstatus <- Runnable;
          let ctx = { Runtime.top = txn.top } in
          task.pending <-
            Step
              (fun () -> run_fiber (fun () -> m.Database.run ctx inv.Runtime.args))
      | Protocol.Blocked holders ->
          (* wait-die: a younger requester blocked by an older holder
             aborts itself (prevention by self-sacrifice) *)
          if
            eng.config.deadlock = Wait_die
            && txn.aborting = None
            && List.exists
                 (fun a -> Ids.Action_id.top (Action.id a) < txn.top)
                 holders
          then begin
            Stats.Counter.incr eng.counters "dies";
            discontinue_reply k;
            abort_txn eng txn ~retry:true "wait-die"
          end
          else begin
          (* wound-wait: an older transaction aborts younger holders
             instead of waiting behind them (prevention); conflicts within
             one transaction and holders already compensating wait *)
          (if eng.config.deadlock = Wound_wait then
             let younger_holders =
               List.filter
                 (fun a ->
                   let htop = Ids.Action_id.top (Action.id a) in
                   htop > txn.top)
                 holders
             in
             List.iter
               (fun a ->
                 let htop = Ids.Action_id.top (Action.id a) in
                 match
                   List.find_opt
                     (fun x -> x.top = htop && x.status = Running
                               && x.aborting = None)
                     eng.txns
                 with
                 | Some victim when victim.pinned ->
                     (* a prepared 2PC participant cannot be aborted
                        here; record the wound so the coordinator can
                        decide the global transaction instead *)
                     if not (List.mem victim.top eng.wounded_pinned) then
                       eng.wounded_pinned <- victim.top :: eng.wounded_pinned
                 | Some victim ->
                     Stats.Counter.incr eng.counters "wounds";
                     abort_txn eng victim ~retry:true "wounded"
                 | None -> ())
               younger_holders);
          if task.tstatus <> Blocked then begin
            Stats.Counter.incr eng.counters "waits";
            task.blocked_since <- eng.clock;
            eng.clock <- eng.clock + 1
          end;
          task.tstatus <- Blocked;
          task.waiting_for <- holders;
          task.pending <- Request (inv, action, k)
          end)

(* -- stepping ------------------------------------------------------------------------- *)

let fresh_task (eng : t) txn ~process ~parent =
  eng.task_counter <- eng.task_counter + 1;
  let task =
    {
      t_id = eng.task_counter;
      txn_top = txn.top;
      process;
      stack = [];
      pending = Not_started;
      tstatus = Runnable;
      waiting_for = [];
      blocked_since = 0;
      join = None;
      t_parent = parent;
    }
  in
  txn.tasks <- task :: txn.tasks;
  task

let start_txn (eng : t) txn =
  let root_id = Ids.Action_id.root txn.top in
  let process = Ids.Process_id.main txn.top in
  journal_append eng
    (Oplog.Begin { top = txn.top; attempt = txn.attempt; name = txn.tname });
  txn.first_step <- eng.steps;
  txn.branch_counter <- 0;
  let action =
    Action.v ~id:root_id ~obj:eng.config.sys ~meth:txn.tname ~process ()
  in
  let task = fresh_task eng txn ~process ~parent:None in
  let frame =
    {
      action;
      kind = `Composite;
      caller_k = To_parent;
      compensate = None;
      next_child = 0;
      groups = [];
      child_trees = [];
      undo = [];
    }
  in
  task.stack <- [ frame ];
  (* optimistic protocols snapshot their version store per attempt, so a
     validation-abort retry re-reads against fresh committed state *)
  Protocol.on_begin eng.config.protocol txn.top;
  let ctx = { Runtime.top = txn.top } in
  task.pending <- Step (fun () -> run_fiber (fun () -> txn.body ctx))

(* The compensation phase: run the undo items in order as a synthetic
   transaction body.  Restores run directly (their locks are still held);
   compensating invocations go through Runtime.call and therefore through
   the lock protocol. *)
let start_compensation (eng : t) txn items =
  let body ctx =
    List.iter
      (fun item ->
        match item with
        | Restore g -> g ()
        | Compensate inv ->
            ignore
              (Runtime.call ctx inv.Runtime.target inv.Runtime.meth_name
                 inv.Runtime.args))
      items;
    Value.unit
  in
  let root_id = Ids.Action_id.root txn.top in
  let process = Ids.Process_id.main txn.top in
  let action =
    Action.v ~id:root_id ~obj:eng.config.sys ~meth:(txn.tname ^ ":abort")
      ~process ()
  in
  let task = fresh_task eng txn ~process ~parent:None in
  let frame =
    {
      action;
      kind = `Composite;
      caller_k = To_parent;
      compensate = None;
      next_child = 0;
      groups = [];
      child_trees = [];
      undo = [];
    }
  in
  task.stack <- [ frame ];
  task.pending <- Step (fun () -> run_fiber (fun () -> body { Runtime.top = txn.top }))

let () = start_compensation_hook := start_compensation

(* Fork one task per invocation; the forked actions form one parallel
   group of the current frame's action set (no mutual precedence), each
   on a fresh process (Def. 9). *)
let fork_branches eng txn task invs k =
  let parent_frame = current_frame task in
  if parent_frame.kind = `Primitive then begin
    discontinue_quietly k;
    abort_txn eng txn ~retry:false
      (Fmt.str "primitive method %a issued calls" Action.pp parent_frame.action)
  end
  else if invs = [] then
    task.pending <- Step (fun () -> Effect.Deep.continue k [])
  else begin
    let n = List.length invs in
    (* assign child indices left to right *)
    let first = parent_frame.next_child + 1 in
    parent_frame.next_child <- parent_frame.next_child + n;
    let indices = List.init n (fun i -> first + i) in
    parent_frame.groups <-
      Par (List.map (fun i -> i - 1) indices) :: parent_frame.groups;
    let join =
      { j_remaining = n; j_results = Array.make n Value.unit; j_k = k }
    in
    task.join <- Some join;
    task.tstatus <- Runnable;
    task.pending <- Joining;
    List.iteri
      (fun slot (idx, inv) ->
        txn.branch_counter <- txn.branch_counter + 1;
        let process = Ids.Process_id.v ~top:txn.top ~branch:txn.branch_counter in
        let child = fresh_task eng txn ~process ~parent:(Some (task, slot)) in
        let id = Ids.Action_id.child (Action.id parent_frame.action) idx in
        let action =
          Action.v ~id ~obj:inv.Runtime.target ~meth:inv.Runtime.meth_name
            ~args:inv.Runtime.args ~process ()
        in
        start_invocation eng txn child inv action To_parent)
      (List.combine indices invs)
  end

(* Unwind ONE failed frame: its own and its completed children's locks
   are still held (the frame was active), so running the undo items
   directly is sound here — unlike a whole-transaction abort.  The
   failure then propagates to the caller: a [Caught] reply receives
   [Error msg] and the transaction continues (partial rollback); a
   [Direct] reply re-raises into the calling fiber; at a task root the
   whole transaction aborts. *)
let rec dispatch eng txn task r =
  match r with
  | Done v -> complete_frame eng txn task v
  | Raised Runtime.Abandoned -> abort_txn eng txn ~retry:false "abandoned"
  | Raised e ->
      let msg =
        match e with Runtime.Abort m -> m | e -> Printexc.to_string e
      in
      propagate_failure eng txn task msg
  | Undo_reg (g, k) ->
      (current_frame task).undo <- Restore g :: (current_frame task).undo;
      dispatch eng txn task (Effect.Deep.continue k ())
  | Yield_await k ->
      task.tstatus <- Awaiting;
      task.pending <- Await_input k
  | Yield_par (invs, k) -> fork_branches eng txn task invs k
  | Yield_try (inv, k) ->
      let parent = current_frame task in
      if parent.kind = `Primitive then begin
        discontinue_quietly k;
        abort_txn eng txn ~retry:false
          (Fmt.str "primitive method %a issued a call" Action.pp parent.action)
      end
      else begin
        parent.next_child <- parent.next_child + 1;
        parent.groups <- Seq (parent.next_child - 1) :: parent.groups;
        let id = Ids.Action_id.child (Action.id parent.action) parent.next_child in
        let action =
          Action.v ~id ~obj:inv.Runtime.target ~meth:inv.Runtime.meth_name
            ~args:inv.Runtime.args ~process:task.process ()
        in
        task.pending <- Request (inv, action, Caught k)
      end
  | Yield (inv, k) ->
      let parent = current_frame task in
      if parent.kind = `Primitive then begin
        discontinue_quietly k;
        abort_txn eng txn ~retry:false
          (Fmt.str "primitive method %a issued a call" Action.pp parent.action)
      end
      else begin
        parent.next_child <- parent.next_child + 1;
        parent.groups <- Seq (parent.next_child - 1) :: parent.groups;
        let id = Ids.Action_id.child (Action.id parent.action) parent.next_child in
        let action =
          Action.v ~id ~obj:inv.Runtime.target ~meth:inv.Runtime.meth_name
            ~args:inv.Runtime.args ~process:task.process ()
        in
        task.pending <- Request (inv, action, Direct k)
      end

and propagate_failure eng txn task msg =
  match task.stack with
  | [] -> abort_txn eng txn ~retry:false msg
  | f :: rest -> (
      match f.caller_k with
      | To_parent ->
          (* a failed task root (transaction body or branch): the whole
             transaction aborts through the scheduled compensation phase,
             which collects this frame's undo items *)
          abort_txn eng txn ~retry:false msg
      | Caught k ->
          task.stack <- rest;
          (* roll back this frame's subtree in place: locks scoped to the
             frame are still held, so direct execution is sound *)
          List.iter
            (fun item ->
              match item with
              | Restore g -> g ()
              | Compensate inv ->
                  ignore (execute_direct eng { Runtime.top = txn.top } inv))
            f.undo;
          Protocol.on_end eng.config.protocol f.action;
          task.pending <- Step (fun () -> Effect.Deep.continue k (Error msg))
      | Direct k ->
          task.stack <- rest;
          List.iter
            (fun item ->
              match item with
              | Restore g -> g ()
              | Compensate inv ->
                  ignore (execute_direct eng { Runtime.top = txn.top } inv))
            f.undo;
          Protocol.on_end eng.config.protocol f.action;
          task.pending <-
            Step (fun () -> Effect.Deep.discontinue k (Runtime.Abort msg)))

let step (eng : t) txn task =
  eng.steps <- eng.steps + 1;
  match task.pending with
  | Idle | Joining | Await_input _ -> ()
  | Not_started ->
      Stats.Counter.incr eng.counters "starts";
      start_txn eng txn
  | Request (inv, action, k) -> start_invocation eng txn task inv action k
  | Step f -> dispatch eng txn task (f ())

(* -- the run loop ----------------------------------------------------------------------- *)

(* Deadlock detection is per task: parallel branches of one transaction
   can deadlock each other.  Waits-for edges go from the blocked task to
   the tasks of the lock holders, identified by the holder action's
   process; a holder whose task already finished (its lock retained at a
   higher scope) is attributed to any live task of its transaction. *)
let waits_for (eng : t) =
  let all_tasks = List.concat_map (fun txn -> txn.tasks) eng.txns in
  let task_of_action a =
    let p = Action.process a in
    match
      List.find_opt (fun t -> Ids.Process_id.equal t.process p) all_tasks
    with
    | Some t -> Some t.t_id
    | None -> (
        let top = Ids.Action_id.top (Action.id a) in
        match List.find_opt (fun t -> t.txn_top = top) all_tasks with
        | Some t -> Some t.t_id
        | None -> None)
  in
  List.filter_map
    (fun task ->
      match task.tstatus with
      | Blocked ->
          Some
            ( task.t_id,
              List.sort_uniq Int.compare
                (List.filter_map task_of_action task.waiting_for) )
      | Runnable | Awaiting | Finished -> None)
    all_tasks

let txn_of_task (eng : t) tid =
  List.find_opt
    (fun txn -> List.exists (fun t -> t.t_id = tid) txn.tasks)
    eng.txns

let resolve_deadlock (eng : t) =
  let w = waits_for eng in
  if !trace then
    Fmt.epr "[%d] waits_for: %a@." eng.steps
      (Fmt.list ~sep:Fmt.sp (fun ppf (a, bs) ->
           Fmt.pf ppf "%d->[%a]" a (Fmt.list ~sep:(Fmt.any ",") Fmt.int) bs))
      w;
  match Deadlock.find_cycle w with
  | Some cycle -> (
      Stats.Counter.incr eng.counters "deadlocks";
      (* prefer a victim that is not already compensating; rolling back a
         rollback is a last resort *)
      let candidates =
        List.filter_map (fun tid -> txn_of_task eng tid) cycle
      in
      let victim =
        match List.filter (fun txn -> txn.aborting = None) candidates with
        | [] -> (
            match candidates with
            | [] -> None
            | l -> Some (List.fold_left (fun a b -> if b.top > a.top then b else a) (List.hd l) l))
        | l -> Some (List.fold_left (fun a b -> if b.top > a.top then b else a) (List.hd l) l)
      in
      match victim with
      | Some txn -> abort_txn eng txn ~retry:true "deadlock victim"
      | None -> ())
  | None -> (
      (* blocked but no cycle among tasks: a holder may have committed
         between checks — retry will succeed; if genuinely stuck, break
         the tie deterministically *)
      let blocked =
        List.concat_map (fun txn -> txn.tasks) eng.txns
        |> List.filter (fun t -> t.tstatus = Blocked)
        |> List.sort (fun a b -> Int.compare a.blocked_since b.blocked_since)
      in
      match blocked with
      | [] -> ()
      | task :: _ -> (
          match txn_of_task eng task.t_id with
          | Some txn -> abort_txn eng txn ~retry:true "stalled"
          | None -> ()))

let retry_blocked (eng : t) =
  let blocked =
    List.concat_map
      (fun txn -> List.map (fun task -> (txn, task)) txn.tasks)
      eng.txns
    |> List.filter (fun (_, task) -> task.tstatus = Blocked)
    |> List.sort (fun (_, a) (_, b) -> Int.compare a.blocked_since b.blocked_since)
  in
  List.iter
    (fun (txn, task) ->
      match task.pending with
      | Request (inv, action, k) -> start_invocation eng txn task inv action k
      | Not_started | Step _ | Idle | Joining | Await_input _ -> ())
    blocked

let create ?(config : config option) db ~protocol bodies =
  let config = match config with Some c -> c | None -> default_config protocol in
  (* top-level transactions are messages on the system object (Def. 4);
     they carry no semantics of their own *)
  if not (Database.mem db config.sys) then
    Database.register db config.sys ~spec:Commutativity.all_commute [];
  let txns =
    List.map
      (fun (top, tname, body) ->
        {
          top;
          tname;
          body;
          tasks = [];
          status = Running;
          attempt = 0;
          resume_after = 0;
          result = None;
          branch_counter = 0;
          aborting = None;
          first_step = -1;
          commit_step = -1;
          deadline = None;
          pinned = false;
        })
      bodies
  in
  {
    db;
    config;
    txns;
    retired = [];
    order = [];
    trees = [];
    steps = 0;
    clock = 0;
    stamp = 0;
    task_counter = 0;
    cert =
      (if config.certify && not config.certify_oracle then
         Some (Incremental.create (Database.spec_registry db))
       else None);
    last_reject = None;
    ext_memo = None;
    counters = Stats.Counter.create ();
    journal = None;
    wounded_pinned = [];
    trace_sink = None;
  }

let set_journal (eng : t) j = eng.journal <- j
let journal (eng : t) = eng.journal
let set_trace_sink (eng : t) sink = eng.trace_sink <- sink

(* Install a precomputed conflict table (built by the static conflict
   atlas) into both runtime probe sites: the incremental certifier's
   memo cache and the locking protocol's lock-table cache.  Covered
   probes become array lookups; everything else keeps the normal path,
   so the engine's decisions cannot change — only their cost. *)
let preload_atlas (eng : t) tbl =
  (match eng.cert with
  | Some c -> Commutativity.preload (Incremental.cache c) tbl
  | None -> ());
  Protocol.preload eng.config.protocol tbl;
  let _, cells = Commutativity.table_stats tbl in
  Stats.Counter.incr ~by:cells eng.counters "atlas-cells"

let atlas_hits (eng : t) =
  let cert_hits =
    match eng.cert with
    | Some c -> Commutativity.atlas_hits (Incremental.cache c)
    | None -> 0
  in
  let lock_hits =
    match Protocol.table eng.config.protocol with
    | Some lt -> (
        match Ooser_cc.Lock_table.cache lt with
        | Some c -> Commutativity.atlas_hits c
        | None -> 0)
    | None -> 0
  in
  cert_hits + lock_hits

let final_history (eng : t) =
  let committed_tops =
    List.filter_map
      (fun txn ->
        if txn.status = Committed then Some (txn.top, txn.attempt) else None)
      eng.txns
    @ eng.retired
  in
  let trees =
    List.filter (fun (top, _) -> List.mem_assoc top committed_tops) eng.trees
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
    |> List.map snd
  in
  let order =
    List.rev eng.order
    |> List.filter_map (fun (top, att, id, _) ->
           match List.assoc_opt top committed_tops with
           | Some final when final = att -> Some id
           | _ -> None)
  in
  History.v ~tops:trees ~order ~commut:(Database.spec_registry eng.db)

let outcome_of (eng : t) =
  let committed =
    List.filter_map
      (fun txn -> if txn.status = Committed then Some txn.top else None)
      eng.txns
  in
  let aborted =
    List.filter_map
      (fun txn ->
        match txn.status with Aborted r -> Some (txn.top, r) | _ -> None)
      eng.txns
  in
  let results =
    List.filter_map
      (fun txn -> Option.map (fun v -> (txn.top, v)) txn.result)
      eng.txns
  in
  let latencies =
    List.filter_map
      (fun txn ->
        if txn.status = Committed && txn.first_step >= 0 then
          Some (txn.top, txn.commit_step - txn.first_step)
        else None)
      eng.txns
  in
  {
    history = final_history eng;
    committed;
    aborted;
    results;
    steps = eng.steps;
    latencies;
    metrics =
      (let prefix =
         if Protocol.has_validate eng.config.protocol then "occ." else "lock."
       in
       Stats.Counter.to_list eng.counters
       @ List.map
           (fun (k, v) -> (prefix ^ k, v))
           (Stats.Counter.to_list (Protocol.counters eng.config.protocol)));
  }

let runnable_units (eng : t) =
  List.concat_map
    (fun txn ->
      match txn.status with
      | Running when txn.resume_after <= eng.steps ->
          if txn.tasks = [] then [ (txn, None) ]
          else
            List.filter_map
              (fun task ->
                match (task.tstatus, task.pending) with
                | Runnable, (Step _ | Request _ | Not_started) ->
                    Some (txn, Some task)
                | _ -> None)
              txn.tasks
      | _ -> [])
    eng.txns

let parked (eng : t) =
  List.exists
    (fun txn -> txn.status = Running && txn.resume_after > eng.steps)
    eng.txns

let blocked_exists (eng : t) =
  List.exists
    (fun txn -> List.exists (fun t -> t.tstatus = Blocked) txn.tasks)
    eng.txns

let awaiting_exists (eng : t) =
  List.exists
    (fun txn -> List.exists (fun t -> t.tstatus = Awaiting) txn.tasks)
    eng.txns

let label_of_unit (txn, task_opt) =
  match task_opt with
  | None ->
      { u_top = txn.top; u_task = -1; u_boundary = true; u_obj = ""; u_meth = "" }
  | Some task -> (
      match task.pending with
      | Request (inv, _, _) ->
          {
            u_top = txn.top;
            u_task = task.t_id;
            u_boundary = true;
            u_obj = Obj_id.name inv.Runtime.target;
            u_meth = inv.Runtime.meth_name;
          }
      | Not_started ->
          {
            u_top = txn.top;
            u_task = task.t_id;
            u_boundary = true;
            u_obj = "";
            u_meth = "";
          }
      | Step _ | Await_input _ | Joining | Idle ->
          {
            u_top = txn.top;
            u_task = task.t_id;
            u_boundary = false;
            u_obj = "";
            u_meth = "";
          })

let pick_unit (eng : t) units =
  match eng.config.strategy with
  | Round_robin -> List.nth units (eng.steps mod List.length units)
  | Random_pick rng -> Rng.pick rng units
  | Scripted script -> (
      match !script with
      | top :: rest -> (
          match List.find_opt (fun (txn, _) -> txn.top = top) units with
          | Some u ->
              script := rest;
              u
          | None -> List.nth units (eng.steps mod List.length units))
      | [] -> List.nth units (eng.steps mod List.length units))
  | Controlled choose ->
      let i = choose (List.map label_of_unit units) in
      if i >= 0 && i < List.length units then List.nth units i
      else List.nth units (eng.steps mod List.length units)

let run ?config ?atlas ?journal db ~protocol bodies =
  let (eng : t) = create ?config db ~protocol bodies in
  eng.journal <- journal;
  (match atlas with Some tbl -> preload_atlas eng tbl | None -> ());
  let runnable_units () = runnable_units eng in
  let parked () = parked eng in
  let blocked_exists () = blocked_exists eng in
  let rec loop () =
    if eng.steps >= eng.config.max_steps then begin
      (* out of budget: fail the stragglers, but keep stepping so their
         compensation phases can run to completion *)
      List.iter
        (fun txn ->
          match (txn.status, txn.aborting) with
          | Running, None -> abort_txn eng txn ~retry:false "step budget"
          | _ -> ())
        eng.txns;
      if
        List.exists (fun txn -> txn.status = Running) eng.txns
        && eng.steps < 4 * eng.config.max_steps
      then begin
        retry_blocked eng;
        (match runnable_units () with
        | [] ->
            if blocked_exists () then resolve_deadlock eng
            else eng.steps <- eng.steps + 1
        | units -> (
            (* compensation phase: the script no longer applies, but a
               controlled scheduler must still see every pick *)
            let txn, task_opt =
              match eng.config.strategy with
              | Round_robin | Scripted _ ->
                  List.nth units (eng.steps mod List.length units)
              | Random_pick _ | Controlled _ -> pick_unit eng units
            in
            match task_opt with
            | None -> eng.steps <- eng.steps + 1
            | Some task -> step eng txn task));
        loop ()
      end
      else
        (* even the compensations ran out of road *)
        List.iter
          (fun txn ->
            if txn.status = Running then begin
              ignore (unwind_tasks txn);
              finish_abort eng txn ~retry:false "step budget"
            end)
          eng.txns
    end
    else begin
      retry_blocked eng;
      match runnable_units () with
      | [] ->
          if blocked_exists () && Deadlock.find_cycle (waits_for eng) <> None
          then begin
            resolve_deadlock eng;
            loop ()
          end
          else if parked () then begin
            eng.steps <- eng.steps + 1;
            loop ()
          end
          else if blocked_exists () then begin
            resolve_deadlock eng;
            loop ()
          end
      | units ->
          let txn, task_opt = pick_unit eng units in
          (match task_opt with
          | None ->
              eng.steps <- eng.steps + 1;
              Stats.Counter.incr eng.counters "starts";
              start_txn eng txn
          | Some task -> step eng txn task);
          loop ()
    end
  in
  loop ();
  (match atlas with
  | Some _ ->
      Stats.Counter.incr ~by:(atlas_hits eng) eng.counters "atlas-hits"
  | None -> ());
  outcome_of eng

(* -- dynamic driving ----------------------------------------------------------------------

   The network server grows the transaction set while the engine runs:
   sessions [submit] interactive transactions whose bodies park on
   [Runtime.await] between client commands, the server [poke]s them when
   a command arrives and [pump]s the engine to quiescence after every
   external event.  Deadlines ([set_deadline], against the injected
   [config.now] clock) bound how long a session may hold the engine's
   locks; an expired transaction is aborted through the normal
   compensation path, so its locks are released and blocked waiters get
   in via [retry_blocked]. *)

let find_txn (eng : t) top = List.find_opt (fun x -> x.top = top) eng.txns

let submit (eng : t) ~top ~name ?deadline body =
  if find_txn eng top <> None then
    invalid_arg (Printf.sprintf "Engine.submit: transaction %d exists" top);
  eng.txns <-
    eng.txns
    @ [
        {
          top;
          tname = name;
          body;
          tasks = [];
          status = Running;
          attempt = 0;
          resume_after = 0;
          result = None;
          branch_counter = 0;
          aborting = None;
          first_step = -1;
          commit_step = -1;
          deadline;
          pinned = false;
        };
      ]

let set_deadline (eng : t) ~top deadline =
  match find_txn eng top with
  | Some txn -> txn.deadline <- deadline
  | None -> ()

let txn_state (eng : t) top =
  match find_txn eng top with
  | None -> `Unknown
  | Some txn -> (
      match txn.status with
      | Running -> `Running
      | Committed -> `Committed (Option.value txn.result ~default:Value.unit)
      | Aborted reason -> `Aborted reason)

(* Wake the transaction's task parked on [Runtime.await], if any.  False
   when nothing was awaiting — the transaction may be replaying an
   earlier attempt or still working; the caller's mailbox keeps the
   command and the body reaches it without the wake-up. *)
let poke (eng : t) top =
  match find_txn eng top with
  | Some txn when txn.status = Running ->
      List.exists
        (fun task ->
          match task.pending with
          | Await_input k ->
              task.pending <- Step (fun () -> Effect.Deep.continue k ());
              task.tstatus <- Runnable;
              true
          | Not_started | Step _ | Request _ | Joining | Idle -> false)
        txn.tasks
  | Some _ | None -> false

let abort_top (eng : t) ~top reason =
  match find_txn eng top with
  | Some txn when txn.status = Running && txn.aborting = None ->
      abort_txn eng txn ~retry:false reason;
      true
  | Some _ | None -> false

let check_deadlines (eng : t) =
  let now = eng.config.now () in
  List.iter
    (fun txn ->
      match (txn.status, txn.aborting, txn.deadline) with
      | Running, None, Some d when now > d && not txn.pinned ->
          Stats.Counter.incr eng.counters "deadline-aborts";
          abort_txn eng txn ~retry:false "deadline exceeded"
      | _ -> ())
    eng.txns

(* Step until quiescent: nothing runnable, no deadlock cycle to break,
   no backoff park to sit out — every live task either [Awaiting] client
   input or blocked on a lock whose release needs such input.  The batch
   loop's "stalled" fallback (abort the longest-blocked transaction when
   blocked tasks form no cycle) only fires when NO task awaits external
   input: a session thinking between commands legitimately keeps others
   waiting, and shooting those waiters would turn every think-time pause
   into aborts.  Bounded by [config.max_steps] per call as a safety
   valve; returns the number of steps taken. *)
let pump (eng : t) =
  let start = eng.steps in
  let budget = eng.steps + eng.config.max_steps in
  let rec loop () =
    check_deadlines eng;
    if eng.steps >= budget then ()
    else begin
      retry_blocked eng;
      match runnable_units eng with
      | [] ->
          if blocked_exists eng && Deadlock.find_cycle (waits_for eng) <> None
          then begin
            resolve_deadlock eng;
            loop ()
          end
          else if parked eng then begin
            eng.steps <- eng.steps + 1;
            loop ()
          end
          else if blocked_exists eng && not (awaiting_exists eng) then begin
            resolve_deadlock eng;
            loop ()
          end
      | units ->
          (match pick_unit eng units with
          | txn, None ->
              eng.steps <- eng.steps + 1;
              Stats.Counter.incr eng.counters "starts";
              start_txn eng txn
          | txn, Some task -> step eng txn task);
          loop ()
    end
  in
  loop ();
  eng.steps - start

(* Drop committed and aborted transactions the driver no longer needs —
   a long-running server retires sessions so [eng.txns] (and the
   per-transaction scan costs above) stay proportional to the live set.
   The committed work itself stays in [eng.order]/[eng.trees]: the
   certifier needs the full committed history. *)
let deadline_of (eng : t) ~top =
  match find_txn eng top with
  | Some txn when txn.status = Running -> txn.deadline
  | _ -> None

let retire (eng : t) ~top =
  match find_txn eng top with
  | Some txn when txn.status <> Running ->
      if txn.status = Committed then
        eng.retired <- (txn.top, txn.attempt) :: eng.retired;
      eng.txns <- List.filter (fun x -> x.top <> top) eng.txns;
      true
  | Some _ | None -> false

let counters (eng : t) = eng.counters
let steps (eng : t) = eng.steps

(* -- 2PC participant support ---------------------------------------------------

   A shard engine voting in a distributed commit pins the prepared
   transaction: it keeps holding its locks but wound-wait and deadline
   expiry may no longer abort it — only the coordinator's decision (or
   an explicit [abort_top] after [unpin]) resolves it.  Wounds attempted
   against pinned transactions are parked in [wounded_pinned] for the
   shard loop to escalate. *)

let pin (eng : t) ~top =
  match find_txn eng top with
  | Some txn when txn.status = Running -> txn.pinned <- true
  | Some _ | None -> ()

let unpin (eng : t) ~top =
  match find_txn eng top with
  | Some txn -> txn.pinned <- false
  | None -> ()

let take_wounded_pinned (eng : t) =
  let w = eng.wounded_pinned in
  eng.wounded_pinned <- [];
  w

(* After a [pump] to quiescence: true iff the transaction is running,
   not compensating, and every task is parked on [Runtime.await] — i.e.
   it has replayed its whole command log and holds stable results.  The
   shard's prepare step votes only in this state, so the partial tree it
   reports covers every call of the prepared transaction. *)
let txn_quiescent (eng : t) ~top =
  match find_txn eng top with
  | Some txn ->
      txn.status = Running && txn.aborting = None && txn.tasks <> []
      && List.for_all
           (fun tk ->
             match tk.pending with Await_input _ -> true | _ -> false)
           txn.tasks
  | None -> false

(* The committed history extended with the partial call trees of the
   still-running transactions in [live] (default: all of them).  This is
   what a shard's prepare step feeds [Schedule.compute]: dependency
   edges involving uncommitted neighbours must be reported to the
   coordinator too, otherwise a cycle through a transaction that
   prepares later (or never — a single-shard commit) would go unseen.
   Partial trees contain only *completed* subtrees; primitives recorded
   under a call frame still on the stack are filtered out of the order
   so the history stays well-formed, and running transactions that have
   completed no root-level call yet are omitted entirely (their root
   would be an order-less leaf). *)
let observed_history (eng : t) =
  let committed_tops =
    List.filter_map
      (fun txn ->
        if txn.status = Committed then Some (txn.top, txn.attempt) else None)
      eng.txns
    @ eng.retired
  in
  let committed_trees =
    List.filter (fun (top, _) -> List.mem_assoc top committed_tops) eng.trees
  in
  let live =
    List.filter_map
      (fun txn ->
        if txn.status = Running && txn.aborting = None then
          match List.find_opt (fun tk -> tk.t_parent = None) txn.tasks with
          | Some task -> (
              match List.rev task.stack with
              | root :: _ when root.child_trees <> [] ->
                  Some ((txn.top, txn.attempt), tree_of_frame root)
              | _ -> None)
          | None -> None
        else None)
      eng.txns
  in
  let atts = committed_tops @ List.map (fun ((top, att), _) -> (top, att)) live in
  let trees =
    committed_trees @ List.map (fun ((top, _), tree) -> (top, tree)) live
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  let leaves =
    List.fold_left
      (fun acc (_, tree) ->
        List.fold_left
          (fun acc act -> Ids.Action_id.Set.add (Action.id act) acc)
          acc
          (Call_tree.primitives tree))
      Ids.Action_id.Set.empty trees
  in
  let order =
    List.rev eng.order
    |> List.filter_map (fun (top, att, id, _) ->
           match List.assoc_opt top atts with
           | Some a when a = att && Ids.Action_id.Set.mem id leaves -> Some id
           | _ -> None)
  in
  History.v ~tops:(List.map snd trees) ~order
    ~commut:(Database.spec_registry eng.db)

(* The committed execution order with its stamps, final attempts only —
   [(action id, stamp)] in log order.  With a shared [next_stamp]
   counter, sorting several shards' stamped orders together reconstructs
   the global execution order. *)
let stamped_order (eng : t) =
  let committed_tops =
    List.filter_map
      (fun txn ->
        if txn.status = Committed then Some (txn.top, txn.attempt) else None)
      eng.txns
    @ eng.retired
  in
  List.rev eng.order
  |> List.filter_map (fun (top, att, id, stamp) ->
         match List.assoc_opt top committed_tops with
         | Some final when final = att -> Some (id, stamp)
         | _ -> None)

(* The certifier-side validation frontier: the smallest execution stamp
   recorded by any still-running transaction's current attempt, or
   [max_int] when no running transaction has recorded a stamp yet.
   Dependency edges always point from the earlier-stamped action of a
   conflicting pair to the later one, so a committed transaction whose
   stamps all lie below the frontier can no longer become the *target*
   of a new edge — every edge into it is already determined by the
   recorded history.  A sharded certify-mode vote anchors its window
   here instead of shipping the full history (see Shard.vote_window);
   such settled transactions can still be the *source* of an edge to a
   still-live transaction, which is why the shard keeps a monotone
   watermark rather than using the instantaneous frontier directly. *)
let validation_frontier (eng : t) =
  let live =
    List.filter_map
      (fun txn ->
        if txn.status = Running && txn.aborting = None then
          Some (txn.top, txn.attempt)
        else None)
      eng.txns
  in
  if live = [] then max_int
  else
    List.fold_left
      (fun acc (top, att, _, stamp) ->
        match List.assoc_opt top live with
        | Some a when a = att -> min acc stamp
        | _ -> acc)
      max_int eng.order

(* Committed call trees by top, final attempts — the raw material for a
   dispatcher-side merged history. *)
let committed_trees (eng : t) =
  let committed_tops =
    List.filter_map
      (fun txn ->
        if txn.status = Committed then Some (txn.top, txn.attempt) else None)
      eng.txns
    @ eng.retired
  in
  List.filter (fun (top, _) -> List.mem_assoc top committed_tops) eng.trees
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

(* -- durable recovery ---------------------------------------------------------

   [recover] turns a stable operation log (plus an optional snapshot)
   back into a live engine: analysis ([Recovery.analyze]) classifies the
   logged attempts; redo replays every logged root call of every attempt
   in original log order through real engine dispatch ("repeating
   history" at the method level — winners' reads may depend on committed
   subtransactions of attempts that later aborted, so losers' calls are
   replayed too); the decision points re-commit winners and re-abort the
   stably-aborted; attempts still in flight at the crash are losers and
   are aborted after the schedule, which drives the engine's own
   multi-level undo — compensations for their committed subtransactions,
   newest first (the reverse inheritance order of Defs. 10-13), as
   re-registered during the replay itself.  Physical before-images for
   uncommitted primitive actions are the page layer's business
   ([Logged_store.recover]); at this layer an uncommitted primitive
   simply never made it into the log.

   Replay runs each attempt as a live transaction fed from a Session-
   style command queue; the body re-reads its queue from the start on
   every engine attempt, so certification retries replay identically.
   Because replay is driven to quiescence between calls it is serial,
   and the lock set held at any point is a subset of the original run's
   — anything granted then is granted now. *)

type replay_item = Replay_call of Oplog.invocation | Replay_finish

type feed = { mutable items : replay_item array; mutable n : int }

let feed_push fd it =
  if fd.n = Array.length fd.items then begin
    let bigger = Array.make (max 8 (2 * Array.length fd.items)) Replay_finish in
    Array.blit fd.items 0 bigger 0 fd.n;
    fd.items <- bigger
  end;
  fd.items.(fd.n) <- it;
  fd.n <- fd.n + 1

let replay_body failures fd ctx =
  let i = ref 0 in
  let rec loop last =
    if !i < fd.n then begin
      let item = fd.items.(!i) in
      incr i;
      match item with
      | Replay_finish -> last
      | Replay_call inv -> (
          match
            Runtime.try_call ctx inv.Oplog.obj inv.Oplog.meth inv.Oplog.args
          with
          | Ok v -> loop v
          | Error _ ->
              incr failures;
              loop last)
    end
    else begin
      Runtime.await ctx;
      loop last
    end
  in
  loop Value.unit

type recovery_report = {
  plan : Recovery.plan;
  replayed_calls : int;
  skipped_attempts : int;
  replay_failures : int;
  rec_winners : (int * int) list;
  undone : (int * int) list;
  recertified : bool;
}

let recover ?config ?snapshot ?crash ?(recertify = true) db ~protocol oplog =
  let config =
    match config with Some c -> c | None -> default_config protocol
  in
  let eng = create ~config db ~protocol [] in
  let records = Oplog.stable oplog in
  let applied = match snapshot with Some s -> Snapshot.keys s | None -> [] in
  let plan = Recovery.analyze ~applied records in
  let replayed = ref 0 in
  let failures = ref 0 in
  (* snapshot restore: serial replay of the compacted winners, commit
     order *)
  (match snapshot with
  | Some s ->
      List.iter
        (fun (e : Snapshot.entry) ->
          let fd = { items = Array.make 8 Replay_finish; n = 0 } in
          List.iter (fun inv -> feed_push fd (Replay_call inv)) e.Snapshot.calls;
          feed_push fd Replay_finish;
          submit eng ~top:e.Snapshot.top ~name:e.Snapshot.name
            (replay_body failures fd);
          ignore (pump eng);
          (match txn_state eng e.Snapshot.top with
          | `Committed _ -> Stats.Counter.incr eng.counters "recovered-snapshot"
          | _ -> Stats.Counter.incr eng.counters "recovery-replay-failures");
          ignore (retire eng ~top:e.Snapshot.top))
        s.Snapshot.entries
  | None -> ());
  (* redo: repeat history in original log order *)
  let feeds : (int * int, feed) Hashtbl.t = Hashtbl.create 16 in
  let feed_of (a : Recovery.attempt) =
    match Hashtbl.find_opt feeds (a.Recovery.top, a.Recovery.attempt) with
    | Some fd -> fd
    | None ->
        let fd = { items = Array.make 8 Replay_finish; n = 0 } in
        Hashtbl.add feeds (a.Recovery.top, a.Recovery.attempt) fd;
        fd
  in
  List.iter
    (fun step ->
      match step with
      | Recovery.Start a when not a.Recovery.skip ->
          submit eng ~top:a.Recovery.top ~name:a.Recovery.name
            (replay_body failures (feed_of a));
          ignore (pump eng)
      | Recovery.Start _ -> ()
      | Recovery.Replay (a, inv, _) when not a.Recovery.skip ->
          feed_push (feed_of a) (Replay_call inv);
          incr replayed;
          ignore (poke eng a.Recovery.top);
          ignore (pump eng)
      | Recovery.Replay _ -> ()
      | Recovery.Decide a when not a.Recovery.skip -> (
          match a.Recovery.disposition with
          | Recovery.Committed ->
              feed_push (feed_of a) Replay_finish;
              ignore (poke eng a.Recovery.top);
              ignore (pump eng);
              (match txn_state eng a.Recovery.top with
              | `Committed _ ->
                  Stats.Counter.incr eng.counters "recovered-winners"
              | _ ->
                  Stats.Counter.incr eng.counters "recovery-replay-failures");
              ignore (retire eng ~top:a.Recovery.top)
          | Recovery.Aborted reason ->
              ignore (abort_top eng ~top:a.Recovery.top ("recovery: " ^ reason));
              ignore (pump eng);
              Stats.Counter.incr eng.counters "recovered-aborts";
              ignore (retire eng ~top:a.Recovery.top)
          | Recovery.Incomplete -> ())
      | Recovery.Decide _ -> ())
    plan.Recovery.schedule;
  (* multi-level undo: the losers (in flight at the crash), reverse
     begin order; aborting each drives the engine's compensation phase
     over the undo items re-registered during replay *)
  let undone = ref [] in
  List.iter
    (fun (top, att) ->
      match
        List.find_opt
          (fun a -> Recovery.key a = (top, att))
          plan.Recovery.attempts
      with
      | Some a when not a.Recovery.skip ->
          Crash.point crash Crash.Mid_undo;
          ignore (abort_top eng ~top "recovery: in flight at crash");
          ignore (pump eng);
          undone := (top, att) :: !undone;
          Stats.Counter.incr eng.counters "recovered-losers";
          ignore (retire eng ~top)
      | _ -> ())
    (List.rev plan.Recovery.losers);
  (* acceptance oracle: the recovered committed history must still be
     oo-serializable (Vbox-style re-verification) *)
  let recertified =
    if recertify then (Serializability.check (final_history eng)).oo_serializable
    else true
  in
  Stats.Counter.incr eng.counters "recoveries";
  let report =
    {
      plan;
      replayed_calls = !replayed;
      skipped_attempts = List.length plan.Recovery.skipped;
      replay_failures = !failures;
      rec_winners = plan.Recovery.winners;
      undone = List.rev !undone;
      recertified;
    }
  in
  (eng, report)
