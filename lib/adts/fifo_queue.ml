(* FIFO queue with state-dependent commutativity (Spector & Schwartz,
   §2): two dequeues never commute, two enqueues never commute (they fix
   the order of elements), but an enqueue commutes with a dequeue whenever
   the queue is non-empty — the dequeue takes an old element no matter
   which order they run in. *)

open Ooser_core

type t = { mutable front : Value.t list; mutable back : Value.t list }

let create () = { front = []; back = [] }

let is_empty t = t.front = [] && t.back = []

let length t = List.length t.front + List.length t.back

let enqueue t v = t.back <- v :: t.back

let dequeue t =
  match t.front with
  | x :: rest ->
      t.front <- rest;
      Some x
  | [] -> (
      match List.rev t.back with
      | [] -> None
      | x :: rest ->
          t.front <- rest;
          t.back <- [];
          Some x)

let peek t =
  match t.front with
  | x :: _ -> Some x
  | [] -> ( match List.rev t.back with x :: _ -> Some x | [] -> None)

let spec t =
  Commutativity.predicate ~name:"fifo-queue"
    ~vocab:[ "enqueue"; "dequeue"; "length" ]
    (fun a b ->
      match (Action.meth a, Action.meth b) with
      | "enqueue", "dequeue" | "dequeue", "enqueue" -> not (is_empty t)
      | "enqueue", "enqueue" -> (
          (* equal values are indistinguishable in the queue, so the two
             orders yield identical states — a conservative cell the
             spec-inference oracle proved commutative (the removeLastOf
             compensation already handles the abort case).  Probes
             without arguments stay conservative. *)
          match (Action.args a, Action.args b) with
          | v :: _, w :: _ -> Value.equal v w
          | _ -> false)
      | "dequeue", "dequeue" -> false
      | "length", "length" -> true
      | "length", _ | _, "length" -> false
      | _ -> false)
