(** FIFO queue with state-dependent commutativity (Spector & Schwartz,
    §2): enqueue and dequeue commute exactly when the queue is
    non-empty.  Two enqueues of the {e same} value also commute (the
    resulting queues are indistinguishable) — a conservative cell the
    spec-inference oracle closed, see DESIGN §16; two dequeues never
    do. *)

open Ooser_core

type t

val create : unit -> t
val is_empty : t -> bool
val length : t -> int
val enqueue : t -> Value.t -> unit
val dequeue : t -> Value.t option
val peek : t -> Value.t option

val spec : t -> Commutativity.spec
(** Commutativity against the queue's current state. *)
