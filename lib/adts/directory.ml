(* Directory: a name-to-value map (Weihl's directory type, §2).

   Keyed commutativity like the set, with the addition of a [list]
   operation that reads every name and therefore conflicts with all
   updates — the phantom problem at the abstract-data-type level, the
   analogue of the paper's readSeq on the encyclopedia. *)

open Ooser_core

type t = { mutable bindings : (Value.t * Value.t) list }

let create () = { bindings = [] }

let lookup t k =
  List.find_map
    (fun (k', v) -> if Value.equal k k' then Some v else None)
    t.bindings

let bind t k v =
  t.bindings <- (k, v) :: List.filter (fun (k', _) -> not (Value.equal k k')) t.bindings

let unbind t k =
  t.bindings <- List.filter (fun (k', _) -> not (Value.equal k k')) t.bindings

let names t = List.map fst t.bindings
let cardinal t = List.length t.bindings

let same_key_commutes m m' =
  match (m, m') with
  | "lookup", "lookup" -> true
  | ("bind" | "unbind"), _ | _, ("bind" | "unbind") -> false
  | _ -> false

let spec =
  let keyed =
    Commutativity.by_key ~key_of:Commutativity.first_arg
      (Commutativity.predicate ~stable:true ~name:"directory-keyed" (fun a b ->
           same_key_commutes (Action.meth a) (Action.meth b)))
  in
  Commutativity.predicate ~stable:true ~name:"directory"
    ~vocab:[ "bind"; "unbind"; "lookup"; "list" ]
    (fun a b ->
      match (Action.meth a, Action.meth b) with
      | "list", ("bind" | "unbind") | ("bind" | "unbind"), "list" -> false
      | "list", "list" | "list", "lookup" | "lookup", "list" -> true
      | _ -> Commutativity.test keyed a b)
