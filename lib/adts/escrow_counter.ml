(* Escrow counter (O'Neil; [9, 14, 17] in the paper).

   A bounded counter whose increments and decrements commute as long as
   the escrow test guarantees that both succeed in either order: the
   commutativity of two updates depends on the parameter values and the
   current state, which is exactly the refinement §2 attributes to the
   escrow method. *)

open Ooser_core

type t = { mutable value : int; low : int; high : int }

exception Bounds_violation of string

let create ?(low = min_int) ?(high = max_int) value =
  if value < low || value > high then
    invalid_arg "Escrow_counter.create: initial value out of bounds";
  { value; low; high }

let value t = t.value
let low t = t.low
let high t = t.high

let apply t delta =
  let v = t.value + delta in
  if v < t.low || v > t.high then
    raise
      (Bounds_violation
         (Printf.sprintf "escrow: %d%+d outside [%d, %d]" t.value delta t.low
            t.high))
  else t.value <- v

let incr t n =
  if n < 0 then invalid_arg "Escrow_counter.incr: negative amount";
  apply t n

let decr t n =
  if n < 0 then invalid_arg "Escrow_counter.decr: negative amount";
  apply t (-n)

let can_apply t delta =
  let v = t.value + delta in
  v >= t.low && v <= t.high

(* Delta of an update action; [None] for reads/unknown methods.  The
   banking vocabulary (deposit/withdraw) is accepted alongside
   incr/decr. *)
let delta_of act =
  let amount () =
    match Action.args act with
    | v :: _ -> ( match Value.to_int v with Some n -> Some n | None -> None)
    | [] -> None
  in
  match Action.meth act with
  | "incr" | "deposit" -> amount ()
  | "decr" | "withdraw" -> Option.map (fun n -> -n) (amount ())
  | _ -> None

let is_read act =
  match Action.meth act with "read" | "balance" -> true | _ -> false

(* Escrow commutativity: two updates commute when executing them in either
   order from the current state keeps every prefix within bounds; a read
   conflicts with every update and commutes with reads. *)
let spec t =
  Commutativity.predicate ~name:"escrow-counter"
    ~vocab:[ "incr"; "decr"; "read"; "deposit"; "withdraw"; "balance" ]
    (fun a b ->
      match (delta_of a, delta_of b) with
      | Some da, Some db ->
          can_apply t da && can_apply t db
          && t.value + da + db >= t.low
          && t.value + da + db <= t.high
      | None, None ->
          (* two reads commute; unknown methods conflict *)
          is_read a && is_read b
      | Some _, None | None, Some _ -> false)
