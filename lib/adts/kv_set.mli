(** A set of keys with insert/remove/contains (Weihl-style abstract data
    type commutativity, §2).

    Operations on different keys always commute; on the same key,
    insert/insert pairs commute (counted representation) while
    insert/remove, remove/remove (remove observably returns the dropped
    count, which depends on order) and membership tests conflict;
    [cardinal] commutes with the pure observers only.  The remove/remove
    and cardinal cells were corrected by the spec-inference oracle —
    see DESIGN §16.

    Elements carry an internal insertion count (membership = count ≥ 1):
    that is what gives same-key inserts {e commuting compensations} —
    undoing one of two concurrent inserts decrements the count instead of
    removing the element, preserving the other transaction's insert. *)

open Ooser_core

type t

val create : unit -> t
val mem : t -> Value.t -> bool

val insert : t -> Value.t -> unit
(** Increment the element's insertion count. *)

val remove : t -> Value.t -> int
(** Drop the element entirely; returns the count it had (for
    compensation). *)

val count : t -> Value.t -> int
val decr_count : t -> Value.t -> unit
(** The compensation of one insert. *)

val add_count : t -> Value.t -> int -> unit
(** The compensation of a remove: restore the dropped insertions. *)

val cardinal : t -> int
val elements : t -> Value.t list

val spec : Commutativity.spec
(** Keyed commutativity over the first argument. *)
