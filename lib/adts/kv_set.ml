(* A set of keys with insert/remove/contains (Weihl's abstract data type
   commutativity, §2).

   Insertions of different keys commute; same-key insert/insert and
   remove/remove pairs commute too (both orders leave the same state and
   return unit), while insert/remove and membership tests on the same key
   conflict.

   Internally every element carries an insertion count.  Set semantics are
   unaffected (membership = count >= 1), but the count is what makes
   same-key inserts have COMMUTING COMPENSATIONS: undoing one of two
   concurrent inserts of the same element decrements the count instead of
   removing the element outright, so the other transaction's insert
   survives.  This is the standard condition for open nesting — an
   operation may only be declared commuting if its compensation commutes
   too. *)

open Ooser_core

type t = { mutable members : (Value.t * int) list }

let create () = { members = [] }

let count t v =
  match List.find_opt (fun (x, _) -> Value.equal x v) t.members with
  | Some (_, n) -> n
  | None -> 0

let set_count t v n =
  let rest = List.filter (fun (x, _) -> not (Value.equal x v)) t.members in
  t.members <- (if n > 0 then (v, n) :: rest else rest)

let mem t v = count t v > 0

let insert t v = set_count t v (count t v + 1)

let decr_count t v = set_count t v (max 0 (count t v - 1))

let remove t v =
  let n = count t v in
  set_count t v 0;
  n

let add_count t v n = set_count t v (count t v + n)

let cardinal t = List.length t.members
let elements t = List.map fst t.members

(* Same-key method compatibility.  Two same-key removes do NOT commute:
   [remove] observably returns the dropped insertion count, so whichever
   runs first returns it and the other returns 0 — the spec-inference
   oracle (lib/analysis/infer.ml) found the earlier commuting cell
   unsound.  [cardinal] reads the whole membership, so it commutes with
   the pure observers and conflicts with every update — cells the same
   inference run proved, closing a conservative gap. *)
let same_key_commutes m m' =
  match (m, m') with
  | "insert", "insert" | "contains", "contains" -> true
  | "cardinal", ("cardinal" | "contains") | "contains", "cardinal" -> true
  | _ -> false

let spec =
  Commutativity.by_key ~key_of:Commutativity.first_arg
    (Commutativity.predicate ~stable:true ~name:"kv-set"
       ~vocab:[ "insert"; "remove"; "contains"; "cardinal" ]
       (fun a b -> same_key_commutes (Action.meth a) (Action.meth b)))
