(* Concurrency control protocols.

   A protocol answers lock requests issued by the execution engine right
   before an action's method body runs, and is told when actions complete
   and when top-level transactions commit or abort.  Three lock-based
   protocols are provided:

   - [flat_2pl]: conventional strict two-phase locking at the primitive
     (page) level; every lock is held until the top-level commit.  This is
     the baseline the paper argues against for long object-oriented
     operations (§1).
   - [closed_nested]: Moss-style closed nesting; primitive locks are
     acquired per subtransaction and retained upward until the top-level
     commit.  Between sequential top-level transactions this blocks
     exactly like [flat_2pl] (closed nesting only adds intra-transaction
     parallelism), which experiment E2 demonstrates.
   - [open_nested]: multi-level locking with semantic (commutativity)
     conflict tests at every object; a lock is released when the immediate
     caller of the locked action completes.  This is the protocol whose
     histories are oo-serializable (§2's open nested transactions).

   [unlocked] grants everything — used to sample raw interleavings for the
   acceptance-rate experiment (E3) and to show the checker catching
   non-serializable executions. *)

open Ooser_core
module Stats = Ooser_sim.Stats

type decision = Granted | Blocked of Action.t list

(* Optimistic protocols (lib/occ) grow the contract with a snapshot /
   validate surface: [on_begin] fires at every transaction attempt start
   (retries re-snapshot), [validate] runs at the top-level commit point
   with exactly the committing attempt's call tree and stamped
   primitives — [Error reason] sends the transaction through the normal
   abort-and-retry path instead of committing.  Lock-based protocols
   leave both [None]. *)
type t = {
  name : string;
  request : Action.t -> leaf:bool -> decision;
  on_end : Action.t -> unit;
  on_top_commit : int -> unit;
  on_top_abort : int -> unit;
  on_begin : (int -> unit) option;
  validate :
    (top:int ->
    tree:Call_tree.t ->
    prims:(Action_id.t * int) list ->
    (unit, string) result)
    option;
  counters : Stats.Counter.t;
  table : Lock_table.t option;  (* exposed for inspection in tests *)
}

let name t = t.name
let counters t = t.counters

let root_of action = Action_id.root (Action_id.top (Action.id action))

let unlocked () =
  let counters = Stats.Counter.create () in
  {
    name = "unlocked";
    request =
      (fun _ ~leaf:_ ->
        Stats.Counter.incr counters "requests";
        Stats.Counter.incr counters "grants";
        Granted);
    on_end = (fun _ -> ());
    on_top_commit = (fun _ -> ());
    on_top_abort = (fun _ -> ());
    on_begin = None;
    validate = None;
    counters;
    table = None;
  }

(* Lock-free optimistic protocol: every request is granted immediately
   (reads run against versioned snapshots, writes are buffered), and the
   whole admission decision moves to [validate] at commit point. *)
let optimistic ~name ?counters ~on_begin ~validate ~on_top_commit
    ~on_top_abort () =
  let counters =
    match counters with Some c -> c | None -> Stats.Counter.create ()
  in
  {
    name;
    request =
      (fun _ ~leaf:_ ->
        Stats.Counter.incr counters "requests";
        Stats.Counter.incr counters "grants";
        Granted);
    on_end = (fun _ -> ());
    on_top_commit;
    on_top_abort;
    on_begin = Some on_begin;
    validate = Some validate;
    counters;
    table = None;
  }

(* Shared skeleton: [wants_lock] decides which actions are locked at all;
   [scope_of] decides how long the lock lives. *)
let lock_based ~name ~reg ~wants_lock ~scope_of () =
  let table = Lock_table.create ~cache:(Commutativity.cached reg) () in
  let counters = Stats.Counter.create () in
  let request action ~leaf =
    Stats.Counter.incr counters "requests";
    if not (wants_lock action ~leaf) then begin
      Stats.Counter.incr counters "grants";
      Granted
    end
    else
      match Lock_table.conflicting reg table action with
      | [] ->
          Stats.Counter.incr counters "grants";
          Lock_table.add table ~action ~scope:(scope_of action);
          Granted
      | blockers ->
          Stats.Counter.incr counters "conflicts";
          Blocked (List.map (fun e -> e.Lock_table.action) blockers)
  in
  let on_end action =
    Lock_table.release_scope table (Action.id action);
    Lock_table.escalate table (Action.id action)
  in
  let on_top_commit top = Lock_table.release_top table top in
  let on_top_abort top = Lock_table.release_top table top in
  { name; request; on_end; on_top_commit; on_top_abort; on_begin = None;
    validate = None; counters; table = Some table }

let flat_2pl ~reg () =
  lock_based ~name:"flat-2pl" ~reg
    ~wants_lock:(fun _ ~leaf -> leaf)
    ~scope_of:root_of ()

let closed_nested ~reg () =
  (* Locks are acquired by the subtransaction but, on its commit, retained
     by the whole transaction: the scope is the top-level root, as in
     strict closed nesting without intra-transaction parallelism. *)
  lock_based ~name:"closed-nested" ~reg
    ~wants_lock:(fun _ ~leaf -> leaf)
    ~scope_of:root_of ()

let open_nested ~reg () =
  let scope_of action =
    match Action_id.parent (Action.id action) with
    | Some p -> p
    | None -> Action.id action
  in
  lock_based ~name:"open-nested" ~reg
    ~wants_lock:(fun action ~leaf:_ ->
      (* every non-root action takes a semantic lock on its object *)
      not (Action_id.is_root (Action.id action)))
    ~scope_of ()

let table t = t.table

(* No live lock entries: the state a correct recovery must leave the
   rebuilt lock table in once every replayed transaction is decided —
   loser entries in particular must all be gone. *)
let quiescent t =
  match t.table with None -> true | Some lt -> Lock_table.total lt = 0

let preload t tbl =
  match t.table with
  | None -> ()
  | Some lt -> (
      match Lock_table.cache lt with
      | Some c -> Commutativity.preload c tbl
      | None -> ())
let request t action ~leaf = t.request action ~leaf
let on_end t action = t.on_end action
let on_top_commit t top = t.on_top_commit top
let on_top_abort t top = t.on_top_abort top
let on_begin t top = match t.on_begin with Some f -> f top | None -> ()
let has_validate t = t.validate <> None

let validate t ~top ~tree ~prims =
  match t.validate with Some f -> f ~top ~tree ~prims | None -> Ok ()
