(** Semantic lock table.

    A lock entry records the action that acquired it and the scope action
    whose completion releases it.  In multi-level (open nested) locking
    the scope is the immediate caller: a lock taken for an operation on O
    is held until the calling subtransaction commits — precisely the span
    over which the paper's transaction dependencies at O matter.  In flat
    2PL the scope is the top-level transaction.

    Entries are bucketed per object by (method, args) class, with
    secondary indexes on scope, retainer and top-level transaction: a
    conflict probe touches only the classes held on one object (and can
    dismiss an entire class with a single memoised raw commutativity
    test when the object's spec is {!Commutativity.stable}), and the
    release paths are index lookups rather than whole-table scans. *)

open Ooser_core

type entry = {
  action : Action.t;
  scope : Action_id.t;  (** released when this action completes *)
  mutable retainer : Action_id.t;
      (** Moss's rule: the acquirer while it runs, then escalated to its
          caller on completion; never conflicts with the retainer's
          descendants *)
  mutable live : bool;
      (** cleared on release; dead entries are purged from the buckets
          lazily, on the next scan that meets them *)
}

type t

val create : ?cache:Commutativity.cache -> unit -> t
(** [cache] memoises the raw spec probes behind the class-skip test; it
    must wrap the same registry later passed to {!conflicting}. *)

val cache : t -> Commutativity.cache option
(** The memo cache given at creation — the hook through which
    [Engine.preload_atlas] installs the precomputed conflict table that
    the one-probe class skip then reads instead of probing the spec. *)

val add : t -> action:Action.t -> scope:Action_id.t -> unit
val entries_on : t -> Obj_id.t -> entry list

val conflicting : Commutativity.registry -> t -> Action.t -> entry list
(** Held entries on the action's object that conflict with it per the
    registry; entries on the requester's own call path are compatible. *)

val call_path_related : Action_id.t -> Action_id.t -> bool

val release_scope : t -> Action_id.t -> unit
(** Drop every entry whose scope is the given action. *)

val escalate : t -> Action_id.t -> unit
(** The action completed: locks it retains move up to its caller. *)

val release_top : t -> int -> unit
(** Drop every entry belonging to a top-level transaction. *)

val live_for_top : t -> int -> entry list
(** Live entries held on behalf of one top-level transaction — after a
    session abort this must be empty. *)

val all_entries : t -> entry list
val total : t -> int
val pp : Format.formatter -> t -> unit
