(* Semantic lock table.

   A lock entry records the action that acquired it, the scope action
   whose completion releases it, and the current RETAINER.  In
   multi-level (open nested) locking the scope is the immediate caller: a
   lock taken for an operation on O is held until the calling
   subtransaction commits — precisely the span over which the paper's
   transaction dependencies at O matter.  In flat 2PL the scope is the
   top-level transaction.

   The retainer implements Moss's rule for nested transactions: while the
   acquiring action runs, it retains the lock itself; when it completes,
   the lock is retained by its caller, and so on upward.  A lock never
   conflicts with requests from descendants of its retainer — this is
   what lets a parallel sibling branch proceed after the first branch
   completed, while still blocking it during the first branch's
   execution.

   Conflicts between different transactions are decided by the
   commutativity registry (Def. 9).

   Representation.  Entries live in per-object hash buckets keyed by the
   held action's (method, args) class, so a conflict probe touches only
   the classes present on one object — and can dismiss a whole class
   with a single raw commutativity test when the object's spec is
   stable (the decision is then a function of the class alone; the
   per-entry rules below only ever remove conflicts).  Release paths
   are driven by secondary indexes (scope, retainer, top) instead of
   whole-table scans: releasing marks entries dead in place, and the
   buckets purge dead entries lazily the next time they are scanned. *)

open Ooser_core

type entry = {
  action : Action.t;
  scope : Action_id.t;
  mutable retainer : Action_id.t;
  mutable live : bool;
}

(* (method, args) — one bucket per commutativity class on each object *)
type clazz = string * Value.t list

type obj_locks = { buckets : (clazz, entry list ref) Hashtbl.t }

type t = {
  objs : (Obj_id.t, obj_locks) Hashtbl.t;
  by_scope : (Action_id.t, entry list ref) Hashtbl.t;
  by_retainer : (Action_id.t, entry list ref) Hashtbl.t;
  by_top : (int, entry list ref) Hashtbl.t;
  cache : Commutativity.cache option;
      (* shared memo of raw spec decisions, used for the class-skip
         probe; must wrap the registry passed to [conflicting] *)
  mutable n_live : int;
}

let create ?cache () =
  {
    objs = Hashtbl.create 64;
    by_scope = Hashtbl.create 64;
    by_retainer = Hashtbl.create 64;
    by_top = Hashtbl.create 16;
    cache;
    n_live = 0;
  }

let cache t = t.cache

let index tbl key e =
  match Hashtbl.find_opt tbl key with
  | Some r -> r := e :: !r
  | None -> Hashtbl.add tbl key (ref [ e ])

(* drop dead entries from an index/bucket list in place *)
let purge r = r := List.filter (fun e -> e.live) !r

let obj_locks t obj =
  match Hashtbl.find_opt t.objs obj with
  | Some ol -> ol
  | None ->
      let ol = { buckets = Hashtbl.create 8 } in
      Hashtbl.add t.objs obj ol;
      ol

let add t ~action ~scope =
  let e = { action; scope; retainer = Action.id action; live = true } in
  let ol = obj_locks t (Action.obj action) in
  index ol.buckets (Action.meth action, Action.args action) e;
  index t.by_scope scope e;
  index t.by_retainer e.retainer e;
  index t.by_top (Action_id.top scope) e;
  t.n_live <- t.n_live + 1

let entries_on t obj =
  match Hashtbl.find_opt t.objs obj with
  | None -> []
  | Some ol ->
      Hashtbl.fold
        (fun _ r acc ->
          purge r;
          !r @ acc)
        ol.buckets []

(* Same transaction and one is an ancestor of (or equal to) the other. *)
let call_path_related a b =
  Action_id.top a = Action_id.top b
  && (Action_id.equal a b
     || Action_id.is_proper_ancestor a b
     || Action_id.is_proper_ancestor b a)

(* The retained-lock compatibility rule: a request is compatible with an
   entry whose retainer is the requester itself or one of its
   ancestors. *)
let retained_compatible entry requester_id =
  Action_id.top entry.retainer = Action_id.top requester_id
  && (Action_id.equal entry.retainer requester_id
     || Action_id.is_proper_ancestor entry.retainer requester_id)

let conflicting reg t action =
  match Hashtbl.find_opt t.objs (Action.obj action) with
  | None -> []
  | Some ol ->
      let id = Action.id action in
      let spec_stable =
        Commutativity.stable
          (Commutativity.spec_for reg (Action.obj action))
      in
      Hashtbl.fold
        (fun _ r acc ->
          purge r;
          match !r with
          | [] -> acc
          | rep :: _ ->
              (* one memoised raw-spec probe dismisses the whole class
                 when the spec is stable: commutation at the spec level
                 holds for every member, and the per-entry rules below
                 only remove further conflicts, never add any *)
              let class_commutes =
                spec_stable
                &&
                match t.cache with
                | Some c -> Commutativity.cached_test c action rep.action
                | None ->
                    Commutativity.test
                      (Commutativity.spec_for reg (Action.obj action))
                      action rep.action
              in
              if class_commutes then acc
              else
                List.fold_left
                  (fun acc e ->
                    if
                      (not (retained_compatible e id))
                      && (not (call_path_related (Action.id e.action) id))
                      && Commutativity.conflicts reg action e.action
                    then e :: acc
                    else acc)
                  acc !r)
        ol.buckets []

let kill t e =
  if e.live then begin
    e.live <- false;
    t.n_live <- t.n_live - 1
  end

let drain tbl key =
  match Hashtbl.find_opt tbl key with
  | None -> []
  | Some r ->
      Hashtbl.remove tbl key;
      List.filter (fun e -> e.live) !r

let release_scope t scope = List.iter (kill t) (drain t.by_scope scope)

(* Completion of an action: every lock it retains moves up to its
   caller. *)
let escalate t finished =
  match Action_id.parent finished with
  | None -> ()
  | Some parent ->
      List.iter
        (fun e ->
          e.retainer <- parent;
          index t.by_retainer parent e)
        (drain t.by_retainer finished)

let release_top t top = List.iter (kill t) (drain t.by_top top)

(* Live entries held on behalf of one top-level transaction — the
   post-mortem a server runs after killing a session: a dead transaction
   must retain nothing. *)
let live_for_top t top =
  match Hashtbl.find_opt t.by_top top with
  | None -> []
  | Some r ->
      purge r;
      !r

let all_entries t =
  Hashtbl.fold (fun obj _ objs -> obj :: objs) t.objs []
  |> List.concat_map (entries_on t)

let total t = t.n_live

let pp ppf t =
  let pp_entry ppf e =
    Fmt.pf ppf "%a held-by %a retained-by %a until %a" Obj_id.pp
      (Action.obj e.action) Action.pp e.action Action_id.pp e.retainer
      Action_id.pp e.scope
  in
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut pp_entry) (all_entries t)
