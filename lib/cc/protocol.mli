(** Concurrency control protocols.

    A protocol answers lock requests issued by the execution engine right
    before an action's method body runs, and is told when actions
    complete and when top-level transactions commit or abort.

    - {!flat_2pl} — conventional strict two-phase locking at the
      primitive (page) level, locks held to top-level commit: the
      baseline the paper argues against for long object-oriented
      operations (§1).
    - {!closed_nested} — Moss-style closed nesting: primitive locks
      acquired per subtransaction and retained upward to top-level
      commit.  For sequential transactions it blocks exactly like
      {!flat_2pl} (closed nesting only adds intra-transaction
      parallelism) — experiment E2 demonstrates this.
    - {!open_nested} — multi-level locking with semantic (commutativity)
      conflict tests at every object; a lock is released when the
      immediate caller of the locked action completes.  Histories it
      admits are oo-serializable.
    - {!unlocked} — grants everything; used to sample raw interleavings
      (experiment E3) and to show the checker catching violations. *)

open Ooser_core
module Stats = Ooser_sim.Stats

type decision = Granted | Blocked of Action.t list

type t

val name : t -> string

val request : t -> Action.t -> leaf:bool -> decision
(** Ask to start executing an action ([leaf] marks primitive methods).
    [Granted] may record a lock; [Blocked] names the conflicting
    holders. *)

val on_end : t -> Action.t -> unit
(** The action completed (committed at its level). *)

val on_top_commit : t -> int -> unit
val on_top_abort : t -> int -> unit

val counters : t -> Stats.Counter.t
(** ["requests"], ["grants"], ["conflicts"]. *)

val table : t -> Lock_table.t option

val quiescent : t -> bool
(** No live lock entries (trivially true for lock-free protocols) — the
    state a rebuilt lock table must be in after recovery has decided
    every replayed transaction: in particular, no loser entries. *)

val preload : t -> Commutativity.table -> unit
(** Install a precomputed conflict table into the lock table's memo
    cache, so the one-probe class skip answers from the table instead
    of probing the spec.  No-op for lock-free protocols. *)

val unlocked : unit -> t
val flat_2pl : reg:Commutativity.registry -> unit -> t
val closed_nested : reg:Commutativity.registry -> unit -> t
val open_nested : reg:Commutativity.registry -> unit -> t
