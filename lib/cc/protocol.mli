(** Concurrency control protocols.

    A protocol answers lock requests issued by the execution engine right
    before an action's method body runs, and is told when actions
    complete and when top-level transactions commit or abort.

    - {!flat_2pl} — conventional strict two-phase locking at the
      primitive (page) level, locks held to top-level commit: the
      baseline the paper argues against for long object-oriented
      operations (§1).
    - {!closed_nested} — Moss-style closed nesting: primitive locks
      acquired per subtransaction and retained upward to top-level
      commit.  For sequential transactions it blocks exactly like
      {!flat_2pl} (closed nesting only adds intra-transaction
      parallelism) — experiment E2 demonstrates this.
    - {!open_nested} — multi-level locking with semantic (commutativity)
      conflict tests at every object; a lock is released when the
      immediate caller of the locked action completes.  Histories it
      admits are oo-serializable.
    - {!unlocked} — grants everything; used to sample raw interleavings
      (experiment E3) and to show the checker catching violations.
    - {!optimistic} — lock-free: every request granted, reads run against
      versioned snapshots taken at {!on_begin}, and admission moves to
      the {!validate} hook the engine runs at the top-level commit point
      (the multiversion OCC protocol of [lib/occ] builds on this). *)

open Ooser_core
module Stats = Ooser_sim.Stats

type decision = Granted | Blocked of Action.t list

type t

val name : t -> string

val request : t -> Action.t -> leaf:bool -> decision
(** Ask to start executing an action ([leaf] marks primitive methods).
    [Granted] may record a lock; [Blocked] names the conflicting
    holders. *)

val on_end : t -> Action.t -> unit
(** The action completed (committed at its level). *)

val on_top_commit : t -> int -> unit
val on_top_abort : t -> int -> unit

val on_begin : t -> int -> unit
(** A new attempt of top-level transaction [top] is starting; optimistic
    protocols snapshot their version store here (retries re-snapshot).
    No-op for lock-based protocols. *)

val has_validate : t -> bool
(** Whether the protocol carries a commit-time validation hook — i.e. it
    is an optimistic protocol whose admission decision runs at commit. *)

val validate :
  t ->
  top:int ->
  tree:Call_tree.t ->
  prims:(Action_id.t * int) list ->
  (unit, string) result
(** Commit-time validation, called by the engine right before a
    top-level commit with the committing attempt's call tree and its
    executed primitives (with global execution stamps).  [Error reason]
    makes the engine roll the transaction back and retry it through the
    normal internal-retry machinery.  [Ok ()] for protocols without a
    validation surface. *)

val counters : t -> Stats.Counter.t
(** ["requests"], ["grants"], ["conflicts"]. *)

val table : t -> Lock_table.t option

val quiescent : t -> bool
(** No live lock entries (trivially true for lock-free protocols) — the
    state a rebuilt lock table must be in after recovery has decided
    every replayed transaction: in particular, no loser entries. *)

val preload : t -> Commutativity.table -> unit
(** Install a precomputed conflict table into the lock table's memo
    cache, so the one-probe class skip answers from the table instead
    of probing the spec.  No-op for lock-free protocols. *)

val unlocked : unit -> t
val flat_2pl : reg:Commutativity.registry -> unit -> t
val closed_nested : reg:Commutativity.registry -> unit -> t
val open_nested : reg:Commutativity.registry -> unit -> t

val optimistic :
  name:string ->
  ?counters:Stats.Counter.t ->
  on_begin:(int -> unit) ->
  validate:
    (top:int ->
    tree:Call_tree.t ->
    prims:(Action_id.t * int) list ->
    (unit, string) result) ->
  on_top_commit:(int -> unit) ->
  on_top_abort:(int -> unit) ->
  unit ->
  t
(** Lock-free optimistic protocol: requests are always granted and the
    given hooks carry the whole admission decision.  [counters] lets the
    caller share the counter set its hooks increment. *)
