(* A compound document with three levels of nesting — "processing the
   layout of a document consists of processing the contents, the
   chapters, ..." (Fig. 1):

     Book ──▶ Chapter objects ──▶ Section objects ──▶ Page objects

   Edits in different chapters commute at book level; edits of different
   sections commute at chapter level; sections of one chapter share pages,
   so concurrent edits collide at the bottom exactly as in the paper's
   index example — three levels of semantic inheritance for the checker to
   cut short. *)

open Ooser_core
open Ooser_oodb
open Ooser_storage

type t = {
  db : Database.t;
  pool : Buffer_pool.t;
  book : Obj_id.t;
  chapters : int;
  sections_per_chapter : int;
  rid : (int * int) array array;  (* chapter -> section -> page, slot *)
}

let chapter_obj name c = Obj_id.v (Printf.sprintf "%s.Ch%d" name c)
let section_obj name c s = Obj_id.v (Printf.sprintf "%s.Ch%d.Sec%d" name c s)
let page_obj name pid = Obj_id.v (Printf.sprintf "%s.Page%d" name pid)

let page_spec = Commutativity.rw ~reads:[ "read" ] ~writes:[ "write" ]

let register_page t name pid =
  let read _ctx args =
    match args with
    | [ Value.Int slot ] ->
        Buffer_pool.with_page t.pool pid ~f:(fun page ->
            (Value.str (Page.get_exn page slot), false))
    | _ -> invalid_arg "page read"
  in
  let write ctx args =
    match args with
    | [ Value.Int slot; Value.Str data ] ->
        Buffer_pool.with_page t.pool pid ~f:(fun page ->
            let old = Page.get_exn page slot in
            Runtime.on_undo ctx (fun () ->
                Buffer_pool.with_page t.pool pid ~f:(fun page ->
                    (ignore (Page.update page slot old), true)));
            if not (Page.update page slot data) then failwith "section too long";
            (Value.unit, true))
    | _ -> invalid_arg "page write"
  in
  Database.register_or_replace t.db (page_obj name pid) ~spec:page_spec
    [ ("read", Database.primitive read); ("write", Database.primitive write) ]

let section_spec = Commutativity.rw ~reads:[ "read" ] ~writes:[ "write" ]

let register_section t name c s =
  let pid, slot = t.rid.(c).(s) in
  let read ctx _ = Runtime.call ctx (page_obj name pid) "read" [ Value.int slot ] in
  let write ctx args =
    match args with
    | [ Value.Str text ] ->
        (* return the old text so the compensation can restore it after
           this subtransaction has committed at its level *)
        let old = Runtime.call ctx (page_obj name pid) "read" [ Value.int slot ] in
        ignore
          (Runtime.call ctx (page_obj name pid) "write"
             [ Value.int slot; Value.str text ]);
        old
    | _ -> invalid_arg "section write"
  in
  let compensate_write _args old =
    match old with
    | Value.Str _ ->
        Database.Inverse
          { Runtime.target = section_obj name c s;
            meth_name = "write"; args = [ old ] }
    | _ -> Database.Keep_undo
  in
  Database.register_or_replace t.db (section_obj name c s) ~spec:section_spec
    [
      ("read", Database.composite read);
      ("write", Database.composite ~compensate:compensate_write write);
    ]

(* Chapter-level semantics: edits of different sections commute; the
   chapter-wide layout pass conflicts with every edit in the chapter. *)
let chapter_spec =
  let keyed =
    Commutativity.by_key ~key_of:Commutativity.first_arg
      (Commutativity.predicate ~stable:true ~name:"chapter-keyed" (fun a b ->
           match (Action.meth a, Action.meth b) with
           | "read", "read" -> true
           | _ -> false))
  in
  Commutativity.predicate ~stable:true ~name:"chapter" (fun a b ->
      match (Action.meth a, Action.meth b) with
      | "layout", "layout" -> false
      | "layout", _ | _, "layout" -> false
      | _ -> Commutativity.test keyed a b)

let register_chapter t name c =
  let sec args =
    match args with
    | Value.Int s :: _ when s >= 0 && s < t.sections_per_chapter -> s
    | _ -> invalid_arg "bad section number"
  in
  let edit ctx args =
    match args with
    | [ Value.Int _; Value.Str text ] ->
        Runtime.call ctx (section_obj name c (sec args)) "write" [ Value.str text ]
    | _ -> invalid_arg "chapter edit"
  in
  let read ctx args = Runtime.call ctx (section_obj name c (sec args)) "read" [] in
  let layout ctx _ =
    Value.list
      (List.init t.sections_per_chapter (fun s ->
           Runtime.call ctx (section_obj name c s) "read" []))
  in
  Database.register_or_replace t.db (chapter_obj name c) ~spec:chapter_spec
    [
      ("edit", Database.composite edit);
      ("read", Database.composite read);
      ("layout", Database.composite layout);
    ]

(* Book-level semantics: operations on different chapters commute; the
   whole-book layout conflicts with every edit. *)
let book_spec =
  let keyed =
    Commutativity.by_key ~key_of:Commutativity.first_arg
      (Commutativity.predicate ~stable:true ~name:"book-keyed" (fun a b ->
           match (Action.meth a, Action.meth b) with
           | "read", "read" -> true
           | _ -> false))
  in
  Commutativity.predicate ~stable:true ~name:"book" (fun a b ->
      match (Action.meth a, Action.meth b) with
      | "layout", "layout" -> false
      | "layout", _ | _, "layout" -> false
      | _ -> Commutativity.test keyed a b)

let register_book t name =
  let ch args =
    match args with
    | Value.Int c :: _ when c >= 0 && c < t.chapters -> c
    | _ -> invalid_arg "bad chapter number"
  in
  let edit ctx args =
    match args with
    | [ Value.Int _; Value.Int s; Value.Str text ] ->
        Runtime.call ctx (chapter_obj name (ch args)) "edit"
          [ Value.int s; Value.str text ]
    | _ -> invalid_arg "book edit"
  in
  let read ctx args =
    match args with
    | [ Value.Int _; Value.Int s ] ->
        Runtime.call ctx (chapter_obj name (ch args)) "read" [ Value.int s ]
    | _ -> invalid_arg "book read"
  in
  let layout ctx _ =
    (* chapter layouts may run as parallel branches (Def. 9) *)
    Value.list
      (Runtime.call_par ctx
         (List.init t.chapters (fun c ->
              Runtime.invocation (chapter_obj name c) "layout" [])))
  in
  Database.register_or_replace t.db t.book ~spec:book_spec
    [
      ("edit", Database.composite edit);
      ("read", Database.composite read);
      ("layout", Database.composite layout);
    ]

let create ?(name = "Book") ?(chapters = 3) ?(sections_per_chapter = 4)
    ?(page_size = 4096) db =
  if chapters <= 0 || sections_per_chapter <= 0 then
    invalid_arg "Compound_doc.create";
  let disk = Disk.create ~page_size () in
  let pool = Buffer_pool.create ~capacity:64 disk in
  let t =
    {
      db;
      pool;
      book = Obj_id.v name;
      chapters;
      sections_per_chapter;
      rid = Array.init chapters (fun _ -> Array.make sections_per_chapter (0, 0));
    }
  in
  (* one shared page per chapter: its sections are co-located *)
  for c = 0 to chapters - 1 do
    let pid = Buffer_pool.alloc pool in
    register_page t name pid;
    for s = 0 to sections_per_chapter - 1 do
      let slot =
        Buffer_pool.with_page pool pid ~f:(fun page ->
            match Page.insert page (Printf.sprintf "ch%d sec%d" c s) with
            | Some sl -> (sl, true)
            | None -> failwith "compound page full")
      in
      t.rid.(c).(s) <- (pid, slot);
      register_section t name c s
    done;
    register_chapter t name c
  done;
  register_book t name;
  t

let book_object t = t.book
let chapters t = t.chapters
let sections_per_chapter t = t.sections_per_chapter

let edit t ctx ~chapter ~section ~text =
  ignore
    (Runtime.call ctx t.book "edit"
       [ Value.int chapter; Value.int section; Value.str text ])

let read t ctx ~chapter ~section =
  Value.to_str_exn
    (Runtime.call ctx t.book "read" [ Value.int chapter; Value.int section ])

let layout t ctx =
  match Runtime.call ctx t.book "layout" [] with
  | Value.List chs ->
      List.map
        (fun ch ->
          match ch with
          | Value.List parts -> List.filter_map Value.to_str parts
          | _ -> [])
        chs
  | _ -> []
