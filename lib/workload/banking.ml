(* Banking workload: accounts with escrow semantics (§2's financial-market
   side of Fig. 1, and the semantics-ablation experiment E5).

   Each account is an object over an escrow counter; the commutativity
   level is a parameter:

   - [`Escrow]   deposits and withdrawals commute while the escrow test
                 passes (parameter- and state-dependent commutativity);
   - [`Rw]       deposits/withdrawals are writes, balance reads are
                 reads — method-level but value-blind semantics;
   - [`Conflict] everything conflicts (the conventional view). *)

open Ooser_core
open Ooser_oodb
module Escrow = Ooser_adts.Escrow_counter
module Rng = Ooser_sim.Rng
module Dist = Ooser_sim.Dist

type semantics = [ `Escrow | `Rw | `Conflict ]

let account_obj i = Obj_id.v (Printf.sprintf "Account%d" i)

let spec_for semantics counter =
  match semantics with
  | `Escrow -> Escrow.spec counter
  | `Rw ->
      Commutativity.rw ~reads:[ "balance" ]
        ~writes:[ "deposit"; "withdraw" ]
  | `Conflict -> Commutativity.all_conflict

let register_account db ~semantics i ~balance ~low ~high =
  let counter = Escrow.create ~low ~high balance in
  let amount = function
    | [ Value.Int n ] -> n
    | _ -> invalid_arg "amount expected"
  in
  let deposit ctx args =
    let n = amount args in
    Escrow.incr counter n;
    Runtime.on_undo ctx (fun () -> Escrow.decr counter n);
    Value.unit
  in
  let withdraw ctx args =
    let n = amount args in
    Escrow.decr counter n;
    Runtime.on_undo ctx (fun () -> Escrow.incr counter n);
    Value.unit
  in
  let balance _ctx _args = Value.int (Escrow.value counter) in
  Database.register db (account_obj i)
    ~spec:(spec_for semantics counter)
    [
      ("deposit", Database.primitive deposit);
      ("withdraw", Database.primitive withdraw);
      ("balance", Database.primitive balance);
    ];
  counter

type params = {
  accounts : int;
  initial : int;
  low : int;
  high : int;
  n_txns : int;
  transfers_per_txn : int;
  amount : int;
  dist : Dist.t;
}

let default_params =
  {
    accounts = 10;
    initial = 100;
    low = 0;
    high = 1_000_000;
    n_txns = 8;
    transfers_per_txn = 3;
    amount = 5;
    dist = Dist.uniform 10;
  }

let setup ~semantics p =
  let db = Database.create () in
  let counters =
    Array.init p.accounts (fun i ->
        register_account db ~semantics i ~balance:p.initial ~low:p.low
          ~high:p.high)
  in
  (db, counters)

let transfer_body p ~pairs ctx =
  List.iter
    (fun (src, dst) ->
      ignore
        (Runtime.call ctx (account_obj src) "withdraw" [ Value.int p.amount ]);
      ignore
        (Runtime.call ctx (account_obj dst) "deposit" [ Value.int p.amount ]))
    pairs;
  Value.unit

(* The (source, destination) pairs of every transfer transaction —
   shared by the executable bodies and the static summaries so the
   analyzer sees exactly the program the engine would run. *)
let transfer_plan ~rng p =
  List.init p.n_txns (fun i ->
      let pairs =
        List.init p.transfers_per_txn (fun _ ->
            let src = Dist.sample rng p.dist mod p.accounts in
            let dst = (src + 1 + Rng.int rng (p.accounts - 1)) mod p.accounts in
            (src, dst))
      in
      (i + 1, pairs))

let transactions ~rng p =
  List.map
    (fun (i, pairs) ->
      (i, Printf.sprintf "transfer%d" i, transfer_body p ~pairs))
    (transfer_plan ~rng p)

module Summary = Ooser_analysis.Summary

let static_summaries ~rng p =
  List.map
    (fun (i, pairs) ->
      Summary.txn
        (Printf.sprintf "transfer%d" i)
        (List.concat_map
           (fun (src, dst) ->
             [
               Summary.call
                 ~args:[ Value.int p.amount ]
                 (account_obj src) "withdraw" [];
               Summary.call
                 ~args:[ Value.int p.amount ]
                 (account_obj dst) "deposit" [];
             ])
           pairs))
    (transfer_plan ~rng p)

let total_balance counters =
  Array.fold_left (fun acc c -> acc + Escrow.value c) 0 counters
