(* Encyclopedia workloads: transaction mixes over the Fig. 2 application.

   The mix mirrors the publication-environment motivation of §1: inserts
   of new items, searches, in-place updates, and the long sequential read
   (readSeq) that conflicts with every writer at the Enc level. *)

open Ooser_core
open Ooser_oodb
module Rng = Ooser_sim.Rng
module Dist = Ooser_sim.Dist

type mix = {
  p_insert : float;
  p_search : float;
  p_update : float;
  p_readseq : float;
}

let insert_heavy = { p_insert = 0.6; p_search = 0.3; p_update = 0.1; p_readseq = 0.0 }
let read_mostly = { p_insert = 0.1; p_search = 0.7; p_update = 0.2; p_readseq = 0.0 }
let with_scans = { p_insert = 0.4; p_search = 0.3; p_update = 0.2; p_readseq = 0.1 }

type params = {
  mix : mix;
  dist : Dist.t;  (* key popularity *)
  ops_per_txn : int;
  n_txns : int;
  preload : int;  (* keys inserted before the measured run *)
}

let default_params =
  {
    mix = insert_heavy;
    dist = Dist.uniform 200;
    ops_per_txn = 4;
    n_txns = 8;
    preload = 50;
  }

let key_of i = Printf.sprintf "k%05d" i

(* Preload runs as one transaction under a trivial protocol so the
   measured run starts from a populated tree. *)
let preload ?(keep = fun _ -> true) db enc ~keys =
  if keys > 0 then begin
    let body ctx =
      for i = 0 to keys - 1 do
        let key = key_of i in
        if keep key then
          Encyclopedia.insert enc ctx ~key ~text:("seed" ^ string_of_int i)
      done;
      Value.unit
    in
    let protocol = Ooser_cc.Protocol.unlocked () in
    let out = Engine.run db ~protocol [ (999, "preload", body) ] in
    match out.Engine.committed with
    | [ 999 ] -> ()
    | _ -> failwith "enc preload failed"
  end

type op = Insert of string | Search of string | Update of string | ReadSeq

let pick_op rng p ~fresh_key =
  let r = Rng.float rng in
  let m = p.mix in
  if r < m.p_insert then Insert (fresh_key ())
  else if r < m.p_insert +. m.p_search then
    Search (key_of (Dist.sample rng p.dist mod max 1 p.preload))
  else if r < m.p_insert +. m.p_search +. m.p_update then
    Update (key_of (Dist.sample rng p.dist mod max 1 p.preload))
  else ReadSeq

(* Generate the operation scripts up front (deterministic given the rng) —
   shared by the executable bodies and the static summaries. *)
let plan ~rng p =
  let fresh = ref p.preload in
  let fresh_key () =
    let k = !fresh in
    incr fresh;
    key_of k
  in
  List.init p.n_txns (fun i ->
      (i + 1, List.init p.ops_per_txn (fun _ -> pick_op rng p ~fresh_key)))

let transactions ~rng p enc =
  List.map
    (fun (i, ops) ->
      let body ctx =
        List.iter
          (fun op ->
            match op with
            | Insert k -> Encyclopedia.insert enc ctx ~key:k ~text:("v" ^ k)
            | Search k -> ignore (Encyclopedia.search enc ctx ~key:k)
            | Update k -> ignore (Encyclopedia.update enc ctx ~key:k ~text:"upd")
            | ReadSeq -> ignore (Encyclopedia.read_seq enc ctx))
          ops;
        Value.unit
      in
      (i, Printf.sprintf "txn%d" i, body))
    (plan ~rng p)

module Summary = Ooser_analysis.Summary

(* Static call summaries at the schema level (Enc, BpTree, LinkedList;
   leaves, pages and items are created dynamically and stay below the
   summary granularity).  BpTree.insert includes its potential re-entrant
   grow — the Def. 5 extension site the analyzer must surface. *)
let summary_of_op enc op =
  let enc_o = Encyclopedia.enc_object enc in
  let bptree = Encyclopedia.bptree_object enc in
  let ll = Encyclopedia.linkedlist_object enc in
  match op with
  | Insert k ->
      Summary.call
        ~args:[ Value.str k; Value.str ("v" ^ k) ]
        enc_o "insert"
        [
          Summary.call ~args:[ Value.str k ] bptree "insert"
            [ Summary.call bptree "grow" [] ];
          Summary.call ~args:[ Value.str k ] ll "append" [];
        ]
  | Search k ->
      Summary.call ~args:[ Value.str k ] enc_o "search"
        [ Summary.call ~args:[ Value.str k ] bptree "search" [] ]
  | Update k ->
      Summary.call
        ~args:[ Value.str k; Value.str "upd" ]
        enc_o "update"
        [ Summary.call ~args:[ Value.str k ] bptree "search" [] ]
  | ReadSeq ->
      Summary.call enc_o "readSeq" [ Summary.call ll "readSeq" [] ]

let static_summaries ~rng p enc =
  List.map
    (fun (i, ops) ->
      Summary.txn
        (Printf.sprintf "txn%d" i)
        (List.map (summary_of_op enc) ops))
    (plan ~rng p)

(* Build a database + encyclopedia, preload it, and return everything
   needed for a measured run. *)
let setup ?(fanout = 4) ~rng p =
  let db = Database.create () in
  let enc = Encyclopedia.create ~fanout db in
  preload db enc ~keys:p.preload;
  (db, enc, transactions ~rng p enc)
