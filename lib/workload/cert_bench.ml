(* Certification scaling benchmark.

   The workload is shaped to expose the asymptotic difference between
   the incremental certifier and the from-scratch checker, not to favour
   either on constants:

   - every transaction reads a single shared HOT object with the same
     method and arguments, so HOT accumulates one large commutativity
     class that the incremental bootstrap dismisses with one memoised
     spec probe, while the from-scratch checker re-examines all O(n^2)
     pairs of it on every run;

   - transaction [i] writes its own object W{i} and its predecessor's
     W{i-1}, so real conflicts (and hence dependency edges) keep
     arriving — a chain through the whole history — but only O(1) of
     them are NEW per commit.  Per-commit certification cost should
     therefore stay flat for the incremental path and grow at least
     linearly for the oracle.

   Timing uses wall-clock [Unix.gettimeofday]; per-commit costs are
   averaged over chunks to smooth GC noise, and the from-scratch checker
   is sampled at a few history lengths only (it is the expensive side). *)

open Ooser_core

let hot = Obj_id.v "HOT"
let w i = Obj_id.v (Printf.sprintf "W%d" i)

let rw = Commutativity.rw ~reads:[ "read" ] ~writes:[ "write" ]

(* The system object's actions carry no semantics (Def. 4) and must not
   accumulate probe work: all_commute, as the engine registers it. *)
let registry =
  Commutativity.registry (fun oid ->
      if Obj_id.name oid = "S" then Commutativity.all_commute else rw)

(* Transaction [i]: read HOT; write W{i}; write W{i-1} (i > 1). *)
let tree i =
  let root_id = Ids.Action_id.root i in
  let process = Ids.Process_id.main i in
  let child j obj meth =
    let id = Ids.Action_id.child root_id j in
    Call_tree.v (Action.v ~id ~obj ~meth ~args:[ Value.int 0 ] ~process ()) []
  in
  let root = Action.v ~id:root_id ~obj:(Obj_id.v "S") ~meth:"top" ~process () in
  let children =
    child 1 hot "read" :: child 2 (w i) "write"
    :: (if i > 1 then [ child 3 (w (i - 1)) "write" ] else [])
  in
  Call_tree.seq root children

let prims_with_stamps base t =
  List.mapi (fun j a -> (Action.id a, base + j)) (Call_tree.primitives t)

type point = { upto : int; seconds : float }
(* [upto]: number of committed transactions; [seconds]: mean per-commit
   certification time (incremental) or one full-check time (scratch) *)

type atlas_parity = {
  atlas_n : int;  (* transactions in each engine run *)
  parity : bool;  (* identical commit and abort sets *)
  committed : int;
  aborted : int;
  atlas_hits : int;  (* decisions answered from the table *)
  table_cells : int;
  probe_ns : float;  (* memoised spec-probe decision *)
  table_ns : float;  (* dense-table decision *)
}

type infer_stats = {
  infer_decided : int;  (* cells the inference decided on the adts target *)
  infer_total : int;
  infer_table_cells : int;  (* argument-independent cells it compiled *)
  infer_table_hits : int;  (* probe decisions the inferred table answered *)
  hand_probe_ns : float;  (* memoised hand-spec probe decision *)
  inferred_table_ns : float;  (* same decision from the inferred table *)
}

type result = {
  n_txns : int;
  chunk : int;
  incremental : point list;
  scratch : point list;
  act_edges : int;
  inc_growth : float;  (* last-chunk mean / first-chunk mean *)
  scratch_growth : float;  (* last-sample / first-sample *)
  len_growth : float;  (* history-length ratio between those endpoints *)
  incremental_sublinear : bool;
  scratch_superlinear : bool;
  atlas : atlas_parity;
  infer : infer_stats;
}

let time f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. t0)

(* Mean per-commit add_commit time over chunks of [chunk] commits. *)
let run_incremental ~n ~chunk =
  let cert = Incremental.create registry in
  let points = ref [] in
  let acc = ref 0. and in_chunk = ref 0 and stamp = ref 0 in
  for i = 1 to n do
    let t = tree i in
    let prims = prims_with_stamps !stamp t in
    stamp := !stamp + List.length prims;
    let outcome, dt = time (fun () -> Incremental.add_commit cert ~tree:t ~prims) in
    if not outcome.Incremental.accepted then
      invalid_arg "cert_bench: chain workload must always certify";
    acc := !acc +. dt;
    incr in_chunk;
    if !in_chunk = chunk then begin
      points := { upto = i; seconds = !acc /. float_of_int chunk } :: !points;
      acc := 0.;
      in_chunk := 0
    end
  done;
  (List.rev !points, (Incremental.stats cert).Incremental.act_edges)

(* One from-scratch [Serializability.check] on the [upto]-transaction
   prefix, at each sampled length. *)
let run_scratch ~samples =
  List.map
    (fun upto ->
      let trees = List.init upto (fun i -> tree (i + 1)) in
      let order = List.concat_map (fun t -> List.map Action.id (Call_tree.primitives t)) trees in
      let h = History.v ~tops:trees ~order ~commut:registry in
      let verdict, dt = time (fun () -> Serializability.check h) in
      if not verdict.Serializability.oo_serializable then
        invalid_arg "cert_bench: chain workload must be oo-serializable";
      { upto; seconds = dt })
    samples

let growth points =
  match (points, List.rev points) with
  | first :: _, last :: _ when first.seconds > 0. ->
      (last.seconds /. first.seconds,
       float_of_int last.upto /. float_of_int first.upto)
  | _ -> (1., 1.)

(* -- Atlas parity: probe path vs preloaded conflict table -------------------

   The same chain workload, run through the live engine (open-nested
   locking + incremental certification) twice: once deciding
   commutativity by memoised runtime spec probes, once with the
   statically compiled conflict table installed up front
   (Engine.preload_atlas).  The table may only change HOW decisions are
   computed, never WHAT they are — both runs must commit and abort
   exactly the same transactions.  The lookup comparison then times the
   two decision paths directly on a shared cache. *)

module Db = Ooser_oodb.Database
module Engine = Ooser_oodb.Engine
module Runtime = Ooser_oodb.Runtime
module Protocol = Ooser_cc.Protocol
module Analysis = Ooser_analysis

let chain_db n =
  let db = Db.create () in
  let cell name =
    let state = ref 0 in
    let read _ _ = Value.int !state in
    let write ctx args =
      match args with
      | [ Value.Int v ] ->
          let old = !state in
          Runtime.on_undo ctx (fun () -> state := old);
          state := v;
          Value.unit
      | _ -> invalid_arg "cert_bench: write"
    in
    Db.register db (Obj_id.v name) ~spec:rw
      [ ("read", Db.primitive read); ("write", Db.primitive write) ]
  in
  cell "HOT";
  for i = 1 to n do
    cell (Printf.sprintf "W%d" i)
  done;
  db

let chain_bodies n =
  List.init n (fun k ->
      let i = k + 1 in
      let body ctx =
        ignore (Runtime.call ctx hot "read" []);
        ignore (Runtime.call ctx (w i) "write" [ Value.int i ]);
        if i > 1 then
          ignore (Runtime.call ctx (w (i - 1)) "write" [ Value.int i ]);
        Value.unit
      in
      (i, Printf.sprintf "chain%d" i, body))

let chain_summaries n =
  List.init n (fun k ->
      let i = k + 1 in
      Analysis.Summary.txn
        (Printf.sprintf "chain%d" i)
        (Analysis.Summary.call hot "read" []
         :: Analysis.Summary.call (w i) "write" []
         ::
         (if i > 1 then [ Analysis.Summary.call (w (i - 1)) "write" [] ]
          else [])))

let atlas_table ?(n = 40) () =
  let db = chain_db n in
  let target =
    Analysis.Lint.target ~name:"cert-bench" ~summaries:(chain_summaries n)
      (Db.spec_registry db)
  in
  (Analysis.Atlas.build target).Analysis.Atlas.table

let lookup_pairs () =
  let mk top obj meth =
    Action.v
      ~id:(Ids.Action_id.v ~top ~path:[ 1 ])
      ~obj ~meth ~args:[ Value.int 0 ]
      ~process:(Ids.Process_id.main top)
      ()
  in
  List.concat_map
    (fun obj ->
      [
        (mk 1 obj "read", mk 2 obj "write");
        (mk 1 obj "write", mk 2 obj "write");
        (mk 1 obj "read", mk 2 obj "read");
      ])
    [ hot; w 1; w 2; w 3 ]

let time_lookup pairs c =
  let reps = 20_000 in
  (* first pass warms the memo (probe path) / pays nothing (table) *)
  List.iter (fun (a, b) -> ignore (Commutativity.cached_test c a b)) pairs;
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    List.iter (fun (a, b) -> ignore (Commutativity.cached_test c a b)) pairs
  done;
  (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int (reps * List.length pairs)

let lookup_bench tbl =
  let pairs = lookup_pairs () in
  let probe_c = Commutativity.cached registry in
  let table_c = Commutativity.cached registry in
  Commutativity.preload table_c tbl;
  (time_lookup pairs probe_c, time_lookup pairs table_c)

(* Spec-inference datapoint: probe latency of the hand specs (memoised
   predicate calls, keyed dispatch) against the same decisions answered
   from the inferred conflict table compiled by Infer.run — plus the
   inference coverage itself. *)
let infer_stats () =
  let target = Lint_targets.adts () in
  let r = Analysis.Infer.run target in
  let mk top obj meth args =
    Action.v
      ~id:(Ids.Action_id.v ~top ~path:[ 1 ])
      ~obj:(Obj_id.v obj) ~meth ~args
      ~process:(Ids.Process_id.main top)
      ()
  in
  let a = Value.str "a" and b = Value.str "b" in
  (* pairs whose cells the inference proved argument-independent, so
     the preloaded inferred table answers every one of them *)
  let pairs =
    [
      (mk 1 "set" "insert" [ a ], mk 2 "set" "insert" [ b ]);
      (mk 1 "set" "contains" [ a ], mk 2 "set" "cardinal" []);
      (mk 1 "set" "insert" [ a ], mk 2 "set" "cardinal" []);
      (mk 1 "dir" "lookup" [ a ], mk 2 "dir" "lookup" [ b ]);
      (mk 1 "dir" "list" [], mk 2 "dir" "bind" [ a; Value.int 1 ]);
      (mk 1 "dir" "list" [], mk 2 "dir" "lookup" [ a ]);
    ]
  in
  let reg = target.Analysis.Lint.registry in
  let probe_c = Commutativity.cached reg in
  let table_c = Commutativity.cached reg in
  Commutativity.preload table_c r.Analysis.Infer.table;
  let hand_probe_ns = time_lookup pairs probe_c in
  let inferred_table_ns = time_lookup pairs table_c in
  let _, cells = Commutativity.table_stats r.Analysis.Infer.table in
  {
    infer_decided = r.Analysis.Infer.decided;
    infer_total = r.Analysis.Infer.total;
    infer_table_cells = cells;
    infer_table_hits = Commutativity.atlas_hits table_c;
    hand_probe_ns;
    inferred_table_ns;
  }

let atlas_run ?(n = 40) () =
  let tbl = atlas_table ~n () in
  let run_engine atlas =
    let db = chain_db n in
    let protocol = Protocol.open_nested ~reg:(Db.spec_registry db) () in
    let config =
      { (Engine.default_config protocol) with Engine.certify = true }
    in
    Engine.run ~config ?atlas db ~protocol (chain_bodies n)
  in
  let probe_out = run_engine None in
  let atlas_out = run_engine (Some tbl) in
  let commits o = List.sort Int.compare o.Engine.committed in
  let aborts o = List.sort compare (List.map fst o.Engine.aborted) in
  let parity =
    commits probe_out = commits atlas_out
    && aborts probe_out = aborts atlas_out
  in
  let atlas_hits =
    Option.value ~default:0 (List.assoc_opt "atlas-hits" atlas_out.Engine.metrics)
  in
  let _, table_cells = Commutativity.table_stats tbl in
  let probe_ns, table_ns = lookup_bench tbl in
  {
    atlas_n = n;
    parity;
    committed = List.length atlas_out.Engine.committed;
    aborted = List.length atlas_out.Engine.aborted;
    atlas_hits;
    table_cells;
    probe_ns;
    table_ns;
  }

let run ?(n = 600) ?(chunk = 50) ?(samples = [ 50; 150; 300; 600 ]) () =
  let samples = List.filter (fun s -> s <= n) samples in
  let incremental, act_edges = run_incremental ~n ~chunk in
  let scratch = run_scratch ~samples in
  let inc_growth, len_growth = growth incremental in
  let scratch_growth, scratch_len_growth = growth scratch in
  {
    n_txns = n;
    chunk;
    incremental;
    scratch;
    act_edges;
    inc_growth;
    scratch_growth;
    len_growth;
    (* sub-linear: per-commit cost grows clearly slower than the history.
       The floor of 2x absorbs timer/GC noise on short runs, where
       len_growth/2 would demand the cost shrink outright; a genuinely
       linear certifier still fails it from ~4x history growth on *)
    incremental_sublinear = inc_growth < Float.max (len_growth /. 2.) 2.0;
    scratch_superlinear = scratch_growth >= scratch_len_growth;
    atlas = atlas_run ();
    infer = infer_stats ();
  }

let json_points name points =
  Printf.sprintf "  %S: [%s]" name
    (String.concat ", "
       (List.map
          (fun p -> Printf.sprintf "{\"upto\": %d, \"seconds\": %.9f}" p.upto p.seconds)
          points))

let to_json r =
  String.concat "\n"
    [
      "{";
      Printf.sprintf "  \"n_txns\": %d," r.n_txns;
      Printf.sprintf "  \"chunk\": %d," r.chunk;
      json_points "incremental_per_commit" r.incremental ^ ",";
      json_points "scratch_full_check" r.scratch ^ ",";
      Printf.sprintf "  \"act_edges\": %d," r.act_edges;
      Printf.sprintf "  \"inc_growth\": %.3f," r.inc_growth;
      Printf.sprintf "  \"scratch_growth\": %.3f," r.scratch_growth;
      Printf.sprintf "  \"len_growth\": %.3f," r.len_growth;
      Printf.sprintf "  \"incremental_sublinear\": %b," r.incremental_sublinear;
      Printf.sprintf "  \"scratch_superlinear\": %b," r.scratch_superlinear;
      Printf.sprintf
        "  \"atlas\": {\"n\": %d, \"parity\": %b, \"committed\": %d, \
         \"aborted\": %d, \"atlas_hits\": %d, \"table_cells\": %d, \
         \"probe_ns\": %.1f, \"table_ns\": %.1f}"
        r.atlas.atlas_n r.atlas.parity r.atlas.committed r.atlas.aborted
        r.atlas.atlas_hits r.atlas.table_cells r.atlas.probe_ns
        r.atlas.table_ns
      ^ ",";
      Printf.sprintf
        "  \"infer\": {\"decided\": %d, \"total\": %d, \"table_cells\": %d, \
         \"table_hits\": %d, \"hand_probe_ns\": %.1f, \
         \"inferred_table_ns\": %.1f}"
        r.infer.infer_decided r.infer.infer_total r.infer.infer_table_cells
        r.infer.infer_table_hits r.infer.hand_probe_ns
        r.infer.inferred_table_ns;
      "}";
    ]

let pp ppf r =
  Fmt.pf ppf "@[<v>certification scaling (%d txns, chunks of %d)@," r.n_txns
    r.chunk;
  Fmt.pf ppf "incremental mean per-commit:@,";
  List.iter
    (fun p -> Fmt.pf ppf "  upto %4d: %8.2f us@," p.upto (p.seconds *. 1e6))
    r.incremental;
  Fmt.pf ppf "from-scratch full check:@,";
  List.iter
    (fun p -> Fmt.pf ppf "  upto %4d: %8.2f ms@," p.upto (p.seconds *. 1e3))
    r.scratch;
  Fmt.pf ppf "growth: incremental %.2fx vs history %.2fx (sublinear: %b)@,"
    r.inc_growth r.len_growth r.incremental_sublinear;
  Fmt.pf ppf "        scratch %.2fx (superlinear: %b)@,"
    r.scratch_growth r.scratch_superlinear;
  Fmt.pf ppf
    "atlas parity (%d txns): %s — %d committed, %d aborted, %d table hits@,"
    r.atlas.atlas_n
    (if r.atlas.parity then "identical to probe path" else "MISMATCH")
    r.atlas.committed r.atlas.aborted r.atlas.atlas_hits;
  Fmt.pf ppf
    "conflict lookup: probe %.1f ns vs table %.1f ns (%d cells)@,"
    r.atlas.probe_ns r.atlas.table_ns r.atlas.table_cells;
  Fmt.pf ppf
    "spec inference (adts): %d/%d cells decided, %d compiled; hand probe \
     %.1f ns vs inferred table %.1f ns (%d table hits)@]"
    r.infer.infer_decided r.infer.infer_total r.infer.infer_table_cells
    r.infer.hand_probe_ns r.infer.inferred_table_ns r.infer.infer_table_hits
