(* An inventory / order-processing application composing the §2 abstract
   data types into one schema:

     Store ──▶ stock counters (escrow)   one per product
          ──▶ catalog (directory)        product name -> price
          ──▶ orders (FIFO queue)        fulfilment pipeline
          ──▶ sold (escrow counter)      revenue tally

   place_order checks the catalog, debits stock under the escrow test
   (concurrent orders for ample stock commute!), credits revenue and
   enqueues fulfilment.  When stock runs short the escrow commutativity
   vanishes and orders serialize — semantics degrading exactly as O'Neil
   describes.  A failed debit is caught with try_call and the order is
   rejected without aborting anything else. *)

open Ooser_core
open Ooser_oodb
module Escrow = Ooser_adts.Escrow_counter
module Fifo_queue = Ooser_adts.Fifo_queue
module Rng = Ooser_sim.Rng
module Dist = Ooser_sim.Dist

type t = {
  db : Database.t;
  store : Obj_id.t;
  products : string array;
  stock : Escrow.t array;
  revenue : Escrow.t;
  orders : Fifo_queue.t;
}

let stock_obj name i = Obj_id.v (Printf.sprintf "%s.Stock%d" name i)
let catalog_obj name = Obj_id.v (name ^ ".Catalog")
let orders_obj name = Obj_id.v (name ^ ".Orders")
let revenue_obj name = Obj_id.v (name ^ ".Revenue")

(* Store-level semantics: orders for different products commute; the
   inventory report conflicts with every order (it reads all stock). *)
let store_spec =
  let keyed =
    Commutativity.by_key ~key_of:Commutativity.first_arg
      (Commutativity.predicate ~stable:true ~name:"store-keyed" (fun a b ->
           match (Action.meth a, Action.meth b) with
           | "place", "place" ->
               (* same product: defer to the stock escrow below — at store
                  level we conservatively conflict *)
               false
           | _ -> false))
  in
  Commutativity.predicate ~stable:true ~name:"store"
    ~vocab:[ "place"; "fulfil"; "report" ]
    (fun a b ->
      match (Action.meth a, Action.meth b) with
      | "report", _ | _, "report" -> false
      | _ -> Commutativity.test keyed a b)

let create ?(name = "Store") ?(products = 4) ?(initial_stock = 100) db =
  if products <= 0 then invalid_arg "Inventory.create";
  let product_names = Array.init products (fun i -> Printf.sprintf "p%d" i) in
  let stock =
    Array.init products (fun i ->
        Adt_objects.register_counter db (stock_obj name i) ~low:0 initial_stock)
  in
  let catalog = Adt_objects.register_directory db (catalog_obj name) in
  Array.iteri
    (fun i p -> Ooser_adts.Directory.bind catalog (Value.str p) (Value.int (10 + i)))
    product_names;
  let orders = Adt_objects.register_queue db (orders_obj name) in
  let revenue =
    Adt_objects.register_counter db (revenue_obj name) ~low:0 0
  in
  let t =
    { db; store = Obj_id.v name; products = product_names; stock; revenue;
      orders }
  in
  let product_index p =
    let rec find i =
      if i >= Array.length product_names then None
      else if product_names.(i) = p then Some i
      else find (i + 1)
    in
    find 0
  in
  let place ctx args =
    match args with
    | [ Value.Str p; Value.Int qty ] -> (
        (* look the price up; missing products fail the order softly *)
        match
          (Runtime.call ctx (catalog_obj name) "lookup" [ Value.str p ],
           product_index p)
        with
        | Value.Pair (Value.Str "some", Value.Int price), Some i -> (
            (* debit stock under the escrow test; insufficient stock is a
               partial rollback, not a transaction abort *)
            match
              Runtime.try_call ctx (stock_obj name i) "decr" [ Value.int qty ]
            with
            | Ok _ ->
                ignore
                  (Runtime.call ctx (revenue_obj name) "incr"
                     [ Value.int (price * qty) ]);
                ignore
                  (Runtime.call ctx (orders_obj name) "enqueue"
                     [ Value.pair (Value.str p) (Value.int qty) ]);
                Value.pair (Value.str "accepted") (Value.int (price * qty))
            | Error _ -> Value.pair (Value.str "rejected") Value.unit)
        | _, _ -> Value.pair (Value.str "rejected") Value.unit)
    | _ -> invalid_arg "place: product and quantity expected"
  in
  let fulfil ctx _args = Runtime.call ctx (orders_obj name) "dequeue" [] in
  let report ctx _args =
    Value.list
      (List.init products (fun i ->
           Runtime.call ctx (stock_obj name i) "read" []))
  in
  Database.register db t.store ~spec:store_spec
    [
      ("place", Database.composite place);
      ("fulfil", Database.composite fulfil);
      ("report", Database.composite report);
    ];
  t

let store_object t = t.store
let stock_level t i = Escrow.value t.stock.(i)
let revenue_total t = Escrow.value t.revenue
let pending_orders t = Fifo_queue.length t.orders
let product t i = t.products.(i)

(* -- transaction helpers -------------------------------------------------------- *)

let place_order t ctx ~product:p ~qty =
  match
    Runtime.call ctx t.store "place" [ Value.str p; Value.int qty ]
  with
  | Value.Pair (Value.Str "accepted", Value.Int total) -> Some total
  | _ -> None

let fulfil_one t ctx =
  match Runtime.call ctx t.store "fulfil" [] with
  | Value.Pair (Value.Str "some", v) -> Some v
  | _ -> None

let report t ctx =
  match Runtime.call ctx t.store "report" [] with
  | Value.List vs -> List.filter_map Value.to_int vs
  | _ -> []

(* -- workload ---------------------------------------------------------------------- *)

type params = {
  products : int;
  initial_stock : int;
  n_txns : int;
  orders_per_txn : int;
  qty : int;
  dist : Dist.t;
}

let default_params =
  {
    products = 4;
    initial_stock = 100;
    n_txns = 8;
    orders_per_txn = 2;
    qty = 3;
    dist = Dist.uniform 4;
  }

(* The product picks of every order transaction — shared by the
   executable bodies and the static summaries. *)
let order_plan ~rng p =
  List.init p.n_txns (fun i ->
      let picks =
        List.init p.orders_per_txn (fun _ ->
            Dist.sample rng p.dist mod p.products)
      in
      (i + 1, picks))

let setup ~rng p db =
  let t = create ~products:p.products ~initial_stock:p.initial_stock db in
  let txns =
    List.map
      (fun (i, picks) ->
        ( i,
          Printf.sprintf "order%d" i,
          fun ctx ->
            List.iter
              (fun prod ->
                ignore (place_order t ctx ~product:t.products.(prod) ~qty:p.qty))
              picks;
            Value.unit ))
      (order_plan ~rng p)
  in
  (t, txns)

module Summary = Ooser_analysis.Summary

(* Static summary of one order: the place call and the calls its body
   issues (catalog lookup, escrow stock debit, revenue credit, order
   enqueue) — mirroring [create]'s [place] implementation. *)
let place_summary t ~prod ~qty =
  let name = Obj_id.name t.store in
  let product = t.products.(prod) in
  let price = 10 + prod in
  Summary.call
    ~args:[ Value.str product; Value.int qty ]
    t.store "place"
    [
      Summary.call ~args:[ Value.str product ] (catalog_obj name) "lookup" [];
      Summary.call ~args:[ Value.int qty ] (stock_obj name prod) "decr" [];
      Summary.call
        ~args:[ Value.int (price * qty) ]
        (revenue_obj name) "incr" [];
      Summary.call
        ~args:[ Value.pair (Value.str product) (Value.int qty) ]
        (orders_obj name) "enqueue" [];
    ]

let fulfil_summary t =
  let name = Obj_id.name t.store in
  Summary.txn "fulfil"
    [
      Summary.call t.store "fulfil"
        [ Summary.call (orders_obj name) "dequeue" [] ];
    ]

let report_summary t =
  let name = Obj_id.name t.store in
  Summary.txn "report"
    [
      Summary.call t.store "report"
        (List.init (Array.length t.products) (fun i ->
             Summary.call (stock_obj name i) "read" []));
    ]

let static_summaries t ~rng p =
  List.map
    (fun (i, picks) ->
      Summary.txn
        (Printf.sprintf "order%d" i)
        (List.map (fun prod -> place_summary t ~prod ~qty:p.qty) picks))
    (order_plan ~rng p)
  @ [ fulfil_summary t; report_summary t ]
