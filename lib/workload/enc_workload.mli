(** Encyclopedia workloads: transaction mixes over the Fig. 2
    application — inserts of new items, keyed searches, in-place updates,
    and the long sequential read (readSeq) that conflicts with every
    writer at the Enc level (§1's publication environment). *)

open Ooser_oodb
module Rng = Ooser_sim.Rng
module Dist = Ooser_sim.Dist

type mix = {
  p_insert : float;
  p_search : float;
  p_update : float;
  p_readseq : float;
}

val insert_heavy : mix
val read_mostly : mix
val with_scans : mix

type params = {
  mix : mix;
  dist : Dist.t;
  ops_per_txn : int;
  n_txns : int;
  preload : int;
}

val default_params : params

val key_of : int -> string

val preload :
  ?keep:(string -> bool) -> Database.t -> Encyclopedia.t -> keys:int -> unit
(** Populate the encyclopedia in one unmeasured transaction.  [keep]
    filters the seeded keys — a shard preloads only the partition its
    router assigns to it. *)

val transactions :
  rng:Rng.t ->
  params ->
  Encyclopedia.t ->
  (int * string * (Runtime.ctx -> Ooser_core.Value.t)) list
(** Deterministic transaction scripts for {!Engine.run}. *)

val static_summaries :
  rng:Rng.t -> params -> Encyclopedia.t -> Ooser_analysis.Summary.t list
(** Static call summaries of {!transactions} at the schema level (Enc,
    BpTree, LinkedList); an [rng] created from the same seed yields the
    same operation scripts.  BpTree.insert includes its potential
    re-entrant grow call — the Def. 5 extension site of Example 3. *)

val setup :
  ?fanout:int ->
  rng:Rng.t ->
  params ->
  Database.t
  * Encyclopedia.t
  * (int * string * (Runtime.ctx -> Ooser_core.Value.t)) list
(** Fresh database + encyclopedia, preloaded, plus the transaction
    scripts. *)
