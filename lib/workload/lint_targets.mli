(** Lint targets for the shipped workloads: each bundles the workload's
    object registry (specs + method tables), its commutativity registry,
    and the static transaction summaries, ready for
    {!Ooser_analysis.Lint.run} — the inputs [oosdb lint] checks in CI
    without running the engine. *)

open Ooser_oodb
module Analysis = Ooser_analysis

val of_database :
  name:string ->
  ?summaries:Analysis.Summary.t list ->
  Database.t ->
  Analysis.Lint.target
(** Target over any populated database: every registered object
    contributes its spec and method table. *)

val banking :
  ?semantics:Banking.semantics -> seed:int -> unit -> Analysis.Lint.target

val inventory : seed:int -> unit -> Analysis.Lint.target

val encyclopedia : seed:int -> unit -> Analysis.Lint.target
(** Built without preloading (no engine run): the analyzer sees the
    schema-level objects plus the initial root leaf and page. *)

val adts : unit -> Analysis.Lint.target
(** The four semantic ADTs (escrow counter, kv set, fifo queue,
    directory) registered standalone — the primary target of
    [oosdb infer]: every object has an executable model in
    {!Ooser_analysis.Semantics}. *)

val all : seed:int -> unit -> Analysis.Lint.target list
(** The three workload targets above, the registries [oosdb lint] gates
    on.  ([adts] rides along in [oosdb infer --suite all].) *)
