(* Lint targets for the shipped workloads: registry + specs + static
   summaries per workload, ready for Ooser_analysis.Lint.run. *)

open Ooser_core
open Ooser_oodb
module Analysis = Ooser_analysis
module Rng = Ooser_sim.Rng

let object_infos db =
  List.filter_map
    (fun o ->
      Option.map
        (fun spec ->
          {
            Analysis.Spec_lint.obj = Obj_id.to_string o;
            spec;
            methods = Database.methods db o;
            compensated = Some (Database.compensated_methods db o);
          })
        (Database.spec db o))
    (Database.objects db)

let of_database ~name ?(summaries = []) db =
  Analysis.Lint.target ~name ~objects:(object_infos db) ~summaries
    (Database.spec_registry db)

let banking ?(semantics = `Escrow) ~seed () =
  let p = Banking.default_params in
  let db, _counters = Banking.setup ~semantics p in
  of_database ~name:"banking"
    ~summaries:(Banking.static_summaries ~rng:(Rng.create ~seed) p)
    db

let inventory ~seed () =
  let p = Inventory.default_params in
  let db = Database.create () in
  let t, _txns = Inventory.setup ~rng:(Rng.create ~seed) p db in
  of_database ~name:"inventory"
    ~summaries:(Inventory.static_summaries t ~rng:(Rng.create ~seed) p)
    db

let encyclopedia ~seed () =
  (* preload = 0: the analyzer needs the schema objects, not a populated
     tree, and lint must not run the engine *)
  let p = { Enc_workload.default_params with Enc_workload.preload = 0 } in
  let db, enc, _txns = Enc_workload.setup ~rng:(Rng.create ~seed) p in
  of_database ~name:"encyclopedia"
    ~summaries:(Enc_workload.static_summaries ~rng:(Rng.create ~seed) p enc)
    db

(* The four semantic ADTs of §2 registered standalone: the primary
   spec-inference target — every object here has an executable model in
   Ooser_analysis.Semantics.  No summaries: the target is about the
   specs, not a workload. *)
let adts () =
  let db = Database.create () in
  let _counter =
    Adt_objects.register_counter db (Obj_id.v "counter") ~low:0 ~high:100 50
  in
  let _set = Adt_objects.register_set db (Obj_id.v "set") in
  let _queue = Adt_objects.register_queue db (Obj_id.v "queue") in
  let _dir = Adt_objects.register_directory db (Obj_id.v "dir") in
  of_database ~name:"adts" db

let all ~seed () =
  [ banking ~seed (); inventory ~seed (); encyclopedia ~seed () ]
