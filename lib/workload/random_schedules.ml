(* Random transaction systems and random interleavings, for the
   acceptance-rate experiment (E3) and for property tests.

   The generated systems are two-level (root -> method on a mid-level
   object -> page reads/writes), the common shape of the paper's
   examples.  Mid-level commutativity is sampled with a configurable
   density; pages always have read/write semantics.  Everything is
   derived deterministically from the seed. *)

open Ooser_core
module Rng = Ooser_sim.Rng

type params = {
  n_txns : int;
  calls_per_txn : int;
  prims_per_call : int;
  n_objects : int;
  n_pages : int;
  methods_per_object : int;
  p_commute : float;  (* probability that two mid-level methods commute *)
  p_write : float;  (* probability that a page access is a write *)
}

let default_params =
  {
    n_txns = 3;
    calls_per_txn = 2;
    prims_per_call = 2;
    n_objects = 3;
    n_pages = 4;
    methods_per_object = 3;
    p_commute = 0.5;
    p_write = 0.5;
  }

let obj_name i = Printf.sprintf "M%d" i
let page_name i = Printf.sprintf "P%d" i

(* Deterministic commutativity of a method pair on one object: hash the
   (seed, object, unordered pair) triple into a fresh stream. *)
let pair_commutes ~seed ~obj m m' ~p =
  let lo = min m m' and hi = max m m' in
  let h = ((seed * 31) + obj) * 1009 in
  let h = ((h * 31) + lo) * 2003 in
  let h = ((h * 31) + hi) * 4001 in
  Rng.float (Rng.create ~seed:h) < p

let registry ~seed p =
  Commutativity.registry (fun oid ->
      let name = Obj_id.name oid in
      if String.length name > 0 && name.[0] = 'P' then
        Commutativity.rw ~reads:[ "read" ] ~writes:[ "write" ]
      else if String.length name > 0 && name.[0] = 'M' then
        let obj = int_of_string (String.sub name 1 (String.length name - 1)) in
        (* [pair_commutes] is a pure function of (seed, object, methods),
           so the spec is stable: safe to memoize and to certify
           incrementally against *)
        Commutativity.predicate ~stable:true ~name:(Fmt.str "random-%d" obj)
          (fun a b ->
            let mi a =
              let m = Action.meth a in
              int_of_string (String.sub m 1 (String.length m - 1))
            in
            pair_commutes ~seed ~obj (mi a) (mi b) ~p:p.p_commute)
      else Commutativity.all_commute)

let system ~seed p =
  let rng = Rng.create ~seed in
  let tops =
    List.init p.n_txns (fun t ->
        let calls =
          List.init p.calls_per_txn (fun _ ->
              let obj = Rng.int rng p.n_objects in
              let m = Rng.int rng p.methods_per_object in
              let prims =
                List.init p.prims_per_call (fun _ ->
                    let page = Rng.int rng p.n_pages in
                    let meth =
                      if Rng.float rng < p.p_write then "write" else "read"
                    in
                    Call_tree.Build.call (Obj_id.v (page_name page)) meth [])
              in
              Call_tree.Build.call
                (Obj_id.v (obj_name obj))
                (Printf.sprintf "m%d" m)
                prims)
        in
        Call_tree.Build.top ~n:(t + 1) calls)
  in
  (tops, registry ~seed p)

(* A random interleaving respecting per-transaction program order. *)
let random_order rng tops =
  let queues =
    Array.of_list (List.map (fun t -> ref (History.serial_primitives t)) tops)
  in
  let rec go acc =
    let nonempty =
      Array.to_list queues |> List.filter (fun q -> !q <> [])
    in
    match nonempty with
    | [] -> List.rev acc
    | qs -> (
        let q = Rng.pick rng qs in
        match !q with
        | x :: rest ->
            q := rest;
            go (x :: acc)
        | [] -> go acc)
  in
  go []

(* A random interleaving at subtransaction granularity: the primitives of
   each mid-level call stay contiguous (as an open-nested protocol would
   serialize them), only the calls of different transactions interleave.
   This isolates the question the paper asks: given clean subtransactions,
   which top-level interleavings does each criterion accept? *)
let random_order_atomic rng tops =
  let block_queues =
    Array.of_list
      (List.map
         (fun t -> ref (List.map History.serial_primitives (Call_tree.children t)))
         tops)
  in
  let rec go acc =
    let nonempty =
      Array.to_list block_queues |> List.filter (fun q -> !q <> [])
    in
    match nonempty with
    | [] -> List.concat (List.rev acc)
    | qs -> (
        let q = Rng.pick rng qs in
        match !q with
        | block :: rest ->
            q := rest;
            go (block :: acc)
        | [] -> go acc)
  in
  go []

let history ~seed ?(order_seed = 1) p =
  let tops, commut = system ~seed p in
  let rng = Rng.create ~seed:(seed + (65537 * order_seed)) in
  History.v ~tops ~order:(random_order rng tops) ~commut

type acceptance = {
  samples : int;
  oo_accepted : int;
  conventional_accepted : int;
  multilevel_accepted : int;
}

let acceptance ?(granularity = `Primitive) ~seed ~samples p =
  let tops, commut = system ~seed p in
  let sample =
    match granularity with
    | `Primitive -> random_order
    | `Subtransaction -> random_order_atomic
  in
  let rec go i acc =
    if i >= samples then acc
    else
      let rng = Rng.create ~seed:(seed + (65537 * (i + 1))) in
      let h = History.v ~tops ~order:(sample rng tops) ~commut in
      let acc =
        {
          acc with
          oo_accepted =
            (acc.oo_accepted + if Serializability.oo_serializable h then 1 else 0);
          conventional_accepted =
            (acc.conventional_accepted
            + if Baselines.conventional_serializable h then 1 else 0);
          multilevel_accepted =
            (acc.multilevel_accepted
            + if Baselines.multilevel_serializable h then 1 else 0);
        }
      in
      go (i + 1) acc
  in
  go 0
    {
      samples;
      oo_accepted = 0;
      conventional_accepted = 0;
      multilevel_accepted = 0;
    }
