(** Certification scaling benchmark: incremental certifier vs the
    from-scratch checker on a chain workload whose per-commit conflict
    frontier is O(1) while its total history grows without bound.  The
    incremental path should certify each commit in near-constant time;
    a from-scratch check of the whole prefix grows super-linearly. *)

open Ooser_core

type point = { upto : int; seconds : float }
(** [upto] committed transactions; [seconds] is a mean per-commit
    certification time (incremental series) or one full-check wall time
    (scratch series). *)

type atlas_parity = {
  atlas_n : int;  (** transactions in each engine run *)
  parity : bool;
      (** the run with the statically compiled conflict table preloaded
          ({!Ooser_oodb.Engine.preload_atlas}) committed and aborted
          exactly the same transactions as the runtime-probe run *)
  committed : int;
  aborted : int;
  atlas_hits : int;  (** conflict decisions answered from the table *)
  table_cells : int;  (** dense-table coverage *)
  probe_ns : float;  (** mean memoised spec-probe decision time *)
  table_ns : float;  (** mean dense-table decision time *)
}

type infer_stats = {
  infer_decided : int;
      (** cells the spec inference decided on the adts target *)
  infer_total : int;
  infer_table_cells : int;
      (** argument-independent hand-agreeing cells it compiled *)
  infer_table_hits : int;
      (** benchmark probe decisions the inferred table answered *)
  hand_probe_ns : float;  (** memoised hand-spec probe decision time *)
  inferred_table_ns : float;
      (** the same decisions answered from the inferred table *)
}

type result = {
  n_txns : int;
  chunk : int;  (** commits averaged per incremental point *)
  incremental : point list;
  scratch : point list;
  act_edges : int;  (** certifier's total action-dependency edges *)
  inc_growth : float;  (** last / first incremental point *)
  scratch_growth : float;  (** last / first scratch sample *)
  len_growth : float;  (** history-length ratio between those points *)
  incremental_sublinear : bool;
      (** [inc_growth < max (len_growth / 2) 2.0] — the floor absorbs
          timer noise on short runs *)
  scratch_superlinear : bool;  (** scratch grows at least with length *)
  atlas : atlas_parity;
  infer : infer_stats;
      (** spec-inference coverage and inferred-table lookup latency
          ({!Ooser_analysis.Infer.run} on the adts target) *)
}

val tree : int -> Call_tree.t
(** Transaction [i] of the workload: read the shared HOT object, write
    own W{i}, write predecessor's W{i-1}. *)

val registry : Commutativity.registry

val atlas_table : ?n:int -> unit -> Commutativity.table
(** The chain workload's conflict table, compiled by the static atlas
    ({!Ooser_analysis.Atlas.build}) from its transaction summaries —
    what {!atlas_run} preloads into the engine. *)

val atlas_run : ?n:int -> unit -> atlas_parity
(** The engine parity experiment on its own (default 40 transactions);
    {!run} embeds its result. *)

val run : ?n:int -> ?chunk:int -> ?samples:int list -> unit -> result
(** Default: 600 transactions, chunks of 50, from-scratch samples at
    50/150/300/600.  Raises [Invalid_argument] if the workload ever
    fails certification — it is acyclic by construction. *)

val to_json : result -> string
(** Hand-rolled JSON (no external dependency), the BENCH_incremental.json
    payload. *)

val pp : Format.formatter -> result -> unit
