(* Cooperative document editing: the publication-environment workload of
   §1 and Fig. 1 ("processing the layout of a document consists of
   processing the contents, the chapters, ...").

   A document is an object over section objects over shared pages —
   several sections are co-located on one page, so edits of different
   sections by different authors collide at page level but commute at the
   document level, exactly the situation where open nesting lets all
   authors work simultaneously while a layout pass still conflicts with
   every edit. *)

open Ooser_core
open Ooser_oodb
open Ooser_storage

type t = {
  db : Database.t;
  pool : Buffer_pool.t;
  doc : Obj_id.t;
  sections : int;
  section_rid : (int * int) array;  (* page, slot per section *)
}

let section_obj name i = Obj_id.v (Printf.sprintf "%s.Section%d" name i)
let page_obj name pid = Obj_id.v (Printf.sprintf "%s.Page%d" name pid)

let page_spec =
  Commutativity.rw ~reads:[ "read" ] ~writes:[ "write" ]

let register_page t name pid =
  let read _ctx args =
    match args with
    | [ Value.Int slot ] ->
        Buffer_pool.with_page t.pool pid ~f:(fun page ->
            (Value.str (Page.get_exn page slot), false))
    | _ -> invalid_arg "page read"
  in
  let write ctx args =
    match args with
    | [ Value.Int slot; Value.Str data ] ->
        Buffer_pool.with_page t.pool pid ~f:(fun page ->
            let old = Page.get_exn page slot in
            Runtime.on_undo ctx (fun () ->
                Buffer_pool.with_page t.pool pid ~f:(fun page ->
                    (ignore (Page.update page slot old), true)));
            if not (Page.update page slot data) then failwith "section too long";
            (Value.unit, true))
    | _ -> invalid_arg "page write"
  in
  Database.register_or_replace t.db (page_obj name pid) ~spec:page_spec
    [ ("read", Database.primitive read); ("write", Database.primitive write) ]

let section_spec = Commutativity.rw ~reads:[ "read" ] ~writes:[ "write" ]

let register_section t name i =
  let pid, slot = t.section_rid.(i) in
  let read ctx _args =
    Runtime.call ctx (page_obj name pid) "read" [ Value.int slot ]
  in
  let write ctx args =
    match args with
    | [ Value.Str text ] ->
        Runtime.call ctx (page_obj name pid) "write"
          [ Value.int slot; Value.str text ]
    | _ -> invalid_arg "section write"
  in
  Database.register_or_replace t.db (section_obj name i) ~spec:section_spec
    [
      ("read", Database.composite read);
      ("write", Database.composite write);
    ]

(* Document-level semantics: edits of different sections commute; the
   layout pass reads everything and conflicts with all edits. *)
let doc_spec =
  let keyed =
    Commutativity.by_key ~key_of:Commutativity.first_arg
      (Commutativity.predicate ~stable:true ~name:"doc-keyed" (fun a b ->
           match (Action.meth a, Action.meth b) with
           | "read", "read" -> true
           | _ -> false))
  in
  Commutativity.predicate ~stable:true ~name:"document" (fun a b ->
      match (Action.meth a, Action.meth b) with
      | ("layout" | "layoutPar"), _ | _, ("layout" | "layoutPar") -> false
      | _ -> Commutativity.test keyed a b)

let register_doc t name =
  let sec args =
    match args with
    | Value.Int i :: _ when i >= 0 && i < t.sections -> i
    | _ -> invalid_arg "bad section number"
  in
  let edit ctx args =
    match args with
    | [ Value.Int _; Value.Str text ] ->
        Runtime.call ctx (section_obj name (sec args)) "write" [ Value.str text ]
    | _ -> invalid_arg "edit"
  in
  let read ctx args =
    Runtime.call ctx (section_obj name (sec args)) "read" []
  in
  let layout ctx _args =
    let parts =
      List.init t.sections (fun i ->
          Runtime.call ctx (section_obj name i) "read" [])
    in
    Value.list parts
  in
  (* the same pass with intra-transaction parallelism (Def. 9): all
     section reads fork as parallel branches *)
  let layout_par ctx _args =
    let parts =
      Runtime.call_par ctx
        (List.init t.sections (fun i ->
             Runtime.invocation (section_obj name i) "read" []))
    in
    Value.list parts
  in
  Database.register_or_replace t.db t.doc ~spec:doc_spec
    [
      ("edit", Database.composite edit);
      ("read", Database.composite read);
      ("layout", Database.composite layout);
      ("layoutPar", Database.composite layout_par);
    ]

let create ?(name = "Doc") ?(sections = 8) ?(sections_per_page = 4)
    ?(page_size = 4096) db =
  if sections <= 0 then invalid_arg "Document.create: sections";
  let disk = Disk.create ~page_size () in
  let pool = Buffer_pool.create ~capacity:64 disk in
  let t =
    {
      db;
      pool;
      doc = Obj_id.v name;
      sections;
      section_rid = Array.make sections (0, 0);
    }
  in
  (* co-locate sections on shared pages *)
  let current_page = ref (-1) in
  for i = 0 to sections - 1 do
    if i mod sections_per_page = 0 then begin
      current_page := Buffer_pool.alloc pool;
      register_page t name !current_page
    end;
    let slot =
      Buffer_pool.with_page pool !current_page ~f:(fun page ->
          match Page.insert page (Printf.sprintf "section %d" i) with
          | Some s -> (s, true)
          | None -> failwith "document page full")
    in
    t.section_rid.(i) <- (!current_page, slot);
    register_section t name i
  done;
  register_doc t name;
  t

let doc_object t = t.doc
let sections t = t.sections

let section_page t i = fst t.section_rid.(i)

(* Transaction body helpers. *)
let edit t ctx ~section ~text =
  ignore
    (Runtime.call ctx t.doc "edit" [ Value.int section; Value.str text ])

let read t ctx ~section =
  Value.to_str_exn (Runtime.call ctx t.doc "read" [ Value.int section ])

let layout t ctx =
  match Runtime.call ctx t.doc "layout" [] with
  | Value.List parts -> List.filter_map Value.to_str parts
  | _ -> []

let layout_par t ctx =
  match Runtime.call ctx t.doc "layoutPar" [] with
  | Value.List parts -> List.filter_map Value.to_str parts
  | _ -> []
