(** Banking workload: accounts with escrow semantics (the
    financial-market side of Fig. 1 and the semantics-ablation
    experiment E5). *)

open Ooser_core
open Ooser_oodb
module Escrow = Ooser_adts.Escrow_counter
module Rng = Ooser_sim.Rng
module Dist = Ooser_sim.Dist

type semantics = [ `Escrow | `Rw | `Conflict ]
(** Commutativity granularity ablation: escrow (state-dependent),
    read/write classification, or all-conflict (conventional). *)

val account_obj : int -> Obj_id.t

val register_account :
  Database.t ->
  semantics:semantics ->
  int ->
  balance:int ->
  low:int ->
  high:int ->
  Escrow.t

type params = {
  accounts : int;
  initial : int;
  low : int;
  high : int;
  n_txns : int;
  transfers_per_txn : int;
  amount : int;
  dist : Dist.t;
}

val default_params : params

val setup : semantics:semantics -> params -> Database.t * Escrow.t array

val transactions :
  rng:Rng.t ->
  params ->
  (int * string * (Runtime.ctx -> Value.t)) list
(** Transfer transactions: withdraw from one account, deposit to
    another. *)

val static_summaries :
  rng:Rng.t -> params -> Ooser_analysis.Summary.t list
(** Static call summaries of {!transactions}: an [rng] created from the
    same seed yields summaries of exactly the transactions the engine
    would run. *)

val total_balance : Escrow.t array -> int
(** Invariant: transfers preserve the sum. *)
