(** An inventory / order-processing application composing the §2 abstract
    data types: escrow stock counters, a directory catalog, a FIFO order
    queue, and an escrow revenue tally behind one Store object.

    Concurrent orders for ample stock commute (escrow); when stock runs
    short the commutativity vanishes and orders serialize.  An
    insufficient-stock debit is caught with {!Runtime.try_call} and the
    order is rejected without aborting the transaction. *)

open Ooser_core
open Ooser_oodb
module Rng = Ooser_sim.Rng
module Dist = Ooser_sim.Dist

type t

val create : ?name:string -> ?products:int -> ?initial_stock:int -> Database.t -> t
(** @raise Invalid_argument when [products <= 0]. *)

val store_object : t -> Obj_id.t
val stock_level : t -> int -> int
val revenue_total : t -> int
val pending_orders : t -> int
val product : t -> int -> string

val place_order : t -> Runtime.ctx -> product:string -> qty:int -> int option
(** [Some total_price] when accepted, [None] when rejected (unknown
    product or insufficient stock). *)

val fulfil_one : t -> Runtime.ctx -> Value.t option
val report : t -> Runtime.ctx -> int list
(** All stock levels — conflicts with every order. *)

type params = {
  products : int;
  initial_stock : int;
  n_txns : int;
  orders_per_txn : int;
  qty : int;
  dist : Dist.t;
}

val default_params : params

val setup :
  rng:Rng.t ->
  params ->
  Database.t ->
  t * (int * string * (Runtime.ctx -> Value.t)) list

val static_summaries :
  t -> rng:Rng.t -> params -> Ooser_analysis.Summary.t list
(** Static call summaries of the order transactions of {!setup} (an
    [rng] created from the same seed reproduces the same product picks),
    plus one fulfil and one report transaction to cover the full Store
    method surface. *)
