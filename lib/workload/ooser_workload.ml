(* Umbrella module for the workload generators. *)

module Enc_workload = Enc_workload
module Banking = Banking
module Random_schedules = Random_schedules
module Document = Document
module Compound_doc = Compound_doc
module Inventory = Inventory
module Lint_targets = Lint_targets
module Enumerate = Enumerate
module Paper_examples = Paper_examples
module Cert_bench = Cert_bench
