(* The paper's worked examples as reusable transaction systems, shared by
   the test suite and the figure-regeneration harness (bench/).

   Object names follow the paper: Enc, BpTree, Leaf11, Page4712, Item8,
   Item9, LinkedList. *)

open Ooser_core

let o = Obj_id.v
let aid top path = Ids.Action_id.v ~top ~path
let k s = [ Value.str s ]

(* Commutativity of the encyclopedia objects, per §2 and Example 1. *)
let registry =
  let keyed_insert_search =
    Commutativity.by_key ~key_of:Commutativity.first_arg
      (Commutativity.predicate ~stable:true ~name:"keyed" (fun a b ->
           match (Action.meth a, Action.meth b) with
           | "search", "search" -> true
           | _ -> false))
  in
  let enc_spec =
    Commutativity.predicate ~stable:true ~name:"enc" (fun a b ->
        match (Action.meth a, Action.meth b) with
        | "readSeq", "readSeq" -> true
        | "readSeq", _ | _, "readSeq" -> false
        | _ -> Commutativity.test keyed_insert_search a b)
  in
  let linkedlist_spec =
    Commutativity.predicate ~stable:true ~name:"linkedlist" (fun a b ->
        match (Action.meth a, Action.meth b) with
        | "append", "append" -> true
        | _ -> false)
  in
  let item_spec =
    Commutativity.rw ~reads:[ "read" ] ~writes:[ "create"; "update" ]
  in
  Commutativity.fixed
    [
      ("Page4712",
       Commutativity.rw ~reads:[ "read" ] ~writes:[ "readx"; "write"; "insert" ]);
      ("Leaf11", keyed_insert_search);
      ("BpTree", keyed_insert_search);
      ("Item8", item_spec);
      ("Item9", item_spec);
      ("LinkedList", linkedlist_spec);
      ("Enc", enc_spec);
    ]

(* -- Example 1 / Fig. 4 -------------------------------------------------------- *)

(* T: Enc.insert(key) -> BpTree.insert(key) -> Leaf11.insert(key) ->
   Page4712.readx; Page4712.write *)
let insert_txn n key =
  Call_tree.Build.(
    top ~n
      [
        call (o "Enc") "insert" ~args:(k key)
          [
            call (o "BpTree") "insert" ~args:(k key)
              [
                call (o "Leaf11") "insert" ~args:(k key)
                  [
                    call (o "Page4712") "readx" [];
                    call (o "Page4712") "write" [];
                  ];
              ];
          ];
      ])

let search_txn n key =
  Call_tree.Build.(
    top ~n
      [
        call (o "Enc") "search" ~args:(k key)
          [
            call (o "BpTree") "search" ~args:(k key)
              [
                call (o "Leaf11") "search" ~args:(k key)
                  [ call (o "Page4712") "read" [] ];
              ];
          ];
      ])

let insert_pages n = [ aid n [ 1; 1; 1; 1 ]; aid n [ 1; 1; 1; 2 ] ]
let search_pages n = [ aid n [ 1; 1; 1; 1 ] ]

(* Example 1, left of Fig. 4: two inserts of different keys; the page
   conflict stops at the commuting leaf inserts. *)
let example1_different_keys () =
  let t1 = insert_txn 1 "DBMS" and t2 = insert_txn 2 "DBS" in
  History.v ~tops:[ t1; t2 ]
    ~order:(insert_pages 1 @ insert_pages 2)
    ~commut:registry

(* Example 1, right of Fig. 4: insert and search of the same key; the
   conflict is inherited to the top-level transactions. *)
let example1_same_key () =
  let t3 = insert_txn 3 "DBS" and t4 = search_txn 4 "DBS" in
  History.v ~tops:[ t3; t4 ]
    ~order:(insert_pages 3 @ search_pages 4)
    ~commut:registry

(* -- Example 2 / Fig. 5 --------------------------------------------------------- *)

let example2_tree () =
  Call_tree.Build.(
    top ~n:1
      [
        call (o "O1") "a1"
          [
            call (o "O2") "a11"
              [ call (o "O3") "a111" []; call (o "O3") "a112" [] ];
            call (o "O1") "a12" [];
          ];
        call (o "O4") "a2" [ call (o "O5") "a21" [] ];
      ])

(* -- Example 3 / Fig. 6 --------------------------------------------------------- *)

(* a11 on O2 calls a112 back on O1, whose ancestor a1 is on O1: the
   extension must break the cycle with a virtual object O1'. *)
let example3_history () =
  let t1 =
    Call_tree.Build.(
      top ~n:1
        [ call (o "O1") "a1" [ call (o "O2") "a11" [ call (o "O1") "a112" [] ] ] ])
  in
  let t2 = Call_tree.Build.(top ~n:2 [ call (o "O1") "b" [] ]) in
  History.v ~tops:[ t1; t2 ]
    ~order:[ aid 1 [ 1; 1; 1 ]; aid 2 [ 1 ] ]
    ~commut:(Commutativity.uniform Commutativity.all_conflict)

(* -- Example 4 / Figs. 7-8 -------------------------------------------------------- *)

(* T1: Enc.insert(DBMS)   = BpTree path + Item8.create + LinkedList.append
   T2: Enc.update(DBMS)   = BpTree.search path + Item8.update
   T3: Enc.insert(DBS)    = BpTree path + Item9.create + LinkedList.append
   T4: Enc.readSeq        = LinkedList.readSeq -> Item8.read, Item9.read

   Item data co-located with the leaf entries on Page4712 (Fig. 7). *)
let example4_trees () =
  let open Call_tree.Build in
  let t1 =
    top ~n:1
      [
        call (o "Enc") "insert" ~args:(k "DBMS")
          [
            call (o "BpTree") "insert" ~args:(k "DBMS")
              [
                call (o "Leaf11") "insert" ~args:(k "DBMS")
                  [ call (o "Page4712") "readx" []; call (o "Page4712") "write" [] ];
              ];
            call (o "Item8") "create" [ call (o "Page4712") "insert" [] ];
            call (o "LinkedList") "append" [];
          ];
      ]
  in
  let t2 =
    top ~n:2
      [
        call (o "Enc") "update" ~args:(k "DBMS")
          [
            call (o "BpTree") "search" ~args:(k "DBMS")
              [
                call (o "Leaf11") "search" ~args:(k "DBMS")
                  [ call (o "Page4712") "read" [] ];
              ];
            call (o "Item8") "update" [ call (o "Page4712") "write" [] ];
          ];
      ]
  in
  let t3 =
    top ~n:3
      [
        call (o "Enc") "insert" ~args:(k "DBS")
          [
            call (o "BpTree") "insert" ~args:(k "DBS")
              [
                call (o "Leaf11") "insert" ~args:(k "DBS")
                  [ call (o "Page4712") "readx" []; call (o "Page4712") "write" [] ];
              ];
            call (o "Item9") "create" [ call (o "Page4712") "insert" [] ];
            call (o "LinkedList") "append" [];
          ];
      ]
  in
  let t4 =
    top ~n:4
      [
        call (o "Enc") "readSeq"
          [
            call (o "LinkedList") "readSeq"
              [
                call (o "Item8") "read" [ call (o "Page4712") "read" [] ];
                call (o "Item9") "read" [ call (o "Page4712") "read" [] ];
              ];
          ];
      ]
  in
  (t1, t2, t3, t4)

(* Serial execution of all four transactions: the baseline for the Fig. 8
   dependency table. *)
let example4_serial () =
  let t1, t2, t3, t4 = example4_trees () in
  let tops = [ t1; t2; t3; t4 ] in
  History.v ~tops
    ~order:(List.concat_map History.serial_primitives tops)
    ~commut:registry

(* The crossing interleaving of T1 and T3 (Fig. 7): page-level conflicts
   in both directions under commuting callers — conventionally rejected,
   oo-serializable. *)
let example4_crossing () =
  let t1, _, t3, _ = example4_trees () in
  let order =
    [
      aid 1 [ 1; 1; 1; 1 ]; aid 1 [ 1; 1; 1; 2 ];
      aid 3 [ 1; 1; 1; 1 ]; aid 3 [ 1; 1; 1; 2 ];
      aid 3 [ 1; 2; 1 ]; aid 3 [ 1; 3 ];
      aid 1 [ 1; 2; 1 ]; aid 1 [ 1; 3 ];
    ]
  in
  History.v ~tops:[ t1; t3 ] ~order ~commut:registry
