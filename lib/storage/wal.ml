(* Write-ahead log.

   §1 of the paper assumes transactions execute "reliably — as if there
   were no failures"; this module provides the substrate: slot-level
   before/after-image logging with a force operation modelling stable
   storage.  A simulated crash keeps exactly the records forced so far.

   Records are also serialised through the binary codec so the log can be
   externalised; the in-memory form is authoritative for the simulator. *)

type lsn = int

type record =
  | Begin of int
  | Update of {
      txn : int;
      page : Disk.page_id;
      slot : int;
      before : string option;  (* None = slot was dead *)
      after : string option;  (* None = slot becomes dead *)
    }
  | Commit of int
  | Abort of int
  | Checkpoint of int list  (* transactions active at checkpoint time *)
  | Clr of {
      txn : int;
      page : Disk.page_id;
      slot : int;
      restore : string option;  (* the before-image being reinstalled *)
      undo_next : lsn;  (* lsn of the Update this record compensates *)
    }

(* Records live in a growable array (appends are the commit-path hot
   spot); [base] tracks the lsn of recs.(0) so truncation can drop a
   prefix without renumbering. *)
type t = {
  mutable recs : (lsn * record) array;
  mutable len : int;
  mutable next_lsn : lsn;
  mutable stable_lsn : lsn;  (* records with lsn < stable_lsn survive a crash *)
}

let create () =
  { recs = [||]; len = 0; next_lsn = 0; stable_lsn = 0 }

let ensure_capacity t =
  if t.len = Array.length t.recs then begin
    let cap = max 16 (2 * Array.length t.recs) in
    let recs = Array.make cap (0, Commit 0) in
    Array.blit t.recs 0 recs 0 t.len;
    t.recs <- recs
  end

let append t record =
  let lsn = t.next_lsn in
  ensure_capacity t;
  t.recs.(t.len) <- (lsn, record);
  t.len <- t.len + 1;
  t.next_lsn <- lsn + 1;
  lsn

let force t = t.stable_lsn <- t.next_lsn

let next_lsn t = t.next_lsn
let stable_lsn t = t.stable_lsn

let to_list t = Array.to_list (Array.sub t.recs 0 t.len)

let all t = to_list t

let stable t = List.filter (fun (lsn, _) -> lsn < t.stable_lsn) (to_list t)

(* Drop every record below [upto] (log truncation after a quiescent
   checkpoint).  O(n), but only runs at checkpoint time. *)
let truncate t ~upto =
  let kept =
    Array.of_list
      (List.filter (fun (lsn, _) -> lsn >= upto) (to_list t))
  in
  t.recs <- kept;
  t.len <- Array.length kept

(* The log as it looks after a crash: only forced records remain. *)
let crash t =
  let kept =
    Array.of_list
      (List.filter (fun (lsn, _) -> lsn < t.stable_lsn) (to_list t))
  in
  {
    recs = kept;
    len = Array.length kept;
    next_lsn = t.stable_lsn;
    stable_lsn = t.stable_lsn;
  }

(* -- serialization --------------------------------------------------------- *)

let encode_record r =
  let w = Codec.Writer.create () in
  let opt_string = function
    | None -> Codec.Writer.u8 w 0
    | Some s ->
        Codec.Writer.u8 w 1;
        Codec.Writer.string w s
  in
  (match r with
  | Begin txn ->
      Codec.Writer.u8 w 1;
      Codec.Writer.u32 w txn
  | Update { txn; page; slot; before; after } ->
      Codec.Writer.u8 w 2;
      Codec.Writer.u32 w txn;
      Codec.Writer.u32 w page;
      Codec.Writer.u16 w slot;
      opt_string before;
      opt_string after
  | Commit txn ->
      Codec.Writer.u8 w 3;
      Codec.Writer.u32 w txn
  | Abort txn ->
      Codec.Writer.u8 w 4;
      Codec.Writer.u32 w txn
  | Checkpoint active ->
      Codec.Writer.u8 w 5;
      Codec.Writer.u16 w (List.length active);
      List.iter (Codec.Writer.u32 w) active
  | Clr { txn; page; slot; restore; undo_next } ->
      Codec.Writer.u8 w 6;
      Codec.Writer.u32 w txn;
      Codec.Writer.u32 w page;
      Codec.Writer.u16 w slot;
      opt_string restore;
      Codec.Writer.u32 w undo_next);
  Codec.Writer.contents w

let decode_record s =
  let r = Codec.Reader.create s in
  let opt_string () =
    match Codec.Reader.u8 r with 0 -> None | _ -> Some (Codec.Reader.string r)
  in
  match Codec.Reader.u8 r with
  | 1 -> Begin (Codec.Reader.u32 r)
  | 2 ->
      let txn = Codec.Reader.u32 r in
      let page = Codec.Reader.u32 r in
      let slot = Codec.Reader.u16 r in
      let before = opt_string () in
      let after = opt_string () in
      Update { txn; page; slot; before; after }
  | 3 -> Commit (Codec.Reader.u32 r)
  | 4 -> Abort (Codec.Reader.u32 r)
  | 5 ->
      let n = Codec.Reader.u16 r in
      Checkpoint (List.init n (fun _ -> Codec.Reader.u32 r))
  | 6 ->
      let txn = Codec.Reader.u32 r in
      let page = Codec.Reader.u32 r in
      let slot = Codec.Reader.u16 r in
      let restore = opt_string () in
      let undo_next = Codec.Reader.u32 r in
      Clr { txn; page; slot; restore; undo_next }
  | k -> failwith (Printf.sprintf "Wal.decode_record: bad tag %d" k)

let pp_record ppf = function
  | Begin t -> Fmt.pf ppf "BEGIN %d" t
  | Commit t -> Fmt.pf ppf "COMMIT %d" t
  | Abort t -> Fmt.pf ppf "ABORT %d" t
  | Checkpoint active ->
      Fmt.pf ppf "CHECKPOINT active=[%a]" (Fmt.list ~sep:(Fmt.any " ") Fmt.int)
        active
  | Update { txn; page; slot; before; after } ->
      let o ppf = function
        | None -> Fmt.string ppf "_"
        | Some s -> Fmt.pf ppf "%S" s
      in
      Fmt.pf ppf "UPDATE txn=%d page=%d slot=%d %a -> %a" txn page slot o
        before o after
  | Clr { txn; page; slot; restore; undo_next } ->
      let o ppf = function
        | None -> Fmt.string ppf "_"
        | Some s -> Fmt.pf ppf "%S" s
      in
      Fmt.pf ppf "CLR txn=%d page=%d slot=%d restore=%a undo-next=%d" txn page
        slot o restore undo_next
