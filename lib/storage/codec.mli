(** Minimal binary codec for node serialization. *)

module Writer : sig
  type t

  val create : unit -> t
  val u8 : t -> int -> unit
  val u16 : t -> int -> unit
  val u32 : t -> int -> unit

  val string : t -> string -> unit
  (** u16 length prefix + bytes. *)

  val lstring : t -> string -> unit
  (** u32 length prefix + bytes, for payloads beyond the u16 range. *)

  val i64 : t -> int -> unit
  (** Full-range OCaml int, 8 bytes little-endian two's complement. *)

  val contents : t -> string
end

module Reader : sig
  type t

  val create : string -> t

  val u8 : t -> int
  (** @raise Failure on truncated input (all readers). *)

  val u16 : t -> int
  val u32 : t -> int
  val string : t -> string
  val lstring : t -> string
  val i64 : t -> int
  val at_end : t -> bool
end

val frame_spans : string -> (int * int) list
(** [(payload offset, payload length)] of every complete
    u32-length-prefixed frame in a log image, in order.  A torn tail — a
    partial length prefix, or a prefix promising more bytes than the
    image holds — ends the scan; the stable prefix is kept. *)

val fold_frames : string -> init:'a -> f:('a -> string -> 'a) -> 'a
(** Fold [f] over each complete frame payload.  Stops, keeping the
    accumulated prefix, at a torn tail or when [f] raises [Failure]
    (a torn or corrupt record body) — the loading convention shared by
    {!Ooser_recovery.Oplog} and every other on-disk log. *)
