(** A logged slot store with crash recovery (ARIES-lite).

    Writes go to a volatile cache and are logged with before/after images
    (write-ahead); commit forces the log (no-force for pages); any cached
    page may be flushed to the durable disk at any time (steal).  A crash
    discards the cache and the unforced log suffix; {!recover} runs
    analysis / redo (repeating history) / undo and leaves the durable
    state with exactly the committed transactions' effects. *)

type t

val create : ?page_size:int -> unit -> t
val wal : t -> Wal.t
val durable : t -> Disk.t

val alloc_page : t -> Disk.page_id

val begin_txn : t -> int -> unit
(** @raise Invalid_argument when the id is already in use. *)

val read : t -> Disk.page_id -> int -> string option
(** Volatile (current) view. *)

val write : t -> txn:int -> page:Disk.page_id -> slot:int -> string option -> unit
(** Set or delete ([None]) a slot, logging before/after images.
    @raise Invalid_argument when the transaction is not active. *)

val commit : t -> int -> unit
(** Log COMMIT and force the log. *)

val abort : t -> int -> unit
(** Roll back a live transaction from its before images, logging a
    {!Wal.Clr} per reversal. *)

val flush_page : t -> Disk.page_id -> unit
(** Steal: write a (possibly uncommitted) cached image to the durable
    disk. *)

val flush_all : t -> unit

val checkpoint : t -> Wal.lsn
(** Fuzzy checkpoint: flush every cached page, force the log, record the
    active transactions; recovery's redo then starts here.  A quiescent
    checkpoint (no active transactions) also truncates the log. *)

val crash : t -> t
(** Volatile state is lost; only forced log records remain. *)

type recovery_report = {
  winners : int list;
  losers : int list;
  redone : int;
  undone : int;
}

val recover : ?on_undo:(Wal.lsn -> unit) -> t -> recovery_report
(** Idempotent: recovering an already-recovered store changes nothing
    (repeating history + undoing an empty loser set).  Undo writes a
    forced {!Wal.Clr} before each compensating page write, so a crash
    during recovery itself is recoverable and no update is ever
    compensated twice.  [on_undo] is invoked with the lsn of each update
    just after its compensation completes — the crash-injection tests
    use it to kill recovery mid-undo. *)

val read_durable : t -> Disk.page_id -> int -> string option
(** Durable view, for post-crash inspection. *)
