(** Write-ahead log.

    §1 of the paper assumes transactions execute "reliably — as if there
    were no failures"; this is the substrate: slot-level
    before/after-image logging with a {!force} operation modelling stable
    storage.  A simulated {!crash} keeps exactly the forced records. *)

type lsn = int

type record =
  | Begin of int
  | Update of {
      txn : int;
      page : Disk.page_id;
      slot : int;
      before : string option;  (** [None] — the slot was dead *)
      after : string option;  (** [None] — the slot becomes dead *)
    }
  | Commit of int
  | Abort of int
  | Checkpoint of int list
      (** transactions active at checkpoint time *)
  | Clr of {
      txn : int;
      page : Disk.page_id;
      slot : int;
      restore : string option;  (** the before-image being reinstalled *)
      undo_next : lsn;  (** lsn of the {!Update} this record compensates *)
    }
      (** Compensation log record: written (and forced) before each undo
          page write, so a crash during rollback or recovery never
          compensates the same update twice — the next recovery's undo
          floor for the transaction is the minimum [undo_next] of its
          stable CLRs. *)

type t

val create : unit -> t

val append : t -> record -> lsn
val force : t -> unit
(** Everything appended so far becomes stable. *)

val next_lsn : t -> lsn
val stable_lsn : t -> lsn

val all : t -> (lsn * record) list
(** Oldest first. *)

val stable : t -> (lsn * record) list
(** The records that would survive a crash, oldest first. *)

val truncate : t -> upto:lsn -> unit
(** Drop every record below [upto] (after a quiescent checkpoint). *)

val crash : t -> t
(** The log as seen after a crash: unforced records are gone. *)

val encode_record : record -> string
val decode_record : string -> record
(** @raise Failure on corrupt input. *)

val pp_record : Format.formatter -> record -> unit
