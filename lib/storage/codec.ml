(* Minimal binary codec for node serialization. *)

module Writer = struct
  type t = Buffer.t

  let create () = Buffer.create 256

  let u8 b v =
    if v < 0 || v > 0xFF then invalid_arg "Codec.u8";
    Buffer.add_char b (Char.chr v)

  let u16 b v =
    if v < 0 || v > 0xFFFF then invalid_arg "Codec.u16";
    Buffer.add_char b (Char.chr (v land 0xFF));
    Buffer.add_char b (Char.chr ((v lsr 8) land 0xFF))

  let u32 b v =
    if v < 0 || v > 0xFFFFFFFF then invalid_arg "Codec.u32";
    u16 b (v land 0xFFFF);
    u16 b ((v lsr 16) land 0xFFFF)

  let string b s =
    u16 b (String.length s);
    Buffer.add_string b s

  (* u32-length-prefixed string, for payloads that can exceed the u16
     range of [string] *)
  let lstring b s =
    u32 b (String.length s);
    Buffer.add_string b s

  (* full-range OCaml int, little-endian two's complement over 8 bytes *)
  let i64 b v =
    let x = Int64.of_int v in
    for i = 0 to 7 do
      Buffer.add_char b
        (Char.chr
           (Int64.to_int (Int64.logand (Int64.shift_right_logical x (8 * i)) 0xFFL)))
    done

  let contents b = Buffer.contents b
end

module Reader = struct
  type t = { data : string; mutable pos : int }

  let create data = { data; pos = 0 }

  let ensure r n =
    if r.pos + n > String.length r.data then failwith "Codec: truncated input"

  let u8 r =
    ensure r 1;
    let v = Char.code r.data.[r.pos] in
    r.pos <- r.pos + 1;
    v

  let u16 r =
    let lo = u8 r in
    let hi = u8 r in
    lo lor (hi lsl 8)

  let u32 r =
    let lo = u16 r in
    let hi = u16 r in
    lo lor (hi lsl 16)

  let string r =
    let len = u16 r in
    ensure r len;
    let s = String.sub r.data r.pos len in
    r.pos <- r.pos + len;
    s

  let lstring r =
    let len = u32 r in
    ensure r len;
    let s = String.sub r.data r.pos len in
    r.pos <- r.pos + len;
    s

  let i64 r =
    ensure r 8;
    let x = ref 0L in
    for i = 7 downto 0 do
      x :=
        Int64.logor
          (Int64.shift_left !x 8)
          (Int64.of_int (Char.code r.data.[r.pos + i]))
    done;
    r.pos <- r.pos + 8;
    Int64.to_int !x

  let at_end r = r.pos = String.length r.data
end

(* A log image is a sequence of u32-length-prefixed frames.  A crash
   between append and force can leave a torn final frame (a partial
   length prefix, or a prefix promising more bytes than follow): every
   complete leading frame is a stable record, everything after the tear
   is garbage.  Both scanners keep the stable prefix and ignore the
   tail — the discipline every on-disk log in the tree shares. *)

let frame_spans data =
  let n = String.length data in
  let spans = ref [] in
  let pos = ref 0 in
  let stop = ref false in
  while (not !stop) && !pos + 4 <= n do
    let b i = Char.code data.[!pos + i] in
    let len = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
    if !pos + 4 + len > n then stop := true
    else begin
      spans := (!pos + 4, len) :: !spans;
      pos := !pos + 4 + len
    end
  done;
  List.rev !spans

let fold_frames data ~init ~f =
  let acc = ref init in
  (try
     List.iter
       (fun (off, len) -> acc := f !acc (String.sub data off len))
       (frame_spans data)
   with Failure _ -> ());
  !acc
