(* A logged slot store with crash recovery (ARIES-lite).

   Writes go to a volatile cache and are logged with before/after images
   (write-ahead: the log record exists before the page changes); commit
   forces the log (no-force for pages); any cached page may additionally
   be flushed to the durable disk at any time (steal).  A crash discards
   the cache and the unforced log suffix; [recover] then runs

     analysis — find the transactions with a stable COMMIT;
     redo      — reapply every stable update AND compensation in log
                 order (repeating history, idempotent thanks to
                 slot-targeted writes);
     undo      — roll back the losers' updates in reverse order using the
                 before images.

   Every undo — live abort or recovery — writes a CLR (compensation log
   record) carrying [undo_next], the lsn of the update it reverses.
   During recovery the CLR is forced before the page write, so a crash in
   the middle of recovery itself is recoverable: the next recovery's undo
   floor for a loser is the minimum [undo_next] of its stable CLRs, and
   only updates strictly below the floor are compensated — never the same
   update twice.

   After recovery the durable state contains exactly the committed
   transactions' effects — atomicity and durability under steal /
   no-force. *)

type txn_state = Active | Committing | Finished

type t = {
  durable : Disk.t;
  cache : (Disk.page_id, Bytes.t) Hashtbl.t;  (* volatile page images *)
  wal : Wal.t;
  mutable active : (int * txn_state) list;
}

let create ?(page_size = 4096) () =
  { durable = Disk.create ~page_size (); cache = Hashtbl.create 64;
    wal = Wal.create (); active = [] }

let wal t = t.wal
let durable t = t.durable

let alloc_page t = Disk.alloc t.durable

(* Volatile view of a page: cached image or a copy of the durable one. *)
let page_image t pid =
  match Hashtbl.find_opt t.cache pid with
  | Some b -> b
  | None ->
      let b = Disk.read t.durable pid in
      Hashtbl.replace t.cache pid b;
      b

let read t pid slot = Page.get (Page.of_bytes (page_image t pid)) slot

let begin_txn t txn =
  if List.mem_assoc txn t.active then invalid_arg "Logged_store: txn exists";
  t.active <- (txn, Active) :: t.active;
  ignore (Wal.append t.wal (Wal.Begin txn))

let check_active t txn =
  match List.assoc_opt txn t.active with
  | Some Active -> ()
  | _ -> invalid_arg "Logged_store: transaction not active"

(* Log first, then apply (write-ahead). *)
let apply_slot page slot content =
  match content with
  | Some data ->
      if not (Page.write_at page slot data) then
        failwith "Logged_store: page full during apply"
  | None -> ignore (Page.delete page slot)

let write t ~txn ~page:pid ~slot data =
  check_active t txn;
  let img = page_image t pid in
  let page = Page.of_bytes img in
  let before = Page.get page slot in
  ignore (Wal.append t.wal (Wal.Update { txn; page = pid; slot; before; after = data }));
  apply_slot page slot data

let commit t txn =
  check_active t txn;
  ignore (Wal.append t.wal (Wal.Commit txn));
  Wal.force t.wal;
  t.active <- (txn, Finished) :: List.remove_assoc txn t.active

(* Roll back a live transaction using the volatile cache, logging a CLR
   for every reversal so that redo's "repeating history" also repeats
   the rollback. *)
let abort t txn =
  check_active t txn;
  let undos =
    List.rev
      (List.filter_map
         (fun (lsn, r) ->
           match r with
           | Wal.Update { txn = x; page; slot; before; _ } when x = txn ->
               Some (lsn, page, slot, before)
           | _ -> None)
         (Wal.all t.wal))
  in
  List.iter
    (fun (lsn, pid, slot, before) ->
      ignore
        (Wal.append t.wal
           (Wal.Clr
              { txn; page = pid; slot; restore = before; undo_next = lsn }));
      apply_slot (Page.of_bytes (page_image t pid)) slot before)
    undos;
  ignore (Wal.append t.wal (Wal.Abort txn));
  t.active <- (txn, Finished) :: List.remove_assoc txn t.active

(* Steal: flush one cached page image to the durable disk (possibly
   carrying uncommitted data — recovery undoes it).  The write-ahead rule:
   the log covering the page's changes must be stable before the page
   is. *)
let flush_page t pid =
  match Hashtbl.find_opt t.cache pid with
  | Some b ->
      Wal.force t.wal;
      Disk.write t.durable pid b
  | None -> ()

let flush_all t = Hashtbl.iter (fun pid _ -> flush_page t pid) t.cache

(* Fuzzy checkpoint: flush every cached page, force the log, and record
   the set of still-active transactions.  Analysis then starts at the
   last checkpoint: everything before it is durably on disk. *)
let checkpoint t =
  flush_all t;
  let active =
    List.filter_map
      (fun (x, st) -> if st = Active then Some x else None)
      t.active
  in
  let lsn = Wal.append t.wal (Wal.Checkpoint active) in
  Wal.force t.wal;
  (* a quiescent checkpoint makes the log prefix garbage *)
  if active = [] then Wal.truncate t.wal ~upto:lsn;
  lsn

(* A crash: volatile state is lost, only forced log records remain. *)
let crash t =
  { durable = t.durable; cache = Hashtbl.create 64; wal = Wal.crash t.wal;
    active = [] }

(* -- recovery ------------------------------------------------------------------ *)

type recovery_report = {
  winners : int list;
  losers : int list;
  redone : int;
  undone : int;
}

let recover ?(on_undo = fun (_ : Wal.lsn) -> ()) t =
  let full_log = Wal.stable t.wal in
  (* start the redo scan at the last checkpoint: pages were flushed
     there, so earlier updates are already durable *)
  let log, checkpoint_active =
    let rec find_last acc active = function
      | [] -> (List.rev acc, active)
      | (_, Wal.Checkpoint a) :: rest -> find_last [] a rest
      | r :: rest -> find_last (r :: acc) active rest
    in
    find_last [] [] full_log
  in
  (* analysis over the whole stable log; redo alone is bounded by the
     checkpoint (its pages are already durable) *)
  let committed =
    List.filter_map
      (fun (_, r) -> match r with Wal.Commit x -> Some x | _ -> None)
      full_log
  in
  let aborted =
    List.filter_map
      (fun (_, r) -> match r with Wal.Abort x -> Some x | _ -> None)
      full_log
  in
  let begun =
    List.filter_map
      (fun (_, r) -> match r with Wal.Begin x -> Some x | _ -> None)
      full_log
  in
  let losers =
    List.filter
      (fun x -> (not (List.mem x committed)) && not (List.mem x aborted))
      (begun @ checkpoint_active)
    |> List.sort_uniq Int.compare
  in
  (* per-loser undo floor: the minimum [undo_next] of its stable CLRs.
     Updates at or above the floor were already compensated (by a live
     abort or by a recovery that crashed mid-undo) — their CLRs are in
     the log and redo repeats their effect. *)
  let floor_of =
    let floors = Hashtbl.create 8 in
    List.iter
      (fun (_, r) ->
        match r with
        | Wal.Clr { txn; undo_next; _ } ->
            let cur =
              Option.value (Hashtbl.find_opt floors txn) ~default:max_int
            in
            Hashtbl.replace floors txn (min cur undo_next)
        | _ -> ())
      full_log;
    fun txn -> Option.value (Hashtbl.find_opt floors txn) ~default:max_int
  in
  (* redo: repeat history in log order on the durable pages — updates and
     compensations alike *)
  let redone = ref 0 in
  List.iter
    (fun (_, r) ->
      match r with
      | Wal.Update { page = pid; slot; after; _ } ->
          let img = Disk.read t.durable pid in
          apply_slot (Page.of_bytes img) slot after;
          Disk.write t.durable pid img;
          incr redone
      | Wal.Clr { page = pid; slot; restore; _ } ->
          let img = Disk.read t.durable pid in
          apply_slot (Page.of_bytes img) slot restore;
          Disk.write t.durable pid img;
          incr redone
      | _ -> ())
    log;
  (* undo the losers, newest first, below each loser's floor.  The CLR is
     forced BEFORE the page write: if we crash between the two, the next
     recovery sees the CLR, redoes its restore, and skips this update —
     each update is compensated exactly once across any number of
     crashes. *)
  let undone = ref 0 in
  List.iter
    (fun (lsn, r) ->
      match r with
      | Wal.Update { txn; page = pid; slot; before; _ }
        when List.mem txn losers && lsn < floor_of txn ->
          ignore
            (Wal.append t.wal
               (Wal.Clr
                  { txn; page = pid; slot; restore = before; undo_next = lsn }));
          Wal.force t.wal;
          let img = Disk.read t.durable pid in
          apply_slot (Page.of_bytes img) slot before;
          Disk.write t.durable pid img;
          incr undone;
          on_undo lsn
      | _ -> ())
    (List.rev full_log);
  List.iter (fun x -> ignore (Wal.append t.wal (Wal.Abort x))) losers;
  Wal.force t.wal;
  {
    winners = List.sort_uniq Int.compare committed;
    losers = List.sort_uniq Int.compare losers;
    redone = !redone;
    undone = !undone;
  }

(* Durable view of a slot (post-crash, post-recovery inspection). *)
let read_durable t pid slot = Page.get (Page.of_bytes (Disk.read t.durable pid)) slot
