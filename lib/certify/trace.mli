(** The streaming binary history-trace format: the interchange between
    everything that executes transactions (engine, sharded server,
    recovery, load generators) and the offline certifier.

    A trace is a sequence of u32-length-prefixed frames ({!Ooser_storage}
    codec, same convention as the operation log): one header frame
    (magic, version, the name of the commutativity registry the history
    ran under), then one frame per committed top-level transaction
    carrying its call tree and its executed primitives with their global
    execution stamps.  Stamps are order-isomorphic to positions in the
    committed execution order — exactly what {!Ooser_core.Incremental}
    needs — so a trace is certifiable without replaying anything.

    Each record frame starts with a small fixed header (top, stamp span,
    tree depth, primitive count) so {!load} can index a multi-gigabyte
    trace without decoding any call tree; records are decoded lazily,
    per segment, by whichever worker certifies them.

    Readers tolerate a torn tail: a crash between append and force
    truncates to the last complete frame, as {!Ooser_recovery.Oplog}
    does. *)

open Ooser_core
open Ids

val magic : string
val version : int

type record = {
  top : int;
  tree : Call_tree.t;
  prims : (Action_id.t * int) list;
      (** executed primitives with global stamps, in log order; never
          empty (a zero-call transaction has no footprint to certify) *)
}

(** {1 Writing} *)

type writer

val create_writer : ?registry:string -> string -> writer
(** Open [path] for append (truncating any existing file) and write the
    header frame.  [registry] (default ["unknown"]) names the
    commutativity registry certification must resolve. *)

val append : writer -> record -> unit
(** Thread-safe (shard engines on several domains may share one writer).
    @raise Invalid_argument on empty [prims]. *)

val flush : writer -> unit
val close : writer -> unit

val encode_record : record -> string
val decode_record : string -> record

val write_history : ?registry:string -> string -> History.t -> unit
(** One-shot export of an in-memory history: each top-level tree becomes
    a record, stamped by position in the execution order (leaf roots
    included).  Used by the sharded server's drain and by tests. *)

(** {1 Reading} *)

type entry = {
  off : int;  (** payload offset into the raw buffer *)
  len : int;
  e_top : int;
  n_prims : int;
  min_stamp : int;
  max_stamp : int;  (** the transaction's stamp span *)
  max_depth : int;  (** deepest action in the tree; 1 = flat *)
}

type t

val load : string -> t
(** Read [path] and index every complete frame; a torn or corrupt tail
    is truncated.
    @raise Failure if the file is missing or not a trace. *)

val of_string : string -> t
(** Index an in-memory trace image. *)

val registry_name : t -> string
val length : t -> int
(** Committed transactions in the trace. *)

val entries : t -> entry array
(** In file (commit) order. *)

val record : t -> int -> record
(** Decode the [i]-th record.  Safe to call concurrently from several
    domains — decoding only reads the shared buffer. *)

val to_history : t -> commut:Commutativity.registry -> History.t
(** The whole trace as one in-memory history (the from-scratch oracle's
    view).  Only for traces that fit: the offline certifier never calls
    this. *)
