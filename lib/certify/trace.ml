open Ooser_core
open Ooser_storage
open Ids

let magic = "OOSERTRC"
let version = 1

type record = {
  top : int;
  tree : Call_tree.t;
  prims : (Action_id.t * int) list;
}

(* ---------- value / tree codec ---------- *)

let rec write_value w (v : Value.t) =
  match v with
  | Value.Unit -> Codec.Writer.u8 w 0
  | Value.Bool b ->
      Codec.Writer.u8 w 1;
      Codec.Writer.u8 w (if b then 1 else 0)
  | Value.Int i ->
      Codec.Writer.u8 w 2;
      Codec.Writer.i64 w i
  | Value.Str s ->
      Codec.Writer.u8 w 3;
      Codec.Writer.lstring w s
  | Value.Pair (a, b) ->
      Codec.Writer.u8 w 4;
      write_value w a;
      write_value w b
  | Value.List l ->
      Codec.Writer.u8 w 5;
      Codec.Writer.u32 w (List.length l);
      List.iter (write_value w) l

let rec read_value r : Value.t =
  match Codec.Reader.u8 r with
  | 0 -> Value.Unit
  | 1 -> Value.Bool (Codec.Reader.u8 r <> 0)
  | 2 -> Value.Int (Codec.Reader.i64 r)
  | 3 -> Value.Str (Codec.Reader.lstring r)
  | 4 ->
      let a = read_value r in
      let b = read_value r in
      Value.Pair (a, b)
  | 5 ->
      let n = Codec.Reader.u32 r in
      Value.List (List.init n (fun _ -> read_value r))
  | t -> failwith (Printf.sprintf "Trace: bad value tag %d" t)

(* Action ids inside a record all share the record's top, so only the
   path (and a virtual rank, 0 for real ids) is written. *)
let write_id w id =
  let path = Action_id.path id in
  Codec.Writer.u8 w (List.length path);
  List.iter (Codec.Writer.u32 w) path;
  Codec.Writer.u16 w
    (if Action_id.is_virtual id then
       (* committed trees carry no virtual duplicates (those only appear
          in Def. 5 extensions), but be faithful if one ever does *)
       1
     else 0)

let read_id r ~top =
  let plen = Codec.Reader.u8 r in
  let path = List.init plen (fun _ -> Codec.Reader.u32 r) in
  let rank = Codec.Reader.u16 r in
  let id = Action_id.v ~top ~path in
  if rank = 0 then id else Action_id.virtualize id ~rank

let write_obj w o =
  Codec.Writer.string w (Obj_id.name o);
  Codec.Writer.u16 w (Obj_id.rank o)

let read_obj r =
  let name = Codec.Reader.string r in
  let rank = Codec.Reader.u16 r in
  let o = Obj_id.v name in
  if rank = 0 then o else Obj_id.virtualize o ~rank

let rec write_node w (node : Call_tree.t) =
  let act = node.Call_tree.act in
  write_id w (Action.id act);
  write_obj w (Action.obj act);
  Codec.Writer.string w (Action.meth act);
  Codec.Writer.u16 w (List.length (Action.args act));
  List.iter (write_value w) (Action.args act);
  Codec.Writer.u32 w (Process_id.top (Action.process act));
  Codec.Writer.u32 w (Process_id.branch (Action.process act));
  Codec.Writer.u16 w (List.length node.Call_tree.prec);
  List.iter
    (fun (a, b) ->
      Codec.Writer.u32 w a;
      Codec.Writer.u32 w b)
    node.Call_tree.prec;
  Codec.Writer.u32 w (List.length node.Call_tree.children);
  List.iter (write_node w) node.Call_tree.children

let rec read_node r ~top =
  let id = read_id r ~top in
  let obj = read_obj r in
  let meth = Codec.Reader.string r in
  let n_args = Codec.Reader.u16 r in
  let args = List.init n_args (fun _ -> read_value r) in
  let ptop = Codec.Reader.u32 r in
  let branch = Codec.Reader.u32 r in
  let process = Process_id.v ~top:ptop ~branch in
  let n_prec = Codec.Reader.u16 r in
  let prec =
    List.init n_prec (fun _ ->
        let a = Codec.Reader.u32 r in
        let b = Codec.Reader.u32 r in
        (a, b))
  in
  let n_children = Codec.Reader.u32 r in
  let children = List.init n_children (fun _ -> read_node r ~top) in
  let act = Action.v ~id ~obj ~meth ~args ~process () in
  Call_tree.v ~prec act children

(* ---------- record codec ---------- *)

let spans prims =
  List.fold_left
    (fun (lo, hi) (_, s) -> (min lo s, max hi s))
    (max_int, min_int) prims

let tree_depth tree =
  Call_tree.fold
    (fun d node -> max d (Action_id.depth (Action.id node.Call_tree.act)))
    0 tree

let encode_record rec_ =
  if rec_.prims = [] then invalid_arg "Trace.encode_record: empty prims";
  let w = Codec.Writer.create () in
  let min_stamp, max_stamp = spans rec_.prims in
  Codec.Writer.u32 w rec_.top;
  Codec.Writer.i64 w min_stamp;
  Codec.Writer.i64 w max_stamp;
  Codec.Writer.u16 w (tree_depth rec_.tree);
  Codec.Writer.u32 w (List.length rec_.prims);
  List.iter
    (fun (id, stamp) ->
      write_id w id;
      Codec.Writer.i64 w stamp)
    rec_.prims;
  write_node w rec_.tree;
  Codec.Writer.contents w

let decode_payload r =
  let top = Codec.Reader.u32 r in
  let _min_stamp = Codec.Reader.i64 r in
  let _max_stamp = Codec.Reader.i64 r in
  let _depth = Codec.Reader.u16 r in
  let n_prims = Codec.Reader.u32 r in
  let prims =
    List.init n_prims (fun _ ->
        let id = read_id r ~top in
        let stamp = Codec.Reader.i64 r in
        (id, stamp))
  in
  let tree = read_node r ~top in
  { top; tree; prims }

let decode_record payload = decode_payload (Codec.Reader.create payload)

(* ---------- writer ---------- *)

type writer = { oc : out_channel; lock : Mutex.t }

let frame payload =
  let w = Codec.Writer.create () in
  Codec.Writer.lstring w payload;
  Codec.Writer.contents w

let header_payload registry =
  let w = Codec.Writer.create () in
  Codec.Writer.string w magic;
  Codec.Writer.u16 w version;
  Codec.Writer.string w registry;
  Codec.Writer.contents w

let create_writer ?(registry = "unknown") path =
  let oc = open_out_bin path in
  output_string oc (frame (header_payload registry));
  { oc; lock = Mutex.create () }

let append t rec_ =
  let bytes = frame (encode_record rec_) in
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () -> output_string t.oc bytes)

let flush t =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () -> Stdlib.flush t.oc)

let close t =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () -> close_out t.oc)

let write_history ?registry path h =
  let w = create_writer ?registry path in
  Fun.protect
    ~finally:(fun () -> close w)
    (fun () ->
      let by_top = Hashtbl.create 256 in
      List.iteri
        (fun i id ->
          let top = Action_id.top id in
          let l =
            match Hashtbl.find_opt by_top top with
            | Some l -> l
            | None ->
                let l = ref [] in
                Hashtbl.replace by_top top l;
                l
          in
          l := (id, i) :: !l)
        (History.order h);
      List.iter
        (fun tree ->
          let top = Action_id.top (Action.id (Call_tree.act tree)) in
          match Hashtbl.find_opt by_top top with
          | Some l when !l <> [] -> append w { top; tree; prims = List.rev !l }
          | _ -> ())
        (History.tops h))

(* ---------- reader ---------- *)

type entry = {
  off : int;
  len : int;
  e_top : int;
  n_prims : int;
  min_stamp : int;
  max_stamp : int;
  max_depth : int;
}

type t = { buf : string; registry : string; index : entry array }

let of_string buf =
  match Codec.frame_spans buf with
  | [] -> failwith "Trace: empty or torn header"
  | (hoff, hlen) :: rest ->
      let hr = Codec.Reader.create (String.sub buf hoff hlen) in
      let m = try Codec.Reader.string hr with Failure _ -> "" in
      if m <> magic then failwith "Trace: bad magic (not a history trace)";
      let v = Codec.Reader.u16 hr in
      if v > version then
        failwith (Printf.sprintf "Trace: version %d unsupported" v);
      let registry = Codec.Reader.string hr in
      let entries = ref [] in
      (try
         List.iter
           (fun (off, len) ->
             let r = Codec.Reader.create (String.sub buf off (min len 64)) in
             let e_top = Codec.Reader.u32 r in
             let min_stamp = Codec.Reader.i64 r in
             let max_stamp = Codec.Reader.i64 r in
             let max_depth = Codec.Reader.u16 r in
             let n_prims = Codec.Reader.u32 r in
             entries :=
               { off; len; e_top; n_prims; min_stamp; max_stamp; max_depth }
               :: !entries)
           rest
       with Failure _ -> ());
      { buf; registry; index = Array.of_list (List.rev !entries) }

let load path =
  let ic =
    try open_in_bin path
    with Sys_error e -> failwith (Printf.sprintf "Trace: %s" e)
  in
  let buf =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_string buf

let registry_name t = t.registry
let length t = Array.length t.index
let entries t = t.index

let record t i =
  let e = t.index.(i) in
  decode_record (String.sub t.buf e.off e.len)

let to_history t ~commut =
  let n = Array.length t.index in
  let tops = ref [] in
  let order = ref [] in
  for i = n - 1 downto 0 do
    let r = record t i in
    tops := r.tree :: !tops;
    List.iter (fun (id, stamp) -> order := (id, stamp) :: !order) r.prims
  done;
  let tops =
    List.sort
      (fun a b ->
        Int.compare
          (Action_id.top (Action.id (Call_tree.act a)))
          (Action_id.top (Action.id (Call_tree.act b))))
      !tops
  in
  let order =
    List.stable_sort (fun (_, a) (_, b) -> Int.compare a b) !order
    |> List.map fst
  in
  History.v ~tops ~order ~commut
