(** Offline certification of very large recorded histories.

    [run] cuts the trace into segments at quiescent points
    ({!Segment}), certifies each segment with its own incremental
    certifier ({!Ooser_core.Incremental}) on a pool of OCaml domains
    (work-stealing over segments, largest first), then stitches the
    segments' boundary dependency frontiers — their Def. 15 root-root
    transaction-dependency edges, the shard coordinator's edge currency
    — through one Pearce–Kelly topological order so the concatenated
    per-segment verdicts are globally sound.

    Soundness of the composition:
    - {b Quiescent cuts are exact.}  Every dependency edge across a
      quiescent cut points forward (a backward edge needs a span
      reaching over the cut), so no cycle crosses one and the global
      verdict is the conjunction of the per-side verdicts.
    - {b Heuristic chains, flat transactions.}  When spans straddle a
      heuristic cut, every cross-segment dependency between depth-1
      transactions escalates to root endpoints, and the direct edges
      between two transactions derive from their two trees and stamps
      alone — so pairwise probes (a two-transaction incremental
      certifier per footprint-intersecting cross-segment pair) recover
      the complete cross-cut frontier, and acyclicity of the stitched
      root-root union equals the monolithic verdict.
    - {b Heuristic chains, nested transactions.}  A dependency between
      depth ≥ 2 actions can constrain tops through an inherited edge no
      pairwise probe sees, so a chain containing any depth ≥ 2 action
      is escalated: its segments are merged and certified sequentially
      as one work unit, which restores exactness at the cost of
      parallelism within that chain only. *)

open Ooser_core

type violation = {
  where : [ `Segment of int | `Probe of int * int | `Stitch ];
      (** which stage refused: a segment's own certifier, the pairwise
          probe of two transactions (tops given), or the global
          topological order *)
  witness : int list;  (** transaction tops on the refused cycle *)
  detail : string;
}

type report = {
  ok : bool;
  violation : violation option;
  txns : int;
  segments : int;
  quiescent_cuts : int;
  heuristic_cuts : int;
  multi_chains : int;  (** chains of more than one segment *)
  escalated : int;  (** chains merged for nested transactions *)
  workers : int;
  probes : int;  (** cross-segment pairwise probes run *)
  probe_edges : int;
  root_edges : int;  (** root-root edges stitched into the global order *)
  act_edges : int;  (** per-segment certifier totals *)
  txn_edges : int;
  peak_live : int;  (** most segments being certified at once *)
  seg_seconds : float;  (** parallel certification phase, wall clock *)
  seg_busy_seconds : float;  (** summed across workers *)
  stitch_seconds : float;
  elapsed_seconds : float;
  segment_txn_per_s : float;  (** txns / seg_seconds *)
}

val run :
  ?workers:int ->
  ?segment_target:int ->
  registry:Commutativity.registry ->
  Trace.t ->
  report
(** Certify the trace.  [workers] defaults to 4; [segment_target]
    defaults to {!Segment.default_target}, about four segments per
    worker.  The registry must be stable ({!Commutativity.stable}) for
    every object the trace touches — the same exactness requirement as
    the online incremental certifier; with state-reading specs the
    caller must fall back to the from-scratch oracle. *)

val to_json : report -> string
(** Hand-rolled JSON, the [oosdb certify --json] payload. *)

val pp : Format.formatter -> report -> unit
