(** Cutting a trace into independently-certifiable segments.

    Transactions are ordered by span start (minimum stamp).  A cut
    between consecutive positions is {e quiescent} when no transaction
    span crosses it — every transaction before the cut finished before
    every transaction after it started.  Dependency edges always point
    forward across a quiescent cut (an edge into the past would need a
    span overlapping the cut), so no dependency cycle crosses one: the
    segments on either side can be certified independently and the
    global verdict is exact.

    When no quiescent point appears within the overflow window the
    segmenter cuts heuristically — overlapping spans then straddle the
    cut and the cross-cut dependency frontier must be stitched
    ({!Certify}).  Consecutive segments joined by heuristic cuts form a
    {e chain}; cycles never cross chain boundaries, so stitching work is
    confined within chains. *)

type cut = Quiescent | Heuristic

type seg = {
  lo : int;  (** start position (inclusive) in {!plan}'s [order] *)
  hi : int;  (** end position (exclusive) *)
  cut_before : cut;  (** how the boundary before [lo] was cut *)
}

type t = {
  order : int array;
      (** record indices sorted by (min_stamp, max_stamp, index): the
          span-start order all positions refer to *)
  segs : seg array;
  chains : (int * int) array;
      (** maximal runs [i, j] (inclusive segment indices) joined by
          heuristic cuts; singleton chains are quiescent-isolated *)
}

val plan : Trace.t -> target:int -> t
(** Greedy segmentation: grow each segment to [target] transactions,
    cut at the first quiescent point after that, and fall back to a
    heuristic cut once the segment reaches [4 * target] without one.
    [target] is clamped to at least 1. *)

val default_target : txns:int -> workers:int -> int
(** [ceil txns / (4 * workers)] — about four segments per worker, so
    work-stealing keeps every domain busy even when segment costs are
    skewed (dependency edges grow quadratically on contended objects,
    so halving segment length quarters the worst segment). *)
