open Ooser_core
open Ids

module Itop = struct
  type t = int

  let compare = Int.compare
  let pp = Fmt.int
end

module G = Digraph.Make (Itop)

type violation = {
  where : [ `Segment of int | `Probe of int * int | `Stitch ];
  witness : int list;
  detail : string;
}

type report = {
  ok : bool;
  violation : violation option;
  txns : int;
  segments : int;
  quiescent_cuts : int;
  heuristic_cuts : int;
  multi_chains : int;
  escalated : int;
  workers : int;
  probes : int;
  probe_edges : int;
  root_edges : int;
  act_edges : int;
  txn_edges : int;
  peak_live : int;
  seg_seconds : float;
  seg_busy_seconds : float;
  stitch_seconds : float;
  elapsed_seconds : float;
  segment_txn_per_s : float;
}

(* One schedulable unit of per-segment work: a single segment, or a
   whole heuristic chain merged because it contains nested (depth >= 2)
   transactions — inherited dependencies between such transactions are
   not recoverable from pairwise probes, so the chain is certified
   sequentially as one certifier run. *)
type unit_work = {
  u_lo : int;  (* position range into plan.order *)
  u_hi : int;
  u_seg : int;  (* first segment index, for violation reporting *)
  u_escalated : bool;
  u_stitch : bool;
      (* true iff this unit is one segment of a flat multi-segment
         heuristic chain — the only case where its root-root frontier
         must be exported to the global stitch digraph.  A cycle can
         never cross a quiescent cut (every cross-cut edge points
         forward), so quiescent-isolated segments and escalated chains
         are fully discharged by their own certifier run. *)
}

type unit_result = {
  r_edges : (int * int) list;  (* Def. 15 root-root frontier *)
  r_rejection : Incremental.rejection option;
  r_act_edges : int;
  r_txn_edges : int;
  r_seconds : float;
}

let tops_of_cycle cycle =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun id ->
      let top = Action_id.top id in
      if Hashtbl.mem seen top then None
      else begin
        Hashtbl.add seen top ();
        Some top
      end)
    cycle

let certify_unit trace plan ~registry ~stop u =
  let t0 = Unix.gettimeofday () in
  let cert = Incremental.create registry in
  let rejection = ref None in
  let p = ref u.u_lo in
  while !rejection = None && !p < u.u_hi && not (Atomic.get stop) do
    let r = Trace.record trace plan.Segment.order.(!p) in
    let outcome =
      Incremental.add_commit cert ~tree:r.Trace.tree ~prims:r.Trace.prims
    in
    if not outcome.Incremental.accepted then
      rejection := outcome.Incremental.rejection;
    incr p
  done;
  let stats = Incremental.stats cert in
  {
    r_edges =
      (if !rejection = None && u.u_stitch then Incremental.root_txn_edges cert
       else []);
    r_rejection = !rejection;
    r_act_edges = stats.Incremental.act_edges;
    r_txn_edges = stats.Incremental.txn_edges;
    r_seconds = Unix.gettimeofday () -. t0;
  }

(* footprint: the original object names the transaction's primitives
   touch — two transactions without a common object have no direct
   dependency edge, so their probe is skipped *)
let footprint (r : Trace.record) =
  let fp = Hashtbl.create 8 in
  List.iter
    (fun act ->
      Hashtbl.replace fp (Obj_id.name (Obj_id.original (Action.obj act))) ())
    (Call_tree.primitives r.Trace.tree);
  fp

let footprints_intersect a b =
  let small, big =
    if Hashtbl.length a <= Hashtbl.length b then (a, b) else (b, a)
  in
  Hashtbl.fold (fun k () acc -> acc || Hashtbl.mem big k) small false

let run ?(workers = 4) ?segment_target ~registry trace =
  let t_start = Unix.gettimeofday () in
  let txns = Trace.length trace in
  let workers = max 1 workers in
  let target =
    match segment_target with
    | Some k -> max 1 k
    | None -> Segment.default_target ~txns ~workers
  in
  let plan = Segment.plan trace ~target in
  let entries = Trace.entries trace in
  let nsegs = Array.length plan.Segment.segs in
  let quiescent_cuts =
    Array.fold_left
      (fun acc (s : Segment.seg) ->
        if s.Segment.cut_before = Segment.Quiescent then acc + 1 else acc)
      (-1) plan.Segment.segs
    |> max 0
  in
  let heuristic_cuts =
    Array.fold_left
      (fun acc (s : Segment.seg) ->
        if s.Segment.cut_before = Segment.Heuristic then acc + 1 else acc)
      0 plan.Segment.segs
  in
  let chain_nested (i, j) =
    let lo = plan.Segment.segs.(i).Segment.lo
    and hi = plan.Segment.segs.(j).Segment.hi in
    let rec scan p =
      p < hi
      && (entries.(plan.Segment.order.(p)).Trace.max_depth >= 2 || scan (p + 1))
    in
    scan lo
  in
  (* build the work units: escalate nested heuristic chains *)
  let units = ref [] in
  let escalated = ref 0 in
  let flat_chains = ref [] in
  Array.iter
    (fun (i, j) ->
      if i = j then
        units :=
          {
            u_lo = plan.Segment.segs.(i).Segment.lo;
            u_hi = plan.Segment.segs.(i).Segment.hi;
            u_seg = i;
            u_escalated = false;
            u_stitch = false;
          }
          :: !units
      else if chain_nested (i, j) then begin
        incr escalated;
        units :=
          {
            u_lo = plan.Segment.segs.(i).Segment.lo;
            u_hi = plan.Segment.segs.(j).Segment.hi;
            u_seg = i;
            u_escalated = true;
            u_stitch = false;
          }
          :: !units
      end
      else begin
        flat_chains := (i, j) :: !flat_chains;
        for s = i to j do
          units :=
            {
              u_lo = plan.Segment.segs.(s).Segment.lo;
              u_hi = plan.Segment.segs.(s).Segment.hi;
              u_seg = s;
              u_escalated = false;
              u_stitch = true;
            }
            :: !units
        done
      end)
    plan.Segment.chains;
  (* largest first, so a straggler unit starts early *)
  let units =
    List.sort (fun a b -> Int.compare (b.u_hi - b.u_lo) (a.u_hi - a.u_lo)) !units
    |> Array.of_list
  in
  let nunits = Array.length units in
  let results : unit_result option array = Array.make nunits None in
  let next = Atomic.make 0 in
  let stop = Atomic.make false in
  let live = Atomic.make 0 in
  let peak = Atomic.make 0 in
  let seg_t0 = Unix.gettimeofday () in
  let worker () =
    let continue = ref true in
    while !continue do
      let i = Atomic.fetch_and_add next 1 in
      if i >= nunits || Atomic.get stop then continue := false
      else begin
        let l = Atomic.fetch_and_add live 1 + 1 in
        let rec bump () =
          let p = Atomic.get peak in
          if l > p && not (Atomic.compare_and_set peak p l) then bump ()
        in
        bump ();
        let r = certify_unit trace plan ~registry ~stop units.(i) in
        results.(i) <- Some r;
        if r.r_rejection <> None then Atomic.set stop true;
        ignore (Atomic.fetch_and_add live (-1))
      end
    done
  in
  let domains =
    List.init
      (min (workers - 1) (max 0 (nunits - 1)))
      (fun _ -> Domain.spawn worker)
  in
  worker ();
  List.iter Domain.join domains;
  let seg_seconds = Unix.gettimeofday () -. seg_t0 in
  let seg_busy =
    Array.fold_left
      (fun acc r -> match r with Some r -> acc +. r.r_seconds | None -> acc)
      0.0 results
  in
  let act_edges, txn_edges =
    Array.fold_left
      (fun (a, x) r ->
        match r with
        | Some r -> (a + r.r_act_edges, x + r.r_txn_edges)
        | None -> (a, x))
      (0, 0) results
  in
  let violation = ref None in
  Array.iteri
    (fun i r ->
      match r with
      | Some { r_rejection = Some rej; _ } when !violation = None ->
          violation :=
            Some
              {
                where = `Segment units.(i).u_seg;
                witness = tops_of_cycle rej.Incremental.cycle;
                detail = Fmt.str "%a" Incremental.pp_rejection rej;
              }
      | _ -> ())
    results;
  (* ---------- stitch ---------- *)
  let stitch_t0 = Unix.gettimeofday () in
  let g = G.Incremental.create () in
  let inserted = Hashtbl.create 4096 in
  let root_edges = ref 0 in
  let probes = ref 0 in
  let probe_edges = ref 0 in
  let insert_edge ~where (a, b) =
    if a <> b && (not (Hashtbl.mem inserted (a, b))) && !violation = None then begin
      Hashtbl.add inserted (a, b) ();
      G.Incremental.add_vertex g a;
      G.Incremental.add_vertex g b;
      match G.Incremental.add_edge g a b with
      | `Ok -> incr root_edges
      | `Cycle ws ->
          violation :=
            Some
              {
                where;
                witness = ws;
                detail =
                  Fmt.str "global transaction-dependency cycle %a"
                    Fmt.(list ~sep:(any "->") int)
                    ws;
              }
    end
  in
  if !violation = None then begin
    (* only segments of flat multi-segment chains export a frontier
       (u_stitch); two units never share a transaction, so these
       insertions alone cannot cycle — cycles appear only once probe
       edges bridge the segments of a heuristic chain *)
    Array.iteri
      (fun i r ->
        match r with
        | Some r ->
            List.iter (insert_edge ~where:(`Segment units.(i).u_seg)) r.r_edges
        | None -> ())
      results;
    (* pairwise cross-segment probes inside each flat heuristic chain:
       the direct Def. 15 edges between two flat transactions derive
       from their two trees and stamps alone *)
    List.iter
      (fun (ci, cj) ->
        if !violation = None then begin
          let lo = plan.Segment.segs.(ci).Segment.lo
          and hi = plan.Segment.segs.(cj).Segment.hi in
          let seg_of = Array.make (hi - lo) ci in
          for s = ci to cj do
            for p = plan.Segment.segs.(s).Segment.lo
                to plan.Segment.segs.(s).Segment.hi - 1 do
              seg_of.(p - lo) <- s
            done
          done;
          let recs =
            Array.init (hi - lo) (fun k ->
                Trace.record trace plan.Segment.order.(lo + k))
          in
          let fps = Array.map footprint recs in
          for a = 0 to hi - lo - 1 do
            for b = a + 1 to hi - lo - 1 do
              if
                !violation = None
                && seg_of.(a) <> seg_of.(b)
                && footprints_intersect fps.(a) fps.(b)
              then begin
                incr probes;
                let mini = Incremental.create registry in
                let feed r =
                  Incremental.add_commit mini ~tree:r.Trace.tree
                    ~prims:r.Trace.prims
                in
                let oa = feed recs.(a) in
                let ob = if oa.Incremental.accepted then feed recs.(b) else oa in
                let ta = recs.(a).Trace.top and tb = recs.(b).Trace.top in
                match
                  if not oa.Incremental.accepted then oa.Incremental.rejection
                  else if not ob.Incremental.accepted then
                    ob.Incremental.rejection
                  else None
                with
                | Some rej ->
                    violation :=
                      Some
                        {
                          where = `Probe (ta, tb);
                          witness = tops_of_cycle rej.Incremental.cycle;
                          detail = Fmt.str "%a" Incremental.pp_rejection rej;
                        }
                | None ->
                    List.iter
                      (fun e ->
                        incr probe_edges;
                        insert_edge ~where:(`Probe (ta, tb)) e)
                      (Incremental.root_txn_edges mini)
              end
            done
          done
        end)
      (List.rev !flat_chains)
  end;
  let stitch_seconds = Unix.gettimeofday () -. stitch_t0 in
  let multi_chains =
    Array.fold_left
      (fun acc (i, j) -> if j > i then acc + 1 else acc)
      0 plan.Segment.chains
  in
  {
    ok = !violation = None;
    violation = !violation;
    txns;
    segments = nsegs;
    quiescent_cuts;
    heuristic_cuts;
    multi_chains;
    escalated = !escalated;
    workers;
    probes = !probes;
    probe_edges = !probe_edges;
    root_edges = !root_edges;
    act_edges;
    txn_edges;
    peak_live = Atomic.get peak;
    seg_seconds;
    seg_busy_seconds = seg_busy;
    stitch_seconds;
    elapsed_seconds = Unix.gettimeofday () -. t_start;
    segment_txn_per_s =
      (if seg_seconds > 0.0 then float_of_int txns /. seg_seconds else 0.0);
  }

let to_json r =
  let b = Buffer.create 512 in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"ok\": %b, \"txns\": %d, \"segments\": %d, \"workers\": %d,\n" r.ok
       r.txns r.segments r.workers);
  Buffer.add_string b
    (Printf.sprintf
       "  \"quiescent_cuts\": %d, \"heuristic_cuts\": %d, \"multi_chains\": \
        %d, \"escalated\": %d,\n"
       r.quiescent_cuts r.heuristic_cuts r.multi_chains r.escalated);
  Buffer.add_string b
    (Printf.sprintf
       "  \"probes\": %d, \"probe_edges\": %d, \"root_edges\": %d, \
        \"act_edges\": %d, \"txn_edges\": %d,\n"
       r.probes r.probe_edges r.root_edges r.act_edges r.txn_edges);
  Buffer.add_string b
    (Printf.sprintf
       "  \"peak_live_segments\": %d, \"segment_txn_per_s\": %.1f,\n"
       r.peak_live r.segment_txn_per_s);
  Buffer.add_string b
    (Printf.sprintf
       "  \"seg_seconds\": %.3f, \"seg_busy_seconds\": %.3f, \
        \"stitch_seconds\": %.3f, \"elapsed_seconds\": %.3f"
       r.seg_seconds r.seg_busy_seconds r.stitch_seconds r.elapsed_seconds);
  (match r.violation with
  | Some v ->
      Buffer.add_string b
        (Printf.sprintf ",\n  \"violation\": {\"where\": \"%s\", \"witness\": [%s]}"
           (match v.where with
           | `Segment s -> Printf.sprintf "segment-%d" s
           | `Probe (a, b) -> Printf.sprintf "probe-T%d-T%d" a b
           | `Stitch -> "stitch")
           (String.concat ", " (List.map string_of_int v.witness)))
  | None -> ());
  Buffer.add_string b "\n}\n";
  Buffer.contents b

let pp ppf r =
  Fmt.pf ppf
    "@[<v>%s: %d txns in %d segments (%d quiescent cuts, %d heuristic, %d \
     chains stitched, %d escalated)@,\
     workers %d: certified in %.3fs wall (%.3fs busy, peak %d live), stitch \
     %.3fs (%d probes, %d root edges), total %.3fs@]"
    (if r.ok then "CERTIFIED" else "NOT oo-serializable")
    r.txns r.segments r.quiescent_cuts r.heuristic_cuts r.multi_chains
    r.escalated r.workers r.seg_seconds r.seg_busy_seconds r.peak_live
    r.stitch_seconds r.probes r.root_edges r.elapsed_seconds;
  match r.violation with
  | Some v ->
      Fmt.pf ppf "@,violation (%s): %s"
        (match v.where with
        | `Segment s -> Printf.sprintf "segment %d" s
        | `Probe (a, b) -> Printf.sprintf "probe T%d/T%d" a b
        | `Stitch -> "stitch")
        v.detail
  | None -> ()
