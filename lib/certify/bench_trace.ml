open Ooser_core
open Ids

let registry_name = "bench:rw"

let registry () =
  let key_spec = Commutativity.rw ~reads:[ "r" ] ~writes:[ "w" ] in
  Commutativity.registry
    ~known:(fun _ -> true)
    (fun o ->
      if Obj_id.name (Obj_id.original o) = "S" then Commutativity.all_commute
      else key_spec)

type params = {
  txns : int;
  keys : int;
  calls : int;
  burst : int;
  p_write : float;
  seed : int;
  plant_cycle : bool;
}

let default_params =
  {
    txns = 100_000;
    keys = 512;
    calls = 3;
    burst = 64;
    p_write = 0.3;
    seed = 7;
    plant_cycle = false;
  }

(* one flat transaction: root on S, primitive children given as
   (object name, method) in program order, [stamps] the global execution
   stamps of the primitives in the same order *)
let record ~top ~ops ~stamps =
  let root_act =
    Action.v
      ~id:(Action_id.root top)
      ~obj:(Obj_id.v "S") ~meth:"txn"
      ~process:(Process_id.main top)
      ()
  in
  let children =
    List.mapi
      (fun k (obj, meth) ->
        Call_tree.v
          (Action.v
             ~id:(Action_id.child (Action_id.root top) (k + 1))
             ~obj:(Obj_id.v obj) ~meth
             ~process:(Process_id.main top)
             ())
          [])
      ops
  in
  let tree = Call_tree.seq root_act children in
  let prims =
    List.mapi
      (fun k stamp ->
        (Action_id.child (Action_id.root top) (k + 1), stamp))
      stamps
  in
  { Trace.top; tree; prims }

let key_ops ops =
  List.map
    (fun (key, is_write) ->
      (Printf.sprintf "K%d" key, if is_write then "w" else "r"))
    ops

let generate ~path p =
  let rng = Random.State.make [| p.seed |] in
  let w = Trace.create_writer ~registry:registry_name path in
  Fun.protect
    ~finally:(fun () -> Trace.close w)
    (fun () ->
      let stamp = ref 0 in
      let next_stamp () =
        incr stamp;
        !stamp
      in
      let top = ref 0 in
      let planted = ref (not p.plant_cycle) in
      let mid = p.txns / 2 in
      let emitted = ref 0 in
      while !emitted < p.txns do
        let burst = min p.burst (p.txns - !emitted) in
        (* Each transaction's key operations get a contiguous stamp
           block, so every conflict edge follows block order and the
           history is serializable by construction.  A trailing read of
           the shared PAD object (reads commute: no edges) is stamped
           after all the burst's blocks, stretching every span over the
           rest of the burst — no quiescent point exists inside a
           burst, only at burst boundaries. *)
        let txns =
          Array.init burst (fun _ ->
              incr top;
              let ops =
                List.init p.calls (fun _ ->
                    ( Random.State.int rng p.keys,
                      Random.State.float rng 1.0 < p.p_write ))
              in
              let stamps = List.map (fun _ -> next_stamp ()) ops in
              (!top, ops, stamps))
        in
        Array.iter
          (fun (top, ops, stamps) ->
            let pad = next_stamp () in
            Trace.append w
              (record ~top
                 ~ops:(key_ops ops @ [ ("PAD", "r") ])
                 ~stamps:(stamps @ [ pad ])))
          txns;
        emitted := !emitted + burst;
        if (not !planted) && !emitted >= mid then begin
          (* two writers with reversed orders on two fresh-ish keys:
             X: Ta before Tb, Y: Tb before Ta — a root-level 2-cycle *)
          planted := true;
          let x = 0 and y = 1 in
          let sa1 = next_stamp () in
          let sb1 = next_stamp () in
          let sb2 = next_stamp () in
          let sa2 = next_stamp () in
          incr top;
          let ta = !top in
          incr top;
          let tb = !top in
          Trace.append w
            (record ~top:tb
               ~ops:(key_ops [ (y, true); (x, true) ])
               ~stamps:[ sb1; sb2 ]);
          Trace.append w
            (record ~top:ta
               ~ops:(key_ops [ (x, true); (y, true) ])
               ~stamps:[ sa1; sa2 ])
        end
      done)
