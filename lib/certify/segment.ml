type cut = Quiescent | Heuristic

type seg = { lo : int; hi : int; cut_before : cut }

type t = {
  order : int array;
  segs : seg array;
  chains : (int * int) array;
}

let default_target ~txns ~workers =
  max 1 ((txns + (4 * workers) - 1) / (4 * workers))

(* overflow window: how far past [target] we keep looking for a
   quiescent point before giving up and cutting heuristically *)
let overflow = 4

let plan trace ~target =
  let target = max 1 target in
  let entries = Trace.entries trace in
  let n = Array.length entries in
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun a b ->
      let ea = entries.(a) and eb = entries.(b) in
      match Int.compare ea.Trace.min_stamp eb.Trace.min_stamp with
      | 0 -> (
          match Int.compare ea.Trace.max_stamp eb.Trace.max_stamp with
          | 0 -> Int.compare a b
          | c -> c)
      | c -> c)
    order;
  (* prefix_max.(p) = the largest stamp any of positions 0..p reaches;
     the cut after position p is quiescent iff every span so far ended
     before the next span starts.  (Positions are sorted by span start,
     so the suffix minimum start IS the next position's start.) *)
  let prefix_max = Array.make (max n 1) min_int in
  let running = ref min_int in
  Array.iteri
    (fun p i ->
      running := max !running entries.(i).Trace.max_stamp;
      prefix_max.(p) <- !running)
    order;
  let quiescent_after p =
    p + 1 >= n || prefix_max.(p) < entries.(order.(p + 1)).Trace.min_stamp
  in
  let segs = ref [] in
  let lo = ref 0 in
  let cut_before = ref Quiescent in
  let p = ref 0 in
  while !p < n do
    let size = !p - !lo + 1 in
    if quiescent_after !p && size >= target then begin
      segs := { lo = !lo; hi = !p + 1; cut_before = !cut_before } :: !segs;
      cut_before := Quiescent;
      lo := !p + 1
    end
    else if size >= overflow * target && not (quiescent_after !p) then begin
      segs := { lo = !lo; hi = !p + 1; cut_before = !cut_before } :: !segs;
      cut_before := Heuristic;
      lo := !p + 1
    end;
    incr p
  done;
  if !lo < n then
    segs := { lo = !lo; hi = n; cut_before = !cut_before } :: !segs;
  let segs = Array.of_list (List.rev !segs) in
  let chains = ref [] in
  let start = ref 0 in
  Array.iteri
    (fun s seg ->
      if s > 0 && seg.cut_before = Quiescent then begin
        chains := (!start, s - 1) :: !chains;
        start := s
      end)
    segs;
  if Array.length segs > 0 then chains := (!start, Array.length segs - 1) :: !chains;
  { order; segs; chains = Array.of_list (List.rev !chains) }
