(** Synthetic million-transaction traces for the certification
    benchmark and the CI gate.

    The workload is a stream of flat transactions over a bounded key
    universe (objects [K0..K(keys-1)] with read/write semantics, reads
    commute, writes conflict with everything).  Transactions execute in
    bursts: each transaction's key operations occupy a contiguous stamp
    block — so every conflict edge follows block order and the history
    is serializable by construction — while a trailing read of a shared
    [PAD] object (reads commute, so it adds no edges) is stamped after
    all the burst's blocks, stretching every span so no quiescent point
    exists inside a burst.  A quiescent gap separates consecutive
    bursts — the segmenter cuts exactly at burst boundaries when the
    target allows, and falls back to heuristic cuts (exercising the
    stitcher) when it does not.  Everything is deterministic in the
    seed.

    Conflicting pairs on a hot key each cost the certifier an edge, so
    total per-segment work grows quadratically with segment length on a
    fixed universe — which is precisely why smaller segments (more
    workers) certify the same trace with less total work, and why the
    scaling gate holds even on a single hardware thread. *)

val registry_name : string
(** ["bench:rw"], written into generated trace headers and resolved by
    [oosdb certify]. *)

val registry : unit -> Ooser_core.Commutativity.registry

type params = {
  txns : int;
  keys : int;  (** key universe; smaller = hotter = more edges *)
  calls : int;  (** primitives per transaction *)
  burst : int;  (** transactions whose spans fully interleave *)
  p_write : float;
  seed : int;
  plant_cycle : bool;
      (** plant one dependency cycle mid-trace (two transactions
          writing two keys in opposite orders) — for exercising the
          rejection path end to end *)
}

val default_params : params
(** 100k transactions, 512 keys, 3 calls, bursts of 64, 30% writes,
    no planted cycle. *)

val generate : path:string -> params -> unit
(** Write the trace to [path]. *)
