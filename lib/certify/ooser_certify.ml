(** Offline certification of very large recorded histories, Vbox-style:
    a streaming binary trace format ({!Trace}), quiescent-point
    segmentation ({!Segment}), parallel per-segment incremental
    certification stitched through a global topological order
    ({!Certify}), and the synthetic workload generator behind
    BENCH_certify.json ({!Bench_trace}). *)

module Trace = Trace
module Segment = Segment
module Certify = Certify
module Bench_trace = Bench_trace
