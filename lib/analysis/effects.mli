(** Per-transaction effect summaries.

    The first stage of the static conflict atlas: abstract each
    transaction summary into the set of (object, method, arguments)
    classes it can reach — the argument-class abstraction.  Every
    downstream commutativity decision over a stable spec (Def. 9) is a
    pure function of that triple, so two calls in the same class are
    interchangeable for the analysis.  Depth information is kept for the
    inheritance analysis (Defs. 10-11) and the open-nested compensation
    rule (COMP001). *)

open Ooser_core

type atom = {
  obj : Obj_id.t;  (** de-virtualised object *)
  meth : string;
  args : Value.t list;
  depth : int;  (** shallowest occurrence; 1 = called by the root *)
  count : int;  (** occurrences of this class in the summary *)
}

type t = {
  txn : string;
  atoms : atom list;  (** distinct classes, first-touch order *)
  objects : Obj_id.t list;  (** distinct objects, first-touch order *)
  max_depth : int;
}

val of_summary : Summary.t -> t

val atoms_on : t -> Obj_id.t -> atom list
(** Classes on one (de-virtualised) object. *)

val method_classes : t list -> (Obj_id.t * string list) list
(** Across several effect summaries: for each touched object, the
    distinct method names invoked on it — the row space of the
    precomputed conflict table. *)

val shape_key : Summary.t -> string
(** Canonical structural key of the summary's call tree; equal keys mean
    the same transaction type regardless of the instance name. *)

val pp : Format.formatter -> t -> unit
