(* Per-transaction effect summaries: the abstract footprint of one
   static transaction summary.

   The abstraction keeps, per summary, the set of distinct
   (object, method, arguments) classes it can reach — the
   "argument-class abstraction": two calls with the same method and the
   same declared arguments are one class, since every commutativity
   decision downstream (stable specs, Def. 9) is a function of exactly
   that triple.  Depths are recorded because open-nested compensation
   obligations (COMP001) and inheritance chains (Defs. 10-11) depend on
   where in the call tree a class occurs. *)

open Ooser_core

type atom = {
  obj : Obj_id.t;  (* de-virtualised *)
  meth : string;
  args : Value.t list;
  depth : int;  (* shallowest occurrence; 1 = called by the root *)
  count : int;  (* occurrences of the class in the summary *)
}

type t = {
  txn : string;
  atoms : atom list;  (* first-touch order *)
  objects : Obj_id.t list;  (* first-touch order, de-virtualised *)
  max_depth : int;
}

let of_summary (s : Summary.t) =
  let occ = ref [] and maxd = ref 0 in
  let rec visit depth (c : Summary.call) =
    if depth > !maxd then maxd := depth;
    occ := (Obj_id.original c.Summary.obj, c.Summary.meth, c.Summary.args, depth) :: !occ;
    List.iter (visit (depth + 1)) c.Summary.children
  in
  List.iter (visit 1) s.Summary.body;
  let atoms =
    List.fold_left
      (fun acc (o, m, args, d) ->
        let same a =
          Obj_id.equal a.obj o && String.equal a.meth m
          && List.equal Value.equal a.args args
        in
        if List.exists same acc then
          List.map
            (fun a ->
              if same a then { a with count = a.count + 1; depth = min a.depth d }
              else a)
            acc
        else acc @ [ { obj = o; meth = m; args; depth = d; count = 1 } ])
      [] (List.rev !occ)
  in
  { txn = s.Summary.name; atoms; objects = Summary.objects s; max_depth = !maxd }

let atoms_on t o =
  let o = Obj_id.original o in
  List.filter (fun a -> Obj_id.equal a.obj o) t.atoms

let method_classes ts =
  let acc = ref [] in
  (* (Obj_id.t * string list) assoc, insertion-ordered *)
  List.iter
    (fun t ->
      List.iter
        (fun a ->
          match
            List.find_opt (fun (o, _) -> Obj_id.equal o a.obj) !acc
          with
          | Some (o, ms) ->
              if not (List.mem a.meth !ms) then ms := a.meth :: !ms;
              ignore o
          | None -> acc := !acc @ [ (a.obj, ref [ a.meth ]) ])
        t.atoms)
    ts;
  List.map (fun (o, ms) -> (o, List.rev !ms)) !acc

(* Canonical structural key of a summary's call tree: summaries with
   equal keys describe the same transaction type (the instance name —
   "transfer7" — does not matter for pairwise analysis). *)
let shape_key (s : Summary.t) =
  let buf = Buffer.create 128 in
  let rec go (c : Summary.call) =
    Buffer.add_string buf (Obj_id.to_string (Obj_id.original c.Summary.obj));
    Buffer.add_char buf '.';
    Buffer.add_string buf c.Summary.meth;
    Buffer.add_char buf '(';
    List.iter
      (fun v ->
        Buffer.add_string buf (Value.to_string v);
        Buffer.add_char buf ',')
      c.Summary.args;
    Buffer.add_char buf ')';
    Buffer.add_char buf '[';
    List.iter go c.Summary.children;
    Buffer.add_char buf ']'
  in
  List.iter go s.Summary.body;
  Buffer.contents buf

let pp ppf t =
  Fmt.pf ppf "@[<v>effects %s (depth %d):@," t.txn t.max_depth;
  List.iter
    (fun a ->
      Fmt.pf ppf "  %a.%s(%a) depth %d x%d@," Obj_id.pp a.obj a.meth
        (Fmt.list ~sep:(Fmt.any ", ") Value.pp)
        a.args a.depth a.count)
    t.atoms;
  Fmt.pf ppf "@]"
