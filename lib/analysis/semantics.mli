(** Executable small-scope semantics for the shipped ADTs.

    Spec inference (DESIGN §16) needs ground truth to compare a
    commutativity specification against.  This module provides it: for
    each ADT in [lib/adts] an executable {!model} bundling

    - a canonical {e state encoding} as a {!Ooser_core.Value.t} (so
      witnesses print, serialize and replay),
    - a generator of small enumerated states (ordered small to large —
      the first failing state is a minimal witness) plus a QCheck
      random-state generator for the randomized soundness pass,
    - an {e executable instance} per state: run a method, observe the
      canonical abstract state, and undo the call the same way the
      engine's abort path would (inverse escrow update, [decr_count],
      remove-last-of, captured-binding restore — mirroring
      [Ooser_oodb.Adt_objects]),
    - per-method static {e footprints} for the effect-disjointness
      shortcut (read/read and distinct-key pairs).

    The oracle {!commute_at} decides whether two concrete calls commute
    at a state in the full open-nesting sense: both execution orders
    yield identical results and identical canonical states ({e forward}
    commutativity), {e and} undoing either call after the other ran —
    in both orders — leaves exactly the state the surviving call alone
    produces ({e abort safety}).  A call that errors in either order
    conflicts conservatively.  Abort safety is what justifies
    hand-written conflict cells that look conservative under forward
    commutativity alone: the directory's same-key [bind]/[bind] pair
    forward-commutes on equal arguments, but the captured-old-binding
    undo of one order resurrects the wrong binding, so the hand conflict
    is right. *)

open Ooser_core

(** Result of executing or undoing one call: a returned value, or a
    semantic error (bounds violation, missing element, bad argument). *)
type outcome = Ret of Value.t | Err of string

type call = {
  result : outcome;
  undo : unit -> outcome;
      (** Compensate the call, exactly like the engine's abort path.
          Captured at execution time (e.g. the directory's old binding).
          Undoing an [Err] result is a successful no-op. *)
}

(** One live ADT value at a specific abstract state. *)
type instance = {
  hand : Commutativity.spec;
      (** The shipped hand spec {e bound to this state} — for
          state-dependent specs (escrow, queue) this is the rebound
          family member at the instance's state. *)
  exec : string -> Value.t list -> call;
      (** Execute a method now; mutates the instance. *)
  observe : unit -> Value.t;
      (** Canonical abstract state: representation details (binding
          order, back/front queue split) never show through. *)
}

(** Static per-method effect footprint. *)
type footprint =
  | Reads_all  (** reads the whole abstract state (e.g. [list]) *)
  | Writes_all  (** may write anywhere (e.g. [enqueue]) *)
  | Reads_key  (** reads only the first-argument key *)
  | Writes_key  (** writes only the first-argument key *)

type model = {
  model_name : string;
  spec_name : string;
      (** Name of the registered spec this model audits, as reported by
          [Commutativity.name] (e.g. ["keyed(kv-set)"]). *)
  vocab : string list;  (** methods the model can execute *)
  footprints : (string * footprint) list;
  arg_vectors : (string * Value.t list list) list;
      (** Candidate argument vectors per method, covering same-args,
          same-key and distinct-key pairings. *)
  states : Value.t list;  (** enumerated states, small to large *)
  gen_state : Value.t QCheck.Gen.t;  (** randomized-state generator *)
  instantiate : Value.t -> instance;
}

val counter : model
(** Escrow counter; state [[low; high; value]]. *)

val kv_set : model
(** Counted set; state = sorted [[(elem, count); …]], counts positive. *)

val fifo : model
(** FIFO queue; state = front-first element list. *)

val directory : model
(** Name-to-value map; state = key-sorted [[(key, value); …]]. *)

val all : model list

val for_spec : Commutativity.spec -> model option
(** The model auditing this registered spec, matched by spec name. *)

val footprint : model -> string -> footprint option

val vectors : model -> string -> Value.t list list
(** Argument vectors for a method ([[[]]] for unknown methods, so
    argument-less probing still works). *)

val commute_at :
  model -> Value.t -> string * Value.t list -> string * Value.t list -> bool
(** [commute_at m state (meth, args) (meth', args')] — the ground-truth
    oracle: forward commutativity plus all four abort-safety scenarios
    at [state].  Conservative: any error outcome, unequal result, state
    divergence or failing undo means [false]. *)

val forward_at :
  model -> Value.t -> string * Value.t list -> string * Value.t list -> bool
(** Forward commutativity alone (both orders, equal results and states,
    no abort scenarios) — used to label a refutation as
    order-distinguishable versus abort-unsafe. *)
