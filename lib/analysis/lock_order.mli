(** Static deadlock-potential detection.

    Under {!Ooser_cc.Protocol.open_nested} and [closed_nested], an
    action's semantic lock is held until its caller completes, so a
    transaction's conflicting calls acquire locks in program order and
    release none before the last is taken — the classic hold-and-wait.
    Runtime detection ([lib/cc/deadlock.ml]) finds the waits-for cycle
    after transactions block; this is its static analogue: derive each
    transaction summary's object-acquisition order, restricted to
    contended objects (those with a static conflict edge to another
    transaction — uncontended acquisitions can never contribute a wait),
    take the union of the orders as a directed graph over objects, and
    report its cycles.  An acyclic graph certifies the workload can
    reach no lock-order deadlock at the object level; a cycle names the
    objects to reorder. *)

open Ooser_core

val acquisition_orders :
  Commutativity.registry ->
  Summary.t list ->
  (string * Obj_id.t list) list
(** Per transaction, the first-touch order over its contended objects. *)

val find_cycle :
  Commutativity.registry -> Summary.t list -> Obj_id.t list option
(** A cycle in the union of acquisition orders, if any. *)

val check : Commutativity.registry -> Summary.t list -> Diagnostic.t list
(** DL001 (warning) naming the cycle and the transactions whose orders
    disagree. *)
