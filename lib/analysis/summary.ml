(* Static transaction summaries: named object × method call trees,
   mirroring the [Runtime.call] structure of workload programs. *)

open Ooser_core

type call = {
  obj : Obj_id.t;
  meth : string;
  args : Value.t list;
  children : call list;
}

type t = { name : string; body : call list }

let call ?(args = []) obj meth children = { obj; meth; args; children }
let txn name body = { name; body }

let rec iter_call f c =
  f c;
  List.iter (iter_call f) c.children

let iter f t = List.iter (iter_call f) t.body

let fold f acc t =
  let acc = ref acc in
  iter (fun c -> acc := f !acc c) t;
  !acc

let objects t =
  List.rev
    (fold
       (fun acc c ->
         let o = Obj_id.original c.obj in
         if List.exists (Obj_id.equal o) acc then acc else o :: acc)
       [] t)

let methods_by_object t =
  fold
    (fun m c ->
      let o = Obj_id.original c.obj in
      let ms = Option.value ~default:[] (Obj_id.Map.find_opt o m) in
      if List.mem c.meth ms then m else Obj_id.Map.add o (ms @ [ c.meth ]) m)
    Obj_id.Map.empty t

let calls_on t o =
  List.rev
    (fold
       (fun acc c ->
         if Obj_id.equal (Obj_id.original c.obj) (Obj_id.original o) then
           c :: acc
         else acc)
       [] t)

let rec pp_call ppf c =
  Fmt.pf ppf "%a.%s" Obj_id.pp c.obj c.meth;
  if c.children <> [] then
    Fmt.pf ppf "[%a]" (Fmt.list ~sep:(Fmt.any "; ") pp_call) c.children

let pp ppf t =
  Fmt.pf ppf "%s: %a" t.name (Fmt.list ~sep:(Fmt.any "; ") pp_call) t.body
