(* Static deadlock-potential detection: cycles in the union of the
   per-transaction object-acquisition orders, restricted to contended
   objects.  Static analogue of the runtime waits-for check in
   lib/cc/deadlock.ml. *)

open Ooser_core

module G = Digraph.Make (struct
  type t = Obj_id.t

  let compare = Obj_id.compare
  let pp = Obj_id.pp
end)

(* Objects on which each transaction statically conflicts with another
   transaction; only those can make the transaction wait. *)
let contended reg summaries =
  let edges = Callgraph.conflict_edges reg summaries in
  fun (s : Summary.t) ->
    List.filter_map
      (fun e ->
        if
          e.Callgraph.from_txn = s.Summary.name
          || e.Callgraph.to_txn = s.Summary.name
        then Some e.Callgraph.obj
        else None)
      edges

let acquisition_orders reg summaries =
  let contended_of = contended reg summaries in
  List.map
    (fun s ->
      let c = contended_of s in
      ( s.Summary.name,
        List.filter (fun o -> List.exists (Obj_id.equal o) c)
          (Summary.objects s) ))
    summaries

let graph orders =
  List.fold_left
    (fun g (_, order) ->
      let rec add g = function
        | [] -> g
        | o :: rest -> add (List.fold_left (fun g p -> G.add o p g) g rest) rest
      in
      add g order)
    G.empty orders

let find_cycle reg summaries =
  G.find_cycle (graph (acquisition_orders reg summaries))

let check reg summaries =
  let orders = acquisition_orders reg summaries in
  match G.find_cycle (graph orders) with
  | None -> []
  | Some cycle ->
      let on_cycle o = List.exists (Obj_id.equal o) cycle in
      let culprits =
        List.filter_map
          (fun (name, order) ->
            if List.length (List.filter on_cycle order) >= 2 then Some name
            else None)
          orders
      in
      [
        Diagnostic.v ~code:"DL001" ~severity:Diagnostic.Warning
          ~obj:(String.concat " -> " (List.map Obj_id.to_string cycle))
          ~hint:
            "acquire these objects in one global order (or rely on runtime \
             deadlock detection and expect aborts under contention)"
          (Fmt.str
             "lock-order cycle: transactions %s acquire conflicting objects \
              in inconsistent orders"
             (String.concat ", " culprits));
      ]
