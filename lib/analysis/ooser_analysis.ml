(* Umbrella module for the static analysis library. *)

module Diagnostic = Diagnostic
module Summary = Summary
module Spec_lint = Spec_lint
module Callgraph = Callgraph
module Lock_order = Lock_order
module Lint = Lint
module Effects = Effects
module Inherit = Inherit
module Atlas = Atlas
module Semantics = Semantics
module Infer = Infer
