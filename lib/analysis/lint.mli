(** The lint driver: run every analysis family over one target.

    A target bundles what the analyzer needs and nothing more — the
    per-object specifications (with their registered method tables as
    probing fallback), the commutativity registry, and the static
    transaction summaries.  No engine, no storage: lint runs before any
    execution, which is the point — a wrong spec is caught in CI, not
    under traffic. *)

open Ooser_core

type target = {
  name : string;  (** registry name, for the report header *)
  objects : Spec_lint.object_info list;
  registry : Commutativity.registry;
  summaries : Summary.t list;
}

val target :
  name:string ->
  ?objects:Spec_lint.object_info list ->
  ?summaries:Summary.t list ->
  Commutativity.registry ->
  target

val run : target -> Diagnostic.t list
(** All three analysis families, sorted errors-first. *)

val report : Format.formatter -> target -> Diagnostic.t list -> unit
(** Human-readable report: header, one line per diagnostic, the static
    conflict graph, and a severity summary. *)

val exit_code : ?strict:bool -> Diagnostic.t list -> int
(** [Diagnostic.exit_code]: non-zero iff an error is present (or, under
    [~strict:true], a warning) — the one mapping shared by the [lint]
    and [analyze] subcommands. *)
