(** Commutativity-spec inference: derive method x method (x argument
    class) matrices from executable ADT semantics and diff them against
    the registered hand-written specs (DESIGN §16).

    For every object group of a {!Lint.target} (objects sharing a spec)
    that has an executable {!Semantics.model}, the analyzer evaluates
    each method-pair cell, split by argument class, against the
    ground-truth oracle {!Semantics.commute_at}:

    - {b commuting} verdicts require the oracle to agree at every
      enumerated small-scope state {e and} a randomized-state pass —
      inference never declares a falsely commutative cell;
    - {b conflicting} verdicts carry a minimal witness (the first
      refuting state in the small-to-large enumeration, with the
      argument vectors and the failing check);
    - cells the models cannot execute (methods outside the model
      vocabulary, specs without a model) stay {b undecided}.

    The diff against the registered spec feeds the shared
    {!Diagnostic} pipeline:

    - [INFER001] (error): the hand spec claims a pair commutes that
      execution refutes — unsound, the engine would certify a
      non-serializable interleaving.  {!witness_history} turns the
      witness into a replayable history that
      [Ooser_core.Serializability.check] rejects.
    - [INFER002] (warning): the hand spec conflicts a cell every probed
      execution commutes — sound but conservative; the message counts
      the workload summary pairs that lose concurrency.
    - [INFER003] (info): undecidable cells, so silence is never mistaken
      for a verdict.

    Cells that are argument-independent (uniform across every argument
    class), oracle-decided and hand-agreeing compile into a
    {!Ooser_core.Commutativity.table} ready for
    [Engine.preload_atlas]. *)

open Ooser_core

(** Argument-class relation of a probed pair of argument vectors. *)
type arg_rel =
  | Same_args  (** identical vectors (including both empty) *)
  | Same_key  (** equal first argument, different rest *)
  | Distinct  (** different first arguments *)
  | Mixed  (** exactly one vector is empty *)
  | Any  (** no concrete vectors — undecided cells *)

val rel_of : Value.t list -> Value.t list -> arg_rel
(** Classify a concrete argument-vector pair ([Any] is never
    returned for concrete vectors). *)

type evidence =
  | Structural of string
      (** footprint shortcut (read/read or key-disjoint), still
          confirmed by the oracle *)
  | Tested of { states : int; arg_pairs : int }

type witness = {
  w_state : Value.t;  (** minimal refuting state *)
  w_args : Value.t list;
  w_args' : Value.t list;
  w_reason : string;
}

type verdict = Commutes of evidence | Conflicts of witness | Undecided of string

type cell = {
  meth : string;
  meth' : string;
  rel : arg_rel;
  verdict : verdict;
}

type group = {
  spec_name : string;
  members : string list;  (** object names sharing the spec *)
  audited : bool;  (** an executable model was found *)
  cells : cell list;
}

type t = {
  target_name : string;
  groups : group list;
  diagnostics : Diagnostic.t list;  (** INFER001/002/003, errors first *)
  table : Commutativity.table;
      (** argument-independent, hand-agreeing cells of stable specs *)
  decided : int;  (** cells with a Commutes/Conflicts verdict *)
  total : int;
  unsound_cells : (string * cell) list;  (** INFER001 backing cells *)
  conservative_cells : (string * cell) list;  (** INFER002 backing cells *)
}

val run : ?seed:int -> ?random_states:int -> Lint.target -> t
(** Audit one lint target.  [random_states] (default 100) is the size of
    the randomized-state soundness pass per object group; [seed]
    (default 0) drives it deterministically. *)

val unsound : t -> (string * cell) list
(** [(spec_name, cell)] for every INFER001 — hand-commutative cells the
    oracle refuted (the [unsound_cells] field). *)

val conservative : t -> (string * cell) list
(** [(spec_name, cell)] for every INFER002 — provably commuting cells
    the hand spec conflicts (the [conservative_cells] field). *)

val witness_history :
  obj:string ->
  meth:string ->
  args:Value.t list ->
  meth':string ->
  args':Value.t list ->
  History.t
(** A minimal replayable history exercising the witness pair: T1 calls
    [meth] twice, T2 calls [meth'] once in between, under a registry
    where exactly [(meth, meth')] conflicts.  If the conflict is real
    the interleaving is cyclic and [Serializability.check] rejects it —
    the executable form of an INFER001 finding. *)

val pp : Format.formatter -> t -> unit

val to_json : t -> string
(** Stable JSON document: groups with per-cell verdicts and witnesses,
    table stats, coverage, and the diagnostics. *)
