(** Static call-graph analysis over transaction summaries.

    Two findings come out of the call trees alone:

    - {b Def. 5 extension sites}: a call and one of its (indirect)
      callees touch the same object.  At runtime the system must break
      the re-entrant access with a virtual object (Example 3 / Fig. 6:
      [a1] on [O1] indirectly calls [a112] on [O1], so [a112] moves to
      the virtual [O1']); statically we report every such site so spec
      authors know which objects need virtual duplicates — and which
      dependencies will be inherited to the original.

    - {b static conflict graph}: transaction types joined by an edge
      whenever some object both touch has a method pair that the
      commutativity registry does not commute.  Summaries of different
      transactions are probed as actions of different processes, with
      the summary's declared arguments, so keyed and escrow specs answer
      precisely when arguments are given and conservatively when not. *)

open Ooser_core

type site = {
  txn : string;
  obj : Obj_id.t;  (** the re-entered object *)
  outer_meth : string;
  inner_meth : string;
}

val extension_sites : Summary.t -> site list
(** Every (ancestor, descendant) call pair on one object, preorder. *)

type edge = {
  from_txn : string;
  to_txn : string;
  obj : Obj_id.t;
  meths : string * string;  (** one witnessing conflicting method pair *)
}

val conflict_edges :
  Commutativity.registry -> Summary.t list -> edge list
(** One edge per (transaction pair, object): the first witnessing
    non-commuting method pair.  Transaction pairs are unordered;
    [from_txn] is the earlier summary. *)

val check : Summary.t list -> Diagnostic.t list
(** CALL001 (info) for every extension site. *)

val pp_edge : Format.formatter -> edge -> unit
