(* Static call-graph analysis: Def. 5 extension sites and the static
   conflict graph between transaction types. *)

open Ooser_core

type site = {
  txn : string;
  obj : Obj_id.t;
  outer_meth : string;
  inner_meth : string;
}

let extension_sites (s : Summary.t) =
  let sites = ref [] in
  let rec descend (c : Summary.call) =
    let o = Obj_id.original c.Summary.obj in
    let rec find_reentrant (d : Summary.call) =
      if Obj_id.equal (Obj_id.original d.Summary.obj) o then
        sites :=
          {
            txn = s.Summary.name;
            obj = o;
            outer_meth = c.Summary.meth;
            inner_meth = d.Summary.meth;
          }
          :: !sites;
      List.iter find_reentrant d.Summary.children
    in
    List.iter find_reentrant c.Summary.children;
    List.iter descend c.Summary.children
  in
  List.iter descend s.Summary.body;
  (* a transaction repeating the same operation produces the same site
     many times over; one report per distinct site is enough *)
  List.sort_uniq compare (List.rev !sites)

type edge = {
  from_txn : string;
  to_txn : string;
  obj : Obj_id.t;
  meths : string * string;
}

(* Probe action for one summary call: the summary's declared arguments,
   a process derived from the summary index so distinct transactions are
   distinct processes. *)
let probe ~top (c : Summary.call) =
  Action.v
    ~id:(Action_id.v ~top ~path:[ 1 ])
    ~obj:(Obj_id.original c.Summary.obj)
    ~meth:c.Summary.meth ~args:c.Summary.args
    ~process:(Process_id.main top) ()

let conflict_edges reg summaries =
  let indexed = List.mapi (fun i s -> (i + 1, s)) summaries in
  let edges = ref [] in
  List.iter
    (fun (i, s) ->
      List.iter
        (fun (j, s') ->
          if i < j then
            List.iter
              (fun o ->
                if
                  List.exists (Obj_id.equal o) (Summary.objects s')
                  && not
                       (List.exists
                          (fun e ->
                            e.from_txn = s.Summary.name
                            && e.to_txn = s'.Summary.name
                            && Obj_id.equal e.obj o)
                          !edges)
                then
                  let witness =
                    List.find_map
                      (fun c ->
                        List.find_map
                          (fun c' ->
                            if
                              Commutativity.conflicts reg (probe ~top:i c)
                                (probe ~top:j c')
                            then Some (c.Summary.meth, c'.Summary.meth)
                            else None)
                          (Summary.calls_on s' o))
                      (Summary.calls_on s o)
                  in
                  match witness with
                  | Some meths ->
                      edges :=
                        {
                          from_txn = s.Summary.name;
                          to_txn = s'.Summary.name;
                          obj = o;
                          meths;
                        }
                        :: !edges
                  | None -> ())
              (Summary.objects s))
        indexed)
    indexed;
  List.rev !edges

let check summaries =
  List.concat_map
    (fun s ->
      List.map
        (fun (site : site) ->
          Diagnostic.v ~code:"CALL001" ~severity:Diagnostic.Info
            ~obj:(Obj_id.to_string site.obj)
            ~meth:(site.outer_meth ^ "->" ^ site.inner_meth)
            ~txn:site.txn
            ~hint:
              (Fmt.str
                 "the runtime extension will move the inner %s onto virtual \
                  object %s' and inherit its dependencies (Def. 5)"
                 site.inner_meth
                 (Obj_id.to_string site.obj))
            (Fmt.str
               "re-entrant access: %s on %s (indirectly) calls %s on the \
                same object — a virtual object is required"
               site.outer_meth
               (Obj_id.to_string site.obj)
               site.inner_meth))
        (extension_sites s))
    summaries

let pp_edge ppf e =
  Fmt.pf ppf "%s -- %s on %a (%s/%s)" e.from_txn e.to_txn Obj_id.pp e.obj
    (fst e.meths) (snd e.meths)
