(** Spec soundness checks (Def. 9).

    Commutativity of actions is a symmetric relation — "the effect of each
    is independent of their execution order" cannot hold in one order
    only — so a specification answering differently for [(a, b)] and
    [(b, a)] is wrong, not merely conservative: the dependency relations
    built from it (Defs. 10, 11) would depend on probe order and the
    runtime protocols could admit non-oo-serializable histories.

    The analyzer probes each object's spec over its method vocabulary
    with synthesized actions of two different processes (the Def. 9
    same-process rule is deliberately bypassed via
    {!Ooser_core.Commutativity.test}).  Probes carry no arguments, so
    parameter-sensitive specs (escrow, keyed) answer for the
    no-information case — exactly what they fall back to for methods the
    analyzer knows nothing about. *)

open Ooser_core

type object_info = {
  obj : string;  (** object name *)
  spec : Commutativity.spec;
  methods : string list;  (** registered method table, probing fallback *)
  compensated : string list option;
      (** methods with a registered compensation policy; [None] when the
          method table is unknown — the COMP001 rule then stays silent
          for this object *)
}

val probe_vocab : object_info -> string list
(** Declared spec vocabulary united with the registered methods. *)

val asymmetric_pairs :
  ?methods:string list -> Commutativity.spec -> (string * string) list
(** Method pairs [(m, m')] with [test s (m, m') <> test s (m', m)],
    probed over the spec's vocabulary united with [methods].  Empty for
    every sound spec — the property guard over shipped specs. *)

val self_conflicting_reads :
  ?methods:string list -> Commutativity.spec -> string list
(** Read-like methods (read, search, lookup, balance, …) that do not
    commute with themselves: two concurrent invocations would serialize
    even though observers commute — almost always a spec oversight. *)

val check_spec : object_info -> Diagnostic.t list
(** SPEC001 (asymmetry, error) and SPEC002 (self-conflicting read,
    warning) for one object. *)

val check_usage :
  Commutativity.registry -> Summary.t list -> Diagnostic.t list
(** SPEC003: a summary invokes a method outside the declared vocabulary
    of the object's spec (warning — the call silently falls into the
    constructor's conservative default).  SPEC004: a summary touches an
    object the registry does not know (warning — the lookup resolves to
    the registry default). *)
