(* Diagnostics emitted by the static analyzer: stable code + severity +
   location + one-line fix hint.  See the .mli for the code table. *)

type severity = Error | Warning | Info

type location = {
  obj : string option;
  meth : string option;
  txn : string option;
}

type t = {
  code : string;
  severity : severity;
  loc : location;
  message : string;
  hint : string;
}

let v ~code ~severity ?obj ?meth ?txn ~hint message =
  { code; severity; loc = { obj; meth; txn }; message; hint }

let severity_label = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let compare a b =
  let c = Int.compare (severity_rank a.severity) (severity_rank b.severity) in
  if c <> 0 then c
  else
    let c = String.compare a.code b.code in
    if c <> 0 then c
    else
      Stdlib.compare
        (a.loc.obj, a.loc.meth, a.loc.txn, a.message)
        (b.loc.obj, b.loc.meth, b.loc.txn, b.message)

let errors ds = List.filter (fun d -> d.severity = Error) ds
let warnings ds = List.filter (fun d -> d.severity = Warning) ds
let exit_code ds = if errors ds = [] then 0 else 1

let pp_location ppf loc =
  let parts =
    List.filter_map Fun.id
      [
        Option.map (fun t -> "txn " ^ t) loc.txn;
        (match (loc.obj, loc.meth) with
        | Some o, Some m -> Some (o ^ "." ^ m)
        | Some o, None -> Some o
        | None, Some m -> Some m
        | None, None -> None);
      ]
  in
  if parts <> [] then Fmt.pf ppf " %s" (String.concat " " parts)

let pp ppf d =
  Fmt.pf ppf "%s %s%a: %s (hint: %s)"
    (severity_label d.severity)
    d.code pp_location d.loc d.message d.hint

let pp_summary ppf ds =
  let count sev = List.length (List.filter (fun d -> d.severity = sev) ds) in
  let plural n what = Fmt.str "%d %s%s" n what (if n = 1 then "" else "s") in
  Fmt.pf ppf "%s, %s, %s"
    (plural (count Error) "error")
    (plural (count Warning) "warning")
    (plural (count Info) "info")
