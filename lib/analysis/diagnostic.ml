(* Diagnostics emitted by the static analyzer: stable code + severity +
   location + one-line fix hint.  See the .mli for the code table. *)

type severity = Error | Warning | Info

type location = {
  obj : string option;
  meth : string option;
  txn : string option;
}

type t = {
  code : string;
  severity : severity;
  loc : location;
  message : string;
  hint : string;
}

let v ~code ~severity ?obj ?meth ?txn ~hint message =
  { code; severity; loc = { obj; meth; txn }; message; hint }

let severity_label = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let compare a b =
  let c = Int.compare (severity_rank a.severity) (severity_rank b.severity) in
  if c <> 0 then c
  else
    let c = String.compare a.code b.code in
    if c <> 0 then c
    else
      Stdlib.compare
        (a.loc.obj, a.loc.meth, a.loc.txn, a.message)
        (b.loc.obj, b.loc.meth, b.loc.txn, b.message)

let errors ds = List.filter (fun d -> d.severity = Error) ds
let warnings ds = List.filter (fun d -> d.severity = Warning) ds

(* The one exit-code mapping, shared by `oosdb lint` and `oosdb analyze`:
   errors exit 1, warnings exit 0 — unless [strict] promotes them. *)
let exit_code ?(strict = false) ds =
  if errors ds <> [] then 1
  else if strict && warnings ds <> [] then 1
  else 0

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json d =
  let field name v rest =
    match v with
    | None -> rest
    | Some v -> Printf.sprintf "%S: \"%s\"" name (json_escape v) :: rest
  in
  let fields =
    Printf.sprintf "\"code\": \"%s\"" (json_escape d.code)
    :: Printf.sprintf "\"severity\": \"%s\"" (severity_label d.severity)
    :: field "obj" d.loc.obj
         (field "meth" d.loc.meth
            (field "txn" d.loc.txn
               [
                 Printf.sprintf "\"message\": \"%s\"" (json_escape d.message);
                 Printf.sprintf "\"hint\": \"%s\"" (json_escape d.hint);
               ]))
  in
  "{" ^ String.concat ", " fields ^ "}"

let pp_location ppf loc =
  let parts =
    List.filter_map Fun.id
      [
        Option.map (fun t -> "txn " ^ t) loc.txn;
        (match (loc.obj, loc.meth) with
        | Some o, Some m -> Some (o ^ "." ^ m)
        | Some o, None -> Some o
        | None, Some m -> Some m
        | None, None -> None);
      ]
  in
  if parts <> [] then Fmt.pf ppf " %s" (String.concat " " parts)

let pp ppf d =
  Fmt.pf ppf "%s %s%a: %s (hint: %s)"
    (severity_label d.severity)
    d.code pp_location d.loc d.message d.hint

let pp_summary ppf ds =
  let count sev = List.length (List.filter (fun d -> d.severity = sev) ds) in
  let plural n what = Fmt.str "%d %s%s" n what (if n = 1 then "" else "s") in
  Fmt.pf ppf "%s, %s, %s"
    (plural (count Error) "error")
    (plural (count Warning) "warning")
    (plural (count Info) "info")
