(** Diagnostics emitted by the static analyzer.

    Every finding carries a stable code (asserted by tests and stable
    across releases so CI configurations can match on it), a severity, a
    location in the specification/program space (object, method,
    transaction — there are no source positions: the analyzed artifacts
    are registries and call summaries), and a one-line fix hint.

    Codes:
    - [SPEC001] (error): asymmetric commutativity answer — Def. 9 demands
      a symmetric relation.
    - [SPEC002] (warning): a read-like method conflicts with itself.
    - [SPEC003] (warning): a method used by a workload is absent from the
      spec's declared vocabulary and falls into its conservative default.
    - [SPEC004] (warning): a registry lookup resolves to the default spec.
    - [CALL001] (info): Def. 5 extension site — a transaction and one of
      its (indirect) callees touch the same object; the system must
      introduce a virtual object.
    - [DL001] (warning): a cycle in the static object-acquisition order —
      deadlock potential under the locking protocols.
    - [HOT001] (warning): a conflict that climbs through one or more
      non-commuting caller levels all the way into a top-level
      transaction dependency — dependency inheritance (Def. 11) never
      stops, so every such pair of transactions serializes on the
      object: a contention hotspot.
    - [COMP001] (warning): a method invoked as a nested subtransaction
      (depth >= 2) without a registered compensation — under open
      nesting its lock is released when the caller completes, so a
      later abort of the top cannot soundly undo it. *)

type severity = Error | Warning | Info

type location = {
  obj : string option;  (** object name, when the finding is object-scoped *)
  meth : string option;
  txn : string option;  (** transaction (summary) name *)
}

type t = {
  code : string;
  severity : severity;
  loc : location;
  message : string;
  hint : string;  (** one-line fix suggestion *)
}

val v :
  code:string ->
  severity:severity ->
  ?obj:string ->
  ?meth:string ->
  ?txn:string ->
  hint:string ->
  string ->
  t

val severity_label : severity -> string
val compare : t -> t -> int
(** Errors first, then warnings, then infos; by code and location within
    a severity — a deterministic report order. *)

val errors : t list -> t list
val warnings : t list -> t list

val exit_code : ?strict:bool -> t list -> int
(** The single exit-code mapping shared by [oosdb lint] and
    [oosdb analyze]: 1 when any error is present, 0 otherwise; [strict]
    (default [false]) promotes warnings to the failing side.  Infos
    never affect the exit code. *)

val json_escape : string -> string
(** JSON string-body escaping, shared by every hand-rolled serializer in
    the analyzer. *)

val to_json : t -> string
(** One-line JSON object
    [{"code": ..., "severity": ..., "obj": ..., "meth": ..., "txn": ...,
    "message": ..., "hint": ...}] with absent location fields omitted —
    the machine-readable form shared by [oosdb lint --format json] and
    [oosdb analyze --format json]. *)

val pp : Format.formatter -> t -> unit
(** [error SPEC001 Obj.meth: message (hint: ...)] on one line. *)

val pp_summary : Format.formatter -> t list -> unit
(** Counts by severity, e.g. [2 errors, 1 warning, 3 infos]. *)
