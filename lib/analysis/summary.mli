(** Static transaction summaries: the object × method call trees a
    transaction program can reach through [Runtime.call], without running
    the engine.

    The DSL mirrors the shape of the [lib/workload] transaction bodies
    (and of [Call_tree.Build]): a summary is a named tree of method
    invocations.  Arguments are optional; when present they let
    parameter-sensitive specifications (escrow, keyed) answer precisely,
    and when absent the analyzer probes conservatively with no
    arguments.  A call on an object whose subtree calls the same object
    again is a Def. 5 extension site (see {!Callgraph}). *)

open Ooser_core

type call = {
  obj : Obj_id.t;
  meth : string;
  args : Value.t list;
  children : call list;  (** calls issued by this method's body *)
}

type t = { name : string; body : call list }

val call : ?args:Value.t list -> Obj_id.t -> string -> call list -> call
val txn : string -> call list -> t

val iter : (call -> unit) -> t -> unit
(** Preorder over every call in the tree. *)

val fold : ('a -> call -> 'a) -> 'a -> t -> 'a
(** Preorder fold. *)

val objects : t -> Obj_id.t list
(** Distinct (de-virtualised) objects touched, in first-touch order —
    the static analogue of the lock-acquisition order. *)

val methods_by_object : t -> string list Obj_id.Map.t
(** For each touched object, the distinct method names invoked on it. *)

val calls_on : t -> Obj_id.t -> call list
(** All calls on one object, preorder. *)

val pp : Format.formatter -> t -> unit
