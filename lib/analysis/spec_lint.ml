(* Spec soundness checks (Def. 9): probe each specification over its
   method vocabulary with synthesized two-process actions and flag
   asymmetric answers, self-conflicting observers, and vocabulary gaps. *)

open Ooser_core

type object_info = {
  obj : string;
  spec : Commutativity.spec;
  methods : string list;
  compensated : string list option;
      (* methods with a registered compensation policy; [None] when the
         target was built without method-table information (the COMP001
         rule then stays silent for the object) *)
}

(* Synthesized probe: a fixed action of transaction [top] invoking
   [meth] with no arguments.  Distinct tops give distinct processes, so
   Commutativity.test sees a genuine cross-transaction pair. *)
let probe ~top obj meth =
  Action.v
    ~id:(Action_id.v ~top ~path:[ 1 ])
    ~obj ~meth ~process:(Process_id.main top) ()

let union_vocab vocab methods =
  List.sort_uniq String.compare (vocab @ methods)

let probe_vocab info =
  union_vocab
    (Option.value ~default:[] (Commutativity.vocabulary info.spec))
    info.methods

let probe_pairs ?(methods = []) spec f =
  let vocab =
    union_vocab (Option.value ~default:[] (Commutativity.vocabulary spec)) methods
  in
  let o = Obj_id.v "probe" in
  List.concat_map
    (fun m ->
      List.filter_map
        (fun m' -> f m m' (probe ~top:1 o m) (probe ~top:2 o m'))
        vocab)
    vocab

let asymmetric_pairs ?methods spec =
  probe_pairs ?methods spec (fun m m' a b ->
      if
        String.compare m m' <= 0
        && Commutativity.test spec a b <> Commutativity.test spec b a
      then Some (m, m')
      else None)

(* Methods whose name announces an observer: two concurrent invocations
   leave any state unchanged in either order, so a self-conflict is
   almost always an oversight (it serializes concurrent readers). *)
let read_like =
  [
    "read"; "search"; "lookup"; "balance"; "length"; "list"; "contains";
    "report"; "readSeq"; "range"; "get"; "find"; "value"; "peek";
  ]

let self_conflicting_reads ?methods spec =
  List.sort_uniq String.compare
    (probe_pairs ?methods spec (fun m m' a b ->
         if m = m' && List.mem m read_like && not (Commutativity.test spec a b)
         then Some m
         else None))

let check_spec info =
  let spec_name = Commutativity.name info.spec in
  let asym =
    List.map
      (fun (m, m') ->
        Diagnostic.v ~code:"SPEC001" ~severity:Diagnostic.Error ~obj:info.obj
          ~meth:(m ^ "/" ^ m')
          ~hint:
            (Fmt.str
               "make spec %S answer identically for (%s, %s) and (%s, %s)"
               spec_name m m' m' m)
          (Fmt.str
             "asymmetric commutativity: %s vs %s commute=%b but %s vs %s \
              commute=%b (Def. 9 requires symmetry)"
             m m'
             (Commutativity.test info.spec
                (probe ~top:1 (Obj_id.v info.obj) m)
                (probe ~top:2 (Obj_id.v info.obj) m'))
             m' m
             (Commutativity.test info.spec
                (probe ~top:1 (Obj_id.v info.obj) m')
                (probe ~top:2 (Obj_id.v info.obj) m))))
      (asymmetric_pairs ~methods:info.methods info.spec)
  in
  let selfc =
    List.map
      (fun m ->
        Diagnostic.v ~code:"SPEC002" ~severity:Diagnostic.Warning ~obj:info.obj
          ~meth:m
          ~hint:
            (Fmt.str "let %s commute with itself in spec %S if it is an \
                      observer" m spec_name)
          (Fmt.str
             "read-like method %s conflicts with itself: concurrent %s \
              invocations serialize" m m))
      (self_conflicting_reads ~methods:info.methods info.spec)
  in
  asym @ selfc

let check_usage reg summaries =
  let diags = ref [] in
  let seen_unknown = ref [] and seen_gap = ref [] in
  List.iter
    (fun s ->
      Obj_id.Map.iter
        (fun o meths ->
          let oname = Obj_id.to_string o in
          if not (Commutativity.known reg o) then begin
            if not (List.mem oname !seen_unknown) then begin
              seen_unknown := oname :: !seen_unknown;
              diags :=
                Diagnostic.v ~code:"SPEC004" ~severity:Diagnostic.Warning
                  ~obj:oname ~txn:s.Summary.name
                  ~hint:
                    "register the object (or a name->spec entry) so lookups \
                     stop resolving to the registry default"
                  "object is not in the commutativity registry: lookups \
                   resolve to the default spec"
                :: !diags
            end
          end
          else
            let spec = Commutativity.spec_for reg o in
            match Commutativity.vocabulary spec with
            | None -> ()  (* opaque predicate: no declared vocabulary *)
            | Some vocab ->
                List.iter
                  (fun m ->
                    if (not (List.mem m vocab)) && not (List.mem (oname, m) !seen_gap)
                    then begin
                      seen_gap := (oname, m) :: !seen_gap;
                      diags :=
                        Diagnostic.v ~code:"SPEC003" ~severity:Diagnostic.Warning
                          ~obj:oname ~meth:m ~txn:s.Summary.name
                          ~hint:
                            (Fmt.str
                               "add %s to the vocabulary of spec %S (it \
                                currently gets the conservative all-conflict \
                                default)" m (Commutativity.name spec))
                          "method used by workload is absent from the spec \
                           vocabulary"
                        :: !diags
                    end)
                  meths)
        (Summary.methods_by_object s))
    summaries;
  List.rev !diags
