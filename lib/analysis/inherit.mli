(** Static dependency-inheritance analysis over one pair of transaction
    summaries (Defs. 10-13 read as structure).

    The pair is instantiated as two call trees and put through the real
    Def. 5 extension ({!Ooser_core.Extension.extend}), so virtual
    objects and caller edges come from the same machinery the dynamic
    checker uses.  A {!channel} is a conflicting cross-transaction leaf
    pair; following Defs. 10-11 it deposits dependency edges while
    climbing the call trees, and the climb stops exactly where the paper
    says inheritance stops: at a commuting caller pair (Def. 11), at
    callers on different objects, or at the top-level transactions.

    Soundness: one channel deposits at most one cross-transaction edge
    per object (Def. 5 guarantees a call path never revisits an object
    after extension), and every cross-transaction edge of the per-object
    dependency relations originates in some channel.  A per-object cycle
    needs two cross edges at one object, so a pair whose channels share
    no deposit object is oo-serializable under every interleaving;
    pairs with {!field-shared} objects are candidates for the exhaustive
    replay in {!Atlas}. *)

open Ooser_core

val default_sys : Obj_id.t

val with_system : sys:Obj_id.t -> Commutativity.registry -> Commutativity.registry
(** The registry as the engine sees it: [sys] commutes with everything
    (Def. 4 — the system object's actions carry no semantics). *)

val instantiate : ?sys:Obj_id.t -> top:int -> Summary.t -> Call_tree.t
(** Build transaction [T_top] from a summary, children sequential. *)

type stop =
  | Reached_top
      (** the conflict escalated into a top-level transaction dependency *)
  | Callers_commute
      (** Def. 11: a commuting caller pair absorbs the conflict *)
  | Different_objects
      (** callers on different objects: nothing further to inherit *)

type channel = {
  source : Obj_id.t;  (** object of the conflicting leaf pair *)
  leaves : Action_id.t * Action_id.t;
  meths : string * string;
  trail : Obj_id.t list;
      (** objects holding an inherited action dependency, leaf first *)
  deposits : Obj_id.t list;  (** every object receiving any edge *)
  stop : stop;
}

type t = {
  left : Summary.t;
  right : Summary.t;
  tops : Call_tree.t * Call_tree.t;  (** instantiated as T1 and T2 *)
  registry : Commutativity.registry;  (** augmented: sys all-commutes *)
  ext : Extension.t;  (** extension of the serial pair history *)
  channels : channel list;
  shared : Obj_id.t list;
      (** objects receiving deposits from two or more distinct channels *)
  unstable : Obj_id.t list;
      (** touched objects whose specs read state: statically undecidable *)
}

val analyse :
  ?sys:Obj_id.t -> Commutativity.registry -> Summary.t -> Summary.t -> t

val reaches_top : channel -> bool

val pp_channel : Format.formatter -> channel -> unit
