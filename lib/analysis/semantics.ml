(* Executable small-scope semantics for the shipped ADTs: the ground
   truth the spec-inference analyzer (infer.ml, DESIGN §16) compares
   hand-written commutativity matrices against.

   Each model runs REAL ADT code from lib/adts — the state encoding and
   the undo closures mirror lib/oodb/adt_objects.ml, so a verdict here is
   about the code the engine actually executes, not a re-implementation
   of its specification. *)

open Ooser_core
module A = Ooser_adts

type outcome = Ret of Value.t | Err of string

type call = { result : outcome; undo : unit -> outcome }

type instance = {
  hand : Commutativity.spec;
  exec : string -> Value.t list -> call;
  observe : unit -> Value.t;
}

type footprint = Reads_all | Writes_all | Reads_key | Writes_key

type model = {
  model_name : string;
  spec_name : string;
  vocab : string list;
  footprints : (string * footprint) list;
  arg_vectors : (string * Value.t list list) list;
  states : Value.t list;
  gen_state : Value.t QCheck.Gen.t;
  instantiate : Value.t -> instance;
}

let guard f =
  try Ret (f ()) with
  | A.Escrow_counter.Bounds_violation msg -> Err msg
  | Invalid_argument msg -> Err msg
  | Failure msg -> Err msg
  | Not_found -> Err "not found"

(* Undoing a call that never applied (errored) is a successful no-op;
   pure observers undo the same way. *)
let noop_undo () = Ret Value.unit

let pure result = { result; undo = noop_undo }

let unknown model_name m =
  { result = Err (Printf.sprintf "%s: no model for method %S" model_name m);
    undo = noop_undo;
  }

(* ---------- escrow counter ---------- *)

let enc_counter low high v =
  Value.list [ Value.int low; Value.int high; Value.int v ]

let dec_counter s =
  match s with
  | Value.List [ Value.Int low; Value.Int high; Value.Int v ] -> (low, high, v)
  | _ -> invalid_arg "Semantics.counter: malformed state"

let counter =
  let instantiate s =
    let low, high, v = dec_counter s in
    let t = A.Escrow_counter.create ~low ~high v in
    let update apply inverse args =
      match args with
      | n :: _ ->
          let n = match Value.to_int n with Some n -> n | None -> -1 in
          let result = guard (fun () -> apply t n; Value.unit) in
          let undo () =
            match result with
            | Err _ -> Ret Value.unit
            | Ret _ -> guard (fun () -> inverse t n; Value.unit)
          in
          { result; undo }
      | [] -> { result = Err "escrow: missing amount"; undo = noop_undo }
    in
    let exec m args =
      match m with
      | "incr" | "deposit" ->
          update A.Escrow_counter.incr A.Escrow_counter.decr args
      | "decr" | "withdraw" ->
          update A.Escrow_counter.decr A.Escrow_counter.incr args
      | "read" | "balance" ->
          pure (Ret (Value.int (A.Escrow_counter.value t)))
      | m -> unknown "escrow-counter" m
    in
    let observe () = Value.int (A.Escrow_counter.value t) in
    { hand = A.Escrow_counter.spec t; exec; observe }
  in
  {
    model_name = "escrow-counter";
    spec_name = "escrow-counter";
    vocab = [ "incr"; "decr"; "read"; "deposit"; "withdraw"; "balance" ];
    footprints =
      [
        ("incr", Writes_all);
        ("decr", Writes_all);
        ("deposit", Writes_all);
        ("withdraw", Writes_all);
        ("read", Reads_all);
        ("balance", Reads_all);
      ];
    arg_vectors =
      (let amounts = [ [ Value.int 1 ]; [ Value.int 2 ]; [ Value.int 3 ] ] in
       [
         ("incr", amounts);
         ("decr", amounts);
         ("deposit", amounts);
         ("withdraw", amounts);
         ("read", [ [] ]);
         ("balance", [ [] ]);
       ]);
    states =
      [
        enc_counter 0 4 0;
        enc_counter 0 4 1;
        enc_counter 0 4 2;
        enc_counter 0 4 3;
        enc_counter 0 4 4;
        enc_counter 0 8 4;
        enc_counter 0 1000 500;
      ];
    gen_state =
      QCheck.Gen.(
        int_range 1 12 >>= fun high ->
        int_range 0 high >|= fun v -> enc_counter 0 high v);
    instantiate;
  }

(* ---------- counted kv set ---------- *)

let enc_set pairs =
  Value.list
    (List.sort Value.compare
       (List.filter_map
          (fun (e, n) ->
            if n > 0 then Some (Value.pair e (Value.int n)) else None)
          pairs))

let set_elems = [ Value.str "a"; Value.str "b"; Value.str "c" ]

let kv_set =
  let instantiate s =
    let t = A.Kv_set.create () in
    (match s with
    | Value.List pairs ->
        List.iter
          (fun p ->
            match p with
            | Value.Pair (e, Value.Int n) -> A.Kv_set.add_count t e n
            | _ -> invalid_arg "Semantics.kv_set: malformed state")
          pairs
    | _ -> invalid_arg "Semantics.kv_set: malformed state");
    let exec m args =
      match (m, args) with
      | "insert", v :: _ ->
          let result = guard (fun () -> A.Kv_set.insert t v; Value.unit) in
          let undo () =
            match result with
            | Err _ -> Ret Value.unit
            | Ret _ -> guard (fun () -> A.Kv_set.decr_count t v; Value.unit)
          in
          { result; undo }
      | "remove", v :: _ ->
          let dropped = ref 0 in
          let result =
            guard (fun () ->
                dropped := A.Kv_set.remove t v;
                Value.pair (Value.str "dropped") (Value.int !dropped))
          in
          let undo () =
            match result with
            | Err _ -> Ret Value.unit
            | Ret _ ->
                guard (fun () ->
                    if !dropped > 0 then A.Kv_set.add_count t v !dropped;
                    Value.unit)
          in
          { result; undo }
      | "contains", v :: _ -> pure (Ret (Value.bool (A.Kv_set.mem t v)))
      | "cardinal", _ -> pure (Ret (Value.int (A.Kv_set.cardinal t)))
      | ("insert" | "remove" | "contains"), [] ->
          { result = Err "kv-set: missing element"; undo = noop_undo }
      | m, _ -> unknown "kv-set" m
    in
    let observe () =
      enc_set
        (List.map (fun e -> (e, A.Kv_set.count t e)) (A.Kv_set.elements t))
    in
    { hand = A.Kv_set.spec; exec; observe }
  in
  let a = Value.str "a" and b = Value.str "b" in
  {
    model_name = "kv-set";
    spec_name = Commutativity.name A.Kv_set.spec;
    vocab = [ "insert"; "remove"; "contains"; "cardinal" ];
    footprints =
      [
        ("insert", Writes_key);
        ("remove", Writes_key);
        ("contains", Reads_key);
        ("cardinal", Reads_all);
      ];
    arg_vectors =
      [
        ("insert", [ [ a ]; [ b ] ]);
        ("remove", [ [ a ]; [ b ] ]);
        ("contains", [ [ a ]; [ b ] ]);
        ("cardinal", [ [] ]);
      ];
    states =
      [
        enc_set [];
        enc_set [ (a, 1) ];
        enc_set [ (a, 2) ];
        enc_set [ (a, 1); (b, 1) ];
        enc_set [ (a, 2); (b, 1) ];
      ];
    gen_state =
      QCheck.Gen.(
        flatten_l (List.map (fun e -> int_range 0 3 >|= fun n -> (e, n)) set_elems)
        >|= enc_set);
    instantiate;
  }

(* ---------- fifo queue ---------- *)

let enc_fifo items = Value.list items

let fifo_drain t =
  let rec go acc =
    match A.Fifo_queue.dequeue t with
    | Some v -> go (v :: acc)
    | None -> List.rev acc
  in
  go []

let fifo_refill t items = List.iter (A.Fifo_queue.enqueue t) items

(* Engine compensation of an enqueue: drop the LAST occurrence of the
   value (lib/oodb/adt_objects.ml, removeLastOf). *)
let fifo_remove_last_of t v =
  let items = fifo_drain t in
  let rec drop_first = function
    | [] -> None
    | x :: rest when Value.equal x v -> Some rest
    | x :: rest -> Option.map (fun r -> x :: r) (drop_first rest)
  in
  match drop_first (List.rev items) with
  | Some rest ->
      fifo_refill t (List.rev rest);
      Ret Value.unit
  | None ->
      fifo_refill t items;
      Err "fifo: removeLastOf found no matching element"

let fifo =
  let instantiate s =
    let t = A.Fifo_queue.create () in
    (match s with
    | Value.List items -> fifo_refill t items
    | _ -> invalid_arg "Semantics.fifo: malformed state");
    let exec m args =
      match (m, args) with
      | "enqueue", v :: _ ->
          A.Fifo_queue.enqueue t v;
          { result = Ret Value.unit; undo = (fun () -> fifo_remove_last_of t v) }
      | "enqueue", [] -> { result = Err "fifo: missing element"; undo = noop_undo }
      | "dequeue", _ -> (
          match A.Fifo_queue.dequeue t with
          | Some v ->
              {
                result = Ret (Value.pair (Value.str "some") v);
                undo =
                  (fun () ->
                    let items = fifo_drain t in
                    fifo_refill t (v :: items);
                    Ret Value.unit);
              }
          | None ->
              { result = Ret (Value.pair (Value.str "none") Value.unit);
                undo = noop_undo;
              })
      | "length", _ -> pure (Ret (Value.int (A.Fifo_queue.length t)))
      | m, _ -> unknown "fifo-queue" m
    in
    let observe () =
      let items = fifo_drain t in
      fifo_refill t items;
      Value.list items
    in
    { hand = A.Fifo_queue.spec t; exec; observe }
  in
  {
    model_name = "fifo-queue";
    spec_name = "fifo-queue";
    vocab = [ "enqueue"; "dequeue"; "length" ];
    footprints =
      [ ("enqueue", Writes_all); ("dequeue", Writes_all); ("length", Reads_all) ];
    arg_vectors =
      [
        ("enqueue", [ [ Value.int 7 ]; [ Value.int 8 ] ]);
        ("dequeue", [ [] ]);
        ("length", [ [] ]);
      ];
    states =
      [
        (* distinct elements matter: duplicate-only queues make two
           dequeues look commutative at that state *)
        enc_fifo [];
        enc_fifo [ Value.int 1 ];
        enc_fifo [ Value.int 1; Value.int 2 ];
        enc_fifo [ Value.int 1; Value.int 2; Value.int 3 ];
      ];
    gen_state =
      QCheck.Gen.(
        list_size (int_range 0 4) (int_range 1 3 >|= Value.int) >|= enc_fifo);
    instantiate;
  }

(* ---------- directory ---------- *)

let enc_dir bindings =
  Value.list
    (List.sort Value.compare
       (List.map (fun (k, v) -> Value.pair k v) bindings))

let directory =
  let instantiate s =
    let t = A.Directory.create () in
    (match s with
    | Value.List bindings ->
        List.iter
          (fun p ->
            match p with
            | Value.Pair (k, v) -> A.Directory.bind t k v
            | _ -> invalid_arg "Semantics.directory: malformed state")
          bindings
    | _ -> invalid_arg "Semantics.directory: malformed state");
    let exec m args =
      match (m, args) with
      | "bind", k :: v :: _ ->
          let old = A.Directory.lookup t k in
          A.Directory.bind t k v;
          {
            result = Ret Value.unit;
            undo =
              (fun () ->
                (match old with
                | Some w -> A.Directory.bind t k w
                | None -> A.Directory.unbind t k);
                Ret Value.unit);
          }
      | "unbind", k :: _ ->
          let old = A.Directory.lookup t k in
          A.Directory.unbind t k;
          {
            result = Ret Value.unit;
            undo =
              (fun () ->
                (match old with Some w -> A.Directory.bind t k w | None -> ());
                Ret Value.unit);
          }
      | "lookup", k :: _ ->
          pure
            (Ret
               (match A.Directory.lookup t k with
               | Some v -> Value.pair (Value.str "some") v
               | None -> Value.pair (Value.str "none") Value.unit))
      | "list", _ ->
          (* canonical: sorted names — insertion order is representation,
             not abstraction *)
          pure
            (Ret (Value.list (List.sort Value.compare (A.Directory.names t))))
      | ("bind" | "unbind" | "lookup"), _ ->
          { result = Err "directory: missing key"; undo = noop_undo }
      | m, _ -> unknown "directory" m
    in
    let observe () =
      enc_dir
        (List.filter_map
           (fun k -> Option.map (fun v -> (k, v)) (A.Directory.lookup t k))
           (A.Directory.names t))
    in
    { hand = A.Directory.spec; exec; observe }
  in
  let a = Value.str "a" and b = Value.str "b" in
  {
    model_name = "directory";
    spec_name = Commutativity.name A.Directory.spec;
    vocab = [ "bind"; "unbind"; "lookup"; "list" ];
    footprints =
      [
        ("bind", Writes_key);
        ("unbind", Writes_key);
        ("lookup", Reads_key);
        ("list", Reads_all);
      ];
    arg_vectors =
      [
        ("bind", [ [ a; Value.int 1 ]; [ a; Value.int 2 ]; [ b; Value.int 1 ] ]);
        ("unbind", [ [ a ]; [ b ] ]);
        ("lookup", [ [ a ]; [ b ] ]);
        ("list", [ [] ]);
      ];
    states =
      [
        enc_dir [];
        enc_dir [ (a, Value.int 1) ];
        enc_dir [ (a, Value.int 1); (b, Value.int 2) ];
        enc_dir [ (a, Value.int 2) ];
      ];
    gen_state =
      QCheck.Gen.(
        flatten_l
          (List.map
             (fun k ->
               int_range 0 3 >|= fun v ->
               if v = 0 then None else Some (k, Value.int v))
             set_elems)
        >|= fun bs -> enc_dir (List.filter_map Fun.id bs));
    instantiate;
  }

let all = [ counter; kv_set; fifo; directory ]

let for_spec spec =
  let n = Commutativity.name spec in
  List.find_opt (fun m -> String.equal m.spec_name n) all

let footprint m meth = List.assoc_opt meth m.footprints

let vectors m meth =
  match List.assoc_opt meth m.arg_vectors with
  | Some vs -> vs
  | None -> [ [] ]

(* ---------- the oracle ---------- *)

let outcome_equal o o' =
  match (o, o') with
  | Ret v, Ret v' -> Value.equal v v'
  | Err _, Err _ -> false (* conservative: errors never commute *)
  | _ -> false

let forward_at m s p q =
  let run (m1, a1) (m2, a2) =
    let i = m.instantiate s in
    let c1 = i.exec m1 a1 in
    let c2 = i.exec m2 a2 in
    (c1.result, c2.result, i.observe ())
  in
  let p_first, q_second, obs_pq = run p q in
  let q_first, p_second, obs_qp = run q p in
  outcome_equal p_first p_second
  && outcome_equal q_first q_second
  && Value.equal obs_pq obs_qp

(* Run [first] then [second], undo [first]; the state must be exactly
   what [second] alone produces.  (With [undo_second = true], undo the
   SECOND call instead and compare against [first] alone.) *)
let abort_scenario m s ~undo_second first second =
  let i = m.instantiate s in
  let c1 = i.exec (fst first) (snd first) in
  let c2 = i.exec (fst second) (snd second) in
  let victim, survivor = if undo_second then (c2, first) else (c1, second) in
  match (c1.result, c2.result) with
  | Ret _, Ret _ -> (
      match victim.undo () with
      | Err _ -> false
      | Ret _ -> (
          let j = m.instantiate s in
          let cs = j.exec (fst survivor) (snd survivor) in
          match cs.result with
          | Ret _ -> Value.equal (i.observe ()) (j.observe ())
          | Err _ -> false))
  | _ -> false

let commute_at m s p q =
  forward_at m s p q
  && abort_scenario m s ~undo_second:false p q
  && abort_scenario m s ~undo_second:true p q
  && abort_scenario m s ~undo_second:false q p
  && abort_scenario m s ~undo_second:true q p
