(* Static dependency-inheritance analysis (Defs. 10-13 read as structure).

   One *pair* of transaction summaries is instantiated as two call trees
   (tops 1 and 2) and put through the real Def. 5 extension, so virtual
   objects, duplicates and caller edges come from exactly the machinery
   the dynamic checker uses — the analysis cannot drift from the
   runtime's view of the program.

   A CHANNEL is a conflicting leaf pair (one action of each transaction
   on one object, after extension): the only place where Axiom 1 orders
   executions directly.  Following Defs. 10-11, a channel deposits
   dependency edges while it climbs the call trees:

   - the leaf pair itself is an action dependency at the leaf object;
   - while the current pair conflicts (Def. 10), the caller pair gains a
     transaction dependency, recorded as combined edges at both callers'
     objects (Def. 16);
   - when both callers sit on the SAME object, the transaction
     dependency is inherited as an action dependency there (Def. 11) and
     the climb continues;
   - the climb STOPS when the caller pair commutes (Def. 11's whole
     point: a commuting caller absorbs its children's conflicts), when
     the callers sit on different objects (a transaction dependency with
     nothing further to inherit), or when it reaches the top-level
     transactions (the roots on the system object).

   Soundness of the atlas rests on a counting argument over deposits:
   one channel deposits at most one cross-transaction edge per object
   (post-extension, a call path never revisits an object — that is what
   Def. 5 ensures), and every cross-transaction edge of the per-object
   dependency relations (Defs. 12-16) originates from some channel.  A
   per-object cycle needs at least two cross edges at one object, so a
   pair whose channels share no deposit object is oo-serializable under
   EVERY interleaving.  Shared deposit objects make the pair a
   candidate, resolved by exhaustive replay in [Atlas]. *)

open Ooser_core

let default_sys = Call_tree.Build.default_sys

(* The registry as the engine sees it: the system object S carries no
   semantics (Def. 4) and commutes with everything. *)
let with_system ~sys reg =
  Commutativity.registry
    ~known:(fun o -> Obj_id.equal o sys || Commutativity.known reg o)
    (fun o ->
      if Obj_id.equal o sys then Commutativity.all_commute
      else Commutativity.spec_for reg o)

let rec build_call (c : Summary.call) =
  Call_tree.Build.call ~args:c.Summary.args c.Summary.obj c.Summary.meth
    (List.map build_call c.Summary.children)

let instantiate ?(sys = default_sys) ~top (s : Summary.t) =
  Call_tree.Build.top ~sys ~name:s.Summary.name ~n:top
    (List.map build_call s.Summary.body)

type stop =
  | Reached_top
      (* the conflict escalated into a top-level transaction dependency *)
  | Callers_commute  (* Def. 11: inheritance stops at a commuting pair *)
  | Different_objects
      (* callers on different objects: a transaction dependency with no
         action dependency to inherit *)

type channel = {
  source : Obj_id.t;  (* object of the conflicting leaf pair *)
  leaves : Action_id.t * Action_id.t;
  meths : string * string;
  trail : Obj_id.t list;
      (* objects holding an inherited action dependency, leaf first *)
  deposits : Obj_id.t list;  (* every object receiving any edge *)
  stop : stop;
}

type t = {
  left : Summary.t;
  right : Summary.t;
  tops : Call_tree.t * Call_tree.t;
  registry : Commutativity.registry;  (* augmented: sys all-commutes *)
  ext : Extension.t;  (* of the serial pair history *)
  channels : channel list;
  shared : Obj_id.t list;
      (* objects receiving deposits from >= 2 distinct channels — the
         only places a per-object dependency cycle can close *)
  unstable : Obj_id.t list;
      (* touched objects with state-reading specs: their conflicts
         cannot be decided statically at all *)
}

let make_channel ext reg (u0, v0) =
  let act = Extension.action ext in
  let deposits = ref [] and trail = ref [] in
  let deposit o =
    if not (List.exists (Obj_id.equal o) !deposits) then
      deposits := o :: !deposits
  in
  let rec climb u v =
    let o = Action.obj (act u) in
    trail := o :: !trail;
    deposit o;
    if not (Commutativity.conflicts reg (act u) (act v)) then Callers_commute
    else
      match (Extension.caller_of ext u, Extension.caller_of ext v) with
      | Some p, Some q when not (Action_id.equal p q) ->
          let op = Action.obj (act p) and oq = Action.obj (act q) in
          deposit op;
          deposit oq;
          if Action_id.is_root p || Action_id.is_root q then Reached_top
          else if Obj_id.equal op oq then climb p q
          else Different_objects
      | _ ->
          (* distinct tops always have distinct callers up to the roots *)
          Reached_top
  in
  let stop = climb u0 v0 in
  {
    source = Action.obj (act u0);
    leaves = (u0, v0);
    meths = (Action.meth (act u0), Action.meth (act v0));
    trail = List.rev !trail;
    deposits = List.rev !deposits;
    stop;
  }

let analyse ?(sys = default_sys) reg (left : Summary.t) (right : Summary.t) =
  let reg = with_system ~sys reg in
  let t1 = instantiate ~sys ~top:1 left
  and t2 = instantiate ~sys ~top:2 right in
  let h = History.of_serial ~tops:[ t1; t2 ] ~commut:reg in
  let ext = Extension.extend h in
  let act = Extension.action ext in
  let channels = ref [] in
  List.iter
    (fun o ->
      if not (Obj_id.equal (Obj_id.original o) sys) then begin
        let leaves top =
          Action_id.Set.elements (Extension.acts_of ext o)
          |> List.filter (fun id ->
                 Action_id.top id = top && Extension.is_leaf ext id)
        in
        let l2 = leaves 2 in
        List.iter
          (fun u ->
            List.iter
              (fun v ->
                if
                  (not (Extension.same_call_path u v))
                  && Commutativity.conflicts reg (act u) (act v)
                then channels := make_channel ext reg (u, v) :: !channels)
              l2)
          (leaves 1)
      end)
    (Extension.objects ext);
  let channels = List.rev !channels in
  let shared =
    let all = ref [] in
    List.iter
      (fun c ->
        List.iter
          (fun o ->
            match List.assoc_opt (Obj_id.to_string o) !all with
            | Some n -> all := (Obj_id.to_string o, (o, snd n + 1)) :: List.remove_assoc (Obj_id.to_string o) !all
            | None -> all := (Obj_id.to_string o, (o, 1)) :: !all)
          c.deposits)
      channels;
    List.rev !all
    |> List.filter_map (fun (_, (o, n)) -> if n >= 2 then Some o else None)
  in
  let unstable =
    List.fold_left
      (fun acc o ->
        let o = Obj_id.original o in
        if
          Obj_id.equal o sys
          || List.exists (Obj_id.equal o) acc
          || Commutativity.stable (Commutativity.spec_for reg o)
        then acc
        else acc @ [ o ])
      [] (Extension.objects ext)
  in
  { left; right; tops = (t1, t2); registry = reg; ext; channels; shared;
    unstable }

let reaches_top c = c.stop = Reached_top

let pp_channel ppf c =
  let stop_label = function
    | Reached_top -> "reaches top"
    | Callers_commute -> "stopped: callers commute"
    | Different_objects -> "stopped: callers on different objects"
  in
  Fmt.pf ppf "%a (%s/%s) via %a [%s]" Obj_id.pp c.source (fst c.meths)
    (snd c.meths)
    (Fmt.list ~sep:(Fmt.any " -> ") Obj_id.pp)
    c.trail (stop_label c.stop)
