(* Commutativity-spec inference (DESIGN §16).

   For each object group of a lint target with an executable semantics
   model, evaluate every method x method x argument-class cell against
   the ground-truth oracle (Semantics.commute_at: forward commutativity
   plus abort safety), then diff the result against the registered
   hand-written spec.  The asymmetric design goal: a COMMUTING verdict
   requires agreement at every enumerated state AND a randomized-state
   pass, so inference is never falsely commutative; a CONFLICT verdict
   carries the first refuting state of the small-to-large enumeration —
   a minimal replayable witness. *)

open Ooser_core

type arg_rel = Same_args | Same_key | Distinct | Mixed | Any

type evidence =
  | Structural of string
  | Tested of { states : int; arg_pairs : int }

type witness = {
  w_state : Value.t;
  w_args : Value.t list;
  w_args' : Value.t list;
  w_reason : string;
}

type verdict = Commutes of evidence | Conflicts of witness | Undecided of string

type cell = { meth : string; meth' : string; rel : arg_rel; verdict : verdict }

type group = {
  spec_name : string;
  members : string list;
  audited : bool;
  cells : cell list;
}

type t = {
  target_name : string;
  groups : group list;
  diagnostics : Diagnostic.t list;
  table : Commutativity.table;
  decided : int;
  total : int;
  unsound_cells : (string * cell) list;
  conservative_cells : (string * cell) list;
}

let rel_label = function
  | Same_args -> "same-args"
  | Same_key -> "same-key"
  | Distinct -> "distinct-first-arg"
  | Mixed -> "mixed"
  | Any -> "any"

let rel_of args args' =
  match (args, args') with
  | [], [] -> Same_args
  | [], _ | _, [] -> Mixed
  | a :: ta, b :: tb ->
      if not (Value.equal a b) then Distinct
      else if
        List.length ta = List.length tb && List.for_all2 Value.equal ta tb
      then Same_args
      else Same_key

let pp_args ppf args =
  Format.fprintf ppf "(%s)"
    (String.concat ", " (List.map Value.to_string args))

let args_str args = Format.asprintf "%a" pp_args args

(* Synthesized probe actions of two different processes; the Def. 9
   same-process rule is bypassed via Commutativity.test, like the spec
   linter's probes. *)
let probe_act ~obj ~top (meth, args) =
  Action.v
    ~id:(Ids.Action_id.v ~top ~path:[ 1 ])
    ~obj:(Obj_id.v obj) ~meth ~args
    ~process:(Ids.Process_id.main top)
    ()

(* ---------- grouping ---------- *)

(* Objects sharing a registered spec (by name) are audited once; the
   banking workload's ten accounts all carry "escrow-counter". *)
let group_infos (objects : Spec_lint.object_info list) =
  List.fold_left
    (fun acc (info : Spec_lint.object_info) ->
      let n = Commutativity.name info.spec in
      let rec add = function
        | [] -> [ (n, [ info ]) ]
        | (n', infos) :: rest when String.equal n n' ->
            (n', infos @ [ info ]) :: rest
        | g :: rest -> g :: add rest
      in
      add acc)
    [] objects

(* How many static summary pairs invoke (member, meth) and (member,
   meth') — the concurrency a conservative hand cell gives up. *)
let lost_concurrency effects members meth meth' =
  let touches (e : Effects.t) m =
    List.exists
      (fun (a : Effects.atom) ->
        String.equal a.meth m && List.mem (Obj_id.to_string a.obj) members)
      e.atoms
  in
  let arr = Array.of_list effects in
  let n = Array.length arr in
  let c = ref 0 in
  for i = 0 to n - 1 do
    for j = i to n - 1 do
      if
        (touches arr.(i) meth && touches arr.(j) meth')
        || (touches arr.(i) meth' && touches arr.(j) meth)
      then incr c
    done
  done;
  !c

(* ---------- per-group audit ---------- *)

type group_result = {
  r_group : group;
  r_diags : Diagnostic.t list;
  r_unsound : (string * cell) list;
  r_conservative : (string * cell) list;
  r_entries : Commutativity.table_entry list;
}

let unordered_pairs methods =
  let rec go = function
    | [] -> []
    | m :: rest -> List.map (fun m' -> (m, m')) (m :: rest) @ go rest
  in
  go methods

let unaudited_group spec_name members vocab =
  let cells =
    List.map
      (fun (m, m') ->
        {
          meth = m;
          meth' = m';
          rel = Any;
          verdict = Undecided "no executable model for this spec";
        })
      (unordered_pairs vocab)
  in
  let diag =
    Diagnostic.v ~code:"INFER003" ~severity:Diagnostic.Info
      ~obj:(String.concat "," members)
      ~hint:
        "add an executable model to lib/analysis/semantics.ml to bring \
         this spec under inference"
      (Printf.sprintf
         "spec %S has no executable model: %d method-pair cell(s) stay \
          undecided"
         spec_name (List.length cells))
  in
  {
    r_group = { spec_name; members; audited = false; cells };
    r_diags = [ diag ];
    r_unsound = [];
    r_conservative = [];
    r_entries = [];
  }

let is_read = function
  | Semantics.Reads_all | Semantics.Reads_key -> true
  | Semantics.Writes_all | Semantics.Writes_key -> false

let is_keyed = function
  | Semantics.Reads_key | Semantics.Writes_key -> true
  | Semantics.Reads_all | Semantics.Writes_all -> false

let audit_group ~rand ~random_states ~effects (spec_name, infos) =
  let rep : Spec_lint.object_info = List.hd infos in
  let members = List.map (fun (i : Spec_lint.object_info) -> i.obj) infos in
  let vocab =
    List.sort_uniq String.compare (List.concat_map Spec_lint.probe_vocab infos)
  in
  match Semantics.for_spec rep.spec with
  | None -> unaudited_group spec_name members vocab
  | Some model ->
      let reg_spec = rep.spec in
      let stable = Commutativity.stable reg_spec in
      let obj0 = List.hd members in
      let random =
        List.init random_states (fun _ ->
            QCheck.Gen.generate1 ~rand model.Semantics.gen_state)
      in
      let states = model.Semantics.states @ random in
      let n_states = List.length states in
      let diags = ref [] in
      let unsound = ref [] in
      let conservative = ref [] in
      let cells = ref [] in
      let entries = ref [] in
      let undecided_methods =
        List.filter (fun m -> not (List.mem m model.Semantics.vocab)) vocab
      in
      let emit_unsound cell w =
        unsound := (spec_name, cell) :: !unsound;
        diags :=
          Diagnostic.v ~code:"INFER001" ~severity:Diagnostic.Error ~obj:obj0
            ~meth:cell.meth
            ~hint:
              (Printf.sprintf
                 "the engine would certify a non-serializable interleaving; \
                  replay with Infer.witness_history and fix the %s/%s cell"
                 cell.meth cell.meth')
            (Printf.sprintf
               "spec %S claims %s%s and %s%s commute but execution refutes \
                it at state %s: %s"
               spec_name cell.meth (args_str w.w_args) cell.meth'
               (args_str w.w_args') (Value.to_string w.w_state) w.w_reason)
          :: !diags
      in
      let emit_conservative cell =
        conservative := (spec_name, cell) :: !conservative;
        let lost = lost_concurrency effects members cell.meth cell.meth' in
        diags :=
          Diagnostic.v ~code:"INFER002" ~severity:Diagnostic.Warning ~obj:obj0
            ~meth:cell.meth
            ~hint:
              "sound but conservative: the cell may be relaxed to commute \
               after reviewing compensation behaviour"
            (Printf.sprintf
               "spec %S conflicts %s/%s (%s arguments) yet every probed \
                execution commutes (%d states); %d workload summary pair(s) \
                lose concurrency"
               spec_name cell.meth cell.meth' (rel_label cell.rel) n_states
               lost)
          :: !diags
      in
      (* one cell: a method pair restricted to one argument-class
         relation, aggregated over every probed state *)
      let eval_cell meth meth' rel pairs =
        let cell_witness = ref None in
        let family_unsound = ref None in
        let family_conservative = ref false in
        let per_pair =
          List.map
            (fun (args, args') ->
              let hand_reg =
                Commutativity.test reg_spec
                  (probe_act ~obj:obj0 ~top:1 (meth, args))
                  (probe_act ~obj:obj0 ~top:2 (meth', args'))
              in
              (args, args', hand_reg, ref None (* first refutation *), ref false
               (* commuted at some probed state *)))
            pairs
        in
        List.iter
          (fun s ->
            let family =
              if stable then None
              else Some (model.Semantics.instantiate s).Semantics.hand
            in
            List.iter
              (fun (args, args', _hand_reg, first_fail, ok_any) ->
                let ok = Semantics.commute_at model s (meth, args) (meth', args') in
                if ok then ok_any := true;
                if not ok then begin
                  let w () =
                    let reason =
                      if Semantics.forward_at model s (meth, args) (meth', args')
                      then
                        "abort-unsafe: undoing one call after the other ran \
                         does not restore the survivor-alone state"
                      else
                        "the two execution orders are distinguishable \
                         (results or final states differ)"
                    in
                    { w_state = s; w_args = args; w_args' = args'; w_reason = reason }
                  in
                  if !first_fail = None then first_fail := Some (w ());
                  if !cell_witness = None then cell_witness := Some (w ())
                end;
                match family with
                | None -> ()
                | Some fam ->
                    let says =
                      Commutativity.test fam
                        (probe_act ~obj:obj0 ~top:1 (meth, args))
                        (probe_act ~obj:obj0 ~top:2 (meth', args'))
                    in
                    if says && not ok && !family_unsound = None then
                      family_unsound :=
                        Some
                          {
                            w_state = s;
                            w_args = args;
                            w_args' = args';
                            w_reason =
                              "the state-bound spec claims commute at this \
                               state but execution refutes it";
                          };
                    if (not says) && ok then family_conservative := true)
              per_pair)
          states;
        let verdict =
          match !cell_witness with
          | Some w -> Conflicts w
          | None ->
              let evidence =
                match
                  (Semantics.footprint model meth, Semantics.footprint model meth')
                with
                | Some f, Some f' when is_read f && is_read f' ->
                    Structural "read-only footprints"
                | Some f, Some f' when rel = Distinct && is_keyed f && is_keyed f'
                  ->
                    Structural "key-disjoint footprints"
                | _ ->
                    Tested { states = n_states; arg_pairs = List.length pairs }
              in
              Commutes evidence
        in
        let cell = { meth; meth'; rel; verdict } in
        (* diff against the registered spec — at most one INFER001 and
           one INFER002 per cell *)
        if stable then begin
          (match
             List.find_opt
               (fun (_, _, hand_reg, first_fail, _) ->
                 hand_reg && !first_fail <> None)
               per_pair
           with
          | Some (_, _, _, { contents = Some w }, _) -> emit_unsound cell w
          | _ -> ());
          match verdict with
          | Commutes _ when List.exists (fun (_, _, h, _, _) -> not h) per_pair
            ->
              emit_conservative cell
          | _ -> ()
        end
        else begin
          (match !family_unsound with
          | Some w -> emit_unsound cell w
          | None ->
              (* a registered (possibly planted) spec claiming commute on
                 a pair the oracle refutes at EVERY probed state cannot
                 be a correct state-dependent refinement: no probed state
                 justifies the claim *)
              (match
                 List.find_opt
                   (fun (_, _, hand_reg, first_fail, ok_any) ->
                     hand_reg && !first_fail <> None && not !ok_any)
                   per_pair
               with
              | Some (_, _, _, { contents = Some w }, _) -> emit_unsound cell w
              | _ -> ()));
          match verdict with
          | Commutes _
            when !family_conservative
                 || List.exists (fun (_, _, h, _, _) -> not h) per_pair ->
              emit_conservative cell
          | _ -> ()
        end;
        let hand_uniform =
          match per_pair with
          | (_, _, h0, _, _) :: _
            when List.for_all (fun (_, _, h, _, _) -> h = h0) per_pair ->
              Some h0
          | _ -> None
        in
        (cell, hand_uniform)
      in
      let pairs = unordered_pairs (List.sort_uniq String.compare vocab) in
      List.iter
        (fun (m, m') ->
          if
            List.mem m model.Semantics.vocab
            && List.mem m' model.Semantics.vocab
          then begin
            let vs = Semantics.vectors model m in
            let vs' = Semantics.vectors model m' in
            let buckets = ref [] in
            List.iter
              (fun a ->
                List.iter
                  (fun a' ->
                    let rel = rel_of a a' in
                    let rec add = function
                      | [] -> [ (rel, [ (a, a') ]) ]
                      | (r, ps) :: rest when r = rel ->
                          (r, ps @ [ (a, a') ]) :: rest
                      | b :: rest -> b :: add rest
                    in
                    buckets := add !buckets)
                  vs')
              vs;
            let cell_results =
              List.map (fun (rel, ps) -> eval_cell m m' rel ps) !buckets
            in
            cells := !cells @ List.map fst cell_results;
            (* table compilation: the whole method pair must be decided,
               uniform across every argument class, and hand-agreeing —
               only then is the cell argument-independent within the
               probed scope and safe to answer from a dense table *)
            if stable then begin
              let answers =
                List.map
                  (fun (c, hand) ->
                    match (c.verdict, hand) with
                    | Commutes _, Some true -> Some true
                    | Conflicts _, Some false -> Some false
                    | _ -> None)
                  cell_results
              in
              match answers with
              | Some b :: rest when List.for_all (fun a -> a = Some b) rest ->
                  entries :=
                    !entries
                    @ List.map
                        (fun o ->
                          {
                            Commutativity.e_obj = o;
                            e_meth = m;
                            e_meth' = m';
                            e_commutes = b;
                          })
                        members
              | _ -> ()
            end
          end
          else
            cells :=
              !cells
              @ [
                  {
                    meth = m;
                    meth' = m';
                    rel = Any;
                    verdict =
                      Undecided "method outside the executable model vocabulary";
                  };
                ])
        pairs;
      if undecided_methods <> [] then
        diags :=
          Diagnostic.v ~code:"INFER003" ~severity:Diagnostic.Info ~obj:obj0
            ~hint:
              "compensation helpers are exercised through undo closures; \
               extend the model vocabulary to decide these cells directly"
            (Printf.sprintf
               "spec %S: method(s) %s outside the %s model vocabulary — \
                their cells stay undecided"
               spec_name
               (String.concat ", " undecided_methods)
               model.Semantics.model_name)
          :: !diags;
      {
        r_group = { spec_name; members; audited = true; cells = !cells };
        r_diags = !diags;
        r_unsound = !unsound;
        r_conservative = !conservative;
        r_entries = !entries;
      }

(* ---------- driver ---------- *)

let run ?(seed = 0) ?(random_states = 100) (target : Lint.target) =
  let rand = Random.State.make [| 0x5eed; seed |] in
  let effects = List.map Effects.of_summary target.summaries in
  let results =
    List.map
      (audit_group ~rand ~random_states ~effects)
      (group_infos target.objects)
  in
  let groups = List.map (fun r -> r.r_group) results in
  let diagnostics =
    List.stable_sort Diagnostic.compare
      (List.concat_map (fun r -> r.r_diags) results)
  in
  let table =
    Commutativity.table_of_entries
      (List.concat_map (fun r -> r.r_entries) results)
  in
  let all_cells = List.concat_map (fun g -> g.cells) groups in
  let decided =
    List.length
      (List.filter
         (fun c -> match c.verdict with Undecided _ -> false | _ -> true)
         all_cells)
  in
  {
    target_name = target.name;
    groups;
    diagnostics;
    table;
    decided;
    total = List.length all_cells;
    unsound_cells = List.concat_map (fun r -> r.r_unsound) results;
    conservative_cells = List.concat_map (fun r -> r.r_conservative) results;
  }

let unsound t = t.unsound_cells
let conservative t = t.conservative_cells

let witness_history ~obj ~meth ~args ~meth' ~args' =
  let o = Obj_id.v obj in
  let t1 =
    Call_tree.Build.(top ~n:1 [ call ~args o meth []; call ~args o meth [] ])
  in
  let t2 = Call_tree.Build.(top ~n:2 [ call ~args:args' o meth' [] ]) in
  let a11 = Ids.Action_id.v ~top:1 ~path:[ 1 ] in
  let a12 = Ids.Action_id.v ~top:1 ~path:[ 2 ] in
  let a21 = Ids.Action_id.v ~top:2 ~path:[ 1 ] in
  let commut =
    Commutativity.fixed
      [
        ( obj,
          Commutativity.of_conflict_matrix ~name:"infer-witness"
            [ (meth, meth') ] );
      ]
  in
  (* T2's single call lands between T1's two: with a real conflict the
     dependency relation orders T1 before T2 (first call) and T2 before
     T1 (second call) — a cycle, so the history is not oo-serializable *)
  History.v ~tops:[ t1; t2 ] ~order:[ a11; a21; a12 ] ~commut

(* ---------- rendering ---------- *)

let pp_verdict ppf = function
  | Commutes (Structural r) -> Format.fprintf ppf "commutes (structural: %s)" r
  | Commutes (Tested { states; arg_pairs }) ->
      Format.fprintf ppf "commutes (tested: %d states x %d arg pairs)" states
        arg_pairs
  | Conflicts w ->
      Format.fprintf ppf "conflicts (witness: state %s, args %s | %s — %s)"
        (Value.to_string w.w_state) (args_str w.w_args) (args_str w.w_args')
        w.w_reason
  | Undecided r -> Format.fprintf ppf "undecided (%s)" r

let pp ppf t =
  Format.fprintf ppf "== spec inference: %s ==@." t.target_name;
  Format.fprintf ppf "cells decided: %d/%d@." t.decided t.total;
  let objs, covered = Commutativity.table_stats t.table in
  Format.fprintf ppf "compiled table: %d object(s), %d cell(s)@." objs covered;
  List.iter
    (fun g ->
      Format.fprintf ppf "@.spec %S — objects: %s%s@." g.spec_name
        (String.concat ", " g.members)
        (if g.audited then "" else " [no model]");
      List.iter
        (fun c ->
          Format.fprintf ppf "  %s / %s [%s]: %a@." c.meth c.meth'
            (rel_label c.rel) pp_verdict c.verdict)
        g.cells)
    t.groups;
  if t.diagnostics <> [] then begin
    Format.fprintf ppf "@.";
    List.iter (fun d -> Format.fprintf ppf "%a@." Diagnostic.pp d) t.diagnostics;
    Diagnostic.pp_summary ppf t.diagnostics
  end

let to_json t =
  let b = Buffer.create 4096 in
  let esc s = Diagnostic.json_escape s in
  Buffer.add_string b
    (Printf.sprintf "{\"target\":\"%s\",\"decided\":%d,\"total\":%d,"
       (esc t.target_name) t.decided t.total);
  let objs, covered = Commutativity.table_stats t.table in
  Buffer.add_string b
    (Printf.sprintf "\"table\":{\"objects\":%d,\"cells\":%d}," objs covered);
  Buffer.add_string b "\"groups\":[";
  List.iteri
    (fun i g ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"spec\":\"%s\",\"audited\":%b,\"members\":[%s],"
           (esc g.spec_name) g.audited
           (String.concat ","
              (List.map (fun m -> Printf.sprintf "\"%s\"" (esc m)) g.members)));
      Buffer.add_string b "\"cells\":[";
      List.iteri
        (fun j c ->
          if j > 0 then Buffer.add_char b ',';
          Buffer.add_string b
            (Printf.sprintf "{\"meth\":\"%s\",\"meth2\":\"%s\",\"rel\":\"%s\","
               (esc c.meth) (esc c.meth') (rel_label c.rel));
          (match c.verdict with
          | Commutes (Structural r) ->
              Buffer.add_string b
                (Printf.sprintf
                   "\"verdict\":\"commutes\",\"evidence\":\"structural\",\
                    \"reason\":\"%s\"}"
                   (esc r))
          | Commutes (Tested { states; arg_pairs }) ->
              Buffer.add_string b
                (Printf.sprintf
                   "\"verdict\":\"commutes\",\"evidence\":\"tested\",\
                    \"states\":%d,\"arg_pairs\":%d}"
                   states arg_pairs)
          | Conflicts w ->
              Buffer.add_string b
                (Printf.sprintf
                   "\"verdict\":\"conflicts\",\"witness\":{\"state\":\"%s\",\
                    \"args\":\"%s\",\"args2\":\"%s\",\"reason\":\"%s\"}}"
                   (esc (Value.to_string w.w_state))
                   (esc (args_str w.w_args))
                   (esc (args_str w.w_args'))
                   (esc w.w_reason))
          | Undecided r ->
              Buffer.add_string b
                (Printf.sprintf "\"verdict\":\"undecided\",\"reason\":\"%s\"}"
                   (esc r))))
        g.cells;
      Buffer.add_string b "]}")
    t.groups;
  Buffer.add_string b "],\"diagnostics\":[";
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Diagnostic.to_json d))
    t.diagnostics;
  Buffer.add_string b "]}";
  Buffer.contents b
