(* The whole-workload static conflict atlas.

   For every pair of transaction types in a workload (summaries deduped
   by call-tree shape, self-pairs included), the atlas holds one of:

   - [Safe]: a PROOF that every interleaving of the two transactions is
     oo-serializable.  Either the pair has no conflicting leaf pair at
     all ([No_conflict]), or its channels share no deposit object
     ([Isolated_channels] — see the counting argument in [Inherit]), or
     every merge of the two primitive sequences was replayed through
     [Serializability.check] and accepted ([Exhausted n]).
   - [Unsafe w]: a minimal witness schedule — an interleaving with the
     fewest context switches found failing — replayable through
     [Serializability.check] by construction.
   - [Unknown]: a state-reading (unstable) spec makes the conflicts
     statically undecidable, or the interleaving count exceeds the
     enumeration budget.  Never claimed safe.

   The atlas also compiles the workload's reachable method classes into
   a dense [Commutativity.table] for engine preloading, and emits the
   HOT001 (inheritance never stops) and COMP001 (missing compensation on
   an open-nested abort path) rules. *)

open Ooser_core

type safe_reason =
  | No_conflict  (* no conflicting leaf pair: no cross edges at all *)
  | Isolated_channels  (* channels share no deposit object *)
  | Exhausted of int  (* all [n] interleavings replayed and accepted *)

type witness = {
  w_order : Action_id.t list;
  w_switches : int;  (* context switches — minimal among failures found *)
  w_objects : Obj_id.t list;  (* objects whose per-object relations fail *)
}

type verdict = Safe of safe_reason | Unsafe of witness | Unknown of string

type entry = {
  pair : string * string;
  verdict : verdict;
  inh : Inherit.t;
  interleavings : int;  (* total merge count, clamped to budget + 1 *)
}

type t = {
  target_name : string;
  summaries : Summary.t list;  (* deduped representatives *)
  entries : entry list;
  table : Commutativity.table;
  diagnostics : Diagnostic.t list;  (* HOT001 / COMP001 *)
}

(* ---------------------------------------------------------------- pairs *)

let dedup_summaries summaries =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun s ->
      let k = Effects.shape_key s in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    summaries

(* ---------------------------------------------------------- enumeration *)

(* C(n1+n2, n1), clamped to [cap + 1]. *)
let merge_count ~cap n1 n2 =
  let n1, n2 = if n1 < n2 then (n1, n2) else (n2, n1) in
  let rec go acc i =
    if i > n1 then acc
    else
      let acc = acc * (n2 + i) / i in
      if acc > cap then cap + 1 else go acc (i + 1)
  in
  go 1 1

(* Every merge of two sequences, preserving each sequence's order. *)
let rec merges xs ys () =
  match (xs, ys) with
  | [], l | l, [] -> Seq.Cons (l, Seq.empty)
  | x :: xt, y :: yt ->
      Seq.append
        (Seq.map (List.cons x) (fun () -> merges xt ys ()))
        (Seq.map (List.cons y) (fun () -> merges xs yt ()))
        ()

let switches order =
  match order with
  | [] -> 0
  | first :: rest ->
      let _, n =
        List.fold_left
          (fun (prev, n) id ->
            let t = Action_id.top id in
            (t, if t = prev then n else n + 1))
          (Action_id.top first, 0)
          rest
      in
      n

let replay (inh : Inherit.t) order =
  let t1, t2 = inh.Inherit.tops in
  Serializability.check
    (History.v ~tops:[ t1; t2 ] ~order ~commut:inh.Inherit.registry)

let failing_objects (v : Serializability.verdict) =
  List.filter_map
    (fun ov ->
      if
        Serializability.object_oo_serializable ov
        && ov.Serializability.combined_acyclic
      then None
      else Some ov.Serializability.obj)
    v.Serializability.objects

exception Minimal of witness

(* Exhaustive replay: prove Safe by exhaustion or find a minimal
   witness.  Two context switches is the least any non-serial
   interleaving has, so the scan stops early at a 2-switch failure. *)
let enumerate ~max_interleavings (inh : Inherit.t) =
  let t1, t2 = inh.Inherit.tops in
  let s1 = History.serial_primitives t1
  and s2 = History.serial_primitives t2 in
  let total =
    merge_count ~cap:max_interleavings (List.length s1) (List.length s2)
  in
  if total > max_interleavings then
    ( Unknown
        (Printf.sprintf "more than %d interleavings — enumeration budget \
                         exceeded" max_interleavings),
      total )
  else
    let best = ref None in
    (try
       Seq.iter
         (fun order ->
           let v = replay inh order in
           if not v.Serializability.oo_serializable then begin
             let w =
               {
                 w_order = order;
                 w_switches = switches order;
                 w_objects = failing_objects v;
               }
             in
             (match !best with
             | Some b when b.w_switches <= w.w_switches -> ()
             | _ -> best := Some w);
             if w.w_switches <= 2 then raise (Minimal w)
           end)
         (merges s1 s2)
     with Minimal _ -> ());
    match !best with
    | None -> (Safe (Exhausted total), total)
    | Some w -> (Unsafe w, total)

let entry_of ?(max_interleavings = 20_000) (inh : Inherit.t) =
  let pair = (inh.Inherit.left.Summary.name, inh.Inherit.right.Summary.name) in
  if inh.Inherit.unstable <> [] then
    {
      pair;
      verdict =
        Unknown
          (Fmt.str "state-dependent spec on %a — conflicts undecidable \
                    statically"
             (Fmt.list ~sep:(Fmt.any ", ") Obj_id.pp)
             inh.Inherit.unstable);
      inh;
      interleavings = 0;
    }
  else if inh.Inherit.channels = [] then
    { pair; verdict = Safe No_conflict; inh; interleavings = 0 }
  else if inh.Inherit.shared = [] then
    { pair; verdict = Safe Isolated_channels; inh; interleavings = 0 }
  else
    let verdict, total = enumerate ~max_interleavings inh in
    { pair; verdict; inh; interleavings = total }

(* ------------------------------------------------------------ the table *)

let probe ~top oid meth =
  Action.v
    ~id:(Action_id.v ~top ~path:[ 1 ])
    ~obj:oid ~meth
    ~process:(Process_id.main top)
    ()

(* Compile the reachable method classes of every stable, method-only
   spec into dense table entries.  Arg-sensitive (keyed) and unstable
   (state-reading) specs are left out: the runtime probe path keeps
   deciding those, so preloading cannot change any answer. *)
let conflict_table (target : Lint.target) summaries =
  let effs = List.map Effects.of_summary summaries in
  let reg = target.Lint.registry in
  let entries = ref [] in
  List.iter
    (fun (oid, meths) ->
      if Commutativity.known reg oid then begin
        let spec = Commutativity.spec_for reg oid in
        if Commutativity.stable spec && Commutativity.meth_only spec then begin
          let meths =
            List.sort_uniq String.compare
              (meths
              @ Option.value ~default:[] (Commutativity.vocabulary spec))
          in
          List.iteri
            (fun i m ->
              List.iteri
                (fun j m' ->
                  if i <= j then
                    entries :=
                      {
                        Commutativity.e_obj = Obj_id.name (Obj_id.original oid);
                        e_meth = m;
                        e_meth' = m';
                        e_commutes =
                          Commutativity.test spec (probe ~top:1 oid m)
                            (probe ~top:2 oid m');
                      }
                      :: !entries)
                meths)
            meths
        end
      end)
    (Effects.method_classes effs);
  Commutativity.table_of_entries (List.rev !entries)

(* ------------------------------------------------------------ lint rules *)

let hot_diags entries =
  let seen = Hashtbl.create 16 in
  List.concat_map
    (fun e ->
      List.filter_map
        (fun (c : Inherit.channel) ->
          let deep = List.length c.Inherit.trail >= 2 in
          if not (Inherit.reaches_top c && deep) then None
          else
            let key =
              (e.pair, Obj_id.to_string c.Inherit.source, c.Inherit.meths)
            in
            if Hashtbl.mem seen key then None
            else begin
              Hashtbl.add seen key ();
              Some
                (Diagnostic.v ~code:"HOT001" ~severity:Diagnostic.Warning
                   ~obj:(Obj_id.to_string c.Inherit.source)
                   ~meth:(fst c.Inherit.meths ^ "/" ^ snd c.Inherit.meths)
                   ~txn:(fst e.pair ^ "/" ^ snd e.pair)
                   ~hint:
                     "make an intermediate caller pair commute so Def. 11 \
                      stops the inheritance, or split the hot object"
                   (Fmt.str
                      "conflict is inherited through %d level%s (%a) into a \
                       top-level transaction dependency: every such pair of \
                       transactions serializes here"
                      (List.length c.Inherit.trail)
                      (if List.length c.Inherit.trail = 1 then "" else "s")
                      (Fmt.list ~sep:(Fmt.any " -> ") Obj_id.pp)
                      c.Inherit.trail))
            end)
        e.inh.Inherit.channels)
    entries

let comp_diags (objects : Spec_lint.object_info list) summaries =
  let seen = Hashtbl.create 16 in
  let diags = ref [] in
  let info_of name =
    List.find_opt (fun oi -> String.equal oi.Spec_lint.obj name) objects
  in
  List.iter
    (fun (s : Summary.t) ->
      let rec visit depth (c : Summary.call) =
        let oname = Obj_id.to_string (Obj_id.original c.Summary.obj) in
        (if depth >= 2 && not (Hashtbl.mem seen (oname, c.Summary.meth)) then
           match info_of oname with
           | Some { Spec_lint.compensated = Some comps; methods; _ }
             when List.mem c.Summary.meth methods
                  && not (List.mem c.Summary.meth comps) ->
               Hashtbl.add seen (oname, c.Summary.meth) ();
               diags :=
                 Diagnostic.v ~code:"COMP001" ~severity:Diagnostic.Warning
                   ~obj:oname ~meth:c.Summary.meth ~txn:s.Summary.name
                   ~hint:
                     (Fmt.str
                        "register a compensation (Inverse ...) for %s.%s, or \
                         flatten the call so its lock is scoped by the root"
                        oname c.Summary.meth)
                   "nested subtransaction has no registered compensation: \
                    under open nesting its lock is released when the caller \
                    completes, so a later abort of the top cannot soundly \
                    undo it"
                 :: !diags
           | _ -> ());
        List.iter (visit (depth + 1)) c.Summary.children
      in
      List.iter (visit 1) s.Summary.body)
    summaries;
  List.rev !diags

(* ------------------------------------------------------------ the build *)

let build ?max_interleavings ?(sys = Inherit.default_sys)
    (target : Lint.target) =
  let reps = dedup_summaries target.Lint.summaries in
  let entries = ref [] in
  let rec pairs = function
    | [] -> ()
    | l :: rest ->
        (* self-pair first: two instances of the same transaction type *)
        List.iter
          (fun r ->
            let inh = Inherit.analyse ~sys target.Lint.registry l r in
            entries := entry_of ?max_interleavings inh :: !entries)
          (l :: rest);
        pairs rest
  in
  pairs reps;
  let entries = List.rev !entries in
  let diagnostics =
    List.sort Diagnostic.compare
      (hot_diags entries @ comp_diags target.Lint.objects target.Lint.summaries)
  in
  {
    target_name = target.Lint.name;
    summaries = reps;
    entries;
    table = conflict_table target reps;
    diagnostics;
  }

let witness_history (e : entry) (w : witness) =
  let t1, t2 = e.inh.Inherit.tops in
  History.v ~tops:[ t1; t2 ] ~order:w.w_order
    ~commut:e.inh.Inherit.registry

(* ------------------------------------------------------------- counting *)

let count p t = List.length (List.filter p t.entries)

let safe_entries t =
  List.filter (fun e -> match e.verdict with Safe _ -> true | _ -> false)
    t.entries

let unsafe_entries t =
  List.filter (fun e -> match e.verdict with Unsafe _ -> true | _ -> false)
    t.entries

let unknown_entries t =
  List.filter (fun e -> match e.verdict with Unknown _ -> true | _ -> false)
    t.entries

(* ------------------------------------------------------------ rendering *)

let verdict_label = function
  | Safe No_conflict -> "safe (no conflict)"
  | Safe Isolated_channels -> "safe (isolated channels)"
  | Safe (Exhausted n) -> Printf.sprintf "safe (all %d interleavings)" n
  | Unsafe w ->
      Printf.sprintf "UNSAFE (witness: %d switches)" w.w_switches
  | Unknown _ -> "unknown"

let pp_entry ppf e =
  Fmt.pf ppf "%s x %s: %s" (fst e.pair) (snd e.pair) (verdict_label e.verdict);
  match e.verdict with
  | Unsafe w ->
      Fmt.pf ppf " at %a@,    witness: %a"
        (Fmt.list ~sep:(Fmt.any ", ") Obj_id.pp)
        w.w_objects
        (Fmt.list ~sep:Fmt.sp Action_id.pp)
        w.w_order
  | Unknown reason -> Fmt.pf ppf " — %s" reason
  | Safe _ -> ()

let pp ppf t =
  let objs, cells = Commutativity.table_stats t.table in
  Fmt.pf ppf "@[<v>atlas %s: %d transaction types, %d pairs@," t.target_name
    (List.length t.summaries)
    (List.length t.entries);
  List.iter (fun e -> Fmt.pf ppf "  %a@," pp_entry e) t.entries;
  List.iter (fun d -> Fmt.pf ppf "  %a@," Diagnostic.pp d) t.diagnostics;
  Fmt.pf ppf "  conflict table: %d objects, %d precomputed cells@," objs cells;
  Fmt.pf ppf "  %d safe, %d unsafe, %d unknown@]"
    (count (fun e -> match e.verdict with Safe _ -> true | _ -> false) t)
    (count (fun e -> match e.verdict with Unsafe _ -> true | _ -> false) t)
    (count (fun e -> match e.verdict with Unknown _ -> true | _ -> false) t)

let esc = Diagnostic.json_escape

let verdict_json = function
  | Safe r ->
      Printf.sprintf
        "{\"kind\": \"safe\", \"reason\": \"%s\"}"
        (match r with
        | No_conflict -> "no-conflict"
        | Isolated_channels -> "isolated-channels"
        | Exhausted n -> Printf.sprintf "exhausted-%d" n)
  | Unsafe w ->
      Printf.sprintf
        "{\"kind\": \"unsafe\", \"switches\": %d, \"objects\": [%s], \
         \"witness\": [%s]}"
        w.w_switches
        (String.concat ", "
           (List.map
              (fun o -> Printf.sprintf "\"%s\"" (esc (Obj_id.to_string o)))
              w.w_objects))
        (String.concat ", "
           (List.map
              (fun id ->
                Printf.sprintf "\"%s\"" (esc (Action_id.to_string id)))
              w.w_order))
  | Unknown reason ->
      Printf.sprintf "{\"kind\": \"unknown\", \"reason\": \"%s\"}" (esc reason)

let to_json t =
  let objs, cells = Commutativity.table_stats t.table in
  let entry e =
    Printf.sprintf
      "    {\"left\": \"%s\", \"right\": \"%s\", \"channels\": %d, \
       \"shared\": %d, \"interleavings\": %d, \"verdict\": %s}"
      (esc (fst e.pair))
      (esc (snd e.pair))
      (List.length e.inh.Inherit.channels)
      (List.length e.inh.Inherit.shared)
      e.interleavings (verdict_json e.verdict)
  in
  String.concat "\n"
    ([
       "{";
       Printf.sprintf "  \"target\": \"%s\"," (esc t.target_name);
       Printf.sprintf "  \"transaction_types\": %d,"
         (List.length t.summaries);
       "  \"pairs\": [";
     ]
    @ [ String.concat ",\n" (List.map entry t.entries) ]
    @ [
        "  ],";
        "  \"diagnostics\": [";
        String.concat ",\n"
          (List.map (fun d -> "    " ^ Diagnostic.to_json d) t.diagnostics);
        "  ],";
        Printf.sprintf "  \"table\": {\"objects\": %d, \"cells\": %d}," objs
          cells;
        Printf.sprintf "  \"safe\": %d, \"unsafe\": %d, \"unknown\": %d"
          (List.length (safe_entries t))
          (List.length (unsafe_entries t))
          (List.length (unknown_entries t));
        "}";
      ])

let to_dot t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "graph \"atlas-%s\" {\n  overlap=false;\n" t.target_name);
  List.iter
    (fun (s : Summary.t) ->
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\" [shape=box];\n" (esc s.Summary.name)))
    t.summaries;
  List.iter
    (fun e ->
      let l, r = e.pair in
      let attrs =
        match e.verdict with
        | Safe _ -> "color=darkgreen, style=dashed, label=\"safe\""
        | Unsafe w ->
            Printf.sprintf "color=red, style=bold, label=\"unsafe: %s\""
              (esc
                 (String.concat ","
                    (List.map Obj_id.to_string w.w_objects)))
        | Unknown _ -> "color=gray, style=dotted, label=\"unknown\""
      in
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\" -- \"%s\" [%s];\n" (esc l) (esc r) attrs))
    t.entries;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
