(** The whole-workload static conflict atlas.

    For every pair of transaction types in a workload ({!Summary}s
    deduped by call-tree shape, self-pairs included) the atlas records a
    {!verdict}:

    - [Safe]: a proof that every interleaving of the two transactions
      is oo-serializable — either structurally (no conflicting leaf
      pair, or all channels isolated: see {!Inherit}), or by exhaustive
      replay of every merge of the two primitive sequences through
      {!Ooser_core.Serializability.check};
    - [Unsafe]: a minimal witness schedule (fewest context switches
      found failing), replayable through the checker;
    - [Unknown]: a state-reading spec or an enumeration budget overrun —
      conservatively never claimed safe.

    The atlas also compiles the workload's reachable method classes
    into a dense {!Ooser_core.Commutativity.table} for engine
    preloading, and emits the HOT001 / COMP001 rules. *)

open Ooser_core

type safe_reason =
  | No_conflict  (** no conflicting leaf pair at all *)
  | Isolated_channels  (** channels share no deposit object *)
  | Exhausted of int  (** all [n] interleavings replayed and accepted *)

type witness = {
  w_order : Action_id.t list;  (** interleaved primitive execution order *)
  w_switches : int;  (** context switches; minimal among found failures *)
  w_objects : Obj_id.t list;  (** objects whose per-object relations fail *)
}

type verdict = Safe of safe_reason | Unsafe of witness | Unknown of string

type entry = {
  pair : string * string;
  verdict : verdict;
  inh : Inherit.t;
  interleavings : int;  (** total merge count, clamped to budget + 1 *)
}

type t = {
  target_name : string;
  summaries : Summary.t list;  (** deduped type representatives *)
  entries : entry list;
  table : Commutativity.table;
  diagnostics : Diagnostic.t list;  (** HOT001 / COMP001, sorted *)
}

val build : ?max_interleavings:int -> ?sys:Obj_id.t -> Lint.target -> t
(** Analyse every pair.  [max_interleavings] (default 20000) bounds the
    exhaustive replay per pair; beyond it the verdict is [Unknown]. *)

val witness_history : entry -> witness -> History.t
(** The witness as a checkable history (tops 1 and 2 of the entry, the
    witness order, the augmented registry) — feed it to
    {!Ooser_core.Serializability.check} to reproduce the rejection. *)

val safe_entries : t -> entry list
val unsafe_entries : t -> entry list
val unknown_entries : t -> entry list

val verdict_label : verdict -> string
val pp : Format.formatter -> t -> unit
val to_json : t -> string
(** One JSON document: pairs with verdicts and witnesses, diagnostics
    (via {!Diagnostic.to_json}), and table statistics. *)

val to_dot : t -> string
(** Graphviz rendering: one node per transaction type, one edge per
    pair, colored by verdict. *)
