(* Lint driver: spec soundness + call-graph analysis + deadlock
   potential over one target, with a human-readable report. *)

open Ooser_core

type target = {
  name : string;
  objects : Spec_lint.object_info list;
  registry : Commutativity.registry;
  summaries : Summary.t list;
}

let target ~name ?(objects = []) ?(summaries = []) registry =
  { name; objects; registry; summaries }

let run t =
  List.sort Diagnostic.compare
    (List.concat
       [
         List.concat_map Spec_lint.check_spec t.objects;
         Spec_lint.check_usage t.registry t.summaries;
         Callgraph.check t.summaries;
         Lock_order.check t.registry t.summaries;
       ])

let exit_code ?strict ds = Diagnostic.exit_code ?strict ds

let report ppf t diags =
  Fmt.pf ppf "lint %s: %d objects, %d transaction summaries@." t.name
    (List.length t.objects)
    (List.length t.summaries);
  List.iter (fun d -> Fmt.pf ppf "  %a@." Diagnostic.pp d) diags;
  (match Callgraph.conflict_edges t.registry t.summaries with
  | [] -> if t.summaries <> [] then Fmt.pf ppf "  conflict graph: no edges@."
  | edges ->
      let n = List.length edges in
      let cap = 12 in
      Fmt.pf ppf "  conflict graph: %d edge%s@." n (if n = 1 then "" else "s");
      List.iteri
        (fun i e ->
          if i < cap then Fmt.pf ppf "    %a@." Callgraph.pp_edge e)
        edges;
      if n > cap then Fmt.pf ppf "    ... and %d more@." (n - cap));
  Fmt.pf ppf "  %a@." Diagnostic.pp_summary diags
