(* Offline-certification scaling curve (self-contained: no bechamel,
   so it also runs in CI).  One question: what does segmenting a
   recorded history at quiescent points buy over replaying it through
   the online incremental certifier?

   The harness generates a synthetic trace with Bench_trace (bursts of
   overlapping flat transactions over a bounded key universe — see
   bench_trace.mli for why the history is serializable by construction
   yet has no quiescent point inside a burst), certifies it with
   [Certify.run] at workers ∈ {1, 2, 4, 8}, and then replays the same
   trace through one [Incremental.t] fed commit-by-commit in stamp
   order — which is literally the engine's online certification path —
   as the verdict baseline.

   Per-segment certifier work grows quadratically with segment length
   on a fixed key universe (every conflicting pair on a key costs an
   edge), so more workers → smaller default segments → less total
   work: the speedup is real even on a single hardware thread, and the
   online monolithic replay is the most expensive point of all.  A
   planted-cycle trace exercises the rejection side: every worker
   count and the online replay must all reject it.

   Exits non-zero unless workers=4 certifies at least [gate_speedup]x
   faster than workers=1, every point accepts the clean trace, the
   online replay agrees with every point on both traces, and the
   planted cycle is rejected everywhere.  Writes the curve to
   BENCH_certify.json. *)

module BT = Ooser_certify.Bench_trace
module Certify = Ooser_certify.Certify
module Trace = Ooser_certify.Trace
module Incremental = Ooser_core.Incremental

let gate_speedup = 2.5
let worker_points = [ 1; 2; 4; 8 ]

(* default key universe scales with the trace so conflict density per
   segment — and with it the quadratic share of the certifier's work —
   is the same at CI size and at the committed 1M+ size *)
let auto_keys txns = max 256 (txns / 36)

(* largest trace the online baseline replays in full: its cost per
   edge grows with history size (the whole point of going offline), so
   past the cap the baseline runs on a cap-sized trace of the same
   distribution and the big trace's verdict is cross-checked across
   the four worker segmentations instead *)
let default_online_cap = 100_000

type point = {
  p_workers : int;
  p_segments : int;
  p_quiescent : int;
  p_heuristic : int;
  p_act_edges : int;
  p_peak_live : int;
  p_seg_seconds : float;
  p_stitch_seconds : float;
  p_elapsed : float;
  p_txn_per_s : float;
  p_ok : bool;
}

let point_of_report (r : Certify.report) =
  {
    p_workers = r.Certify.workers;
    p_segments = r.Certify.segments;
    p_quiescent = r.Certify.quiescent_cuts;
    p_heuristic = r.Certify.heuristic_cuts;
    p_act_edges = r.Certify.act_edges;
    p_peak_live = r.Certify.peak_live;
    p_seg_seconds = r.Certify.seg_seconds;
    p_stitch_seconds = r.Certify.stitch_seconds;
    p_elapsed = r.Certify.elapsed_seconds;
    p_txn_per_s = r.Certify.segment_txn_per_s;
    p_ok = r.Certify.ok;
  }

(* the online baseline: one incremental certifier over the whole trace
   in commit order, exactly as the engine certifies live traffic; the
   verdict is "no commit was rejected" (the engine aborts a rejected
   transaction and carries on, so replay continues past a rejection) *)
let online_replay trace =
  let t0 = Unix.gettimeofday () in
  let cert = Incremental.create (BT.registry ()) in
  let rejected = ref 0 in
  let n = Trace.length trace in
  for i = 0 to n - 1 do
    let r = Trace.record trace i in
    let outcome =
      Incremental.add_commit cert ~tree:r.Trace.tree ~prims:r.Trace.prims
    in
    if not outcome.Incremental.accepted then incr rejected
  done;
  let stats = Incremental.stats cert in
  ( Unix.gettimeofday () -. t0,
    stats.Incremental.act_edges,
    !rejected = 0 )

let run_curve trace =
  List.map
    (fun w ->
      let r = Certify.run ~workers:w ~registry:(BT.registry ()) trace in
      let p = point_of_report r in
      Fmt.pr
        "  workers=%d  %s  %3d segments (%d quiescent, %d heuristic)  \
         %8d edges  seg %7.2fs  stitch %5.2fs  total %7.2fs  %6.0f txn/s@."
        w
        (if p.p_ok then "ok " else "REJ")
        p.p_segments p.p_quiescent p.p_heuristic p.p_act_edges p.p_seg_seconds
        p.p_stitch_seconds p.p_elapsed p.p_txn_per_s;
      p)
    worker_points

let to_json ~params ~trace_bytes points ~online:(on_txns, on_s, on_edges, on_ok)
    ~planted:(planted_txns, seg_reject, on_reject) ~speedup ~agree ~gate_ok =
  let b = Buffer.create 2048 in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"workload\": {\"txns\": %d, \"keys\": %d, \"calls\": %d, \
        \"burst\": %d, \"p_write\": %g, \"seed\": %d, \"trace_bytes\": %d},\n"
       params.BT.txns params.BT.keys params.BT.calls params.BT.burst
       params.BT.p_write params.BT.seed trace_bytes);
  Buffer.add_string b "  \"curve\": [\n";
  List.iteri
    (fun i p ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"workers\": %d, \"ok\": %b, \"segments\": %d, \
            \"quiescent_cuts\": %d, \"heuristic_cuts\": %d, \"act_edges\": \
            %d, \"peak_live\": %d, \"seg_seconds\": %.3f, \
            \"stitch_seconds\": %.3f, \"elapsed_s\": %.3f, \
            \"txn_per_s\": %.1f}%s\n"
           p.p_workers p.p_ok p.p_segments p.p_quiescent p.p_heuristic
           p.p_act_edges p.p_peak_live p.p_seg_seconds p.p_stitch_seconds
           p.p_elapsed p.p_txn_per_s
           (if i = List.length points - 1 then "" else ",")))
    points;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"online\": {\"txns\": %d, \"elapsed_s\": %.3f, \"act_edges\": %d, \
        \"ok\": %b},\n"
       on_txns on_s on_edges on_ok);
  Buffer.add_string b
    (Printf.sprintf
       "  \"planted_cycle\": {\"txns\": %d, \"segmented_rejects\": %b, \
        \"online_rejects\": %b},\n"
       planted_txns seg_reject on_reject);
  Buffer.add_string b
    (Printf.sprintf
       "  \"speedup_workers4_over_1\": %.2f,\n\
       \  \"verdicts_agree_with_online\": %b,\n\
       \  \"gate\": {\"min_speedup\": %.1f, \"ok\": %b}\n"
       speedup agree gate_speedup gate_ok);
  Buffer.add_string b "}\n";
  Buffer.contents b

let () =
  let out = ref "BENCH_certify.json" in
  let txns = ref 1_000_000 in
  let keys = ref 0 in
  let seed = ref 7 in
  let keep = ref "" in
  let online_cap = ref default_online_cap in
  let rec parse = function
    | [] -> ()
    | "-o" :: path :: rest ->
        out := path;
        parse rest
    | "-n" :: n :: rest ->
        txns := int_of_string n;
        parse rest
    | "-k" :: k :: rest ->
        keys := int_of_string k;
        parse rest
    | "-seed" :: s :: rest ->
        seed := int_of_string s;
        parse rest
    | "-t" :: path :: rest ->
        keep := path;
        parse rest
    | "-online-cap" :: m :: rest ->
        online_cap := int_of_string m;
        parse rest
    | a :: _ ->
        Fmt.epr
          "usage: certify_scaling [-n TXNS] [-k KEYS] [-seed N] [-o FILE] \
           [-t TRACE_FILE] [-online-cap M] (unknown arg %s)@."
          a;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let keys = if !keys > 0 then !keys else auto_keys !txns in
  let params = { BT.default_params with BT.txns = !txns; keys; seed = !seed } in
  let path =
    if !keep <> "" then !keep
    else Filename.temp_file "certify_scaling" ".trc"
  in
  Fmt.pr "generating %d-txn trace (%d keys, bursts of %d) ...@." !txns keys
    params.BT.burst;
  BT.generate ~path params;
  let trace_bytes = (Unix.stat path).Unix.st_size in
  Fmt.pr "trace: %s (%d bytes)@." path trace_bytes;
  let trace = Trace.load path in
  Fmt.pr "@.scaling curve:@.";
  let points = run_curve trace in
  (* online baseline: full trace when affordable, else a cap-sized
     trace of the same distribution (same seed and density), whose
     segmented verdict is compared against the online one *)
  let online_txns = min !txns !online_cap in
  Fmt.pr
    "@.online monolithic replay (the engine's certification path, %d txns):@."
    online_txns;
  let on_s, on_edges, on_ok, on_seg_ok =
    if !txns <= !online_cap then
      let s, e, ok = online_replay trace in
      (s, e, ok, List.for_all (fun p -> p.p_ok) points)
    else begin
      let ci_keys = max 256 (online_txns * keys / !txns) in
      let cparams =
        { params with BT.txns = online_txns; keys = ci_keys }
      in
      let cpath = Filename.temp_file "certify_online" ".trc" in
      BT.generate ~path:cpath cparams;
      let ctrace = Trace.load cpath in
      let seg_ok =
        (Certify.run ~workers:4 ~registry:(BT.registry ()) ctrace).Certify.ok
      in
      let s, e, ok = online_replay ctrace in
      Sys.remove cpath;
      (s, e, ok, seg_ok)
    end
  in
  let online = (online_txns, on_s, on_edges, on_ok) in
  Fmt.pr "  online     %s  %8d edges  total %7.2fs@."
    (if on_ok then "ok " else "REJ")
    on_edges on_s;
  if !keep = "" then Sys.remove path;
  (* rejection side: a small hot trace with one planted cycle must be
     rejected by every worker count and by the online replay *)
  let planted_params =
    {
      BT.default_params with
      BT.txns = 10_000;
      keys = 256;
      seed = !seed;
      plant_cycle = true;
    }
  in
  let ppath = Filename.temp_file "certify_planted" ".trc" in
  BT.generate ~path:ppath planted_params;
  let ptrace = Trace.load ppath in
  let seg_reject =
    List.for_all
      (fun w ->
        not (Certify.run ~workers:w ~registry:(BT.registry ()) ptrace).Certify.ok)
      worker_points
  in
  let _, _, p_on_ok = online_replay ptrace in
  let on_reject = not p_on_ok in
  Sys.remove ppath;
  Fmt.pr
    "planted cycle (%d txns): segmented rejects=%b, online rejects=%b@."
    planted_params.BT.txns seg_reject on_reject;
  let find n = List.find (fun p -> p.p_workers = n) points in
  let t1 = (find 1).p_elapsed and t4 = (find 4).p_elapsed in
  let speedup = if t4 > 0.0 then t1 /. t4 else 0.0 in
  let all_ok = List.for_all (fun p -> p.p_ok) points in
  (* the four worker points are four different segmentations of the
     same trace — their verdicts must match each other and the online
     baseline's on its trace *)
  let unanimous =
    List.for_all (fun p -> p.p_ok = (find 1).p_ok) points
  in
  let agree = unanimous && on_seg_ok = on_ok in
  let gate_ok =
    speedup >= gate_speedup && all_ok && on_ok && agree && seg_reject
    && on_reject
  in
  Fmt.pr "@.workers=4 over workers=1: %.2fx (gate %.1fx)@." speedup
    gate_speedup;
  let json =
    to_json ~params ~trace_bytes points ~online
      ~planted:(planted_params.BT.txns, seg_reject, on_reject)
      ~speedup ~agree ~gate_ok
  in
  let oc = open_out !out in
  output_string oc json;
  close_out oc;
  Fmt.pr "wrote %s@." !out;
  if not gate_ok then begin
    if not all_ok then
      Fmt.epr "GATE FAILED: a worker point rejected the clean trace@.";
    if not on_ok then
      Fmt.epr "GATE FAILED: the online replay rejected the clean trace@.";
    if not (seg_reject && on_reject) then
      Fmt.epr "GATE FAILED: the planted cycle was not rejected everywhere@.";
    if speedup < gate_speedup then
      Fmt.epr "GATE FAILED: speedup %.2fx below %.1fx@." speedup gate_speedup;
    exit 1
  end
