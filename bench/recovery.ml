(* Recovery benchmark (self-contained: no bechamel, so it also runs in
   CI).  Three questions, one JSON report (BENCH_recovery.json):

   1. What does journaling cost on the commit path?  The same seeded
      encyclopedia workload runs on a plain engine, an engine with an
      in-memory operation log, and an engine journaling to a real file
      (fsync at every top commit).  The gate is on the in-memory
      variant — the log-append machinery itself — because the file
      variant's cost is the fsync, which is the price of durability,
      not of the logging design.

   2. How does recovery time scale with log length?  Journaled runs of
      8..64 transactions are replayed through [Engine.recover]
      (re-certification off: it is the acceptance oracle, not part of
      the recovery path).

   3. What does a snapshot buy?  The longest log, recovered from a
      snapshot covering every winner (analysis + (top, attempt) dedup
      only) versus full replay.

   Exits non-zero if the in-memory commit-path overhead exceeds the
   gate (25%). *)

open Ooser_core
open Ooser_oodb
open Ooser_workload
module Protocol = Ooser_cc.Protocol
module Rng = Ooser_sim.Rng
module Oplog = Ooser_recovery.Oplog
module Recovery = Ooser_recovery.Recovery

let gate_pct = 25.0

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let params n =
  {
    Enc_workload.default_params with
    Enc_workload.n_txns = n;
    ops_per_txn = 4;
    preload = 50;
  }

let setup ~seed n = Enc_workload.setup ~rng:(Rng.create ~seed) (params n)

(* One engine run of the seeded workload; only [Engine.run] is timed. *)
let run_once ~seed ?journal n =
  let db, _, txns = setup ~seed n in
  let protocol = Protocol.open_nested ~reg:(Database.spec_registry db) () in
  let config =
    {
      (Engine.default_config protocol) with
      Engine.strategy = Engine.Random_pick (Rng.create ~seed:(seed * 7));
    }
  in
  time (fun () -> Engine.run ~config ?journal db ~protocol txns)

(* -- 1. commit-path overhead -------------------------------------------------- *)

type commit_path = {
  plain_s : float;
  mem_s : float;
  file_s : float;
  mem_overhead_pct : float;
  file_overhead_pct : float;
}

let commit_n = 48
let reps = 7

(* Identical work every repetition (same seed); the minimum is the
   least-noise estimate. *)
let measure mk_journal =
  let best = ref infinity in
  for _ = 1 to reps do
    let j, cleanup = mk_journal () in
    let _, dt = run_once ~seed:5 ?journal:j commit_n in
    cleanup ();
    if dt < !best then best := dt
  done;
  !best

let commit_path () =
  let plain = measure (fun () -> (None, fun () -> ())) in
  let mem = measure (fun () -> (Some (Oplog.create ()), fun () -> ())) in
  let file =
    measure (fun () ->
        let path = Filename.temp_file "bench_oplog" ".bin" in
        let j = Oplog.create ~file:path () in
        ( Some j,
          fun () ->
            Oplog.close j;
            try Sys.remove path with Sys_error _ -> () ))
  in
  let pct base x = 100.0 *. (x -. base) /. base in
  {
    plain_s = plain;
    mem_s = mem;
    file_s = file;
    mem_overhead_pct = pct plain mem;
    file_overhead_pct = pct plain file;
  }

(* -- 2. recovery time vs log length ------------------------------------------- *)

type scale_point = {
  txns : int;
  records : int;
  replayed_calls : int;
  winners : int;
  recover_s : float;
}

let recover_records ?snapshot ~seed n records =
  let db, _, _ = setup ~seed n in
  let protocol = Protocol.open_nested ~reg:(Database.spec_registry db) () in
  time (fun () ->
      Engine.recover ?snapshot ~recertify:false db ~protocol
        (Oplog.of_records records))

let scaling_point ~seed n =
  let journal = Oplog.create () in
  let _ = run_once ~seed ~journal n in
  let records = Oplog.all journal in
  (* warm once, then take the best of three *)
  let best = ref infinity in
  let last = ref None in
  for _ = 1 to 3 do
    let (_, report), dt = recover_records ~seed n records in
    last := Some report;
    if dt < !best then best := dt
  done;
  let report = Option.get !last in
  ( {
      txns = n;
      records = List.length records;
      replayed_calls = report.Engine.replayed_calls;
      winners = List.length report.Engine.rec_winners;
      recover_s = !best;
    },
    records )

(* -- 3. snapshot restore vs full replay ---------------------------------------- *)

type snapshot_cmp = {
  snap_txns : int;
  full_replay_s : float;
  snapshot_restore_s : float;
  speedup : float;
}

let snapshot_cmp ~seed n records full_s =
  let plan = Recovery.analyze records in
  let snap = Recovery.snapshot_of plan in
  let best = ref infinity in
  for _ = 1 to 3 do
    let _, dt = recover_records ~snapshot:snap ~seed n records in
    if dt < !best then best := dt
  done;
  {
    snap_txns = n;
    full_replay_s = full_s;
    snapshot_restore_s = !best;
    speedup = full_s /. !best;
  }

(* -- report -------------------------------------------------------------------- *)

let to_json cp points sc =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"workload\": {\"db\": \"encyclopedia\", \"protocol\": \"open\", \
        \"ops_per_txn\": 4, \"preload\": 50},\n");
  Buffer.add_string b
    (Printf.sprintf
       "  \"commit_path\": {\"txns\": %d, \"plain_s\": %.6f, \
        \"journal_mem_s\": %.6f, \"journal_file_s\": %.6f, \
        \"mem_overhead_pct\": %.1f, \"file_overhead_pct\": %.1f, \
        \"gate_pct\": %.1f, \"gate_ok\": %b},\n"
       commit_n cp.plain_s cp.mem_s cp.file_s cp.mem_overhead_pct
       cp.file_overhead_pct gate_pct
       (cp.mem_overhead_pct <= gate_pct));
  Buffer.add_string b "  \"recovery_scaling\": [\n";
  List.iteri
    (fun i p ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"txns\": %d, \"records\": %d, \"replayed_calls\": %d, \
            \"winners\": %d, \"recover_s\": %.6f}%s\n"
           p.txns p.records p.replayed_calls p.winners p.recover_s
           (if i = List.length points - 1 then "" else ",")))
    points;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"snapshot\": {\"txns\": %d, \"full_replay_s\": %.6f, \
        \"snapshot_restore_s\": %.6f, \"speedup\": %.2f}\n"
       sc.snap_txns sc.full_replay_s sc.snapshot_restore_s sc.speedup);
  Buffer.add_string b "}\n";
  Buffer.contents b

let () =
  let out = ref "BENCH_recovery.json" in
  let rec parse = function
    | [] -> ()
    | "-o" :: path :: rest ->
        out := path;
        parse rest
    | a :: _ ->
        Fmt.epr "usage: recovery [-o FILE] (unknown arg %s)@." a;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  Fmt.pr "commit-path overhead (%d txns, min of %d runs):@." commit_n reps;
  let cp = commit_path () in
  Fmt.pr "  plain        %.3f ms@." (1000. *. cp.plain_s);
  Fmt.pr "  journal mem  %.3f ms  (+%.1f%%)@." (1000. *. cp.mem_s)
    cp.mem_overhead_pct;
  Fmt.pr "  journal file %.3f ms  (+%.1f%%, fsync per commit)@."
    (1000. *. cp.file_s) cp.file_overhead_pct;
  Fmt.pr "@.recovery time vs log length:@.";
  let points, longest =
    List.fold_left
      (fun (acc, _) n ->
        let p, records = scaling_point ~seed:11 n in
        Fmt.pr "  %3d txns  %4d records  %4d calls replayed  %.3f ms@." p.txns
          p.records p.replayed_calls (1000. *. p.recover_s);
        (acc @ [ p ], (n, records, p.recover_s)))
      ([], (0, [], 0.0))
      [ 8; 16; 32; 64 ]
  in
  let n, records, full_s = longest in
  let sc = snapshot_cmp ~seed:11 n records full_s in
  Fmt.pr "@.snapshot restore (%d txns): %.3f ms vs %.3f ms full replay \
          (%.2fx)@."
    n
    (1000. *. sc.snapshot_restore_s)
    (1000. *. sc.full_replay_s)
    sc.speedup;
  let json = to_json cp points sc in
  let oc = open_out !out in
  output_string oc json;
  close_out oc;
  Fmt.pr "@.wrote %s@." !out;
  if cp.mem_overhead_pct > gate_pct then begin
    Fmt.epr
      "GATE FAILED: in-memory journal overhead %.1f%% exceeds %.1f%%@."
      cp.mem_overhead_pct gate_pct;
    exit 1
  end
