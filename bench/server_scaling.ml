(* Shard scaling curve (self-contained: no bechamel, so it also runs
   in CI).  One question: what does partitioning the object space
   across shard engines buy under a contended closed-loop workload?

   For each point shards ∈ {1, 2, 4, 8} the harness boots a fresh
   sharded server on a unix socket with its select loop on a dedicated
   domain (same shape as the CI smoke's separate server process),
   drives it with the stock loadgen mix (16 sessions, shard-affine
   routing with a small per-call cross-shard excursion rate, so most
   transactions are single-shard but 2PC is exercised at every
   multi-shard point), sends SHUTDOWN, and
   requires a certified drain.  The curve isolates what the shard
   domains contribute: smaller lock tables, shorter wound chains, and
   per-shard certifier work instead of one global certifier.

   Exits non-zero unless the shards=4 point reaches [gate_speedup]x
   the shards=1 throughput, every point's committed history is
   certified oo-serializable by the server, and every multi-shard
   point actually committed cross-shard transactions (the certified
   flag must cover real 2PC traffic, not its absence).  Writes the
   curve to BENCH_server.json. *)

module Server = Ooser_server.Server
module Loadgen = Ooser_server.Loadgen
module Dispatcher = Ooser_shard.Dispatcher
module Stats = Ooser_sim.Stats

let gate_speedup = 3.0
let shard_points = [ 1; 2; 4; 8 ]

type point = {
  shards : int;
  committed : int;
  aborted : int;
  elapsed : float;
  throughput : float;
  p50 : float;
  p95 : float;
  cross_commits : int;
  two_pc_aborts : int;
  certified : bool;
}

let temp_sock () =
  let path = Filename.temp_file "oosdb_scaling" ".sock" in
  Sys.remove path;
  path

let counter counters name =
  match List.assoc_opt name counters with Some n -> n | None -> 0

let run_point ~sessions ~txns ~calls ~preload ~seed ~cross shards =
  let sock = temp_sock () in
  let config =
    {
      (Server.default_config (Server.Unix_sock sock)) with
      Server.db_kind = `Encyclopedia;
      protocol_kind = `Open;
      shards;
      preload;
      name = Printf.sprintf "scaling-%d" shards;
    }
  in
  let srv = Server.create config in
  let server_domain = Domain.spawn (fun () -> Server.serve srv) in
  Fun.protect
    ~finally:(fun () ->
      Server.close srv;
      (try Sys.remove sock with Sys_error _ -> ()))
    (fun () ->
      let cfg =
        {
          (Loadgen.default_cfg (Server.sockaddr_of config.Server.addr)) with
          Loadgen.sessions;
          txns_per_session = txns;
          calls_per_txn = calls;
          key_universe = preload;
          seed;
          route_shards = shards;
          cross;
          shutdown = true;
        }
      in
      let r = Loadgen.run cfg in
      (* the SHUTDOWN drains the server and its serve loop returns,
         joining the shard domains; then the final counters are stable *)
      Domain.join server_domain;
      let counters =
        match Server.dispatcher srv with
        | Some d -> Dispatcher.counters d
        | None -> []
      in
      let q p = Stats.Histogram.quantile r.Loadgen.latency p in
      {
        shards;
        committed = r.Loadgen.committed;
        aborted = r.Loadgen.aborted;
        elapsed = r.Loadgen.elapsed;
        throughput = r.Loadgen.throughput;
        p50 = q 0.50;
        p95 = q 0.95;
        cross_commits = counter counters "cross-shard-commits";
        two_pc_aborts = counter counters "2pc-aborts";
        certified = r.Loadgen.certified = Some true;
      })

let to_json ~sessions ~txns ~calls ~cross points ~speedup ~gate_ok =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"workload\": {\"db\": \"encyclopedia\", \"protocol\": \"open\", \
        \"sessions\": %d, \"txns_per_session\": %d, \"calls_per_txn\": %d, \
        \"cross_per_call\": %g},\n"
       sessions txns calls cross);
  Buffer.add_string b "  \"curve\": [\n";
  List.iteri
    (fun i p ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"shards\": %d, \"committed\": %d, \"aborted\": %d, \
            \"elapsed_s\": %.3f, \"throughput_txn_per_s\": %.1f, \
            \"latency_p50_s\": %.6f, \"latency_p95_s\": %.6f, \
            \"cross_shard_commits\": %d, \"2pc_aborts\": %d, \
            \"certified\": %b}%s\n"
           p.shards p.committed p.aborted p.elapsed p.throughput p.p50 p.p95
           p.cross_commits p.two_pc_aborts p.certified
           (if i = List.length points - 1 then "" else ",")))
    points;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"speedup_shards4_over_1\": %.2f,\n\
       \  \"gate\": {\"min_speedup\": %.1f, \"ok\": %b}\n"
       speedup gate_speedup gate_ok);
  Buffer.add_string b "}\n";
  Buffer.contents b

let () =
  let out = ref "BENCH_server.json" in
  let txns = ref 8 in
  let cross = ref 0.02 in
  let rec parse = function
    | [] -> ()
    | "-o" :: path :: rest ->
        out := path;
        parse rest
    | "-n" :: n :: rest ->
        txns := int_of_string n;
        parse rest
    | "-x" :: x :: rest ->
        cross := float_of_string x;
        parse rest
    | a :: _ ->
        Fmt.epr "usage: server_scaling [-o FILE] [-n TXNS_PER_SESSION] \
                 [-x CROSS_PER_CALL] (unknown arg %s)@." a;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let sessions = 16 and calls = 4 and preload = 64 and seed = 42 in
  Fmt.pr "shard scaling (%d sessions, %d txns each, %d calls per txn):@."
    sessions !txns calls;
  let points =
    List.map
      (fun shards ->
        let p = run_point ~sessions ~txns:!txns ~calls ~preload ~seed ~cross:!cross shards in
        Fmt.pr
          "  shards=%d  %3d committed  %2d aborted  %6.1f txn/s  p95 %.3fs  \
           %d cross-shard  certified=%b@."
          p.shards p.committed p.aborted p.throughput p.p95 p.cross_commits
          p.certified;
        p)
      shard_points
  in
  let find n = List.find (fun p -> p.shards = n) points in
  let t1 = (find 1).throughput and t4 = (find 4).throughput in
  let speedup = if t1 > 0.0 then t4 /. t1 else 0.0 in
  let all_certified = List.for_all (fun p -> p.certified) points in
  let all_committed = List.for_all (fun p -> p.committed > 0) points in
  let crossed =
    List.for_all (fun p -> p.shards = 1 || p.cross_commits > 0) points
  in
  let gate_ok =
    speedup >= gate_speedup && all_certified && all_committed && crossed
  in
  Fmt.pr "@.shards=4 over shards=1: %.2fx (gate %.1fx)@." speedup gate_speedup;
  let json = to_json ~sessions ~txns:!txns ~calls ~cross:!cross points ~speedup ~gate_ok in
  let oc = open_out !out in
  output_string oc json;
  close_out oc;
  Fmt.pr "wrote %s@." !out;
  if not gate_ok then begin
    if not all_certified then
      Fmt.epr "GATE FAILED: a point's committed history was not certified@.";
    if not all_committed then
      Fmt.epr "GATE FAILED: a point committed nothing@.";
    if not crossed then
      Fmt.epr
        "GATE FAILED: a multi-shard point committed no cross-shard \
         transactions@.";
    if speedup < gate_speedup then
      Fmt.epr "GATE FAILED: speedup %.2fx below %.1fx@." speedup gate_speedup;
    exit 1
  end
