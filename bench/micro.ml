(* Bechamel micro-benchmarks: the cost of the core machinery itself — one
   Test.make per subsystem (checker, extension, B+ tree, engine, lock
   table, random schedules).  Estimated execution time is printed as a
   table (ns/run via ordinary least squares on the monotonic clock). *)

open Bechamel
open Toolkit
open Ooser_core
open Ooser_oodb
open Ooser_workload
module Protocol = Ooser_cc.Protocol
module Rng = Ooser_sim.Rng
module Btree = Ooser_btree.Btree
open Ooser_storage

let checker_test =
  let h = Paper_examples.example4_serial () in
  Test.make ~name:"checker/example4"
    (Staged.stage (fun () -> ignore (Serializability.check h)))

let extension_test =
  let h = Paper_examples.example3_history () in
  Test.make ~name:"extension/virtual-objects"
    (Staged.stage (fun () -> ignore (Extension.extend h)))

let conventional_test =
  let h = Paper_examples.example4_serial () in
  Test.make ~name:"checker/conventional"
    (Staged.stage (fun () -> ignore (Baselines.conventional_serializable h)))

let random_history_test =
  let p = Random_schedules.default_params in
  let counter = ref 0 in
  Test.make ~name:"workload/random-history"
    (Staged.stage (fun () ->
         incr counter;
         ignore (Random_schedules.history ~seed:!counter p)))

let btree_insert_test =
  Test.make ~name:"btree/100-inserts"
    (Staged.stage (fun () ->
         let disk = Disk.create ~page_size:4096 () in
         let pool = Buffer_pool.create ~capacity:64 disk in
         let t = Btree.create ~max_entries:8 pool in
         for i = 1 to 100 do
           Btree.insert t (Printf.sprintf "k%03d" (i * 7 mod 100)) "v"
         done))

let btree_search_test =
  let disk = Disk.create ~page_size:4096 () in
  let pool = Buffer_pool.create ~capacity:64 disk in
  let t = Btree.create ~max_entries:8 pool in
  let () =
    for i = 1 to 500 do
      Btree.insert t (Printf.sprintf "k%03d" i) "v"
    done
  in
  let counter = ref 0 in
  Test.make ~name:"btree/search"
    (Staged.stage (fun () ->
         incr counter;
         ignore (Btree.search t (Printf.sprintf "k%03d" (!counter mod 500)))))

let engine_test =
  Test.make ~name:"engine/2-txns-open-nested"
    (Staged.stage (fun () ->
         let db = Database.create () in
         let state = ref 0 in
         let write ctx args =
           match args with
           | [ Value.Int v ] ->
               let old = !state in
               Runtime.on_undo ctx (fun () -> state := old);
               state := v;
               Value.unit
           | _ -> invalid_arg "write"
         in
         Database.register db (Obj_id.v "R")
           ~spec:(Commutativity.rw ~reads:[] ~writes:[ "write" ])
           [ ("write", Database.primitive write) ];
         let body i ctx =
           ignore (Runtime.call ctx (Obj_id.v "R") "write" [ Value.int i ]);
           Value.unit
         in
         let protocol = Protocol.open_nested ~reg:(Database.spec_registry db) () in
         ignore (Engine.run db ~protocol [ (1, "a", body 1); (2, "b", body 2) ])))

let page_test =
  Test.make ~name:"storage/page-insert-delete"
    (Staged.stage (fun () ->
         let p = Page.create ~size:512 () in
         let s0 = Option.get (Page.insert p "hello world") in
         ignore (Page.delete p s0)))

let recovery_test =
  Test.make ~name:"storage/log-crash-recover"
    (Staged.stage (fun () ->
         let s = Logged_store.create ~page_size:256 () in
         let p = Logged_store.alloc_page s in
         Logged_store.begin_txn s 1;
         Logged_store.write s ~txn:1 ~page:p ~slot:0 (Some "v");
         Logged_store.commit s 1;
         Logged_store.begin_txn s 2;
         Logged_store.write s ~txn:2 ~page:p ~slot:1 (Some "w");
         let s' = Logged_store.crash s in
         ignore (Logged_store.recover s')))

(* The WAL append hot path (now a growable array rather than a cons
   list) and the cached-write path through the Hashtbl page cache. *)
let wal_append_test =
  Test.make ~name:"storage/wal-1000-appends"
    (Staged.stage (fun () ->
         let w = Wal.create () in
         for i = 1 to 1000 do
           ignore
             (Wal.append w
                (Wal.Update
                   { txn = 1; page = i land 7; slot = i land 15;
                     before = None; after = Some "v" }))
         done;
         Wal.force w))

let logged_write_test =
  let s = Logged_store.create ~page_size:4096 () in
  let pages = Array.init 16 (fun _ -> Logged_store.alloc_page s) in
  let () = Logged_store.begin_txn s 1 in
  let counter = ref 0 in
  Test.make ~name:"storage/logged-store-write"
    (Staged.stage (fun () ->
         incr counter;
         let pid = pages.(!counter land 15) in
         Logged_store.write s ~txn:1 ~page:pid ~slot:(!counter land 7)
           (Some "payload")))

let explain_test =
  let h = Paper_examples.example1_same_key () in
  Test.make ~name:"report/explain"
    (Staged.stage (fun () -> ignore (Report.explain h)))

(* One commutativity decision, memoised-probe path vs the dense table a
   static atlas preloads (Engine.preload_atlas) — the per-request cost
   the one-probe class skip pays at every lock request. *)
let commut_probe_test, commut_table_test =
  let mk top obj meth =
    Action.v
      ~id:(Ids.Action_id.v ~top ~path:[ 1 ])
      ~obj ~meth ~args:[ Value.int 0 ]
      ~process:(Ids.Process_id.main top)
      ()
  in
  let pairs =
    List.concat_map
      (fun name ->
        let obj = Obj_id.v name in
        [
          (mk 1 obj "read", mk 2 obj "write");
          (mk 1 obj "write", mk 2 obj "write");
          (mk 1 obj "read", mk 2 obj "read");
        ])
      [ "HOT"; "W1"; "W2"; "W3" ]
  in
  let test name cache =
    (* warm outside the staged thunk so steady-state lookups are timed *)
    List.iter (fun (a, b) -> ignore (Commutativity.cached_test cache a b)) pairs;
    Test.make ~name
      (Staged.stage (fun () ->
           List.iter
             (fun (a, b) -> ignore (Commutativity.cached_test cache a b))
             pairs))
  in
  let probe_cache = Commutativity.cached Cert_bench.registry in
  let table_cache = Commutativity.cached Cert_bench.registry in
  Commutativity.preload table_cache (Cert_bench.atlas_table ~n:8 ());
  ( test "commutativity/12-probe-lookups" probe_cache,
    test "commutativity/12-atlas-lookups" table_cache )

(* Same decision benchmark on the spec-inference output: set/directory
   probes answered by the hand specs (keyed predicate dispatch) vs the
   inferred argument-independent table (Infer.run, DESIGN §16). *)
let infer_probe_test, infer_table_test =
  let mk top obj meth args =
    Action.v
      ~id:(Ids.Action_id.v ~top ~path:[ 1 ])
      ~obj:(Obj_id.v obj) ~meth ~args
      ~process:(Ids.Process_id.main top)
      ()
  in
  let a = Value.str "a" and b = Value.str "b" in
  let pairs =
    [
      (mk 1 "set" "insert" [ a ], mk 2 "set" "insert" [ b ]);
      (mk 1 "set" "contains" [ a ], mk 2 "set" "cardinal" []);
      (mk 1 "set" "insert" [ a ], mk 2 "set" "cardinal" []);
      (mk 1 "dir" "lookup" [ a ], mk 2 "dir" "lookup" [ b ]);
      (mk 1 "dir" "list" [], mk 2 "dir" "bind" [ a; Value.int 1 ]);
      (mk 1 "dir" "list" [], mk 2 "dir" "lookup" [ a ]);
    ]
  in
  let test name cache =
    List.iter (fun (p, q) -> ignore (Commutativity.cached_test cache p q)) pairs;
    Test.make ~name
      (Staged.stage (fun () ->
           List.iter
             (fun (p, q) -> ignore (Commutativity.cached_test cache p q))
             pairs))
  in
  let target = Lint_targets.adts () in
  let inferred = Ooser_analysis.Infer.run target in
  let reg = target.Ooser_analysis.Lint.registry in
  let probe_cache = Commutativity.cached reg in
  let table_cache = Commutativity.cached reg in
  Commutativity.preload table_cache inferred.Ooser_analysis.Infer.table;
  ( test "commutativity/6-hand-spec-probes" probe_cache,
    test "commutativity/6-inferred-table-lookups" table_cache )

let tests =
  Test.make_grouped ~name:"ooser"
    [
      checker_test; extension_test; conventional_test; random_history_test;
      btree_insert_test; btree_search_test; engine_test; page_test;
      recovery_test; wal_append_test; logged_write_test; explain_test;
      commut_probe_test; commut_table_test; infer_probe_test;
      infer_table_test;
    ]

let run ?(quota = 0.5) () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:None ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (x :: _) -> Printf.sprintf "%.0f" x
          | _ -> "-"
        in
        let r2 =
          match Analyze.OLS.r_square ols with
          | Some r -> Printf.sprintf "%.4f" r
          | None -> "-"
        in
        [ name; ns; r2 ] :: acc)
      results []
    |> List.sort compare
  in
  Tables.print ~title:"micro-benchmarks (bechamel, ns/run)"
    ~header:[ "benchmark"; "ns/run"; "r²" ]
    rows
