(* Protocol comparison on the escrow-heavy banking mix: abort rate and
   throughput of open nested locking, closed nested locking, and the
   multiversion optimistic protocol under commute-mode and rw-mode
   validation, across zipf account-selection skews.

     dune exec bench/protocol_compare.exe           # table to stdout,
                                                    # JSON to BENCH_protocols.json
     dune exec bench/protocol_compare.exe -- -n 64 -o out.json

   Every datapoint's committed history is certified oo-serializable —
   occ points against the store's multiversion order, lock points
   against the engine's execution order.  Exits non-zero unless
   occ(commute)'s abort rate is strictly below occ(rw)'s at every skew:
   the escrow deposits/withdraws that rw-validation (first committer
   wins on any same-object access) must abort are exactly the ones the
   commutativity probes admit. *)

open Ooser_core
open Ooser_oodb
module Protocol = Ooser_cc.Protocol
module Rng = Ooser_sim.Rng
module Dist = Ooser_sim.Dist
module Banking = Ooser_workload.Banking
module Occ = Ooser_occ

type point = {
  theta : float;
  committed : int;
  attempts : int;
  aborted_attempts : int;
  abort_rate : float;
  throughput : float;  (* committed txn/s, wall clock *)
  certified : bool;
}

type curve = { proto : string; points : point list }

(* Balances sit far from the escrow bounds so the state-dependent escrow
   probe answers the same at any probe state: deposits and withdraws
   always commute.  That keeps the post-hoc certification of the lock
   histories sound (near a bound, a final-state probe would report
   conflicts that did not exist at grant time), and it is precisely the
   regime where rw validation pays: every same-account access still
   aborts under occ(rw) while occ(commute) sails through. *)
let accounts = 32

let params ~txns ~theta =
  {
    Banking.default_params with
    Banking.n_txns = txns;
    accounts;
    initial = 10_000;
    dist =
      (if theta = 0.0 then Dist.uniform accounts
       else Dist.zipf ~theta accounts);
  }

(* The same seed builds the same transfer bodies for every protocol, so
   the curves differ only in concurrency control. *)
let bodies ~seed p = Banking.transactions ~rng:(Rng.create ~seed) p

let measure ~proto_name ~protocol ~db ~history_of ~seed p =
  let config =
    {
      (Engine.default_config protocol) with
      Engine.strategy = Engine.Random_pick (Rng.create ~seed:(seed + 1));
      max_steps = 2_000_000;
    }
  in
  let t0 = Unix.gettimeofday () in
  let out = Engine.run ~config db ~protocol (bodies ~seed p) in
  let elapsed = Unix.gettimeofday () -. t0 in
  let counter k =
    match List.assoc_opt k out.Engine.metrics with Some v -> v | None -> 0
  in
  let committed = List.length out.Engine.committed in
  let attempts = counter "starts" in
  let aborted = attempts - committed in
  ignore proto_name;
  {
    theta = 0.0 (* patched by caller *);
    committed;
    attempts;
    aborted_attempts = aborted;
    abort_rate =
      (if attempts > 0 then float_of_int aborted /. float_of_int attempts
       else 0.0);
    throughput =
      (if elapsed > 0.0 then float_of_int committed /. elapsed else 0.0);
    certified = Serializability.oo_serializable (history_of out);
  }

let lock_point ~ctor ~seed ~theta ~txns =
  let p = params ~txns ~theta in
  let db, _accounts = Banking.setup ~semantics:`Escrow p in
  let protocol = ctor ~reg:(Database.spec_registry db) () in
  {
    (measure ~proto_name:"lock" ~protocol ~db
       ~history_of:(fun out -> out.Engine.history)
       ~seed p)
    with
    theta;
  }

let occ_point ~mode ~seed ~theta ~txns =
  let p = params ~txns ~theta in
  let db, store =
    Occ.Workloads.setup_banking ~mode ~accounts:p.Banking.accounts
      ~balance:p.Banking.initial ~low:p.Banking.low ~high:p.Banking.high ()
  in
  let protocol = Occ.Store.protocol store in
  {
    (measure ~proto_name:"occ" ~protocol ~db
       ~history_of:(fun _ -> Occ.Store.history store)
       ~seed p)
    with
    theta;
  }

let json_of_point pt =
  Printf.sprintf
    "{\"theta\": %.2f, \"committed\": %d, \"attempts\": %d, \
     \"aborted_attempts\": %d, \"abort_rate\": %.4f, \
     \"throughput_txn_s\": %.1f, \"certified\": %b}"
    pt.theta pt.committed pt.attempts pt.aborted_attempts pt.abort_rate
    pt.throughput pt.certified

let json_of_curve c =
  Printf.sprintf "    {\"protocol\": %S, \"points\": [\n      %s\n    ]}"
    c.proto
    (String.concat ",\n      " (List.map json_of_point c.points))

let () =
  let txns = ref 64 and out = ref "BENCH_protocols.json" and seed = ref 11 in
  let rec parse = function
    | "-n" :: v :: rest ->
        txns := int_of_string v;
        parse rest
    | "-o" :: v :: rest ->
        out := v;
        parse rest
    | "-seed" :: v :: rest ->
        seed := int_of_string v;
        parse rest
    | [] -> ()
    | a :: _ ->
        Fmt.epr
          "protocol_compare: unknown argument %s (expected -n INT, -o FILE, \
           -seed INT)@."
          a;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let thetas = [ 0.0; 0.8; 1.2 ] in
  let curves =
    [
      ( "open_nested",
        fun theta ->
          lock_point ~ctor:Protocol.open_nested ~seed:!seed ~theta ~txns:!txns
      );
      ( "closed_nested",
        fun theta ->
          lock_point ~ctor:Protocol.closed_nested ~seed:!seed ~theta
            ~txns:!txns );
      ( "occ_commute",
        fun theta ->
          occ_point ~mode:Occ.Store.Commute ~seed:!seed ~theta ~txns:!txns );
      ( "occ_rw",
        fun theta ->
          occ_point ~mode:Occ.Store.Rw ~seed:!seed ~theta ~txns:!txns );
    ]
  in
  let curves =
    List.map
      (fun (name, f) -> { proto = name; points = List.map f thetas })
      curves
  in
  Fmt.pr "escrow banking mix: %d txns, %d accounts, skews %a@." !txns accounts
    Fmt.(list ~sep:comma float)
    thetas;
  Fmt.pr "%-14s %6s %9s %9s %11s %10s@." "protocol" "theta" "committed"
    "abort%" "txn/s" "certified";
  List.iter
    (fun c ->
      List.iter
        (fun pt ->
          Fmt.pr "%-14s %6.2f %9d %8.1f%% %11.1f %10b@." c.proto pt.theta
            pt.committed (100.0 *. pt.abort_rate) pt.throughput pt.certified)
        c.points)
    curves;
  let find name =
    List.find (fun c -> c.proto = name) curves
  in
  let gate =
    List.map
      (fun theta ->
        let rate c =
          (List.find (fun pt -> pt.theta = theta) (find c).points).abort_rate
        in
        (theta, rate "occ_commute", rate "occ_rw"))
      thetas
  in
  let gate_ok =
    List.for_all (fun (_, commute, rw) -> commute < rw) gate
  in
  let all_certified =
    List.for_all (fun c -> List.for_all (fun pt -> pt.certified) c.points)
      curves
  in
  let oc = open_out !out in
  Printf.fprintf oc
    "{\n\
    \  \"workload\": {\"kind\": \"banking-escrow\", \"accounts\": %d, \
     \"txns\": %d, \"transfers_per_txn\": %d, \"seed\": %d},\n\
    \  \"skews\": [%s],\n\
    \  \"protocols\": [\n\
     %s\n\
    \  ],\n\
    \  \"gate\": {\"occ_commute_abort_lt_occ_rw\": %b, \"per_theta\": [%s]},\n\
    \  \"all_certified\": %b\n\
     }\n"
    accounts !txns Banking.default_params.Banking.transfers_per_txn !seed
    (String.concat ", " (List.map (Printf.sprintf "%.2f") thetas))
    (String.concat ",\n" (List.map json_of_curve curves))
    gate_ok
    (String.concat ", "
       (List.map
          (fun (theta, commute, rw) ->
            Printf.sprintf
              "{\"theta\": %.2f, \"occ_commute\": %.4f, \"occ_rw\": %.4f}"
              theta commute rw)
          gate))
    all_certified;
  close_out oc;
  Fmt.pr "wrote %s@." !out;
  if not all_certified then begin
    Fmt.epr "protocol_compare: a committed history failed certification@.";
    exit 1
  end;
  if not gate_ok then begin
    Fmt.epr
      "protocol_compare: occ(commute) abort rate is NOT strictly below \
       occ(rw) at every skew@.";
    exit 1
  end
