(* Certification scaling: incremental certify-per-commit cost vs history
   length, against the from-scratch checker.

     dune exec bench/scaling.exe                    # table to stdout,
                                                    # JSON to BENCH_incremental.json
     dune exec bench/scaling.exe -- -n 300 -o out.json

   The JSON payload carries the raw series plus the two headline
   booleans: incremental_sublinear and scratch_superlinear. *)

module Cert_bench = Ooser_workload.Cert_bench

let () =
  let n = ref 600 and out = ref "BENCH_incremental.json" in
  let rec parse = function
    | "-n" :: v :: rest ->
        n := int_of_string v;
        parse rest
    | "-o" :: v :: rest ->
        out := v;
        parse rest
    | [] -> ()
    | a :: _ ->
        Fmt.epr "scaling: unknown argument %s (expected -n INT, -o FILE)@." a;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let samples =
    List.filter (fun s -> s <= !n) [ 50; 150; 300; 600; !n ]
    |> List.sort_uniq Int.compare
  in
  let r = Cert_bench.run ~n:!n ~samples () in
  Fmt.pr "%a@." Cert_bench.pp r;
  let oc = open_out !out in
  output_string oc (Cert_bench.to_json r);
  output_string oc "\n";
  close_out oc;
  Fmt.pr "wrote %s@." !out;
  if not r.Cert_bench.incremental_sublinear then begin
    Fmt.epr "scaling: incremental per-commit cost is NOT sub-linear@.";
    exit 1
  end;
  if not r.Cert_bench.atlas.Cert_bench.parity then begin
    Fmt.epr
      "scaling: engine with preloaded atlas diverged from the probe path@.";
    exit 1
  end
