(* oosdb — command line interface to the oo-serializability toolkit.

     oosdb check FILE [-v]        check a history description file
     oosdb fmt FILE               reprint a file canonically
     oosdb run [options]          run an encyclopedia workload
     oosdb acceptance [options]   acceptance rates of random interleavings
     oosdb bench [--json FILE]    certification scaling benchmark
     oosdb lint [options]         static analysis of specs and programs
     oosdb analyze [options]      whole-workload static conflict atlas
     oosdb demo                   the paper's Example 4, with dependency table
     oosdb serve [options]        network transaction server (loopback/unix)
     oosdb recover DIR [options]  replay and re-certify a durable directory
     oosdb certify FILE [options] certify a recorded history trace offline
     oosdb client [options]       one-shot scripted transaction against a server
     oosdb loadgen [options]      closed-loop load generator against a server
*)

open Cmdliner
open Ooser_core
open Ooser_text
open Ooser_oodb
open Ooser_workload
module Protocol = Ooser_cc.Protocol
module Rng = Ooser_sim.Rng
module Occ = Ooser_occ

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* -- check ----------------------------------------------------------------- *)

let print_verdicts ?(explain = false) ~verbose h =
  let v = Serializability.check h in
  Fmt.pr "transactions:                %d@." (List.length (History.tops h));
  Fmt.pr "primitive actions:           %d@." (List.length (History.order h));
  Fmt.pr "oo-serializable:             %b@." v.Serializability.oo_serializable;
  Fmt.pr "conventionally serializable: %b@."
    (Baselines.conventional_serializable h);
  if Baselines.is_layered h then
    Fmt.pr "multilevel serializable:     %b@."
      (Baselines.multilevel_serializable h);
  (match v.Serializability.witness with
  | Some w ->
      Fmt.pr "equivalent serial order:     %a@."
        (Fmt.list ~sep:Fmt.sp Ids.Action_id.pp) w
  | None -> ());
  if verbose then begin
    Fmt.pr "@.per-object verdicts:@.";
    List.iter
      (fun ov -> Fmt.pr "  %a@." Serializability.pp_object_verdict ov)
      v.Serializability.objects;
    let sched = Schedule.compute h in
    Fmt.pr "@.per-object transaction dependencies:@.";
    List.iter
      (fun os ->
        let deps = Action.Rel.edges os.Schedule.txn_dep in
        if deps <> [] then
          Fmt.pr "  %-14s %a@."
            (Obj_id.to_string os.Schedule.obj)
            (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (a, b) ->
                 Fmt.pf ppf "%a -> %a" Ids.Action_id.pp a Ids.Action_id.pp b))
            deps)
      (Schedule.objects sched)
  end;
  if explain then begin
    Fmt.pr "@.explanation:@.%s@." (Report.explain h)
  end;
  if v.Serializability.oo_serializable then 0 else 1

let check_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"History description file (see the grammar in the README).")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Per-object detail.")
  in
  let explain =
    Arg.(value & flag
         & info [ "explain" ]
             ~doc:"Trace every dependency (and any cycle) to its roots.")
  in
  let run file verbose explain =
    match Parser.parse_history (read_file file) with
    | Error msg ->
        Fmt.epr "error: %s@." msg;
        2
    | Ok h -> print_verdicts ~explain ~verbose h
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Check the oo-serializability of a history description file.")
    Term.(const run $ file $ verbose $ explain)

(* -- fmt ------------------------------------------------------------------- *)

let fmt_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
  in
  let run file =
    match Parser.parse_string (read_file file) with
    | Error msg ->
        Fmt.epr "error: %s@." msg;
        2
    | Ok doc ->
        print_string (Doc.to_string doc);
        0
  in
  Cmd.v
    (Cmd.info "fmt" ~doc:"Reprint a history description file canonically.")
    Term.(const run $ file)

(* -- run --------------------------------------------------------------------- *)

let protocol_conv =
  Arg.enum
    [ ("open", `Open); ("flat", `Flat); ("closed", `Closed); ("none", `None);
      ("certify", `Certify); ("occ", `Occ); ("occ-rw", `Occ_rw) ]

let occ_validate_conv = Arg.enum [ ("commute", `Commute); ("rw", `Rw) ]

let occ_validate_arg =
  Arg.(
    value
    & opt occ_validate_conv `Commute
    & info [ "occ-validate" ]
        ~doc:
          "Validation mode for $(b,-p occ): $(b,commute) probes the \
           registered commutativity specs (escrow deposits admit each \
           other), $(b,rw) validates the read/write projection — the \
           plain-SSI baseline.  $(b,-p occ-rw) is shorthand for $(b,-p occ \
           --occ-validate rw).")

let resolve_occ protocol occ_validate =
  match (protocol, occ_validate) with
  | `Occ, `Rw -> `Occ_rw
  | p, _ -> p

(* The occ engine run: the multiversion store registers the database, so
   the workload is the escrow banking mix (occ's model coverage) rather
   than the encyclopedia.  The certifiable history is the store's
   multiversion order — the engine's raw execution order can place a
   snapshot read after a concurrent commit it did not observe. *)
let run_occ ~txns ~seed mode =
  let p = { Banking.default_params with Banking.n_txns = txns } in
  let db, store =
    Occ.Workloads.setup_banking ~mode ~accounts:p.Banking.accounts
      ~balance:p.Banking.initial ~low:p.Banking.low ~high:p.Banking.high ()
  in
  let bodies = Banking.transactions ~rng:(Rng.create ~seed) p in
  let protocol = Occ.Store.protocol store in
  let config =
    {
      (Engine.default_config protocol) with
      Engine.strategy = Engine.Random_pick (Rng.create ~seed:(seed + 1));
    }
  in
  let out = Engine.run ~config db ~protocol bodies in
  Fmt.pr "protocol:   %s (escrow banking mix)@." (Protocol.name protocol);
  Fmt.pr "committed:  %d / %d@." (List.length out.Engine.committed) txns;
  Fmt.pr "steps:      %d@." out.Engine.steps;
  List.iter (fun (k, v) -> Fmt.pr "%-11s %d@." (k ^ ":") v) out.Engine.metrics;
  Fmt.pr "total balance: %d (conserved: %b)@."
    (Occ.Workloads.total_balance store ~accounts:p.Banking.accounts)
    (Occ.Workloads.total_balance store ~accounts:p.Banking.accounts
    = p.Banking.accounts * p.Banking.initial);
  Fmt.pr "history oo-serializable: %b@."
    (Serializability.oo_serializable (Occ.Store.history store));
  if List.length out.Engine.committed = txns then 0 else 1

let run_cmd =
  let txns =
    Arg.(value & opt int 8 & info [ "n"; "txns" ] ~doc:"Concurrent transactions.")
  in
  let fanout =
    Arg.(value & opt int 8 & info [ "fanout" ] ~doc:"B+ tree keys per node.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.") in
  let protocol =
    Arg.(value & opt protocol_conv `Open
         & info [ "p"; "protocol" ] ~doc:"Protocol: open, flat, closed, none, certify.")
  in
  let scans =
    Arg.(value & flag & info [ "scans" ] ~doc:"Include readSeq scans in the mix.")
  in
  let dump =
    Arg.(value & opt (some string) None
         & info [ "dump" ]
             ~doc:"Write the executed history as a checkable description file.")
  in
  let run txns fanout seed protocol occ_validate scans dump =
    let go protocol =
    let p =
      {
        Enc_workload.default_params with
        Enc_workload.n_txns = txns;
        mix =
          (if scans then Enc_workload.with_scans else Enc_workload.insert_heavy);
      }
    in
    let db, enc, bodies = Enc_workload.setup ~fanout ~rng:(Rng.create ~seed) p in
    let reg = Database.spec_registry db in
    let proto, certify =
      match protocol with
      | `Open -> (Protocol.open_nested ~reg (), false)
      | `Flat -> (Protocol.flat_2pl ~reg (), false)
      | `Closed -> (Protocol.closed_nested ~reg (), false)
      | `None -> (Protocol.unlocked (), false)
      | `Certify -> (Protocol.unlocked (), true)
    in
    let config =
      {
        (Engine.default_config proto) with
        Engine.certify;
        Engine.strategy = Engine.Random_pick (Rng.create ~seed:(seed + 1));
      }
    in
    let out = Engine.run ~config db ~protocol:proto bodies in
    Fmt.pr "protocol:   %s@." (Protocol.name proto);
    Fmt.pr "committed:  %d / %d@." (List.length out.Engine.committed) txns;
    Fmt.pr "steps:      %d@." out.Engine.steps;
    List.iter (fun (k, v) -> Fmt.pr "%-11s %d@." (k ^ ":") v) out.Engine.metrics;
    Fmt.pr "structure:  %a@." Encyclopedia.pp_structure (Encyclopedia.structure enc);
    Fmt.pr "history oo-serializable: %b@."
      (Serializability.oo_serializable out.Engine.history);
    (match dump with
    | Some path ->
        let doc = Doc.of_history out.Engine.history in
        let oc = open_out path in
        output_string oc
          "# executed history dumped by oosdb run; commutativity specs are\n";
        output_string oc
          "# not recoverable from the engine: add object declarations before\n";
        output_string oc "# checking (undeclared objects default to allconflict).\n";
        output_string oc (Doc.to_string doc);
        close_out oc;
        Fmt.pr "history written to %s@." path
    | None -> ());
    if List.length out.Engine.committed = txns then 0 else 1
    in
    match resolve_occ protocol occ_validate with
    | `Occ -> run_occ ~txns ~seed Occ.Store.Commute
    | `Occ_rw -> run_occ ~txns ~seed Occ.Store.Rw
    | `Open -> go `Open
    | `Flat -> go `Flat
    | `Closed -> go `Closed
    | `None -> go `None
    | `Certify -> go `Certify
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Run an encyclopedia workload under a protocol ($(b,-p occ) runs \
          the escrow banking mix — the occ store's model coverage).")
    Term.(
      const run $ txns $ fanout $ seed $ protocol $ occ_validate_arg $ scans
      $ dump)

(* -- acceptance -------------------------------------------------------------- *)

let acceptance_cmd =
  let samples =
    Arg.(value & opt int 100 & info [ "samples" ] ~doc:"Interleavings to sample.")
  in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"System seed.") in
  let p_commute =
    Arg.(value & opt float 0.5
         & info [ "p-commute" ] ~doc:"Mid-level commutativity density.")
  in
  let atomic =
    Arg.(value & flag
         & info [ "atomic" ] ~doc:"Interleave at subtransaction granularity.")
  in
  let run samples seed p_commute atomic =
    let p =
      { Random_schedules.default_params with Random_schedules.p_commute }
    in
    let granularity = if atomic then `Subtransaction else `Primitive in
    let a = Random_schedules.acceptance ~granularity ~seed ~samples p in
    let pct n = 100.0 *. float_of_int n /. float_of_int samples in
    Fmt.pr "samples:      %d@." samples;
    Fmt.pr "conventional: %.1f%%@." (pct a.Random_schedules.conventional_accepted);
    Fmt.pr "multilevel:   %.1f%%@." (pct a.Random_schedules.multilevel_accepted);
    Fmt.pr "oo:           %.1f%%@." (pct a.Random_schedules.oo_accepted);
    0
  in
  Cmd.v
    (Cmd.info "acceptance"
       ~doc:"Acceptance rates of random interleavings per criterion.")
    Term.(const run $ samples $ seed $ p_commute $ atomic)

(* -- bench -------------------------------------------------------------------- *)

(* One sharded-engine datapoint: a short mixed single-/cross-shard run
   through the dispatcher — cross-shard commit rate, coordinator
   round-trip time, per-shard certifier depth. *)
let shard_datapoint ~shards ~txns =
  let module D = Ooser_shard.Dispatcher in
  let module Router = Ooser_shard.Router in
  let n_keys = 16 * shards in
  let d =
    D.create
      {
        D.shards;
        db_kind = `Encyclopedia;
        protocol_kind = `Open;
        preload = n_keys;
        fanout = 4;
        accounts = 10;
        products = 4;
        durable_dir = None;
      }
  in
  Fun.protect ~finally:(fun () -> D.shutdown d) @@ fun () ->
  let router = D.router d in
  let key i = Printf.sprintf "k%05d" i in
  (* first preloaded key on [shard], probing from [start] *)
  let key_on shard start =
    let rec go i =
      if i >= n_keys then key start
      else
        let k = key ((start + i) mod n_keys) in
        if
          Router.shard_of_call router ~obj:"Enc" ~args:[ Ooser_core.Value.str k ]
          = shard
        then k
        else go (i + 1)
    in
    go 0
  in
  for i = 0 to txns - 1 do
    let top = i + 1 in
    D.begin_txn d ~top ~name:(Printf.sprintf "bench%d" top) ~deadline:None;
    let s0 = i mod shards in
    (* every fourth transaction reaches across to its neighbour shard *)
    let s1 = if i mod 4 = 0 && shards > 1 then (s0 + 1) mod shards else s0 in
    List.iteri
      (fun j shard ->
        D.call d ~top ~obj:"Enc" ~meth:"update"
          ~args:
            [
              Ooser_core.Value.str (key_on shard (i + (7 * j)));
              Ooser_core.Value.str "bench";
            ])
      [ s0; s1 ];
    D.commit d ~top;
    let deadline = Unix.gettimeofday () +. 10.0 in
    let rec wait () =
      D.poll d;
      match D.txn_state d top with
      | (`Running | `Unknown) when Unix.gettimeofday () < deadline ->
          ignore (Unix.select [ D.wake_fd d ] [] [] 0.005);
          wait ()
      | _ -> ()
    in
    wait ();
    D.retire d ~top
  done;
  let c k = match List.assoc_opt k (D.counters d) with Some v -> v | None -> 0 in
  let depths = List.map (fun s -> s.D.cert_depth) (D.stats d ()) in
  let commits = c "commits" and cross = c "cross-shard-commits" in
  Printf.sprintf
    "  \"shard\": {\"shards\": %d, \"txns\": %d, \"committed\": %d, \
     \"cross_shard_commits\": %d, \"cross_rate\": %.3f, \
     \"coordinator_roundtrip_ns\": %d, \"cert_depth\": [%s]}"
    shards txns commits cross
    (if commits > 0 then float_of_int cross /. float_of_int commits else 0.0)
    (c "roundtrip-ns-avg")
    (String.concat ", " (List.map string_of_int depths))

(* One offline-certification datapoint: a small synthetic trace through
   the segmented parallel certifier — segment throughput, stitch cost,
   peak concurrent segments. *)
let certify_datapoint () =
  let module BT = Ooser_certify.Bench_trace in
  let module C = Ooser_certify.Certify in
  let path = Filename.temp_file "oosdb_bench_trace" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  BT.generate ~path { BT.default_params with BT.txns = 20_000; keys = 128 };
  let t = Ooser_certify.Trace.load path in
  let r = C.run ~workers:4 ~registry:(BT.registry ()) t in
  Printf.sprintf
    "  \"certify\": {\"txns\": %d, \"ok\": %b, \"workers\": %d, \
     \"segments\": %d, \"quiescent_cuts\": %d, \"heuristic_cuts\": %d, \
     \"peak_segments_live\": %d, \"segment_txn_per_s\": %.0f, \
     \"stitch_seconds\": %.6f, \"elapsed_seconds\": %.4f}"
    r.C.txns r.C.ok r.C.workers r.C.segments r.C.quiescent_cuts
    r.C.heuristic_cuts r.C.peak_live r.C.segment_txn_per_s r.C.stitch_seconds
    r.C.elapsed_seconds

(* One optimistic-protocol datapoint: the same escrow banking mix under
   commute-mode and rw-mode validation — the abort-rate gap is the value
   of commutativity-aware validation over the plain-SSI baseline. *)
let occ_datapoint () =
  let run mode =
    let p = { Banking.default_params with Banking.n_txns = 64 } in
    let db, store =
      Occ.Workloads.setup_banking ~mode ~accounts:p.Banking.accounts
        ~balance:p.Banking.initial ~low:p.Banking.low ~high:p.Banking.high ()
    in
    let bodies = Banking.transactions ~rng:(Rng.create ~seed:11) p in
    let protocol = Occ.Store.protocol store in
    let config =
      {
        (Engine.default_config protocol) with
        Engine.strategy = Engine.Random_pick (Rng.create ~seed:12);
        max_steps = 1_000_000;
      }
    in
    let out = Engine.run ~config db ~protocol bodies in
    let c k =
      match
        List.assoc_opt k
          (Ooser_sim.Stats.Counter.to_list (Occ.Store.counters store))
      with
      | Some v -> v
      | None -> 0
    in
    let committed = List.length out.Engine.committed in
    ( committed,
      c "validations",
      c "aborts",
      c "commute-saves",
      Serializability.oo_serializable (Occ.Store.history store) )
  in
  let cc, cv, ca, cs, cok = run Occ.Store.Commute in
  let rc, rv, ra, _, rok = run Occ.Store.Rw in
  Printf.sprintf
    "  \"occ\": {\"txns\": 64, \"commute\": {\"committed\": %d, \
     \"validations\": %d, \"aborts\": %d, \"commute_saves\": %d, \
     \"abort_rate\": %.3f, \"certified\": %b}, \"rw\": {\"committed\": %d, \
     \"validations\": %d, \"aborts\": %d, \"abort_rate\": %.3f, \
     \"certified\": %b}}"
    cc cv ca cs
    (if cv > 0 then float_of_int ca /. float_of_int cv else 0.0)
    cok rc rv ra
    (if rv > 0 then float_of_int ra /. float_of_int rv else 0.0)
    rok

let bench_cmd =
  let n =
    Arg.(value & opt int 600
         & info [ "n" ] ~doc:"Transactions to commit through the certifier.")
  in
  let json =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Also write the result as JSON to $(docv).")
  in
  let run n json =
    let samples =
      List.filter (fun s -> s <= n) [ 50; 150; 300; 600; n ]
      |> List.sort_uniq Int.compare
    in
    let r = Cert_bench.run ~n ~samples () in
    Fmt.pr "%a@." Cert_bench.pp r;
    let shard_json = shard_datapoint ~shards:4 ~txns:48 in
    Fmt.pr "shard datapoint:@.%s@." shard_json;
    let certify_json = certify_datapoint () in
    Fmt.pr "certify datapoint:@.%s@." certify_json;
    let occ_json = occ_datapoint () in
    Fmt.pr "occ datapoint:@.%s@." occ_json;
    (match json with
    | Some file ->
        let oc = open_out file in
        let base = Cert_bench.to_json r in
        (* splice the shard, certify and occ datapoints into the
           top-level object *)
        let body = String.sub base 0 (String.rindex base '}') in
        output_string oc
          (body ^ ",\n" ^ shard_json ^ ",\n" ^ certify_json ^ ",\n" ^ occ_json
         ^ "\n}");
        output_string oc "\n";
        close_out oc;
        Fmt.pr "wrote %s@." file
    | None -> ());
    if r.Cert_bench.incremental_sublinear then 0 else 1
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Certification scaling: incremental certify-per-commit cost vs \
          history length, against the from-scratch checker.  Exits non-zero \
          if the incremental cost is not sub-linear.")
    Term.(const run $ n $ json)

(* -- lint / analyze ----------------------------------------------------------- *)

module Analysis = Ooser_analysis

(* arguments shared by [lint] and [analyze] — one vocabulary, one
   exit-code mapping (Analysis.Lint.exit_code) for both *)
let suite_arg =
  let suite_conv =
    Arg.enum
      [ ("all", `All); ("banking", `Banking); ("inventory", `Inventory);
        ("encyclopedia", `Encyclopedia) ]
  in
  Arg.(value & opt suite_conv `All
       & info [ "suite" ]
           ~doc:"Registry to analyze: all, banking, inventory, encyclopedia.")

let lint_seed_arg =
  Arg.(value & opt int 1
       & info [ "seed" ] ~doc:"Seed for the workload transaction mixes.")

let semantics_arg =
  let semantics_conv =
    Arg.enum [ ("escrow", `Escrow); ("rw", `Rw); ("conflict", `Conflict) ]
  in
  Arg.(value & opt semantics_conv `Escrow
       & info [ "semantics" ]
           ~doc:"Banking commutativity level: escrow, rw, conflict.")

let strict_arg =
  Arg.(value & flag
       & info [ "strict" ] ~doc:"Treat warnings as errors (exit non-zero).")

let lint_targets suite seed semantics =
  match suite with
  | `All -> Lint_targets.all ~seed ()
  | `Banking -> [ Lint_targets.banking ~semantics ~seed () ]
  | `Inventory -> [ Lint_targets.inventory ~seed () ]
  | `Encyclopedia -> [ Lint_targets.encyclopedia ~seed () ]

let lint_cmd =
  let format =
    Arg.(value & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
         & info [ "format" ]
             ~doc:"Output: text (human report) or json (one diagnostic per \
                   line).")
  in
  let run suite seed semantics strict format =
    List.fold_left
      (fun code t ->
        let diags = Analysis.Lint.run t in
        (match format with
        | `Text -> Analysis.Lint.report Fmt.stdout t diags
        | `Json ->
            List.iter
              (fun d -> print_endline (Analysis.Diagnostic.to_json d))
              diags);
        max code (Analysis.Lint.exit_code ~strict diags))
      0
      (lint_targets suite seed semantics)
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically analyze commutativity specs and transaction programs: \
          spec soundness (SPEC*), Def. 5 virtual-object extension sites \
          (CALL*), and lock-order deadlock potential (DL*), without running \
          the engine.")
    Term.(const run $ suite_arg $ lint_seed_arg $ semantics_arg $ strict_arg
          $ format)

let analyze_cmd =
  let format =
    Arg.(value
         & opt (enum [ ("text", `Text); ("json", `Json); ("dot", `Dot) ]) `Text
         & info [ "format" ]
             ~doc:"Output: text (atlas report), json (one document per \
                   suite), or dot (conflict graph).")
  in
  let budget =
    Arg.(value & opt int 20_000
         & info [ "max-interleavings" ]
             ~doc:"Exhaustive-replay budget per transaction pair; pairs \
                   above it are reported unknown, never safe.")
  in
  let run suite seed semantics strict format budget =
    List.fold_left
      (fun code t ->
        let atlas = Analysis.Atlas.build ~max_interleavings:budget t in
        (match format with
        | `Text -> Fmt.pr "%a@." Analysis.Atlas.pp atlas
        | `Json -> print_endline (Analysis.Atlas.to_json atlas)
        | `Dot -> print_string (Analysis.Atlas.to_dot atlas));
        (* an unsafe pair is a warning: raw interleavings of the two
           types can violate oo-serializability, so the pair depends on
           the concurrency-control protocol for correctness.  Errors are
           reserved for defects (asymmetric specs, table contradictions);
           the lint exit-code mapping then applies to both commands. *)
        let diags =
          atlas.Analysis.Atlas.diagnostics
          @ List.map
              (fun (e : Analysis.Atlas.entry) ->
                Analysis.Diagnostic.v ~code:"ATLAS001"
                  ~severity:Analysis.Diagnostic.Warning
                  ~txn:(fst e.Analysis.Atlas.pair ^ "/"
                        ^ snd e.Analysis.Atlas.pair)
                  ~hint:
                    "run these transaction types under a locking protocol \
                     or certification, or strengthen the commutativity \
                     specs"
                  "two concurrent instances admit a non-oo-serializable \
                   interleaving (witness schedule in the atlas)")
              (Analysis.Atlas.unsafe_entries atlas)
        in
        max code (Analysis.Lint.exit_code ~strict diags))
      0
      (lint_targets suite seed semantics)
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Whole-workload static conflict atlas: interprocedural dependency \
          inheritance (Defs. 10-13) over the workload's transaction \
          summaries, a safety verdict or minimal witness schedule per \
          transaction pair, a precomputed conflict table for engine \
          preloading, and the HOT001/COMP001 rules.  Exits non-zero on any \
          unsafe pair (error), or on warnings under --strict — the same \
          mapping as lint.")
    Term.(const run $ suite_arg $ lint_seed_arg $ semantics_arg $ strict_arg
          $ format $ budget)

(* -- infer -------------------------------------------------------------------- *)

let infer_cmd =
  let suite_conv =
    Arg.enum
      [ ("adts", `Adts); ("all", `All); ("banking", `Banking);
        ("inventory", `Inventory); ("encyclopedia", `Encyclopedia) ]
  in
  let suite =
    Arg.(value & opt suite_conv `Adts
         & info [ "suite" ]
             ~doc:"Registry to audit: adts (default — the four semantic \
                   ADTs), all, banking, inventory, encyclopedia.")
  in
  let format =
    Arg.(value & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
         & info [ "format" ]
             ~doc:"Output: text (inference report) or json (one document \
                   per suite).")
  in
  let random_states =
    Arg.(value & opt int 100
         & info [ "random-states" ]
             ~doc:"Size of the randomized-state soundness pass per object \
                   group (commuting verdicts must also survive it).")
  in
  let run suite seed semantics strict format random_states =
    let targets =
      match suite with
      | `Adts -> [ Lint_targets.adts () ]
      | `All -> Lint_targets.adts () :: Lint_targets.all ~seed ()
      | `Banking -> [ Lint_targets.banking ~semantics ~seed () ]
      | `Inventory -> [ Lint_targets.inventory ~seed () ]
      | `Encyclopedia -> [ Lint_targets.encyclopedia ~seed () ]
    in
    List.fold_left
      (fun code t ->
        let r = Analysis.Infer.run ~seed ~random_states t in
        (match format with
        | `Text -> Fmt.pr "%a@." Analysis.Infer.pp r
        | `Json -> print_endline (Analysis.Infer.to_json r));
        max code (Analysis.Lint.exit_code ~strict r.Analysis.Infer.diagnostics))
      0 targets
  in
  Cmd.v
    (Cmd.info "infer"
       ~doc:
         "Infer commutativity matrices from executable ADT semantics \
          (small-scope enumeration + randomized-state pass, forward \
          commutativity and abort safety) and diff them against the \
          registered hand specs: INFER001 (error) for unsound hand cells \
          with a minimal replayable witness, INFER002 (warning) for \
          provably conservative cells, INFER003 (info) for undecidable \
          cells.  Argument-independent hand-agreeing cells compile into a \
          preloadable conflict table.  Exit mapping as lint.")
    Term.(const run $ suite $ lint_seed_arg $ semantics_arg $ strict_arg
          $ format $ random_states)

(* -- demo --------------------------------------------------------------------- *)

let demo_cmd =
  let run () =
    let h = Paper_examples.example4_serial () in
    Fmt.pr "Example 4 (Figs. 7-8), serial execution T1 T2 T3 T4:@.@.";
    let sched = Schedule.compute h in
    List.iter
      (fun os ->
        let deps = Action.Rel.edges os.Schedule.txn_dep in
        if deps <> [] then
          Fmt.pr "  %-12s %a@."
            (Obj_id.to_string os.Schedule.obj)
            (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (a, b) ->
                 Fmt.pf ppf "%a -> %a" Ids.Action_id.pp a Ids.Action_id.pp b))
            deps)
      (Schedule.objects sched);
    Fmt.pr "@.crossing interleaving of T1/T3 (Fig. 7):@.";
    let h' = Paper_examples.example4_crossing () in
    Fmt.pr "  conventionally serializable: %b@."
      (Baselines.conventional_serializable h');
    Fmt.pr "  oo-serializable:             %b@."
      (Serializability.oo_serializable h');
    0
  in
  Cmd.v
    (Cmd.info "demo" ~doc:"The paper's Example 4 dependency table.")
    Term.(const run $ const ())

(* -- serve / client / loadgen -------------------------------------------------- *)

module Srv = Ooser_server.Server
module Sclient = Ooser_server.Client
module Loadgen = Ooser_server.Loadgen
module Wire = Ooser_server.Wire

let socket_arg =
  Arg.(value & opt (some string) None
       & info [ "socket" ] ~docv:"PATH" ~doc:"Listen/connect on a unix-domain socket.")

let port_arg =
  Arg.(value & opt int 7707
       & info [ "port" ] ~docv:"PORT"
           ~doc:"TCP port on 127.0.0.1 (ignored with $(b,--socket)).")

let addr_of socket port =
  match socket with Some p -> Srv.Unix_sock p | None -> Srv.Tcp port

let db_conv =
  Arg.enum
    [ ("encyclopedia", `Encyclopedia); ("banking", `Banking);
      ("inventory", `Inventory) ]

let server_protocol_conv =
  Arg.enum
    [ ("open", `Open); ("flat", `Flat); ("closed", `Closed);
      ("certify", `Certify); ("occ", `Occ); ("occ-rw", `Occ_rw) ]

let serve_cmd =
  let db =
    Arg.(value & opt db_conv `Encyclopedia
         & info [ "db" ] ~doc:"Database: encyclopedia, banking, inventory.")
  in
  let protocol =
    Arg.(value & opt server_protocol_conv `Open
         & info [ "p"; "protocol" ]
             ~doc:"Protocol: open, flat, closed, certify, occ, occ-rw.")
  in
  let max_inflight =
    Arg.(value & opt int 32
         & info [ "max-inflight" ]
             ~doc:"Admission limit; further BEGINs queue.")
  in
  let timeout_ms =
    Arg.(value & opt int 0
         & info [ "timeout-ms" ]
             ~doc:"Default transaction deadline (0 = none).")
  in
  let preload =
    Arg.(value & opt int 200
         & info [ "preload" ] ~doc:"Encyclopedia keys seeded before serving.")
  in
  let durable =
    Arg.(value & opt (some string) None
         & info [ "durable" ] ~docv:"DIR"
             ~doc:
               "Journal commits to $(docv)/oplog.bin; on boot, recover \
                $(docv)'s snapshot and stable log before serving.  With \
                $(b,--shards), each shard journals to $(docv)/shard-N and \
                the coordinator's decisions to $(docv)/decisions.bin.")
  in
  let shards =
    Arg.(value & opt int 0
         & info [ "shards" ]
             ~doc:
               "Partition objects across $(docv) shard engines, each on \
                its own domain; cross-shard transactions two-phase-commit \
                through the Def. 15 edge-exchange coordinator.  0 = one \
                engine, no dispatcher." ~docv:"N")
  in
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:
               "Record the committed history to $(docv) as an \
                offline-certifiable trace for $(b,oosdb certify): a \
                single-shard server streams every commit, a sharded \
                server exports the merged history at drain.")
  in
  let run socket port db protocol occ_validate max_inflight timeout_ms preload
      durable shards trace =
    let protocol = resolve_occ protocol occ_validate in
    let config =
      {
        (Srv.default_config (addr_of socket port)) with
        Srv.db_kind = db;
        protocol_kind = protocol;
        shards;
        max_inflight;
        default_timeout_ms = timeout_ms;
        preload;
        durable_dir = durable;
        trace_path = trace;
      }
    in
    match
      (try Ok (Srv.create config) with Invalid_argument msg -> Error msg)
    with
    | Error msg ->
        Fmt.epr "oosdb serve: %s@." msg;
        2
    | Ok t ->
    Fmt.pr "oosdb serve: %a db=%s protocol=%s max-inflight=%d%s%s@."
      Srv.pp_addr config.Srv.addr
      (Srv.db_kind_name db)
      (Srv.protocol_kind_name protocol)
      max_inflight
      (if shards > 0 then Printf.sprintf " shards=%d" shards else "")
      (match durable with Some d -> " durable=" ^ d | None -> "");
    (match Srv.last_recovery t with
    | Some r ->
        Fmt.pr
          "recovered: %d winners (%d snapshot-deduped), %d undone, \
           re-certified=%b@."
          (List.length r.Engine.rec_winners)
          r.Engine.skipped_attempts
          (List.length r.Engine.undone)
          r.Engine.recertified
    | None -> ());
    (* drain on SIGINT/SIGTERM: the handler only raises a flag; the
       loop initiates the shutdown at a quiet point *)
    let stop = ref false in
    let handler = Sys.Signal_handle (fun _ -> stop := true) in
    (try Sys.set_signal Sys.sigint handler with Invalid_argument _ -> ());
    (try Sys.set_signal Sys.sigterm handler with Invalid_argument _ -> ());
    while Srv.running t do
      if !stop then Srv.initiate_shutdown t;
      Srv.step t ~timeout:0.1
    done;
    let ok = Srv.certified t in
    Fmt.pr "%s@." (Srv.stats_json ~certified:(Some ok) t);
    if ok then 0 else 1
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Network transaction server: sessions over a loopback TCP or \
          unix-domain socket, multiplexed onto one engine.  Exits non-zero \
          if the committed history fails certification.")
    Term.(
      const run $ socket_arg $ port_arg $ db $ protocol $ occ_validate_arg
      $ max_inflight $ timeout_ms $ preload $ durable $ shards $ trace)

(* -- recover ------------------------------------------------------------------- *)

module Oplog = Ooser_recovery.Oplog
module RSnapshot = Ooser_recovery.Snapshot
module Recovery = Ooser_recovery.Recovery

let recover_cmd =
  let dir =
    Arg.(required & pos 0 (some dir) None & info [] ~docv:"DIR"
           ~doc:"Durable directory (oplog.bin / snapshot.bin).")
  in
  let db =
    Arg.(value & opt db_conv `Encyclopedia
         & info [ "db" ]
             ~doc:"Database the log was recorded against: encyclopedia, \
                   banking, inventory.")
  in
  let protocol =
    Arg.(value & opt server_protocol_conv `Open
         & info [ "p"; "protocol" ]
             ~doc:"Protocol: open, flat, closed, certify.")
  in
  let preload =
    Arg.(value & opt int 200
         & info [ "preload" ] ~doc:"Encyclopedia keys the server preloads.")
  in
  let checkpoint =
    Arg.(value & flag
         & info [ "checkpoint" ]
             ~doc:"After a successful replay, fold the winners into the \
                   snapshot and truncate the log.")
  in
  let shards_arg =
    Arg.(value & opt int 0
         & info [ "shards" ] ~docv:"N"
             ~doc:
               "Recover a sharded server's directory: $(docv) per-shard \
                subdirectories (shard-0 ..), with in-doubt prepared \
                transactions resolved against DIR/decisions.bin \
                (presumed abort without a logged commit decision).")
  in
  (* one shard of a sharded durable directory: the shard's database
     holds only the keys the router places there, and its log is
     resolved against the coordinator's decision log before replay *)
  let recover_shard ~dir ~db ~proto_kind ~preload ~checkpoint ~router ~shards
      ~decisions i =
    let module Router = Ooser_shard.Router in
    let module DL = Ooser_recovery.Decision_log in
    let sdir = Filename.concat dir (Printf.sprintf "shard-%d" i) in
    let database = Database.create () in
    (match db with
    | `Encyclopedia ->
        let enc = Encyclopedia.create ~fanout:4 database in
        Enc_workload.preload database enc ~keys:preload ~keep:(fun k ->
            Router.shard_of_call router ~obj:"Enc" ~args:[ Value.str k ] = i)
    | `Banking ->
        for a = 0 to 9 do
          ignore
            (Banking.register_account database ~semantics:`Escrow a
               ~balance:100 ~low:0 ~high:1_000_000)
        done
    | `Inventory -> ignore (Inventory.create ~products:4 database));
    let reg = Database.spec_registry database in
    let proto =
      match proto_kind with
      | `Open -> Protocol.open_nested ~reg ()
      | `Flat -> Protocol.flat_2pl ~reg ()
      | `Closed -> Protocol.closed_nested ~reg ()
      | `Certify -> Protocol.unlocked ()
    in
    let snapshot = RSnapshot.load ~dir:sdir in
    let records = DL.resolve ~decisions (Oplog.load ~dir:sdir) in
    let _, report =
      Engine.recover ?snapshot database ~protocol:proto
        (Oplog.of_records records)
    in
    let plan = report.Engine.plan in
    Fmt.pr
      "shard %d: %d winners (%d snapshot-deduped), %d undone, \
       re-certified=%b@."
      i
      (List.length report.Engine.rec_winners)
      report.Engine.skipped_attempts
      (List.length report.Engine.undone)
      report.Engine.recertified;
    let ok = report.Engine.recertified && report.Engine.replay_failures = 0 in
    if ok && checkpoint then begin
      let base = Option.value snapshot ~default:RSnapshot.empty in
      let snap = Recovery.snapshot_of ~base plan in
      RSnapshot.save ~dir:sdir snap;
      try Sys.remove (Oplog.log_file ~dir:sdir) with Sys_error _ -> ()
    end;
    ignore shards;
    ok
  in
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:
               "After replay, export the recovered committed history to \
                $(docv) as an offline-certifiable trace for $(b,oosdb \
                certify).  Single-engine directories only: per-shard \
                logs carry shard-local stamps that do not merge into \
                one global execution order offline.")
  in
  let run dir db protocol preload checkpoint shards trace =
    let lock_kind : [ `Open | `Flat | `Closed | `Certify ] option =
      match protocol with
      | `Occ | `Occ_rw -> None
      | `Open -> Some `Open
      | `Flat -> Some `Flat
      | `Closed -> Some `Closed
      | `Certify -> Some `Certify
    in
    match lock_kind with
    | None ->
        Fmt.epr
          "oosdb recover: occ servers are in-memory (nothing durable to \
           recover)@.";
        2
    | Some protocol ->
    if shards > 0 && trace <> None then begin
      Fmt.epr "oosdb recover: --trace requires a single-engine directory@.";
      2
    end
    else if shards > 0 then begin
      let module Router = Ooser_shard.Router in
      let module DL = Ooser_recovery.Decision_log in
      let router = Router.create ~shards in
      let decisions = DL.load ~dir in
      Fmt.pr "decisions:  %d logged (%d commit)@." (List.length decisions)
        (List.length (List.filter (fun d -> d.DL.commit) decisions));
      let ok = ref true in
      for i = 0 to shards - 1 do
        if
          not
            (recover_shard ~dir ~db ~proto_kind:protocol ~preload ~checkpoint
               ~router ~shards ~decisions i)
        then ok := false
      done;
      if !ok && checkpoint then begin
        DL.reset ~dir;
        Fmt.pr "checkpointed: %d shards, decision log reset@." shards
      end;
      if !ok then 0 else 1
    end
    else begin
    let config =
      {
        (Srv.default_config (Srv.Tcp 0)) with
        Srv.db_kind = db;
        protocol_kind =
          ((protocol : [ `Open | `Flat | `Closed | `Certify ])
            :> Srv.protocol_kind);
        preload;
      }
    in
    let database = Srv.build_db config in
    let proto = Srv.build_protocol config database in
    let snapshot = RSnapshot.load ~dir in
    let records = Oplog.load ~dir in
    Fmt.pr "log:        %d stable records@." (List.length records);
    Fmt.pr "snapshot:   %d entries@."
      (match snapshot with
      | Some s -> List.length s.RSnapshot.entries
      | None -> 0);
    let eng, report =
      Engine.recover ?snapshot database ~protocol:proto
        (Oplog.of_records records)
    in
    let plan = report.Engine.plan in
    Fmt.pr "winners:    %d replayed, %d snapshot-deduped@."
      (List.length report.Engine.rec_winners)
      report.Engine.skipped_attempts;
    Fmt.pr "aborted:    %d compensated at their logged decision@."
      (List.length plan.Recovery.aborted);
    Fmt.pr "losers:     %d undone (in flight at the crash)@."
      (List.length report.Engine.undone);
    Fmt.pr "replayed:   %d root calls (%d failures)@."
      report.Engine.replayed_calls report.Engine.replay_failures;
    Fmt.pr "re-certified oo-serializable: %b@." report.Engine.recertified;
    let ok = report.Engine.recertified && report.Engine.replay_failures = 0 in
    (match trace with
    | Some path ->
        Ooser_certify.Trace.write_history
          ~registry:(Srv.db_kind_name db)
          path (Engine.final_history eng);
        Fmt.pr "trace:      wrote %s@." path
    | None -> ());
    if ok && checkpoint then begin
      let base =
        Option.value snapshot ~default:RSnapshot.empty
      in
      let snap = Recovery.snapshot_of ~base plan in
      RSnapshot.save ~dir snap;
      (try Sys.remove (Oplog.log_file ~dir) with Sys_error _ -> ());
      Fmt.pr "checkpointed: %d snapshot entries, log truncated@."
        (List.length snap.RSnapshot.entries)
    end;
    if ok then 0 else 1
    end
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:
         "Replay a durable directory's snapshot and stable operation log \
          through a fresh engine, report the winners / losers, and \
          re-certify the recovered history.  Exits non-zero if replay \
          fails or the history is not oo-serializable.")
    Term.(const run $ dir $ db $ protocol $ preload $ checkpoint $ shards_arg
          $ trace)

(* -- certify ------------------------------------------------------------------- *)

module Ctrace = Ooser_certify.Trace
module Certify = Ooser_certify.Certify
module Bench_trace = Ooser_certify.Bench_trace

(* A database's registry, extended with the system object "S" the engine
   registers at create time (roots live there, all-commuting) and with
   [dynamic], the database kind's name-family resolver for objects a
   live run registered as it allocated them (encyclopedia pages, nodes,
   items) — a rebuilt database never allocated those.  Objects neither
   knows resolve to all-conflict — sound but conservative, so a trace
   touching genuinely unknown objects may be refused where the live
   server would have accepted it. *)
let offline_db_registry ?(dynamic = fun _ -> None) db =
  let reg = Database.spec_registry db in
  let is_sys o = Ids.Obj_id.name (Ids.Obj_id.original o) = "S" in
  Commutativity.registry
    ~known:(fun o -> is_sys o || Commutativity.known reg o || dynamic o <> None)
    (fun o ->
      if is_sys o then Commutativity.all_commute
      else if Commutativity.known reg o then Commutativity.spec_for reg o
      else
        match dynamic o with
        | Some spec -> spec
        | None -> Commutativity.all_conflict)

let dynamic_of_kind = function
  | `Encyclopedia -> Ooser_oodb.Encyclopedia.offline_spec
  | _ -> fun _ -> None

(* A sharded trace's objects carry "s<i>:" prefixes (each shard's
   namespace is disjoint); specs are resolved by the unprefixed name
   against one rebuilt database of the same kind — shard databases
   assign specs by object name, so the spec is the same on every
   shard. *)
let offline_sharded_registry ?dynamic db =
  let inner = offline_db_registry ?dynamic db in
  let strip o =
    let n = Ids.Obj_id.name (Ids.Obj_id.original o) in
    if n = "S" then Some n
    else
      match String.index_opt n ':' with
      | Some j when j > 1 && n.[0] = 's' ->
          Some (String.sub n (j + 1) (String.length n - j - 1))
      | _ -> None
  in
  Commutativity.registry
    ~known:(fun o ->
      match strip o with
      | Some base -> Commutativity.known inner (Ids.Obj_id.v base)
      | None -> false)
    (fun o ->
      match strip o with
      | Some base -> Commutativity.spec_for inner (Ids.Obj_id.v base)
      | None -> Commutativity.all_conflict)

let db_kind_of_name = function
  | "encyclopedia" -> Some `Encyclopedia
  | "banking" -> Some `Banking
  | "inventory" -> Some `Inventory
  | _ -> None

(* Resolve the registry a trace header names.  [db_override] forces a
   database kind regardless of the header. *)
let resolve_trace_registry ~db_override ~preload ~accounts ~products name =
  let build kind =
    let config =
      {
        (Srv.default_config (Srv.Tcp 0)) with
        Srv.db_kind = kind;
        preload;
        accounts;
        products;
      }
    in
    Srv.build_db config
  in
  match db_override with
  | Some kind ->
      if String.length name > 8 && String.sub name 0 8 = "sharded:" then
        Ok (offline_sharded_registry ~dynamic:(dynamic_of_kind kind) (build kind))
      else Ok (offline_db_registry ~dynamic:(dynamic_of_kind kind) (build kind))
  | None -> (
      if name = Bench_trace.registry_name then Ok (Bench_trace.registry ())
      else
        let strip prefix =
          let np = String.length prefix in
          if String.length name > np && String.sub name 0 np = prefix then
            Some (String.sub name np (String.length name - np))
          else None
        in
        match db_kind_of_name name with
        | Some kind -> Ok (offline_db_registry ~dynamic:(dynamic_of_kind kind) (build kind))
        | None -> (
            match strip "sharded:" with
            | Some base -> (
                match db_kind_of_name base with
                | Some kind -> Ok (offline_sharded_registry ~dynamic:(dynamic_of_kind kind) (build kind))
                | None ->
                    Error
                      (Printf.sprintf "unknown sharded database %S" base))
            | None -> (
                match strip "client:" with
                | Some base -> (
                    match db_kind_of_name base with
                    | Some kind -> Ok (offline_db_registry ~dynamic:(dynamic_of_kind kind) (build kind))
                    | None ->
                        Error
                          (Printf.sprintf "unknown client database %S" base))
                | None ->
                    Error
                      (Printf.sprintf
                         "trace names registry %S; pass --db to force one"
                         name))))

let certify_cmd =
  let file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"FILE"
             ~doc:"History trace recorded by serve/loadgen/recover --trace \
                   or generated by the benchmark.")
  in
  let workers =
    Arg.(value & opt int 4
         & info [ "workers" ] ~docv:"N"
             ~doc:"Domains certifying segments in parallel.")
  in
  let segment_target =
    Arg.(value & opt (some int) None
         & info [ "segment-target" ] ~docv:"K"
             ~doc:
               "Transactions per segment before the segmenter looks for a \
                quiescent cut (default: about four segments per worker).")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.")
  in
  let db_override =
    Arg.(value & opt (some db_conv) None
         & info [ "db" ]
             ~doc:
               "Resolve commutativity specs against this database kind \
                instead of the trace header's registry name.")
  in
  let preload =
    Arg.(value & opt int 200
         & info [ "preload" ]
             ~doc:"Encyclopedia keys the recorded server preloaded.")
  in
  let accounts =
    Arg.(value & opt int 10 & info [ "accounts" ] ~doc:"Banking accounts.")
  in
  let products =
    Arg.(value & opt int 4 & info [ "products" ] ~doc:"Inventory products.")
  in
  let run file workers segment_target json db_override preload accounts
      products =
    match Ctrace.load file with
    | exception Failure msg ->
        Fmt.epr "oosdb certify: %s@." msg;
        2
    | t -> (
        match
          resolve_trace_registry ~db_override ~preload ~accounts ~products
            (Ctrace.registry_name t)
        with
        | Error msg ->
            Fmt.epr "oosdb certify: %s@." msg;
            2
        | Ok registry ->
            let r =
              Certify.run ~workers ?segment_target:
                (match segment_target with
                | Some k -> Some (max 1 k)
                | None -> None)
                ~registry t
            in
            if json then print_string (Certify.to_json r)
            else Fmt.pr "%a@." Certify.pp r;
            if r.Certify.ok then 0 else 1)
  in
  Cmd.v
    (Cmd.info "certify"
       ~doc:
         "Certify a recorded history trace offline: segment at quiescent \
          points, certify segments on parallel domains, stitch the \
          cross-segment dependency frontiers through one global \
          topological order.  Exits 1 on a violation, 2 on a bad trace \
          or unresolvable registry.")
    Term.(const run $ file $ workers $ segment_target $ json $ db_override
          $ preload $ accounts $ products)

(* "Obj.meth arg.." with ints, true/false and bare strings as values *)
let parse_call spec =
  match String.split_on_char ' ' spec |> List.filter (fun s -> s <> "") with
  | [] -> invalid_arg "empty --call"
  | target :: raw_args ->
      let obj, meth =
        match String.index_opt target '.' with
        | Some i ->
            ( String.sub target 0 i,
              String.sub target (i + 1) (String.length target - i - 1) )
        | None -> invalid_arg ("--call " ^ spec ^ ": expected Obj.meth")
      in
      let value_of s =
        match int_of_string_opt s with
        | Some n -> Value.int n
        | None -> (
            match s with
            | "true" -> Value.bool true
            | "false" -> Value.bool false
            | "()" -> Value.unit
            | s -> Value.str s)
      in
      Wire.Call { obj; meth; args = List.map value_of raw_args }

let client_cmd =
  let calls =
    Arg.(value & opt_all string []
         & info [ "c"; "call" ] ~docv:"SPEC"
             ~doc:
               "A method call, e.g. 'Enc.search k00042' (repeatable; runs \
                as one transaction).")
  in
  let timeout_ms =
    Arg.(value & opt int 0 & info [ "timeout-ms" ] ~doc:"Transaction deadline.")
  in
  let stats =
    Arg.(value & flag & info [ "stats" ] ~doc:"Print server statistics.")
  in
  let shutdown =
    Arg.(value & flag & info [ "shutdown" ] ~doc:"Ask the server to drain and exit.")
  in
  let run socket port calls timeout_ms stats shutdown =
    let c = Sclient.connect (Srv.sockaddr_of (addr_of socket port)) in
    let finish code =
      Sclient.close c;
      code
    in
    match Sclient.request c (Wire.Hello "oosdb-client") with
    | Wire.Welcome { server; db; protocol } -> (
        Fmt.pr "connected: %s db=%s protocol=%s@." server db protocol;
        let rec txn () =
          match calls with
          | [] -> 0
          | specs -> (
              match
                Sclient.request c (Wire.Begin { name = "cli"; timeout_ms })
              with
              | Wire.Begun { top } ->
                  Fmt.pr "begun T%d@." top;
                  run_calls (List.map parse_call specs)
              | resp ->
                  Fmt.epr "BEGIN refused: %a@." Wire.pp_response resp;
                  1)
        and run_calls = function
          | [] -> (
              match Sclient.request c Wire.Commit with
              | Wire.Committed v ->
                  Fmt.pr "committed: %a@." Value.pp v;
                  0
              | Wire.Aborted reason ->
                  Fmt.pr "aborted: %s@." reason;
                  1
              | resp ->
                  Fmt.epr "unexpected: %a@." Wire.pp_response resp;
                  1)
          | call :: rest -> (
              match Sclient.request c call with
              | Wire.Result v ->
                  Fmt.pr "%a -> %a@." Wire.pp_request call Value.pp v;
                  run_calls rest
              | Wire.Failed msg ->
                  Fmt.pr "%a failed: %s@." Wire.pp_request call msg;
                  run_calls rest
              | Wire.Aborted reason ->
                  Fmt.pr "aborted: %s@." reason;
                  1
              | resp ->
                  Fmt.epr "unexpected: %a@." Wire.pp_response resp;
                  1)
        in
        let code = txn () in
        if stats then (
          match Sclient.request c Wire.Stats with
          | Wire.Stats_json j -> Fmt.pr "%s@." j
          | resp -> Fmt.epr "STATS: unexpected %a@." Wire.pp_response resp);
        if shutdown then ignore (Sclient.request c Wire.Shutdown)
        else ignore (Sclient.request c Wire.Bye);
        finish code)
    | resp ->
        Fmt.epr "HELLO: unexpected %a@." Wire.pp_response resp;
        finish 1
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "One-shot scripted transaction against a running server: HELLO, \
          BEGIN, the given calls, COMMIT.")
    Term.(const run $ socket_arg $ port_arg $ calls $ timeout_ms $ stats
          $ shutdown)

let loadgen_cmd =
  let sessions =
    Arg.(value & opt int 16
         & info [ "sessions" ] ~doc:"Concurrent closed-loop sessions.")
  in
  let txns =
    Arg.(value & opt int 8 & info [ "n"; "txns" ] ~doc:"Transactions per session.")
  in
  let calls =
    Arg.(value & opt int 4 & info [ "calls" ] ~doc:"Calls per transaction.")
  in
  let db =
    Arg.(value & opt db_conv `Encyclopedia
         & info [ "db" ] ~doc:"Op mix: encyclopedia, banking, inventory.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  let timeout_ms =
    Arg.(value & opt int 0 & info [ "timeout-ms" ] ~doc:"BEGIN deadline.")
  in
  let keys =
    Arg.(value & opt int 200
         & info [ "keys" ] ~doc:"Server's encyclopedia preload count.")
  in
  let theta =
    Arg.(value & opt float 0.8 & info [ "theta" ] ~doc:"Zipf skew over keys.")
  in
  let shutdown =
    Arg.(value & flag
         & info [ "shutdown" ] ~doc:"Ask the server to drain and exit after the run.")
  in
  let rate =
    Arg.(value & opt float 0.0
         & info [ "rate" ] ~docv:"TXN/S"
             ~doc:
               "Open-loop mode: transactions arrive on a global schedule \
                of $(docv) per second and latency is measured from the \
                scheduled arrival (includes backlog queueing).  0 = \
                closed loop.")
  in
  let route_shards =
    Arg.(value & opt int 0
         & info [ "route-shards" ] ~docv:"N"
             ~doc:
               "Shard-affine mix against a --shards $(docv) server: each \
                session keeps its keys on its home shard so transactions \
                stay single-shard except for --cross excursions.")
  in
  let cross =
    Arg.(value & opt float 0.05
         & info [ "cross" ]
             ~doc:
               "With --route-shards: probability a call targets a foreign \
                shard, forcing a cross-shard 2PC commit.")
  in
  let json =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE" ~doc:"Write the result as JSON to $(docv).")
  in
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:
               "Record the client-observed committed history to $(docv) \
                as an offline-certifiable trace for $(b,oosdb certify) \
                (black-box audit; the server's $(b,--trace) records the \
                authoritative execution order).")
  in
  let run socket port sessions txns calls db seed timeout_ms keys theta
      shutdown rate route_shards cross json trace =
    let cfg =
      {
        (Loadgen.default_cfg (Srv.sockaddr_of (addr_of socket port))) with
        Loadgen.sessions;
        txns_per_session = txns;
        calls_per_txn = calls;
        db_kind = db;
        seed;
        timeout_ms;
        key_universe = keys;
        theta;
        shutdown;
        rate;
        route_shards;
        cross;
        trace_path = trace;
      }
    in
    let r = Loadgen.run cfg in
    Fmt.pr
      "loadgen: %d sessions, %d committed / %d aborted (%d calls, %d \
       failed), %.2fs, %.1f txn/s@."
      r.Loadgen.n_sessions r.Loadgen.committed r.Loadgen.aborted
      r.Loadgen.calls r.Loadgen.failed_calls r.Loadgen.elapsed
      r.Loadgen.throughput;
    Fmt.pr "latency p50=%.4fs p95=%.4fs p99=%.4fs@."
      (Loadgen.Stats.Histogram.quantile r.Loadgen.latency 0.50)
      (Loadgen.Stats.Histogram.quantile r.Loadgen.latency 0.95)
      (Loadgen.Stats.Histogram.quantile r.Loadgen.latency 0.99);
    Fmt.pr "certified: %s@."
      (match r.Loadgen.certified with
      | Some true -> "true"
      | Some false -> "FALSE"
      | None -> "unknown");
    (match json with
    | Some file ->
        let oc = open_out file in
        output_string oc (Loadgen.to_json r);
        output_string oc "\n";
        close_out oc;
        Fmt.pr "wrote %s@." file
    | None -> ());
    if r.Loadgen.certified = Some true && r.Loadgen.committed > 0 then 0 else 1
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Closed-loop load generator: N concurrent sessions of BEGIN/CALL/\
          COMMIT against a running server.  Exits non-zero unless \
          transactions committed and the server certified the history \
          oo-serializable.")
    Term.(const run $ socket_arg $ port_arg $ sessions $ txns $ calls $ db
          $ seed $ timeout_ms $ keys $ theta $ shutdown $ rate
          $ route_shards $ cross $ json $ trace)

(* -- mc ------------------------------------------------------------------------ *)

module Mc = Ooser_mc.Mc
module Mc_scenario = Ooser_mc.Scenario
module Mc_explore = Ooser_mc.Explore

let mc_cmd =
  let suite =
    Arg.(value & opt (some string) None
         & info [ "suite" ] ~docv:"NAME"
             ~doc:"Built-in scenario suite: all, single, mutant, crash, \
                   sharded.")
  in
  let scenarios =
    Arg.(value & opt_all string []
         & info [ "scenario" ] ~docv:"NAME"
             ~doc:"Run one built-in scenario (repeatable).")
  in
  let dpor_only =
    Arg.(value & flag
         & info [ "dpor" ]
             ~doc:"Explore with sleep-set DPOR only (default: both modes, \
                   so the reduction factor is measured).")
  in
  let no_dpor =
    Arg.(value & flag
         & info [ "no-dpor" ] ~doc:"Naive enumeration only, no reduction.")
  in
  let max_schedules =
    Arg.(value & opt int 20_000
         & info [ "max-schedules" ]
             ~doc:"Schedule cap per exploration; hitting it (instead of \
                   exhausting the tree) fails the scenario.")
  in
  let seed =
    Arg.(value & opt int 0
         & info [ "seed" ]
             ~doc:"Rotate candidate order at fresh branch points (0 = \
                   declaration order).")
  in
  let json =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE" ~doc:"Write the full report to $(docv).")
  in
  let replay =
    Arg.(value & opt (some string) None
         & info [ "replay" ] ~docv:"TRACE"
             ~doc:"Replay one recorded choice trace (e.g. a minimised \
                   witness such as t1,t1,t2,t2) against a single \
                   --scenario instead of exploring; prints the verdict \
                   and any violations.")
  in
  let require_reduction =
    Arg.(value & flag
         & info [ "require-reduction" ]
             ~doc:"Exit non-zero unless DPOR explored strictly fewer \
                   schedules than naive on at least one scenario (the CI \
                   mc-gate assertion).")
  in
  let run suite scenarios dpor_only no_dpor max_schedules seed json replay
      require_reduction =
    let fail fmt = Fmt.kstr (fun s -> Fmt.epr "mc: %s@." s; `Error) fmt in
    let resolve () =
      let by_suite =
        match suite with
        | None -> Ok []
        | Some s -> (
            match Mc_scenario.suite s with
            | Some l -> Ok l
            | None ->
                Error
                  (Printf.sprintf "unknown suite %s (have: %s)" s
                     (String.concat ", " Mc_scenario.suite_names)))
      in
      let by_name =
        List.fold_left
          (fun acc n ->
            match (acc, Mc_scenario.find n) with
            | Error _, _ -> acc
            | Ok l, Some sc -> Ok (l @ [ sc ])
            | Ok _, None -> Error (Printf.sprintf "unknown scenario %s" n))
          (Ok []) scenarios
      in
      match (by_suite, by_name) with
      | Error e, _ | _, Error e -> Error e
      | Ok [], Ok [] -> Ok (Option.get (Mc_scenario.suite "all"))
      | Ok a, Ok b -> Ok (a @ b)
    in
    match resolve () with
    | Error e -> ignore (fail "%s" e); 2
    | Ok scs -> (
        match replay with
        | Some trace_s -> (
            match (scs, Mc_explore.trace_of_string trace_s) with
            | [ sc ], Some trace ->
                let verdict, violations = Mc.replay sc trace in
                Fmt.pr "replay %s: %s@." sc.Mc_scenario.name verdict;
                List.iter (fun v -> Fmt.pr "  violation: %s@." v) violations;
                if violations = [] then Fmt.pr "  all invariants green@.";
                (* a replayed witness must reproduce the planted
                   violation; on a healthy scenario it must not *)
                if sc.Mc_scenario.expect_failure = (violations <> []) then 0
                else 1
            | _ :: _ :: _, _ ->
                ignore (fail "--replay needs exactly one --scenario"); 2
            | _, None -> ignore (fail "unparsable trace %S" trace_s); 2
            | [], _ -> ignore (fail "--replay needs a --scenario"); 2)
        | None ->
            let mode =
              if dpor_only && no_dpor then `Both
              else if dpor_only then `Dpor
              else if no_dpor then `Naive
              else `Both
            in
            let reports =
              List.map
                (fun sc ->
                  let r = Mc.run_scenario ~mode ~seed ~max_schedules sc in
                  let pr_expl name = function
                    | None -> ""
                    | Some (e : Mc.exploration) ->
                        Printf.sprintf " %s=%d%s" name
                          e.Mc.stats.Mc_explore.schedules
                          (if e.Mc.stats.Mc_explore.exhausted then ""
                           else if e.Mc.failure <> None then "(stopped)"
                           else "(capped)")
                  in
                  Fmt.pr "mc %-16s [%s]%s%s%s%s%s: %s@." r.Mc.r_scenario
                    r.Mc.r_mode
                    (pr_expl "naive" r.Mc.r_naive)
                    (pr_expl "dpor" r.Mc.r_dpor)
                    (match r.Mc.r_reduction with
                    | Some f when f > 1.0 -> Printf.sprintf " (%.0fx)" f
                    | _ -> "")
                    (match r.Mc.r_witness with
                    | Some w ->
                        " witness=" ^ Mc_explore.trace_to_string w
                    | None -> "")
                    (match r.Mc.r_audit with
                    | Some a ->
                        Printf.sprintf " audit=%d/%d" a.Mc.audited a.Mc.recorded
                    | None -> "")
                    (if r.Mc.r_ok then "ok" else "FAIL");
                  List.iter (fun p -> Fmt.pr "    %s@." p) r.Mc.r_problems;
                  r)
                scs
            in
            (match json with
            | Some file ->
                let oc = open_out file in
                output_string oc (Mc.json_of_reports reports);
                close_out oc;
                Fmt.pr "wrote %s@." file
            | None -> ());
            let all_ok = List.for_all (fun r -> r.Mc.r_ok) reports in
            let reduced =
              List.exists
                (fun r ->
                  match r.Mc.r_reduction with Some f -> f > 1.0 | None -> false)
                reports
            in
            if require_reduction && not reduced then begin
              Fmt.epr "mc: no scenario showed a DPOR reduction@.";
              1
            end
            else if all_ok then 0
            else 1)
  in
  Cmd.v
    (Cmd.info "mc"
       ~doc:
         "Stateless model checker: exhaustively explore the interleavings \
          of small transaction scenarios against the real engine (and the \
          in-process sharded 2PC coordinator), with sleep-set DPOR driven \
          by the commutativity specs, invariant oracles at every terminal \
          state, and the DESIGN \xc2\xa717 vote-window audit on sharded \
          runs.  Exits non-zero on any violation, non-exhaustion, or \
          naive/DPOR verdict disagreement.")
    Term.(const run $ suite $ scenarios $ dpor_only $ no_dpor $ max_schedules
          $ seed $ json $ replay $ require_reduction)

let main =
  Cmd.group
    (Cmd.info "oosdb" ~version:"1.0.0"
       ~doc:
         "Object-oriented serializability toolkit (Rakow, Gu & Neuhold, ICDE \
          1990).")
    [ check_cmd; fmt_cmd; run_cmd; acceptance_cmd; bench_cmd; lint_cmd;
      analyze_cmd; infer_cmd; demo_cmd; serve_cmd; recover_cmd; certify_cmd;
      client_cmd; loadgen_cmd; mc_cmd ]

let () = exit (Cmd.eval' main)
