(* The sharded engine: router placement properties, the coordinator's
   decision log, dispatcher-level commits (single- and cross-shard), the
   planted cross-shard cycle that Def. 15 edge exchange must catch, and
   an end-to-end sharded server exchange over a loopback socket. *)

open Ooser_core
open Ooser_oodb
open Ooser_server
module Router = Ooser_shard.Router
module Dispatcher = Ooser_shard.Dispatcher
module Decision_log = Ooser_recovery.Decision_log
module Oplog = Ooser_recovery.Oplog

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let o = Obj_id.v

(* -- router placement --------------------------------------------------------- *)

(* Stability across sessions: the router is a pure function of the
   shard count, so two independently created instances (two server
   incarnations, the load generator, a recovered boot) must agree on
   every placement. *)
let prop_router_stable =
  QCheck2.Test.make ~name:"router: placement is stable and in range"
    ~count:500
    QCheck2.Gen.(
      triple (int_range 1 16)
        (string_size ~gen:printable (int_bound 24))
        (string_size ~gen:printable (int_bound 24)))
    (fun (shards, obj, key) ->
      let r1 = Router.create ~shards in
      let r2 = Router.create ~shards in
      let args = [ Value.str key ] in
      let s1 = Router.shard_of_call r1 ~obj ~args in
      let s2 = Router.shard_of_call r2 ~obj ~args in
      s1 = s2 && s1 >= 0 && s1 < shards
      (* key-based placement ignores the method's other arguments *)
      && Router.shard_of_call r1 ~obj ~args:(args @ [ Value.int 7 ]) = s1)

let test_router_spread () =
  let r = Router.create ~shards:4 in
  let hit = Array.make 4 0 in
  for i = 0 to 199 do
    let s =
      Router.shard_of_call r ~obj:"Enc"
        ~args:[ Value.str (Printf.sprintf "k%05d" i) ]
    in
    hit.(s) <- hit.(s) + 1
  done;
  Array.iteri
    (fun i n -> check_bool (Printf.sprintf "shard %d owns keys" i) true (n > 10))
    hit;
  (* non-string-keyed calls route by object name alone *)
  check_int "object-only placement is arg-independent"
    (Router.shard_of_call r ~obj:"Account7" ~args:[ Value.int 3 ])
    (Router.shard_of_call r ~obj:"Account7" ~args:[])

(* -- decision log ------------------------------------------------------------- *)

let temp_dir () =
  let d = Filename.temp_file "oosdb_shard" "" in
  Sys.remove d;
  d

let test_decision_log_roundtrip () =
  let dir = temp_dir () in
  let t = Decision_log.open_dir ~dir in
  let ds =
    [
      { Decision_log.top = 3; commit = true; participants = [ 0; 2 ] };
      { Decision_log.top = 9; commit = false; participants = [ 1 ] };
      { Decision_log.top = 12; commit = true; participants = [ 0; 1; 3 ] };
    ]
  in
  List.iter (Decision_log.append t) ds;
  Decision_log.force t;
  Decision_log.close t;
  let loaded = Decision_log.load ~dir in
  check_int "all decisions back" 3 (List.length loaded);
  check_bool "identical" true (loaded = ds);
  (* a torn final frame is dropped, stable prefix survives *)
  let oc =
    open_out_gen [ Open_append; Open_binary ] 0o644 (Decision_log.log_file ~dir)
  in
  output_string oc "\004\000\000";
  close_out oc;
  check_int "torn tail dropped" 3 (List.length (Decision_log.load ~dir));
  Decision_log.reset ~dir;
  check_int "reset empties" 0 (List.length (Decision_log.load ~dir))

let test_decision_log_resolve () =
  let records =
    [
      Oplog.Begin { top = 5; attempt = 0; name = "in-doubt" };
      Oplog.Begin { top = 6; attempt = 0; name = "loser" };
      Oplog.Begin { top = 7; attempt = 0; name = "already-closed" };
      Oplog.Commit { top = 7; attempt = 0 };
    ]
  in
  let decisions =
    [
      { Decision_log.top = 5; commit = true; participants = [ 0; 1 ] };
      { Decision_log.top = 6; commit = false; participants = [ 0; 1 ] };
    ]
  in
  let resolved = Decision_log.resolve ~decisions records in
  let commits =
    List.filter_map
      (function Oplog.Commit { top; _ } -> Some top | _ -> None)
      resolved
  in
  check_bool "in-doubt top 5 gets a synthetic commit" true
    (List.mem 5 commits);
  check_bool "presumed abort leaves top 6 open" true
    (not (List.mem 6 commits));
  check_int "top 7 not duplicated" 1
    (List.length (List.filter (( = ) 7) commits))

(* -- dispatcher-level transactions -------------------------------------------- *)

let disp_config ?(shards = 2) ?(protocol_kind = `Open) ?durable_dir () =
  {
    Dispatcher.shards;
    db_kind = `Encyclopedia;
    protocol_kind;
    preload = 40;
    fanout = 4;
    accounts = 10;
    products = 4;
    durable_dir;
  }

let with_dispatcher config f =
  let d = Dispatcher.create config in
  Fun.protect ~finally:(fun () -> Dispatcher.shutdown d) (fun () -> f d)

let settle d ~top ~timeout =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    Dispatcher.poll d;
    match Dispatcher.txn_state d top with
    | (`Running | `Unknown) when Unix.gettimeofday () < deadline ->
        ignore (Unix.select [ Dispatcher.wake_fd d ] [] [] 0.01);
        go ()
    | s -> s
  in
  go ()

let await_result d ~top ~seq ~timeout =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    Dispatcher.poll d;
    match Dispatcher.result d ~top ~seq with
    | Some r -> r
    | None when Unix.gettimeofday () < deadline ->
        ignore (Unix.select [ Dispatcher.wake_fd d ] [] [] 0.01);
        go ()
    | None -> Alcotest.failf "no result for txn %d call %d" top seq
  in
  go ()

let key_of i = Printf.sprintf "k%05d" i

(* the first preloaded key the router places on [shard] *)
let key_on router shard =
  let rec go i =
    if i >= 40 then Alcotest.failf "no preloaded key on shard %d" shard
    else if
      Router.shard_of_call router ~obj:"Enc" ~args:[ Value.str (key_of i) ]
      = shard
    then key_of i
    else go (i + 1)
  in
  go 0

let counter d k =
  match List.assoc_opt k (Dispatcher.counters d) with Some v -> v | None -> 0

let test_single_shard_commit () =
  with_dispatcher (disp_config ()) (fun d ->
      let k = key_on (Dispatcher.router d) 0 in
      Dispatcher.begin_txn d ~top:1 ~name:"t1" ~deadline:None;
      Dispatcher.call d ~top:1 ~obj:"Enc" ~meth:"search"
        ~args:[ Value.str k ];
      (match await_result d ~top:1 ~seq:0 ~timeout:5.0 with
      | Ok (Value.Pair (Value.Str "found", _)) -> ()
      | Ok v -> Alcotest.failf "search: %a" Value.pp v
      | Error e -> Alcotest.failf "search failed: %s" e);
      Dispatcher.commit d ~top:1;
      (match settle d ~top:1 ~timeout:5.0 with
      | `Committed _ -> ()
      | `Aborted r -> Alcotest.failf "aborted: %s" r
      | _ -> Alcotest.fail "still running");
      check_int "committed on the shard-local fast path" 1
        (counter d "single-shard-commits");
      check_int "no 2PC round" 0 (counter d "cross-shard-commits");
      Dispatcher.retire d ~top:1;
      check_bool "certified" true (Dispatcher.certified d ()))

let test_cross_shard_commit () =
  with_dispatcher (disp_config ()) (fun d ->
      let r = Dispatcher.router d in
      let ka = key_on r 0 and kb = key_on r 1 in
      Dispatcher.begin_txn d ~top:1 ~name:"both" ~deadline:None;
      Dispatcher.call d ~top:1 ~obj:"Enc" ~meth:"update"
        ~args:[ Value.str ka; Value.str "a'" ];
      Dispatcher.call d ~top:1 ~obj:"Enc" ~meth:"update"
        ~args:[ Value.str kb; Value.str "b'" ];
      (match await_result d ~top:1 ~seq:1 ~timeout:5.0 with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "update failed: %s" e);
      Dispatcher.commit d ~top:1;
      (match settle d ~top:1 ~timeout:5.0 with
      | `Committed _ -> ()
      | `Aborted r -> Alcotest.failf "aborted: %s" r
      | _ -> Alcotest.fail "still running");
      check_int "went through 2PC" 1 (counter d "cross-shard-commits");
      check_int "coordinator committed it" 1 (counter d "2pc-commits");
      Dispatcher.retire d ~top:1;
      check_bool "certified" true (Dispatcher.certified d ());
      (* the stitched global history must satisfy the from-scratch
         oracle *)
      let h = Dispatcher.merged_history d () in
      check_bool "merged history validates" true (History.validate h = Ok ());
      check_bool "merged history oo-serializable" true
        (Serializability.oo_serializable h))

(* A clean-drain checkpoint folds winners into the shard snapshots and
   restarts the oplog empty, so a restarted dispatcher sees no replayed
   winners — its fresh-top floor must come from the snapshots'
   [next_top], or the next incarnation reuses committed top numbers and
   the recovered history decertifies. *)
let test_durable_restart_top_floor () =
  let dir = temp_dir () in
  let config = disp_config ~durable_dir:dir () in
  let commit_one d ~top =
    let k = key_on (Dispatcher.router d) 1 in
    Dispatcher.begin_txn d ~top ~name:"t" ~deadline:None;
    Dispatcher.call d ~top ~obj:"Enc" ~meth:"update"
      ~args:[ Value.str k; Value.str "v" ];
    (match await_result d ~top ~seq:0 ~timeout:5.0 with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "update failed: %s" e);
    Dispatcher.commit d ~top;
    (match settle d ~top ~timeout:5.0 with
    | `Committed _ -> ()
    | `Aborted r -> Alcotest.failf "aborted: %s" r
    | _ -> Alcotest.fail "still running");
    Dispatcher.retire d ~top
  in
  with_dispatcher config (fun d ->
      check_int "fresh store starts at 1" 1 (Dispatcher.next_top_floor d);
      commit_one d ~top:1);
  (* the shutdown checkpointed: the winner now lives in a snapshot only *)
  with_dispatcher config (fun d ->
      let floor = Dispatcher.next_top_floor d in
      check_bool "restart floor clears the checkpointed winner" true
        (floor > 1);
      commit_one d ~top:floor;
      check_bool "recovered + new history certifies" true
        (Dispatcher.certified d ()));
  with_dispatcher config (fun d ->
      check_bool "floor keeps rising across incarnations" true
        (Dispatcher.next_top_floor d > 2);
      check_bool "still certified" true (Dispatcher.certified d ()))

(* Two transactions with opposing Def. 15 edges on two shards: T11
   precedes T12 on shard A's key, T12 precedes T11 on shard B's key.
   Each shard's schedule is locally fine; only the exchanged edges
   reveal the global cycle, so the coordinator must abort whichever
   transaction prepares first — and the survivor must commit. *)
let test_planted_cross_shard_cycle () =
  with_dispatcher (disp_config ~protocol_kind:`Certify ()) (fun d ->
      let r = Dispatcher.router d in
      let ka = key_on r 0 and kb = key_on r 1 in
      Dispatcher.begin_txn d ~top:11 ~name:"t11" ~deadline:None;
      Dispatcher.begin_txn d ~top:12 ~name:"t12" ~deadline:None;
      let upd top key text seq =
        Dispatcher.call d ~top ~obj:"Enc" ~meth:"update"
          ~args:[ Value.str key; Value.str text ];
        match await_result d ~top ~seq ~timeout:5.0 with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "txn %d update %s: %s" top key e
      in
      (* interleave so each shard sees the opposite order *)
      upd 11 ka "t11a" 0;
      upd 12 kb "t12b" 0;
      upd 12 ka "t12a" 1;
      upd 11 kb "t11b" 1;
      Dispatcher.commit d ~top:11;
      let s11 = settle d ~top:11 ~timeout:5.0 in
      Dispatcher.commit d ~top:12;
      let s12 = settle d ~top:12 ~timeout:5.0 in
      let committed = function `Committed _ -> true | _ -> false in
      check_bool "exactly one of the pair survives" true
        (committed s11 <> committed s12);
      check_int "coordinator aborted one" 1 (counter d "2pc-aborts");
      Dispatcher.retire d ~top:11;
      Dispatcher.retire d ~top:12;
      (* the abort kept the union acyclic: no violation latched, and
         the actual merged history passes the oracle *)
      check_bool "certified after the abort" true (Dispatcher.certified d ());
      check_bool "merged history oo-serializable" true
        (Serializability.oo_serializable (Dispatcher.merged_history d ()));
      (* the §17 vote window now covers [`Certify] too, anchored on the
         engine's validation-frontier watermark: every prepare voted
         over the windowed history, none paid the full-history fallback
         the pre-watermark implementation was forced into *)
      let vote_counter name =
        List.fold_left
          (fun acc (s : Dispatcher.shard_stats) ->
            acc + Option.value ~default:0 (List.assoc_opt name s.engine))
          0
          (Dispatcher.stats d ())
      in
      check_bool "windowed votes counted" true (vote_counter "vote-windowed" >= 1);
      check_int "no full-history fallback votes" 0
        (vote_counter "vote-full-history"))

(* The 2PC decision must not depend on which shard's vote reaches the
   coordinator first.  The delivery-order hook makes that order a test
   parameter instead of wall-clock select order: the same cross-shard
   transaction must commit under FIFO and under reversed delivery. *)
let test_cross_shard_delivery_orders () =
  List.iter
    (fun (name, order) ->
      with_dispatcher (disp_config ()) (fun d ->
          Dispatcher.set_delivery_order d (Some order);
          let r = Dispatcher.router d in
          let ka = key_on r 0 and kb = key_on r 1 in
          Dispatcher.begin_txn d ~top:1 ~name:"both" ~deadline:None;
          Dispatcher.call d ~top:1 ~obj:"Enc" ~meth:"update"
            ~args:[ Value.str ka; Value.str "a'" ];
          Dispatcher.call d ~top:1 ~obj:"Enc" ~meth:"update"
            ~args:[ Value.str kb; Value.str "b'" ];
          (match await_result d ~top:1 ~seq:1 ~timeout:5.0 with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "%s: update failed: %s" name e);
          Dispatcher.commit d ~top:1;
          (match settle d ~top:1 ~timeout:5.0 with
          | `Committed _ -> ()
          | `Aborted r -> Alcotest.failf "%s: aborted: %s" name r
          | _ -> Alcotest.failf "%s: still running" name);
          check_int (name ^ ": one 2PC commit") 1 (counter d "2pc-commits");
          Dispatcher.retire d ~top:1;
          check_bool (name ^ ": certified") true (Dispatcher.certified d ())))
    [ ("fifo", Fun.id); ("reversed", List.rev) ]

(* What the coordinator prevented, built by hand: both transactions
   committed, objects carrying the per-shard rename.  The from-scratch
   check must reject the stitched history. *)
let test_handbuilt_cycle_rejected () =
  let t1 =
    Call_tree.Build.(
      top ~n:1 [ call (o "s0:X") "m" []; call (o "s1:Y") "m" [] ])
  in
  let t2 =
    Call_tree.Build.(
      top ~n:2 [ call (o "s1:Y") "m" []; call (o "s0:X") "m" [] ])
  in
  let reg = Commutativity.uniform Commutativity.all_conflict in
  let a1 = Action_id.v ~top:1 ~path:[ 1 ] (* X *)
  and a2 = Action_id.v ~top:1 ~path:[ 2 ] (* Y *)
  and b1 = Action_id.v ~top:2 ~path:[ 1 ] (* Y *)
  and b2 = Action_id.v ~top:2 ~path:[ 2 ] (* X *) in
  (* X: T1 before T2; Y: T2 before T1 — a cross-shard cycle *)
  let cyclic =
    History.v ~tops:[ t1; t2 ] ~order:[ a1; b1; b2; a2 ] ~commut:reg
  in
  check_bool "valid history" true (History.validate cyclic = Ok ());
  check_bool "both-committed merge rejected" false
    (Serializability.oo_serializable cyclic);
  let serial =
    History.v ~tops:[ t1; t2 ] ~order:[ a1; a2; b1; b2 ] ~commut:reg
  in
  check_bool "serial stitching accepted" true
    (Serializability.oo_serializable serial)

(* -- end-to-end sharded server ------------------------------------------------ *)

let with_server config f =
  let srv = Server.create config in
  Fun.protect ~finally:(fun () -> Server.close srv) (fun () -> f srv)

let temp_sock () =
  let path = Filename.temp_file "oosdb_shardsrv" ".sock" in
  Sys.remove path;
  path

let connect srv config =
  Client.connect
    ~on_wait:(fun () -> Server.step srv ~timeout:0.005)
    ~recv_timeout:10.0
    (Server.sockaddr_of config.Server.addr)

let test_e2e_sharded_server () =
  let config =
    {
      (Server.default_config (Server.Unix_sock (temp_sock ()))) with
      Server.preload = 20;
      shards = 2;
    }
  in
  with_server config (fun srv ->
      let c = connect srv config in
      (match Client.request c (Wire.Hello "shard-test") with
      | Wire.Welcome _ -> ()
      | r -> Alcotest.failf "HELLO: %a" Wire.pp_response r);
      (match Client.request c (Wire.Begin { name = "t"; timeout_ms = 0 }) with
      | Wire.Begun _ -> ()
      | r -> Alcotest.failf "BEGIN: %a" Wire.pp_response r);
      (match
         Client.request c
           (Wire.Call
              { obj = "Enc"; meth = "search"; args = [ Value.str "k00003" ] })
       with
      | Wire.Result (Value.Pair (Value.Str "found", _)) -> ()
      | r -> Alcotest.failf "CALL search: %a" Wire.pp_response r);
      (match
         Client.request c
           (Wire.Call
              {
                obj = "Enc";
                meth = "insert";
                args = [ Value.str "zz001"; Value.str "fresh" ];
              })
       with
      | Wire.Result _ -> ()
      | r -> Alcotest.failf "CALL insert: %a" Wire.pp_response r);
      (match Client.request c Wire.Commit with
      | Wire.Committed _ -> ()
      | r -> Alcotest.failf "COMMIT: %a" Wire.pp_response r);
      (match Client.request c Wire.Stats with
      | Wire.Stats_json json ->
          let contains needle hay =
            let n = String.length needle and h = String.length hay in
            let rec go i =
              i + n <= h && (String.sub hay i n = needle || go (i + 1))
            in
            go 0
          in
          check_bool "per-shard breakdown in STATS" true
            (contains "\"shards\"" json)
      | r -> Alcotest.failf "STATS: %a" Wire.pp_response r);
      check_bool "sharded history certified" true (Server.certified srv);
      (match Client.request c Wire.Bye with
      | Wire.Closing -> ()
      | r -> Alcotest.failf "BYE: %a" Wire.pp_response r);
      Client.close c)

let suites =
  [
    ( "shard",
      [
        QCheck_alcotest.to_alcotest prop_router_stable;
        Alcotest.test_case "router spread" `Quick test_router_spread;
        Alcotest.test_case "decision log round-trip" `Quick
          test_decision_log_roundtrip;
        Alcotest.test_case "decision log resolve" `Quick
          test_decision_log_resolve;
        Alcotest.test_case "single-shard commit" `Quick
          test_single_shard_commit;
        Alcotest.test_case "cross-shard commit" `Quick test_cross_shard_commit;
        Alcotest.test_case "durable restart top floor" `Quick
          test_durable_restart_top_floor;
        Alcotest.test_case "planted cross-shard cycle" `Quick
          test_planted_cross_shard_cycle;
        Alcotest.test_case "delivery order pinned both ways" `Quick
          test_cross_shard_delivery_orders;
        Alcotest.test_case "hand-built cycle rejected" `Quick
          test_handbuilt_cycle_rejected;
        Alcotest.test_case "e2e sharded server" `Quick
          test_e2e_sharded_server;
      ] );
  ]
