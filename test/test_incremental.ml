(* The incremental certifier against the from-scratch oracle.

   The central property: feeding the committed trees of a random history
   one by one into [Incremental.add_commit] (primitives stamped by their
   position in the full interleaved order) yields, on every prefix,
   exactly the oracle's verdict on that committed prefix — and, edge for
   edge, the oracle's dependency relations.  A rejected commit must roll
   back completely: the next prefix continues from the accepted set, and
   the certifier must again agree with the oracle on it. *)

open Ooser_core
open Ooser_workload
module Rng = Ooser_sim.Rng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Stamp a tree's primitives with their positions in the full order. *)
let prims_of_tree order tree =
  let mine =
    Ids.Action_id.Set.of_list
      (List.map Action.id (Call_tree.primitives tree))
  in
  List.filteri (fun _ _ -> true) order
  |> List.mapi (fun i id -> (id, i))
  |> List.filter (fun (id, _) -> Ids.Action_id.Set.mem id mine)

(* Run one seed: commit trees in sequence; compare every prefix verdict
   (and the relations of every object) with the oracle on the committed
   subset.  Returns the number of rejected commits, to assert the suite
   exercises both outcomes overall. *)
let run_seed ~params ~seed =
  let tops, reg = Random_schedules.system ~seed params in
  let rng = Rng.create ~seed:(seed + 7919) in
  let order = Random_schedules.random_order rng tops in
  let cert = Incremental.create reg in
  let rejected = ref 0 in
  let committed = ref [] in
  List.iter
    (fun tree ->
      let prims = prims_of_tree order tree in
      let outcome = Incremental.add_commit cert ~tree ~prims in
      let with_tree = tree :: !committed in
      let committed_order trees =
        let prims =
          Ids.Action_id.Set.of_list
            (List.concat_map
               (fun t -> List.map Action.id (Call_tree.primitives t))
               trees)
        in
        List.filter (fun id -> Ids.Action_id.Set.mem id prims) order
      in
      let oracle_accepts =
        (Serializability.check
           (History.v ~tops:(List.rev with_tree)
              ~order:(committed_order with_tree)
              ~commut:reg))
          .Serializability.oo_serializable
      in
      check_bool
        (Fmt.str "seed %d, commit %a: incremental = oracle" seed Ids.Action_id.pp
           (Action.id (Call_tree.act tree)))
        oracle_accepts outcome.Incremental.accepted;
      if outcome.Incremental.accepted then begin
        committed := with_tree;
        (* edge-level exactness on the accepted prefix *)
        let sched =
          Schedule.compute
            (History.v ~tops:(List.rev !committed)
               ~order:(committed_order !committed)
               ~commut:reg)
        in
        List.iter
          (fun (s : Schedule.object_schedule) ->
            let o = s.Schedule.obj in
            check_bool
              (Fmt.str "seed %d %a act_dep equal" seed Ids.Obj_id.pp o)
              true
              (Action.Rel.equal s.Schedule.act_dep (Incremental.act_dep cert o));
            check_bool
              (Fmt.str "seed %d %a txn_dep equal" seed Ids.Obj_id.pp o)
              true
              (Action.Rel.equal s.Schedule.txn_dep (Incremental.txn_dep cert o));
            check_bool
              (Fmt.str "seed %d %a combined equal" seed Ids.Obj_id.pp o)
              true
              (Action.Rel.equal
                 (Action.Rel.union s.Schedule.act_dep s.Schedule.added_dep)
                 (Incremental.combined_dep cert o)))
          (Schedule.objects sched)
      end
      else incr rejected)
    tops;
  !rejected

let test_oracle_agreement () =
  let params =
    { Random_schedules.default_params with n_txns = 4; p_commute = 0.5 }
  in
  let total_rejects = ref 0 in
  for seed = 1 to 100 do
    total_rejects := !total_rejects + run_seed ~params ~seed
  done;
  (* the interleavings must exercise both verdicts, or the property is
     vacuous on one side *)
  check_bool "some commits rejected" true (!total_rejects > 0);
  check_bool "some commits accepted" true (!total_rejects < 400)

let test_oracle_agreement_contended () =
  (* denser conflicts: more pages shared, mostly writes *)
  let params =
    {
      Random_schedules.default_params with
      n_txns = 5;
      n_pages = 2;
      p_commute = 0.2;
      p_write = 0.8;
    }
  in
  for seed = 200 to 240 do
    ignore (run_seed ~params ~seed)
  done

let test_rollback_restores_state () =
  (* After a rejected commit the stats and relations must be those of the
     accepted prefix only: re-running just the accepted trees in a fresh
     certifier gives identical edge counts. *)
  let params =
    {
      Random_schedules.default_params with
      n_txns = 5;
      n_pages = 2;
      p_commute = 0.2;
      p_write = 0.8;
    }
  in
  let seed = 42 in
  let tops, reg = Random_schedules.system ~seed params in
  let rng = Rng.create ~seed:(seed + 7919) in
  let order = Random_schedules.random_order rng tops in
  let cert = Incremental.create reg in
  let accepted = ref [] in
  List.iter
    (fun tree ->
      let prims = prims_of_tree order tree in
      if (Incremental.add_commit cert ~tree ~prims).Incremental.accepted then
        accepted := tree :: !accepted)
    tops;
  let fresh = Incremental.create reg in
  List.iter
    (fun tree ->
      let prims = prims_of_tree order tree in
      let o = Incremental.add_commit fresh ~tree ~prims in
      check_bool "replay of accepted prefix accepts" true
        o.Incremental.accepted)
    (List.rev !accepted);
  let s = Incremental.stats cert and s' = Incremental.stats fresh in
  check_int "commits equal" s'.Incremental.commits s.Incremental.commits;
  check_int "act edges equal" s'.Incremental.act_edges
    s.Incremental.act_edges;
  check_int "txn edges equal" s'.Incremental.txn_edges
    s.Incremental.txn_edges;
  check_int "actions equal" s'.Incremental.actions s.Incremental.actions

let test_cache_effective () =
  (* The memo table must be doing work on a stable registry: repeated
     probes of the same method classes hit. *)
  let params = { Random_schedules.default_params with n_txns = 4 } in
  let tops, reg = Random_schedules.system ~seed:7 params in
  let rng = Rng.create ~seed:7926 in
  let order = Random_schedules.random_order rng tops in
  let cert = Incremental.create reg in
  List.iter
    (fun tree ->
      ignore
        (Incremental.add_commit cert ~tree ~prims:(prims_of_tree order tree)))
    tops;
  let s = Incremental.stats cert in
  let hits, _ = Commutativity.cache_stats (Incremental.cache cert) in
  check_int "stats expose the cache" s.Incremental.cache_hits hits;
  check_bool "cache hits occur" true (hits > 0)

(* ---- Pearce–Kelly regression ---- *)

module G = Digraph.Make (struct
  type t = int

  let compare = Int.compare
  let pp = Fmt.int
end)

module PK = G.Incremental

let ok = function `Ok -> true | `Cycle _ -> false

let test_pk_basic () =
  let g = PK.create () in
  check_bool "1->2" true (ok (PK.add_edge g 1 2));
  check_bool "2->3" true (ok (PK.add_edge g 2 3));
  check_bool "duplicate ok" true (ok (PK.add_edge g 1 2));
  check_int "edges" 2 (PK.nb_edges g);
  check_bool "order valid" true (PK.valid g);
  (* closing the cycle is rejected and leaves the graph unchanged *)
  (match PK.add_edge g 3 1 with
  | `Ok -> Alcotest.fail "3->1 must close a cycle"
  | `Cycle c ->
      check_bool "witness closes through 3->1" true
        (List.length c >= 2 && List.hd c = 3));
  check_int "edges unchanged after cycle" 2 (PK.nb_edges g);
  check_bool "still valid" true (PK.valid g);
  check_bool "self loop" false (ok (PK.add_edge g 5 5))

let test_pk_create_then_avoid () =
  (* insertions that would create a cycle, removal, then the same
     insertion succeeding: the journal-rollback pattern of the
     certifier *)
  let g = PK.create () in
  List.iter
    (fun (u, v) -> check_bool "insert" true (ok (PK.add_edge g u v)))
    [ (1, 2); (2, 3); (3, 4); (5, 1) ];
  check_bool "4->5 closes 5-cycle" false (ok (PK.add_edge g 4 5));
  PK.remove_edge g 5 1;
  check_bool "after removal 4->5 fits" true (ok (PK.add_edge g 4 5));
  check_bool "valid after reorder" true (PK.valid g);
  (* and the removed edge would now be the cycle *)
  check_bool "5->1 now cyclic" false (ok (PK.add_edge g 5 1))

let test_pk_against_oracle () =
  (* random edge streams: accept/reject must match the persistent
     checker, and the maintained order must stay valid throughout *)
  let rng = Rng.create ~seed:99 in
  for _trial = 1 to 50 do
    let g = PK.create () in
    let persistent = ref G.empty in
    for _i = 1 to 60 do
      let u = Rng.int rng 12 and v = Rng.int rng 12 in
      if u <> v then begin
        let would = G.add u v !persistent in
        let expect = G.is_acyclic would in
        match PK.add_edge g u v with
        | `Ok ->
            check_bool "oracle also acyclic" true expect;
            persistent := would
        | `Cycle c ->
            check_bool "oracle also cyclic" false expect;
            (* witness must be a real cycle in the would-be graph *)
            let closes =
              match c with
              | [] -> false
              | first :: _ ->
                  let rec chain = function
                    | [ last ] -> G.mem last first would
                    | x :: (y :: _ as rest) -> G.mem x y would && chain rest
                    | [] -> false
                  in
                  chain c
            in
            check_bool "witness is a cycle" true closes
      end
    done;
    check_bool "order valid at end" true (PK.valid g);
    check_bool "same edges as oracle" true
      (G.equal !persistent (PK.to_graph g))
  done

let suites =
  [
    ( "incremental",
      [
        Alcotest.test_case "oracle agreement (100 seeds)" `Slow
          test_oracle_agreement;
        Alcotest.test_case "oracle agreement, contended" `Quick
          test_oracle_agreement_contended;
        Alcotest.test_case "rollback restores state" `Quick
          test_rollback_restores_state;
        Alcotest.test_case "commutativity cache effective" `Quick
          test_cache_effective;
      ] );
    ( "pearce-kelly",
      [
        Alcotest.test_case "basic" `Quick test_pk_basic;
        Alcotest.test_case "create then avoid cycles" `Quick
          test_pk_create_then_avoid;
        Alcotest.test_case "random stream vs oracle" `Quick
          test_pk_against_oracle;
      ] );
  ]
