(* The crash-injection harness for the durable engine.

   A journaled encyclopedia run is killed at every log site
   (before-append / after-append-unforced / after-force, and mid-undo
   during recovery itself); the stable log image is then recovered into
   a fresh database and the harness asserts the contract:

     - the recovered durable state equals the effects of exactly the
       stably-committed tops (oracle: the same transaction scripts run
       serially, in commit order, on a fresh database);
     - the rebuilt lock table is empty of loser entries (quiescent);
     - the recovered history re-certifies oo-serializable.

   The qcheck property generalises the matrix: crash after EVERY log
   prefix of a random run, 100 seeds. *)

open Ooser_core
open Ooser_oodb
open Ooser_workload
module Protocol = Ooser_cc.Protocol
module Lock_table = Ooser_cc.Lock_table
module Rng = Ooser_sim.Rng
module Oplog = Ooser_recovery.Oplog
module Snapshot = Ooser_recovery.Snapshot
module Recovery = Ooser_recovery.Recovery
module Crash = Ooser_recovery.Crash

let check_bool = Alcotest.(check bool)

(* Small but non-trivial: inserts, updates and scans over a preloaded
   encyclopedia. *)
let params =
  {
    Enc_workload.default_params with
    Enc_workload.n_txns = 3;
    ops_per_txn = 2;
    preload = 6;
  }

let setup ~seed p = Enc_workload.setup ~rng:(Rng.create ~seed) p

(* Deterministic key universe the state comparison scans: the preloaded
   keys plus everything the scripts could have inserted. *)
let key_universe p =
  List.init
    (p.Enc_workload.preload + (4 * p.Enc_workload.n_txns * p.Enc_workload.ops_per_txn))
    Enc_workload.key_of

(* Durable state, observed through the object methods themselves: every
   key's text plus the sequential read of the linked list.  The list is
   compared as a multiset: appends of distinct items commute by
   specification (Fig. 8 — no dependency between inserts), so their
   physical order is not semantic state and legitimately differs between
   equivalent executions. *)
let state_of db enc keys =
  let result = ref [] in
  let seq = ref [] in
  let protocol = Protocol.open_nested ~reg:(Database.spec_registry db) () in
  let body ctx =
    result := List.map (fun k -> (k, Encyclopedia.search enc ctx ~key:k)) keys;
    seq := List.sort String.compare (Encyclopedia.read_seq enc ctx);
    Value.unit
  in
  let out = Engine.run db ~protocol [ (99001, "read-state", body) ] in
  check_bool "state reader committed" true (out.Engine.committed = [ 99001 ]);
  (!result, !seq)

(* The oracle: the stably-committed tops' scripts, run serially in
   commit order on a fresh database (same seed => same preload and same
   scripts). *)
let serial_state ~seed p winner_tops =
  let db, enc, txns = setup ~seed p in
  List.iter
    (fun top ->
      match List.find_opt (fun (t, _, _) -> t = top) txns with
      | Some (t, name, body) ->
          let protocol =
            Protocol.open_nested ~reg:(Database.spec_registry db) ()
          in
          let out = Engine.run db ~protocol [ (t, name, body) ] in
          check_bool
            (Printf.sprintf "oracle txn %d committed" t)
            true
            (out.Engine.committed = [ t ])
      | None -> Alcotest.failf "oracle: unknown top %d" top)
    winner_tops;
  state_of db enc (key_universe p)

(* Winners of a log prefix: tops with a stable COMMIT, in commit order
   (a top commits at most once — retries reuse the top id). *)
let winners_of records =
  List.filter_map
    (function Oplog.Commit { top; _ } -> Some top | _ -> None)
    records

(* A journaled run of the workload under the open-nested protocol.
   Returns the journal (which, with an armed injector, holds everything
   appended up to the crash point). *)
let journaled_run ~seed ?injector p =
  let db, _enc, txns = setup ~seed p in
  let journal = Oplog.create () in
  Oplog.set_injector journal injector;
  let protocol = Protocol.open_nested ~reg:(Database.spec_registry db) () in
  let config =
    {
      (Engine.default_config protocol) with
      Engine.strategy = Engine.Random_pick (Rng.create ~seed:(seed * 7));
    }
  in
  match Engine.run ~config ~journal db ~protocol txns with
  | _ -> (`Completed, journal)
  | exception Crash.Crashed site -> (`Crashed site, journal)

(* Recover a stable record list into a fresh database and check the full
   contract.  Returns the recovered engine's protocol for extra
   asserts. *)
let recover_and_check ~label ~seed ?snapshot ?crash p records =
  let db, enc, _ = setup ~seed p in
  let protocol = Protocol.open_nested ~reg:(Database.spec_registry db) () in
  let eng, report =
    Engine.recover ?snapshot ?crash db ~protocol (Oplog.of_records records)
  in
  check_bool (label ^ ": no replay failures") true (report.Engine.replay_failures = 0);
  check_bool (label ^ ": recovered history re-certifies") true
    report.Engine.recertified;
  (* the rebuilt lock table holds no loser (or any other) entries *)
  check_bool (label ^ ": lock table quiescent") true (Protocol.quiescent protocol);
  (match Protocol.table protocol with
  | Some lt ->
      List.iter
        (fun (top, _) ->
          check_bool
            (Printf.sprintf "%s: no loser entries for T%d" label top)
            true
            (Lock_table.live_for_top lt top = []))
        report.Engine.undone
  | None -> ());
  let got = state_of db enc (key_universe p) in
  let expected = serial_state ~seed p (winners_of records) in
  check_bool (label ^ ": state = committed-prefix effects") true (got = expected);
  (eng, report)

(* -- basic round trip --------------------------------------------------------- *)

let test_round_trip () =
  let seed = 11 in
  let status, journal = journaled_run ~seed params in
  check_bool "run completed" true (status = `Completed);
  let records = Oplog.stable journal in
  check_bool "commits forced" true (List.length records > 0);
  let _, report = recover_and_check ~label:"round-trip" ~seed params records in
  check_bool "all winners recovered" true
    (List.length report.Engine.rec_winners = List.length (winners_of records))

(* Snapshot + (top, attempt) dedup: recovering a log whose winners are
   already covered by a snapshot replays the snapshot entries and skips
   every logged winner — and lands in the same state. *)
let test_recover_idempotent () =
  let seed = 12 in
  let _, journal = journaled_run ~seed params in
  let records = Oplog.stable journal in
  let plan = Recovery.analyze records in
  let snap = Recovery.snapshot_of plan in
  check_bool "snapshot covers the winners" true
    (Snapshot.keys snap = plan.Recovery.winners);
  let db, enc, _ = setup ~seed params in
  let protocol = Protocol.open_nested ~reg:(Database.spec_registry db) () in
  let _, report =
    Engine.recover ~snapshot:snap db ~protocol (Oplog.of_records records)
  in
  check_bool "all logged winners deduped" true
    (report.Engine.skipped_attempts = List.length plan.Recovery.winners);
  check_bool "dedup recertifies" true report.Engine.recertified;
  let got = state_of db enc (key_universe params) in
  let expected = serial_state ~seed params (winners_of records) in
  check_bool "dedup state = committed effects" true (got = expected)

(* -- the crash-injection matrix ----------------------------------------------

   Kill the process model at every before-append / after-append /
   after-force site of a fixed run, recover each stable image into a
   fresh database, and require the full contract every time. *)

let rec take k = function
  | [] -> []
  | _ when k <= 0 -> []
  | x :: rest -> x :: take (k - 1) rest

let test_injection_matrix () =
  let seed = 42 in
  let status, clean = journaled_run ~seed params in
  check_bool "clean run completes" true (status = `Completed);
  let n_appends = Oplog.appends clean in
  let n_forces = Oplog.forces clean in
  check_bool "log sites exist" true (n_appends > 6 && n_forces >= 1);
  let cases =
    List.concat_map
      (fun site ->
        let hits =
          match site with Crash.After_force -> n_forces | _ -> n_appends
        in
        List.init hits (fun after -> (site, after)))
      [ Crash.Before_append; Crash.After_append; Crash.After_force ]
  in
  List.iter
    (fun (site, after) ->
      let injector = Crash.arm site ~after in
      let status, journal = journaled_run ~seed ~injector params in
      check_bool
        (Printf.sprintf "%s/%d crashed" (Crash.site_name site) after)
        true
        (status = `Crashed site);
      let image = Oplog.crash journal in
      let label =
        Printf.sprintf "matrix %s/%d" (Crash.site_name site) after
      in
      ignore (recover_and_check ~label ~seed params (Oplog.stable image)))
    cases

(* A crash during recovery's own undo pass: the durable log is untouched
   (recovery writes nothing until it completes), so recovering again
   from the same image must satisfy the same contract. *)
let test_mid_undo_double_crash () =
  let seed = 42 in
  (* crash the run early enough that some transaction is still in
     flight: its logged calls make it a loser with compensations to
     run *)
  let rec find_loser after =
    if after > 64 then Alcotest.fail "no crash image with losers found"
    else begin
      let injector = Crash.arm Crash.After_append ~after in
      let status, journal = journaled_run ~seed ~injector params in
      if status <> `Crashed Crash.After_append then find_loser (after + 1)
      else begin
        let records = Oplog.stable (Oplog.crash journal) in
        let plan = Recovery.analyze records in
        if plan.Recovery.losers = [] then find_loser (after + 1)
        else records
      end
    end
  in
  let records = find_loser 6 in
  (* first recovery dies mid-undo *)
  let db1, _, _ = setup ~seed params in
  let protocol1 = Protocol.open_nested ~reg:(Database.spec_registry db1) () in
  (match
     Engine.recover ~crash:(Crash.arm Crash.Mid_undo ~after:0) db1
       ~protocol:protocol1 (Oplog.of_records records)
   with
  | _ -> Alcotest.fail "mid-undo injector did not fire"
  | exception Crash.Crashed site ->
      check_bool "crashed mid-undo" true (site = Crash.Mid_undo));
  (* the second recovery, over the same stable records, must restore the
     committed-prefix effects in full *)
  ignore (recover_and_check ~label:"double-crash" ~seed params records)

(* -- qcheck: crash after every log prefix, 100 seeds --------------------------

   For a random encyclopedia run, cut the operation log after EVERY
   record (subsuming every crash image any site can produce) and
   recover: the durable state must equal the effects of exactly the
   tops with a COMMIT in the prefix, the lock table must be quiescent,
   and the recovered history must re-certify.  The oracle state is
   maintained incrementally — the winner set of a growing prefix only
   ever grows. *)

let prefix_params =
  {
    Enc_workload.default_params with
    Enc_workload.n_txns = 3;
    ops_per_txn = 2;
    preload = 5;
  }

let prefix_property seed =
  let p = prefix_params in
  let _, journal = journaled_run ~seed p in
  let records = Oplog.all journal in
  let keys = key_universe p in
  (* incremental serial oracle *)
  let odb, oenc, otxns = setup ~seed p in
  let applied = ref [] in
  let oracle = ref (state_of odb oenc keys) in
  let apply_winner top =
    match List.find_opt (fun (t, _, _) -> t = top) otxns with
    | Some (t, name, body) ->
        let protocol =
          Protocol.open_nested ~reg:(Database.spec_registry odb) ()
        in
        let out = Engine.run odb ~protocol [ (t, name, body) ] in
        if out.Engine.committed <> [ t ] then
          Alcotest.failf "oracle txn %d did not commit" t;
        oracle := state_of odb oenc keys
    | None -> Alcotest.failf "oracle: unknown top %d" top
  in
  let ok = ref true in
  for k = 0 to List.length records do
    let prefix = take k records in
    List.iter
      (fun t ->
        if not (List.mem t !applied) then begin
          applied := !applied @ [ t ];
          apply_winner t
        end)
      (winners_of prefix);
    let db, enc, _ = setup ~seed p in
    let protocol = Protocol.open_nested ~reg:(Database.spec_registry db) () in
    let _, report = Engine.recover db ~protocol (Oplog.of_records prefix) in
    if
      (not report.Engine.recertified)
      || report.Engine.replay_failures > 0
      || not (Protocol.quiescent protocol)
      || state_of db enc keys <> !oracle
    then begin
      Fmt.epr "prefix property failed: seed=%d k=%d@." seed k;
      ok := false
    end
  done;
  !ok

let prefix_qcheck =
  QCheck2.Test.make ~count:100 ~name:"crash after every log prefix"
    QCheck2.Gen.(int_range 1 10_000)
    prefix_property

(* A crash mid-append leaves a torn final frame on disk; both durable
   logs must load the stable prefix and drop the tail. *)

let truncate_tail path bytes =
  let whole = In_channel.with_open_bin path In_channel.input_all in
  let keep = String.sub whole 0 (String.length whole - bytes) in
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc keep)

let test_oplog_torn_tail () =
  let dir = Filename.temp_file "ooser_oplog" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let j = Oplog.open_dir ~dir in
  ignore (Oplog.append j (Oplog.Begin { top = 1; attempt = 0; name = "a" }));
  ignore (Oplog.append j (Oplog.Commit { top = 1; attempt = 0 }));
  ignore (Oplog.append j (Oplog.Begin { top = 2; attempt = 0; name = "b" }));
  Oplog.force j;
  Oplog.close j;
  truncate_tail (Oplog.log_file ~dir) 3;
  let records = Oplog.load ~dir in
  check_bool "torn oplog tail dropped" true
    (records
    = [
        Oplog.Begin { top = 1; attempt = 0; name = "a" };
        Oplog.Commit { top = 1; attempt = 0 };
      ])

let test_decision_log_torn_tail () =
  let module Decision_log = Ooser_recovery.Decision_log in
  let dir = Filename.temp_file "ooser_dlog" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let d = Decision_log.open_dir ~dir in
  Decision_log.append d
    { Decision_log.top = 7; commit = true; participants = [ 0; 1 ] };
  Decision_log.append d
    { Decision_log.top = 8; commit = false; participants = [ 1 ] };
  Decision_log.force d;
  Decision_log.close d;
  truncate_tail (Decision_log.log_file ~dir) 2;
  let ds = Decision_log.load ~dir in
  check_bool "torn decision tail dropped" true
    (ds = [ { Decision_log.top = 7; commit = true; participants = [ 0; 1 ] } ])

let suites =
  [
    ( "crash",
      [
        Alcotest.test_case "journal round trip" `Quick test_round_trip;
        Alcotest.test_case "snapshot dedup idempotent" `Quick
          test_recover_idempotent;
        Alcotest.test_case "crash-injection matrix" `Quick
          test_injection_matrix;
        Alcotest.test_case "mid-undo double crash" `Quick
          test_mid_undo_double_crash;
        Alcotest.test_case "oplog torn tail" `Quick test_oplog_torn_tail;
        Alcotest.test_case "decision log torn tail" `Quick
          test_decision_log_torn_tail;
        QCheck_alcotest.to_alcotest prefix_qcheck;
      ] );
  ]
